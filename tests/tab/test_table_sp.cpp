#include "tab/table_sp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tab/table.hpp"

namespace dp::tab {
namespace {

nn::EmbeddingNet make_net(std::uint64_t seed) {
  nn::EmbeddingNet net({8, 16, 32});
  Rng rng(seed);
  net.init_random(rng);
  return net;
}

// The --health extrapolation-rate watchdog reads per-table counters; the
// reduced-precision tables must report the same events as the double table
// they were truncated from, else the mixed path runs blind.
TEST(TabulatedEmbeddingSP, ExtrapolationCountMatchesDoubleTable) {
  auto net = make_net(11);
  TabulatedEmbedding ref(net, {0.2, 2.0, 0.01});
  TabulatedEmbeddingSP sp(ref);
  TabulatedEmbeddingHP hp(ref);
  ASSERT_EQ(ref.extrapolations(), 0u);
  ASSERT_EQ(sp.extrapolations(), 0u);
  ASSERT_EQ(hp.extrapolations(), 0u);

  // In-range, below-range, and above-range probes; the boundary values lo
  // and hi themselves must NOT count (they are clamped losslessly).
  const std::vector<double> probes = {0.5,  1.3,  1.999, 0.2, 2.0,   0.1,
                                      -3.0, 2.01, 7.5,   0.0, 1.9999};
  std::vector<double> g(ref.output_dim()), dg(ref.output_dim());
  std::vector<float> gf(ref.output_dim()), dgf(ref.output_dim());
  for (double s : probes) {
    ref.eval_with_deriv(s, g.data(), dg.data());
    sp.eval_with_deriv(static_cast<float>(s), gf.data(), dgf.data());
    hp.eval_with_deriv(static_cast<float>(s), gf.data(), dgf.data());
  }
  EXPECT_GT(ref.extrapolations(), 0u);
  EXPECT_EQ(sp.extrapolations(), ref.extrapolations());
  EXPECT_EQ(hp.extrapolations(), ref.extrapolations());

  // eval() (no derivative) goes through the same locate(); counts keep pace.
  for (double s : probes) {
    ref.eval(s, g.data());
    sp.eval(static_cast<float>(s), gf.data());
    hp.eval(static_cast<float>(s), gf.data());
  }
  EXPECT_EQ(sp.extrapolations(), ref.extrapolations());
  EXPECT_EQ(hp.extrapolations(), ref.extrapolations());
}

TEST(TabulatedEmbeddingSP, InRangeSweepNeverCounts) {
  auto net = make_net(12);
  TabulatedEmbedding ref(net, {0.0, 1.5, 0.01});
  TabulatedEmbeddingSP sp(ref);
  TabulatedEmbeddingHP hp(ref);
  std::vector<float> g(ref.output_dim());
  for (int k = 0; k <= 1000; ++k) {
    const float s = 1.5f * static_cast<float>(k) / 1000.0f;
    sp.eval(s, g.data());
    hp.eval(s, g.data());
  }
  EXPECT_EQ(sp.extrapolations(), 0u);
  EXPECT_EQ(hp.extrapolations(), 0u);
}

}  // namespace
}  // namespace dp::tab
