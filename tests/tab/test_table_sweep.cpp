// Parameterized sweep over tabulation hyper-parameters: every (net shape,
// interval) combination must satisfy the spline invariants — node
// interpolation, C2 continuity, exact-gradient derivative, and the h^6
// convergence law of Fig 2.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "tab/table.hpp"

namespace dp::tab {
namespace {

using SweepParam = std::tuple<int /*d1*/, double /*interval*/>;

class TableSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [d1, interval] = GetParam();
    const auto w = static_cast<std::size_t>(d1);
    net_ = std::make_unique<nn::EmbeddingNet>(std::vector<std::size_t>{w, 2 * w, 4 * w});
    Rng rng(static_cast<std::uint64_t>(d1 * 1000) + 7);
    net_->init_random(rng);
    table_ = std::make_unique<TabulatedEmbedding>(*net_, TabulationSpec{0.0, 2.0, interval});
    m_ = net_->output_dim();
  }

  std::unique_ptr<nn::EmbeddingNet> net_;
  std::unique_ptr<TabulatedEmbedding> table_;
  std::size_t m_ = 0;
};

TEST_P(TableSweep, InterpolatesNodesExactly) {
  std::vector<double> g_tab(m_), g_net(m_);
  for (std::size_t k = 0; k <= table_->n_intervals(); k += 5) {
    const double s = std::min(table_->interval() * static_cast<double>(k), 2.0 - 1e-12);
    table_->eval(s, g_tab.data());
    net_->eval(s, g_net.data());
    for (std::size_t ch = 0; ch < m_; ++ch) EXPECT_NEAR(g_tab[ch], g_net[ch], 1e-9);
  }
}

TEST_P(TableSweep, C2AtInteriorNodes) {
  std::vector<double> ga(m_), da(m_), gb(m_), db(m_);
  const std::size_t stride = std::max<std::size_t>(1, table_->n_intervals() / 16);
  for (std::size_t k = stride; k < table_->n_intervals(); k += stride) {
    const double x = table_->interval() * static_cast<double>(k);
    table_->eval_with_deriv(x - 1e-10, ga.data(), da.data());
    table_->eval_with_deriv(x + 1e-10, gb.data(), db.data());
    for (std::size_t ch = 0; ch < m_; ++ch) {
      EXPECT_NEAR(ga[ch], gb[ch], 1e-8);
      EXPECT_NEAR(da[ch], db[ch], 1e-5);
    }
  }
}

TEST_P(TableSweep, DerivativeDifferentiatesTheTable) {
  std::vector<double> g(m_), dg(m_), gp(m_), gm(m_);
  const double h = 1e-7;
  Rng rng(3);
  for (int k = 0; k < 10; ++k) {
    const double s = rng.uniform(0.01, 1.99);
    table_->eval_with_deriv(s, g.data(), dg.data());
    table_->eval(s + h, gp.data());
    table_->eval(s - h, gm.data());
    for (std::size_t ch = 0; ch < m_; ++ch)
      EXPECT_NEAR(dg[ch], (gp[ch] - gm[ch]) / (2 * h), 1e-4);
  }
}

TEST_P(TableSweep, BlockedLayoutBitIdentical) {
  std::vector<double> a(m_), b(m_), da(m_), db(m_);
  Rng rng(5);
  for (int k = 0; k < 25; ++k) {
    const double s = rng.uniform(0.0, 2.0);
    table_->eval_with_deriv(s, a.data(), da.data());
    table_->eval_with_deriv_blocked(s, b.data(), db.data());
    for (std::size_t ch = 0; ch < m_; ++ch) {
      EXPECT_DOUBLE_EQ(a[ch], b[ch]);
      EXPECT_DOUBLE_EQ(da[ch], db[ch]);
    }
  }
}

TEST_P(TableSweep, SizeMatchesFormula) {
  EXPECT_EQ(table_->bytes(), table_->n_intervals() * m_ * 6 * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndIntervals, TableSweep,
    ::testing::Combine(::testing::Values(4, 8, 16), ::testing::Values(0.1, 0.02, 0.004)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "d1_" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(info.param)));
    });

// Convergence law across the sweep (needs several intervals at one shape).
TEST(TableConvergence, ErrorFollowsSixthOrder) {
  nn::EmbeddingNet net({8, 16, 32});
  Rng rng(11);
  net.init_random(rng);
  auto max_err = [&](double interval) {
    TabulatedEmbedding table(net, {0.0, 2.0, interval});
    std::vector<double> g_tab(32), g_net(32);
    double e = 0;
    for (int k = 0; k < 400; ++k) {
      const double s = 2.0 * (k + 0.37) / 400.0;
      table.eval(s, g_tab.data());
      net.eval(s, g_net.data());
      for (std::size_t ch = 0; ch < 32; ++ch)
        e = std::max(e, std::fabs(g_tab[ch] - g_net[ch]));
    }
    return e;
  };
  const double e1 = max_err(0.2);
  const double e2 = max_err(0.1);
  const double e3 = max_err(0.05);
  // Quintic Hermite: halving h divides the error by ~2^6 = 64; allow slack.
  EXPECT_GT(e1 / e2, 25.0);
  EXPECT_GT(e2 / e3, 25.0);
}

}  // namespace
}  // namespace dp::tab
