#include "tab/poly5.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dp::tab {
namespace {

TEST(Poly5, MatchesAllSixConditions) {
  const double h = 0.37;
  const double f0 = 1.2, d0 = -0.5, s0 = 2.1, f1 = 0.4, d1 = 0.9, s1 = -1.3;
  const Poly5 c = fit_quintic(h, f0, d0, s0, f1, d1, s1);
  EXPECT_NEAR(eval_poly5(c, 0.0), f0, 1e-12);
  EXPECT_NEAR(eval_poly5_deriv(c, 0.0), d0, 1e-12);
  EXPECT_NEAR(eval_poly5_deriv2(c, 0.0), s0, 1e-12);
  EXPECT_NEAR(eval_poly5(c, h), f1, 1e-12);
  EXPECT_NEAR(eval_poly5_deriv(c, h), d1, 1e-12);
  EXPECT_NEAR(eval_poly5_deriv2(c, h), s1, 1e-12);
}

TEST(Poly5, ReproducesQuinticExactly) {
  // A quintic is its own unique Hermite fit.
  auto f = [](double x) { return 1 + x * (2 + x * (-1 + x * (0.5 + x * (3 + x * -2)))); };
  auto fd = [](double x) { return 2 + x * (-2 + x * (1.5 + x * (12 + x * -10))); };
  auto fdd = [](double x) { return -2 + x * (3 + x * (36 + x * -40)); };
  const double h = 0.8;
  const Poly5 c = fit_quintic(h, f(0), fd(0), fdd(0), f(h), fd(h), fdd(h));
  for (double t = 0; t <= h; t += 0.05) EXPECT_NEAR(eval_poly5(c, t), f(t), 1e-10);
}

TEST(Poly5, ApproximatesSmoothFunctionWithQuinticOrder) {
  // Hermite quintic interpolation error scales as h^6 for smooth f.
  auto max_err = [](double h) {
    const Poly5 c = fit_quintic(h, std::sin(0.0), std::cos(0.0), -std::sin(0.0), std::sin(h),
                                std::cos(h), -std::sin(h));
    double e = 0;
    for (int k = 0; k <= 100; ++k) {
      const double t = h * k / 100.0;
      e = std::max(e, std::fabs(eval_poly5(c, t) - std::sin(t)));
    }
    return e;
  };
  const double e1 = max_err(0.4);
  const double e2 = max_err(0.2);
  EXPECT_GT(e1 / e2, 40.0);  // ~2^6 = 64 expected
}

TEST(Poly5, DerivativesAreConsistentWithValue) {
  const Poly5 c = fit_quintic(0.5, 0.3, 1.1, -0.7, 0.9, -0.2, 0.4);
  const double h = 1e-6;
  // Second differences divide rounding noise by h^2, so they get their own
  // larger step (noise ~ eps/h2^2 ~ 4e-8, truncation ~ h2^2 ~ 1e-8).
  const double h2 = 1e-4;
  for (double t : {0.1, 0.25, 0.4}) {
    const double fd = (eval_poly5(c, t + h) - eval_poly5(c, t - h)) / (2 * h);
    EXPECT_NEAR(eval_poly5_deriv(c, t), fd, 1e-8);
    const double fdd =
        (eval_poly5(c, t + h2) - 2 * eval_poly5(c, t) + eval_poly5(c, t - h2)) / (h2 * h2);
    EXPECT_NEAR(eval_poly5_deriv2(c, t), fdd, 1e-5);
  }
}

TEST(Poly5, RejectsNonPositiveWidth) {
  EXPECT_THROW(fit_quintic(0.0, 0, 0, 0, 0, 0, 0), Error);
  EXPECT_THROW(fit_quintic(-1.0, 0, 0, 0, 0, 0, 0), Error);
}

}  // namespace
}  // namespace dp::tab
