// Scalar-vs-SIMD parity for the tabulated hot loops (common/simd.hpp).
//
// Pins the numerical contract of the dispatch layer:
//   * at any fixed level, the AoS walk, the blocked walk and the batched
//     blocked walk agree BITWISE (the seed Blocked*Identical tests only
//     check to 4 ulp via EXPECT_DOUBLE_EQ — this is stricter);
//   * forcing Level::Scalar reproduces the pre-SIMD results bit-for-bit no
//     matter what level ran before (DP_SIMD=scalar is a true fallback);
//   * the AVX levels stay within 1 ulp of scalar everywhere, including the
//     boundary set the PR's bugfixes cover (lo, hi, their nextafter
//     neighbors, and extrapolating inputs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/tanh_table.hpp"
#include "tab/table.hpp"

namespace dp {
namespace {

/// Forces a SIMD level for one scope, restoring the previous level after.
class LevelGuard {
 public:
  explicit LevelGuard(simd::Level lvl) : prev_(simd::active()) { simd::force(lvl); }
  ~LevelGuard() { simd::force(prev_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::Level prev_;
};

std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> v{simd::Level::Scalar};
  const int cap = static_cast<int>(simd::max_supported());
  if (cap >= static_cast<int>(simd::Level::AVX2)) v.push_back(simd::Level::AVX2);
  if (cap >= static_cast<int>(simd::Level::AVX512)) v.push_back(simd::Level::AVX512);
  return v;
}

/// Distance in representable doubles, sign-aware (0 iff bitwise-comparable).
std::int64_t ulp_diff(double a, double b) {
  if (a == b) return 0;  // covers +0/-0
  auto key = [](double x) {
    std::int64_t i;
    std::memcpy(&i, &x, sizeof(i));
    return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
  };
  const std::int64_t d = key(a) - key(b);
  return d < 0 ? -d : d;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

tab::TabulatedEmbedding make_table(std::size_t m_out, std::uint64_t seed) {
  nn::EmbeddingNet net({8, 16, m_out});
  Rng rng(seed);
  net.init_random(rng);
  return tab::TabulatedEmbedding(net, {0.1, 1.9, 0.01});
}

std::vector<double> probe_set(double lo, double hi) {
  std::vector<double> s = {
      lo,
      hi,
      std::nextafter(lo, -1e300),
      std::nextafter(lo, 1e300),
      std::nextafter(hi, -1e300),
      std::nextafter(hi, 1e300),
      lo - 0.7,  // extrapolating below
      hi + 0.7,  // extrapolating above
      0.5 * (lo + hi),
  };
  Rng rng(17);
  for (int i = 0; i < 200; ++i) s.push_back(rng.uniform(lo - 0.2, hi + 0.2));
  return s;
}

struct TableRun {
  std::vector<double> g_aos, dg_aos, g_blk, dg_blk, g_val, g_blk_val, g_batch, dg_batch;
};

TableRun run_table(const tab::TabulatedEmbedding& table, const std::vector<double>& s) {
  const std::size_t m = table.output_dim();
  TableRun r;
  const std::size_t total = s.size() * m;
  r.g_aos.resize(total);
  r.dg_aos.resize(total);
  r.g_blk.resize(total);
  r.dg_blk.resize(total);
  r.g_val.resize(total);
  r.g_blk_val.resize(total);
  r.g_batch.resize(total);
  r.dg_batch.resize(total);
  for (std::size_t k = 0; k < s.size(); ++k) {
    table.eval_with_deriv(s[k], r.g_aos.data() + k * m, r.dg_aos.data() + k * m);
    table.eval_with_deriv_blocked(s[k], r.g_blk.data() + k * m, r.dg_blk.data() + k * m);
    table.eval(s[k], r.g_val.data() + k * m);
    table.eval_blocked(s[k], r.g_blk_val.data() + k * m);
  }
  table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), r.g_batch.data(),
                                      r.dg_batch.data(), m);
  return r;
}

TEST(SimdParity, LayoutsAgreeBitwiseAtEveryLevel) {
  // 24 channels: blocks of 16 + a partial 8-lane tail block, so the vector
  // body and the scalar-fma tail are both exercised.
  for (std::size_t m_out : {std::size_t{32}, std::size_t{24}}) {
    const auto table = make_table(m_out, 5);
    const auto s = probe_set(table.lo(), table.hi());
    for (simd::Level lvl : available_levels()) {
      LevelGuard guard(lvl);
      const TableRun r = run_table(table, s);
      EXPECT_TRUE(bitwise_equal(r.g_aos, r.g_blk)) << "m " << m_out << " " << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.dg_aos, r.dg_blk))
          << "m " << m_out << " " << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.g_aos, r.g_val)) << "m " << m_out << " " << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.g_aos, r.g_blk_val))
          << "m " << m_out << " " << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.g_blk, r.g_batch))
          << "m " << m_out << " " << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.dg_blk, r.dg_batch))
          << "m " << m_out << " " << simd::name(lvl);
    }
  }
}

TEST(SimdParity, ScalarFallbackIsBitStableAcrossForcedLevels) {
  const auto table = make_table(32, 6);
  const auto s = probe_set(table.lo(), table.hi());
  std::vector<double> g0, dg0;
  {
    LevelGuard guard(simd::Level::Scalar);
    const TableRun r = run_table(table, s);
    g0 = r.g_aos;
    dg0 = r.dg_aos;
  }
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);  // run at lvl, then re-force scalar underneath
    {
      LevelGuard inner(simd::Level::Scalar);
      const TableRun r = run_table(table, s);
      EXPECT_TRUE(bitwise_equal(r.g_aos, g0)) << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(r.dg_aos, dg0)) << simd::name(lvl);
    }
  }
}

TEST(SimdParity, VectorLevelsWithinOneUlpOfScalar) {
  const auto table = make_table(32, 7);
  const auto s = probe_set(table.lo(), table.hi());
  const std::size_t m = table.output_dim();
  std::vector<double> g0, dg0;
  {
    LevelGuard guard(simd::Level::Scalar);
    const TableRun r = run_table(table, s);
    g0 = r.g_aos;
    dg0 = r.dg_aos;
  }
  for (simd::Level lvl : available_levels()) {
    if (lvl == simd::Level::Scalar) continue;
    LevelGuard guard(lvl);
    const TableRun r = run_table(table, s);
    // Per-channel magnitude of the scalar results: where a value is itself
    // the small residue of cancelling O(scale) Horner terms, "1 ulp of the
    // result" is below the information content of either rounding sequence,
    // so such elements are held to 1 ulp OR absolute agreement at the
    // cancellation scale (2 eps x the channel's magnitude).
    std::vector<double> gsc(m, 1.0), dsc(m, 1.0);
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (std::size_t ch = 0; ch < m; ++ch) {
        gsc[ch] = std::max(gsc[ch], std::fabs(g0[k * m + ch]));
        dsc[ch] = std::max(dsc[ch], std::fabs(dg0[k * m + ch]));
      }
    }
    const double eps2 = 2.0 * std::numeric_limits<double>::epsilon();
    std::int64_t worst_in = 0;
    double worst_rel_out = 0.0;
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (std::size_t ch = 0; ch < m; ++ch) {
        const std::size_t idx = k * m + ch;
        if (s[k] >= table.lo() && s[k] <= table.hi()) {
          if (std::fabs(r.g_aos[idx] - g0[idx]) > eps2 * gsc[ch])
            worst_in = std::max(worst_in, ulp_diff(r.g_aos[idx], g0[idx]));
          if (std::fabs(r.dg_aos[idx] - dg0[idx]) > eps2 * dsc[ch])
            worst_in = std::max(worst_in, ulp_diff(r.dg_aos[idx], dg0[idx]));
        } else {
          // Extrapolating inputs run the edge polynomial outside its fitted
          // interval, where the Horner terms cancel; FMA's dropped
          // roundings shift the cancellation by a few ulps, so the bound is
          // relative rather than ulp-exact out there.
          const auto rel = [](double a, double b) {
            return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1.0});
          };
          worst_rel_out = std::max(worst_rel_out, rel(r.g_aos[idx], g0[idx]));
          worst_rel_out = std::max(worst_rel_out, rel(r.dg_aos[idx], dg0[idx]));
        }
      }
    }
    // In-domain the FMA Horner stays within 1 ulp of the scalar expression.
    EXPECT_LE(worst_in, 1) << simd::name(lvl);
    EXPECT_LE(worst_rel_out, 1e-13) << simd::name(lvl);
  }
}

TEST(SimdParity, StreamingBatchMatchesRegularBitwise) {
  // The streaming hint swaps regular vector stores for non-temporal ones —
  // a pure store-path change; the bits that land in memory must be
  // identical. 64-byte-aligned outputs engage the NT path (m = 32 full
  // blocks, m = 24 a partial block whose tail mixes regular scalar stores
  // into the same rows); the misaligned case must fall back cleanly.
  for (std::size_t m_out : {std::size_t{32}, std::size_t{24}}) {
    const auto table = make_table(m_out, 9);
    const auto s = probe_set(table.lo(), table.hi());
    const std::size_t m = table.output_dim();
    AlignedVector<double> g_reg(s.size() * m), dg_reg(s.size() * m);
    AlignedVector<double> g_nt(s.size() * m), dg_nt(s.size() * m);
    for (simd::Level lvl : available_levels()) {
      LevelGuard guard(lvl);
      table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_reg.data(), dg_reg.data(),
                                          m, /*streaming=*/false);
      table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_nt.data(), dg_nt.data(),
                                          m, /*streaming=*/true);
      EXPECT_EQ(0, std::memcmp(g_reg.data(), g_nt.data(), s.size() * m * sizeof(double)))
          << "m " << m_out << " " << simd::name(lvl);
      EXPECT_EQ(0, std::memcmp(dg_reg.data(), dg_nt.data(), s.size() * m * sizeof(double)))
          << "m " << m_out << " " << simd::name(lvl);
      // Misaligned rows (offset by one double) must take the fallback and
      // still produce the same bits.
      AlignedVector<double> g_off(s.size() * m + 1), dg_off(s.size() * m + 1);
      table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_off.data() + 1,
                                          dg_off.data() + 1, m, /*streaming=*/true);
      EXPECT_EQ(0, std::memcmp(g_reg.data(), g_off.data() + 1, s.size() * m * sizeof(double)))
          << "m " << m_out << " " << simd::name(lvl);
    }
  }
}

TEST(SimdParity, ExtrapolationTelemetryIsLevelIndependent) {
  const auto s = probe_set(0.1, 1.9);
  std::vector<std::size_t> counts;
  for (simd::Level lvl : available_levels()) {
    const auto table = make_table(32, 8);  // fresh table: counter starts at 0
    LevelGuard guard(lvl);
    (void)run_table(table, s);
    counts.push_back(table.extrapolations());
  }
  ASSERT_FALSE(counts.empty());
  EXPECT_GT(counts[0], 0u);
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], counts[0]);
}

TEST(SimdParity, TanhBatchMatchesScalarEvalPerLevel) {
  const TanhTable& t = default_tanh_table();
  std::vector<double> x = {0.0,   -0.0, 7.999999, -7.999999, 8.0, -8.0, 100.0,
                           -1e12, 0.3,  -0.3,     5.5,       std::nextafter(8.0, 0.0),
                           -std::nextafter(8.0, 0.0)};
  Rng rng(23);
  for (int i = 0; i < 997; ++i) x.push_back(rng.uniform(-9.0, 9.0));  // odd n: tail path
  std::vector<double> y0(x.size()), y(x.size());
  {
    LevelGuard guard(simd::Level::Scalar);
    t.eval_batch(x.data(), y0.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(y0[i], t.eval(x[i])) << "scalar batch must be the plain eval loop";
    }
  }
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);
    t.eval_batch(x.data(), y.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_LE(ulp_diff(y[i], y0[i]), 1) << simd::name(lvl) << " x = " << x[i];
      if (std::fabs(x[i]) >= 8.0) {
        EXPECT_EQ(y[i], x[i] < 0.0 ? -1.0 : 1.0) << "saturation must stay exact";
      }
    }
  }
}

TEST(SimdParity, LanesMatchesLevel) {
  EXPECT_EQ(simd::lanes(simd::Level::Scalar), 1u);
  EXPECT_EQ(simd::lanes(simd::Level::AVX2), 4u);
  EXPECT_EQ(simd::lanes(simd::Level::AVX512), 8u);
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);
    EXPECT_EQ(simd::lanes(), simd::lanes(lvl));
    EXPECT_EQ(simd::active(), lvl);
  }
  EXPECT_STREQ(simd::name(simd::Level::Scalar), "scalar");
  EXPECT_STREQ(simd::name(simd::Level::AVX2), "avx2");
  EXPECT_STREQ(simd::name(simd::Level::AVX512), "avx512");
}

}  // namespace
}  // namespace dp
