#include "tab/compressed_model.hpp"

#include <gtest/gtest.h>

#include "dp/baseline_model.hpp"
#include "md/lattice.hpp"

namespace dp::tab {
namespace {

using core::DPModel;
using core::ModelConfig;

struct PathFixture {
  DPModel model;
  md::Configuration sys;
  TabulationSpec spec;

  PathFixture(int ntypes, std::uint64_t seed, double interval = 0.005)
      : model(ModelConfig::tiny(ntypes), seed),
        sys(ntypes == 1 ? md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, seed)
                        : md::make_water(1, 1, 1, seed)) {
    // rcut_smth = 1.0 in the tiny config; closest approach in these systems
    // is > 0.9 A, so s stays below s(0.9).
    spec = {0.0, TabulatedDP::s_max(model.config(), 0.9), interval};
  }
};

TEST(CompressedDP, MatchesBaselineClosely) {
  PathFixture su(1, 31);
  TabulatedDP tab(su.model, su.spec);
  core::BaselineDP base(su.model);
  CompressedDP comp(tab);
  md::NeighborList nl(base.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);

  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const auto ra = base.compute(su.sys.box, atoms_a, nl);
  const auto rb = comp.compute(su.sys.box, atoms_b, nl);

  const double per_atom = std::abs(ra.energy - rb.energy) / atoms_a.size();
  EXPECT_LT(per_atom, 1e-8);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-6) << "atom " << i;
}

TEST(CompressedDP, TwoTypesMatchBaseline) {
  PathFixture su(2, 32);
  TabulatedDP tab(su.model, su.spec);
  core::BaselineDP base(su.model);
  CompressedDP comp(tab);
  md::NeighborList nl(base.cutoff(), 0.5);
  nl.build(su.sys.box, su.sys.atoms.pos);

  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const auto ra = base.compute(su.sys.box, atoms_a, nl);
  const auto rb = comp.compute(su.sys.box, atoms_b, nl);
  EXPECT_LT(std::abs(ra.energy - rb.energy) / atoms_a.size(), 1e-8);
}

TEST(CompressedDP, ForcesAreExactGradientOfCompressedEnergy) {
  // Unlike the baseline comparison (approximation error), the compressed
  // model is self-consistent: its forces differentiate its own energy.
  PathFixture su(1, 33, /*interval=*/0.05);  // coarse table: still exact gradient
  TabulatedDP tab(su.model, su.spec);
  CompressedDP comp(tab);
  md::NeighborList nl(comp.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  comp.compute(su.sys.box, su.sys.atoms, nl);
  const auto forces = su.sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {3ul, 77ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = su.sys.atoms.pos[i];
      su.sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = comp.compute(su.sys.box, su.sys.atoms, nl).energy;
      su.sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = comp.compute(su.sys.box, su.sys.atoms, nl).energy;
      su.sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(CompressedDP, BlockedLayoutGivesIdenticalResults) {
  PathFixture su(1, 34);
  TabulatedDP tab(su.model, su.spec);
  CompressedDP aos(tab, /*use_blocked_layout=*/false);
  CompressedDP blk(tab, /*use_blocked_layout=*/true);
  md::NeighborList nl(aos.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const double ea = aos.compute(su.sys.box, atoms_a, nl).energy;
  const double eb = blk.compute(su.sys.box, atoms_b, nl).energy;
  EXPECT_DOUBLE_EQ(ea, eb);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(atoms_a.force[i] - atoms_b.force[i]), 0.0);
}

TEST(CompressedDP, VirialMatchesBaseline) {
  PathFixture su(1, 35);
  TabulatedDP tab(su.model, su.spec);
  core::BaselineDP base(su.model);
  CompressedDP comp(tab);
  md::NeighborList nl(base.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const auto ra = base.compute(su.sys.box, atoms_a, nl);
  const auto rb = comp.compute(su.sys.box, atoms_b, nl);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(ra.virial(r, c), rb.virial(r, c), 1e-5);
}

TEST(TabulatedDP, SMaxIsMonotoneInRMin) {
  const auto cfg = ModelConfig::tiny();
  EXPECT_GT(TabulatedDP::s_max(cfg, 0.5), TabulatedDP::s_max(cfg, 1.0));
  EXPECT_GT(TabulatedDP::s_max(cfg, 1.0), TabulatedDP::s_max(cfg, 2.0));
}

TEST(TabulatedDP, TotalBytesSumsPerTypeTables) {
  DPModel model(ModelConfig::tiny(2), 36);
  TabulationSpec spec{0.0, 1.0, 0.01};
  TabulatedDP tab(model, spec);
  EXPECT_EQ(tab.total_bytes(), tab.table(0).bytes() + tab.table(1).bytes());
  EXPECT_GT(tab.total_bytes(), 0u);
}

}  // namespace
}  // namespace dp::tab
