#include "tab/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace dp::tab {
namespace {

nn::EmbeddingNet make_net(std::uint64_t seed) {
  nn::EmbeddingNet net({8, 16, 32});
  Rng rng(seed);
  net.init_random(rng);
  return net;
}

TEST(TabulatedEmbedding, MatchesNetworkAtNodes) {
  auto net = make_net(1);
  TabulatedEmbedding table(net, {0.0, 2.0, 0.1});
  std::vector<double> g_tab(32), g_net(32);
  for (std::size_t i = 0; i <= table.n_intervals(); ++i) {
    const double s = 0.0 + table.interval() * static_cast<double>(i);
    table.eval(std::min(s, 2.0 - 1e-12), g_tab.data());
    net.eval(s, g_net.data());
    for (std::size_t ch = 0; ch < 32; ++ch) EXPECT_NEAR(g_tab[ch], g_net[ch], 1e-10);
  }
}

TEST(TabulatedEmbedding, AccuracyImprovesWithFinerInterval) {
  // The Fig 2 law: error vanishes as the interval shrinks.
  auto net = make_net(2);
  double prev_err = 1e300;
  for (double interval : {0.1, 0.01, 0.001}) {
    TabulatedEmbedding table(net, {0.0, 2.0, interval});
    double err = 0;
    std::vector<double> g_tab(32), g_net(32);
    for (int k = 0; k < 1000; ++k) {
      const double s = 2.0 * (k + 0.5) / 1000.0;
      table.eval(s, g_tab.data());
      net.eval(s, g_net.data());
      for (std::size_t ch = 0; ch < 32; ++ch)
        err = std::max(err, std::fabs(g_tab[ch] - g_net[ch]));
    }
    EXPECT_LT(err, prev_err / 100.0) << "interval " << interval;
    prev_err = err;
  }
}

TEST(TabulatedEmbedding, SizeGrowsInverselyWithInterval) {
  auto net = make_net(3);
  TabulatedEmbedding coarse(net, {0.0, 2.0, 0.1});
  TabulatedEmbedding fine(net, {0.0, 2.0, 0.01});
  EXPECT_NEAR(static_cast<double>(fine.bytes()) / static_cast<double>(coarse.bytes()), 10.0,
              0.5);
}

TEST(TabulatedEmbedding, DerivativeIsExactGradientOfTable) {
  // The tabulated dG/ds must differentiate the *table*, not the net — that
  // is what makes tabulated forces the exact gradient of tabulated energy.
  auto net = make_net(4);
  TabulatedEmbedding table(net, {0.0, 2.0, 0.05});
  std::vector<double> g(32), dg(32), gp(32), gm(32);
  const double h = 1e-7;
  for (double s : {0.111, 0.777, 1.499, 1.93}) {
    table.eval_with_deriv(s, g.data(), dg.data());
    table.eval(s + h, gp.data());
    table.eval(s - h, gm.data());
    for (std::size_t ch = 0; ch < 32; ++ch)
      EXPECT_NEAR(dg[ch], (gp[ch] - gm[ch]) / (2 * h), 1e-5);
  }
}

TEST(TabulatedEmbedding, C2AcrossNodes) {
  auto net = make_net(5);
  TabulatedEmbedding table(net, {0.0, 1.0, 0.1});
  std::vector<double> ga(32), gb(32), da(32), db(32);
  for (std::size_t k = 1; k < table.n_intervals(); ++k) {
    const double x = table.interval() * static_cast<double>(k);
    table.eval_with_deriv(x - 1e-10, ga.data(), da.data());
    table.eval_with_deriv(x + 1e-10, gb.data(), db.data());
    for (std::size_t ch = 0; ch < 32; ++ch) {
      EXPECT_NEAR(ga[ch], gb[ch], 1e-8);
      EXPECT_NEAR(da[ch], db[ch], 1e-6);
    }
  }
}

TEST(TabulatedEmbedding, BlockedLayoutIdenticalToAoS) {
  auto net = make_net(6);
  TabulatedEmbedding table(net, {0.0, 2.0, 0.02});
  std::vector<double> g_a(32), g_b(32), d_a(32), d_b(32);
  Rng rng(7);
  for (int k = 0; k < 200; ++k) {
    const double s = rng.uniform(0.0, 2.0);
    table.eval(s, g_a.data());
    table.eval_blocked(s, g_b.data());
    for (std::size_t ch = 0; ch < 32; ++ch) EXPECT_DOUBLE_EQ(g_a[ch], g_b[ch]);
    table.eval_with_deriv(s, g_a.data(), d_a.data());
    table.eval_with_deriv_blocked(s, g_b.data(), d_b.data());
    for (std::size_t ch = 0; ch < 32; ++ch) {
      EXPECT_DOUBLE_EQ(g_a[ch], g_b[ch]);
      EXPECT_DOUBLE_EQ(d_a[ch], d_b[ch]);
    }
  }
}

TEST(TabulatedEmbedding, BlockedLayoutHandlesNonMultipleOf16Channels) {
  nn::EmbeddingNet net({5, 10, 20});  // M = 20, not a multiple of 16
  Rng rng(8);
  net.init_random(rng);
  TabulatedEmbedding table(net, {0.0, 1.0, 0.05});
  std::vector<double> g_a(20), g_b(20);
  for (double s : {0.05, 0.41, 0.93}) {
    table.eval(s, g_a.data());
    table.eval_blocked(s, g_b.data());
    for (std::size_t ch = 0; ch < 20; ++ch) EXPECT_DOUBLE_EQ(g_a[ch], g_b[ch]);
  }
}

TEST(TabulatedEmbedding, ExtrapolationIsSmoothAndCounted) {
  auto net = make_net(9);
  TabulatedEmbedding table(net, {0.0, 1.0, 0.1});
  std::vector<double> g_in(32), g_out(32);
  table.eval(1.0 - 1e-9, g_in.data());
  EXPECT_EQ(table.extrapolations(), 0u);
  table.eval(1.0 + 1e-9, g_out.data());
  EXPECT_EQ(table.extrapolations(), 1u);
  for (std::size_t ch = 0; ch < 32; ++ch) EXPECT_NEAR(g_in[ch], g_out[ch], 1e-7);
}

TEST(TabulatedEmbedding, RejectsBadSpec) {
  auto net = make_net(10);
  EXPECT_THROW(TabulatedEmbedding(net, {1.0, 1.0, 0.1}), Error);
  EXPECT_THROW(TabulatedEmbedding(net, {0.0, 1.0, 0.0}), Error);
}

}  // namespace
}  // namespace dp::tab
