// Scalar-vs-SIMD parity for the float-lane tabulated walks (table_sp.cpp)
// and the mixed-precision fused model built on them — the single-precision
// sibling of test_simd_parity.cpp, pinning the same dispatch contract one
// element width down:
//   * at any fixed level, the AoS float walk and the batched blocked walk
//     agree BITWISE (each lane runs the same Horner fma sequence);
//   * forcing Level::Scalar reproduces the seed float expressions bit for
//     bit no matter what level ran before;
//   * the vector levels stay within 1 float ulp of scalar in-domain,
//     including the interval boundaries and their nextafter neighbors;
//   * the streaming (non-temporal) store path and its misaligned fallback
//     change nothing but the store instruction;
//   * MixedFusedDP forces are bitwise thread-count independent at every
//     level, for Single and Half storage.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fused/mixed_model.hpp"
#include "md/lattice.hpp"
#include "tab/table.hpp"
#include "tab/table_sp.hpp"

namespace dp {
namespace {

/// Forces a SIMD level for one scope, restoring the previous level after.
class LevelGuard {
 public:
  explicit LevelGuard(simd::Level lvl) : prev_(simd::active()) { simd::force(lvl); }
  ~LevelGuard() { simd::force(prev_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  simd::Level prev_;
};

class ThreadGuard {
 public:
  ThreadGuard() : saved_(omp_get_max_threads()) {}
  ~ThreadGuard() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> v{simd::Level::Scalar};
  const int cap = static_cast<int>(simd::max_supported());
  if (cap >= static_cast<int>(simd::Level::AVX2)) v.push_back(simd::Level::AVX2);
  if (cap >= static_cast<int>(simd::Level::AVX512)) v.push_back(simd::Level::AVX512);
  return v;
}

/// Distance in representable floats, sign-aware (0 iff bitwise-comparable).
std::int32_t ulp_diff_f(float a, float b) {
  if (a == b) return 0;  // covers +0/-0
  auto key = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    return i < 0 ? std::numeric_limits<std::int32_t>::min() - i : i;
  };
  const std::int32_t d = key(a) - key(b);
  return d < 0 ? -d : d;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

tab::TabulatedEmbedding make_ref(std::size_t m_out, std::uint64_t seed) {
  nn::EmbeddingNet net({8, 16, m_out});
  Rng rng(seed);
  net.init_random(rng);
  return tab::TabulatedEmbedding(net, {0.1, 1.9, 0.01});
}

/// Float probes spanning the table: the bounds as the SP table stores them
/// (the double bounds truncated to float), their nextafter neighbors, both
/// extrapolation sides, and a dense random fill.
std::vector<float> probe_set_f(float lo, float hi) {
  std::vector<float> s = {
      lo,
      hi,
      std::nextafterf(lo, -1e30f),
      std::nextafterf(lo, 1e30f),
      std::nextafterf(hi, -1e30f),
      std::nextafterf(hi, 1e30f),
      lo - 0.7f,  // extrapolating below
      hi + 0.7f,  // extrapolating above
      0.5f * (lo + hi),
  };
  Rng rng(19);
  for (int i = 0; i < 200; ++i)
    s.push_back(static_cast<float>(rng.uniform(lo - 0.2, hi + 0.2)));
  return s;
}

template <class Table>
struct TableRunF {
  std::vector<float> g_aos, dg_aos, g_val, g_batch, dg_batch;
};

template <class Table>
TableRunF<Table> run_table_f(const Table& table, const std::vector<float>& s) {
  const std::size_t m = table.output_dim();
  TableRunF<Table> r;
  const std::size_t total = s.size() * m;
  r.g_aos.resize(total);
  r.dg_aos.resize(total);
  r.g_val.resize(total);
  r.g_batch.resize(total);
  r.dg_batch.resize(total);
  for (std::size_t k = 0; k < s.size(); ++k) {
    table.eval_with_deriv(s[k], r.g_aos.data() + k * m, r.dg_aos.data() + k * m);
    table.eval(s[k], r.g_val.data() + k * m);
  }
  table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), r.g_batch.data(),
                                      r.dg_batch.data(), m);
  return r;
}

template <class Table>
void expect_layouts_agree(const tab::TabulatedEmbedding& ref, const Table& table,
                          const char* what) {
  const auto s = probe_set_f(static_cast<float>(ref.lo()), static_cast<float>(ref.hi()));
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);
    const auto r = run_table_f(table, s);
    EXPECT_TRUE(bitwise_equal(r.g_aos, r.g_val))
        << what << " m " << table.output_dim() << " " << simd::name(lvl);
    EXPECT_TRUE(bitwise_equal(r.g_aos, r.g_batch))
        << what << " m " << table.output_dim() << " " << simd::name(lvl);
    EXPECT_TRUE(bitwise_equal(r.dg_aos, r.dg_batch))
        << what << " m " << table.output_dim() << " " << simd::name(lvl);
  }
}

TEST(SimdParitySP, LayoutsAgreeBitwiseAtEveryLevel) {
  // 24 channels: a full 16-lane block plus a partial block, so the vector
  // body and the scalar tail are both exercised at both widths.
  for (std::size_t m_out : {std::size_t{32}, std::size_t{24}}) {
    const auto ref = make_ref(m_out, 5);
    expect_layouts_agree(ref, tab::TabulatedEmbeddingSP(ref), "sp");
    expect_layouts_agree(ref, tab::TabulatedEmbeddingHP(ref), "hp");
  }
}

TEST(SimdParitySP, ScalarFallbackIsBitStableAcrossForcedLevels) {
  const auto ref = make_ref(32, 6);
  const tab::TabulatedEmbeddingSP sp(ref);
  const tab::TabulatedEmbeddingHP hp(ref);
  const auto s = probe_set_f(static_cast<float>(ref.lo()), static_cast<float>(ref.hi()));
  std::vector<float> g0_sp, dg0_sp, g0_hp, dg0_hp;
  {
    LevelGuard guard(simd::Level::Scalar);
    const auto rs = run_table_f(sp, s);
    const auto rh = run_table_f(hp, s);
    g0_sp = rs.g_aos;
    dg0_sp = rs.dg_aos;
    g0_hp = rh.g_aos;
    dg0_hp = rh.dg_aos;
  }
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);  // run at lvl, then re-force scalar underneath
    {
      LevelGuard inner(simd::Level::Scalar);
      const auto rs = run_table_f(sp, s);
      const auto rh = run_table_f(hp, s);
      EXPECT_TRUE(bitwise_equal(rs.g_aos, g0_sp)) << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(rs.dg_aos, dg0_sp)) << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(rh.g_aos, g0_hp)) << simd::name(lvl);
      EXPECT_TRUE(bitwise_equal(rh.dg_aos, dg0_hp)) << simd::name(lvl);
    }
  }
}

TEST(SimdParitySP, VectorLevelsWithinOneUlpOfScalar) {
  const auto ref = make_ref(32, 7);
  const tab::TabulatedEmbeddingSP table(ref);
  const float flo = static_cast<float>(ref.lo());
  const float fhi = static_cast<float>(ref.hi());
  const auto s = probe_set_f(flo, fhi);
  const std::size_t m = table.output_dim();
  std::vector<float> g0, dg0;
  {
    LevelGuard guard(simd::Level::Scalar);
    const auto r = run_table_f(table, s);
    g0 = r.g_aos;
    dg0 = r.dg_aos;
  }
  for (simd::Level lvl : available_levels()) {
    if (lvl == simd::Level::Scalar) continue;
    LevelGuard guard(lvl);
    const auto r = run_table_f(table, s);
    // Same cancellation carve-out as the double test: a channel whose value
    // is the small residue of cancelling Horner terms is held to absolute
    // agreement at 2 eps x the channel's magnitude instead of 1 ulp.
    std::vector<float> gsc(m, 1.0f), dsc(m, 1.0f);
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (std::size_t ch = 0; ch < m; ++ch) {
        gsc[ch] = std::max(gsc[ch], std::fabs(g0[k * m + ch]));
        dsc[ch] = std::max(dsc[ch], std::fabs(dg0[k * m + ch]));
      }
    }
    const float eps2 = 2.0f * std::numeric_limits<float>::epsilon();
    std::int32_t worst_in = 0;
    float worst_rel_out = 0.0f;
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (std::size_t ch = 0; ch < m; ++ch) {
        const std::size_t idx = k * m + ch;
        if (s[k] >= flo && s[k] <= fhi) {
          if (std::fabs(r.g_aos[idx] - g0[idx]) > eps2 * gsc[ch])
            worst_in = std::max(worst_in, ulp_diff_f(r.g_aos[idx], g0[idx]));
          if (std::fabs(r.dg_aos[idx] - dg0[idx]) > eps2 * dsc[ch])
            worst_in = std::max(worst_in, ulp_diff_f(r.dg_aos[idx], dg0[idx]));
        } else {
          const auto rel = [](float a, float b) {
            return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1.0f});
          };
          worst_rel_out = std::max(worst_rel_out, rel(r.g_aos[idx], g0[idx]));
          worst_rel_out = std::max(worst_rel_out, rel(r.dg_aos[idx], dg0[idx]));
        }
      }
    }
    EXPECT_LE(worst_in, 1) << simd::name(lvl);
    EXPECT_LE(worst_rel_out, 1e-4f) << simd::name(lvl);  // float-scale Horner cancellation
  }
}

template <class Table>
void expect_streaming_parity(const tab::TabulatedEmbedding& ref, const Table& table,
                             const char* what) {
  const auto s = probe_set_f(static_cast<float>(ref.lo()), static_cast<float>(ref.hi()));
  const std::size_t m = table.output_dim();
  AlignedVector<float> g_reg(s.size() * m), dg_reg(s.size() * m);
  AlignedVector<float> g_nt(s.size() * m), dg_nt(s.size() * m);
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);
    table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_reg.data(), dg_reg.data(),
                                        m, /*streaming=*/false);
    table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_nt.data(), dg_nt.data(), m,
                                        /*streaming=*/true);
    EXPECT_EQ(0, std::memcmp(g_reg.data(), g_nt.data(), s.size() * m * sizeof(float)))
        << what << " m " << m << " " << simd::name(lvl);
    EXPECT_EQ(0, std::memcmp(dg_reg.data(), dg_nt.data(), s.size() * m * sizeof(float)))
        << what << " m " << m << " " << simd::name(lvl);
    // Misaligned rows (offset by one float) must take the fallback and
    // still produce the same bits.
    AlignedVector<float> g_off(s.size() * m + 1), dg_off(s.size() * m + 1);
    table.eval_with_deriv_blocked_batch(s.data(), 1, s.size(), g_off.data() + 1,
                                        dg_off.data() + 1, m, /*streaming=*/true);
    EXPECT_EQ(0, std::memcmp(g_reg.data(), g_off.data() + 1, s.size() * m * sizeof(float)))
        << what << " m " << m << " " << simd::name(lvl);
  }
}

TEST(SimdParitySP, StreamingBatchMatchesRegularBitwise) {
  for (std::size_t m_out : {std::size_t{32}, std::size_t{24}}) {
    const auto ref = make_ref(m_out, 9);
    expect_streaming_parity(ref, tab::TabulatedEmbeddingSP(ref), "sp");
    expect_streaming_parity(ref, tab::TabulatedEmbeddingHP(ref), "hp");
  }
}

TEST(SimdParitySP, ExtrapolationTelemetryIsLevelIndependent) {
  const auto s = probe_set_f(0.1f, 1.9f);
  std::vector<std::size_t> counts_sp, counts_hp;
  for (simd::Level lvl : available_levels()) {
    const auto ref = make_ref(32, 8);  // fresh tables: counters start at 0
    const tab::TabulatedEmbeddingSP sp(ref);
    const tab::TabulatedEmbeddingHP hp(ref);
    LevelGuard guard(lvl);
    (void)run_table_f(sp, s);
    (void)run_table_f(hp, s);
    counts_sp.push_back(sp.extrapolations());
    counts_hp.push_back(hp.extrapolations());
  }
  ASSERT_FALSE(counts_sp.empty());
  EXPECT_GT(counts_sp[0], 0u);
  for (std::size_t i = 1; i < counts_sp.size(); ++i) {
    EXPECT_EQ(counts_sp[i], counts_sp[0]);
    EXPECT_EQ(counts_hp[i], counts_hp[0]);
  }
}

TEST(SimdParitySP, LanesSpMatchesLevel) {
  EXPECT_EQ(simd::lanes_sp(simd::Level::Scalar), 1u);
  EXPECT_EQ(simd::lanes_sp(simd::Level::AVX2), 8u);
  EXPECT_EQ(simd::lanes_sp(simd::Level::AVX512), 16u);
  for (simd::Level lvl : available_levels()) {
    LevelGuard guard(lvl);
    EXPECT_EQ(simd::lanes_sp(), simd::lanes_sp(lvl));
    // Float lanes are always exactly twice the double lanes.
    EXPECT_EQ(simd::lanes_sp(), 2 * simd::lanes() - (lvl == simd::Level::Scalar ? 1 : 0));
  }
}

TEST(SimdParitySP, MixedForcesAreThreadCountInvariantAtEveryLevel) {
  // The mixed model parallelizes over atoms with per-thread scratch and a
  // deterministic master fold — forces must be bitwise identical at 1, 2
  // and 8 threads, at every dispatch level, for both storage widths.
  using fused::MixedFusedDP;
  using fused::MixedPrecision;
  const core::DPModel model(core::ModelConfig::tiny(2), 31);
  const md::Configuration sys = md::make_water(1, 1, 1, 31);
  const tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(model.config(), 0.9), 0.005};
  const tab::TabulatedDP tab(model, spec);

  ThreadGuard tg;
  for (MixedPrecision prec : {MixedPrecision::Single, MixedPrecision::Half}) {
    for (simd::Level lvl : available_levels()) {
      LevelGuard guard(lvl);
      std::vector<Vec3> f1;
      for (int threads : {1, 2, 8}) {
        omp_set_num_threads(threads);
        MixedFusedDP mixed(tab, prec);
        md::NeighborList nl(mixed.cutoff(), 1.0);
        nl.build(sys.box, sys.atoms.pos);
        md::Atoms atoms = sys.atoms;
        mixed.compute(sys.box, atoms, nl);
        if (threads == 1) {
          f1 = atoms.force;
        } else {
          ASSERT_EQ(f1.size(), atoms.force.size());
          EXPECT_EQ(0, std::memcmp(f1.data(), atoms.force.data(),
                                   f1.size() * sizeof(Vec3)))
              << simd::name(lvl) << " threads " << threads
              << (prec == MixedPrecision::Half ? " half" : " single");
        }
      }
    }
  }
}

}  // namespace
}  // namespace dp
