#include "tab/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fused/fused_model.hpp"
#include "md/lattice.hpp"

namespace dp::tab {
namespace {

using core::DPModel;
using core::ModelConfig;

TEST(TableIo, StreamRoundTripIsBitIdentical) {
  nn::EmbeddingNet net({4, 8, 16});
  Rng rng(1);
  net.init_random(rng);
  TabulatedEmbedding table(net, {0.0, 1.5, 0.02});

  std::stringstream ss;
  table.save(ss);
  TabulatedEmbedding loaded = TabulatedEmbedding::load(ss);

  EXPECT_EQ(loaded.output_dim(), table.output_dim());
  EXPECT_EQ(loaded.n_intervals(), table.n_intervals());
  EXPECT_DOUBLE_EQ(loaded.interval(), table.interval());
  std::vector<double> a(16), b(16), da(16), db(16);
  Rng probe(2);
  for (int k = 0; k < 100; ++k) {
    const double s = probe.uniform(0.0, 1.5);
    table.eval_with_deriv(s, a.data(), da.data());
    loaded.eval_with_deriv(s, b.data(), db.data());
    for (int ch = 0; ch < 16; ++ch) {
      EXPECT_DOUBLE_EQ(a[ch], b[ch]);
      EXPECT_DOUBLE_EQ(da[ch], db[ch]);
    }
    // The blocked layout must be rebuilt on load too.
    loaded.eval_blocked(s, b.data());
    for (int ch = 0; ch < 16; ++ch) EXPECT_DOUBLE_EQ(a[ch], b[ch]);
  }
}

TEST(TableIo, BadMagicRejected) {
  std::stringstream ss;
  ss.write("garbage header data", 19);
  EXPECT_THROW(TabulatedEmbedding::load(ss), Error);
}

TEST(CompressedModelIo, BundleRoundTripMatchesForces) {
  DPModel model(ModelConfig::tiny(2), 5);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01};
  TabulatedDP tabulated(model, spec);

  const std::string path = ::testing::TempDir() + "/dp_bundle_test.dpc";
  save_compressed_model(path, tabulated);
  auto bundle = CompressedModel::load(path);

  EXPECT_EQ(bundle.model().config().ntypes, 2);
  EXPECT_EQ(bundle.tabulated().total_bytes(), tabulated.total_bytes());

  // Forces from the original and the loaded bundle are bit-identical.
  auto sys = md::make_water(1, 1, 1, 6);
  fused::FusedDP original(tabulated);
  fused::FusedDP loaded(bundle.tabulated());
  md::NeighborList nl(original.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms atoms_a = sys.atoms;
  md::Atoms atoms_b = sys.atoms;
  EXPECT_DOUBLE_EQ(original.compute(sys.box, atoms_a, nl).energy,
                   loaded.compute(sys.box, atoms_b, nl).energy);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(atoms_a.force[i] - atoms_b.force[i]), 0.0);
  std::remove(path.c_str());
}

TEST(CompressedModelIo, PrebuiltTableCtorValidates) {
  DPModel model(ModelConfig::tiny(2), 7);
  TabulationSpec spec{0.0, 1.0, 0.05};
  // Wrong table count.
  std::vector<TabulatedEmbedding> one;
  one.emplace_back(model.embedding(0), spec);
  EXPECT_THROW(TabulatedDP(model, spec, std::move(one)), Error);
}

TEST(CompressedModelIo, MissingFileThrows) {
  EXPECT_THROW(CompressedModel::load("/nonexistent/bundle.dpc"), Error);
}

}  // namespace
}  // namespace dp::tab
