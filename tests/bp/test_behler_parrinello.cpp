#include "bp/behler_parrinello.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "bp/bp_trainer.hpp"
#include "md/simulation.hpp"

namespace dp::bp {
namespace {

BpConfig small_cfg() {
  BpConfig cfg;
  cfg.rcut = 4.5;
  cfg.eta = {2.0, 2.0, 0.5, 0.5};
  cfg.rs = {2.0, 3.5, 2.0, 3.5};
  cfg.hidden = {12, 12};
  return cfg;
}

TEST(BehlerParrinello, ForcesMatchFiniteDifference) {
  BehlerParrinello bp(small_cfg(), 3);
  auto sys = md::make_fcc(4, 4, 4, 3.7, 63.546, 0.1, 4);
  md::NeighborList nl(bp.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  bp.compute(sys.box, sys.atoms, nl);
  const auto forces = sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 42ul, 111ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = sys.atoms.pos[i];
      sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = bp.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = bp.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(BehlerParrinello, RotationInvariant) {
  // Radial features only: energies invariant, forces covariant.
  BehlerParrinello bp(small_cfg(), 5);
  md::Configuration cluster;
  cluster.box = md::Box(100, 100, 100);
  cluster.atoms.mass_by_type = {63.546};
  Rng rng(6);
  for (int k = 0; k < 18; ++k)
    cluster.atoms.add(Vec3{50, 50, 50} + rng.unit_vector() * (3.0 * std::cbrt(rng.uniform())),
                      0);
  md::NeighborList nl(bp.cutoff(), 0.5);
  nl.build(cluster.box, cluster.atoms.pos);
  const double e0 = bp.compute(cluster.box, cluster.atoms, nl).energy;
  const auto f0 = cluster.atoms.force;

  const Mat3 R = rotation(rng.unit_vector(), 1.1);
  md::Configuration rot = cluster;
  for (auto& r : rot.atoms.pos) r = Vec3{50, 50, 50} + R * (r - Vec3{50, 50, 50});
  md::NeighborList nl2(bp.cutoff(), 0.5);
  nl2.build(rot.box, rot.atoms.pos);
  EXPECT_NEAR(bp.compute(rot.box, rot.atoms, nl2).energy, e0, 1e-10);
  for (std::size_t i = 0; i < f0.size(); ++i)
    EXPECT_NEAR(norm(R * f0[i] - rot.atoms.force[i]), 0.0, 1e-9);
}

TEST(BehlerParrinello, SmoothAtCutoff) {
  BehlerParrinello bp(small_cfg(), 7);
  md::Configuration pair;
  pair.box = md::Box(50, 50, 50);
  pair.atoms.mass_by_type = {1.0};
  pair.atoms.add({20, 20, 20}, 0);
  pair.atoms.add({20 + bp.cutoff() - 1e-7, 20, 20}, 0);
  md::NeighborList nl(bp.cutoff(), 1.0);
  nl.build(pair.box, pair.atoms.pos);
  const double e_in = bp.compute(pair.box, pair.atoms, nl).energy;
  pair.atoms.pos[1].x = 20 + bp.cutoff() + 1e-7;
  const double e_out = bp.compute(pair.box, pair.atoms, nl).energy;
  EXPECT_NEAR(e_in, e_out, 1e-9);
}

TEST(BehlerParrinello, NveConservesEnergy) {
  BehlerParrinello bp(small_cfg(), 8);
  auto sys = md::make_fcc(3, 3, 3, 3.7);
  md::SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.001;
  sc.steps = 100;
  sc.temperature = 150.0;
  sc.thermo_every = 25;
  md::Simulation sim(sys, bp, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  for (const auto& s : trace)
    EXPECT_NEAR(s.total(), e0, 1e-4 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

TEST(BehlerParrinello, NewtonThirdLaw) {
  BehlerParrinello bp(small_cfg(), 9);
  auto sys = md::make_fcc(4, 4, 4, 3.7, 63.546, 0.08, 10);
  md::NeighborList nl(bp.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  bp.compute(sys.box, sys.atoms, nl);
  Vec3 total{};
  for (const auto& f : sys.atoms.force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-10);
}

TEST(BehlerParrinello, ConfigValidation) {
  BpConfig bad = small_cfg();
  bad.rs.pop_back();
  EXPECT_THROW(BehlerParrinello{bad}, Error);
  BpConfig bad2 = small_cfg();
  bad2.rcut = -1;
  EXPECT_THROW(BehlerParrinello{bad2}, Error);
}

TEST(BpTraining, GradcheckOnWeights) {
  BehlerParrinello bp(small_cfg(), 11);
  auto frame = train::Dataset::lj_copper(1, 2, 0.12, 12).frames[0];
  md::NeighborList nl(bp.cutoff(), 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);

  std::vector<std::vector<nn::DenseLayer::Grads>> grads(1);
  grads[0].resize(bp.net(0).layers().size());
  for (std::size_t l = 0; l < grads[0].size(); ++l) grads[0][l].init(bp.net(0).layers()[l]);
  bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl, 1.0, &grads);

  auto& w = bp.net(0).layers()[1].weights();
  const double h = 1e-6;
  for (std::size_t k : {std::size_t{0}, w.size() - 1}) {
    const double w0 = w.data()[k];
    w.data()[k] = w0 + h;
    const double ep = bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl);
    w.data()[k] = w0 - h;
    const double em = bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl);
    w.data()[k] = w0;
    EXPECT_NEAR(grads[0][1].w.data()[k], (ep - em) / (2 * h), 2e-5) << "k=" << k;
  }
}

TEST(BpTraining, RegressesPairwiseLjWell) {
  // LJ is pairwise-radial — exactly what radial G2 features describe, so BP
  // should fit it quickly and generalize.
  BehlerParrinello bp(small_cfg(), 13);
  auto data = train::Dataset::lj_copper(14, 2, 0.12, 14);
  auto held = data.split_holdout(7);
  const double before = evaluate_energy(bp, data);
  const auto r = train_energy(bp, data, 40, 5e-3);
  EXPECT_LT(r.epoch_rmse.back(), 0.2 * before);
  EXPECT_LT(evaluate_energy(bp, held), 0.5 * before);
}

TEST(BpTraining, LossTraceIsRecorded) {
  BehlerParrinello bp(small_cfg(), 15);
  auto data = train::Dataset::lj_copper(4, 2, 0.1, 16);
  const auto r = train_energy(bp, data, 5, 1e-3);
  ASSERT_EQ(r.epoch_rmse.size(), 5u);
  for (double v : r.epoch_rmse) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace dp::bp
