// The radial se_r descriptor path: exact-gradient forces, trivial rotation
// invariance, and genuinely cheaper than se_a.
#include "fused/se_r_model.hpp"

#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"

namespace dp::fused {
namespace {

using core::DescriptorKind;
using core::DPModel;
using core::ModelConfig;
using tab::TabulatedDP;
using tab::TabulationSpec;

ModelConfig se_r_cfg(int ntypes = 1) {
  ModelConfig cfg = ModelConfig::tiny(ntypes);
  cfg.descriptor = DescriptorKind::SeR;
  return cfg;
}

struct SeRFixture {
  DPModel model;
  TabulatedDP tab;
  md::Configuration sys;

  explicit SeRFixture(int ntypes, std::uint64_t seed)
      : model(se_r_cfg(ntypes), seed),
        tab(model, TabulationSpec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01}),
        sys(ntypes == 1 ? md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, seed)
                        : md::make_water(1, 1, 1, seed)) {}
};

TEST(SeR, FittingNetInputIsM) {
  const auto cfg = se_r_cfg();
  EXPECT_EQ(cfg.descriptor_dim(), cfg.m());
  DPModel model(cfg, 1);
  EXPECT_EQ(model.fitting(0).input_dim(), cfg.m());
}

TEST(SeR, RejectsSeAModel) {
  DPModel model(ModelConfig::tiny(), 2);
  TabulatedDP tab(model, {0.0, 1.0, 0.05});
  EXPECT_THROW(SeRFusedDP{tab}, Error);
}

TEST(SeR, ForcesAreNegativeGradient) {
  SeRFixture f(2, 3);
  SeRFusedDP ff(f.tab);
  md::NeighborList nl(ff.cutoff(), 0.5);
  nl.build(f.sys.box, f.sys.atoms.pos);
  ff.compute(f.sys.box, f.sys.atoms, nl);
  const auto forces = f.sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 33ul, 150ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = f.sys.atoms.pos[i];
      f.sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = ff.compute(f.sys.box, f.sys.atoms, nl).energy;
      f.sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = ff.compute(f.sys.box, f.sys.atoms, nl).energy;
      f.sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(SeR, RotationInvarianceExact) {
  // Radial-only: rotating an isolated cluster changes NOTHING but force
  // directions.
  SeRFixture f(1, 4);
  md::Configuration cluster;
  cluster.box = md::Box(100, 100, 100);
  cluster.atoms.mass_by_type = {63.546};
  Rng rng(5);
  for (int k = 0; k < 20; ++k)
    cluster.atoms.add(Vec3{50, 50, 50} + rng.unit_vector() * (3.5 * std::cbrt(rng.uniform())),
                      0);
  SeRFusedDP ff(f.tab);
  md::NeighborList nl(ff.cutoff(), 0.5);
  nl.build(cluster.box, cluster.atoms.pos);
  const double e0 = ff.compute(cluster.box, cluster.atoms, nl).energy;
  const auto f0 = cluster.atoms.force;

  const Mat3 R = rotation(rng.unit_vector(), 0.9);
  md::Configuration rotated = cluster;
  for (auto& r : rotated.atoms.pos) r = Vec3{50, 50, 50} + R * (r - Vec3{50, 50, 50});
  md::NeighborList nl2(ff.cutoff(), 0.5);
  nl2.build(rotated.box, rotated.atoms.pos);
  const double e1 = ff.compute(rotated.box, rotated.atoms, nl2).energy;
  EXPECT_NEAR(e0, e1, 1e-10);
  for (std::size_t i = 0; i < f0.size(); ++i)
    EXPECT_NEAR(norm(R * f0[i] - rotated.atoms.force[i]), 0.0, 1e-9);
}

TEST(SeR, NewtonThirdLaw) {
  SeRFixture f(1, 6);
  SeRFusedDP ff(f.tab);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);
  ff.compute(f.sys.box, f.sys.atoms, nl);
  Vec3 total{};
  for (const auto& fo : f.sys.atoms.force) total += fo;
  EXPECT_NEAR(norm(total), 0.0, 1e-10);
}

TEST(SeR, NveEnergyConservation) {
  SeRFixture f(1, 7);
  SeRFusedDP ff(f.tab);
  md::SimulationConfig sc;
  sc.dt = 0.0005;
  sc.steps = 60;
  sc.temperature = 100.0;
  sc.skin = 1.0;
  sc.thermo_every = 15;
  md::Simulation sim(f.sys, ff, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  for (const auto& s : trace)
    EXPECT_NEAR(s.total(), e0, 1e-5 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

TEST(SeR, EnergyContinuousAcrossCutoff) {
  // The padding contribution g(0) must make the descriptor smooth as a
  // neighbor crosses the cutoff (DeePMD's reduce-mean-over-all-slots
  // semantics, reproduced analytically here).
  SeRFixture f(1, 9);
  md::Configuration pair;
  pair.box = md::Box(50, 50, 50);
  pair.atoms.mass_by_type = {63.546};
  pair.atoms.add({20, 20, 20}, 0);
  pair.atoms.add({20 + f.model.config().rcut - 1e-7, 20, 20}, 0);  // just inside
  SeRFusedDP ff(f.tab);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(pair.box, pair.atoms.pos);
  const double e_in = ff.compute(pair.box, pair.atoms, nl).energy;
  pair.atoms.pos[1].x = 20 + f.model.config().rcut + 1e-7;  // just outside
  const double e_out = ff.compute(pair.box, pair.atoms, nl).energy;
  EXPECT_NEAR(e_in, e_out, 1e-8);
}

TEST(SeR, PaddingCountDoesNotChangePhysicsOnlySel) {
  // Two models identical except for the reserved slot count must give the
  // same energies up to the fixed 1/N_m normalization being re-learned —
  // here we check the sharper invariant: with the SAME model, adding a far
  // atom beyond the cutoff changes nothing.
  SeRFixture f(1, 10);
  md::Configuration sys;
  sys.box = md::Box(60, 60, 60);
  sys.atoms.mass_by_type = {63.546};
  sys.atoms.add({30, 30, 30}, 0);
  sys.atoms.add({32, 30, 30}, 0);
  SeRFusedDP ff(f.tab);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  const double e2 = ff.compute(sys.box, sys.atoms, nl).energy;

  sys.atoms.add({50, 50, 50}, 0);  // isolated spectator far outside rc
  md::NeighborList nl3(ff.cutoff(), 1.0);
  nl3.build(sys.box, sys.atoms.pos);
  const double e3 = ff.compute(sys.box, sys.atoms, nl3).energy;
  // The spectator adds its own (isolated-atom) energy but must not perturb
  // the pair: E3 - E2 equals the single-atom reference energy.
  md::Configuration lone;
  lone.box = sys.box;
  lone.atoms.mass_by_type = {63.546};
  lone.atoms.add({30, 30, 30}, 0);
  md::NeighborList nl1(ff.cutoff(), 1.0);
  nl1.build(lone.box, lone.atoms.pos);
  const double e1 = ff.compute(lone.box, lone.atoms, nl1).energy;
  EXPECT_NEAR(e3 - e2, e1, 1e-10);
}

TEST(SeR, CheaperThanSeA) {
  // Same widths, same system: the radial path does ~1/4 the embedding-stage
  // work (no 4-column contraction) plus a much smaller fitting input.
  SeRFixture radial(1, 8);
  DPModel se_a_model(ModelConfig::tiny(), 8);
  TabulatedDP se_a_tab(se_a_model,
                       {0.0, TabulatedDP::s_max(se_a_model.config(), 0.9), 0.01});
  FusedDP se_a_ff(se_a_tab);
  SeRFusedDP se_r_ff(radial.tab);
  md::NeighborList nl(se_a_ff.cutoff(), 1.0);
  nl.build(radial.sys.box, radial.sys.atoms.pos);
  // Median of several batches: wall-clock comparisons on a shared core flip
  // on scheduler bursts when taken from a single sample each.
  const double t_a = dp::time_per_call(
      [&] { se_a_ff.compute(radial.sys.box, radial.sys.atoms, nl); }, 0.1, 50, 5);
  const double t_r = dp::time_per_call(
      [&] { se_r_ff.compute(radial.sys.box, radial.sys.atoms, nl); }, 0.1, 50, 5);
  EXPECT_LT(t_r, t_a);
}

}  // namespace
}  // namespace dp::fused
