#include "fused/mixed_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "tab/table_sp.hpp"

namespace dp::fused {
namespace {

using core::DPModel;
using core::ModelConfig;
using tab::TabulatedDP;
using tab::TabulationSpec;

struct MixedFixture {
  DPModel model;
  md::Configuration sys;
  TabulationSpec spec;

  explicit MixedFixture(int ntypes, std::uint64_t seed)
      : model(ModelConfig::tiny(ntypes), seed),
        sys(ntypes == 1 ? md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, seed)
                        : md::make_water(1, 1, 1, seed)) {
    spec = {0.0, TabulatedDP::s_max(model.config(), 0.9), 0.005};
  }
};

TEST(TabulatedEmbeddingSP, MatchesDoubleTableToFloatPrecision) {
  nn::EmbeddingNet net({8, 16, 32});
  Rng rng(1);
  net.init_random(rng);
  tab::TabulatedEmbedding table(net, {0.0, 2.0, 0.01});
  tab::TabulatedEmbeddingSP table_sp(table);
  EXPECT_EQ(table_sp.output_dim(), 32u);
  EXPECT_EQ(table_sp.bytes() * 2, table.bytes());  // half the memory

  std::vector<double> g(32), dg(32);
  std::vector<float> gf(32), dgf(32);
  for (double s : {0.05, 0.5, 1.3, 1.95}) {
    table.eval_with_deriv(s, g.data(), dg.data());
    table_sp.eval_with_deriv(static_cast<float>(s), gf.data(), dgf.data());
    for (std::size_t ch = 0; ch < 32; ++ch) {
      EXPECT_NEAR(gf[ch], g[ch], 2e-6) << "s=" << s;
      EXPECT_NEAR(dgf[ch], dg[ch], 2e-5) << "s=" << s;
    }
  }
}

TEST(MixedFusedDP, EnergyClosesToDoublePath) {
  MixedFixture f(1, 61);
  TabulatedDP tab(f.model, f.spec);
  FusedDP fused(tab);
  MixedFusedDP mixed(tab);
  md::NeighborList nl(fused.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);

  md::Atoms atoms_a = f.sys.atoms;
  md::Atoms atoms_b = f.sys.atoms;
  const double ed = fused.compute(f.sys.box, atoms_a, nl).energy;
  const double em = mixed.compute(f.sys.box, atoms_b, nl).energy;
  // Per-atom energy error at the single-precision level.
  EXPECT_LT(std::abs(ed - em) / static_cast<double>(atoms_a.size()), 1e-5);
}

TEST(MixedFusedDP, ForcesCloseToDoublePath) {
  MixedFixture f(2, 62);
  TabulatedDP tab(f.model, f.spec);
  FusedDP fused(tab);
  MixedFusedDP mixed(tab);
  md::NeighborList nl(fused.cutoff(), 0.5);
  nl.build(f.sys.box, f.sys.atoms.pos);

  md::Atoms atoms_a = f.sys.atoms;
  md::Atoms atoms_b = f.sys.atoms;
  fused.compute(f.sys.box, atoms_a, nl);
  mixed.compute(f.sys.box, atoms_b, nl);
  double rmse = 0;
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    rmse += norm2(atoms_a.force[i] - atoms_b.force[i]);
  rmse = std::sqrt(rmse / (3.0 * static_cast<double>(atoms_a.size())));
  EXPECT_LT(rmse, 1e-4);  // eV/A, single-precision force noise
  EXPECT_GT(rmse, 0.0);   // and it is genuinely a different precision
}

TEST(MixedFusedDP, VirialCloseToDoublePath) {
  MixedFixture f(1, 63);
  TabulatedDP tab(f.model, f.spec);
  FusedDP fused(tab);
  MixedFusedDP mixed(tab);
  md::NeighborList nl(fused.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);
  md::Atoms atoms_a = f.sys.atoms;
  md::Atoms atoms_b = f.sys.atoms;
  const auto rd = fused.compute(f.sys.box, atoms_a, nl);
  const auto rm = mixed.compute(f.sys.box, atoms_b, nl);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(rd.virial(r, c), rm.virial(r, c),
                  1e-3 * std::max(1.0, std::abs(rd.virial(r, c))));
}

TEST(MixedFusedDP, NewtonThirdLawStillExact) {
  // Force accumulation is double: the total must still vanish to double
  // precision even though contributions are float.
  MixedFixture f(1, 64);
  TabulatedDP tab(f.model, f.spec);
  MixedFusedDP mixed(tab);
  md::NeighborList nl(mixed.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);
  mixed.compute(f.sys.box, f.sys.atoms, nl);
  Vec3 total{};
  for (const auto& fo : f.sys.atoms.force) total += fo;
  // Pair gradients are applied antisymmetrically, so cancellation is exact
  // regardless of their precision.
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(MixedFusedDP, ShortNveRunIsStable) {
  // The paper flags mixed-precision accuracy as future work; the fused
  // mixed path must at least integrate stably over a short trajectory.
  MixedFixture f(1, 65);
  TabulatedDP tab(f.model, f.spec);
  MixedFusedDP mixed(tab);
  md::SimulationConfig sc;
  sc.dt = 0.0005;
  sc.steps = 40;
  sc.temperature = 100.0;
  sc.skin = 1.0;
  sc.thermo_every = 10;
  md::Simulation sim(f.sys, mixed, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  for (const auto& s : trace)
    EXPECT_NEAR(s.total(), e0, 1e-3 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

TEST(MixedFusedDP, HalfPrecisionHalvesTablesAgain) {
  MixedFixture f(1, 66);
  TabulatedDP tab(f.model, f.spec);
  MixedFusedDP single(tab, MixedPrecision::Single);
  MixedFusedDP half(tab, MixedPrecision::Half);
  EXPECT_EQ(half.table_bytes() * 2, single.table_bytes());
}

TEST(MixedFusedDP, HalfPrecisionShowsTheAccuracyProblem) {
  // The paper's Sec 7 remark made quantitative: fp16 coefficients degrade
  // forces visibly relative to the single-precision path.
  MixedFixture f(1, 67);
  TabulatedDP tab(f.model, f.spec);
  FusedDP reference(tab);
  MixedFusedDP single(tab, MixedPrecision::Single);
  MixedFusedDP half(tab, MixedPrecision::Half);
  md::NeighborList nl(reference.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);

  auto force_rmse = [&](md::ForceField& ff) {
    md::Atoms ref_atoms = f.sys.atoms;
    md::Atoms test_atoms = f.sys.atoms;
    reference.compute(f.sys.box, ref_atoms, nl);
    ff.compute(f.sys.box, test_atoms, nl);
    double s = 0;
    for (std::size_t i = 0; i < ref_atoms.size(); ++i)
      s += norm2(ref_atoms.force[i] - test_atoms.force[i]);
    return std::sqrt(s / (3.0 * static_cast<double>(ref_atoms.size())));
  };
  const double err_single = force_rmse(single);
  const double err_half = force_rmse(half);
  EXPECT_GT(err_half, 50.0 * err_single);  // clearly degraded...
  EXPECT_LT(err_half, 1.0);                // ...but not garbage
}

TEST(MixedFusedDP, HalfPrecisionEnergyStillReasonable) {
  MixedFixture f(2, 68);
  TabulatedDP tab(f.model, f.spec);
  FusedDP reference(tab);
  MixedFusedDP half(tab, MixedPrecision::Half);
  md::NeighborList nl(reference.cutoff(), 0.5);
  nl.build(f.sys.box, f.sys.atoms.pos);
  md::Atoms a = f.sys.atoms, b = f.sys.atoms;
  const double ed = reference.compute(f.sys.box, a, nl).energy;
  const double eh = half.compute(f.sys.box, b, nl).energy;
  EXPECT_LT(std::abs(ed - eh) / static_cast<double>(a.size()), 5e-3);
}

}  // namespace
}  // namespace dp::fused
