// Mixed-precision error budget, following the paper's Fig 2 methodology:
// separate the error sources of the tabulated path by refining the grid
// interval (0.01 -> 0.001). Tabulation error against the analytic baseline
// shrinks steeply with the interval (quintic Hermite), while the
// mixed-vs-double force RMSE is a float-rounding floor the finer grid
// cannot buy back. The budgets here pin both regimes quantitatively, plus
// a short-NVE energy-drift acceptance bound for the mixed integrator —
// the paper defers optimized-path mixed precision to future work (Sec 7),
// so the acceptance criteria live in the tests rather than the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "fused/mixed_model.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"

namespace dp::fused {
namespace {

using core::BaselineDP;
using core::DPModel;
using core::ModelConfig;
using tab::TabulatedDP;
using tab::TabulationSpec;

struct BudgetFixture {
  DPModel model;
  md::Configuration sys;

  explicit BudgetFixture(int ntypes, std::uint64_t seed)
      : model(ModelConfig::tiny(ntypes), seed),
        sys(ntypes == 1 ? md::make_fcc(3, 3, 3, 3.634, 63.546, 0.1, seed)
                        : md::make_water(1, 1, 1, seed)) {}

  TabulationSpec spec(double interval) const {
    return {0.0, TabulatedDP::s_max(model.config(), 0.9), interval};
  }
};

double force_rmse(const md::Box& box, const md::Atoms& start, const md::NeighborList& nl,
                  md::ForceField& ref, md::ForceField& test) {
  md::Atoms a = start, b = start;
  ref.compute(box, a, nl);
  test.compute(box, b, nl);
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += norm2(a.force[i] - b.force[i]);
  return std::sqrt(s / (3.0 * static_cast<double>(a.size())));
}

TEST(MixedPrecisionBudget, TabulationErrorShrinksButFloatFloorDoesNot) {
  BudgetFixture f(2, 71);
  BaselineDP analytic(f.model);
  md::NeighborList nl(analytic.cutoff(), 0.5);
  nl.build(f.sys.box, f.sys.atoms.pos);

  // The tiny test net is so smooth that at the paper's production
  // intervals (0.01/0.001) the quintic table is already converged to
  // double rounding — the interval-dominated regime only shows up one
  // decade coarser. The pair keeps the same 10x refinement step as Fig 2.
  double tab_err[2], mixed_floor[2];
  const double intervals[2] = {0.25, 0.025};
  for (int k = 0; k < 2; ++k) {
    TabulatedDP tab(f.model, f.spec(intervals[k]));
    FusedDP fused(tab);
    MixedFusedDP mixed(tab, MixedPrecision::Single);
    tab_err[k] = force_rmse(f.sys.box, f.sys.atoms, nl, analytic, fused);
    mixed_floor[k] = force_rmse(f.sys.box, f.sys.atoms, nl, fused, mixed);
  }

  // Fig 2 regime 1: the tabulation error is interval-dominated — one decade
  // of grid refinement buys well over a decade of force accuracy (quintic
  // Hermite converges much faster than linearly).
  EXPECT_GT(tab_err[0], tab_err[1] * 10.0)
      << "0.01: " << tab_err[0] << "  0.001: " << tab_err[1];

  // Fig 2 regime 2: the mixed-vs-double gap is a precision floor. Both
  // intervals must sit inside the single-precision budget, and refining
  // the grid must NOT shrink the gap the way it shrinks tabulation error —
  // the error source is float rounding, not the table.
  for (int k = 0; k < 2; ++k) {
    EXPECT_GT(mixed_floor[k], 0.0);
    EXPECT_LT(mixed_floor[k], 1e-4) << "interval " << intervals[k];
  }
  EXPECT_LT(mixed_floor[0], mixed_floor[1] * 10.0)
      << "float floor should not track the grid interval";
}

TEST(MixedPrecisionBudget, HalfPrecisionBudget) {
  // fp16 coefficients have ~3 decimal digits: the force error budget is
  // orders above Single but must stay far below physical force scales.
  BudgetFixture f(1, 72);
  TabulatedDP tab(f.model, f.spec(0.005));
  FusedDP fused(tab);
  MixedFusedDP single(tab, MixedPrecision::Single);
  MixedFusedDP half(tab, MixedPrecision::Half);
  md::NeighborList nl(fused.cutoff(), 1.0);
  nl.build(f.sys.box, f.sys.atoms.pos);

  const double err_single = force_rmse(f.sys.box, f.sys.atoms, nl, fused, single);
  const double err_half = force_rmse(f.sys.box, f.sys.atoms, nl, fused, half);
  EXPECT_LT(err_single, 1e-4);
  EXPECT_LT(err_half, 1e-1);
  EXPECT_GT(err_half, 10.0 * err_single) << "fp16 must show the Sec 7 accuracy gap";
}

TEST(MixedPrecisionBudget, NveEnergyDriftBound) {
  // Quantitative acceptance bound: over a short NVE trajectory the mixed
  // path's per-atom energy drift must stay within an absolute budget and
  // close to the double path's drift at identical settings — float table
  // noise must not act as a systematic heat source.
  auto drift_per_atom = [](md::ForceField& ff, std::uint64_t seed) {
    BudgetFixture f(1, seed);
    md::SimulationConfig sc;
    sc.dt = 0.0005;
    sc.steps = 60;
    sc.temperature = 100.0;
    sc.skin = 1.0;
    sc.thermo_every = 10;
    sc.seed = seed;
    md::Simulation sim(f.sys, ff, sc);
    const auto& trace = sim.run();
    const double n = static_cast<double>(f.sys.atoms.size());
    return std::abs(trace.back().total() - trace.front().total()) / n;
  };

  BudgetFixture f(1, 73);
  TabulatedDP tab(f.model, f.spec(0.005));
  FusedDP fused(tab);
  MixedFusedDP mixed(tab, MixedPrecision::Single);
  const double drift_d = drift_per_atom(fused, 73);
  const double drift_m = drift_per_atom(mixed, 73);

  // Absolute budget in eV/atom over the 60 steps, and a relative guard:
  // the mixed drift may not exceed the double drift by more than the
  // single-precision noise allowance.
  EXPECT_LT(drift_m, 2e-4) << "double-path drift for scale: " << drift_d;
  EXPECT_LT(drift_m, drift_d + 1e-4);
}

}  // namespace
}  // namespace dp::fused
