// Parameterized sweep over the fused kernel's option matrix: every
// combination of {skip_padding, blocked_table, cache_rows, env_kernel} must
// give the same physics — the options are pure performance rewrites.
#include <gtest/gtest.h>

#include <tuple>

#include "fused/fused_model.hpp"
#include "md/lattice.hpp"

namespace dp::fused {
namespace {

using tab::TabulatedDP;
using tab::TabulationSpec;

using OptParam = std::tuple<bool /*skip*/, bool /*blocked*/, bool /*cache*/, int /*env*/>;

class FusedOptionsSweep : public ::testing::TestWithParam<OptParam> {};

TEST_P(FusedOptionsSweep, MatchesReferenceConfiguration) {
  const auto [skip, blocked, cache, env] = GetParam();
  core::DPModel model(core::ModelConfig::tiny(2), 91);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01};
  TabulatedDP tab(model, spec);
  auto sys = md::make_water(1, 1, 1, 92);

  FusedDP reference(tab, {});  // defaults: skip, AoS, no cache, optimized env
  FusedOptions opts;
  opts.skip_padding = skip;
  opts.blocked_table = blocked;
  opts.cache_rows = cache;
  opts.env_kernel = env == 0 ? core::EnvMatKernel::Baseline : core::EnvMatKernel::Optimized;
  FusedDP variant(tab, opts);

  md::NeighborList nl(reference.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms atoms_a = sys.atoms;
  md::Atoms atoms_b = sys.atoms;
  const auto ra = reference.compute(sys.box, atoms_a, nl);
  const auto rb = variant.compute(sys.box, atoms_b, nl);
  // skip on/off changes summation order over padded zeros only; everything
  // else is an exact rewrite.
  EXPECT_NEAR(ra.energy, rb.energy, 1e-10 * atoms_a.size());
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-10) << "atom " << i;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(ra.virial(r, c), rb.virial(r, c), 1e-9);
}

std::string opt_name(const ::testing::TestParamInfo<OptParam>& info) {
  const auto [skip, blocked, cache, env] = info.param;
  std::string n;
  n += skip ? "skip_" : "noskip_";
  n += blocked ? "blk_" : "aos_";
  n += cache ? "cache_" : "walk2_";
  n += env == 0 ? "envbase" : "envopt";
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllOptions, FusedOptionsSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool(), ::testing::Values(0, 1)),
                         opt_name);

}  // namespace
}  // namespace dp::fused
