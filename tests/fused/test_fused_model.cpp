#include "fused/fused_model.hpp"

#include <gtest/gtest.h>

#include "dp/baseline_model.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"
#include "tab/compressed_model.hpp"

namespace dp::fused {
namespace {

using core::DPModel;
using core::ModelConfig;
using tab::TabulatedDP;
using tab::TabulationSpec;

struct PathFixture {
  DPModel model;
  md::Configuration sys;
  TabulationSpec spec;

  explicit PathFixture(int ntypes, std::uint64_t seed, double interval = 0.005)
      : model(ModelConfig::tiny(ntypes), seed),
        sys(ntypes == 1 ? md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, seed)
                        : md::make_water(1, 1, 1, seed)) {
    spec = {0.0, TabulatedDP::s_max(model.config(), 0.9), interval};
  }
};

TEST(FusedDP, IdenticalToCompressedPath) {
  // Fusion and redundancy skipping are exact rewrites of the compressed
  // dataflow — same table, same results up to float reassociation.
  PathFixture su(1, 41);
  TabulatedDP tab(su.model, su.spec);
  tab::CompressedDP comp(tab);
  FusedDP fused(tab);
  md::NeighborList nl(comp.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);

  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const auto ra = comp.compute(su.sys.box, atoms_a, nl);
  const auto rb = fused.compute(su.sys.box, atoms_b, nl);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-9 * atoms_a.size());
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-10) << "atom " << i;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(ra.virial(r, c), rb.virial(r, c), 1e-8);
}

TEST(FusedDP, RedundancySkipIsExact) {
  // Processing padded slots or skipping them must give the same physics:
  // padded environment rows are identically zero. Padding only exists in the
  // dense Baseline layout — the compact CSR default never stores it.
  PathFixture su(1, 42);
  TabulatedDP tab(su.model, su.spec);
  FusedDP with_skip(tab, {.skip_padding = true, .env_kernel = core::EnvMatKernel::Baseline});
  FusedDP without_skip(tab,
                       {.skip_padding = false, .env_kernel = core::EnvMatKernel::Baseline});
  md::NeighborList nl(with_skip.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);

  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const double ea = with_skip.compute(su.sys.box, atoms_a, nl).energy;
  const double eb = without_skip.compute(su.sys.box, atoms_b, nl).energy;
  EXPECT_NEAR(ea, eb, 1e-10 * atoms_a.size());
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-10);
  // And the skip actually skipped something.
  EXPECT_LT(with_skip.slots_processed(), without_skip.slots_processed());
  EXPECT_EQ(without_skip.slots_processed(), without_skip.slots_total());

  // The compact layout skips implicitly: it walks exactly the slots the dense
  // skip path walks, and the physics matches the dense reference.
  FusedDP compact(tab);
  md::Atoms atoms_c = su.sys.atoms;
  const double ec = compact.compute(su.sys.box, atoms_c, nl).energy;
  EXPECT_EQ(compact.slots_processed(), with_skip.slots_processed());
  EXPECT_NEAR(ec, ea, 1e-10 * atoms_c.size());
  for (std::size_t i = 0; i < atoms_c.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_c.force[i]), 1e-10);
}

TEST(FusedDP, BlockedTableIdentical) {
  PathFixture su(2, 43);
  TabulatedDP tab(su.model, su.spec);
  FusedDP aos(tab, {.blocked_table = false});
  FusedDP blk(tab, {.blocked_table = true});
  md::NeighborList nl(aos.cutoff(), 0.5);
  nl.build(su.sys.box, su.sys.atoms.pos);
  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  EXPECT_DOUBLE_EQ(aos.compute(su.sys.box, atoms_a, nl).energy,
                   blk.compute(su.sys.box, atoms_b, nl).energy);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(atoms_a.force[i] - atoms_b.force[i]), 0.0);
}

TEST(FusedDP, RowCacheStagingIdentical) {
  // One-table-walk staging must be an exact rewrite of the two-walk kernel.
  PathFixture su(2, 49);
  TabulatedDP tab(su.model, su.spec);
  FusedDP walk2(tab, {.cache_rows = false});
  FusedDP walk1(tab, {.cache_rows = true});
  md::NeighborList nl(walk2.cutoff(), 0.5);
  nl.build(su.sys.box, su.sys.atoms.pos);
  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  EXPECT_DOUBLE_EQ(walk2.compute(su.sys.box, atoms_a, nl).energy,
                   walk1.compute(su.sys.box, atoms_b, nl).energy);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(atoms_a.force[i] - atoms_b.force[i]), 0.0);
}

TEST(FusedDP, CloseToBaselineNetwork) {
  PathFixture su(1, 44, /*interval=*/0.002);
  TabulatedDP tab(su.model, su.spec);
  core::BaselineDP base(su.model);
  FusedDP fused(tab);
  md::NeighborList nl(base.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  md::Atoms atoms_a = su.sys.atoms;
  md::Atoms atoms_b = su.sys.atoms;
  const auto ra = base.compute(su.sys.box, atoms_a, nl);
  const auto rb = fused.compute(su.sys.box, atoms_b, nl);
  EXPECT_LT(std::abs(ra.energy - rb.energy) / atoms_a.size(), 1e-9);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-6);
}

TEST(FusedDP, ForcesAreExactGradient) {
  PathFixture su(1, 45, /*interval=*/0.05);
  TabulatedDP tab(su.model, su.spec);
  FusedDP fused(tab);
  md::NeighborList nl(fused.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  fused.compute(su.sys.box, su.sys.atoms, nl);
  const auto forces = su.sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {11ul, 200ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = su.sys.atoms.pos[i];
      su.sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = fused.compute(su.sys.box, su.sys.atoms, nl).energy;
      su.sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = fused.compute(su.sys.box, su.sys.atoms, nl).energy;
      su.sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(FusedDP, PaddingSkipStatisticsMatchEnvMat) {
  PathFixture su(1, 46);
  TabulatedDP tab(su.model, su.spec);
  FusedDP fused(tab);
  md::NeighborList nl(fused.cutoff(), 1.0);
  nl.build(su.sys.box, su.sys.atoms.pos);
  fused.compute(su.sys.box, su.sys.atoms, nl);
  const double skipped_frac = 1.0 - static_cast<double>(fused.slots_processed()) /
                                        static_cast<double>(fused.slots_total());
  EXPECT_NEAR(skipped_frac, fused.env().padding_fraction(), 1e-12);
}

TEST(FusedDP, NveEnergyConservation) {
  DPModel model(ModelConfig::tiny(), 47);
  auto sys = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.02, 48);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.005};
  TabulatedDP tab(model, spec);
  FusedDP ff(tab);
  md::SimulationConfig sc;
  sc.dt = 0.0005;
  sc.steps = 80;
  sc.temperature = 100.0;
  sc.thermo_every = 10;
  sc.skin = 1.0;
  md::Simulation sim({sys.box, sys.atoms}, ff, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  for (const auto& s : trace)
    EXPECT_NEAR(s.total(), e0, 1e-5 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

}  // namespace
}  // namespace dp::fused
