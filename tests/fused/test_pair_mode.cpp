// Per-pair embedding nets (type_one_side = false): the fused and mixed
// paths must support ntypes^2 networks with all invariants intact.
#include <gtest/gtest.h>

#include <cstdio>

#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "fused/mixed_model.hpp"
#include "md/lattice.hpp"
#include "tab/model_io.hpp"

namespace dp::fused {
namespace {

using core::DPModel;
using core::ModelConfig;
using tab::TabulatedDP;
using tab::TabulationSpec;

ModelConfig pair_cfg() {
  ModelConfig cfg = ModelConfig::tiny(2);
  cfg.type_one_side = false;
  return cfg;
}

TEST(PairMode, ModelHasNtypesSquaredNets) {
  DPModel model(pair_cfg(), 71);
  EXPECT_EQ(model.n_embedding_nets(), 4u);
  // Distinct nets for distinct pairs.
  std::vector<double> a(16), b(16);
  model.embedding_pair(0, 1).eval(0.5, a.data());
  model.embedding_pair(1, 1).eval(0.5, b.data());
  double diff = 0;
  for (int k = 0; k < 16; ++k) diff += std::abs(a[k] - b[k]);
  EXPECT_GT(diff, 1e-6);
}

TEST(PairMode, OneSideAccessorRejectsPairModel) {
  DPModel model(pair_cfg(), 72);
  EXPECT_THROW(model.embedding(0), Error);
  TabulatedDP tab(model, {0.0, 1.0, 0.02});
  EXPECT_THROW(tab.table(0), Error);
  EXPECT_NO_THROW(tab.table_pair(1, 0));
}

TEST(PairMode, FusedForcesAreNegativeGradient) {
  DPModel model(pair_cfg(), 73);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01};
  TabulatedDP tab(model, spec);
  FusedDP ff(tab);
  auto sys = md::make_water(1, 1, 1, 74);
  md::NeighborList nl(ff.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  ff.compute(sys.box, sys.atoms, nl);
  const auto forces = sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 10ul, 101ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = sys.atoms.pos[i];
      sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(PairMode, DiffersFromOneSideModel) {
  // The extra networks must actually change the physics: O-centered and
  // H-centered atoms see different embeddings of the same neighbor type.
  ModelConfig one_side = ModelConfig::tiny(2);
  DPModel model_pair(pair_cfg(), 75);
  DPModel model_one(one_side, 75);  // same seed, different net count
  TabulationSpec spec{0.0, TabulatedDP::s_max(one_side, 0.9), 0.01};
  TabulatedDP tab_pair(model_pair, spec);
  TabulatedDP tab_one(model_one, spec);
  FusedDP ff_pair(tab_pair);
  FusedDP ff_one(tab_one);
  auto sys = md::make_water(1, 1, 1, 76);
  md::NeighborList nl(ff_pair.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms a = sys.atoms, b = sys.atoms;
  const double ea = ff_pair.compute(sys.box, a, nl).energy;
  const double eb = ff_one.compute(sys.box, b, nl).energy;
  EXPECT_GT(std::abs(ea - eb), 1e-6);
}

TEST(PairMode, MixedPrecisionMatchesDouble) {
  DPModel model(pair_cfg(), 77);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01};
  TabulatedDP tab(model, spec);
  FusedDP fused(tab);
  MixedFusedDP mixed(tab);
  auto sys = md::make_water(1, 1, 1, 78);
  md::NeighborList nl(fused.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms a = sys.atoms, b = sys.atoms;
  const double ed = fused.compute(sys.box, a, nl).energy;
  const double em = mixed.compute(sys.box, b, nl).energy;
  EXPECT_LT(std::abs(ed - em) / a.size(), 1e-5);
}

TEST(PairMode, BundleRoundTrip) {
  DPModel model(pair_cfg(), 79);
  TabulationSpec spec{0.0, TabulatedDP::s_max(model.config(), 0.9), 0.02};
  TabulatedDP tab(model, spec);
  const std::string path = ::testing::TempDir() + "/dp_pair_bundle.dpc";
  tab::save_compressed_model(path, tab);
  auto bundle = tab::CompressedModel::load(path);
  EXPECT_FALSE(bundle.model().config().type_one_side);
  EXPECT_EQ(bundle.model().n_embedding_nets(), 4u);

  FusedDP original(tab);
  FusedDP loaded(bundle.tabulated());
  auto sys = md::make_water(1, 1, 1, 80);
  md::NeighborList nl(original.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms a = sys.atoms, b = sys.atoms;
  EXPECT_DOUBLE_EQ(original.compute(sys.box, a, nl).energy,
                   loaded.compute(sys.box, b, nl).energy);
  std::remove(path.c_str());
}

TEST(PairMode, LegacyGemmPathsReject) {
  DPModel model(pair_cfg(), 81);
  core::BaselineDP baseline(model);
  auto sys = md::make_water(1, 1, 1, 82);
  md::NeighborList nl(baseline.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  EXPECT_THROW(baseline.compute(sys.box, sys.atoms, nl), Error);
}

}  // namespace
}  // namespace dp::fused
