// Runtime behavior of the capability-aware lock wrappers
// (common/thread_annotations.hpp). The *static* half of the contract — an
// unguarded access fails to compile under clang — lives in tests/static/;
// these tests pin down that the veneers still behave exactly like the std
// primitives they wrap: mutual exclusion, condvar hand-off, try_lock.
#include "common/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

TEST(ThreadAnnotations, MutexLockProvidesMutualExclusion) {
  dp::Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        dp::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(ThreadAnnotations, TryLockReflectsOwnership) {
  dp::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ThreadAnnotations, CondVarHandsOffThroughUniqueLock) {
  dp::Mutex mu;
  dp::CondVar cv;
  int stage = 0;  // guarded by mu (a local cannot carry DP_GUARDED_BY)

  std::thread consumer([&] {
    dp::MutexUniqueLock lock(mu);
    while (stage == 0) cv.wait(lock);
    EXPECT_EQ(stage, 1);
    stage = 2;
    cv.notify_all();
  });

  {
    dp::MutexLock lock(mu);
    stage = 1;
  }
  cv.notify_all();
  {
    dp::MutexUniqueLock lock(mu);
    while (stage != 2) cv.wait(lock);
  }
  consumer.join();

  dp::MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

}  // namespace
