#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace dp {
namespace {

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  Vec3 c = a + b;
  EXPECT_DOUBLE_EQ(c.x, 5);
  EXPECT_DOUBLE_EQ(c.y, 7);
  EXPECT_DOUBLE_EQ(c.z, 9);
  c = b - a;
  EXPECT_DOUBLE_EQ(c.x, 3);
  c = a * 2.0;
  EXPECT_DOUBLE_EQ(c.z, 6);
  c = -a;
  EXPECT_DOUBLE_EQ(c.x, -1);
}

TEST(Vec3, DotCrossNorm) {
  Vec3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  Vec3 c = cross(a, b);
  EXPECT_DOUBLE_EQ(c.z, 1.0);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec3{3, 4, 0}), 25.0);
}

TEST(Vec3, Indexing) {
  Vec3 a{1, 2, 3};
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
  a[1] = 7;
  EXPECT_DOUBLE_EQ(a.y, 7);
}

TEST(Mat3, IdentityAndMultiply) {
  Mat3 I = Mat3::identity();
  Vec3 v{1, 2, 3};
  Vec3 w = I * v;
  EXPECT_DOUBLE_EQ(w.x, 1);
  EXPECT_DOUBLE_EQ(w.y, 2);
  EXPECT_DOUBLE_EQ(w.z, 3);
  Mat3 II = I * I;
  EXPECT_DOUBLE_EQ(II.trace(), 3.0);
}

TEST(Mat3, OuterProductTrace) {
  Vec3 a{1, 2, 3};
  Mat3 M = outer(a, a);
  EXPECT_DOUBLE_EQ(M.trace(), norm2(a));
  EXPECT_DOUBLE_EQ(M(0, 1), M(1, 0));
}

TEST(Mat3, TransposeRoundTrip) {
  Mat3 M;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) M(r, c) = static_cast<double>(3 * r + c);
  Mat3 T = M.transposed().transposed();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(T(r, c), M(r, c));
}

TEST(Rotation, PreservesNormAndOrthogonal) {
  Mat3 R = rotation({1, 1, 1}, 0.7);
  Vec3 v{0.3, -1.2, 2.5};
  EXPECT_NEAR(norm(R * v), norm(v), 1e-12);
  Mat3 RtR = R.transposed() * R;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(RtR(r, c), r == c ? 1.0 : 0.0, 1e-12);
}

TEST(Rotation, QuarterTurnAboutZ) {
  Mat3 R = rotation({0, 0, 1}, std::numbers::pi / 2);
  Vec3 v = R * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

}  // namespace
}  // namespace dp
