#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMomentsReasonable) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, GaussianMomentsReasonable) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum2 = 0, sum4 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
  EXPECT_NEAR(sum4 / n, 3.0, 0.15);  // normal kurtosis
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian(2.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 9.0, 0.3);
}

TEST(Rng, UnitVectorIsUnitAndIsotropic) {
  Rng rng(19);
  const int n = 50000;
  Vec3 mean{};
  for (int i = 0; i < n; ++i) {
    Vec3 u = rng.unit_vector();
    EXPECT_NEAR(norm(u), 1.0, 1e-12);
    mean += u;
  }
  mean *= 1.0 / n;
  EXPECT_NEAR(norm(mean), 0.0, 0.02);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
  EXPECT_EQ(rng.uniform_index(0), 0u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(29);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace dp
