#include "common/cost.hpp"

#include <gtest/gtest.h>

namespace dp {
namespace {

TEST(KernelCost, Accumulation) {
  KernelCost a{100.0, 10.0, 5.0};
  KernelCost b{50.0, 20.0, 5.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 150.0);
  EXPECT_DOUBLE_EQ(a.bytes_read, 30.0);
  EXPECT_DOUBLE_EQ(a.bytes_written, 10.0);
  EXPECT_DOUBLE_EQ(a.bytes_total(), 40.0);
}

TEST(KernelCost, Intensity) {
  KernelCost c{200.0, 80.0, 20.0};
  EXPECT_DOUBLE_EQ(c.intensity(), 2.0);
  KernelCost zero;
  EXPECT_DOUBLE_EQ(zero.intensity(), 0.0);
}

TEST(KernelCost, Scaling) {
  KernelCost c{10.0, 4.0, 2.0};
  KernelCost d = c * 3.0;
  EXPECT_DOUBLE_EQ(d.flops, 30.0);
  EXPECT_DOUBLE_EQ(d.bytes_read, 12.0);
}

TEST(CostRegistry, AddGetTotal) {
  auto& reg = CostRegistry::instance();
  reg.clear();
  reg.add("gemm", {100.0, 50.0, 25.0});
  reg.add("gemm", {100.0, 50.0, 25.0});
  reg.add("tanh", {10.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(reg.get("gemm").flops, 200.0);
  const auto t = reg.total();
  EXPECT_DOUBLE_EQ(t.flops, 210.0);
  EXPECT_DOUBLE_EQ(t.bytes_read, 105.0);
  EXPECT_EQ(reg.entries().size(), 2u);
  reg.clear();
  EXPECT_DOUBLE_EQ(reg.total().flops, 0.0);
}

TEST(CostRegistry, MissingNameIsZero) {
  auto& reg = CostRegistry::instance();
  reg.clear();
  EXPECT_DOUBLE_EQ(reg.get("nope").flops, 0.0);
}

}  // namespace
}  // namespace dp
