#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dp {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(WallTimer, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(TimerRegistry, AccumulatesNamedSections) {
  auto& reg = TimerRegistry::instance();
  reg.clear();
  reg.add("alpha", 0.5);
  reg.add("alpha", 0.25);
  reg.add("beta", 1.0);
  const auto a = reg.get("alpha");
  EXPECT_DOUBLE_EQ(a.total_seconds, 0.75);
  EXPECT_EQ(a.calls, 2u);
  EXPECT_DOUBLE_EQ(a.mean_seconds(), 0.375);
  EXPECT_DOUBLE_EQ(reg.get("beta").total_seconds, 1.0);
  EXPECT_EQ(reg.get("missing").calls, 0u);
}

TEST(TimerRegistry, SortedByTotal) {
  auto& reg = TimerRegistry::instance();
  reg.clear();
  reg.add("small", 0.1);
  reg.add("large", 2.0);
  reg.add("mid", 0.5);
  const auto sorted = reg.sorted_by_total();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "large");
  EXPECT_EQ(sorted[2].first, "small");
}

TEST(ScopedTimer, ReportsOnDestruction) {
  auto& reg = TimerRegistry::instance();
  reg.clear();
  {
    ScopedTimer t("scoped_section");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto s = reg.get("scoped_section");
  EXPECT_EQ(s.calls, 1u);
  EXPECT_GT(s.total_seconds, 0.003);
}

TEST(TimePerCall, ReturnsPositivePerCallTime) {
  volatile double sink = 0.0;
  const double per_call = time_per_call(
      [&] {
        double s = 0;
        for (int i = 0; i < 1000; ++i) s += i * 0.5;
        sink = s;
      },
      0.01, 100000);
  EXPECT_GT(per_call, 0.0);
  EXPECT_LT(per_call, 0.1);
}

}  // namespace
}  // namespace dp
