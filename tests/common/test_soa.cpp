#include "common/soa.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace dp {
namespace {

std::vector<double> random_aos(std::size_t n, std::size_t width, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n * width);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Soa, ReferenceTransposeIsCorrect) {
  const std::size_t n = 5, w = 3;
  std::vector<double> aos(n * w);
  for (std::size_t i = 0; i < aos.size(); ++i) aos[i] = static_cast<double>(i);
  std::vector<double> soa(n * w);
  aos_to_soa_reference(aos.data(), soa.data(), n, w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < w; ++c) EXPECT_DOUBLE_EQ(soa[c * n + i], aos[i * w + c]);
}

TEST(Soa, ReferenceRoundTrip) {
  const std::size_t n = 17, w = 7;
  auto aos = random_aos(n, w, 1);
  std::vector<double> soa(n * w), back(n * w);
  aos_to_soa_reference(aos.data(), soa.data(), n, w);
  soa_to_aos_reference(soa.data(), back.data(), n, w);
  EXPECT_EQ(aos, back);
}

TEST(Soa, BlockedDerivMatchesReference) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 100u, 137u}) {
    auto aos = random_aos(n, kDerivWidth, 2 + n);
    std::vector<double> want(n * kDerivWidth), got(n * kDerivWidth);
    aos_to_soa_reference(aos.data(), want.data(), n, kDerivWidth);
    aos_to_soa_deriv(aos.data(), got.data(), n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST(Soa, BlockedDerivRoundTrip) {
  for (std::size_t n : {8u, 24u, 129u}) {
    auto aos = random_aos(n, kDerivWidth, 77 + n);
    std::vector<double> soa(n * kDerivWidth), back(n * kDerivWidth);
    aos_to_soa_deriv(aos.data(), soa.data(), n);
    soa_to_aos_deriv(soa.data(), back.data(), n);
    EXPECT_EQ(aos, back) << "n=" << n;
  }
}

TEST(Soa, BlockedInverseMatchesReference) {
  const std::size_t n = 41;
  auto aos = random_aos(n, kDerivWidth, 5);
  std::vector<double> soa(n * kDerivWidth);
  aos_to_soa_reference(aos.data(), soa.data(), n, kDerivWidth);
  std::vector<double> want(n * kDerivWidth), got(n * kDerivWidth);
  soa_to_aos_reference(soa.data(), want.data(), n, kDerivWidth);
  soa_to_aos_deriv(soa.data(), got.data(), n);
  EXPECT_EQ(want, got);
}

}  // namespace
}  // namespace dp
