#include "common/tanh_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/simd.hpp"

namespace dp {
namespace {

TEST(TanhTable, DefaultAccuracyBelowPaperBound) {
  // The paper (Sec 3.5.3) reports ~1e-7 error for the tabulated tanh. The
  // scheme's error floor is the saturation jump 1 - tanh(8) = 2.25e-7 at the
  // x_max = 8 cutoff the paper prescribes; the interpolation error proper is
  // well below it.
  EXPECT_LT(default_tanh_table().measured_max_error(), 2.5e-7);
}

TEST(TanhTable, InterpolationErrorWellBelowSaturationFloor) {
  // Probe strictly inside [0, 7.5]: pure interpolation error, no cutoff.
  const auto& t = default_tanh_table();
  double max_err = 0.0;
  for (int i = 0; i <= 10000; ++i) {
    const double x = 7.5 * i / 10000.0;
    max_err = std::max(max_err, std::fabs(t.eval(x) - std::tanh(x)));
  }
  EXPECT_LT(max_err, 2.0e-8);
}

TEST(TanhTable, OddSymmetry) {
  const auto& t = default_tanh_table();
  for (double x : {0.1, 0.7, 1.9, 3.3, 7.99}) {
    EXPECT_DOUBLE_EQ(t.eval(-x), -t.eval(x));
  }
}

TEST(TanhTable, SaturatesBeyondXMax) {
  const auto& t = default_tanh_table();
  EXPECT_DOUBLE_EQ(t.eval(8.0), 1.0);
  EXPECT_DOUBLE_EQ(t.eval(100.0), 1.0);
  EXPECT_DOUBLE_EQ(t.eval(-8.0), -1.0);
  EXPECT_DOUBLE_EQ(t.eval(-1e9), -1.0);
}

TEST(TanhTable, ZeroIsExact) {
  EXPECT_DOUBLE_EQ(default_tanh_table().eval(0.0), 0.0);
}

TEST(TanhTable, ErrorShrinksWithMoreIntervals) {
  const TanhTable coarse(8.0, 64);
  const TanhTable mid(8.0, 256);
  const TanhTable fine(8.0, 2048);
  const double ec = coarse.measured_max_error();
  const double em = mid.measured_max_error();
  const double ef = fine.measured_max_error();
  EXPECT_GT(ec, em);
  EXPECT_GT(em, ef);
  // Quadratic interpolation converges as h^3: 4x finer -> ~64x smaller.
  EXPECT_LT(em, ec / 30.0);
}

TEST(TanhTable, DerivativeMatchesSech2) {
  const auto& t = default_tanh_table();
  for (double x : {-3.0, -0.5, 0.0, 0.4, 1.5, 6.0}) {
    const double exact = 1.0 - std::tanh(x) * std::tanh(x);
    EXPECT_NEAR(t.deriv(x), exact, 1e-6);
  }
}

TEST(TanhTable, BatchMatchesScalar) {
  // At the dispatched (native) level the batch may use FMA, so agreement is
  // EXPECT_DOUBLE_EQ (4 ulp); with DP_SIMD forced scalar the batch is the
  // plain eval loop and must match exactly. tests/tab/test_simd_parity.cpp
  // sweeps every level explicitly.
  const auto& t = default_tanh_table();
  std::vector<double> x, y;
  for (int i = -50; i <= 50; ++i) x.push_back(0.21 * i);
  y.resize(x.size());
  t.eval_batch(x.data(), y.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], t.eval(x[i]));

  const simd::Level prev = simd::active();
  simd::force(simd::Level::Scalar);
  t.eval_batch(x.data(), y.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], t.eval(x[i]));
  simd::force(prev);
}

TEST(TanhTable, UpperBoundaryNeverReadsPastTable) {
  // Regression: inv_h_ = intervals / x_max is rounded, so for non-power-of-
  // two (x_max, intervals) pairs an input just below x_max could round the
  // segment index up to k == intervals and read past coef_ (caught by ASan
  // before the clamp; e.g. x_max = 6.7 with 1000 intervals hits it). The
  // sweep deliberately mixes triggering and non-triggering grids.
  for (double x_max : {7.3, 5.1, 6.7, 3.9, 8.0, 2.5, 9.13, 4.77, 1.3, 6.1}) {
    for (std::size_t intervals : {1000u, 773u, 1500u, 977u, 1024u, 600u, 333u}) {
      const TanhTable t(x_max, intervals);
      for (double x : {std::nextafter(x_max, 0.0), -std::nextafter(x_max, 0.0),
                       x_max * (1.0 - 1e-15), x_max, std::nextafter(x_max, 2.0 * x_max)}) {
        const double y = t.eval(x);
        EXPECT_TRUE(std::isfinite(y)) << "x_max " << x_max << " n " << intervals;
        if (std::fabs(x) >= x_max) {
          EXPECT_DOUBLE_EQ(y, x < 0.0 ? -1.0 : 1.0);
        } else {
          // The clamped edge segment still interpolates tanh at the boundary.
          EXPECT_NEAR(y, std::tanh(x), 1e-3) << "x_max " << x_max << " n " << intervals;
        }
      }
    }
  }
}

TEST(TanhTable, ContinuousAcrossNodes) {
  const TanhTable t(8.0, 128);
  const double h = 8.0 / 128;
  for (int k = 1; k < 128; ++k) {
    const double x = k * h;
    const double below = t.eval(x - 1e-12);
    const double above = t.eval(x + 1e-12);
    EXPECT_NEAR(below, above, 1e-9);
  }
}

}  // namespace
}  // namespace dp
