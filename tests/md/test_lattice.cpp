#include "md/lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "md/units.hpp"

namespace dp::md {
namespace {

TEST(Lattice, FccAtomCount) {
  auto cfg = make_fcc(3, 4, 5);
  EXPECT_EQ(cfg.atoms.size(), 4u * 3 * 4 * 5);
  cfg.atoms.validate();
}

TEST(Lattice, FccBoxMatchesCells) {
  auto cfg = make_fcc(2, 3, 4, 3.634);
  EXPECT_NEAR(cfg.box.lengths().x, 2 * 3.634, 1e-12);
  EXPECT_NEAR(cfg.box.lengths().y, 3 * 3.634, 1e-12);
  EXPECT_NEAR(cfg.box.lengths().z, 4 * 3.634, 1e-12);
}

TEST(Lattice, FccNearestNeighborDistance) {
  // FCC nearest-neighbor distance is a / sqrt(2).
  const double a = 3.634;
  auto cfg = make_fcc(3, 3, 3, a);
  const Vec3 r0 = cfg.atoms.pos[0];
  double dmin = 1e30;
  for (std::size_t j = 1; j < cfg.atoms.size(); ++j) {
    dmin = std::min(dmin, norm(cfg.box.min_image(cfg.atoms.pos[j] - r0)));
  }
  EXPECT_NEAR(dmin, a / std::sqrt(2.0), 1e-9);
}

TEST(Lattice, FccCopperDensity) {
  // FCC copper at a = 3.634 A: 4 atoms / a^3 = 0.0833 atoms/A^3.
  auto cfg = make_fcc(4, 4, 4);
  const double rho = static_cast<double>(cfg.atoms.size()) / cfg.box.volume();
  EXPECT_NEAR(rho, 4.0 / std::pow(3.634, 3), 1e-10);
}

TEST(Lattice, FccJitterIsBounded) {
  auto ideal = make_fcc(2, 2, 2, 3.634, kMassCu, 0.0);
  auto jit = make_fcc(2, 2, 2, 3.634, kMassCu, 0.05);
  ASSERT_EQ(ideal.atoms.size(), jit.atoms.size());
  for (std::size_t i = 0; i < ideal.atoms.size(); ++i) {
    const Vec3 d = ideal.box.min_image(jit.atoms.pos[i] - ideal.atoms.pos[i]);
    EXPECT_LE(std::abs(d.x), 0.05 + 1e-12);
    EXPECT_LE(std::abs(d.y), 0.05 + 1e-12);
    EXPECT_LE(std::abs(d.z), 0.05 + 1e-12);
  }
}

TEST(Lattice, WaterBaseCellIs192Atoms) {
  auto cfg = make_water(1, 1, 1);
  EXPECT_EQ(cfg.atoms.size(), 192u);  // paper: replicating a 192-atom cell
  EXPECT_EQ(cfg.atoms.ntypes(), 2);
}

TEST(Lattice, WaterReplication) {
  auto cfg = make_water(2, 1, 3);
  EXPECT_EQ(cfg.atoms.size(), 192u * 6);
}

TEST(Lattice, WaterStoichiometry) {
  auto cfg = make_water(2, 2, 2);
  std::size_t n_o = 0, n_h = 0;
  for (int t : cfg.atoms.type) (t == 0 ? n_o : n_h) += 1;
  EXPECT_EQ(n_h, 2 * n_o);
}

TEST(Lattice, WaterDensityIsAmbient) {
  auto cfg = make_water(2, 2, 2);
  const double mol_per_a3 = (cfg.atoms.size() / 3.0) / cfg.box.volume();
  EXPECT_NEAR(mol_per_a3, 0.0334, 0.0005);
}

TEST(Lattice, WaterOHBondLengths) {
  auto cfg = make_water(1, 1, 1);
  // Atoms come in O,H,H triplets.
  for (std::size_t m = 0; m < cfg.atoms.size(); m += 3) {
    ASSERT_EQ(cfg.atoms.type[m], 0);
    for (std::size_t k = 1; k <= 2; ++k) {
      ASSERT_EQ(cfg.atoms.type[m + k], 1);
      const double d = norm(cfg.box.min_image(cfg.atoms.pos[m + k] - cfg.atoms.pos[m]));
      EXPECT_NEAR(d, 0.9572, 1e-9);
    }
  }
}

TEST(Lattice, AtomCountHelperReachesTarget) {
  auto cfg = make_fcc_with_atom_count(500);
  EXPECT_GE(cfg.atoms.size(), 500u);
  EXPECT_EQ(cfg.atoms.size() % 4, 0u);
}

TEST(Lattice, DeterministicFromSeed) {
  auto a = make_water(1, 1, 1, 42);
  auto b = make_water(1, 1, 1, 42);
  for (std::size_t i = 0; i < a.atoms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.atoms.pos[i].x, b.atoms.pos[i].x);
  }
}

}  // namespace
}  // namespace dp::md
