#include "md/integrator.hpp"

#include <gtest/gtest.h>

#include "md/lattice.hpp"
#include "md/units.hpp"

namespace dp::md {
namespace {

TEST(Integrator, InitVelocitiesHitsTargetTemperature) {
  auto cfg = make_fcc(4, 4, 4);
  init_velocities(cfg.atoms, 330.0, 1);
  EXPECT_NEAR(temperature(cfg.atoms), 330.0, 1e-9);
}

TEST(Integrator, InitVelocitiesRemovesDrift) {
  auto cfg = make_water(1, 1, 1);
  init_velocities(cfg.atoms, 330.0, 2);
  Vec3 p{};
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i)
    p += cfg.atoms.vel[i] * cfg.atoms.mass(i);
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
}

TEST(Integrator, ZeroTemperatureMeansZeroVelocity) {
  auto cfg = make_fcc(2, 2, 2);
  init_velocities(cfg.atoms, 0.0, 3);
  for (const auto& v : cfg.atoms.vel) EXPECT_NEAR(norm(v), 0.0, 1e-12);
}

TEST(Integrator, FreeParticleDriftsLinearly) {
  Atoms atoms;
  atoms.mass_by_type = {10.0};
  atoms.add({5.0, 5.0, 5.0}, 0);
  atoms.vel[0] = {1.0, -2.0, 0.5};  // A/ps
  atoms.force[0] = {};
  Box box(100, 100, 100);
  const double dt = 0.001;
  for (int i = 0; i < 1000; ++i) {
    verlet_first_half(atoms, box, dt);
    verlet_second_half(atoms, dt);
  }
  EXPECT_NEAR(atoms.pos[0].x, 6.0, 1e-9);
  EXPECT_NEAR(atoms.pos[0].y, 3.0, 1e-9);
  EXPECT_NEAR(atoms.pos[0].z, 5.5, 1e-9);
}

TEST(Integrator, ConstantForceMatchesKinematics) {
  // x(t) = x0 + v0 t + a t^2 / 2 under constant force.
  Atoms atoms;
  atoms.mass_by_type = {5.0};
  atoms.add({0.0, 0.0, 0.0}, 0);
  Box box(1000, 1000, 1000);
  const double f = 2.0;  // eV/A
  const double a = f * kForceToAccel / 5.0;
  const double dt = 1e-4;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    atoms.force[0] = {f, 0, 0};
    verlet_first_half(atoms, box, dt, /*wrap=*/false);
    atoms.force[0] = {f, 0, 0};
    verlet_second_half(atoms, dt);
  }
  const double t = n * dt;
  EXPECT_NEAR(atoms.pos[0].x, 0.5 * a * t * t, 1e-6);
  EXPECT_NEAR(atoms.vel[0].x, a * t, 1e-9);
}

TEST(Integrator, KineticEnergyFormula) {
  Atoms atoms;
  atoms.mass_by_type = {2.0};
  atoms.add({0, 0, 0}, 0);
  atoms.vel[0] = {3.0, 0.0, 4.0};  // |v|^2 = 25
  EXPECT_NEAR(kinetic_energy(atoms), 0.5 * 2.0 * 25.0 * kMv2ToEv, 1e-15);
}

TEST(Integrator, TemperatureOfSingleAtomIsZero) {
  Atoms atoms;
  atoms.mass_by_type = {1.0};
  atoms.add({0, 0, 0}, 0);
  atoms.vel[0] = {10, 0, 0};
  EXPECT_DOUBLE_EQ(temperature(atoms), 0.0);
}

TEST(Integrator, HarmonicOscillatorConservesEnergy) {
  // Spring force f = -k x, k in eV/A^2: Verlet should conserve energy to
  // O(dt^2) over many periods.
  Atoms atoms;
  atoms.mass_by_type = {1.0};
  atoms.add({1.0, 0.0, 0.0}, 0);
  Box box(1000, 1000, 1000);
  const double k = 1.0;
  auto spring = [&] { atoms.force[0] = atoms.pos[0] * (-k); };
  spring();
  const double e0 = kinetic_energy(atoms) + 0.5 * k * norm2(atoms.pos[0]);
  const double dt = 1e-4;
  for (int i = 0; i < 20000; ++i) {
    verlet_first_half(atoms, box, dt, false);
    spring();
    verlet_second_half(atoms, dt);
  }
  const double e1 = kinetic_energy(atoms) + 0.5 * k * norm2(atoms.pos[0]);
  EXPECT_NEAR(e1, e0, 1e-4 * std::max(1.0, std::abs(e0)));  // O((w*dt)^2) bound
}

TEST(Integrator, VelocityDistributionByMass) {
  // Heavier species must receive proportionally slower velocities:
  // <v^2> ~ 1/m. Water has m_O / m_H ~ 15.9.
  auto cfg = make_water(2, 2, 2);
  init_velocities(cfg.atoms, 300.0, 4);
  double v2_o = 0, v2_h = 0;
  std::size_t n_o = 0, n_h = 0;
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i) {
    if (cfg.atoms.type[i] == 0) {
      v2_o += norm2(cfg.atoms.vel[i]);
      ++n_o;
    } else {
      v2_h += norm2(cfg.atoms.vel[i]);
      ++n_h;
    }
  }
  const double ratio = (v2_h / n_h) / (v2_o / n_o);
  EXPECT_NEAR(ratio, kMassO / kMassH, 2.5);
}

}  // namespace
}  // namespace dp::md
