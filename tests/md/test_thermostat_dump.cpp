#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "md/dump.hpp"
#include "md/lj.hpp"
#include "md/thermostat.hpp"

namespace dp::md {
namespace {

TEST(Langevin, RelaxesToTargetTemperature) {
  auto cfg = make_fcc(4, 4, 4, 3.7);
  init_velocities(cfg.atoms, 100.0, 1);  // start cold
  LangevinThermostat thermostat(400.0, /*damping=*/0.05, 2);
  // Pure thermostat relaxation (no forces): should reach ~400 K.
  for (int i = 0; i < 2000; ++i) thermostat.apply(cfg.atoms, 0.001);
  EXPECT_NEAR(temperature(cfg.atoms), 400.0, 40.0);
}

TEST(Langevin, ZeroTemperatureDampsMotion) {
  auto cfg = make_fcc(2, 2, 2, 3.7);
  init_velocities(cfg.atoms, 300.0, 3);
  LangevinThermostat thermostat(0.0, 0.01, 4);
  for (int i = 0; i < 500; ++i) thermostat.apply(cfg.atoms, 0.001);
  EXPECT_LT(temperature(cfg.atoms), 1.0);
}

TEST(Langevin, RejectsBadParameters) {
  EXPECT_THROW(LangevinThermostat(-1.0, 0.1), Error);
  EXPECT_THROW(LangevinThermostat(300.0, 0.0), Error);
}

TEST(Berendsen, RescalesTowardTarget) {
  auto cfg = make_fcc(4, 4, 4, 3.7);
  init_velocities(cfg.atoms, 600.0, 5);
  BerendsenThermostat thermostat(300.0, 0.01);
  for (int i = 0; i < 200; ++i) thermostat.apply(cfg.atoms, 0.001);
  EXPECT_NEAR(temperature(cfg.atoms), 300.0, 5.0);
}

TEST(Berendsen, NoopAtTarget) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  init_velocities(cfg.atoms, 300.0, 6);
  const auto before = cfg.atoms.vel;
  BerendsenThermostat thermostat(300.0, 0.1);
  thermostat.apply(cfg.atoms, 0.001);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(norm(cfg.atoms.vel[i] - before[i]), 0.0, 1e-9);
}

TEST(Simulation, NvtHoldsTemperature) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  LennardJones lj(0.4, 2.34, 4.5);
  LangevinThermostat thermostat(330.0, 0.1, 7);
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.steps = 300;
  sc.temperature = 330.0;
  sc.thermo_every = 50;
  sc.thermostat = &thermostat;
  Simulation sim(cfg, lj, sc);
  const auto& trace = sim.run();
  // After equilibration the temperature stays near the target (the NVE run
  // would settle near half the initial T from a perfect lattice).
  EXPECT_NEAR(trace.back().temperature, 330.0, 100.0);
}

TEST(NoseHoover, HoldsTargetTemperatureUnderMd) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  LennardJones lj(0.4, 2.34, 4.5);
  NoseHooverThermostat thermostat(330.0, 0.05);
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.steps = 1500;
  sc.temperature = 330.0;
  sc.thermo_every = 50;
  sc.thermostat = &thermostat;
  Simulation sim(cfg, lj, sc);
  const auto& trace = sim.run();
  // Nose-Hoover oscillates; judge the time average over the second half.
  double avg = 0.0;
  int count = 0;
  for (const auto& s : trace)
    if (s.step > 750) {
      avg += s.temperature;
      ++count;
    }
  avg /= count;
  EXPECT_NEAR(avg, 330.0, 90.0);
}

TEST(NoseHoover, FrictionRespondsToTemperatureError) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  init_velocities(cfg.atoms, 600.0, 8);  // hot start vs 300 K target
  NoseHooverThermostat thermostat(300.0, 0.1);
  EXPECT_DOUBLE_EQ(thermostat.xi(), 0.0);
  thermostat.apply(cfg.atoms, 0.001);
  EXPECT_GT(thermostat.xi(), 0.0);  // hot -> positive friction (cooling)
  const double t1 = temperature(cfg.atoms);
  EXPECT_LT(t1, 600.0);
}

TEST(NoseHoover, RejectsBadParameters) {
  EXPECT_THROW(NoseHooverThermostat(0.0, 0.1), Error);
  EXPECT_THROW(NoseHooverThermostat(300.0, -1.0), Error);
}

TEST(Barostat, ScaleDirectionFollowsPressureError) {
  BerendsenBarostat barostat(1000.0, 0.1);
  // Current pressure above target: box should expand (mu > 1).
  EXPECT_GT(barostat.scale_factor(5000.0, 0.001), 1.0);
  // Below target: compress.
  EXPECT_LT(barostat.scale_factor(-3000.0, 0.001), 1.0);
  // At target: no-op.
  EXPECT_DOUBLE_EQ(barostat.scale_factor(1000.0, 0.001), 1.0);
}

TEST(Barostat, ScaleFactorIsClamped) {
  BerendsenBarostat barostat(0.0, 1e-5, 1.0);  // absurd coupling
  const double mu = barostat.scale_factor(1e9, 0.01);
  EXPECT_LE(mu, std::cbrt(1.03) + 1e-12);
}

TEST(Barostat, NptRelaxesPressureTowardTarget) {
  // A compressed LJ crystal at high pressure: NPT should let the box expand
  // and bring the virial pressure down toward the (lower) target.
  auto cfg = make_fcc(4, 4, 4, 3.55);  // ~4% compressed lattice
  LennardJones lj(0.4, 2.34, 4.5);
  BerendsenBarostat barostat(0.0, 0.05, 1e-5);
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.steps = 150;
  sc.temperature = 100.0;
  sc.thermo_every = 150;
  sc.barostat = &barostat;
  Simulation sim(cfg, lj, sc);
  const double p0 = sim.thermo_trace().empty() ? 0.0 : 0.0;
  (void)p0;
  const auto& trace = sim.run();
  const double v0 = std::pow(3.55 * 4, 3);
  EXPECT_GT(sim.configuration().box.volume(), v0);  // box expanded
  EXPECT_LT(std::abs(trace.back().pressure_bar), std::abs(trace.front().pressure_bar));
}

// ---------------------------------------------------------------------------

TEST(Dump, XyzRoundTrip) {
  auto cfg = make_water(1, 1, 1, 8);
  const std::string path = ::testing::TempDir() + "/dp_traj_test.xyz";
  {
    XyzWriter writer(path, {"O", "H"});
    writer.write_frame(cfg.box, cfg.atoms, "frame=0");
    for (auto& p : cfg.atoms.pos) p.x += 0.1;
    writer.write_frame(cfg.box, cfg.atoms, "frame=1");
    EXPECT_EQ(writer.frames_written(), 2);
  }
  const auto frames = read_xyz(path);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].pos.size(), cfg.atoms.size());
  EXPECT_NEAR(frames[0].box.lengths().x, cfg.box.lengths().x, 1e-9);
  EXPECT_EQ(frames[0].symbols[0], "O");
  EXPECT_EQ(frames[0].symbols[1], "H");
  // Second frame is the shifted one.
  EXPECT_NEAR(frames[1].pos[0].x - frames[0].pos[0].x, 0.1, 1e-9);
  std::remove(path.c_str());
}

TEST(Dump, XyzRejectsUnknownType) {
  Atoms atoms;
  atoms.mass_by_type = {1.0, 2.0};
  atoms.add({0, 0, 0}, 1);
  const std::string path = ::testing::TempDir() + "/dp_traj_bad.xyz";
  XyzWriter writer(path, {"O"});  // no symbol for type 1
  EXPECT_THROW(writer.write_frame(Box(5, 5, 5), atoms), Error);
  std::remove(path.c_str());
}

TEST(Dump, ThermoCsvHasHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/dp_thermo_test.csv";
  {
    ThermoCsvWriter writer(path);
    ThermoSample s;
    s.step = 50;
    s.potential = -1.5;
    s.kinetic = 0.5;
    s.temperature = 300.0;
    s.pressure_bar = 1000.0;
    writer.write(s);
  }
  std::ifstream is(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, row));
  EXPECT_NE(header.find("temperature_k"), std::string::npos);
  EXPECT_NE(row.find("50,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Dump, ReadMissingFileThrows) {
  EXPECT_THROW(read_xyz("/nonexistent/file.xyz"), Error);
}

}  // namespace
}  // namespace dp::md
