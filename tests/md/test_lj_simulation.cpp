#include <gtest/gtest.h>

#include "md/lj.hpp"
#include "md/simulation.hpp"

namespace dp::md {
namespace {

// LJ parameters loosely matching copper (for substrate testing only).
LennardJones make_lj() { return LennardJones(0.4, 2.34, 6.0); }
// Short-ranged variant so small periodic boxes satisfy the min-image bound.
LennardJones make_lj_short() { return LennardJones(0.4, 2.34, 4.5); }

TEST(LennardJones, MinimumAtR0) {
  auto lj = make_lj();
  const double r0 = 2.34 * std::pow(2.0, 1.0 / 6.0);
  EXPECT_NEAR(lj.pair_force(r0), 0.0, 1e-10);
  EXPECT_NEAR(lj.pair_energy(r0), -0.4, 1e-12);
  EXPECT_GT(lj.pair_force(r0 * 0.9), 0.0);  // repulsive inside
  EXPECT_LT(lj.pair_force(r0 * 1.1), 0.0);  // attractive outside
}

TEST(LennardJones, ForcesMatchFiniteDifferenceOfEnergy) {
  auto cfg = make_fcc(4, 4, 4, 3.7, 63.5, /*jitter=*/0.08, 11);
  auto lj = make_lj();
  NeighborList nl(lj.cutoff(), 1.0);
  nl.build(cfg.box, cfg.atoms.pos);

  auto res = lj.compute(cfg.box, cfg.atoms, nl);
  auto f = cfg.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 5ul, 17ul}) {
    for (int d = 0; d < 3; ++d) {
      auto pos0 = cfg.atoms.pos[i];
      cfg.atoms.pos[i][d] = pos0[d] + h;
      const double ep = lj.compute(cfg.box, cfg.atoms, nl).energy;
      cfg.atoms.pos[i][d] = pos0[d] - h;
      const double em = lj.compute(cfg.box, cfg.atoms, nl).energy;
      cfg.atoms.pos[i] = pos0;
      EXPECT_NEAR(f[i][d], -(ep - em) / (2 * h), 1e-6) << "atom " << i << " dim " << d;
    }
  }
  (void)res;
}

TEST(LennardJones, NewtonThirdLawTotalForceZero) {
  auto cfg = make_fcc(4, 4, 4, 3.7, 63.5, 0.05, 12);
  auto lj = make_lj();
  NeighborList nl(lj.cutoff(), 1.0);
  nl.build(cfg.box, cfg.atoms.pos);
  lj.compute(cfg.box, cfg.atoms, nl);
  Vec3 total{};
  for (const auto& f : cfg.atoms.force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(LennardJones, PerfectLatticeHasZeroForces) {
  auto cfg = make_fcc(4, 4, 4, 3.7);
  auto lj = make_lj();
  NeighborList nl(lj.cutoff(), 1.0);
  nl.build(cfg.box, cfg.atoms.pos);
  lj.compute(cfg.box, cfg.atoms, nl);
  for (const auto& f : cfg.atoms.force) EXPECT_NEAR(norm(f), 0.0, 1e-9);
}

TEST(LennardJones, VirialMatchesStrainDerivative) {
  // tr(W) = -3 V dU/dV under uniform dilation: check by rescaling the box.
  auto cfg = make_fcc(4, 4, 4, 3.7, 63.5, 0.05, 13);
  auto lj = make_lj();
  NeighborList nl(lj.cutoff(), 1.5);
  nl.build(cfg.box, cfg.atoms.pos);
  auto res = lj.compute(cfg.box, cfg.atoms, nl);

  const double h = 1e-6;
  auto energy_scaled = [&](double s) {
    Configuration scaled;
    scaled.box = Box(cfg.box.lengths() * s);
    scaled.atoms = cfg.atoms;
    for (auto& r : scaled.atoms.pos) r *= s;
    NeighborList nl2(lj.cutoff(), 1.5);
    nl2.build(scaled.box, scaled.atoms.pos);
    return lj.compute(scaled.box, scaled.atoms, nl2).energy;
  };
  // dE/ds at s=1 equals -tr(W) (virial sign convention: W = -1/2 sum r x f,
  // with f the force on i; uniform scaling gives dE/ds = sum_i r_i . dE/dr_i).
  const double dE_ds = (energy_scaled(1 + h) - energy_scaled(1 - h)) / (2 * h);
  EXPECT_NEAR(res.virial.trace(), -dE_ds, 5e-5 * std::max(1.0, std::abs(dE_ds)));
}

TEST(Simulation, NveConservesEnergy) {
  auto cfg = make_fcc(3, 3, 3, 3.7, 63.5, 0.0, 14);
  auto lj = make_lj_short();
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.steps = 200;
  sc.temperature = 300.0;
  sc.thermo_every = 10;
  Simulation sim(cfg, lj, sc);
  const auto& trace = sim.run();
  ASSERT_GE(trace.size(), 3u);
  const double e0 = trace.front().total();
  for (const auto& s : trace) {
    EXPECT_NEAR(s.total(), e0, 5e-4 * cfg.atoms.size() * 0.01 + 0.05)
        << "drift at step " << s.step;
  }
}

TEST(Simulation, ProtocolCounts99Steps100Evaluations) {
  // Paper Sec 4: "99 MD steps ... energy and forces are evaluated 100 times".
  auto cfg = make_fcc(3, 3, 3, 3.7);
  auto lj = make_lj_short();
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.steps = 99;
  Simulation sim(cfg, lj, sc);
  sim.run();
  EXPECT_EQ(sim.current_step(), 99);
  EXPECT_EQ(sim.force_evaluations(), 100);
}

TEST(Simulation, ThermoSampledEvery50Steps) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  auto lj = make_lj_short();
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.steps = 99;
  sc.thermo_every = 50;
  Simulation sim(cfg, lj, sc);
  const auto& trace = sim.run();
  ASSERT_EQ(trace.size(), 3u);  // steps 0, 50, 99
  EXPECT_EQ(trace[0].step, 0);
  EXPECT_EQ(trace[1].step, 50);
  EXPECT_EQ(trace[2].step, 99);
}

TEST(Simulation, TemperatureStaysPhysical) {
  auto cfg = make_fcc(3, 3, 3, 3.7);
  auto lj = make_lj_short();
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.steps = 100;
  sc.temperature = 330.0;
  sc.thermo_every = 20;
  Simulation sim(cfg, lj, sc);
  for (const auto& s : sim.run()) {
    EXPECT_GT(s.temperature, 50.0);
    EXPECT_LT(s.temperature, 700.0);
  }
}

TEST(Simulation, RejectsBoxSmallerThanCutoff) {
  auto cfg = make_fcc(1, 1, 1, 3.7);  // 3.7 A box vs 6 A cutoff
  auto lj = make_lj();
  EXPECT_THROW(Simulation(cfg, lj, {}), Error);
}

}  // namespace
}  // namespace dp::md
