#include "md/eam.hpp"

#include <gtest/gtest.h>

#include "md/simulation.hpp"

namespace dp::md {
namespace {

TEST(SuttonChen, ForcesMatchFiniteDifference) {
  auto cfg = make_fcc(4, 4, 4, 3.61, 63.546, 0.08, 11);
  SuttonChen eam;
  NeighborList nl(eam.cutoff(), 0.2);
  nl.build(cfg.box, cfg.atoms.pos);
  eam.compute(cfg.box, cfg.atoms, nl);
  const auto forces = cfg.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 17ul, 200ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = cfg.atoms.pos[i];
      cfg.atoms.pos[i][d] = pos0[d] + h;
      const double ep = eam.compute(cfg.box, cfg.atoms, nl).energy;
      cfg.atoms.pos[i][d] = pos0[d] - h;
      const double em = eam.compute(cfg.box, cfg.atoms, nl).energy;
      cfg.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 1e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(SuttonChen, ManyBodyCharacter) {
  // Pairwise potentials are additive over pairs; EAM is not: the trimer
  // energy differs from the sum of its dimer energies (beyond the pair sum).
  SuttonChen eam;
  Box box(60, 60, 60);
  auto energy_of = [&](const std::vector<Vec3>& pos) {
    Atoms atoms;
    atoms.mass_by_type = {63.546};
    for (const auto& r : pos) atoms.add(r, 0);
    NeighborList nl(eam.cutoff(), 0.5);
    nl.build(box, atoms.pos);
    return eam.compute(box, atoms, nl).energy;
  };
  const Vec3 a{20, 20, 20}, b{22.5, 20, 20}, c{21.25, 22.2, 20};
  const double e_ab = energy_of({a, b});
  const double e_ac = energy_of({a, c});
  const double e_bc = energy_of({b, c});
  const double e_abc = energy_of({a, b, c});
  // For a pair potential: e_abc == e_ab + e_ac + e_bc exactly.
  EXPECT_GT(std::abs(e_abc - (e_ab + e_ac + e_bc)), 1e-4);
}

TEST(SuttonChen, FccIsBoundAndStable) {
  auto cfg = make_fcc(4, 4, 4, 3.61);
  SuttonChen eam;
  NeighborList nl(eam.cutoff(), 0.2);
  nl.build(cfg.box, cfg.atoms.pos);
  const auto res = eam.compute(cfg.box, cfg.atoms, nl);
  // Cohesive: negative energy per atom, order eV (experimental Cu: -3.5).
  const double per_atom = res.energy / static_cast<double>(cfg.atoms.size());
  EXPECT_LT(per_atom, -0.5);
  EXPECT_GT(per_atom, -10.0);
  // Perfect lattice: zero forces by symmetry.
  for (const auto& f : cfg.atoms.force) EXPECT_NEAR(norm(f), 0.0, 1e-9);
}

TEST(SuttonChen, EnergySmoothAtCutoff) {
  SuttonChen eam;
  Box box(60, 60, 60);
  Atoms atoms;
  atoms.mass_by_type = {63.546};
  atoms.add({20, 20, 20}, 0);
  atoms.add({20 + eam.cutoff() - 1e-7, 20, 20}, 0);
  NeighborList nl(eam.cutoff(), 1.0);
  nl.build(box, atoms.pos);
  const double e_in = eam.compute(box, atoms, nl).energy;
  atoms.pos[1].x = 20 + eam.cutoff() + 1e-7;
  const double e_out = eam.compute(box, atoms, nl).energy;
  // The sqrt embedding amplifies the gate's ~1e-16 cancellation noise to
  // ~1e-9 eV right at the cutoff — far below any physical scale.
  EXPECT_NEAR(e_in, e_out, 1e-7);
  EXPECT_NEAR(e_out, 0.0, 1e-12);
}

TEST(SuttonChen, NoNanAnywhereNearCutoff) {
  // Regression: without clamping, gate cancellation noise made the density
  // infinitesimally negative right at the cutoff and sqrt produced NaN
  // (seen on non-FMA builds). Probe a dense band across the cutoff.
  SuttonChen eam;
  Box box(60, 60, 60);
  Atoms atoms;
  atoms.mass_by_type = {63.546};
  atoms.add({20, 20, 20}, 0);
  atoms.add({0, 0, 0}, 0);
  for (int k = -50; k <= 50; ++k) {
    atoms.pos[1] = {20 + eam.cutoff() + static_cast<double>(k) * 1e-9, 20, 20};
    NeighborList nl(eam.cutoff(), 1.0);
    nl.build(box, atoms.pos);
    const auto res = eam.compute(box, atoms, nl);
    ASSERT_TRUE(std::isfinite(res.energy)) << "offset " << k;
    ASSERT_TRUE(std::isfinite(norm(atoms.force[0]))) << "offset " << k;
  }
}

TEST(SuttonChen, IsolatedAtomHasZeroEnergy) {
  SuttonChen eam;
  Box box(50, 50, 50);
  Atoms atoms;
  atoms.mass_by_type = {63.546};
  atoms.add({25, 25, 25}, 0);
  NeighborList nl(eam.cutoff(), 1.0);
  nl.build(box, atoms.pos);
  const auto res = eam.compute(box, atoms, nl);
  EXPECT_DOUBLE_EQ(res.energy, 0.0);
  EXPECT_NEAR(norm(atoms.force[0]), 0.0, 1e-14);
}

TEST(SuttonChen, NveConservesEnergy) {
  auto cfg = make_fcc(5, 5, 5, 3.61);  // 18 A box > 2 * (7 + 1)
  SuttonChen eam;
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.steps = 150;
  sc.temperature = 300.0;
  sc.thermo_every = 30;
  Simulation sim(cfg, eam, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  for (const auto& s : trace)
    EXPECT_NEAR(s.total(), e0, 2e-4 * std::abs(e0)) << "step " << s.step;
}

TEST(SuttonChen, VirialMatchesStrainDerivative) {
  auto cfg = make_fcc(5, 5, 5, 3.61, 63.546, 0.05, 12);
  SuttonChen eam;
  NeighborList nl(eam.cutoff(), 1.0);
  nl.build(cfg.box, cfg.atoms.pos);
  const auto res = eam.compute(cfg.box, cfg.atoms, nl);

  const double h = 1e-6;
  auto energy_scaled = [&](double s) {
    Configuration scaled = cfg;
    scaled.box = Box(cfg.box.lengths() * s);
    for (auto& r : scaled.atoms.pos) r *= s;
    NeighborList nl2(eam.cutoff(), 1.0);
    nl2.build(scaled.box, scaled.atoms.pos);
    SuttonChen eam2;
    return eam2.compute(scaled.box, scaled.atoms, nl2).energy;
  };
  const double dE_ds = (energy_scaled(1 + h) - energy_scaled(1 - h)) / (2 * h);
  EXPECT_NEAR(res.virial.trace(), -dE_ds, 1e-4 * std::max(1.0, std::abs(dE_ds)));
}

TEST(SuttonChen, RejectsGhostOnlyCenters) {
  auto cfg = make_fcc(5, 5, 5, 3.61);
  SuttonChen eam;
  NeighborList nl(eam.cutoff(), 0.5);
  nl.build(cfg.box, cfg.atoms.pos, cfg.atoms.size() / 2);  // half the centers
  EXPECT_THROW(eam.compute(cfg.box, cfg.atoms, nl), Error);
}

}  // namespace
}  // namespace dp::md
