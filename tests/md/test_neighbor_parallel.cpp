// Parity suite for the OpenMP-parallel neighbor build: the CSR output of
// build / build_half / build_brute must be byte-identical to the 1-thread
// build at every thread count, across periodic/non-periodic boxes, uneven
// densities and the small-box brute-force fallback — the property that
// keeps forces bitwise-reproducible regardless of OMP_NUM_THREADS.
#include "md/neighbor.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "common/rng.hpp"
#include "md/lattice.hpp"

namespace dp::md {
namespace {

/// Restores the calling thread's OpenMP team size on scope exit.
struct ThreadGuard {
  int saved = omp_get_max_threads();
  ~ThreadGuard() { omp_set_num_threads(saved); }
};

/// The full CSR, reconstructed through the public span API: offsets from
/// cumulative span lengths, list from the concatenated spans. Two lists
/// with equal snapshots are byte-identical.
struct Csr {
  std::vector<int> offsets{0};
  std::vector<int> list;
  bool operator==(const Csr&) const = default;
};

Csr snapshot(const NeighborList& nl) {
  Csr out;
  for (std::size_t i = 0; i < nl.n_centers(); ++i) {
    const auto span = nl.neighbors(i);
    out.list.insert(out.list.end(), span.begin(), span.end());
    out.offsets.push_back(static_cast<int>(out.list.size()));
  }
  return out;
}

std::vector<Vec3> random_positions(const Box& box, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos(n);
  for (auto& r : pos)
    r = {rng.uniform(0.0, box.lengths().x), rng.uniform(0.0, box.lengths().y),
         rng.uniform(0.0, box.lengths().z)};
  return pos;
}

/// Dense blob in one octant + sparse gas elsewhere: the uneven-density case
/// where per-thread work differs by an order of magnitude.
std::vector<Vec3> uneven_positions(const Box& box, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos(n);
  const Vec3 L = box.lengths();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < 3 * n / 4) {
      pos[i] = {rng.uniform(0.0, 0.25 * L.x), rng.uniform(0.0, 0.25 * L.y),
                rng.uniform(0.0, 0.25 * L.z)};
    } else {
      pos[i] = {rng.uniform(0.0, L.x), rng.uniform(0.0, L.y), rng.uniform(0.0, L.z)};
    }
  }
  return pos;
}

constexpr int kThreadCounts[] = {2, 4, 8};

void expect_build_parity(const Box& box, const std::vector<Vec3>& pos, double rc, double skin,
                         std::size_t n_centers = SIZE_MAX, bool periodic = true) {
  ThreadGuard guard;
  omp_set_num_threads(1);
  NeighborList serial(rc, skin);
  serial.build(box, pos, n_centers, periodic);
  const Csr want = snapshot(serial);
  for (int t : kThreadCounts) {
    omp_set_num_threads(t);
    NeighborList threaded(rc, skin);
    threaded.build(box, pos, n_centers, periodic);
    EXPECT_EQ(want, snapshot(threaded)) << "threads=" << t;
  }
}

TEST(NeighborParallel, BuildParityPeriodicRandom) {
  Box box(25, 25, 25);
  expect_build_parity(box, random_positions(box, 400, 11), 5.0, 1.0);
}

TEST(NeighborParallel, BuildParityNonPeriodic) {
  Box box(50, 50, 50);
  expect_build_parity(box, random_positions(box, 300, 12), 6.0, 1.0, SIZE_MAX,
                      /*periodic=*/false);
}

TEST(NeighborParallel, BuildParityUnevenDensity) {
  Box box(30, 30, 30);
  expect_build_parity(box, uneven_positions(box, 500, 13), 4.0, 1.0);
}

TEST(NeighborParallel, BuildParityAnisotropicBox) {
  Box box(42, 15, 21);
  expect_build_parity(box, random_positions(box, 350, 14), 4.5, 0.5);
}

TEST(NeighborParallel, BuildParityBruteForceFallback) {
  // Box only ~2 cells across: exercises the threaded quadratic fallback.
  Box box(13, 13, 13);
  expect_build_parity(box, random_positions(box, 150, 15), 4.0, 2.0);
}

TEST(NeighborParallel, BuildParityCentersPrefix) {
  // Ghost-style call: centers are a prefix, the tail acts as ghosts.
  Box box(28, 28, 28);
  expect_build_parity(box, random_positions(box, 300, 16), 5.0, 1.0, 120,
                      /*periodic=*/false);
}

TEST(NeighborParallel, BuildParityMoreThreadsThanCenters) {
  Box box(20, 20, 20);
  expect_build_parity(box, random_positions(box, 5, 17), 5.0, 1.0);
}

TEST(NeighborParallel, HalfListParity) {
  Box box(24, 24, 24);
  const auto pos = random_positions(box, 400, 18);
  ThreadGuard guard;
  omp_set_num_threads(1);
  NeighborList serial(5.0, 1.0);
  serial.build_half(box, pos);
  const Csr want = snapshot(serial);
  for (int t : kThreadCounts) {
    omp_set_num_threads(t);
    NeighborList threaded(5.0, 1.0);
    threaded.build_half(box, pos);
    EXPECT_TRUE(threaded.is_half());
    EXPECT_EQ(want, snapshot(threaded)) << "threads=" << t;
  }
}

TEST(NeighborParallel, PrefixAndCompactParity) {
  // prefix()/compact() consume the CSR and the retained center positions;
  // both must be independent of the thread count that built them.
  Box box(26, 26, 26);
  const auto pos = uneven_positions(box, 450, 19);
  ThreadGuard guard;
  omp_set_num_threads(1);
  NeighborList serial(4.0, 1.0);
  serial.build(box, pos, 200, /*periodic=*/false);
  std::vector<int> serial_map;
  const Csr want_prefix = snapshot(serial.prefix(80));
  const Csr want_compact = snapshot(serial.compact(80, 200, serial_map));
  for (int t : kThreadCounts) {
    omp_set_num_threads(t);
    NeighborList threaded(4.0, 1.0);
    threaded.build(box, pos, 200, /*periodic=*/false);
    std::vector<int> map;
    EXPECT_EQ(want_prefix, snapshot(threaded.prefix(80))) << "threads=" << t;
    EXPECT_EQ(want_compact, snapshot(threaded.compact(80, 200, map))) << "threads=" << t;
    EXPECT_EQ(serial_map, map) << "threads=" << t;
  }
}

TEST(NeighborParallel, RepeatedRebuildsAreAllocationFree) {
  // Steady state: after a couple of warm-up builds (capacities alternate
  // once through build_half's buffer swap), the persistent workspace stops
  // growing — rebuilds allocate nothing.
  Box box(25, 25, 25);
  const auto base = random_positions(box, 500, 20);
  ThreadGuard guard;
  omp_set_num_threads(4);
  NeighborList nl(5.0, 1.0);
  Rng rng(21);
  auto jittered = [&] {
    auto pos = base;  // fluctuation around one frame, like skin-bounded MD
    for (auto& r : pos) r = box.wrap(r + rng.unit_vector() * rng.uniform(0.0, 0.4));
    return pos;
  };
  for (int warm = 0; warm < 3; ++warm) nl.build(box, jittered());
  const std::size_t steady = nl.workspace_bytes();
  EXPECT_GT(steady, 0u);
  for (int rebuild = 0; rebuild < 10; ++rebuild) {
    nl.build(box, jittered());
    EXPECT_EQ(steady, nl.workspace_bytes()) << "rebuild " << rebuild;
  }
}

TEST(NeighborParallel, NeedsRebuildIgnoresGhostTail) {
  // Only the center prefix is retained and checked: a ghost moving (or
  // being wildly wrong) must not trigger a rebuild — ghosts are re-derived
  // every step and owned (as locals) by exactly one other rank, whose own
  // check covers them. A changed atom count still invalidates outright.
  Box box(30, 30, 30);
  auto pos = random_positions(box, 200, 22);
  NeighborList nl(5.0, 2.0);
  nl.build(box, pos, 120, /*periodic=*/false);
  EXPECT_FALSE(nl.needs_rebuild(box, pos, 120));
  pos[150] += Vec3{9.0, 9.0, 9.0};  // ghost slot: beyond any skin
  EXPECT_FALSE(nl.needs_rebuild(box, pos, 120));
  pos[30] += Vec3{1.5, 0.0, 0.0};  // center slot: > skin/2
  EXPECT_TRUE(nl.needs_rebuild(box, pos, 120));
  pos[30] -= Vec3{1.5, 0.0, 0.0};
  pos.push_back(Vec3{1, 1, 1});  // ghost count changed: stale by size
  EXPECT_TRUE(nl.needs_rebuild(box, pos, 120));
}

}  // namespace
}  // namespace dp::md
