#include "md/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "md/integrator.hpp"
#include "md/lj.hpp"
#include "md/simulation.hpp"

namespace dp::md {
namespace {

TEST(Checkpoint, RoundTripIsBitExact) {
  auto cfg = make_water(1, 1, 1, 3);
  init_velocities(cfg.atoms, 330.0, 4);
  const std::string path = ::testing::TempDir() + "/dp_ckpt_test.bin";
  save_checkpoint(path, cfg, 42);

  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.step, 42);
  EXPECT_DOUBLE_EQ(loaded.config.box.lengths().x, cfg.box.lengths().x);
  ASSERT_EQ(loaded.config.atoms.size(), cfg.atoms.size());
  EXPECT_EQ(loaded.config.atoms.mass_by_type, cfg.atoms.mass_by_type);
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i) {
    EXPECT_EQ(loaded.config.atoms.type[i], cfg.atoms.type[i]);
    EXPECT_DOUBLE_EQ(norm(loaded.config.atoms.pos[i] - cfg.atoms.pos[i]), 0.0);
    EXPECT_DOUBLE_EQ(norm(loaded.config.atoms.vel[i] - cfg.atoms.vel[i]), 0.0);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RestartContinuesTrajectoryExactly) {
  // run A: 20 steps straight. run B: 10 steps, checkpoint, restart, 10 more.
  // Same forces, same integrator => identical final state.
  auto sys = make_fcc(3, 3, 3, 3.7, 63.5, 0.0, 5);
  LennardJones lj(0.4, 2.34, 4.5);
  SimulationConfig sc;
  sc.skin = 1.0;
  sc.dt = 0.002;
  sc.temperature = 200.0;
  sc.rebuild_every = 1000;  // keep the list fixed so both runs see one build
  sc.thermo_every = 100;

  sc.steps = 20;
  Simulation run_a(sys, lj, sc);
  run_a.run();

  sc.steps = 10;
  Simulation run_b1(sys, lj, sc);
  run_b1.run();
  const std::string path = ::testing::TempDir() + "/dp_ckpt_restart.bin";
  save_checkpoint(path, run_b1.configuration(), run_b1.current_step());

  const Checkpoint ck = load_checkpoint(path);
  EXPECT_EQ(ck.step, 10);
  SimulationConfig sc2 = sc;
  sc2.temperature = 0.0;  // restart must NOT re-thermalize...
  Simulation run_b2(ck.config, lj, sc2);
  // ...but Simulation's constructor zeroes velocities at T=0; restore them.
  run_b2.configuration().atoms.vel = ck.config.atoms.vel;
  run_b2.run();

  const auto& a = run_a.configuration().atoms;
  const auto& b = run_b2.configuration().atoms;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(norm(a.pos[i] - b.pos[i]), 1e-12) << "atom " << i;
    EXPECT_LT(norm(a.vel[i] - b.vel[i]), 1e-12);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/dp_ckpt_bad.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint("/nonexistent/ckpt.bin"), Error);
}

}  // namespace
}  // namespace dp::md
