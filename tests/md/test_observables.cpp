#include "md/observables.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "md/integrator.hpp"
#include "md/lattice.hpp"

namespace dp::md {
namespace {

TEST(Rdf, FccFirstPeakAtNearestNeighborDistance) {
  const double a = 3.634;
  auto cfg = make_fcc(6, 6, 6, a);
  const Rdf rdf = compute_rdf(cfg.box, cfg.atoms, 8.0, 160);
  const std::size_t peak = rdf.first_peak();
  ASSERT_GT(peak, 0u);
  EXPECT_NEAR(rdf.r[peak], a / std::sqrt(2.0), 0.1);
  // No pairs below the first shell in a perfect crystal.
  for (std::size_t b = 0; rdf.r[b] < a / std::sqrt(2.0) - 0.2; ++b)
    EXPECT_DOUBLE_EQ(rdf.g[b], 0.0);
}

TEST(Rdf, IdealGasIsFlatAtOne) {
  Box box(20, 20, 20);
  Atoms atoms;
  atoms.mass_by_type = {1.0};
  Rng rng(4);
  for (int i = 0; i < 2000; ++i)
    atoms.add({rng.uniform(0, 20), rng.uniform(0, 20), rng.uniform(0, 20)}, 0);
  const Rdf rdf = compute_rdf(box, atoms, 8.0, 40);
  // Beyond the first couple of bins (tiny shells = noisy), g ~ 1.
  for (std::size_t b = 5; b < rdf.g.size(); ++b) EXPECT_NEAR(rdf.g[b], 1.0, 0.25);
}

TEST(Rdf, PartialSpeciesWaterOH) {
  auto cfg = make_water(2, 2, 2);
  const Rdf oh = compute_rdf(cfg.box, cfg.atoms, 6.0, 240, /*O*/ 0, /*H*/ 1);
  const std::size_t peak = oh.first_peak();
  ASSERT_GT(peak, 0u);
  // Intramolecular O-H bond at 0.9572 A dominates.
  EXPECT_NEAR(oh.r[peak], 0.9572, 0.05);
}

TEST(Rdf, RejectsTooLargeRmax) {
  auto cfg = make_fcc(2, 2, 2);
  EXPECT_THROW(compute_rdf(cfg.box, cfg.atoms, 5.0, 10), Error);
}

TEST(Msd, StaticAtomsHaveZeroMsd) {
  auto cfg = make_fcc(3, 3, 3);
  MsdAccumulator msd(cfg.box);
  msd.reset(cfg.atoms.pos);
  msd.update(cfg.atoms.pos);
  msd.update(cfg.atoms.pos);
  EXPECT_DOUBLE_EQ(msd.msd(), 0.0);
}

TEST(Msd, BallisticMotionGrowsQuadratically) {
  // Free flight: MSD(t) = <v^2> t^2.
  Box box(30, 30, 30);
  Atoms atoms;
  atoms.mass_by_type = {1.0};
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    atoms.add({rng.uniform(0, 30), rng.uniform(0, 30), rng.uniform(0, 30)}, 0);
    atoms.vel.back() = rng.unit_vector() * 2.0;  // |v| = 2 A/ps
  }
  MsdAccumulator msd(box);
  msd.reset(atoms.pos);
  const double dt = 0.01;
  double msd_at_1 = 0;
  for (int step = 1; step <= 200; ++step) {
    for (std::size_t i = 0; i < atoms.size(); ++i)
      atoms.pos[i] = box.wrap(atoms.pos[i] + atoms.vel[i] * dt);
    msd.update(atoms.pos);
    if (step == 100) msd_at_1 = msd.msd();
  }
  EXPECT_NEAR(msd_at_1, 4.0 * 1.0, 1e-6);        // t = 1 ps
  EXPECT_NEAR(msd.msd(), 4.0 * 4.0, 1e-6);        // t = 2 ps: 4x larger
}

TEST(Msd, UnwrapsAcrossPeriodicBoundary) {
  Box box(10, 10, 10);
  Atoms atoms;
  atoms.mass_by_type = {1.0};
  atoms.add({9.5, 5, 5}, 0);
  MsdAccumulator msd(box);
  msd.reset(atoms.pos);
  // March +x through the boundary in small hops: total displacement 4 A.
  for (int k = 0; k < 8; ++k) {
    atoms.pos[0] = box.wrap(atoms.pos[0] + Vec3{0.5, 0, 0});
    msd.update(atoms.pos);
  }
  EXPECT_NEAR(msd.msd(), 16.0, 1e-9);
}

TEST(Vacf, StartsAtOneAndDecorrelates) {
  auto cfg = make_fcc(4, 4, 4);
  init_velocities(cfg.atoms, 300.0, 6);
  VelocityAutocorrelation vacf;
  vacf.reset(cfg.atoms.vel);
  EXPECT_NEAR(vacf.correlate(cfg.atoms.vel), 1.0, 1e-12);
  // Fully randomized velocities decorrelate to ~0.
  init_velocities(cfg.atoms, 300.0, 999);
  EXPECT_NEAR(vacf.correlate(cfg.atoms.vel), 0.0, 0.1);
}

TEST(Vacf, SignFlipsForReversedVelocities) {
  auto cfg = make_fcc(3, 3, 3);
  init_velocities(cfg.atoms, 300.0, 7);
  VelocityAutocorrelation vacf;
  vacf.reset(cfg.atoms.vel);
  for (auto& v : cfg.atoms.vel) v *= -1.0;
  EXPECT_NEAR(vacf.correlate(cfg.atoms.vel), -1.0, 1e-12);
}

}  // namespace
}  // namespace dp::md
