#include "md/neighbor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/lj.hpp"

namespace dp::md {
namespace {

std::vector<Vec3> random_positions(const Box& box, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos(n);
  for (auto& r : pos)
    r = {rng.uniform(0.0, box.lengths().x), rng.uniform(0.0, box.lengths().y),
         rng.uniform(0.0, box.lengths().z)};
  return pos;
}

void expect_matches_brute(const Box& box, const std::vector<Vec3>& pos, double rc, double skin) {
  NeighborList nl(rc, skin);
  nl.build(box, pos);
  auto ref = brute_force_neighbors(box, pos, rc + skin);
  ASSERT_EQ(nl.n_centers(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    auto span = nl.neighbors(i);
    std::multiset<int> got(span.begin(), span.end());
    std::multiset<int> want(ref[i].begin(), ref[i].end());
    EXPECT_EQ(got, want) << "atom " << i;
  }
}

TEST(NeighborList, MatchesBruteForceRandom) {
  Box box(25, 25, 25);
  expect_matches_brute(box, random_positions(box, 300, 1), 6.0, 2.0);
}

TEST(NeighborList, MatchesBruteForceFcc) {
  auto cfg = make_fcc(4, 4, 4);
  expect_matches_brute(cfg.box, cfg.atoms.pos, 6.0, 1.0);
}

TEST(NeighborList, MatchesBruteForceAnisotropicBox) {
  Box box(30, 18, 24);
  expect_matches_brute(box, random_positions(box, 400, 2), 5.0, 1.5);
}

TEST(NeighborList, SmallBoxFallsBackToBruteForce) {
  // Box only ~2 cells across: the cell path would double-count.
  Box box(13, 13, 13);
  expect_matches_brute(box, random_positions(box, 120, 3), 4.0, 2.0);
}

TEST(NeighborList, FullListIsSymmetric) {
  Box box(20, 20, 20);
  auto pos = random_positions(box, 200, 4);
  NeighborList nl(5.0, 1.0);
  nl.build(box, pos);
  for (std::size_t i = 0; i < nl.n_centers(); ++i)
    for (int j : nl.neighbors(i)) {
      auto back = nl.neighbors(static_cast<std::size_t>(j));
      EXPECT_TRUE(std::find(back.begin(), back.end(), static_cast<int>(i)) != back.end());
    }
}

TEST(NeighborList, NoSelfNeighbors) {
  auto cfg = make_fcc(3, 3, 3);
  NeighborList nl(8.0, 2.0);
  nl.build(cfg.box, cfg.atoms.pos);
  for (std::size_t i = 0; i < nl.n_centers(); ++i)
    for (int j : nl.neighbors(i)) EXPECT_NE(static_cast<std::size_t>(j), i);
}

TEST(NeighborList, FccCoordinationNumber) {
  // rc just above a/sqrt(2) captures exactly the 12 FCC nearest neighbors.
  const double a = 3.634;
  auto cfg = make_fcc(4, 4, 4, a);
  NeighborList nl(a / std::sqrt(2.0) + 0.05, 0.0);
  nl.build(cfg.box, cfg.atoms.pos);
  for (std::size_t i = 0; i < nl.n_centers(); ++i) EXPECT_EQ(nl.neighbors(i).size(), 12u);
}

TEST(NeighborList, CopperNeighborCountNearPaperValue) {
  // Paper Sec 4: copper with rc = 8 A has ~500 max neighbors reserved (for
  // high-pressure states); the ambient FCC count is far lower (~ 134),
  // which is exactly the redundancy the optimized kernels skip.
  auto cfg = make_fcc(6, 6, 6);
  NeighborList nl(8.0, 0.0);
  nl.build(cfg.box, cfg.atoms.pos);
  EXPECT_GE(nl.max_neighbors(), 120u);
  EXPECT_LE(nl.max_neighbors(), 200u);  // far below the 500 reserved slots
}

TEST(NeighborList, WaterNeighborCountBelowReserved138) {
  auto cfg = make_water(2, 2, 2);
  NeighborList nl(6.0, 0.0);
  nl.build(cfg.box, cfg.atoms.pos);
  EXPECT_GT(nl.mean_neighbors(), 20.0);
  EXPECT_LE(nl.max_neighbors(), 138u);  // the reserved N_m for water
}

TEST(NeighborList, NeedsRebuildAfterLargeMove) {
  Box box(20, 20, 20);
  auto pos = random_positions(box, 50, 5);
  NeighborList nl(5.0, 2.0);
  nl.build(box, pos);
  EXPECT_FALSE(nl.needs_rebuild(box, pos));
  pos[7].x += 0.9;  // < skin/2
  EXPECT_FALSE(nl.needs_rebuild(box, pos));
  pos[7].x += 0.2;  // total 1.1 > skin/2 = 1.0
  EXPECT_TRUE(nl.needs_rebuild(box, pos));
}

TEST(NeighborList, CentersOnlySubset) {
  Box box(20, 20, 20);
  auto pos = random_positions(box, 100, 6);
  NeighborList nl(5.0, 1.0);
  nl.build(box, pos, 10);
  EXPECT_EQ(nl.n_centers(), 10u);
  auto ref = brute_force_neighbors(box, pos, 6.0, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    std::multiset<int> got(nl.neighbors(i).begin(), nl.neighbors(i).end());
    std::multiset<int> want(ref[i].begin(), ref[i].end());
    EXPECT_EQ(got, want);
  }
}

TEST(NeighborList, NonPeriodicMode) {
  Box box(50, 50, 50);
  auto pos = random_positions(box, 200, 7);
  NeighborList nl(6.0, 1.0);
  nl.build(box, pos, SIZE_MAX, /*periodic=*/false);
  auto ref = brute_force_neighbors(box, pos, 7.0, SIZE_MAX, false);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::multiset<int> got(nl.neighbors(i).begin(), nl.neighbors(i).end());
    std::multiset<int> want(ref[i].begin(), ref[i].end());
    EXPECT_EQ(got, want);
  }
}

TEST(NeighborList, SkinPropertyNoMissedPairsWhileWithinHalfSkin) {
  // Property: after building with skin s, as long as no atom moved more than
  // s/2, every pair within rc is still on the list.
  Box box(22, 22, 22);
  auto pos = random_positions(box, 150, 8);
  const double rc = 5.0, skin = 2.0;
  NeighborList nl(rc, skin);
  nl.build(box, pos);
  Rng rng(9);
  // Move every atom by up to skin/2 (just under).
  for (auto& r : pos) {
    Vec3 d = rng.unit_vector() * rng.uniform(0.0, 0.49 * skin);
    r = box.wrap(r + d);
  }
  EXPECT_FALSE(nl.needs_rebuild(box, pos));
  auto within_rc = brute_force_neighbors(box, pos, rc);
  for (std::size_t i = 0; i < within_rc.size(); ++i) {
    auto span = nl.neighbors(i);
    std::set<int> listed(span.begin(), span.end());
    for (int j : within_rc[i]) EXPECT_TRUE(listed.count(j)) << "missed pair " << i << "," << j;
  }
}

TEST(NeighborList, HalfListHasEachPairOnce) {
  Box box(20, 20, 20);
  auto pos = random_positions(box, 150, 21);
  NeighborList full(5.0, 1.0), half(5.0, 1.0);
  full.build(box, pos);
  half.build_half(box, pos);
  EXPECT_FALSE(full.is_half());
  EXPECT_TRUE(half.is_half());
  std::size_t full_count = 0, half_count = 0;
  for (std::size_t i = 0; i < full.n_centers(); ++i) {
    full_count += full.neighbors(i).size();
    half_count += half.neighbors(i).size();
    for (int j : half.neighbors(i)) EXPECT_GT(static_cast<std::size_t>(j), i);
  }
  EXPECT_EQ(full_count, 2 * half_count);
}

TEST(NeighborList, HalfListLjMatchesFullList) {
  auto cfg = make_fcc(4, 4, 4, 3.7, 63.546, 0.07, 22);
  LennardJones lj(0.4, 2.34, 6.0);
  NeighborList full(lj.cutoff(), 1.0), half(lj.cutoff(), 1.0);
  full.build(cfg.box, cfg.atoms.pos);
  half.build_half(cfg.box, cfg.atoms.pos);

  Atoms atoms_a = cfg.atoms;
  Atoms atoms_b = cfg.atoms;
  const auto ra = lj.compute(cfg.box, atoms_a, full);
  const auto rb = lj.compute(cfg.box, atoms_b, half);
  EXPECT_NEAR(ra.energy, rb.energy, 1e-10);
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-11) << "atom " << i;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_NEAR(ra.virial(r, c), rb.virial(r, c), 1e-10);
}

}  // namespace
}  // namespace dp::md
