// Parameterized neighbor-list sweep: cell list == brute force across
// cutoffs, skins, densities and box shapes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.hpp"
#include "md/neighbor.hpp"

namespace dp::md {
namespace {

// (box_x, box_y, box_z, n_atoms, cutoff, skin)
using SweepParam = std::tuple<double, double, double, int, double, double>;

class NeighborSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [lx, ly, lz, n, rc, skin] = GetParam();
    box_ = Box(lx, ly, lz);
    rc_ = rc;
    skin_ = skin;
    Rng rng(static_cast<std::uint64_t>(n) * 31 + static_cast<std::uint64_t>(lx));
    pos_.resize(static_cast<std::size_t>(n));
    for (auto& r : pos_)
      r = {rng.uniform(0, lx), rng.uniform(0, ly), rng.uniform(0, lz)};
  }

  Box box_{1, 1, 1};
  double rc_ = 1, skin_ = 0;
  std::vector<Vec3> pos_;
};

TEST_P(NeighborSweep, MatchesBruteForce) {
  NeighborList nl(rc_, skin_);
  nl.build(box_, pos_);
  const auto ref = brute_force_neighbors(box_, pos_, rc_ + skin_);
  ASSERT_EQ(nl.n_centers(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    std::multiset<int> got(nl.neighbors(i).begin(), nl.neighbors(i).end());
    std::multiset<int> want(ref[i].begin(), ref[i].end());
    EXPECT_EQ(got, want) << "atom " << i;
  }
}

TEST_P(NeighborSweep, SymmetricAndSelfFree) {
  NeighborList nl(rc_, skin_);
  nl.build(box_, pos_);
  for (std::size_t i = 0; i < nl.n_centers(); ++i) {
    for (int j : nl.neighbors(i)) {
      EXPECT_NE(static_cast<std::size_t>(j), i);
      auto back = nl.neighbors(static_cast<std::size_t>(j));
      EXPECT_TRUE(std::find(back.begin(), back.end(), static_cast<int>(i)) != back.end());
    }
  }
}

TEST_P(NeighborSweep, FreshBuildNeedsNoRebuild) {
  NeighborList nl(rc_, skin_);
  nl.build(box_, pos_);
  if (skin_ > 0) {
    EXPECT_FALSE(nl.needs_rebuild(box_, pos_));
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoxesAndCutoffs, NeighborSweep,
    ::testing::Values(
        SweepParam{24, 24, 24, 200, 5.0, 1.0},   // cubic, mid density
        SweepParam{24, 24, 24, 600, 5.0, 2.0},   // cubic, dense
        SweepParam{40, 16, 16, 300, 4.0, 1.0},   // slab-like
        SweepParam{15, 15, 15, 150, 4.0, 0.0},   // zero skin
        SweepParam{12, 12, 12, 100, 3.0, 2.0},   // small box (brute fallback)
        SweepParam{30, 30, 30, 64, 8.0, 2.0},    // sparse, long cutoff
        SweepParam{26, 26, 26, 500, 2.0, 0.5}),  // short cutoff
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "case" + std::to_string(info.index);
    });

}  // namespace
}  // namespace dp::md
