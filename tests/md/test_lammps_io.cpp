#include "md/lammps_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "md/integrator.hpp"

namespace dp::md {
namespace {

TEST(LammpsIo, RoundTripPreservesEverything) {
  auto cfg = make_water(1, 1, 1, 5);
  init_velocities(cfg.atoms, 330.0, 6);
  const std::string path = ::testing::TempDir() + "/dp_lmp_test.data";
  write_lammps_data(path, cfg, "round trip test");

  const Configuration loaded = read_lammps_data(path);
  ASSERT_EQ(loaded.atoms.size(), cfg.atoms.size());
  EXPECT_EQ(loaded.atoms.ntypes(), cfg.atoms.ntypes());
  EXPECT_NEAR(loaded.box.lengths().x, cfg.box.lengths().x, 1e-9);
  for (int t = 0; t < cfg.atoms.ntypes(); ++t)
    EXPECT_NEAR(loaded.atoms.mass_by_type[static_cast<std::size_t>(t)],
                cfg.atoms.mass_by_type[static_cast<std::size_t>(t)], 1e-9);
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i) {
    EXPECT_EQ(loaded.atoms.type[i], cfg.atoms.type[i]);
    EXPECT_LT(norm(loaded.atoms.pos[i] - cfg.atoms.pos[i]), 1e-9) << "atom " << i;
    EXPECT_LT(norm(loaded.atoms.vel[i] - cfg.atoms.vel[i]), 1e-9);
  }
  std::remove(path.c_str());
}

TEST(LammpsIo, ReadsShuffledIdsAndComments) {
  const std::string path = ::testing::TempDir() + "/dp_lmp_manual.data";
  {
    std::ofstream os(path);
    os << "LAMMPS data file written by hand\n\n"
       << "3 atoms\n"
       << "2 atom types  # O and H\n\n"
       << "0.0 10.0 xlo xhi\n"
       << "0.0 12.0 ylo yhi\n"
       << "0.0 14.0 zlo zhi\n\n"
       << "Masses\n\n"
       << "2 1.008\n"
       << "1 15.999\n\n"
       << "Atoms # atomic\n\n"
       << "3 2 3.0 3.5 4.0   # out-of-order ids\n"
       << "1 1 1.0 1.5 2.0\n"
       << "2 2 2.0 2.5 3.0\n\n"
       << "Velocities\n\n"
       << "2 0.1 0.2 0.3\n"
       << "1 -0.1 0.0 0.1\n"
       << "3 0.0 0.0 0.0\n";
  }
  const Configuration cfg = read_lammps_data(path);
  ASSERT_EQ(cfg.atoms.size(), 3u);
  EXPECT_EQ(cfg.atoms.ntypes(), 2);
  EXPECT_DOUBLE_EQ(cfg.box.lengths().y, 12.0);
  EXPECT_DOUBLE_EQ(cfg.atoms.mass_by_type[0], 15.999);
  EXPECT_DOUBLE_EQ(cfg.atoms.mass_by_type[1], 1.008);
  EXPECT_EQ(cfg.atoms.type[0], 0);
  EXPECT_EQ(cfg.atoms.type[2], 1);
  EXPECT_DOUBLE_EQ(cfg.atoms.pos[2].x, 3.0);
  EXPECT_DOUBLE_EQ(cfg.atoms.vel[1].z, 0.3);
  std::remove(path.c_str());
}

TEST(LammpsIo, ShiftedBoxOriginIsNormalized) {
  const std::string path = ::testing::TempDir() + "/dp_lmp_shift.data";
  {
    std::ofstream os(path);
    os << "shifted box\n\n1 atoms\n1 atom types\n\n"
       << "-5.0 5.0 xlo xhi\n-5.0 5.0 ylo yhi\n-5.0 5.0 zlo zhi\n\n"
       << "Masses\n\n1 39.9\n\n"
       << "Atoms\n\n1 1 -4.0 0.0 4.0\n";
  }
  const Configuration cfg = read_lammps_data(path);
  EXPECT_DOUBLE_EQ(cfg.box.lengths().x, 10.0);
  // Position shifted into [0, L): -4 + 5 = 1.
  EXPECT_NEAR(cfg.atoms.pos[0].x, 1.0, 1e-12);
  EXPECT_NEAR(cfg.atoms.pos[0].z, 9.0, 1e-12);
  std::remove(path.c_str());
}

TEST(LammpsIo, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/dp_lmp_bad.data";
  {
    std::ofstream os(path);
    os << "title\n\nAtoms\n\n1 1 0 0 0\n";  // Atoms before header counts
  }
  EXPECT_THROW(read_lammps_data(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(read_lammps_data("/nonexistent.data"), Error);
}

}  // namespace
}  // namespace dp::md
