#include "md/box.hpp"

#include <gtest/gtest.h>

namespace dp::md {
namespace {

TEST(Box, WrapMapsIntoBox) {
  Box box(10, 20, 30);
  Vec3 r = box.wrap({-1.0, 25.0, 65.0});
  EXPECT_NEAR(r.x, 9.0, 1e-12);
  EXPECT_NEAR(r.y, 5.0, 1e-12);
  EXPECT_NEAR(r.z, 5.0, 1e-12);
}

TEST(Box, WrapIsIdempotent) {
  Box box(7.5, 8.5, 9.5);
  Vec3 r{-13.2, 100.7, 4.2};
  Vec3 once = box.wrap(r);
  Vec3 twice = box.wrap(once);
  EXPECT_NEAR(once.x, twice.x, 1e-12);
  EXPECT_NEAR(once.y, twice.y, 1e-12);
  EXPECT_NEAR(once.z, twice.z, 1e-12);
}

TEST(Box, WrapBoundaryEdge) {
  Box box(10, 10, 10);
  Vec3 r = box.wrap({10.0, 0.0, 9.9999999999});
  EXPECT_GE(r.x, 0.0);
  EXPECT_LT(r.x, 10.0);
  EXPECT_LT(r.z, 10.0);
}

TEST(Box, MinImagePicksNearestCopy) {
  Box box(10, 10, 10);
  Vec3 d = box.min_image({9.0, -9.0, 0.5});
  EXPECT_NEAR(d.x, -1.0, 1e-12);
  EXPECT_NEAR(d.y, 1.0, 1e-12);
  EXPECT_NEAR(d.z, 0.5, 1e-12);
}

TEST(Box, MinImageBoundedByHalfBox) {
  Box box(6, 8, 10);
  for (double v : {-17.0, -3.2, 0.0, 2.9, 4.1, 25.0}) {
    Vec3 d = box.min_image({v, v, v});
    EXPECT_LE(std::abs(d.x), 3.0 + 1e-12);
    EXPECT_LE(std::abs(d.y), 4.0 + 1e-12);
    EXPECT_LE(std::abs(d.z), 5.0 + 1e-12);
  }
}

TEST(Box, Volume) {
  EXPECT_DOUBLE_EQ(Box(2, 3, 4).volume(), 24.0);
}

TEST(Box, AccommodatesCutoff) {
  Box box(10, 10, 10);
  EXPECT_TRUE(box.accommodates_cutoff(4.9));
  EXPECT_FALSE(box.accommodates_cutoff(5.0));
}

TEST(Box, RejectsNonPositiveLengths) {
  EXPECT_THROW(Box(0, 1, 1), Error);
  EXPECT_THROW(Box(1, -2, 1), Error);
}

TEST(Box, PairDistanceConsistentUnderWrap) {
  // The min-image distance between two atoms must not depend on which
  // periodic copy of each atom is stored.
  Box box(12, 12, 12);
  Vec3 a{1.0, 2.0, 3.0}, b{11.5, 0.5, 9.0};
  const double d0 = norm(box.min_image(b - a));
  Vec3 a2 = a + Vec3{12, -24, 36};
  Vec3 b2 = b + Vec3{-12, 12, 0};
  const double d1 = norm(box.min_image(box.wrap(b2) - box.wrap(a2)));
  EXPECT_NEAR(d0, d1, 1e-10);
}

}  // namespace
}  // namespace dp::md
