// Stress and edge-case coverage for the message-passing runtime: message
// ordering under load, interleaved tags, large payloads, zero-size
// messages, and collective/point-to-point interleaving.
#include <gtest/gtest.h>

#include <numeric>

#include "parallel/minimpi.hpp"

namespace dp::par {
namespace {

TEST(MiniMpiStress, ManyMessagesPreserveFifoPerTag) {
  run_parallel(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    const int n = 500;
    for (int k = 0; k < n; ++k) {
      std::vector<int> payload{comm.rank(), k};
      comm.send_vec(other, 5, payload);
    }
    for (int k = 0; k < n; ++k) {
      const auto got = comm.recv_vec<int>(other, 5);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], other);
      EXPECT_EQ(got[1], k);  // FIFO within one (src, tag) stream
    }
  });
}

TEST(MiniMpiStress, InterleavedTagsResolveCorrectly) {
  run_parallel(3, [](Communicator& comm) {
    // Everyone sends one message per tag to everyone (self included).
    for (int dest = 0; dest < 3; ++dest)
      for (int tag = 0; tag < 7; ++tag) {
        std::vector<int> v{comm.rank() * 100 + tag};
        comm.send_vec(dest, tag, v);
      }
    // Receive in scrambled order.
    for (int tag = 6; tag >= 0; --tag)
      for (int src = 2; src >= 0; --src) {
        const auto got = comm.recv_vec<int>(src, tag);
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0], src * 100 + tag);
      }
  });
}

TEST(MiniMpiStress, LargePayloadIntegrity) {
  run_parallel(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    std::vector<double> big(1 << 20);  // 8 MB
    std::iota(big.begin(), big.end(), static_cast<double>(comm.rank()));
    comm.send_vec(other, 1, big);
    const auto got = comm.recv_vec<double>(other, 1);
    ASSERT_EQ(got.size(), big.size());
    EXPECT_DOUBLE_EQ(got.front(), static_cast<double>(other));
    EXPECT_DOUBLE_EQ(got.back(), static_cast<double>(other) + (1 << 20) - 1);
  });
}

TEST(MiniMpiStress, ZeroSizeMessages) {
  run_parallel(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    comm.send_vec(other, 9, std::vector<int>{});
    EXPECT_TRUE(comm.recv_vec<int>(other, 9).empty());
  });
}

TEST(MiniMpiStress, CollectivesInterleavedWithP2P) {
  run_parallel(4, [](Communicator& comm) {
    double running = 0.0;
    for (int round = 0; round < 30; ++round) {
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send_vec(next, round, std::vector<int>{round});
      running += comm.allreduce_sum(1.0);  // = 4 each round
      EXPECT_EQ(comm.recv_vec<int>(prev, round).at(0), round);
    }
    EXPECT_DOUBLE_EQ(running, 120.0);
  });
}

TEST(MiniMpiStress, SendToInvalidRankThrows) {
  EXPECT_THROW(run_parallel(2,
                            [](Communicator& comm) {
                              std::vector<int> v{1};
                              comm.send_vec(5, 0, v);
                            }),
               Error);
}

TEST(MiniMpiStress, ManyRanksAllreduce) {
  run_parallel(16, [](Communicator& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(total, 120.0);  // 0+1+...+15
  });
}

TEST(MiniMpiStress, StatsAggregateAcrossRanks) {
  const auto stats = run_parallel(4, [](Communicator& comm) {
    for (int dest = 0; dest < comm.size(); ++dest)
      comm.send_vec(dest, 0, std::vector<char>{'x'});
    for (int src = 0; src < comm.size(); ++src) comm.recv_vec<char>(src, 0);
    comm.barrier();
  });
  EXPECT_EQ(stats.messages, 16u);
  EXPECT_EQ(stats.bytes, 16u);
  EXPECT_GE(stats.barriers, 1u);
}

TEST(MiniMpiStress, BroadcastDeliversRootData) {
  run_parallel(4, [](Communicator& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank()), 1.0};
    const auto got = comm.broadcast(mine, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], 2.0);  // everyone sees rank 2's data
  });
}

TEST(MiniMpiStress, GathervConcatenatesInRankOrder) {
  run_parallel(3, [](Communicator& comm) {
    // Rank r contributes r+1 values, all equal to r.
    std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                             static_cast<double>(comm.rank()));
    const auto got = comm.gatherv(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(got.size(), 6u);  // 1 + 2 + 3
      EXPECT_DOUBLE_EQ(got[0], 0.0);
      EXPECT_DOUBLE_EQ(got[1], 1.0);
      EXPECT_DOUBLE_EQ(got[2], 1.0);
      EXPECT_DOUBLE_EQ(got[5], 2.0);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

}  // namespace
}  // namespace dp::par
