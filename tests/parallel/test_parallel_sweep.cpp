// Parameterized decomposition sweep: distributed force evaluation must
// equal the serial one for every rank-grid shape.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "md/lj.hpp"
#include "parallel/distributed_md.hpp"

namespace dp::par {
namespace {

class GridSweep : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(GridSweep, ForcesMatchSerial) {
  const auto grid = GetParam();
  const int ranks = grid[0] * grid[1] * grid[2];
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.07,
                          static_cast<std::uint64_t>(1000 + ranks));

  md::LennardJones serial_lj(0.4, 2.34, 4.5);
  md::NeighborList nl(serial_lj.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms serial_atoms = sys.atoms;
  const auto serial_res = serial_lj.compute(sys.box, serial_atoms, nl);

  md::SimulationConfig sc;
  sc.steps = 0;
  sc.skin = 1.0;
  DistributedOptions opts;
  opts.grid = grid;
  opts.gather_state = true;
  opts.init_velocities = false;
  const auto result = run_distributed_md(
      ranks, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc,
      opts);

  EXPECT_NEAR(result.thermo.front().potential, serial_res.energy, 1e-8);
  for (std::size_t i = 0; i < sys.atoms.size(); ++i)
    EXPECT_LT(norm(result.final_force[i] - serial_atoms.force[i]), 1e-9) << "atom " << i;
}

TEST_P(GridSweep, ShortTrajectoryEnergyConserved) {
  const auto grid = GetParam();
  const int ranks = grid[0] * grid[1] * grid[2];
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.0, 77);
  md::SimulationConfig sc;
  sc.steps = 20;
  sc.dt = 0.002;
  sc.temperature = 150.0;
  sc.skin = 1.0;
  sc.rebuild_every = 5;
  sc.thermo_every = 10;
  DistributedOptions opts;
  opts.grid = grid;
  const auto result = run_distributed_md(
      ranks, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc,
      opts);
  const double e0 = result.thermo.front().total();
  for (const auto& s : result.thermo)
    EXPECT_NEAR(s.total(), e0, 5e-3 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

INSTANTIATE_TEST_SUITE_P(Grids, GridSweep,
                         ::testing::Values(std::array<int, 3>{1, 1, 1},
                                           std::array<int, 3>{2, 1, 1},
                                           std::array<int, 3>{1, 3, 1},
                                           std::array<int, 3>{2, 2, 1},
                                           std::array<int, 3>{4, 1, 1},
                                           std::array<int, 3>{2, 2, 2}),
                         [](const ::testing::TestParamInfo<std::array<int, 3>>& info) {
                           const auto& g = info.param;
                           return std::to_string(g[0]) + "x" + std::to_string(g[1]) + "x" +
                                  std::to_string(g[2]);
                         });

}  // namespace
}  // namespace dp::par
