// Cross-process transport backends (shm, tcp) exercised in-process: each
// rank of the world runs on its own std::thread and constructs its own
// ProcessGroup, exactly as separate processes would. That shape is real for
// both backends — the shm segment is mapped once per group, the tcp mesh
// connects over loopback — while keeping the test a single binary that
// sanitizers can see end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "md/lj.hpp"
#include "parallel/distributed_md.hpp"
#include "parallel/minimpi.hpp"
#include "parallel/transport.hpp"

namespace dp::par {
namespace {

/// Globally unique shm segment token: two test binaries under ctest -j must
/// not collide in /dev/shm, and two tests in this binary must not reuse a
/// segment that a crashed predecessor left behind.
std::string unique_segment(const char* test) {
  static std::atomic<int> counter{0};
  std::ostringstream os;
  os << "dp_test_" << test << "_" << ::getpid() << "_"
     << counter.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

TransportConfig backend_config(TransportKind kind, int world, const char* test) {
  TransportConfig cfg;
  cfg.kind = kind;
  cfg.world = world;
  cfg.timeout_seconds = 60.0;
  if (kind == TransportKind::Shm) {
    cfg.rendezvous = unique_segment(test);
  } else {
    std::ostringstream os;
    os << "127.0.0.1:" << pick_free_tcp_port();
    cfg.rendezvous = os.str();
  }
  return cfg;
}

/// Runs `fn(comm)` on every rank of a multi-process-shaped world, one
/// ProcessGroup per thread. Exceptions become test failures (gtest cannot
/// propagate them across threads).
void run_world(const TransportConfig& base,
               const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(base.world));
  for (int r = 0; r < base.world; ++r) {
    threads.emplace_back([&, r] {
      TransportConfig cfg = base;
      cfg.rank = r;
      try {
        ProcessGroup pg(cfg);
        fn(pg.comm());
      } catch (const std::exception& e) {
        ADD_FAILURE() << "rank " << r << ": " << e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
}

/// P2p + collective smoke shared by both backends.
void backend_smoke(const TransportConfig& base) {
  run_world(base, [&](Communicator& comm) {
    const int rank = comm.rank();
    const int size = comm.size();
    ASSERT_EQ(size, base.world);

    // Ring exchange: send right, receive from the left, tagged by sender.
    const std::vector<double> payload{static_cast<double>(rank), 2.5 * rank};
    const int right = (rank + 1) % size;
    const int left = (rank + size - 1) % size;
    comm.send_vec(right, 100 + rank, payload);
    const auto got = comm.recv_vec<double>(left, 100 + left);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], static_cast<double>(left));
    EXPECT_EQ(got[1], 2.5 * left);

    // Out-of-order tag matching through the nonblocking API: post the
    // receive for the *second* message first.
    if (rank == 0) {
      for (int r = 1; r < size; ++r) {
        Request late = comm.irecv(r, 8);
        Request early = comm.irecv(r, 7);
        const auto a = early.take_vec<int>();
        const auto b = late.take_vec<int>();
        ASSERT_EQ(a.size(), 1u);
        ASSERT_EQ(b.size(), 1u);
        EXPECT_EQ(a[0], r);
        EXPECT_EQ(b[0], 10 * r);
      }
    } else {
      comm.isend_vec(0, 7, std::vector<int>{rank});
      comm.isend_vec(0, 8, std::vector<int>{10 * rank});
    }

    comm.barrier();

    // Collectives: deterministic results on every rank.
    EXPECT_EQ(comm.allreduce_sum(static_cast<std::uint64_t>(rank) + 1),
              static_cast<std::uint64_t>(size) * (size + 1) / 2);
    EXPECT_EQ(comm.allreduce_max(static_cast<double>(rank)),
              static_cast<double>(size - 1));
    const auto summed = comm.allreduce_sum(std::vector<double>{1.0, static_cast<double>(rank)});
    ASSERT_EQ(summed.size(), 2u);
    EXPECT_EQ(summed[0], static_cast<double>(size));
    EXPECT_EQ(summed[1], static_cast<double>(size * (size - 1) / 2));

    const auto bcast = comm.broadcast(
        rank == 1 ? std::vector<double>{3.0, 4.0} : std::vector<double>{}, 1);
    ASSERT_EQ(bcast.size(), 2u);
    EXPECT_EQ(bcast[0], 3.0);
    EXPECT_EQ(bcast[1], 4.0);

    const auto gathered = comm.gatherv(std::vector<double>{static_cast<double>(rank)}, 0);
    if (rank == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(size));
      for (int r = 0; r < size; ++r) EXPECT_EQ(gathered[static_cast<std::size_t>(r)], r);
    } else {
      EXPECT_TRUE(gathered.empty());
    }

    // Counter sanity: this rank moved messages, and on a cross-process
    // backend they crossed the wire.
    const CommStats cs = comm.stats();
    EXPECT_GT(cs.messages, 0u);
    EXPECT_GT(cs.wire_bytes, 0u);
    EXPECT_STREQ(cs.transport, base.kind == TransportKind::Shm ? "shm" : "tcp");
  });
}

TEST(Transport, ShmPointToPointAndCollectives) {
  backend_smoke(backend_config(TransportKind::Shm, 2, "smoke2"));
  backend_smoke(backend_config(TransportKind::Shm, 4, "smoke4"));
}

TEST(Transport, TcpPointToPointAndCollectives) {
  backend_smoke(backend_config(TransportKind::Tcp, 2, "smoke2"));
  backend_smoke(backend_config(TransportKind::Tcp, 4, "smoke4"));
}

/// The tentpole acceptance check, in-binary: an MD run over a cross-process
/// backend must produce forces bitwise identical to the in-process threads
/// world, because every rank executes the same code over the same bytes —
/// only the transport underneath changes.
void parity_vs_threads(TransportKind kind, const char* test) {
  auto sys = md::make_fcc(6, 6, 6, 3.7, 63.5, 0.08, 51);
  md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = 8;
  sc.temperature = 200.0;
  sc.skin = 1.0;
  sc.rebuild_every = 5;
  sc.thermo_every = 4;
  sc.seed = 99;

  DistributedOptions opts;
  opts.grid = {2, 1, 1};
  opts.gather_state = true;

  const auto factory = [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); };
  const auto reference = run_distributed_md(2, sys, factory, sc, opts);
  ASSERT_EQ(reference.final_force.size(), sys.atoms.size());

  const TransportConfig base = backend_config(kind, 2, test);
  DistributedRunResult cross;
  Mutex cross_mu;
  run_world(base, [&](Communicator& comm) {
    auto r = run_distributed_md_rank(comm, sys, factory, sc, opts);
    if (comm.rank() == 0) {
      MutexLock lock(cross_mu);
      cross = std::move(r);
    }
  });

  ASSERT_EQ(cross.final_force.size(), reference.final_force.size());
  for (std::size_t i = 0; i < reference.final_force.size(); ++i) {
    // Bitwise: EXPECT_EQ on doubles is exact equality, which is the claim.
    EXPECT_EQ(cross.final_force[i].x, reference.final_force[i].x) << "atom " << i;
    EXPECT_EQ(cross.final_force[i].y, reference.final_force[i].y) << "atom " << i;
    EXPECT_EQ(cross.final_force[i].z, reference.final_force[i].z) << "atom " << i;
  }
  EXPECT_EQ(cross.neighbor_rebuilds, reference.neighbor_rebuilds);
  ASSERT_EQ(cross.thermo.size(), reference.thermo.size());
  for (std::size_t i = 0; i < reference.thermo.size(); ++i) {
    EXPECT_EQ(cross.thermo[i].potential, reference.thermo[i].potential);
    EXPECT_EQ(cross.thermo[i].temperature, reference.thermo[i].temperature);
  }
}

TEST(Transport, ShmMdParityWithThreads) { parity_vs_threads(TransportKind::Shm, "parity"); }

TEST(Transport, TcpMdParityWithThreads) { parity_vs_threads(TransportKind::Tcp, "parity"); }

TEST(Transport, BootstrapTimeoutFailsCleanly) {
  // A lone rank of a two-rank tcp world: nobody ever dials the rendezvous
  // listener, so the bootstrap must give up after the configured timeout
  // with a DP_CHECK error — not hang.
  TransportConfig cfg = backend_config(TransportKind::Tcp, 2, "timeout");
  cfg.rank = 0;
  cfg.timeout_seconds = 0.5;
  EXPECT_THROW(ProcessGroup pg(cfg), Error);
}

TEST(Transport, ShmBootstrapTimeoutFailsCleanly) {
  TransportConfig cfg = backend_config(TransportKind::Shm, 2, "timeout");
  cfg.rank = 0;
  cfg.timeout_seconds = 0.5;
  EXPECT_THROW(ProcessGroup pg(cfg), Error);
}

TEST(Transport, EnvConfigRoundTrip) {
  ::setenv("DP_TRANSPORT", "tcp", 1);
  ::setenv("DP_RANK", "3", 1);
  ::setenv("DP_WORLD", "8", 1);
  ::setenv("DP_RENDEZVOUS", "127.0.0.1:4242", 1);
  ::setenv("DP_TIMEOUT", "2.5", 1);
  const TransportConfig cfg = transport_config_from_env();
  EXPECT_EQ(cfg.kind, TransportKind::Tcp);
  EXPECT_EQ(cfg.rank, 3);
  EXPECT_EQ(cfg.world, 8);
  EXPECT_EQ(cfg.rendezvous, "127.0.0.1:4242");
  EXPECT_EQ(cfg.timeout_seconds, 2.5);
  for (const char* v : {"DP_TRANSPORT", "DP_RANK", "DP_WORLD", "DP_RENDEZVOUS", "DP_TIMEOUT"})
    ::unsetenv(v);
}

}  // namespace
}  // namespace dp::par
