#include "parallel/minimpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace dp::par {
namespace {

TEST(MiniMpi, RankAndSize) {
  std::atomic<int> seen{0};
  run_parallel(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    seen.fetch_add(1 << comm.rank());
  });
  EXPECT_EQ(seen.load(), 0b1111);
}

TEST(MiniMpi, PointToPointRing) {
  run_parallel(5, [](Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    std::vector<int> payload{comm.rank() * 10, comm.rank() * 10 + 1};
    comm.send_vec(next, 7, payload);
    const auto got = comm.recv_vec<int>(prev, 7);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev * 10);
    EXPECT_EQ(got[1], prev * 10 + 1);
  });
}

TEST(MiniMpi, SendToSelf) {
  run_parallel(2, [](Communicator& comm) {
    std::vector<double> v{1.5, 2.5};
    comm.send_vec(comm.rank(), 3, v);
    EXPECT_EQ(comm.recv_vec<double>(comm.rank(), 3), v);
  });
}

TEST(MiniMpi, TagsKeepMessagesApart) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> a{1}, b{2};
      comm.send_vec(1, 10, a);
      comm.send_vec(1, 20, b);
    } else {
      // Receive in reverse send order: matching must be by tag.
      EXPECT_EQ(comm.recv_vec<int>(0, 20).at(0), 2);
      EXPECT_EQ(comm.recv_vec<int>(0, 10).at(0), 1);
    }
  });
}

TEST(MiniMpi, AllreduceSumScalar) {
  run_parallel(6, [](Communicator& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 21.0);  // 1+2+...+6
  });
}

TEST(MiniMpi, AllreduceSumVector) {
  run_parallel(3, [](Communicator& comm) {
    std::vector<double> x{static_cast<double>(comm.rank()), 1.0};
    const auto total = comm.allreduce_sum(x);
    EXPECT_DOUBLE_EQ(total[0], 3.0);
    EXPECT_DOUBLE_EQ(total[1], 3.0);
  });
}

TEST(MiniMpi, AllreduceMax) {
  run_parallel(4, [](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())), 3.0);
  });
}

TEST(MiniMpi, RepeatedCollectivesDoNotInterfere) {
  run_parallel(3, [](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      const double total = comm.allreduce_sum(static_cast<double>(round));
      EXPECT_DOUBLE_EQ(total, 3.0 * round);
    }
  });
}

TEST(MiniMpi, BarrierOrdersPhases) {
  std::atomic<int> phase1{0};
  run_parallel(4, [&](Communicator& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST(MiniMpi, StatsCountTraffic) {
  const auto stats = run_parallel(2, [](Communicator& comm) {
    std::vector<double> v(100, 1.0);
    comm.send_vec(1 - comm.rank(), 0, v);
    comm.recv_vec<double>(1 - comm.rank(), 0);
  });
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 2u * 100 * sizeof(double));
}

TEST(MiniMpi, RankExceptionPropagates) {
  EXPECT_THROW(run_parallel(1,
                            [](Communicator&) {
                              throw Error("rank failure");
                            }),
               Error);
}

TEST(MiniMpi, NonblockingRing) {
  run_parallel(5, [](Communicator& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    // Post the receive before the send: irecv must not consume anything
    // until completion is observed.
    Request rx = comm.irecv(prev, 7);
    std::vector<int> payload{comm.rank() * 10, comm.rank() * 10 + 1};
    Request tx = comm.isend_vec(next, 7, payload);
    EXPECT_TRUE(tx.done());  // buffered transport: sends are born complete
    const auto got = rx.take_vec<int>();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], prev * 10);
    EXPECT_EQ(got[1], prev * 10 + 1);
  });
}

TEST(MiniMpi, TestPollsUntilMessageArrives) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      Request rx = comm.irecv(1, 5);
      // Rank 1 sends only after seeing our handshake, so at least the first
      // test() observes the in-flight state on this side of the barrier.
      EXPECT_FALSE(rx.done());
      comm.barrier();
      while (!rx.test()) {
      }
      EXPECT_TRUE(rx.done());
      EXPECT_EQ(rx.take_vec<double>(), (std::vector<double>{3.25}));
    } else {
      comm.barrier();
      comm.isend_vec(0, 5, std::vector<double>{3.25});
    }
  });
}

TEST(MiniMpi, RequestsCompleteOutOfPostingOrder) {
  run_parallel(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      Request a = comm.irecv(1, 1);
      Request b = comm.irecv(1, 2);
      // Completion order follows message availability, not posting order.
      EXPECT_EQ(b.take_vec<int>().at(0), 22);
      EXPECT_EQ(a.take_vec<int>().at(0), 11);
    } else {
      comm.isend_vec(0, 2, std::vector<int>{22});
      comm.isend_vec(0, 1, std::vector<int>{11});
    }
  });
}

TEST(MiniMpi, NonblockingZeroSizeMessage) {
  run_parallel(2, [](Communicator& comm) {
    const int peer = 1 - comm.rank();
    Request rx = comm.irecv(peer, 9);
    comm.isend_vec(peer, 9, std::vector<double>{});
    EXPECT_TRUE(rx.take_vec<double>().empty());
  });
}

TEST(MiniMpi, MovedFromRequestIsEmpty) {
  run_parallel(1, [](Communicator& comm) {
    comm.isend_vec(0, 4, std::vector<int>{1, 2, 3});
    Request a = comm.irecv(0, 4);
    Request b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move state is defined
    ASSERT_TRUE(b.valid());
    EXPECT_EQ(b.take_vec<int>(), (std::vector<int>{1, 2, 3}));
  });
}

TEST(MiniMpi, SingleRankWorldWorks) {
  run_parallel(1, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(5.0), 5.0);
    comm.barrier();
  });
}

}  // namespace
}  // namespace dp::par
