// Concurrency stress storms for the minimpi runtime and the observability
// layer.
//
// These tests exist to give ThreadSanitizer and AddressSanitizer real
// schedules to bite on: many ranks hammering the mailbox queues, the shared
// barrier, the reduction buffer, the sharded TimerRegistry, and the
// metrics/trace collectors — all at once, with readers (snapshot / flush /
// clear) racing the writers. They assert functional correctness too, so a
// lost wakeup or a torn value fails even without a sanitizer.
//
// They carry the ctest label "stress": the plain CI job skips them with
// -LE stress, the sanitizer jobs run everything (see docs/STATIC_ANALYSIS.md).

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "md/box.hpp"
#include "md/neighbor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/minimpi.hpp"
#include "tab/table.hpp"

namespace {

using dp::par::run_parallel;

// Sized so a TSan run finishes in seconds on one core but still drives
// thousands of lock acquisitions per mailbox/shard.
constexpr int kRanks = 8;
constexpr int kRounds = 60;

TEST(MinimpiStress, PointToPointStorm) {
  // Every rank sends kRounds tagged messages to every other rank, then
  // drains them in a rank-rotated order so receives from all sources
  // interleave in the mailbox scan.
  const auto stats = run_parallel(kRanks, [](dp::par::Communicator& comm) {
    const int me = comm.rank();
    const int n = comm.size();
    for (int round = 0; round < kRounds; ++round) {
      for (int peer = 0; peer < n; ++peer) {
        std::vector<std::uint64_t> payload(1 + static_cast<std::size_t>(round % 7),
                                           static_cast<std::uint64_t>(me * 1000 + round));
        comm.send_vec(peer, round, payload);
      }
    }
    std::uint64_t checksum = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int k = 1; k <= n; ++k) {
        const int peer = (me + k) % n;
        const auto got = comm.recv_vec<std::uint64_t>(peer, round);
        ASSERT_EQ(got.size(), 1 + static_cast<std::size_t>(round % 7));
        for (auto v : got) {
          ASSERT_EQ(v, static_cast<std::uint64_t>(peer * 1000 + round));
          checksum += v;
        }
      }
    }
    ASSERT_GT(checksum, 0u);
  });
  EXPECT_EQ(stats.messages,
            static_cast<std::uint64_t>(kRanks) * kRanks * kRounds);
}

TEST(MinimpiStress, CollectiveStorm) {
  // Back-to-back collectives with no interleaved barriers of our own:
  // the barrier generation counter and the shared reduction buffer get
  // reused immediately, which is exactly where a happens-before bug in the
  // triple-barrier allreduce protocol would surface.
  run_parallel(kRanks, [](dp::par::Communicator& comm) {
    const int me = comm.rank();
    const int n = comm.size();
    for (int round = 0; round < kRounds; ++round) {
      const double sum = comm.allreduce_sum(static_cast<double>(me + round));
      ASSERT_DOUBLE_EQ(sum, n * (n - 1) / 2.0 + n * round);

      const double mx = comm.allreduce_max(static_cast<double>((me + round) % n));
      ASSERT_DOUBLE_EQ(mx, n - 1);

      const std::vector<double> vec(3, static_cast<double>(me));
      const auto vsum = comm.allreduce_sum(vec);
      ASSERT_EQ(vsum.size(), 3u);
      ASSERT_DOUBLE_EQ(vsum[0], n * (n - 1) / 2.0);

      const int root = round % n;
      const auto bc = comm.broadcast({static_cast<double>(round), 2.5}, root);
      ASSERT_EQ(bc.size(), 2u);
      ASSERT_DOUBLE_EQ(bc[0], round);

      const auto gathered = comm.gatherv({static_cast<double>(me)}, root);
      if (me == root) {
        ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) ASSERT_DOUBLE_EQ(gathered[static_cast<std::size_t>(r)], r);
      } else {
        ASSERT_TRUE(gathered.empty());
      }
    }
  });
}

TEST(MinimpiStress, BarrierGenerationReuse) {
  // Tight barrier loop: rank threads leave one barrier and immediately
  // enter the next, so a stale generation read would deadlock or let a
  // rank skip ahead (detected by the shared counter going out of bounds).
  std::atomic<int> in_phase{0};
  run_parallel(kRanks, [&](dp::par::Communicator& comm) {
    for (int round = 0; round < kRounds * 4; ++round) {
      in_phase.fetch_add(1, std::memory_order_relaxed);
      comm.barrier();
      const int seen = in_phase.load(std::memory_order_relaxed);
      // Between barriers at most 2 phases' worth of increments can be live.
      ASSERT_LE(seen, kRanks * (round + 2));
      comm.barrier();
    }
  });
  EXPECT_EQ(in_phase.load(), kRanks * kRounds * 4);
}

TEST(ObsStress, ConcurrentMetricsEmission) {
  auto& reg = dp::obs::MetricsRegistry::instance();
  reg.clear();
  // Writers hammer find-or-create plus the lock-free update paths while a
  // reader thread snapshots and serializes the registry mid-flight.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::ostringstream os;
      reg.write_jsonl(os);
      (void)reg.event_count();
    }
  });
  run_parallel(kRanks, [&](dp::par::Communicator& comm) {
    const int me = comm.rank();
    auto& hits = reg.counter("stress.hits");
    auto& depth = reg.gauge("stress.depth");
    auto& lat = reg.histogram("stress.latency");
    for (int round = 0; round < kRounds * 20; ++round) {
      hits.inc();
      depth.add(1.0);
      lat.observe(1e-6 * ((me + 1) * (round % 13 + 1)));
      if (round % 16 == 0)
        reg.record_event("stress.tick", {{"rank", static_cast<double>(me)},
                                         {"round", static_cast<double>(round)}});
      // A second name per rank exercises registration under contention.
      reg.counter("stress.rank." + std::to_string(me)).inc();
    }
  });
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(reg.counter("stress.hits").value(),
            static_cast<std::uint64_t>(kRanks) * kRounds * 20);
  EXPECT_DOUBLE_EQ(reg.gauge("stress.depth").value(), kRanks * kRounds * 20.0);
  EXPECT_EQ(reg.histogram("stress.latency").count(),
            static_cast<std::uint64_t>(kRanks) * kRounds * 20);
  reg.clear();
}

TEST(ObsStress, ConcurrentTraceEmission) {
  auto& collector = dp::obs::TraceCollector::instance();
  collector.clear();
  collector.set_enabled(true);
  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    // Concurrent flush + count: must see a coherent (if momentarily stale)
    // event set, never a torn one.
    while (!stop.load(std::memory_order_acquire)) {
      std::ostringstream os;
      collector.write_chrome_trace(os);
      (void)collector.event_count();
    }
  });
  run_parallel(kRanks, [](dp::par::Communicator& comm) {
    dp::obs::TraceCollector::set_thread_rank(comm.rank());
    for (int round = 0; round < kRounds * 5; ++round) {
      dp::obs::TraceSpan span("stress.span", "stress");
      dp::obs::TraceCollector::instance().record_instant("stress.instant", "stress");
      if (round % 8 == 0) {
        dp::ScopedTimer timed("stress.timed", "stress");
        comm.barrier();
      }
    }
  });
  stop.store(true, std::memory_order_release);
  flusher.join();
  collector.set_enabled(false);

  // 1 span + 1 instant per round per rank; ScopedTimer adds one more span
  // every 8th round. (Flusher reads do not consume events.)
  const std::size_t per_rank = kRounds * 5 + kRounds * 5 + (kRounds * 5 + 7) / 8;
  EXPECT_GE(collector.event_count(), kRanks * per_rank);
  collector.clear();
}

TEST(ObsStress, TimerRegistryShardChurn) {
  auto& reg = dp::TimerRegistry::instance();
  reg.clear();
  // Short-lived threads allocate fresh shards (their accumulations must
  // survive thread exit) while readers merge and clear concurrently.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.snapshot();
      (void)reg.get("stress.churn");
      (void)reg.sorted_by_total();
    }
  });
  constexpr int kWaves = 6;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> workers;
    workers.reserve(kRanks);
    for (int t = 0; t < kRanks; ++t)
      workers.emplace_back([&reg] {
        for (int round = 0; round < kRounds; ++round)
          reg.add("stress.churn", 1e-9);
      });
    for (auto& w : workers) w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(reg.get("stress.churn").calls,
            static_cast<std::uint64_t>(kWaves) * kRanks * kRounds);
  reg.clear();
}

TEST(TabStress, SharedTableExtrapolationCounter) {
  // One tabulated embedding shared by every rank (the distributed-MD setup:
  // ranks hold FusedDP views of a single TabulatedDP). Every eval here lands
  // outside [lo, hi], hammering the extrapolation counter from all threads
  // at once — the counter must be atomic (it once was a plain mutable
  // size_t, a data race) and must not lose increments.
  dp::nn::EmbeddingNet net({8, 16, 32});
  dp::Rng rng(7);
  net.init_random(rng);
  const dp::tab::TabulatedEmbedding table(net, {0.0, 1.0, 0.05});

  std::vector<double> ref_low(32), ref_high(32);
  table.eval(-0.25, ref_low.data());
  table.eval(1.25, ref_high.data());
  const std::size_t before = table.extrapolations();

  run_parallel(kRanks, [&](dp::par::Communicator& comm) {
    std::vector<double> g(32);
    for (int round = 0; round < kRounds * 4; ++round) {
      const bool low = (comm.rank() + round) % 2 == 0;
      table.eval(low ? -0.25 : 1.25, g.data());
      // Concurrent reads of the shared coefficients stay coherent.
      for (std::size_t ch = 0; ch < g.size(); ++ch)
        ASSERT_DOUBLE_EQ(g[ch], low ? ref_low[ch] : ref_high[ch]);
    }
  });
  EXPECT_EQ(table.extrapolations(),
            before + static_cast<std::size_t>(kRanks) * kRounds * 4);
}

TEST(MinimpiStress, NonblockingStorm) {
  // All-to-all via isend/irecv with pathological sizes: every round each
  // rank posts all its receives up front, fires sends in rotated order, then
  // completes via alternating test()-polling and wait(). Payloads alternate
  // between empty (null-data edge, exercised both in send and take_vec) and
  // megabyte-scale (forces real memcpy traffic through the mailboxes while
  // other ranks' scans run). A TSan schedule where try_recv races a
  // concurrent send on the same mailbox is exactly the target.
  constexpr std::size_t kHuge = 1 << 20;  // 8 MiB of doubles per big message
  const auto stats = run_parallel(kRanks, [](dp::par::Communicator& comm) {
    const int me = comm.rank();
    const int n = comm.size();
    for (int round = 0; round < 6; ++round) {
      std::vector<dp::par::Request> rx;
      rx.reserve(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) rx.push_back(comm.irecv((me + k) % n, round));
      for (int k = 0; k < n; ++k) {
        const int peer = (me + n - k) % n;
        const bool big = (peer + round) % 2 == 0;
        std::vector<double> payload(big ? kHuge : 0,
                                    static_cast<double>(me * 100 + round));
        comm.isend_vec(peer, round, payload);
      }
      for (int k = 0; k < n; ++k) {
        auto& req = rx[static_cast<std::size_t>(k)];
        if (k % 2 == 0)
          while (!req.test()) {
          }
        const int peer = (me + k) % n;
        const auto got = req.take_vec<double>();  // waits when still pending
        const bool big = (me + round) % 2 == 0;
        ASSERT_EQ(got.size(), big ? kHuge : 0u);
        if (big) {
          ASSERT_DOUBLE_EQ(got.front(), peer * 100 + round);
          ASSERT_DOUBLE_EQ(got.back(), peer * 100 + round);
        }
      }
    }
  });
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kRanks) * kRanks * 6);
}

TEST(NeighborStress, RebuildStormWithConcurrentQueries) {
  // The distributed-driver concurrency shape for neighbor maintenance:
  // every rank thread owns one NeighborList that it rebuilds (spawning an
  // OpenMP team inside the rank thread — the ranks x threads product the
  // TSan job re-runs with OMP_NUM_THREADS=4) while, in the same rounds,
  // all ranks hammer needs_rebuild on a shared, never-rebuilt list (const
  // reads only) and the shared metrics registry absorbs counter/histogram
  // traffic from every team. Parity between a 1-thread and an N-thread
  // rebuild of the same frame is asserted under the storm, so a torn
  // workspace write fails functionally, not just under TSan.
  const dp::md::Box box(22.0, 22.0, 22.0);
  std::vector<dp::Vec3> base(300);
  {
    dp::Rng rng(404);
    for (auto& r : base)
      r = {rng.uniform(0.0, 22.0), rng.uniform(0.0, 22.0), rng.uniform(0.0, 22.0)};
  }
  dp::md::NeighborList shared_list(5.0, 2.0);
  shared_list.build(box, base);

  run_parallel(kRanks, [&](dp::par::Communicator& comm) {
    const int me = comm.rank();
    dp::Rng rng(1000 + static_cast<std::uint64_t>(me));
    std::vector<dp::Vec3> pos = base;
    dp::md::NeighborList mine(5.0, 1.0);
    dp::md::NeighborList check(5.0, 1.0);
    for (int round = 0; round < 12; ++round) {
      for (auto& r : pos) r = box.wrap(r + rng.unit_vector() * rng.uniform(0.0, 0.3));
      // Concurrent const queries on the shared list while other ranks are
      // mid-rebuild on their own lists.
      ASSERT_FALSE(shared_list.needs_rebuild(box, base));
      (void)mine.needs_rebuild(box, pos);
      mine.build(box, pos);
      if (round % 4 == 0) {
        // omp_set_num_threads sets a per-thread ICV: pinning this rank's
        // team to 1 thread never affects the other ranks' teams.
        const int saved = omp_get_max_threads();
        omp_set_num_threads(1);
        check.build(box, pos);
        omp_set_num_threads(saved);
        ASSERT_EQ(check.n_centers(), mine.n_centers());
        for (std::size_t i = 0; i < check.n_centers(); ++i) {
          const auto a = mine.neighbors(i);
          const auto b = check.neighbors(i);
          ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
              << "rank " << me << " round " << round << " center " << i;
        }
      }
    }
  });
}

TEST(MinimpiStress, ManyWorldsSequential) {
  // World construction/destruction churn: catches leaks of mailboxes,
  // stale thread handles, and init-order issues under ASan/LSan.
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 2 + iter % 3;
    const auto stats = run_parallel(n, [](dp::par::Communicator& comm) {
      const double s = comm.allreduce_sum(1.0);
      ASSERT_DOUBLE_EQ(s, comm.size());
    });
    EXPECT_EQ(stats.reductions, 1u);
  }
}

}  // namespace
