#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "parallel/halo.hpp"
#include "parallel/minimpi.hpp"

namespace dp::par {
namespace {

TEST(Decomp, ChooseGridCoversRanks) {
  md::Box box(20, 20, 20);
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 27, 64}) {
    const auto g = Decomp::choose_grid(box, n);
    EXPECT_EQ(g[0] * g[1] * g[2], n) << n;
  }
}

TEST(Decomp, ChooseGridPrefersCubes) {
  md::Box box(20, 20, 20);
  EXPECT_EQ(Decomp::choose_grid(box, 8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(Decomp::choose_grid(box, 27), (std::array<int, 3>{3, 3, 3}));
}

TEST(Decomp, ChooseGridFollowsAnisotropy) {
  md::Box box(80, 20, 20);  // long in x: split x first
  const auto g = Decomp::choose_grid(box, 4);
  EXPECT_EQ(g, (std::array<int, 3>{4, 1, 1}));
}

TEST(Decomp, CoordsRoundTrip) {
  Decomp d(md::Box(10, 10, 10), {2, 3, 4});
  for (int r = 0; r < d.nranks(); ++r) EXPECT_EQ(d.rank_of(d.coords_of(r)), r);
}

TEST(Decomp, OwnershipPartitionsBox) {
  Decomp d(md::Box(12, 9, 15), {2, 3, 1});
  Rng rng(1);
  for (int k = 0; k < 2000; ++k) {
    Vec3 p{rng.uniform(0, 12), rng.uniform(0, 9), rng.uniform(0, 15)};
    const int owner = d.owner_of(p);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 6);
    // p must lie inside the owner's [lo, hi).
    const Vec3 lo = d.lo(owner), hi = d.hi(owner);
    for (int dim = 0; dim < 3; ++dim) {
      EXPECT_GE(p[static_cast<std::size_t>(dim)], lo[static_cast<std::size_t>(dim)]);
      EXPECT_LT(p[static_cast<std::size_t>(dim)], hi[static_cast<std::size_t>(dim)]);
    }
  }
}

TEST(Decomp, NeighborWrapsPeriodically) {
  Decomp d(md::Box(10, 10, 10), {3, 1, 1});
  EXPECT_EQ(d.neighbor(0, 0, -1), d.rank_of({2, 0, 0}));
  EXPECT_EQ(d.neighbor(2, 0, +1), 0);
  EXPECT_EQ(d.neighbor(0, 1, +1), 0);  // single-rank dimension: self
}

TEST(Decomp, GhostFractionGrowsWithRankCount) {
  md::Box box(40, 40, 40);
  const double f1 = Decomp(box, {1, 1, 1}).ghost_fraction(6.0);
  const double f8 = Decomp(box, {2, 2, 2}).ghost_fraction(6.0);
  const double f64 = Decomp(box, {4, 4, 4}).ghost_fraction(6.0);
  EXPECT_LT(f1, f8);
  EXPECT_LT(f8, f64);
}

TEST(Decomp, UniformCutsMatchImplicitGrid) {
  // Installing cuts at exactly the uniform planes must not change a single
  // answer: coord_of, owner_of, lo/hi and min_extent all agree with the
  // cut-free decomposition (same arithmetic, different storage).
  const md::Box box(12, 9, 15);
  Decomp uniform(box, {4, 1, 1});
  Decomp explicit_cuts(box, {4, 1, 1});
  explicit_cuts.set_cuts(0, {0.0, 3.0, 6.0, 9.0, 12.0});
  EXPECT_TRUE(explicit_cuts.has_cuts(0));
  EXPECT_FALSE(explicit_cuts.has_cuts(1));

  Rng rng(7);
  for (int k = 0; k < 2000; ++k) {
    Vec3 p{rng.uniform(0, 12), rng.uniform(0, 9), rng.uniform(0, 15)};
    EXPECT_EQ(explicit_cuts.owner_of(p), uniform.owner_of(p));
    EXPECT_EQ(explicit_cuts.coord_of(0, p.x), uniform.coord_of(0, p.x));
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(explicit_cuts.lo(r).x, uniform.lo(r).x);
    EXPECT_EQ(explicit_cuts.hi(r).x, uniform.hi(r).x);
  }
  EXPECT_EQ(explicit_cuts.min_extent(), uniform.min_extent());
}

TEST(Decomp, NonUniformCutsMoveOwnership) {
  const md::Box box(10, 10, 10);
  Decomp d(box, {2, 1, 1});
  d.set_cuts(0, {0.0, 7.5, 10.0});

  EXPECT_EQ(d.cut(0, 1), 7.5);
  EXPECT_EQ(d.width(0, 0), 7.5);
  EXPECT_EQ(d.width(0, 1), 2.5);
  EXPECT_EQ(d.coord_of(0, 7.4), 0);
  EXPECT_EQ(d.coord_of(0, 7.5), 1);  // planes belong to the upper slab
  EXPECT_EQ(d.owner_of({9.0, 1.0, 1.0}), d.rank_of({1, 0, 0}));
  EXPECT_EQ(d.owner_of({1.0, 1.0, 1.0}), d.rank_of({0, 0, 0}));
  // min_extent now reflects the narrow slab, not the uniform width.
  EXPECT_EQ(d.min_extent(), 2.5);
  // Untouched dimensions keep the uniform planes.
  EXPECT_EQ(d.cut(1, 1), 10.0);
}

TEST(Decomp, SetCutsRejectsMalformedPlanes) {
  Decomp d(md::Box(10, 10, 10), {2, 1, 1});
  EXPECT_THROW(d.set_cuts(0, {0.0, 5.0}), Error);              // wrong count
  EXPECT_THROW(d.set_cuts(0, {0.5, 5.0, 10.0}), Error);        // not at 0
  EXPECT_THROW(d.set_cuts(0, {0.0, 5.0, 9.0}), Error);         // not at L
  EXPECT_THROW(d.set_cuts(0, {0.0, 10.0, 10.0}), Error);       // degenerate slab
  EXPECT_THROW(d.set_cuts(0, {0.0, 12.0, 10.0}), Error);       // non-monotone
}

// ---------------------------------------------------------------------------

/// Every rank's local + ghost view must reproduce the serial neighborhood:
/// for each local atom, the set of positions within the cutoff must match
/// the serial minimum-image result.
void check_ghost_view(int nranks, std::array<int, 3> grid, const md::Configuration& sys,
                      double halo) {
  run_parallel(nranks, [&](Communicator& comm) {
    const Decomp decomp(sys.box, grid);
    const int rank = comm.rank();
    md::Atoms atoms;
    atoms.mass_by_type = sys.atoms.mass_by_type;
    std::vector<std::size_t> ids;
    for (std::size_t a = 0; a < sys.atoms.size(); ++a)
      if (decomp.owner_of(sys.atoms.pos[a]) == rank) {
        atoms.add(sys.box.wrap(sys.atoms.pos[a]), sys.atoms.type[a]);
        ids.push_back(a);
      }
    const std::size_t n_local = atoms.size();
    HaloExchange halo_ex(sys.box, decomp, rank, halo);
    halo_ex.exchange_ghosts(comm, atoms);

    // Serial reference neighborhoods.
    auto serial = md::brute_force_neighbors(sys.box, sys.atoms.pos, halo);

    for (std::size_t a = 0; a < n_local; ++a) {
      // Collect distances of all local+ghost atoms within halo (plain
      // Cartesian — ghosts already carry the right shifts).
      std::vector<double> got;
      for (std::size_t b = 0; b < atoms.size(); ++b) {
        if (b == a) continue;
        const double r2 = norm2(atoms.pos[b] - atoms.pos[a]);
        if (r2 < halo * halo) got.push_back(r2);
      }
      std::vector<double> want;
      for (int j : serial[ids[a]]) {
        const Vec3 d = sys.box.min_image(sys.atoms.pos[static_cast<std::size_t>(j)] -
                                         sys.atoms.pos[ids[a]]);
        want.push_back(norm2(d));
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      ASSERT_EQ(got.size(), want.size()) << "rank " << rank << " atom " << a;
      for (std::size_t k = 0; k < got.size(); ++k)
        ASSERT_NEAR(got[k], want[k], 1e-8) << "rank " << rank << " atom " << a;
    }
  });
}

TEST(HaloExchange, GhostViewMatchesSerial2Ranks) {
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.1, 3);
  check_ghost_view(2, {2, 1, 1}, sys, 6.0);
}

TEST(HaloExchange, GhostViewMatchesSerial8Ranks) {
  auto sys = md::make_fcc(8, 8, 8, 3.634, 63.546, 0.1, 4);
  check_ghost_view(8, {2, 2, 2}, sys, 6.0);
}

TEST(HaloExchange, GhostViewMatchesSerialAnisotropicGrid) {
  auto sys = md::make_fcc(8, 4, 4, 3.634, 63.546, 0.1, 5);
  check_ghost_view(4, {4, 1, 1}, sys, 6.0);
}

TEST(HaloExchange, RejectsTooWideHalo) {
  md::Box box(20, 20, 20);
  Decomp decomp(box, {4, 1, 1});  // 5 A sub-domains
  EXPECT_THROW(HaloExchange(box, decomp, 0, 6.0), Error);
}

TEST(HaloExchange, ForceReductionConservesTotal) {
  // Scatter random forces on ghosts; after reduction the global sum over
  // owners must equal the sum over all (local + ghost) contributions.
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.1, 6);
  const std::array<int, 3> grid{2, 2, 1};
  std::mutex mu;
  Vec3 scattered_total{}, owned_total{};
  run_parallel(4, [&](Communicator& comm) {
    const Decomp decomp(sys.box, grid);
    const int rank = comm.rank();
    md::Atoms atoms;
    atoms.mass_by_type = sys.atoms.mass_by_type;
    for (std::size_t a = 0; a < sys.atoms.size(); ++a)
      if (decomp.owner_of(sys.atoms.pos[a]) == rank)
        atoms.add(sys.box.wrap(sys.atoms.pos[a]), sys.atoms.type[a]);
    const std::size_t n_local = atoms.size();
    HaloExchange halo_ex(sys.box, decomp, rank, 6.0);
    halo_ex.exchange_ghosts(comm, atoms);

    Rng rng(100 + static_cast<std::uint64_t>(rank));
    Vec3 local_scattered{};
    for (auto& f : atoms.force) {
      f = {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
      local_scattered += f;
    }
    halo_ex.reduce_forces(comm, atoms);
    Vec3 local_owned{};
    for (std::size_t a = 0; a < n_local; ++a) local_owned += atoms.force[a];

    std::lock_guard lock(mu);
    scattered_total += local_scattered;
    owned_total += local_owned;
  });
  EXPECT_NEAR(norm(scattered_total - owned_total), 0.0, 1e-9);
}

TEST(Migrate, MovesAtomsToOwners) {
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.0, 7);
  const std::array<int, 3> grid{2, 2, 2};
  std::mutex mu;
  std::set<std::int64_t> seen;
  std::size_t total = 0;
  run_parallel(8, [&](Communicator& comm) {
    const Decomp decomp(sys.box, grid);
    const int rank = comm.rank();
    // Deliberately mis-assign: round-robin instead of geometric.
    md::Atoms atoms;
    atoms.mass_by_type = sys.atoms.mass_by_type;
    std::vector<std::int64_t> ids;
    for (std::size_t a = 0; a < sys.atoms.size(); ++a)
      if (static_cast<int>(a % 8) == rank) {
        // Nudge every atom slightly so some cross sub-domain boundaries.
        Vec3 p = sys.atoms.pos[a];
        p.x += 0.3;
        atoms.add(sys.box.wrap(p), sys.atoms.type[a]);
        ids.push_back(static_cast<std::int64_t>(a));
      }
    // Round-robin assignment puts atoms arbitrarily far from their owner;
    // hop until settled (each migrate moves one sub-domain per dimension).
    bool settled = false;
    for (int hop = 0; hop < 4 && !settled; ++hop) {
      try {
        migrate(comm, sys.box, decomp, rank, atoms, &ids);
        settled = true;
      } catch (const Error&) {
        settled = false;
      }
      // All ranks must agree to continue hopping.
      settled = comm.allreduce_max(settled ? 0.0 : 1.0) == 0.0;
    }
    EXPECT_TRUE(settled);
    for (const auto& p : atoms.pos) EXPECT_EQ(decomp.owner_of(p), rank);
    std::lock_guard lock(mu);
    total += atoms.size();
    for (auto id : ids) EXPECT_TRUE(seen.insert(id).second) << "duplicate atom " << id;
  });
  EXPECT_EQ(total, sys.atoms.size());
  EXPECT_EQ(seen.size(), sys.atoms.size());
}

}  // namespace
}  // namespace dp::par
