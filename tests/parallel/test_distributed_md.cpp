#include "parallel/distributed_md.hpp"

#include <gtest/gtest.h>

#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "fused/mixed_model.hpp"
#include "md/lj.hpp"
#include "md/simulation.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::par {
namespace {

md::SimulationConfig fast_sim(int steps) {
  md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = steps;
  sc.temperature = 200.0;
  sc.skin = 1.0;
  sc.rebuild_every = 5;
  sc.thermo_every = 5;
  return sc;
}

TEST(DistributedMd, SingleStepForcesMatchSerialLJ) {
  auto sys = md::make_fcc(6, 6, 6, 3.7, 63.5, 0.08, 51);
  md::SimulationConfig sc = fast_sim(0);

  // Serial reference forces at t = 0.
  md::LennardJones serial_lj(0.4, 2.34, 4.5);
  md::NeighborList nl(serial_lj.cutoff(), sc.skin);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms serial_atoms = sys.atoms;
  const auto serial_res = serial_lj.compute(sys.box, serial_atoms, nl);

  DistributedOptions opts;
  opts.grid = {2, 2, 2};
  opts.gather_state = true;
  opts.init_velocities = false;
  const auto result = run_distributed_md(
      8, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc, opts);

  ASSERT_EQ(result.final_force.size(), sys.atoms.size());
  for (std::size_t i = 0; i < sys.atoms.size(); ++i)
    EXPECT_LT(norm(result.final_force[i] - serial_atoms.force[i]), 1e-9) << "atom " << i;
  EXPECT_NEAR(result.thermo.front().potential, serial_res.energy, 1e-8);
}

TEST(DistributedMd, SingleStepForcesMatchSerialFusedDP) {
  core::DPModel model(core::ModelConfig::tiny(), 52);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(model.config(), 0.9), 0.005};
  tab::TabulatedDP tabulated(model, spec);

  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.08, 53);
  md::SimulationConfig sc = fast_sim(0);

  fused::FusedDP serial_ff(tabulated);
  md::NeighborList nl(serial_ff.cutoff(), sc.skin);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms serial_atoms = sys.atoms;
  const auto serial_res = serial_ff.compute(sys.box, serial_atoms, nl);

  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  opts.gather_state = true;
  opts.init_velocities = false;
  const auto result = run_distributed_md(
      4, sys, [&] { return std::make_unique<fused::FusedDP>(tabulated); }, sc, opts);

  for (std::size_t i = 0; i < sys.atoms.size(); ++i)
    EXPECT_LT(norm(result.final_force[i] - serial_atoms.force[i]), 1e-8) << "atom " << i;
  EXPECT_NEAR(result.thermo.front().potential, serial_res.energy,
              1e-9 * static_cast<double>(sys.atoms.size()));
}

TEST(DistributedMd, TrajectoryIndependentOfRankCount) {
  // The decomposition must not change the physics: after 10 steps the
  // positions from 1-rank and 4-rank runs agree to integration roundoff.
  core::DPModel model(core::ModelConfig::tiny(), 54);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(model.config(), 0.9), 0.005};
  tab::TabulatedDP tabulated(model, spec);
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.05, 55);
  md::SimulationConfig sc = fast_sim(10);

  DistributedOptions o1;
  o1.grid = {1, 1, 1};
  o1.gather_state = true;
  DistributedOptions o4;
  o4.grid = {2, 2, 1};
  o4.gather_state = true;

  auto factory = [&] { return std::make_unique<fused::FusedDP>(tabulated); };
  const auto r1 = run_distributed_md(1, sys, factory, sc, o1);
  const auto r4 = run_distributed_md(4, sys, factory, sc, o4);

  ASSERT_EQ(r1.final_pos.size(), r4.final_pos.size());
  for (std::size_t i = 0; i < r1.final_pos.size(); ++i) {
    EXPECT_LT(norm(sys.box.min_image(r1.final_pos[i] - r4.final_pos[i])), 1e-7)
        << "atom " << i;
    EXPECT_LT(norm(r1.final_vel[i] - r4.final_vel[i]), 1e-7);
  }
}

TEST(DistributedMd, NveConservation4Ranks) {
  core::DPModel model(core::ModelConfig::tiny(), 56);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(model.config(), 0.9), 0.005};
  tab::TabulatedDP tabulated(model, spec);
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.02, 57);
  md::SimulationConfig sc = fast_sim(40);
  sc.temperature = 100.0;
  sc.dt = 0.0005;

  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  const auto result = run_distributed_md(
      4, sys, [&] { return std::make_unique<fused::FusedDP>(tabulated); }, sc, opts);

  ASSERT_GE(result.thermo.size(), 3u);
  const double e0 = result.thermo.front().total();
  for (const auto& s : result.thermo)
    EXPECT_NEAR(s.total(), e0, 1e-5 * std::max(1.0, std::abs(e0))) << "step " << s.step;
}

TEST(DistributedMd, CommVolumeGrowsWithRankCount) {
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.05, 58);
  md::SimulationConfig sc = fast_sim(5);
  auto factory = [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); };

  DistributedOptions o2;
  o2.grid = {2, 1, 1};
  DistributedOptions o8;
  o8.grid = {2, 2, 2};
  const auto r2 = run_distributed_md(2, sys, factory, sc, o2);
  const auto r8 = run_distributed_md(8, sys, factory, sc, o8);
  // More ranks -> more ghost-region traffic (the Sec 3.3 granularity point).
  EXPECT_GT(r8.comm.bytes, r2.comm.bytes);
}

TEST(DistributedMd, ReportsLocalAndGhostCounts) {
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.0, 59);
  md::SimulationConfig sc = fast_sim(1);
  DistributedOptions opts;
  opts.grid = {2, 2, 2};
  const auto r = run_distributed_md(
      8, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc, opts);
  // 2048 atoms over 8 ranks: 256 each (perfect lattice), plus a ghost shell.
  EXPECT_EQ(r.max_local_atoms, 256u);
  EXPECT_GT(r.max_ghost_atoms, 200u);
  // Perfect lattice on a commensurate grid: near-perfect balance.
  EXPECT_NEAR(r.load_imbalance, 1.0, 0.05);
}

TEST(DistributedMd, LoadImbalanceDetectsUnevenGrid) {
  // 3 ranks across 8 cells cannot split evenly: imbalance > 1.
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.0, 60);
  md::SimulationConfig sc = fast_sim(1);
  DistributedOptions opts;
  opts.grid = {3, 1, 1};
  const auto r = run_distributed_md(
      3, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc, opts);
  EXPECT_GT(r.load_imbalance, 1.05);
}

TEST(DistributedMd, WaterTwoTypesMatchSerial) {
  core::ModelConfig cfg = core::ModelConfig::tiny(2);
  core::DPModel model(cfg, 71);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.01};
  tab::TabulatedDP tabulated(model, spec);

  auto sys = md::make_water(2, 2, 2, 72);  // 24.8 A box, 1536 atoms
  md::SimulationConfig sc = fast_sim(0);

  fused::FusedDP serial_ff(tabulated);
  md::NeighborList nl(serial_ff.cutoff(), sc.skin);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms serial_atoms = sys.atoms;
  serial_ff.compute(sys.box, serial_atoms, nl);

  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  opts.gather_state = true;
  opts.init_velocities = false;
  const auto result = run_distributed_md(
      4, sys, [&] { return std::make_unique<fused::FusedDP>(tabulated); }, sc, opts);
  for (std::size_t i = 0; i < sys.atoms.size(); ++i)
    EXPECT_LT(norm(result.final_force[i] - serial_atoms.force[i]), 1e-8) << "atom " << i;
}

TEST(DistributedMd, DisplacementTriggerKeepsParityUnderAggressiveDynamics) {
  // Hot atoms, a thin skin, and rebuild_every far beyond the trajectory
  // length: the fixed-period rebuild never fires, so correctness rests
  // entirely on the skin/2 displacement trigger (the serial driver has
  // always applied it; the distributed driver historically did not).
  auto sys = md::make_fcc(6, 6, 6, 3.7, 63.5, 0.1, 81);
  md::SimulationConfig sc;
  sc.dt = 0.002;
  sc.steps = 100;
  sc.temperature = 3000.0;
  sc.skin = 0.2;
  sc.rebuild_every = 1000;
  sc.thermo_every = 100;
  sc.seed = 82;

  md::LennardJones serial_lj(0.4, 2.34, 4.5);
  md::Simulation serial(sys, serial_lj, sc);
  serial.run();
  const auto& serial_atoms = serial.configuration().atoms;

  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  opts.gather_state = true;
  const auto r = run_distributed_md(
      4, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc, opts);

  // The trigger must actually fire — otherwise this test proves nothing.
  EXPECT_GE(r.early_rebuilds, 1u);
  EXPECT_GE(r.neighbor_rebuilds, r.early_rebuilds);
  ASSERT_EQ(r.final_force.size(), serial_atoms.size());
  for (std::size_t i = 0; i < serial_atoms.size(); ++i)
    EXPECT_LT(norm(r.final_force[i] - serial_atoms.force[i]), 1e-8) << "atom " << i;
}

TEST(DistributedMd, WithoutDisplacementTriggerAggressiveDynamicsDiverges) {
  // Same scenario with the trigger disabled: the distributed run must go
  // visibly wrong (stale lists let atoms slip past the skin — or an atom
  // outruns migration entirely and the post-condition throws). This pins
  // down that the parity test above discriminates against the old behavior.
  auto sys = md::make_fcc(6, 6, 6, 3.7, 63.5, 0.1, 81);
  md::SimulationConfig sc;
  sc.dt = 0.002;
  sc.steps = 100;
  sc.temperature = 3000.0;
  sc.skin = 0.2;
  sc.rebuild_every = 1000;
  sc.thermo_every = 100;
  sc.seed = 82;

  md::LennardJones serial_lj(0.4, 2.34, 4.5);
  md::Simulation serial(sys, serial_lj, sc);
  serial.run();
  const auto& serial_atoms = serial.configuration().atoms;

  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  opts.gather_state = true;
  opts.displacement_rebuild = false;
  double max_err = 0.0;
  try {
    const auto r = run_distributed_md(
        4, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc,
        opts);
    EXPECT_EQ(r.early_rebuilds, 0u);
    for (std::size_t i = 0; i < serial_atoms.size(); ++i)
      max_err = std::max(max_err, norm(r.final_force[i] - serial_atoms.force[i]));
  } catch (const Error&) {
    max_err = 1.0;  // crashing on the migrate post-condition also counts
  }
  EXPECT_GT(max_err, 1e-3);
}

TEST(DistributedMd, OverlapHidesHaloLatency) {
  // Multi-rank run dominated by non-rebuild steps: every step opens two
  // begin/finish overlap windows, so hidden time must accumulate.
  auto sys = md::make_fcc(8, 8, 8, 3.7, 63.5, 0.05, 83);
  md::SimulationConfig sc = fast_sim(20);
  DistributedOptions opts;
  opts.grid = {2, 2, 1};
  const auto r = run_distributed_md(
      4, sys, [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); }, sc, opts);
  EXPECT_GT(r.halo_hidden_seconds, 0.0);
  EXPECT_GE(r.halo_overlap_ratio, 0.0);
  EXPECT_LE(r.halo_overlap_ratio, 1.0);
  EXPECT_GE(r.neighbor_rebuilds, 1u);
}

TEST(DistributedMd, PairModeAndMixedPathsWork) {
  core::ModelConfig cfg = core::ModelConfig::tiny(2);
  cfg.type_one_side = false;  // per-pair embedding nets
  core::DPModel model(cfg, 73);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.01};
  tab::TabulatedDP tabulated(model, spec);

  auto sys = md::make_water(2, 2, 2, 74);
  md::SimulationConfig sc = fast_sim(3);
  DistributedOptions opts;
  opts.grid = {2, 1, 1};
  const auto fused_run = run_distributed_md(
      2, sys, [&] { return std::make_unique<fused::FusedDP>(tabulated); }, sc, opts);
  const auto mixed_run = run_distributed_md(
      2, sys, [&] { return std::make_unique<fused::MixedFusedDP>(tabulated); }, sc, opts);
  // Same trajectory start: the mixed path tracks the double path closely.
  EXPECT_NEAR(fused_run.thermo.front().potential, mixed_run.thermo.front().potential,
              1e-4 * sys.atoms.size());
}

/// A crystal next to a vacuum gap along x: the uniform slab grid leaves the
/// upper ranks nearly empty, the canonical inhomogeneous workload the
/// measurement-driven rebalancer exists for (paper Fig 6c's "carefully
/// divided" sub-regions, made automatic).
md::Configuration make_vacuum_gap_system() {
  auto sys = md::make_fcc(6, 6, 6, 3.7, 63.5, 0.05, 77);
  const Vec3 L = sys.box.lengths();
  sys.box = md::Box(2.0 * L.x, L.y, L.z);  // atoms stay in [0, L.x)
  return sys;
}

TEST(DistributedMd, RebalanceReducesVacuumGapImbalance) {
  auto sys = make_vacuum_gap_system();
  md::SimulationConfig sc = fast_sim(16);
  sc.rebuild_every = 2;  // frequent rebuilds so the rebalancer gets to act

  DistributedOptions opts;
  opts.grid = {4, 1, 1};
  opts.gather_state = true;
  const auto factory = [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); };
  const auto fixed = run_distributed_md(4, sys, factory, sc, opts);

  opts.rebalance = true;
  opts.rebalance_every = 2;
  const auto balanced = run_distributed_md(4, sys, factory, sc, opts);

  // Half the box is empty, so the uniform grid is badly off (>= ~2x) and the
  // acceptance bar is a >= 25% reduction in max/mean.
  EXPECT_GT(fixed.load_imbalance, 1.5);
  EXPECT_LE(balanced.load_imbalance, 0.75 * fixed.load_imbalance);

  // Rebalancing only moves ownership, never physics: per-atom forces agree
  // to summation roundoff (state is gathered sorted by global id).
  ASSERT_EQ(balanced.final_force.size(), fixed.final_force.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < fixed.final_force.size(); ++i)
    max_diff = std::max(max_diff, norm(balanced.final_force[i] - fixed.final_force[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(DistributedMd, RebalanceOffReproducesBitwise) {
  // The rebalancer must be invisible when disabled: two runs are bitwise
  // identical and no boundary ever moves.
  auto sys = make_vacuum_gap_system();
  md::SimulationConfig sc = fast_sim(8);
  DistributedOptions opts;
  opts.grid = {4, 1, 1};
  opts.gather_state = true;
  const auto factory = [] { return std::make_unique<md::LennardJones>(0.4, 2.34, 4.5); };
  const auto a = run_distributed_md(4, sys, factory, sc, opts);
  const auto b = run_distributed_md(4, sys, factory, sc, opts);

  EXPECT_EQ(a.boundary_shifts, 0u);
  EXPECT_EQ(b.boundary_shifts, 0u);
  ASSERT_EQ(a.final_pos.size(), b.final_pos.size());
  for (std::size_t i = 0; i < a.final_pos.size(); ++i) {
    EXPECT_EQ(a.final_pos[i].x, b.final_pos[i].x);
    EXPECT_EQ(a.final_force[i].x, b.final_force[i].x);
    EXPECT_EQ(a.final_force[i].y, b.final_force[i].y);
    EXPECT_EQ(a.final_force[i].z, b.final_force[i].z);
  }
  ASSERT_EQ(a.thermo.size(), b.thermo.size());
  for (std::size_t i = 0; i < a.thermo.size(); ++i)
    EXPECT_EQ(a.thermo[i].potential, b.thermo[i].potential);
}

}  // namespace
}  // namespace dp::par
