#!/usr/bin/env python3
"""Multi-process transport acceptance tests for dpmd (run via ctest).

Spawns real OS processes — one per rank — connected by the shm or tcp
transport, and checks the three promises the transport layer makes:

  --mode parity    the physics is transport-invariant: forces from a
                   2-process (and 4-process) shm/tcp world are bitwise
                   identical to the in-process threads world (the dump is
                   %a hex floats, compared as text), and the neighbor
                   rebuild counts match.
  --mode fault     a SIGKILLed peer must not hang the world: the survivor
                   exits nonzero through a DP_CHECK fatal (dumping its
                   flight recorder), not a deadlock.
  --mode blackbox  a crash in a multi-process world leaves one flight dump
                   per process in the shared run dir, and dpblackbox merges
                   the directory and accepts the set (rank skew <= 1).

Sanitizer interplay: same as tests/obs/crash_test.py — the product's signal
handlers are the thing under test, so the children run with handle_segv=0.
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


def child_env():
    env = dict(os.environ)
    for var in ("ASAN_OPTIONS", "TSAN_OPTIONS", "UBSAN_OPTIONS"):
        extra = "handle_segv=0:allow_user_segv_handler=1:handle_abort=0"
        env[var] = env[var] + ":" + extra if env.get(var) else extra
    # The children are configured purely by CLI flags; a stray DP_* in the
    # ambient environment must not leak into half-configured worlds.
    for var in ("DP_TRANSPORT", "DP_RANK", "DP_WORLD", "DP_RENDEZVOUS", "DP_TIMEOUT"):
        env.pop(var, None)
    return env


def run(cmd, cwd, env, timeout=600):
    proc = subprocess.run(
        cmd, cwd=cwd, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, timeout=timeout)
    sys.stdout.write(proc.stdout)
    return proc


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def rendezvous_for(transport, tag):
    if transport == "shm":
        return f"dp_tt_{tag}_{os.getpid()}"
    return f"127.0.0.1:{free_port()}"


def spawn_world(dpmd, transport, world, run_args, cwd, env, tag):
    """Starts one dpmd process per rank; every rank gets identical run flags
    (the SPMD contract) plus its own --rank."""
    rendezvous = rendezvous_for(transport, tag)
    procs = []
    for rank in range(world):
        cmd = [dpmd, "run"] + run_args + [
            "--transport", transport, "--rank", str(rank),
            "--world", str(world), "--rendezvous", rendezvous]
        procs.append(subprocess.Popen(
            cmd, cwd=cwd, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True))
    return procs


def wait_world(procs, timeout=600):
    outs = []
    for p in procs:
        try:
            out, _ = p.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            for q in procs:
                q.kill()
            raise
        outs.append(out)
    return outs


def rebuilds_line(text):
    for line in text.splitlines():
        if line.startswith("rebuilds "):
            return line
    raise AssertionError(f"no 'rebuilds' line in output:\n{text}")


def check_parity(dpmd, tmp, env, system, world):
    base = [
        "--model", f"{system}.dpm", "--system", system,
        "--steps", "8", "--thermo-every", "4", "--rebuild-every", "5"]

    ref_dump = f"forces_{system}_{world}_threads.txt"
    proc = run([dpmd, "run"] + base + ["--ranks", str(world),
                "--force-dump", ref_dump], tmp, env)
    assert proc.returncode == 0, f"threads run failed ({system}, {world} ranks)"
    ref_rebuilds = rebuilds_line(proc.stdout)
    with open(os.path.join(tmp, ref_dump)) as f:
        ref_forces = f.read()
    assert ref_forces, f"{ref_dump} is empty"

    for transport in ("shm", "tcp"):
        dump = f"forces_{system}_{world}_{transport}.txt"
        # Every rank passes --force-dump (gather_state must match across the
        # world); only rank 0 writes the file.
        procs = spawn_world(dpmd, transport, world,
                            base + ["--force-dump", dump], tmp, env,
                            f"{system}{world}")
        outs = wait_world(procs)
        for rank, (p, out) in enumerate(zip(procs, outs)):
            assert p.returncode == 0, (
                f"{transport} rank {rank} failed ({system}):\n{out}")
        with open(os.path.join(tmp, dump)) as f:
            forces = f.read()
        assert forces == ref_forces, (
            f"{transport} forces differ from threads ({system}, {world} ranks)")
        assert rebuilds_line(outs[0]) == ref_rebuilds, (
            f"{transport} rebuild counts differ ({system}, {world} ranks)")
        print(f"parity ok: {system} x{world} {transport} == threads "
              f"({len(ref_forces.splitlines())} atoms, bitwise)")


def mode_parity(dpmd, tmp, env):
    for system in ("copper", "water"):
        proc = run([dpmd, "init", "--system", system, "--demo",
                    "--out", f"{system}.dpm"], tmp, env)
        assert proc.returncode == 0, f"dpmd init {system} failed"
    check_parity(dpmd, tmp, env, "copper", 2)
    check_parity(dpmd, tmp, env, "copper", 4)
    check_parity(dpmd, tmp, env, "water", 2)


def mode_fault(dpmd, tmp, env):
    proc = run([dpmd, "init", "--system", "water", "--demo",
                "--out", "water.dpm"], tmp, env)
    assert proc.returncode == 0, "dpmd init failed"

    # Long enough that the world is mid-run when rank 1 dies; the survivor
    # must fail fast through the transport's dead-peer detection (EOF on the
    # socket), not sit out the full run or the 60 s default timeout.
    base = ["--model", "water.dpm", "--system", "water",
            "--steps", "50000", "--thermo-every", "1000",
            "--flight-recorder", ".", "--timeout", "30"]
    procs = spawn_world(dpmd, "tcp", 2, base, tmp, env, "fault")

    time.sleep(3.0)
    for rank, p in enumerate(procs):
        assert p.poll() is None, (
            f"rank {rank} exited before the kill — run too short to test")
    procs[1].kill()
    outs = wait_world(procs, timeout=120)

    assert procs[1].returncode != 0, "SIGKILLed rank reports success?"
    assert procs[0].returncode != 0, (
        f"rank 0 exited cleanly after peer death:\n{outs[0]}")
    assert "check failed" in outs[0], (
        f"rank 0 did not fail through DP_CHECK:\n{outs[0]}")
    dump = os.path.join(tmp, "flightrec.rank0.json")
    assert os.path.exists(dump), "rank 0 left no flight dump"
    print("fault ok: survivor died via DP_CHECK with a flight dump")


def mode_blackbox(dpmd, blackbox, tmp, env):
    proc = run([dpmd, "init", "--system", "water", "--demo",
                "--out", "water.dpm"], tmp, env)
    assert proc.returncode == 0, "dpmd init failed"

    # Rank 0 segfaults at the step-8 sample; rank 1 blocks on the next
    # collective and fatals via the shm progress timeout. Both leave dumps
    # in the shared run dir.
    base = ["--model", "water.dpm", "--system", "water",
            "--steps", "20", "--thermo-every", "4",
            "--health", "--flight-recorder", ".",
            "--inject-segv", "8", "--timeout", "10"]
    procs = spawn_world(dpmd, "shm", 2, base, tmp, env, "bb")
    outs = wait_world(procs, timeout=120)
    for rank, p in enumerate(procs):
        assert p.returncode != 0, f"rank {rank} exited cleanly:\n{outs[rank]}"

    for rank in range(2):
        assert os.path.exists(os.path.join(tmp, f"flightrec.rank{rank}.json")), (
            f"missing flight dump for rank {rank}")

    # Directory form: dpblackbox globs, merges and checks the set.
    proc = run([sys.executable, blackbox, "--check", "--last", "4", tmp], tmp, env)
    assert proc.returncode == 0, "dpblackbox --check rejected the merged dumps"
    print("blackbox ok: 2 process dumps merged and within one step")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dpmd", required=True)
    ap.add_argument("--blackbox", help="path to tools/dpblackbox (blackbox mode)")
    ap.add_argument("--mode", choices=["parity", "fault", "blackbox"], required=True)
    args = ap.parse_args()

    env = child_env()
    with tempfile.TemporaryDirectory(prefix="dp_transport_test_") as tmp:
        if args.mode == "parity":
            mode_parity(args.dpmd, tmp, env)
        elif args.mode == "fault":
            mode_fault(args.dpmd, tmp, env)
        else:
            assert args.blackbox, "--blackbox required for blackbox mode"
            mode_blackbox(args.dpmd, args.blackbox, tmp, env)
    print(f"transport_test mode={args.mode}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
