#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "json_check.hpp"

namespace {

using dp::obs::FlightRecord;
using dp::obs::FlightRecorder;

FlightRecord rec(std::int64_t step) {
  FlightRecord r;
  r.step = step;
  r.step_seconds = 1e-3 * static_cast<double>(step + 1);
  r.force_seconds = 0.5e-3;
  r.neighbor_seconds = step % 5 == 0 ? 2e-4 : 0.0;
  r.comm_seconds = 1e-5;
  r.health_bits = step % 2 == 0 ? 0u : 0x21u;
  r.rebuilds = static_cast<std::uint32_t>(step / 5);
  r.extrapolations = static_cast<std::uint64_t>(step) * 3u;
  return r;
}

std::string dump_path(const char* tag) {
  return std::string(::testing::TempDir()) + "flightrec_test_" + tag + ".json";
}

dp::testjson::Value parse_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  bool ok = false;
  auto v = dp::testjson::parse_json(ss.str(), ok);
  EXPECT_TRUE(ok) << "unparseable dump: " << ss.str();
  return v;
}

TEST(FlightRecorder, EmptyRecorder) {
  FlightRecorder fr(3, 16);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.capacity(), 16u);
  EXPECT_EQ(fr.rank(), 3);
  EXPECT_EQ(fr.last_step(), -1);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder fr(0, 100);
  EXPECT_EQ(fr.capacity(), 128u);
}

TEST(FlightRecorder, RingKeepsNewestRecordsAfterWrap) {
  FlightRecorder fr(0, 8);
  for (std::int64_t s = 0; s < 20; ++s) fr.record(rec(s));
  EXPECT_EQ(fr.size(), 8u);  // saturates at capacity
  EXPECT_EQ(fr.last_step(), 19);

  const std::string path = dump_path("wrap");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));
  const auto v = parse_file(path);
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("rank").num(), 0.0);
  EXPECT_DOUBLE_EQ(v.at("capacity").num(), 8.0);
  EXPECT_DOUBLE_EQ(v.at("count").num(), 8.0);
  EXPECT_DOUBLE_EQ(v.at("last_step").num(), 19.0);
  const auto& records = v.at("records").array();
  ASSERT_EQ(records.size(), 8u);
  // Oldest first: steps 12..19 survive the wrap.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].at("step").num(), static_cast<double>(12 + i));
  }
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpRoundTripsFieldValues) {
  FlightRecorder fr(2, 4);
  FlightRecord r;
  r.step = 41;
  r.step_seconds = 0.001953125;  // exactly representable
  r.force_seconds = 0.0;
  r.neighbor_seconds = 1.5e-9;
  r.comm_seconds = 123456.0;
  r.health_bits = 0x2au;  // warn/fatal mix across the low three dogs
  r.rebuilds = 7;
  r.extrapolations = 123456789012345ull;
  fr.record(r);

  const std::string path = dump_path("fields");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));
  const auto v = parse_file(path);
  const auto& rj = v.at("records").array().at(0);
  EXPECT_DOUBLE_EQ(rj.at("step").num(), 41.0);
  // The hand-rolled formatter carries 9 significant digits.
  EXPECT_NEAR(rj.at("step_seconds").num(), 0.001953125, 1e-11);
  EXPECT_DOUBLE_EQ(rj.at("force_seconds").num(), 0.0);
  EXPECT_NEAR(rj.at("neighbor_seconds").num(), 1.5e-9, 1e-17);
  EXPECT_NEAR(rj.at("comm_seconds").num(), 123456.0, 1e-3);
  EXPECT_DOUBLE_EQ(rj.at("health_bits").num(), 42.0);
  EXPECT_DOUBLE_EQ(rj.at("rebuilds").num(), 7.0);
  EXPECT_DOUBLE_EQ(rj.at("extrapolations").num(), 123456789012345.0);
  std::remove(path.c_str());
}

TEST(FlightRecorder, NonFiniteTimingsStillProduceValidJson) {
  FlightRecorder fr(0, 4);
  FlightRecord r;
  r.step = 1;
  r.step_seconds = std::numeric_limits<double>::quiet_NaN();
  r.force_seconds = std::numeric_limits<double>::infinity();
  r.neighbor_seconds = -std::numeric_limits<double>::infinity();
  r.comm_seconds = -0.0;
  fr.record(r);
  const std::string path = dump_path("nonfinite");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));
  const auto v = parse_file(path);  // parse failure fails the EXPECT inside
  // Non-finite values are clamped to 0 so the document always parses.
  const auto& rj = v.at("records").array().at(0);
  EXPECT_DOUBLE_EQ(rj.at("step_seconds").num(), 0.0);
  EXPECT_DOUBLE_EQ(rj.at("force_seconds").num(), 0.0);
  std::remove(path.c_str());
}

TEST(FlightRecorder, NegativeStepAndExtremeTimings) {
  FlightRecorder fr(0, 4);
  FlightRecord r;
  r.step = -12345;  // pre-run sentinel records are legal
  r.step_seconds = 1e-300;
  r.force_seconds = 9.999999999e99;  // rounding carries past 10 -> 1.0e+100
  fr.record(r);
  const std::string path = dump_path("extreme");
  ASSERT_TRUE(fr.dump_to_file(path.c_str()));
  const auto v = parse_file(path);
  const auto& rj = v.at("records").array().at(0);
  EXPECT_DOUBLE_EQ(rj.at("step").num(), -12345.0);
  EXPECT_NEAR(rj.at("step_seconds").num() / 1e-300, 1.0, 1e-8);
  EXPECT_NEAR(rj.at("force_seconds").num() / 1e100, 1.0, 1e-8);
  std::remove(path.c_str());
}

TEST(FlightRecorder, OutputPathEncodesRankAndDir) {
  FlightRecorder fr(7, 4);
  fr.set_output_dir("/tmp/some/dir/");  // trailing slash is dropped
  EXPECT_STREQ(fr.output_path(), "/tmp/some/dir/flightrec.rank7.json");
  fr.set_output_dir(".");
  EXPECT_STREQ(fr.output_path(), "./flightrec.rank7.json");
}

TEST(FlightRecorder, DumpAllCoversRegisteredRecorders) {
  FlightRecorder a(40, 4);
  FlightRecorder b(41, 4);
  a.record(rec(5));
  b.record(rec(6));
  const std::string dir = ::testing::TempDir();
  a.set_output_dir(dir.c_str());
  b.set_output_dir(dir.c_str());
  a.register_for_crash_dump();
  a.register_for_crash_dump();  // idempotent
  b.register_for_crash_dump();
  EXPECT_GE(dp::obs::dump_all_recorders(), 2);
  const auto va = parse_file(a.output_path());
  const auto vb = parse_file(b.output_path());
  EXPECT_DOUBLE_EQ(va.at("rank").num(), 40.0);
  EXPECT_DOUBLE_EQ(va.at("last_step").num(), 5.0);
  EXPECT_DOUBLE_EQ(vb.at("rank").num(), 41.0);
  EXPECT_DOUBLE_EQ(vb.at("last_step").num(), 6.0);
  std::remove(a.output_path());
  std::remove(b.output_path());
  // Destructors unregister; a later dump_all must not touch these files.
}

TEST(FlightRecorder, NotifyFatalDumpsAndRunsFlushHook) {
  static int hook_calls;  // the hook is a plain function pointer: no captures
  hook_calls = 0;
  FlightRecorder fr(42, 4);
  fr.record(rec(9));
  fr.set_output_dir(::testing::TempDir().c_str());
  fr.register_for_crash_dump();
  auto* prev = dp::obs::set_fatal_flush_hook(+[]() noexcept { ++hook_calls; });
  dp::obs::notify_fatal("test fatal message");
  dp::obs::set_fatal_flush_hook(prev);
  EXPECT_EQ(hook_calls, 1);
  const auto v = parse_file(fr.output_path());
  EXPECT_DOUBLE_EQ(v.at("last_step").num(), 9.0);
  // notify_fatal re-arms the dump latch (DP_CHECK failures can be caught
  // and the run continued): a second call must dump and flush again.
  dp::obs::notify_fatal(nullptr);
  std::remove(fr.output_path());
}

}  // namespace
