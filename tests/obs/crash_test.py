#!/usr/bin/env python3
"""Crash-path acceptance test for the flight recorder (run via ctest).

Drives the built `dpmd` binary with deterministic fault injection and checks
the black box actually survives the death it was built for:

  --mode segv   distributed run killed by SIGSEGV on rank 0 at a sample
                step: every rank must leave a parseable
                flightrec.rank<k>.json whose last recorded step matches the
                fsynced metrics log (md.steps), and dpblackbox --check must
                accept the set (rank skew <= 1 step).
  --mode fatal  serial run failing a DP_CHECK at a sample step: the fatal
                hook routes through notify_fatal, so the dump and the
                synced metrics must exist even though the process exits
                through the normal error path.

Sanitizer interplay: ASan/TSan install their own SIGSEGV handlers unless
told otherwise; the child env gets handle_segv=0 so the product's handler
(the thing under test) runs.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run(cmd, cwd, env):
    proc = subprocess.run(
        cmd, cwd=cwd, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, timeout=600)
    sys.stdout.write(proc.stdout)
    return proc


def child_env():
    env = dict(os.environ)
    for var in ("ASAN_OPTIONS", "TSAN_OPTIONS", "UBSAN_OPTIONS"):
        extra = "handle_segv=0:allow_user_segv_handler=1:handle_abort=0"
        env[var] = env[var] + ":" + extra if env.get(var) else extra
    return env


def read_metrics_steps(path):
    """Last `md.steps` counter value in the fsynced JSONL metrics file."""
    steps = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)  # every line must parse — crash or not
            if doc.get("type") == "counter" and doc.get("name") == "md.steps":
                steps = int(doc["value"])
    if steps is None:
        raise AssertionError(f"{path}: no md.steps counter found")
    return steps


def load_flightrec(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("rank", "capacity", "count", "last_step", "records"):
        assert key in doc, f"{path}: missing field '{key}'"
    assert doc["records"], f"{path}: no records"
    assert doc["records"][-1]["step"] == doc["last_step"], (
        f"{path}: last record step {doc['records'][-1]['step']} != "
        f"last_step {doc['last_step']}")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dpmd", required=True, help="path to the built dpmd binary")
    ap.add_argument("--blackbox", required=True, help="path to tools/dpblackbox")
    ap.add_argument("--mode", choices=["segv", "fatal"], required=True)
    args = ap.parse_args()

    env = child_env()
    inject_step = 8
    with tempfile.TemporaryDirectory(prefix="dp_crash_test_") as tmp:
        proc = run([args.dpmd, "init", "--system", "water", "--demo",
                    "--out", "model.dpm"], tmp, env)
        assert proc.returncode == 0, "dpmd init failed"

        ranks = 2 if args.mode == "segv" else 1
        cmd = [args.dpmd, "run", "--model", "model.dpm", "--system", "water",
               "--steps", "20", "--thermo-every", "4",
               "--health", "--flight-recorder", ".",
               "--metrics", "crash.metrics.jsonl",
               f"--inject-{args.mode}", str(inject_step)]
        if ranks > 1:
            cmd += ["--ranks", str(ranks)]
        proc = run(cmd, tmp, env)
        assert proc.returncode != 0, (
            f"injected {args.mode} run exited cleanly (rc 0)")

        dumps = sorted(p for p in os.listdir(tmp) if p.startswith("flightrec.rank"))
        assert len(dumps) == ranks, (
            f"expected {ranks} flight dump(s), found {dumps}")

        metrics_steps = read_metrics_steps(os.path.join(tmp, "crash.metrics.jsonl"))
        last_steps = []
        for name in dumps:
            doc = load_flightrec(os.path.join(tmp, name))
            last_steps.append(doc["last_step"])
            print(f"{name}: rank {doc['rank']} last_step {doc['last_step']} "
                  f"count {doc['count']}")
        print(f"metrics md.steps = {metrics_steps}")

        # The injection fires at the first sample step >= inject_step, right
        # after that step's flight record and metrics rewrite landed — the
        # dump and the log must agree on where the run died.
        for ls in last_steps:
            assert ls >= inject_step, f"last_step {ls} precedes injection"
            assert ls == metrics_steps, (
                f"flight recorder last_step {ls} != metrics md.steps "
                f"{metrics_steps}")

        proc = run([sys.executable, args.blackbox, "--check", "--last", "4"]
                   + [os.path.join(tmp, d) for d in dumps], tmp, env)
        assert proc.returncode == 0, "dpblackbox --check rejected the dumps"

    print(f"crash_test mode={args.mode}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
