#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "obs/metrics.hpp"

namespace {

using dp::obs::Counter;
using dp::obs::Gauge;
using dp::obs::Histogram;
using dp::obs::MetricsRegistry;

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAreNotLost) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddLastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsAreNotLost) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  ASSERT_EQ(s.bucket_counts.size(), 4u);
  EXPECT_EQ(s.bucket_counts[0], 1u);
  EXPECT_EQ(s.bucket_counts[1], 1u);
  EXPECT_EQ(s.bucket_counts[2], 0u);
  EXPECT_EQ(s.bucket_counts[3], 1u);
}

TEST(Histogram, QuantilesOnUniformData) {
  // 1..1000 uniformly into buckets of width 100: the interpolated quantile
  // should land within one bucket width of the exact order statistic.
  std::vector<double> bounds;
  for (double b = 100.0; b <= 1000.0; b += 100.0) bounds.push_back(b);
  Histogram h(bounds);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.50), 500.0, 100.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 100.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 100.0);
  // Extremes clamp to the observed range.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
  // Monotone in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Histogram, QuantileStaysInObservedRange) {
  Histogram h({1e-3, 1e-2, 1e-1, 1.0});
  h.observe(0.004);
  h.observe(0.005);
  h.observe(0.006);
  // All three land in the (1e-3, 1e-2] bucket; estimates must not escape
  // the observed [0.004, 0.006] range.
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_GE(h.quantile(q), 0.004);
    EXPECT_LE(h.quantile(q), 0.006);
  }
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Histogram, SingleSampleEveryQuantileIsThatSample) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(1.7);
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 1.7) << "q = " << q;
  }
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 1.7);
  EXPECT_DOUBLE_EQ(s.max, 1.7);
  EXPECT_DOUBLE_EQ(s.mean(), 1.7);
}

TEST(Histogram, AllEqualSamplesCollapseToOneValue) {
  Histogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 1000; ++i) h.observe(2.0);  // exactly on a boundary
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 2.0) << "q = " << q;
  }
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

TEST(Histogram, OverflowBucketQuantilesStayInObservedRange) {
  Histogram h({1.0, 2.0});
  // Everything beyond the last bound lands in the open overflow bucket,
  // whose only honest upper edge is the observed max.
  h.observe(10.0);
  h.observe(20.0);
  h.observe(30.0);
  for (double q : {0.0, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.quantile(q), 10.0) << "q = " << q;
    EXPECT_LE(h.quantile(q), 30.0) << "q = " << q;
  }
  const auto s = h.snapshot();
  ASSERT_EQ(s.bucket_counts.size(), 3u);
  EXPECT_EQ(s.bucket_counts[2], 3u);
}

TEST(Histogram, ConcurrentObservesAreNotLost) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-5 * (t + 1));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto s = h.snapshot();
  std::uint64_t total = 0;
  for (auto c : s.bucket_counts) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistry, FindOrCreateReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  Gauge& g1 = reg.gauge("y");
  Gauge& g2 = reg.gauge("y");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("z", {1.0, 2.0});
  Histogram& h2 = reg.histogram("z");  // bounds ignored after creation
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, ClearResetsValuesButKeepsObjects) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.inc(7);
  g.set(1.0);
  h.observe(0.5);
  reg.record_event("e", {{"k", 1.0}});
  EXPECT_EQ(reg.event_count(), 1u);
  reg.clear();
  // Cached references stay valid and read the reset values.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.event_count(), 0u);
  EXPECT_EQ(&c, &reg.counter("c"));
}

TEST(MetricsRegistry, JsonlLinesAreValidJson) {
  MetricsRegistry reg;
  reg.counter("md.steps").inc(3);
  reg.gauge("load \"imbalance\"\n").set(1.25);  // name needing escapes
  Histogram& h = reg.histogram("md.step_seconds");
  h.observe(1e-4);
  h.observe(2e-4);
  reg.record_event("rank", "label with \\ and \"", {{"rank", 0.0}, {"bytes", 123.0}});

  std::ostringstream os;
  reg.write_jsonl(os);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());

  std::istringstream lines(text);
  std::string line;
  int n_lines = 0, n_counter = 0, n_gauge = 0, n_hist = 0, n_event = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    bool ok = false;
    const auto v = dp::testjson::parse_json(line, ok);
    ASSERT_TRUE(ok) << "invalid JSON line: " << line;
    ASSERT_TRUE(v.is_object());
    ASSERT_TRUE(v.has("type"));
    const std::string& type = v.at("type").str();
    if (type == "counter") {
      ++n_counter;
      EXPECT_DOUBLE_EQ(v.at("value").num(), 3.0);
    } else if (type == "gauge") {
      ++n_gauge;
      EXPECT_DOUBLE_EQ(v.at("value").num(), 1.25);
    } else if (type == "histogram") {
      ++n_hist;
      EXPECT_DOUBLE_EQ(v.at("count").num(), 2.0);
      EXPECT_TRUE(v.at("buckets").is_array());
      EXPECT_TRUE(v.has("p50"));
      EXPECT_TRUE(v.has("p95"));
      EXPECT_TRUE(v.has("p99"));
    } else if (type == "event") {
      ++n_event;
      EXPECT_EQ(v.at("name").str(), "rank");
      EXPECT_DOUBLE_EQ(v.at("fields").at("bytes").num(), 123.0);
    }
    ++n_lines;
  }
  EXPECT_EQ(n_lines, 4);
  EXPECT_EQ(n_counter, 1);
  EXPECT_EQ(n_gauge, 1);
  EXPECT_EQ(n_hist, 1);
  EXPECT_EQ(n_event, 1);
}

TEST(MetricsRegistry, JsonDocumentIsValid) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(2.0);
  reg.record_event("row", {{"x", 1.0}});
  std::ostringstream os;
  reg.write_json(os);
  bool ok = false;
  const auto v = dp::testjson::parse_json(os.str(), ok);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("metrics").array().size(), 2u);
  EXPECT_EQ(v.at("events").array().size(), 1u);
}

TEST(MetricsRegistry, NonFiniteGaugeStillEmitsValidJson) {
  MetricsRegistry reg;
  reg.gauge("bad").set(std::numeric_limits<double>::infinity());
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  bool ok = false;
  dp::testjson::parse_json(line, ok);
  EXPECT_TRUE(ok) << line;
}

}  // namespace
