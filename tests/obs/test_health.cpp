#include "obs/health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "md/lj.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "parallel/distributed_md.hpp"

namespace {

using dp::obs::HealthConfig;
using dp::obs::HealthMonitor;
using dp::obs::HealthState;
using dp::obs::MetricsRegistry;
using dp::obs::StepSignals;
using dp::obs::Watchdog;
using dp::obs::WatchdogSpec;

WatchdogSpec spec(double warn, double fatal, int raise_after = 1, int clear_after = 3) {
  WatchdogSpec s;
  s.name = "test.dog";
  s.warn = warn;
  s.fatal = fatal;
  s.raise_after = raise_after;
  s.clear_after = clear_after;
  return s;
}

TEST(Watchdog, ThresholdLevels) {
  Watchdog dog(spec(1.0, 10.0));
  EXPECT_EQ(dog.observe(0, 0.5), HealthState::kOk);
  EXPECT_EQ(dog.observe(1, 1.0), HealthState::kWarn);   // >= warn trips
  EXPECT_EQ(dog.observe(2, 10.0), HealthState::kFatal);
  EXPECT_EQ(dog.samples(), 3u);
  EXPECT_DOUBLE_EQ(dog.last_value(), 10.0);
}

TEST(Watchdog, BelowDirection) {
  WatchdogSpec s = spec(1.0, 0.1);
  s.above = false;  // trip when value <= threshold
  Watchdog dog(s);
  EXPECT_EQ(dog.observe(0, 5.0), HealthState::kOk);
  EXPECT_EQ(dog.observe(1, 0.5), HealthState::kWarn);
  EXPECT_EQ(dog.observe(2, 0.05), HealthState::kFatal);
}

TEST(Watchdog, RaiseAfterSuppressesSingleSpike) {
  Watchdog dog(spec(1.0, 10.0, /*raise_after=*/3));
  EXPECT_EQ(dog.observe(0, 2.0), HealthState::kOk);  // 1 of 3
  EXPECT_EQ(dog.observe(1, 0.0), HealthState::kOk);  // streak broken
  EXPECT_EQ(dog.observe(2, 2.0), HealthState::kOk);
  EXPECT_EQ(dog.observe(3, 2.0), HealthState::kOk);
  EXPECT_EQ(dog.observe(4, 2.0), HealthState::kWarn);  // 3 consecutive
  EXPECT_EQ(dog.transitions(), 1u);
  EXPECT_EQ(dog.last_transition_step(), 4);
}

TEST(Watchdog, HysteresisDoesNotFlapAtThreshold) {
  // A value alternating exactly across the warn threshold must produce at
  // most the one raise transition: clear_after = 3 means isolated healthy
  // samples never clear the warn state.
  Watchdog dog(spec(1.0, 100.0, /*raise_after=*/1, /*clear_after=*/3));
  for (int i = 0; i < 50; ++i) dog.observe(i, i % 2 == 0 ? 1.0 : 0.99);
  EXPECT_EQ(dog.state(), HealthState::kWarn);
  EXPECT_EQ(dog.transitions(), 1u);
}

TEST(Watchdog, ClearAfterConsecutiveHealthySamples) {
  Watchdog dog(spec(1.0, 100.0, 1, 3));
  dog.observe(0, 5.0);
  EXPECT_EQ(dog.state(), HealthState::kWarn);
  dog.observe(1, 0.1);
  dog.observe(2, 0.1);
  EXPECT_EQ(dog.state(), HealthState::kWarn);  // 2 of 3
  dog.observe(3, 0.1);
  EXPECT_EQ(dog.state(), HealthState::kOk);
  EXPECT_EQ(dog.transitions(), 2u);
  EXPECT_EQ(dog.last_transition_step(), 3);
}

TEST(Watchdog, MixedStreakPromotesConservatively) {
  // With raise_after = 2, a [fatal, warn] streak raises only to warn — the
  // promoted level is the floor of the streak, never beyond what the signal
  // sustained.
  Watchdog dog(spec(1.0, 10.0, /*raise_after=*/2));
  EXPECT_EQ(dog.observe(0, 50.0), HealthState::kOk);
  EXPECT_EQ(dog.observe(1, 2.0), HealthState::kWarn);
  // Escalation warn -> fatal needs its own sustained streak.
  EXPECT_EQ(dog.observe(2, 50.0), HealthState::kWarn);
  EXPECT_EQ(dog.observe(3, 50.0), HealthState::kFatal);
}

TEST(HealthMonitor, StandardSetRegistersSixWatchdogs) {
  HealthMonitor mon(HealthConfig{}, nullptr);
  EXPECT_EQ(mon.size(), 6u);
  EXPECT_NE(mon.find("health.energy_drift"), nullptr);
  EXPECT_NE(mon.find("health.temperature_ratio"), nullptr);
  EXPECT_NE(mon.find("health.max_force"), nullptr);
  EXPECT_NE(mon.find("health.neighbor_occupancy"), nullptr);
  EXPECT_NE(mon.find("health.step_imbalance"), nullptr);
  EXPECT_NE(mon.find("health.extrapolation_rate"), nullptr);
  EXPECT_EQ(mon.find("health.nope"), nullptr);
  EXPECT_EQ(mon.worst(), HealthState::kOk);
}

TEST(HealthMonitor, NaNSignalsAreSkipped) {
  HealthMonitor mon(HealthConfig{}, nullptr);
  StepSignals s;  // everything NaN
  s.step = 1;
  EXPECT_EQ(mon.observe_step(s), HealthState::kOk);
  for (const auto& e : mon.report().entries) EXPECT_EQ(e.transitions, 0u);
  // A skipped watchdog keeps zero samples.
  EXPECT_EQ(mon.find("health.max_force")->samples(), 0u);
}

TEST(HealthMonitor, DriftBaselineIsWindowedMean) {
  HealthConfig cfg;
  cfg.drift_window = 4;
  HealthMonitor mon(cfg, nullptr);
  // First sample: baseline = itself, drift 0.
  EXPECT_DOUBLE_EQ(mon.drift_value(-100.0), 0.0);
  EXPECT_DOUBLE_EQ(mon.drift_value(-100.0), 0.0);
  mon.drift_value(-100.0);
  mon.drift_value(-100.0);
  // Window full at mean -100; a 1% jump reads as 1e-2 relative drift.
  EXPECT_NEAR(mon.drift_value(-99.0), 0.01, 1e-12);
  EXPECT_NEAR(mon.drift_value(-101.0), 0.01, 1e-12);
}

TEST(HealthMonitor, EnergyJumpTripsDriftWatchdog) {
  HealthConfig cfg;
  cfg.drift_window = 4;
  HealthMonitor mon(cfg, nullptr);
  StepSignals s;
  for (int i = 0; i < 4; ++i) {
    s.step = i;
    s.total_energy = -100.0;
    EXPECT_EQ(mon.observe_step(s), HealthState::kOk);
  }
  s.step = 4;
  s.total_energy = -80.0;  // 20% drift >> drift_fatal = 1e-1
  EXPECT_EQ(mon.observe_step(s), HealthState::kFatal);
  EXPECT_EQ(mon.find("health.energy_drift")->state(), HealthState::kFatal);
}

TEST(HealthMonitor, StateBitsPackTwoBitsPerWatchdog) {
  HealthConfig cfg;
  HealthMonitor mon(cfg, nullptr);
  EXPECT_EQ(mon.state_bits(), 0u);
  StepSignals s;
  s.step = 0;
  s.max_force = cfg.force_fatal * 10.0;  // watchdog index 2
  mon.observe_step(s);
  EXPECT_EQ(mon.state_bits(), 2u << (2 * 2));
  EXPECT_EQ(mon.worst(), HealthState::kFatal);
}

TEST(HealthMonitor, ExtrapolationRateIsDifferenced) {
  HealthConfig cfg;
  cfg.extrapolation_warn = 1e-3;
  cfg.extrapolation_fatal = 1e-1;
  HealthMonitor mon(cfg, nullptr);
  StepSignals s;
  s.n_atoms = 1000.0;
  s.step = 0;
  s.extrapolations = 0.0;
  EXPECT_EQ(mon.observe_step(s), HealthState::kOk);
  // 10 new extrapolations over 10 steps at 1000 atoms = 1e-3 / atom / step.
  s.step = 10;
  s.extrapolations = 10.0;
  EXPECT_EQ(mon.observe_step(s), HealthState::kWarn);
  // No new extrapolations: rate falls back to zero.
  s.step = 20;
  EXPECT_EQ(mon.find("health.extrapolation_rate")->observe(20, 0.0), HealthState::kWarn);
}

TEST(HealthMonitor, TransitionsEmitEventsIntoSink) {
  MetricsRegistry reg;
  HealthConfig cfg;
  HealthMonitor mon(cfg, &reg);
  StepSignals s;
  s.step = 0;
  s.max_force = 1.0;
  mon.observe_step(s);
  EXPECT_EQ(reg.event_count(), 0u);  // healthy: no emission
  s.step = 1;
  s.max_force = cfg.force_warn * 2.0;
  mon.observe_step(s);
  EXPECT_EQ(reg.event_count(), 1u);  // ok -> warn
  s.step = 2;
  mon.observe_step(s);
  EXPECT_EQ(reg.event_count(), 1u);  // staying warn is silent
}

TEST(HealthMonitor, ReportCarriesThresholdsAndWorst) {
  HealthConfig cfg;
  HealthMonitor mon(cfg, nullptr);
  StepSignals s;
  s.step = 7;
  s.neighbor_occupancy = 0.9;  // warn at 0.85, fatal at 1.0
  mon.observe_step(s);
  const auto rep = mon.report();
  EXPECT_EQ(rep.step, 7);
  EXPECT_EQ(rep.worst(), HealthState::kWarn);
  const auto* e = rep.find("health.neighbor_occupancy");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, HealthState::kWarn);
  EXPECT_DOUBLE_EQ(e->value, 0.9);
  EXPECT_DOUBLE_EQ(e->warn, cfg.occupancy_warn);
  EXPECT_DOUBLE_EQ(e->fatal, cfg.occupancy_fatal);
}

TEST(HealthMonitor, PublishGaugesWritesPerWatchdogState) {
  MetricsRegistry reg;
  HealthConfig cfg;
  HealthMonitor mon(cfg, nullptr);
  StepSignals s;
  s.step = 0;
  s.max_force = cfg.force_fatal * 2.0;
  mon.observe_step(s);
  mon.publish_gauges(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("health.worst_state").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("health.max_force.state").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("health.max_force").value(), cfg.force_fatal * 2.0);
}

TEST(HealthMonitor, EncodeDecodeRoundTrip) {
  for (HealthState st : {HealthState::kOk, HealthState::kWarn, HealthState::kFatal})
    EXPECT_EQ(HealthMonitor::decode(HealthMonitor::encode(st)), st);
  EXPECT_EQ(HealthMonitor::decode(99), HealthState::kFatal);  // clamps up
}

// The acceptance demo from ISSUE.md: an NVE LJ run with a deliberately
// broken (10x) time step must trip the energy-drift watchdog within the
// baseline window, while the same run at a sane dt stays clean.
TEST(HealthIntegration, BrokenDtTripsDriftWatchdogWithinWindow) {
  auto run_with_dt = [](double dt) {
    auto cfg = dp::md::make_fcc(3, 3, 3, 3.7, 63.5, 0.0, 14);
    dp::md::LennardJones lj(0.4, 2.34, 4.5);
    dp::md::SimulationConfig sc;
    sc.skin = 1.0;
    sc.dt = dt;
    sc.steps = 60;
    sc.temperature = 300.0;
    sc.thermo_every = 2;  // drift is observed at sample cadence
    dp::obs::HealthConfig hcfg;
    hcfg.drift_window = 8;
    dp::obs::HealthMonitor mon(hcfg, nullptr);
    sc.health = &mon;
    dp::md::Simulation sim(cfg, lj, sc);
    sim.run();
    return mon.find("health.energy_drift")->state();
  };
  EXPECT_EQ(run_with_dt(0.002), HealthState::kOk);
  EXPECT_NE(run_with_dt(0.02), HealthState::kOk);
}

TEST(HealthIntegration, DistributedRunReportsFleetHealth) {
  auto sys = dp::md::make_fcc(6, 6, 6, 3.7, 63.5, 0.08, 51);
  dp::md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = 10;
  sc.temperature = 200.0;
  sc.skin = 1.0;
  sc.rebuild_every = 5;
  sc.thermo_every = 5;
  dp::obs::HealthConfig hcfg;
  hcfg.target_temperature = sc.temperature;
  // In-process ranks oversubscribe the test host's cores, so wall-clock
  // imbalance is scheduler noise here — park those thresholds out of reach
  // and test the plumbing, not the machine.
  hcfg.imbalance_warn = 1e3;
  hcfg.imbalance_fatal = 1e6;
  dp::par::DistributedOptions opts;
  opts.grid = {2, 2, 1};
  opts.health = &hcfg;
  const auto result = dp::par::run_distributed_md(
      4, sys, [] { return std::make_unique<dp::md::LennardJones>(0.4, 2.34, 4.5); }, sc,
      opts);
  // The report carries the standard set, evaluated on globally reduced
  // signals; a healthy LJ lattice run must not trip anything.
  EXPECT_EQ(result.health.entries.size(), 6u);
  EXPECT_EQ(result.health.worst(), HealthState::kOk);
  EXPECT_EQ(result.worst_health, 0);
  const auto* imb = result.health.find("health.step_imbalance");
  ASSERT_NE(imb, nullptr);
  EXPECT_GE(imb->value, 1.0);  // max/mean is bounded below by 1
}

}  // namespace
