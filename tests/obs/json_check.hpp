// Minimal recursive-descent JSON validator/parser for the observability
// tests: enough of RFC 8259 to verify that emitted metrics/trace files are
// well-formed and to pull out values, with no external dependency.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace dp::testjson {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  bool is_object() const { return std::holds_alternative<Object>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }

  const Object& object() const { return std::get<Object>(v); }
  const Array& array() const { return std::get<Array>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }

  /// Object member access; throws std::out_of_range when missing.
  const Value& at(const std::string& key) const { return object().at(key); }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  /// Parses one complete JSON document; `ok` reports success (trailing
  /// non-whitespace or any syntax error fails).
  Value parse(bool& ok) {
    ok = false;
    Value v;
    if (!parse_value(v)) return v;
    skip_ws();
    ok = (pos_ == s_.size());
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out.v = std::move(str);
        return true;
      }
      case 't': out.v = true; return literal("true");
      case 'f': out.v = false; return literal("false");
      case 'n': out.v = nullptr; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    if (!consume('{')) return false;
    Object obj;
    skip_ws();
    if (consume('}')) {
      out.v = std::move(obj);
      return true;
    }
    do {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Value val;
      if (!parse_value(val)) return false;
      obj.emplace(std::move(key), std::move(val));
    } while (consume(','));
    if (!consume('}')) return false;
    out.v = std::move(obj);
    return true;
  }

  bool parse_array(Value& out) {
    if (!consume('[')) return false;
    Array arr;
    skip_ws();
    if (consume(']')) {
      out.v = std::move(arr);
      return true;
    }
    do {
      Value val;
      if (!parse_value(val)) return false;
      arr.push_back(std::move(val));
    } while (consume(','));
    if (!consume(']')) return false;
    out.v = std::move(arr);
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          for (int k = 0; k < 4; ++k)
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(k)])))
              return false;
          // Validation only: keep the escape verbatim (tests compare structure,
          // not non-ASCII content).
          out.append("\\u").append(s_.substr(pos_, 4));
          pos_ += 4;
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out.v = std::stod(std::string(s_.substr(start, pos_ - start)));
    } catch (...) {
      return false;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Parses `text` as one JSON document; sets `ok` accordingly.
inline Value parse_json(std::string_view text, bool& ok) {
  return Parser(text).parse(ok);
}

}  // namespace dp::testjson
