#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "json_check.hpp"
#include "obs/trace.hpp"

namespace {

using dp::obs::TraceCollector;
using dp::obs::TraceSpan;

/// The collector is a process singleton: every test starts from a clean,
/// disabled state and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
  void TearDown() override {
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { TraceSpan s("noop", "test"); }
  { TraceSpan s("noop2", "test"); }
  EXPECT_EQ(TraceCollector::instance().event_count(), 0u);
}

TEST_F(TraceTest, EnabledSpansRecord) {
  TraceCollector::instance().set_enabled(true);
  { TraceSpan s("work", "test"); }
  TraceCollector::instance().record_instant("marker", "test");
  EXPECT_EQ(TraceCollector::instance().event_count(), 2u);
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillCompletes) {
  TraceCollector::instance().set_enabled(true);
  {
    TraceSpan s("late", "test");
    // Disabling mid-span must not lose the span (it checked the flag at
    // entry) nor crash at exit.
    TraceCollector::instance().set_enabled(false);
  }
  EXPECT_EQ(TraceCollector::instance().event_count(), 1u);
}

TEST_F(TraceTest, ChromeTraceIsValidJson) {
  TraceCollector::instance().set_enabled(true);
  TraceCollector::set_thread_rank(0);
  {
    TraceSpan outer("md.step", "md");
    { TraceSpan inner("md.force", "md"); }
    { TraceSpan inner("md.integrate", "md"); }
  }
  TraceCollector::instance().set_enabled(false);

  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  bool ok = false;
  const auto doc = dp::testjson::parse_json(os.str(), ok);
  ASSERT_TRUE(ok) << os.str();
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents").array();

  std::set<std::string> names;
  int n_complete = 0;
  for (const auto& e : events) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    const std::string& ph = e.at("ph").str();
    if (ph == "M") continue;  // process-name metadata
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("tid"));
    names.insert(e.at("name").str());
    if (ph == "X") {
      ++n_complete;
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").num(), 0.0);
    }
  }
  EXPECT_EQ(n_complete, 3);
  EXPECT_TRUE(names.count("md.step"));
  EXPECT_TRUE(names.count("md.force"));
  EXPECT_TRUE(names.count("md.integrate"));

  // Events are emitted in timestamp order.
  double prev_ts = -1.0;
  for (const auto& e : events) {
    if (e.at("ph").str() == "M") continue;
    EXPECT_GE(e.at("ts").num(), prev_ts);
    prev_ts = e.at("ts").num();
  }
}

TEST_F(TraceTest, PerRankProcessMetadata) {
  TraceCollector::instance().set_enabled(true);
  std::vector<std::thread> threads;
  for (int rank = 0; rank < 3; ++rank)
    threads.emplace_back([rank] {
      TraceCollector::set_thread_rank(rank);
      TraceSpan s("md.step", "md");
    });
  for (auto& t : threads) t.join();
  TraceCollector::instance().set_enabled(false);

  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  bool ok = false;
  const auto doc = dp::testjson::parse_json(os.str(), ok);
  ASSERT_TRUE(ok);

  std::set<double> span_pids, meta_pids;
  for (const auto& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() == "M")
      meta_pids.insert(e.at("pid").num());
    else
      span_pids.insert(e.at("pid").num());
  }
  EXPECT_EQ(span_pids.size(), 3u);
  // Every rank that recorded a span gets a process_name metadata record.
  EXPECT_EQ(meta_pids, span_pids);
}

TEST_F(TraceTest, MultiThreadedStressLosesNoEvents) {
  TraceCollector::instance().set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      TraceCollector::set_thread_rank(t % 2);
      for (int i = 0; i < kPerThread; ++i) TraceSpan s("hot", "stress");
    });
  for (auto& th : threads) th.join();
  TraceCollector::instance().set_enabled(false);

  EXPECT_EQ(TraceCollector::instance().event_count(),
            static_cast<std::size_t>(kThreads) * kPerThread);

  // The flush must still be valid JSON with exactly one record per span
  // (no torn/interleaved writes).
  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  bool ok = false;
  const auto doc = dp::testjson::parse_json(os.str(), ok);
  ASSERT_TRUE(ok);
  std::size_t spans = 0;
  for (const auto& e : doc.at("traceEvents").array())
    if (e.at("ph").str() == "X") ++spans;
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TraceTest, ConcurrentFlushWhileRecordingParses) {
  TraceCollector::instance().set_enabled(true);
  // The writer is bounded (each flush costs O(recorded events), so an
  // unbounded writer racing the flusher on one core never converges).
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) TraceSpan s("live", "stress");
    done.store(true);
  });
  // Snapshot repeatedly while spans are being recorded: each snapshot must
  // be a self-consistent, parseable document.
  int flushes = 0;
  do {
    std::ostringstream os;
    TraceCollector::instance().write_chrome_trace(os);
    bool ok = false;
    dp::testjson::parse_json(os.str(), ok);
    EXPECT_TRUE(ok);
    ++flushes;
  } while (!done.load());
  writer.join();
  EXPECT_GE(flushes, 1);
}

TEST_F(TraceTest, ScopedTimerEmitsSpanWhenCategorized) {
  TraceCollector::instance().set_enabled(true);
  { dp::ScopedTimer t("obs_test.section", "test"); }
  { dp::ScopedTimer t("obs_test.untraced"); }  // no category: registry only
  TraceCollector::instance().set_enabled(false);

  EXPECT_EQ(TraceCollector::instance().event_count(), 1u);
  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  bool ok = false;
  const auto doc = dp::testjson::parse_json(os.str(), ok);
  ASSERT_TRUE(ok);
  bool found = false;
  for (const auto& e : doc.at("traceEvents").array())
    if (e.at("ph").str() == "X" && e.at("name").str() == "obs_test.section") found = true;
  EXPECT_TRUE(found);
  // Both sections still reached the timer registry.
  EXPECT_EQ(dp::TimerRegistry::instance().get("obs_test.section").calls, 1u);
  EXPECT_EQ(dp::TimerRegistry::instance().get("obs_test.untraced").calls, 1u);
}

TEST_F(TraceTest, ClearDropsEvents) {
  TraceCollector::instance().set_enabled(true);
  { TraceSpan s("x", "test"); }
  EXPECT_GT(TraceCollector::instance().event_count(), 0u);
  TraceCollector::instance().clear();
  EXPECT_EQ(TraceCollector::instance().event_count(), 0u);
  // The calling thread's buffer stays registered and usable.
  { TraceSpan s("y", "test"); }
  EXPECT_EQ(TraceCollector::instance().event_count(), 1u);
}

}  // namespace
