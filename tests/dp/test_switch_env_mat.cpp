#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dp/env_mat.hpp"
#include "dp/switch_fn.hpp"
#include "md/lattice.hpp"

namespace dp::core {
namespace {

TEST(SwitchFn, EqualsInverseRInsideSmoothRadius) {
  for (double r : {0.5, 1.0, 1.9}) {
    auto sw = switch_fn(r, 2.0, 4.0);
    EXPECT_DOUBLE_EQ(sw.s, 1.0 / r);
    EXPECT_DOUBLE_EQ(sw.ds_dr, -1.0 / (r * r));
  }
}

TEST(SwitchFn, ZeroBeyondCutoff) {
  auto sw = switch_fn(4.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(sw.s, 0.0);
  EXPECT_DOUBLE_EQ(sw.ds_dr, 0.0);
  EXPECT_DOUBLE_EQ(switch_fn(17.0, 2.0, 4.0).s, 0.0);
}

TEST(SwitchFn, ContinuousAtBothEnds) {
  const double rs = 2.0, rc = 4.0, eps = 1e-9;
  EXPECT_NEAR(switch_fn(rs - eps, rs, rc).s, switch_fn(rs + eps, rs, rc).s, 1e-7);
  EXPECT_NEAR(switch_fn(rc - eps, rs, rc).s, 0.0, 1e-7);
  // Derivative continuity at rs (C2 gate).
  EXPECT_NEAR(switch_fn(rs - eps, rs, rc).ds_dr, switch_fn(rs + eps, rs, rc).ds_dr, 1e-6);
  EXPECT_NEAR(switch_fn(rc - eps, rs, rc).ds_dr, 0.0, 1e-6);
}

TEST(SwitchFn, DerivativeMatchesFiniteDifference) {
  const double rs = 1.0, rc = 4.0, h = 1e-6;
  for (double r : {0.6, 1.5, 2.2, 3.0, 3.9}) {
    const double fd = (switch_fn(r + h, rs, rc).s - switch_fn(r - h, rs, rc).s) / (2 * h);
    EXPECT_NEAR(switch_fn(r, rs, rc).ds_dr, fd, 1e-7) << "r=" << r;
  }
}

TEST(SwitchFn, MonotoneDecreasingGate) {
  double prev = switch_fn(0.3, 1.0, 4.0).s;
  for (double r = 0.35; r < 4.0; r += 0.05) {
    const double s = switch_fn(r, 1.0, 4.0).s;
    EXPECT_LT(s, prev) << "r=" << r;
    prev = s;
  }
}

// ---------------------------------------------------------------------------

md::Configuration small_copper() {
  return md::make_fcc(4, 4, 4, 3.634, 63.546, /*jitter=*/0.1, 7);
}

TEST(EnvMat, BaselineAndOptimizedIdentical) {
  // The kernels emit different layouts (dense padded vs compact CSR) but the
  // SAME logical matrix: per (atom, type) block, identical counts and
  // bitwise-identical filled-slot payloads.
  auto cfg = ModelConfig::tiny();
  cfg.rcut = 4.0;
  auto sys = small_copper();
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat a, b;
  build_env_mat(cfg, sys.box, sys.atoms, nl, a, EnvMatKernel::Baseline);
  build_env_mat(cfg, sys.box, sys.atoms, nl, b, EnvMatKernel::Optimized);
  ASSERT_FALSE(a.compact());
  ASSERT_TRUE(b.compact());
  ASSERT_EQ(a.count_by_type, b.count_by_type);
  EXPECT_EQ(a.overflow, b.overflow);
  EXPECT_EQ(b.stored_slots(), b.filled_slots());
  EXPECT_EQ(a.filled_slots(), b.filled_slots());
  for (std::size_t i = 0; i < a.n_atoms; ++i)
    for (int t = 0; t < a.ntypes; ++t) {
      const std::size_t sa = a.block_begin(i, t);
      const std::size_t sb = b.block_begin(i, t);
      for (int k = 0; k < a.count(i, t); ++k) {
        const std::size_t ka = sa + static_cast<std::size_t>(k);
        const std::size_t kb = sb + static_cast<std::size_t>(k);
        EXPECT_EQ(a.atom_of(ka), b.atom_of(kb));
        for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(a.rmat_at(ka)[c], b.rmat_at(kb)[c]);
        for (int c = 0; c < 12; ++c) EXPECT_DOUBLE_EQ(a.deriv_at(ka)[c], b.deriv_at(kb)[c]);
      }
    }
}

TEST(EnvMat, SlotsSortedByDistanceWithinType) {
  auto cfg = ModelConfig::tiny();
  auto sys = small_copper();
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);
  for (std::size_t i = 0; i < env.n_atoms; ++i) {
    const int cnt = env.count(i, 0);
    const std::size_t base = env.block_begin(i, 0);
    double prev_s = 1e300;
    for (int k = 0; k < cnt; ++k) {
      // s(r) decreases with r, so sorted-by-distance means decreasing s.
      const double s = env.rmat_at(base + static_cast<std::size_t>(k))[0];
      EXPECT_LE(s, prev_s + 1e-12);
      prev_s = s;
    }
  }
}

TEST(EnvMat, PaddedSlotsAreZero) {
  // Padding exists only in the dense Baseline layout — the compact CSR
  // stores none (EnvMat.BaselineAndOptimizedIdentical covers that side).
  auto cfg = ModelConfig::tiny();
  auto sys = small_copper();
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env, EnvMatKernel::Baseline);
  for (std::size_t i = 0; i < env.n_atoms; ++i) {
    const int cnt = env.count(i, 0);
    for (int k = cnt; k < env.nm; ++k) {
      EXPECT_EQ(env.atom_at(i, k), -1);
      for (int c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(env.rmat_row(i, k)[c], 0.0);
      for (int c = 0; c < 12; ++c) EXPECT_DOUBLE_EQ(env.deriv_row(i, k)[c], 0.0);
    }
  }
}

TEST(EnvMat, RowStructureMatchesDefinition) {
  // Row = s(r) * (1, x/r, y/r, z/r): check against a hand-computed pair.
  auto cfg = ModelConfig::tiny();
  md::Configuration sys;
  sys.box = md::Box(20, 20, 20);
  sys.atoms.mass_by_type = {1.0};
  sys.atoms.add({10, 10, 10}, 0);
  sys.atoms.add({12, 11, 10.5}, 0);
  md::NeighborList nl(cfg.rcut, 0.5);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);

  const Vec3 d{2.0, 1.0, 0.5};
  const double r = norm(d);
  const auto sw = switch_fn(r, cfg.rcut_smth, cfg.rcut);
  const double* row = env.rmat_at(env.block_begin(0, 0));
  EXPECT_NEAR(row[0], sw.s, 1e-14);
  EXPECT_NEAR(row[1], sw.s * d.x / r, 1e-14);
  EXPECT_NEAR(row[2], sw.s * d.y / r, 1e-14);
  EXPECT_NEAR(row[3], sw.s * d.z / r, 1e-14);
}

TEST(EnvMat, DerivMatchesFiniteDifference) {
  auto cfg = ModelConfig::tiny();
  md::Configuration sys;
  sys.box = md::Box(20, 20, 20);
  sys.atoms.mass_by_type = {1.0};
  sys.atoms.add({10, 10, 10}, 0);
  sys.atoms.add({11.1, 10.7, 9.4}, 0);
  md::NeighborList nl(cfg.rcut, 0.5);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);

  const double h = 1e-6;
  for (int l = 0; l < 3; ++l) {
    auto perturbed = [&](double sign) {
      md::Configuration p = sys;
      p.atoms.pos[1][l] += sign * h;
      EnvMat e;
      md::NeighborList nl2(cfg.rcut, 0.5);
      nl2.build(p.box, p.atoms.pos);
      build_env_mat(cfg, p.box, p.atoms, nl2, e);
      return e;
    };
    EnvMat ep = perturbed(1.0), em = perturbed(-1.0);
    for (int c = 0; c < 4; ++c) {
      const double fd = (ep.rmat_at(ep.block_begin(0, 0))[c] -
                         em.rmat_at(em.block_begin(0, 0))[c]) /
                        (2 * h);
      EXPECT_NEAR(env.deriv_at(env.block_begin(0, 0))[3 * c + l], fd, 1e-7)
          << "c=" << c << " l=" << l;
    }
  }
}

TEST(EnvMat, OverflowCountsDroppedNeighbors) {
  auto cfg = ModelConfig::tiny();
  cfg.sel = {4};  // far fewer slots than FCC neighbors
  auto sys = small_copper();
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);
  EXPECT_GT(env.overflow, 0u);
  for (std::size_t i = 0; i < env.n_atoms; ++i) EXPECT_LE(env.count(i, 0), 4);
}

TEST(EnvMat, TypeBlocksRespectNeighborTypes) {
  auto cfg = ModelConfig::tiny(2);
  auto sys = md::make_water(1, 1, 1, 3);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);
  for (std::size_t i = 0; i < env.n_atoms; ++i)
    for (int t = 0; t < 2; ++t) {
      const std::size_t base = env.block_begin(i, t);
      for (int k = 0; k < env.count(i, t); ++k) {
        const int j = env.atom_of(base + static_cast<std::size_t>(k));
        ASSERT_GE(j, 0);
        EXPECT_EQ(sys.atoms.type[static_cast<std::size_t>(j)], t);
      }
    }
}

TEST(EnvMat, PaddingFractionReflectsReservedSlack) {
  // Copper config reserves 500 slots but ambient FCC fills ~135 — the
  // padding fraction that drives the paper's redundancy-removal speedup.
  auto cfg = ModelConfig::copper();
  auto sys = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.05, 9);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);
  EXPECT_GT(env.padding_fraction(), 0.6);
  EXPECT_LT(env.padding_fraction(), 0.8);
}

}  // namespace
}  // namespace dp::core
