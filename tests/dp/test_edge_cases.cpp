// Edge cases and randomized property fuzzing across the inference paths:
// isolated atoms (zero neighbors), single-atom systems, sparse gases, and
// random (configuration, model) draws all satisfying force-gradient
// consistency.
#include <gtest/gtest.h>

#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "tab/compressed_model.hpp"

namespace dp {
namespace {

using core::BaselineDP;
using core::DPModel;
using core::ModelConfig;
using fused::FusedDP;
using tab::TabulatedDP;
using tab::TabulationSpec;

TEST(EdgeCases, IsolatedAtomHasFiniteEnergyAndZeroForce) {
  DPModel model(ModelConfig::tiny(), 1);
  TabulatedDP tab(model, {0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01});
  md::Configuration sys;
  sys.box = md::Box(50, 50, 50);
  sys.atoms.mass_by_type = {63.546};
  sys.atoms.add({25, 25, 25}, 0);

  for (int which = 0; which < 2; ++which) {
    std::unique_ptr<md::ForceField> ff;
    if (which == 0)
      ff = std::make_unique<BaselineDP>(model);
    else
      ff = std::make_unique<FusedDP>(tab);
    md::NeighborList nl(ff->cutoff(), 1.0);
    nl.build(sys.box, sys.atoms.pos);
    const auto res = ff->compute(sys.box, sys.atoms, nl);
    EXPECT_TRUE(std::isfinite(res.energy)) << "path " << which;
    EXPECT_NEAR(norm(sys.atoms.force[0]), 0.0, 1e-12) << "path " << which;
  }
}

TEST(EdgeCases, IsolatedAtomEnergiesAgreeAcrossPaths) {
  // Zero neighbors: baseline feeds the all-padded environment through the
  // net; fused skips everything. Both must produce the same fit(D = 0).
  DPModel model(ModelConfig::tiny(), 2);
  TabulatedDP tab(model, {0.0, TabulatedDP::s_max(model.config(), 0.9), 0.005});
  md::Configuration sys;
  sys.box = md::Box(50, 50, 50);
  sys.atoms.mass_by_type = {1.0};
  sys.atoms.add({10, 10, 10}, 0);
  BaselineDP base(model);
  FusedDP fusedp(tab);
  md::NeighborList nl(base.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  md::Atoms a = sys.atoms, b = sys.atoms;
  EXPECT_NEAR(base.compute(sys.box, a, nl).energy, fusedp.compute(sys.box, b, nl).energy,
              1e-12);
}

TEST(EdgeCases, TwoDistantAtomsDoNotInteract) {
  DPModel model(ModelConfig::tiny(), 3);
  TabulatedDP tab(model, {0.0, TabulatedDP::s_max(model.config(), 0.9), 0.01});
  FusedDP ff(tab);
  md::Configuration sys;
  sys.box = md::Box(60, 60, 60);
  sys.atoms.mass_by_type = {1.0};
  sys.atoms.add({10, 10, 10}, 0);
  sys.atoms.add({40, 40, 40}, 0);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  const double e2 = ff.compute(sys.box, sys.atoms, nl).energy;

  md::Configuration lone = sys;
  lone.atoms.resize(1);
  md::NeighborList nl1(ff.cutoff(), 1.0);
  nl1.build(lone.box, lone.atoms.pos);
  const double e1 = ff.compute(lone.box, lone.atoms, nl1).energy;
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(EdgeCases, NeighborOverflowIsCountedAndBounded) {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.sel = {3};  // far fewer slots than real neighbors
  DPModel model(cfg, 4);
  TabulatedDP tab(model, {0.0, TabulatedDP::s_max(cfg, 0.9), 0.01});
  FusedDP ff(tab);
  auto sys = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.05, 5);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  const auto res = ff.compute(sys.box, sys.atoms, nl);
  EXPECT_TRUE(std::isfinite(res.energy));
  EXPECT_GT(ff.env().overflow, 0u);
  // With the distance sort, exactly the 3 closest neighbors fill each block.
  for (std::size_t i = 0; i < sys.atoms.size(); ++i)
    EXPECT_EQ(ff.env().count(i, 0), 3);
}

// Randomized property fuzz: arbitrary small gases and model shapes must all
// pass the force-gradient check on every path.
class FuzzProperties : public ::testing::TestWithParam<int> {};

TEST_P(FuzzProperties, ForcesMatchGradientOnRandomSystems) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);

  ModelConfig cfg = ModelConfig::tiny(1 + static_cast<int>(rng.uniform_index(2)));
  cfg.rcut = rng.uniform(3.0, 5.0);
  cfg.rcut_smth = rng.uniform(0.3, 0.8) * cfg.rcut;
  const auto d1 = static_cast<std::size_t>(2 + rng.uniform_index(4));
  cfg.embed_widths = {d1, 2 * d1, 4 * d1};
  cfg.axis_neuron = 1 + rng.uniform_index(4);
  DPModel model(cfg, seed * 13 + 1);
  TabulatedDP tab(model, {0.0, TabulatedDP::s_max(cfg, 0.8), 0.01});

  // Random gas with a minimum-distance floor (keeps s in the table domain).
  md::Configuration sys;
  const double L = 22.0;
  sys.box = md::Box(L, L, L);
  sys.atoms.mass_by_type.assign(static_cast<std::size_t>(cfg.ntypes), 10.0);
  const int n = 20 + static_cast<int>(rng.uniform_index(30));
  for (int i = 0; i < n; ++i) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Vec3 r{rng.uniform(0, L), rng.uniform(0, L), rng.uniform(0, L)};
      bool ok = true;
      for (const auto& p : sys.atoms.pos)
        if (norm(sys.box.min_image(p - r)) < 1.0) ok = false;
      if (!ok) continue;
      sys.atoms.add(r, static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(cfg.ntypes))));
      break;
    }
  }

  FusedDP ff(tab);
  md::NeighborList nl(ff.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  ff.compute(sys.box, sys.atoms, nl);
  const auto forces = sys.atoms.force;

  Vec3 total{};
  for (const auto& f : forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-10);

  const double h = 1e-6;
  const std::size_t probe = rng.uniform_index(sys.atoms.size());
  for (int d = 0; d < 3; ++d) {
    const Vec3 pos0 = sys.atoms.pos[probe];
    sys.atoms.pos[probe][d] = pos0[d] + h;
    const double ep = ff.compute(sys.box, sys.atoms, nl).energy;
    sys.atoms.pos[probe][d] = pos0[d] - h;
    const double em = ff.compute(sys.box, sys.atoms, nl).energy;
    sys.atoms.pos[probe] = pos0;
    EXPECT_NEAR(forces[probe][d], -(ep - em) / (2 * h), 5e-6)
        << "seed " << seed << " atom " << probe << " dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDraws, FuzzProperties, ::testing::Range(1, 13));

}  // namespace
}  // namespace dp
