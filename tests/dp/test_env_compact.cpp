// Compact CSR environment matrix: parity against the dense baseline,
// bitwise determinism across thread counts, and the allocation-free steady
// state of the persistent workspaces (ISSUE: compact env + deterministic
// parallel force accumulation).
#include <omp.h>

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dp/baseline_model.hpp"
#include "dp/env_mat.hpp"
#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::core {
namespace {

/// Restores the OpenMP max-thread setting on scope exit so in-test
/// omp_set_num_threads sweeps don't leak into sibling tests.
struct OmpThreadGuard {
  int saved = omp_get_max_threads();
  ~OmpThreadGuard() { omp_set_num_threads(saved); }
};

void expect_model_parity(const ModelConfig& cfg, const md::Configuration& sys,
                         std::uint64_t seed) {
  DPModel model(cfg, seed);
  BaselineDP dense(model, EnvMatKernel::Baseline);
  BaselineDP compact(model, EnvMatKernel::Optimized);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);

  md::Atoms atoms_a = sys.atoms;
  md::Atoms atoms_b = sys.atoms;
  const auto ra = dense.compute(sys.box, atoms_a, nl);
  const auto rb = compact.compute(sys.box, atoms_b, nl);
  ASSERT_FALSE(dense.env().compact());
  ASSERT_TRUE(compact.env().compact());
  EXPECT_NEAR(ra.energy, rb.energy, 1e-12 * static_cast<double>(sys.atoms.size()));
  for (std::size_t i = 0; i < atoms_a.size(); ++i)
    EXPECT_LT(norm(atoms_a.force[i] - atoms_b.force[i]), 1e-12) << "atom " << i;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(ra.virial(r, c), rb.virial(r, c), 1e-10);
}

TEST(EnvCompact, MatchesDenseBaselineWater) {
  expect_model_parity(ModelConfig::tiny(2), md::make_water(1, 1, 1, 11), 11);
}

TEST(EnvCompact, MatchesDenseBaselineCopperLikePadding) {
  // Copper-like slot reservation: sel far above the ambient neighbor count,
  // so the dense layout is mostly padding (the paper's redundant zeros).
  ModelConfig cfg = ModelConfig::tiny();
  cfg.sel = {200};
  auto sys = md::make_fcc(3, 3, 3, 3.634, 63.546, 0.1, 12);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat env;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env);
  ASSERT_GT(env.padding_fraction(), 0.5);
  ASSERT_LT(env.compact_bytes(), env.dense_bytes() / 2);
  expect_model_parity(cfg, sys, 12);
}

TEST(EnvCompact, BuildBitwiseIdenticalAcrossThreadCounts) {
  OmpThreadGuard guard;
  auto cfg = ModelConfig::tiny(2);
  auto sys = md::make_water(1, 1, 1, 13);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);

  omp_set_num_threads(1);
  EnvMat ref;
  build_env_mat(cfg, sys.box, sys.atoms, nl, ref);
  for (int t : {2, 8}) {
    omp_set_num_threads(t);
    EnvMat env;
    build_env_mat(cfg, sys.box, sys.atoms, nl, env);
    ASSERT_EQ(env.stored_slots(), ref.stored_slots()) << "threads=" << t;
    EXPECT_EQ(env.block_start, ref.block_start) << "threads=" << t;
    EXPECT_EQ(env.slot_atom, ref.slot_atom) << "threads=" << t;
    EXPECT_EQ(0, std::memcmp(env.rmat.data(), ref.rmat.data(),
                             ref.stored_slots() * 4 * sizeof(double)))
        << "threads=" << t;
    EXPECT_EQ(0, std::memcmp(env.deriv.data(), ref.deriv.data(),
                             ref.stored_slots() * 12 * sizeof(double)))
        << "threads=" << t;
    EXPECT_EQ(0, std::memcmp(env.diff.data(), ref.diff.data(),
                             ref.stored_slots() * 3 * sizeof(double)))
        << "threads=" << t;
  }
}

TEST(EnvCompact, ForcesBitwiseIdenticalAcrossThreadCounts) {
  // The full compact pipeline — parallel env build, fused descriptor,
  // 16-lane force/virial fold — must be byte-identical at any thread count.
  OmpThreadGuard guard;
  auto cfg = ModelConfig::tiny(2);
  DPModel model(cfg, 14);
  auto sys = md::make_water(1, 1, 1, 14);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.005};
  tab::TabulatedDP tab(model, spec);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);

  omp_set_num_threads(1);
  fused::FusedDP ref_ff(tab);
  md::Atoms ref_atoms = sys.atoms;
  const auto ref = ref_ff.compute(sys.box, ref_atoms, nl);
  for (int t : {2, 8}) {
    omp_set_num_threads(t);
    fused::FusedDP ff(tab);
    md::Atoms atoms = sys.atoms;
    const auto out = ff.compute(sys.box, atoms, nl);
    EXPECT_EQ(0, std::memcmp(atoms.force.data(), ref_atoms.force.data(),
                             atoms.size() * sizeof(Vec3)))
        << "threads=" << t;
    EXPECT_EQ(0, std::memcmp(&out.virial, &ref.virial, sizeof(Mat3))) << "threads=" << t;
  }
}

TEST(EnvCompact, SteadyStateIsAllocationFree) {
  // After the first call sizes the grow-only workspaces, repeated steps must
  // not move a single byte of capacity — in the env build, the model scratch,
  // and the force-fold lanes alike.
  auto cfg = ModelConfig::tiny(2);
  DPModel model(cfg, 15);
  auto sys = md::make_water(1, 1, 1, 15);
  tab::TabulationSpec spec{0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.005};
  tab::TabulatedDP tab(model, spec);
  fused::FusedDP ff(tab);
  BaselineDP base(model);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);

  md::Atoms atoms = sys.atoms;
  ff.compute(sys.box, atoms, nl);
  base.compute(sys.box, atoms, nl);
  const std::size_t fused_bytes = ff.workspace_bytes();
  const std::size_t base_bytes = base.workspace_bytes();
  ASSERT_GT(fused_bytes, 0u);
  ASSERT_GT(base_bytes, 0u);
  for (int step = 0; step < 4; ++step) {
    ff.compute(sys.box, atoms, nl);
    base.compute(sys.box, atoms, nl);
    EXPECT_EQ(ff.workspace_bytes(), fused_bytes) << "step " << step;
    EXPECT_EQ(base.workspace_bytes(), base_bytes) << "step " << step;
  }

  // The standalone build with a caller-owned workspace plateaus too.
  EnvMat env;
  EnvMatWorkspace ws;
  build_env_mat(cfg, sys.box, sys.atoms, nl, env, ws);
  const std::size_t env_bytes = env.storage_bytes() + ws.bytes();
  ASSERT_GT(env_bytes, 0u);
  for (int step = 0; step < 3; ++step) {
    build_env_mat(cfg, sys.box, sys.atoms, nl, env, ws);
    EXPECT_EQ(env.storage_bytes() + ws.bytes(), env_bytes) << "step " << step;
  }
}

TEST(EnvCompact, FootprintAccountingConsistent) {
  auto cfg = ModelConfig::tiny(2);
  auto sys = md::make_water(1, 1, 1, 16);
  md::NeighborList nl(cfg.rcut, 1.0);
  nl.build(sys.box, sys.atoms.pos);
  EnvMat dense, compact;
  build_env_mat(cfg, sys.box, sys.atoms, nl, dense, EnvMatKernel::Baseline);
  build_env_mat(cfg, sys.box, sys.atoms, nl, compact, EnvMatKernel::Optimized);
  // Both layouts report the same dense footprint (what the paper's baseline
  // would occupy); only the compact one stores less than it.
  EXPECT_EQ(dense.dense_bytes(), compact.dense_bytes());
  EXPECT_LT(compact.compact_bytes(), compact.dense_bytes());
  EXPECT_EQ(dense.filled_slots(), compact.filled_slots());
  EXPECT_EQ(compact.stored_slots(), compact.filled_slots());
}

}  // namespace
}  // namespace dp::core
