#include "dp/descriptor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace dp::core {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

TEST(Descriptor, ForwardMatchesNaive) {
  const std::size_t m = 12, ms = 5;
  auto a = random_vec(4 * m, 1);
  std::vector<double> d(ms * m);
  descriptor_forward(a.data(), m, ms, d.data());
  for (std::size_t p = 0; p < ms; ++p)
    for (std::size_t q = 0; q < m; ++q) {
      double want = 0;
      for (std::size_t c = 0; c < 4; ++c) want += a[c * m + p] * a[c * m + q];
      EXPECT_NEAR(d[p * m + q], want, 1e-13);
    }
}

TEST(Descriptor, FullSubMatrixIsSymmetric) {
  // With m_sub == m, D = A^T A is symmetric positive semidefinite.
  const std::size_t m = 8;
  auto a = random_vec(4 * m, 2);
  std::vector<double> d(m * m);
  descriptor_forward(a.data(), m, m, d.data());
  for (std::size_t p = 0; p < m; ++p) {
    EXPECT_GE(d[p * m + p], 0.0);
    for (std::size_t q = 0; q < m; ++q) EXPECT_NEAR(d[p * m + q], d[q * m + p], 1e-13);
  }
}

TEST(Descriptor, BackwardMatchesFiniteDifference) {
  const std::size_t m = 10, ms = 4;
  auto a = random_vec(4 * m, 3);
  auto g_d = random_vec(ms * m, 4);

  std::vector<double> g_a(4 * m);
  descriptor_backward(a.data(), g_d.data(), m, ms, g_a.data());

  auto objective = [&](const std::vector<double>& amat) {
    std::vector<double> d(ms * m);
    descriptor_forward(amat.data(), m, ms, d.data());
    double j = 0;
    for (std::size_t k = 0; k < d.size(); ++k) j += g_d[k] * d[k];
    return j;
  };

  const double h = 1e-6;
  for (std::size_t k = 0; k < 4 * m; ++k) {
    auto ap = a, am = a;
    ap[k] += h;
    am[k] -= h;
    EXPECT_NEAR(g_a[k], (objective(ap) - objective(am)) / (2 * h), 1e-7) << "k=" << k;
  }
}

TEST(Descriptor, ZeroAGivesZeroDescriptorAndGradient) {
  const std::size_t m = 6, ms = 3;
  std::vector<double> a(4 * m, 0.0), d(ms * m, 99.0), g_d(ms * m, 1.0), g_a(4 * m, 99.0);
  descriptor_forward(a.data(), m, ms, d.data());
  for (double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
  descriptor_backward(a.data(), g_d.data(), m, ms, g_a.data());
  for (double v : g_a) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Descriptor, RotationInvarianceOfA) {
  // D depends on A only through A^T A over the 3 directional rows + the
  // scalar row; rotating the 3 directional rows of A leaves D unchanged.
  const std::size_t m = 8, ms = 4;
  auto a = random_vec(4 * m, 5);
  Rng rng(6);
  const Mat3 R = rotation(rng.unit_vector(), 0.83);

  std::vector<double> a_rot(4 * m);
  // Row 0 (the s-row) is invariant; rows 1..3 rotate as a vector.
  for (std::size_t q = 0; q < m; ++q) {
    a_rot[q] = a[q];
    Vec3 v{a[1 * m + q], a[2 * m + q], a[3 * m + q]};
    Vec3 w = R * v;
    a_rot[1 * m + q] = w.x;
    a_rot[2 * m + q] = w.y;
    a_rot[3 * m + q] = w.z;
  }
  std::vector<double> d0(ms * m), d1(ms * m);
  descriptor_forward(a.data(), m, ms, d0.data());
  descriptor_forward(a_rot.data(), m, ms, d1.data());
  for (std::size_t k = 0; k < d0.size(); ++k) EXPECT_NEAR(d0[k], d1[k], 1e-12);
}

}  // namespace
}  // namespace dp::core
