#include "dp/baseline_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/simulation.hpp"

namespace dp::core {
namespace {

md::Configuration jittered_copper() {
  return md::make_fcc(4, 4, 4, 3.634, 63.546, /*jitter=*/0.1, 21);
}

/// An isolated cluster in a huge box: lets us test rotations, which periodic
/// boundaries would otherwise break.
md::Configuration random_cluster(int n, int ntypes, std::uint64_t seed) {
  md::Configuration sys;
  sys.box = md::Box(100, 100, 100);
  sys.atoms.mass_by_type.assign(static_cast<std::size_t>(ntypes), 10.0);
  Rng rng(seed);
  const Vec3 center{50, 50, 50};
  for (int i = 0; i < n; ++i) {
    // Rejection-free: uniform in a ball of radius 4, min spacing enforced.
    for (;;) {
      Vec3 r = center + rng.unit_vector() * (4.0 * std::cbrt(rng.uniform()));
      bool ok = true;
      for (const auto& p : sys.atoms.pos)
        if (norm(p - r) < 0.8) ok = false;
      if (ok) {
        sys.atoms.add(r, static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(ntypes))));
        break;
      }
    }
  }
  return sys;
}

struct Evaluated {
  double energy;
  std::vector<Vec3> forces;
  Mat3 virial;
  std::vector<double> atom_e;
};

Evaluated evaluate(const DPModel& model, md::Configuration& sys, double skin = 1.0) {
  BaselineDP ff(model);
  md::NeighborList nl(ff.cutoff(), skin);
  nl.build(sys.box, sys.atoms.pos);
  auto res = ff.compute(sys.box, sys.atoms, nl);
  return {res.energy, sys.atoms.force, res.virial, ff.atom_energies()};
}

TEST(BaselineDP, Deterministic) {
  DPModel model(ModelConfig::tiny(), 5);
  auto sys = jittered_copper();
  auto a = evaluate(model, sys);
  auto b = evaluate(model, sys);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  for (std::size_t i = 0; i < a.forces.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(a.forces[i] - b.forces[i]), 0.0);
}

TEST(BaselineDP, EnergyIsSumOfAtomEnergies) {
  DPModel model(ModelConfig::tiny(), 5);
  auto sys = jittered_copper();
  auto r = evaluate(model, sys);
  const double sum = std::accumulate(r.atom_e.begin(), r.atom_e.end(), 0.0);
  EXPECT_NEAR(r.energy, sum, 1e-10);
}

TEST(BaselineDP, ForcesAreNegativeGradient) {
  DPModel model(ModelConfig::tiny(), 6);
  auto sys = jittered_copper();
  BaselineDP ff(model);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  ff.compute(sys.box, sys.atoms, nl);
  const auto forces = sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 13ul, 100ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = sys.atoms.pos[i];
      sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(BaselineDP, ForcesAreNegativeGradientTwoTypes) {
  ModelConfig cfg = ModelConfig::tiny(2);
  DPModel model(cfg, 7);
  auto sys = md::make_water(1, 1, 1, 8);
  BaselineDP ff(model);
  md::NeighborList nl(ff.cutoff(), 0.5);
  nl.build(sys.box, sys.atoms.pos);
  ff.compute(sys.box, sys.atoms, nl);
  const auto forces = sys.atoms.force;

  const double h = 1e-6;
  for (std::size_t i : {0ul, 1ul, 50ul}) {
    for (int d = 0; d < 3; ++d) {
      const Vec3 pos0 = sys.atoms.pos[i];
      sys.atoms.pos[i][d] = pos0[d] + h;
      const double ep = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i][d] = pos0[d] - h;
      const double em = ff.compute(sys.box, sys.atoms, nl).energy;
      sys.atoms.pos[i] = pos0;
      EXPECT_NEAR(forces[i][d], -(ep - em) / (2 * h), 2e-6) << "atom " << i << " dim " << d;
    }
  }
}

TEST(BaselineDP, NewtonThirdLaw) {
  DPModel model(ModelConfig::tiny(), 8);
  auto sys = jittered_copper();
  auto r = evaluate(model, sys);
  Vec3 total{};
  for (const auto& f : r.forces) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST(BaselineDP, TranslationInvariance) {
  DPModel model(ModelConfig::tiny(), 9);
  auto sys = jittered_copper();
  auto base = evaluate(model, sys);

  md::Configuration shifted = sys;
  const Vec3 t{1.37, -0.52, 2.9};
  for (auto& r : shifted.atoms.pos) r = shifted.box.wrap(r + t);
  auto moved = evaluate(model, shifted);

  EXPECT_NEAR(base.energy, moved.energy, 1e-9);
  for (std::size_t i = 0; i < base.forces.size(); ++i)
    EXPECT_NEAR(norm(base.forces[i] - moved.forces[i]), 0.0, 1e-9);
}

TEST(BaselineDP, PermutationInvariance) {
  DPModel model(ModelConfig::tiny(2), 10);
  auto sys = random_cluster(24, 2, 11);
  auto base = evaluate(model, sys);

  // Reverse atom order (a permutation that also mixes the types).
  md::Configuration perm = sys;
  std::reverse(perm.atoms.pos.begin(), perm.atoms.pos.end());
  std::reverse(perm.atoms.type.begin(), perm.atoms.type.end());
  auto permuted = evaluate(model, perm);

  EXPECT_NEAR(base.energy, permuted.energy, 1e-9);
  const std::size_t n = sys.atoms.size();
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(norm(base.forces[i] - permuted.forces[n - 1 - i]), 0.0, 1e-9);
}

TEST(BaselineDP, RotationInvarianceAndCovariantForces) {
  DPModel model(ModelConfig::tiny(), 12);
  auto sys = random_cluster(20, 1, 13);
  auto base = evaluate(model, sys);

  Rng rng(14);
  const Mat3 R = rotation(rng.unit_vector(), 1.234);
  const Vec3 c{50, 50, 50};
  md::Configuration rotated = sys;
  for (auto& r : rotated.atoms.pos) r = c + R * (r - c);
  auto rot = evaluate(model, rotated);

  EXPECT_NEAR(base.energy, rot.energy, 1e-9);
  for (std::size_t i = 0; i < base.forces.size(); ++i) {
    const Vec3 expected = R * base.forces[i];
    EXPECT_NEAR(norm(expected - rot.forces[i]), 0.0, 1e-9) << "atom " << i;
  }
}

TEST(BaselineDP, VirialMatchesStrainDerivative) {
  DPModel model(ModelConfig::tiny(), 15);
  auto sys = jittered_copper();
  auto base = evaluate(model, sys, 1.5);

  const double h = 1e-6;
  auto energy_scaled = [&](double s) {
    md::Configuration scaled = sys;
    scaled.box = md::Box(sys.box.lengths() * s);
    for (auto& r : scaled.atoms.pos) r *= s;
    return evaluate(model, scaled, 1.5).energy;
  };
  const double dE_ds = (energy_scaled(1 + h) - energy_scaled(1 - h)) / (2 * h);
  EXPECT_NEAR(base.virial.trace(), -dE_ds, 1e-4 * std::max(1.0, std::abs(dE_ds)));
}

TEST(BaselineDP, EnvKernelChoiceDoesNotChangeResults) {
  DPModel model(ModelConfig::tiny(), 16);
  auto sys = jittered_copper();
  BaselineDP opt(model, EnvMatKernel::Optimized);
  BaselineDP ref(model, EnvMatKernel::Baseline);
  md::NeighborList nl(opt.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  const double e_opt = opt.compute(sys.box, sys.atoms, nl).energy;
  const double e_ref = ref.compute(sys.box, sys.atoms, nl).energy;
  EXPECT_DOUBLE_EQ(e_opt, e_ref);
}

TEST(BaselineDP, MaterializesEmbeddingMatrix) {
  // The baseline's defining trait: G (n x N_m x M) lives in memory.
  DPModel model(ModelConfig::tiny(), 17);
  auto sys = jittered_copper();
  BaselineDP ff(model);
  md::NeighborList nl(ff.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  ff.compute(sys.box, sys.atoms, nl);
  const auto& cfg = model.config();
  const std::size_t g_bytes =
      sys.atoms.size() * static_cast<std::size_t>(cfg.nm()) * cfg.m() * sizeof(double);
  EXPECT_GE(ff.embedding_bytes(), g_bytes);
}

TEST(BaselineDP, NveEnergyConservation) {
  // The full pipeline (env mat + nets + backward) must integrate stably.
  DPModel model(ModelConfig::tiny(), 18);
  auto sys = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.02, 19);
  BaselineDP ff(model);
  md::SimulationConfig sc;
  sc.dt = 0.0005;
  sc.steps = 60;
  sc.temperature = 100.0;
  sc.thermo_every = 10;
  sc.skin = 1.0;
  md::Simulation sim(sys, ff, sc);
  const auto& trace = sim.run();
  const double e0 = trace.front().total();
  double scale = std::max(1.0, std::abs(e0));
  for (const auto& s : trace) EXPECT_NEAR(s.total(), e0, 1e-5 * scale) << "step " << s.step;
}

}  // namespace
}  // namespace dp::core
