// Property sweep over every inference path: the four implementations
// (baseline network, tabulated-unfused, fused, mixed-precision) and both
// physical system shapes must all satisfy the DP model's invariants.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "fused/mixed_model.hpp"
#include "md/lattice.hpp"
#include "tab/compressed_model.hpp"

namespace dp {
namespace {

enum class PathKind { Baseline, Compressed, Fused, Mixed };

struct PathCase {
  PathKind kind;
  int ntypes;
  const char* name;
};

std::ostream& operator<<(std::ostream& os, const PathCase& c) { return os << c.name; }

class PathProperties : public ::testing::TestWithParam<PathCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    model_ = std::make_unique<core::DPModel>(core::ModelConfig::tiny(p.ntypes), 17);
    tab_ = std::make_unique<tab::TabulatedDP>(
        *model_, tab::TabulationSpec{
                     0.0, tab::TabulatedDP::s_max(model_->config(), 0.9), 0.01});
    switch (p.kind) {
      case PathKind::Baseline:
        ff_ = std::make_unique<core::BaselineDP>(*model_);
        break;
      case PathKind::Compressed:
        ff_ = std::make_unique<tab::CompressedDP>(*tab_);
        break;
      case PathKind::Fused:
        ff_ = std::make_unique<fused::FusedDP>(*tab_);
        break;
      case PathKind::Mixed:
        ff_ = std::make_unique<fused::MixedFusedDP>(*tab_);
        break;
    }
    sys_ = p.ntypes == 1 ? md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, 23)
                         : md::make_water(1, 1, 1, 23);
  }

  /// Tolerances: the mixed path carries single-precision embedding noise.
  double tol() const { return GetParam().kind == PathKind::Mixed ? 5e-5 : 1e-8; }
  double fd_tol() const { return GetParam().kind == PathKind::Mixed ? 5e-4 : 2e-6; }

  md::ForceResult evaluate(md::Configuration& sys) {
    md::NeighborList nl(ff_->cutoff(), 1.0);
    nl.build(sys.box, sys.atoms.pos);
    return ff_->compute(sys.box, sys.atoms, nl);
  }

  std::unique_ptr<core::DPModel> model_;
  std::unique_ptr<tab::TabulatedDP> tab_;
  std::unique_ptr<md::ForceField> ff_;
  md::Configuration sys_;
};

TEST_P(PathProperties, Deterministic) {
  md::Configuration a = sys_, b = sys_;
  const double ea = evaluate(a).energy;
  const double eb = evaluate(b).energy;
  EXPECT_DOUBLE_EQ(ea, eb);
  for (std::size_t i = 0; i < a.atoms.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(a.atoms.force[i] - b.atoms.force[i]), 0.0);
}

TEST_P(PathProperties, NewtonThirdLaw) {
  evaluate(sys_);
  Vec3 total{};
  for (const auto& f : sys_.atoms.force) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
}

TEST_P(PathProperties, TranslationInvariance) {
  const double e0 = evaluate(sys_).energy;
  const auto f0 = sys_.atoms.force;
  md::Configuration moved = sys_;
  for (auto& r : moved.atoms.pos) r = moved.box.wrap(r + Vec3{2.13, -0.7, 1.01});
  const double e1 = evaluate(moved).energy;
  EXPECT_NEAR(e0, e1, tol() * static_cast<double>(sys_.atoms.size()));
  for (std::size_t i = 0; i < f0.size(); ++i)
    EXPECT_NEAR(norm(f0[i] - moved.atoms.force[i]), 0.0, tol());
}

TEST_P(PathProperties, ForcesAreNegativeGradient) {
  md::NeighborList nl(ff_->cutoff(), 1.0);
  nl.build(sys_.box, sys_.atoms.pos);
  ff_->compute(sys_.box, sys_.atoms, nl);
  const auto forces = sys_.atoms.force;

  const double h = 1e-5;
  const std::size_t probe = sys_.atoms.size() / 2;
  for (int d = 0; d < 3; ++d) {
    const Vec3 pos0 = sys_.atoms.pos[probe];
    sys_.atoms.pos[probe][d] = pos0[d] + h;
    const double ep = ff_->compute(sys_.box, sys_.atoms, nl).energy;
    sys_.atoms.pos[probe][d] = pos0[d] - h;
    const double em = ff_->compute(sys_.box, sys_.atoms, nl).energy;
    sys_.atoms.pos[probe] = pos0;
    EXPECT_NEAR(forces[probe][d], -(ep - em) / (2 * h), fd_tol()) << "dim " << d;
  }
}

TEST_P(PathProperties, EnergyIsExtensive) {
  // Doubling a periodic system along x doubles the energy (each atom keeps
  // an identical environment).
  if (GetParam().ntypes != 1) GTEST_SKIP() << "uses the FCC generator";
  md::Configuration small = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.0, 9);
  md::Configuration big = md::make_fcc(8, 4, 4, 3.634, 63.546, 0.0, 9);
  const double e_small = evaluate(small).energy;
  const double e_big = evaluate(big).energy;
  EXPECT_NEAR(e_big, 2.0 * e_small, 1e-6 * std::abs(e_big) + 1e-6);
}

TEST_P(PathProperties, CutoffLocality) {
  // Moving one atom far outside another's cutoff leaves that other atom's
  // force unchanged.
  md::Configuration base = md::make_fcc(6, 6, 6, 3.634, 63.546, 0.05, 31);
  if (GetParam().ntypes != 1) GTEST_SKIP() << "uses the FCC generator";
  evaluate(base);
  // Probe pair: atoms 0 and the one farthest from it.
  const Vec3 r0 = base.atoms.pos[0];
  std::size_t far = 1;
  double dmax = 0;
  for (std::size_t j = 1; j < base.atoms.size(); ++j) {
    const double d = norm(base.box.min_image(base.atoms.pos[j] - r0));
    if (d > dmax) {
      dmax = d;
      far = j;
    }
  }
  ASSERT_GT(dmax, 2.0 * ff_->cutoff());
  const Vec3 f0_before = base.atoms.force[0];
  md::Configuration moved = base;
  moved.atoms.pos[far] = moved.box.wrap(moved.atoms.pos[far] + Vec3{0.5, 0.3, -0.2});
  evaluate(moved);
  EXPECT_NEAR(norm(moved.atoms.force[0] - f0_before), 0.0, tol());
}

INSTANTIATE_TEST_SUITE_P(
    AllPaths, PathProperties,
    ::testing::Values(PathCase{PathKind::Baseline, 1, "baseline_cu"},
                      PathCase{PathKind::Baseline, 2, "baseline_h2o"},
                      PathCase{PathKind::Compressed, 1, "compressed_cu"},
                      PathCase{PathKind::Compressed, 2, "compressed_h2o"},
                      PathCase{PathKind::Fused, 1, "fused_cu"},
                      PathCase{PathKind::Fused, 2, "fused_h2o"},
                      PathCase{PathKind::Mixed, 1, "mixed_cu"},
                      PathCase{PathKind::Mixed, 2, "mixed_h2o"}),
    [](const ::testing::TestParamInfo<PathCase>& info) { return info.param.name; });

}  // namespace
}  // namespace dp
