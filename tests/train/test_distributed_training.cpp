#include "train/distributed_trainer.hpp"

#include <gtest/gtest.h>

namespace dp::train {
namespace {

using core::DPModel;
using core::ModelConfig;

ModelConfig tcfg() {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.rcut = 4.0;
  return cfg;
}

double max_weight_diff(const DPModel& a, const DPModel& b) {
  double m = 0;
  for (int t = 0; t < a.config().ntypes; ++t) {
    for (std::size_t l = 0; l < a.embedding(t).layers().size(); ++l) {
      const auto& wa = a.embedding(t).layers()[l].weights();
      const auto& wb = b.embedding(t).layers()[l].weights();
      for (std::size_t k = 0; k < wa.size(); ++k)
        m = std::max(m, std::abs(wa.data()[k] - wb.data()[k]));
    }
    for (std::size_t l = 0; l < a.fitting(t).layers().size(); ++l) {
      const auto& wa = a.fitting(t).layers()[l].weights();
      const auto& wb = b.fitting(t).layers()[l].weights();
      for (std::size_t k = 0; k < wa.size(); ++k)
        m = std::max(m, std::abs(wa.data()[k] - wb.data()[k]));
    }
  }
  return m;
}

TEST(GradsFlatView, RoundTrip) {
  DPModel model(tcfg(), 1);
  ModelGrads g;
  g.init(model);
  // Fill with recognizable values via a real gradient pass.
  auto frame = Dataset::lj_copper(1, 2, 0.1, 2).frames[0];
  md::NeighborList nl(model.config().rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);
  g.zero();
  energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, 1.0, &g);

  const auto flat = g.to_vector();
  EXPECT_GT(flat.size(), 100u);
  ModelGrads g2;
  g2.init(model);
  g2.from_vector(flat);
  EXPECT_DOUBLE_EQ(g2.squared_norm(), g.squared_norm());
  ModelGrads diff = g2;
  diff.add_scaled(g, -1.0);
  EXPECT_DOUBLE_EQ(diff.squared_norm(), 0.0);
}

TEST(GradsFlatView, SizeMismatchRejected) {
  DPModel model(tcfg(), 3);
  ModelGrads g;
  g.init(model);
  EXPECT_THROW(g.from_vector(std::vector<double>(7)), Error);
}

TEST(DistributedTraining, TwoRanksMatchOneRankToReassociation) {
  // Shard-then-sum reassociates the floating-point accumulation, so ranks
  // agree with the serial run to rounding (a few ulps per step).
  auto data = Dataset::lj_copper(8, 2, 0.12, 4);
  TrainConfig tc;
  tc.learning_rate = 3e-3;

  DPModel m1(tcfg(), 5);
  DPModel m2(tcfg(), 5);
  const auto r1 = train_distributed(1, m1, data, tc, 5);
  const auto r2 = train_distributed(2, m2, data, tc, 5);
  EXPECT_LT(max_weight_diff(m1, m2), 1e-10);
  for (int e = 0; e < 5; ++e) EXPECT_NEAR(r1.epoch_rmse[e], r2.epoch_rmse[e], 1e-12);
}

TEST(DistributedTraining, FourRanksMatchToRounding) {
  // > 2 contributions: the allreduce's accumulation order varies, so only
  // floating-point reassociation noise is allowed.
  auto data = Dataset::lj_copper(8, 2, 0.12, 6);
  TrainConfig tc;
  tc.learning_rate = 3e-3;
  DPModel m1(tcfg(), 7);
  DPModel m4(tcfg(), 7);
  train_distributed(1, m1, data, tc, 4);
  train_distributed(4, m4, data, tc, 4);
  EXPECT_LT(max_weight_diff(m1, m4), 1e-8);
}

TEST(DistributedTraining, LossDecreases) {
  auto data = Dataset::lj_copper(12, 2, 0.12, 8);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  DPModel model(tcfg(), 9);
  const auto r = train_distributed(4, model, data, tc, 15);
  EXPECT_LT(r.epoch_rmse.back(), 0.5 * r.epoch_rmse.front());
  EXPECT_GT(r.comm.reductions, 0u);
}

TEST(DistributedTraining, TrainedModelIsCopiedOut) {
  auto data = Dataset::lj_copper(6, 2, 0.12, 10);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  DPModel model(tcfg(), 11);
  const DPModel before = model;
  train_distributed(2, model, data, tc, 3);
  EXPECT_GT(max_weight_diff(before, model), 0.0);
}

TEST(DistributedTraining, ForceLossSupported) {
  // The shared frame-gradient path carries the force term into the
  // data-parallel trainer too.
  auto data = Dataset::lj_copper(8, 2, 0.12, 12);
  TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.pref_f = 100.0;
  DPModel model(tcfg(), 13);
  EnergyTrainer probe(model, tc);  // for evaluate_forces only
  const double f_before = probe.evaluate_forces(data);
  // Full-batch: one optimizer step per epoch, so give it a real budget.
  train_distributed(4, model, data, tc, 40);
  EnergyTrainer probe_after(model, tc);
  EXPECT_LT(probe_after.evaluate_forces(data), 0.9 * f_before);
}

}  // namespace
}  // namespace dp::train
