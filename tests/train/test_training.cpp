#include <gtest/gtest.h>

#include <cmath>

#include "dp/baseline_model.hpp"
#include "fused/se_r_model.hpp"
#include "train/trainer.hpp"

namespace dp::train {
namespace {

using core::DPModel;
using core::ModelConfig;

ModelConfig train_cfg() {
  ModelConfig cfg = ModelConfig::tiny();
  cfg.rcut = 4.0;
  return cfg;
}

TEST(Dataset, LjCopperFramesAreLabelled) {
  auto data = Dataset::lj_copper(6, 3, 0.1, 1);
  ASSERT_EQ(data.size(), 6u);
  for (const auto& f : data.frames) {
    EXPECT_EQ(f.sys.atoms.size(), 108u);
    EXPECT_LT(f.energy, 0.0);  // bound LJ crystal
  }
  // Different frames have different energies (jitter varies).
  EXPECT_NE(data.frames[0].energy, data.frames[1].energy);
}

TEST(Dataset, EamCopperFramesAreLabelled) {
  auto data = Dataset::eam_copper(4, 2, 0.1, 2);
  ASSERT_EQ(data.size(), 4u);
  for (const auto& f : data.frames) EXPECT_LT(f.energy, -10.0);  // cohesive eV scale
  EXPECT_NE(data.frames[0].energy, data.frames[1].energy);
}

TEST(Trainer, LearnsEamLabelsToo) {
  ModelConfig cfg = train_cfg();
  cfg.rcut = 4.5;
  DPModel model(cfg, 31);
  auto data = Dataset::eam_copper(10, 2, 0.12, 32);
  TrainConfig tc;
  tc.learning_rate = 3e-3;
  EnergyTrainer trainer(model, tc);
  const double before = trainer.evaluate(data);
  for (int e = 0; e < 10; ++e) trainer.epoch(data);
  EXPECT_LT(trainer.evaluate(data), 0.7 * before);
}

TEST(Dataset, AngularCopperLabels) {
  auto data = Dataset::angular_copper(4, 2, 0.3, 9);
  ASSERT_EQ(data.size(), 4u);
  for (const auto& f : data.frames) EXPECT_GT(f.energy, 0.0);  // squared terms
  EXPECT_NE(data.frames[0].energy, data.frames[1].energy);
}

TEST(Dataset, HoldoutSplit) {
  auto data = Dataset::lj_copper(10, 2, 0.1, 2);
  auto held = data.split_holdout(5);
  EXPECT_EQ(held.size(), 2u);
  EXPECT_EQ(data.size(), 8u);
}

TEST(Dataset, EnergyStats) {
  auto data = Dataset::lj_copper(8, 2, 0.1, 3);
  double mean = 0, stddev = 0;
  data.energy_stats(mean, stddev);
  EXPECT_LT(mean, 0.0);
  EXPECT_GT(stddev, 0.0);
}

TEST(ModelGrads, InitMirrorsModelShapes) {
  DPModel model(train_cfg(), 4);
  ModelGrads grads;
  grads.init(model);
  ASSERT_EQ(grads.embed.size(), 1u);
  ASSERT_EQ(grads.embed[0].size(), model.embedding(0).layers().size());
  for (std::size_t l = 0; l < grads.embed[0].size(); ++l) {
    EXPECT_EQ(grads.embed[0][l].w.rows(), model.embedding(0).layers()[l].in_dim());
    EXPECT_EQ(grads.embed[0][l].w.cols(), model.embedding(0).layers()[l].out_dim());
  }
  EXPECT_DOUBLE_EQ(grads.squared_norm(), 0.0);
}

TEST(Gradients, MatchFiniteDifferenceOnWeights) {
  // The core gradcheck: dE/dW from reverse mode vs central differences for
  // probes in every network of the model.
  DPModel model(train_cfg(), 5);
  auto frame = Dataset::lj_copper(1, 2, 0.12, 6).frames[0];
  md::NeighborList nl(model.config().rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);

  ModelGrads grads;
  grads.init(model);
  grads.zero();
  energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, 1.0, &grads);

  const double h = 1e-6;
  auto energy_of = [&] {
    return energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl);
  };

  // Probe a few weights in each embedding layer and each fitting layer.
  for (std::size_t l = 0; l < model.embedding(0).layers().size(); ++l) {
    auto& w = model.embedding(0).layers()[l].weights();
    for (std::size_t k : {std::size_t{0}, w.size() / 2, w.size() - 1}) {
      const double w0 = w.data()[k];
      w.data()[k] = w0 + h;
      const double ep = energy_of();
      w.data()[k] = w0 - h;
      const double em = energy_of();
      w.data()[k] = w0;
      EXPECT_NEAR(grads.embed[0][l].w.data()[k], (ep - em) / (2 * h), 2e-5)
          << "embed layer " << l << " k " << k;
    }
  }
  for (std::size_t l = 0; l < model.fitting(0).layers().size(); ++l) {
    auto& w = model.fitting(0).layers()[l].weights();
    for (std::size_t k : {std::size_t{0}, w.size() / 2, w.size() - 1}) {
      const double w0 = w.data()[k];
      w.data()[k] = w0 + h;
      const double ep = energy_of();
      w.data()[k] = w0 - h;
      const double em = energy_of();
      w.data()[k] = w0;
      EXPECT_NEAR(grads.fit[0][l].w.data()[k], (ep - em) / (2 * h), 2e-5)
          << "fit layer " << l << " k " << k;
    }
    auto& b = model.fitting(0).layers()[l].bias();
    const double b0 = b[0];
    b[0] = b0 + h;
    const double ep = energy_of();
    b[0] = b0 - h;
    const double em = energy_of();
    b[0] = b0;
    EXPECT_NEAR(grads.fit[0][l].b[0], (ep - em) / (2 * h), 2e-5) << "fit bias " << l;
  }
}

TEST(Gradients, SeedScalesLinearly) {
  DPModel model(train_cfg(), 7);
  auto frame = Dataset::lj_copper(1, 2, 0.1, 8).frames[0];
  md::NeighborList nl(model.config().rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);
  ModelGrads g1, g3;
  g1.init(model);
  g3.init(model);
  g1.zero();
  g3.zero();
  energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, 1.0, &g1);
  energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, 3.0, &g3);
  EXPECT_NEAR(g3.squared_norm(), 9.0 * g1.squared_norm(),
              1e-6 * std::max(1.0, g3.squared_norm()));
}

TEST(Trainer, LossDecreasesOnLjData) {
  DPModel model(train_cfg(), 9);
  auto data = Dataset::lj_copper(12, 2, 0.12, 10);
  TrainConfig tc;
  tc.learning_rate = 3e-3;
  tc.batch_size = 4;
  EnergyTrainer trainer(model, tc);
  const double before = trainer.evaluate(data);
  double after = before;
  for (int e = 0; e < 12; ++e) after = trainer.epoch(data);
  EXPECT_LT(trainer.evaluate(data), 0.6 * before)
      << "before " << before << " after " << after;
  EXPECT_GT(trainer.steps_taken(), 0);
}

TEST(Trainer, GeneralizesToHeldOutFrames) {
  DPModel model(train_cfg(), 11);
  auto data = Dataset::lj_copper(16, 2, 0.12, 12);
  auto held = data.split_holdout(4);
  TrainConfig tc;
  tc.learning_rate = 3e-3;
  EnergyTrainer trainer(model, tc);
  const double before = trainer.evaluate(held);
  for (int e = 0; e < 12; ++e) trainer.epoch(data);
  EXPECT_LT(trainer.evaluate(held), before);
}

TEST(Gradients, SeRMatchesFiniteDifferenceOnWeights) {
  ModelConfig cfg = train_cfg();
  cfg.descriptor = core::DescriptorKind::SeR;
  DPModel model(cfg, 21);
  auto frame = Dataset::lj_copper(1, 2, 0.12, 22).frames[0];
  md::NeighborList nl(cfg.rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);

  ModelGrads grads;
  grads.init(model);
  grads.zero();
  energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, 1.0, &grads);

  const double h = 1e-6;
  auto energy_of = [&] {
    return energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl);
  };
  for (std::size_t l = 0; l < model.embedding(0).layers().size(); ++l) {
    auto& w = model.embedding(0).layers()[l].weights();
    for (std::size_t k : {std::size_t{0}, w.size() - 1}) {
      const double w0 = w.data()[k];
      w.data()[k] = w0 + h;
      const double ep = energy_of();
      w.data()[k] = w0 - h;
      const double em = energy_of();
      w.data()[k] = w0;
      EXPECT_NEAR(grads.embed[0][l].w.data()[k], (ep - em) / (2 * h), 2e-5)
          << "se_r embed layer " << l << " k " << k;
    }
  }
}

TEST(Gradients, SeRForwardMatchesFusedInference) {
  // The training forward (network, all slots) and the fused inference
  // (tables + analytic padding) implement the same descriptor.
  ModelConfig cfg = train_cfg();
  cfg.descriptor = core::DescriptorKind::SeR;
  DPModel model(cfg, 23);
  tab::TabulatedDP tab(model,
                       {0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.002});
  fused::SeRFusedDP ff(tab);
  auto frame = Dataset::lj_copper(1, 2, 0.1, 24).frames[0];
  md::NeighborList nl(cfg.rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);
  const double e_train = energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl);
  md::Atoms atoms = frame.sys.atoms;
  const double e_fused = ff.compute(frame.sys.box, atoms, nl).energy;
  EXPECT_NEAR(e_train, e_fused, 1e-7 * static_cast<double>(atoms.size()));
}

TEST(Trainer, SeRLossDecreases) {
  ModelConfig cfg = train_cfg();
  cfg.descriptor = core::DescriptorKind::SeR;
  DPModel model(cfg, 25);
  auto data = Dataset::lj_copper(10, 2, 0.12, 26);
  TrainConfig tc;
  tc.learning_rate = 3e-3;
  EnergyTrainer trainer(model, tc);
  const double before = trainer.evaluate(data);
  for (int e = 0; e < 10; ++e) trainer.epoch(data);
  EXPECT_LT(trainer.evaluate(data), 0.7 * before);
}

namespace {
// Full-loss value of one frame at the current weights (for gradchecks).
double frame_loss(core::DPModel& model, const Frame& frame, double pe, double pf) {
  md::NeighborList nl(model.config().rcut, 0.5);
  nl.build(frame.sys.box, frame.sys.atoms.pos);
  core::BaselineDP ff(model);
  md::Atoms atoms = frame.sys.atoms;
  const double e = ff.compute(frame.sys.box, atoms, nl).energy;
  const double n = static_cast<double>(atoms.size());
  double loss = pe * std::pow((e - frame.energy) / n, 2);
  double f2 = 0;
  for (std::size_t i = 0; i < atoms.size(); ++i)
    f2 += norm2(atoms.force[i] - frame.forces[i]);
  return loss + pf / (3.0 * n) * f2;
}
}  // namespace

TEST(ForceLoss, GradientMatchesFiniteDifferenceOfLoss) {
  // Run one single-frame "epoch" with pure force loss and learning rate so
  // small the parameters barely move; then check that the applied update
  // direction agrees with -dL/dtheta from direct finite differences.
  ModelConfig cfg = train_cfg();
  DPModel model(cfg, 41);
  auto data = Dataset::lj_copper(1, 2, 0.12, 42);
  const Frame& frame = data.frames[0];

  // FD of the loss wrt a probe weight.
  auto& w = model.embedding(0).layers()[1].weights();
  const std::size_t k = 5;
  const double h = 1e-6;
  const double w0 = w.data()[k];
  w.data()[k] = w0 + h;
  const double lp = frame_loss(model, frame, 0.0, 1.0);
  w.data()[k] = w0 - h;
  const double lm = frame_loss(model, frame, 0.0, 1.0);
  w.data()[k] = w0;
  const double fd = (lp - lm) / (2 * h);

  // One plain-SGD-like Adam step with epsilon large enough to make the
  // update proportional to the raw gradient would be fragile; instead call
  // the epoch and verify the weight moved OPPOSITE to the loss gradient.
  TrainConfig tc;
  tc.pref_e = 0.0;
  tc.pref_f = 1.0;
  tc.batch_size = 1;
  tc.learning_rate = 1e-4;
  EnergyTrainer trainer(model, tc);
  trainer.epoch(data);
  const double moved = w.data()[k] - w0;
  ASSERT_NE(fd, 0.0);
  EXPECT_LT(moved * fd, 0.0) << "update must descend the force loss";
}

TEST(ForceLoss, TrainingReducesForceRmse) {
  // The point of the force term: energy-only training leaves forces loose;
  // adding pref_f drives them down.
  ModelConfig cfg = train_cfg();
  DPModel model(cfg, 43);
  auto data = Dataset::lj_copper(8, 2, 0.12, 44);
  TrainConfig tc;
  tc.pref_e = 1.0;
  tc.pref_f = 100.0;
  tc.learning_rate = 5e-3;
  EnergyTrainer trainer(model, tc);
  const double f_before = trainer.evaluate_forces(data);
  for (int e = 0; e < 15; ++e) trainer.epoch(data);
  const double f_after = trainer.evaluate_forces(data);
  // Convergence is slow for a from-scratch net, but must be clearly real.
  EXPECT_LT(f_after, 0.85 * f_before) << f_before << " -> " << f_after;
}

TEST(ForceLoss, BeatsEnergyOnlyOnForces) {
  ModelConfig cfg = train_cfg();
  auto data = Dataset::lj_copper(8, 2, 0.12, 45);

  DPModel model_e(cfg, 46);
  TrainConfig tce;
  tce.learning_rate = 3e-3;
  EnergyTrainer trainer_e(model_e, tce);
  for (int e = 0; e < 8; ++e) trainer_e.epoch(data);

  DPModel model_f(cfg, 46);  // identical init
  TrainConfig tcf = tce;
  tcf.pref_f = 10.0;
  EnergyTrainer trainer_f(model_f, tcf);
  for (int e = 0; e < 8; ++e) trainer_f.epoch(data);

  EXPECT_LT(trainer_f.evaluate_forces(data), trainer_e.evaluate_forces(data));
}

TEST(ForceLoss, EvaluateForcesRequiresLabels) {
  ModelConfig cfg = train_cfg();
  DPModel model(cfg, 47);
  Dataset data = Dataset::lj_copper(2, 2, 0.1, 48);
  for (auto& f : data.frames) f.forces.clear();
  EnergyTrainer trainer(model, {});
  EXPECT_THROW(trainer.evaluate_forces(data), Error);
}

}  // namespace
}  // namespace dp::train
