#include "train/deviation.hpp"

#include <gtest/gtest.h>

#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::train {
namespace {

using core::DPModel;
using core::ModelConfig;

struct Ensemble {
  std::vector<std::unique_ptr<DPModel>> models;
  std::vector<std::unique_ptr<tab::TabulatedDP>> tabs;
  std::vector<std::unique_ptr<fused::FusedDP>> ffs;
  std::vector<md::ForceField*> raw;

  explicit Ensemble(const std::vector<std::uint64_t>& seeds) {
    const ModelConfig cfg = ModelConfig::tiny();
    for (auto seed : seeds) {
      models.push_back(std::make_unique<DPModel>(cfg, seed));
      tabs.push_back(std::make_unique<tab::TabulatedDP>(
          *models.back(),
          tab::TabulationSpec{0.0, tab::TabulatedDP::s_max(cfg, 0.9), 0.01}));
      ffs.push_back(std::make_unique<fused::FusedDP>(*tabs.back()));
      raw.push_back(ffs.back().get());
    }
  }
};

TEST(ModelDeviation, IdenticalModelsHaveZeroDeviation) {
  Ensemble e({7, 7, 7});  // same seed three times
  auto sys = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, 1);
  md::NeighborList nl(e.raw[0]->cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  ModelDeviation dev(e.raw);
  const auto r = dev.evaluate(sys.box, sys.atoms, nl);
  EXPECT_NEAR(r.max_force_dev, 0.0, 1e-12);
  EXPECT_NEAR(r.energy_dev, 0.0, 1e-14);
}

TEST(ModelDeviation, DifferentSeedsDisagree) {
  Ensemble e({1, 2, 3, 4});
  auto sys = md::make_fcc(4, 4, 4, 3.634, 63.546, 0.1, 2);
  md::NeighborList nl(e.raw[0]->cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  ModelDeviation dev(e.raw);
  const auto r = dev.evaluate(sys.box, sys.atoms, nl);
  EXPECT_GT(r.max_force_dev, 1e-4);
  EXPECT_GE(r.max_force_dev, r.mean_force_dev);
  EXPECT_GT(r.energy_dev, 0.0);
}

TEST(ModelDeviation, CandidateSelectionWindow) {
  DeviationResult r;
  r.max_force_dev = 0.15;
  EXPECT_TRUE(ModelDeviation::is_candidate(r, 0.1, 0.25));   // inside window
  EXPECT_FALSE(ModelDeviation::is_candidate(r, 0.2, 0.25));  // too accurate
  EXPECT_FALSE(ModelDeviation::is_candidate(r, 0.05, 0.1));  // too divergent
}

TEST(ModelDeviation, RequiresAtLeastTwoModels) {
  Ensemble e({1});
  EXPECT_THROW(ModelDeviation({e.raw[0]}), Error);
}

TEST(ModelDeviation, EvaluationLeavesInputUntouched) {
  Ensemble e({5, 6});
  auto sys = md::make_fcc(3, 3, 3, 3.634, 63.546, 0.05, 3);
  md::NeighborList nl(e.raw[0]->cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  const auto pos_before = sys.atoms.pos;
  ModelDeviation dev(e.raw);
  dev.evaluate(sys.box, sys.atoms, nl);
  for (std::size_t i = 0; i < pos_before.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(sys.atoms.pos[i] - pos_before[i]), 0.0);
}

}  // namespace
}  // namespace dp::train
