#!/usr/bin/env python3
"""Compile-gate driver for common/thread_annotations.hpp (ctest).

Two modes:

  positive  The fixture must compile warning-free with -Werror under the
            host compiler. Under GCC this is the proof that every DP_*
            macro is a no-op; under clang the thread-safety flags are added
            and the fixture must still be clean.

  negative  The fixture contains an intentional lock-discipline violation
            and must FAIL to compile under clang with -Wthread-safety
            -Werror. GCC cannot run the analysis, so the test exits 77
            (ctest SKIP_RETURN_CODE) there instead of passing vacuously.

Exit codes: 0 pass, 1 fail, 77 skipped (non-clang host in negative mode).
"""

import argparse
import subprocess
import sys

THREAD_SAFETY_FLAGS = ["-Wthread-safety", "-Wthread-safety-beta"]


def is_clang(cxx: str) -> bool:
    try:
        out = subprocess.run(
            [cxx, "--version"], capture_output=True, text=True, timeout=60
        )
    except OSError:
        return False
    return "clang" in out.stdout.lower()


def compile_fixture(cxx: str, src_dir: str, fixture: str, extra_flags):
    cmd = [
        cxx,
        "-std=c++20",
        "-fsyntax-only",
        "-Wall",
        "-Wextra",
        "-Werror",
        "-I",
        src_dir,
        *extra_flags,
        fixture,
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    return proc.returncode, " ".join(cmd), proc.stderr


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cxx", required=True, help="host C++ compiler")
    ap.add_argument("--src", required=True, help="repo src/ include root")
    ap.add_argument("--fixture", required=True, help="fixture translation unit")
    ap.add_argument("--mode", required=True, choices=["positive", "negative"])
    args = ap.parse_args()

    clang = is_clang(args.cxx)
    extra = THREAD_SAFETY_FLAGS if clang else []

    if args.mode == "positive":
        rc, cmd, err = compile_fixture(args.cxx, args.src, args.fixture, extra)
        if rc != 0:
            print(f"FAIL: positive fixture did not compile\n  {cmd}\n{err}")
            return 1
        print(f"ok: fixture compiled cleanly ({'clang' if clang else 'non-clang'} host)")
        return 0

    # negative
    if not clang:
        print("skip: host compiler is not clang; -Wthread-safety unavailable")
        return 77
    rc, cmd, err = compile_fixture(args.cxx, args.src, args.fixture, extra)
    if rc == 0:
        print(f"FAIL: negative fixture compiled — the gate is not firing\n  {cmd}")
        return 1
    if "thread-safety" not in err and "guarded by" not in err:
        print(f"FAIL: fixture was rejected, but not by the thread-safety analysis\n{err}")
        return 1
    print("ok: unguarded read rejected by -Wthread-safety as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
