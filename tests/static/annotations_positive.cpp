// Positive compile-gate fixture for common/thread_annotations.hpp.
//
// Must compile warning-free under ANY host compiler with -Werror:
//   * under GCC every DP_* macro expands to nothing and the wrappers are
//     plain veneers over the std primitives (the "no-op under GCC" half of
//     the gate);
//   * under clang with -Wthread-safety -Wthread-safety-beta this is a
//     well-annotated program: every guarded access is inside a scoped
//     capability or a DP_REQUIRES function, waits are explicit loops.
//
// Compiled by tests/static/annotation_compile_test.py (ctest:
// thread_annotations_noop); it is never linked into a binary.
#include "common/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void push(int v) {
    {
      dp::MutexLock lock(mu_);
      pending_ = v;
      has_value_ = true;
    }
    cv_.notify_one();
  }

  int pop() {
    dp::MutexUniqueLock lock(mu_);
    while (!has_value_) cv_.wait(lock);
    has_value_ = false;
    return pending_;
  }

  bool try_peek(int& out) {
    if (!mu_.try_lock()) return false;
    out = has_value_ ? pending_ : 0;
    mu_.unlock();
    return true;
  }

  int unsynchronized_size() const DP_REQUIRES(mu_) { return has_value_ ? 1 : 0; }

  int locked_size() DP_EXCLUDES(mu_) {
    dp::MutexLock lock(mu_);
    return unsynchronized_size();
  }

 private:
  mutable dp::Mutex mu_;
  dp::CondVar cv_;
  int pending_ DP_GUARDED_BY(mu_) = 0;
  bool has_value_ DP_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Queue q;
  q.push(1);
  int peeked = 0;
  (void)q.try_peek(peeked);
  const int v = q.pop();
  return v == 1 && q.locked_size() == 0 ? 0 : 1;
}
