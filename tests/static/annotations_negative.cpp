// Negative compile-gate fixture: proves the thread-safety gate actually
// fires. `racy_read` touches a DP_GUARDED_BY field with no lock held, so
// under clang with -Wthread-safety -Werror this translation unit MUST fail
// to compile (-Werror=thread-safety-analysis). Under GCC the annotations
// are no-ops and it compiles — the driver skips the test there (exit 77).
//
// Compiled (expected: rejected) by tests/static/annotation_compile_test.py
// (ctest: thread_annotations_negcompile); never linked into a binary.
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    dp::MutexLock lock(mu_);
    ++n_;
  }

  // BUG (intentional): reads n_ without holding mu_.
  long racy_read() const { return n_; }

 private:
  mutable dp::Mutex mu_;
  long n_ DP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.racy_read() == 1 ? 0 : 1;
}
