#include "nn/dense_layer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dp::nn {
namespace {

DenseLayer make_layer(std::size_t in, std::size_t out, Activation act, Shortcut sc,
                      std::uint64_t seed) {
  DenseLayer layer(in, out, act, sc);
  Rng rng(seed);
  layer.init_random(rng);
  return layer;
}

TEST(DenseLayer, ForwardRowMatchesManualTanh) {
  auto layer = make_layer(3, 2, Activation::Tanh, Shortcut::None, 1);
  std::vector<double> x{0.3, -0.7, 1.1}, y(2);
  layer.forward_row(x.data(), y.data());
  for (std::size_t j = 0; j < 2; ++j) {
    double u = layer.bias()[j];
    for (std::size_t p = 0; p < 3; ++p) u += x[p] * layer.weights()(p, j);
    EXPECT_NEAR(y[j], std::tanh(u), 1e-14);
  }
}

TEST(DenseLayer, IdentityShortcutAddsInput) {
  auto plain = make_layer(4, 4, Activation::Tanh, Shortcut::None, 2);
  DenseLayer res(4, 4, Activation::Tanh, Shortcut::Identity);
  res.weights() = plain.weights();
  res.bias() = plain.bias();
  std::vector<double> x{0.1, -0.2, 0.3, -0.4}, yp(4), yr(4);
  plain.forward_row(x.data(), yp.data());
  res.forward_row(x.data(), yr.data());
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(yr[j], yp[j] + x[j], 1e-14);
}

TEST(DenseLayer, ConcatShortcutDuplicatesInput) {
  auto plain = make_layer(3, 6, Activation::Tanh, Shortcut::None, 3);
  DenseLayer cc(3, 6, Activation::Tanh, Shortcut::Concat);
  cc.weights() = plain.weights();
  cc.bias() = plain.bias();
  std::vector<double> x{0.5, -0.6, 0.7}, yp(6), yc(6);
  plain.forward_row(x.data(), yp.data());
  cc.forward_row(x.data(), yc.data());
  for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(yc[j], yp[j] + x[j % 3], 1e-14);
}

TEST(DenseLayer, BatchMatchesRowByRow) {
  auto layer = make_layer(5, 10, Activation::Tanh, Shortcut::Concat, 4);
  Matrix x(7, 5);
  Rng rng(99);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  Matrix y;
  layer.forward_batch(x, y);
  std::vector<double> yr(10);
  for (std::size_t r = 0; r < 7; ++r) {
    layer.forward_row(x.row(r), yr.data());
    for (std::size_t j = 0; j < 10; ++j) EXPECT_NEAR(y(r, j), yr[j], 1e-13);
  }
}

// Finite-difference check of backward_row for all shortcut types.
void check_backward(Shortcut sc, std::size_t in, std::size_t out) {
  auto layer = make_layer(in, out, Activation::Tanh, sc, 5);
  Rng rng(7);
  std::vector<double> x(in), g_out(out);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : g_out) v = rng.uniform(-1, 1);

  std::vector<double> y(out), act(out), g_in(in);
  layer.forward_row(x.data(), y.data(), act.data());
  layer.backward_row(g_out.data(), act.data(), g_in.data());

  // scalar objective J = g_out . y(x); dJ/dx should equal g_in.
  const double h = 1e-6;
  for (std::size_t p = 0; p < in; ++p) {
    auto xp = x, xm = x;
    xp[p] += h;
    xm[p] -= h;
    std::vector<double> yp(out), ym(out);
    layer.forward_row(xp.data(), yp.data());
    layer.forward_row(xm.data(), ym.data());
    double jp = 0, jm = 0;
    for (std::size_t j = 0; j < out; ++j) {
      jp += g_out[j] * yp[j];
      jm += g_out[j] * ym[j];
    }
    EXPECT_NEAR(g_in[p], (jp - jm) / (2 * h), 1e-7) << "shortcut " << int(sc) << " p=" << p;
  }
}

TEST(DenseLayer, BackwardMatchesFiniteDifferenceNone) { check_backward(Shortcut::None, 6, 4); }
TEST(DenseLayer, BackwardMatchesFiniteDifferenceIdentity) {
  check_backward(Shortcut::Identity, 5, 5);
}
TEST(DenseLayer, BackwardMatchesFiniteDifferenceConcat) { check_backward(Shortcut::Concat, 4, 8); }

TEST(DenseLayer, JetFirstDerivativeMatchesFD) {
  // Chain two layers like the embedding net does and check d/ds by FD.
  auto l0 = make_layer(1, 4, Activation::Tanh, Shortcut::None, 8);
  auto l1 = make_layer(4, 8, Activation::Tanh, Shortcut::Concat, 9);
  auto eval = [&](double s, std::vector<double>& out) {
    std::vector<double> h0(4);
    l0.forward_row(&s, h0.data());
    out.resize(8);
    l1.forward_row(h0.data(), out.data());
  };
  auto jet = [&](double s, std::vector<double>& g, std::vector<double>& dg,
                 std::vector<double>& d2g) {
    std::vector<double> x{s}, dx{1.0}, d2x{0.0};
    std::vector<double> h(4), dh(4), d2h(4);
    l0.forward_jet(x.data(), dx.data(), d2x.data(), h.data(), dh.data(), d2h.data());
    g.resize(8);
    dg.resize(8);
    d2g.resize(8);
    l1.forward_jet(h.data(), dh.data(), d2h.data(), g.data(), dg.data(), d2g.data());
  };

  const double s = 0.37, h = 1e-5;
  std::vector<double> g, dg, d2g, yp, ym, y0;
  jet(s, g, dg, d2g);
  eval(s, y0);
  eval(s + h, yp);
  eval(s - h, ym);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(g[j], y0[j], 1e-13);
    EXPECT_NEAR(dg[j], (yp[j] - ym[j]) / (2 * h), 1e-8);
    EXPECT_NEAR(d2g[j], (yp[j] - 2 * y0[j] + ym[j]) / (h * h), 1e-4);
  }
}

TEST(DenseLayer, TabulatedActivationCloseToExact) {
  auto exact = make_layer(3, 5, Activation::Tanh, Shortcut::None, 10);
  DenseLayer tab(3, 5, Activation::TanhTabulated, Shortcut::None);
  tab.weights() = exact.weights();
  tab.bias() = exact.bias();
  std::vector<double> x{0.9, -1.4, 0.2}, ye(5), yt(5);
  exact.forward_row(x.data(), ye.data());
  tab.forward_row(x.data(), yt.data());
  for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(ye[j], yt[j], 1e-7);
}

TEST(DenseLayer, ConstructorValidatesShortcutShapes) {
  EXPECT_THROW(DenseLayer(3, 4, Activation::Tanh, Shortcut::Identity), Error);
  EXPECT_THROW(DenseLayer(3, 5, Activation::Tanh, Shortcut::Concat), Error);
  EXPECT_NO_THROW(DenseLayer(3, 6, Activation::Tanh, Shortcut::Concat));
}

}  // namespace
}  // namespace dp::nn
