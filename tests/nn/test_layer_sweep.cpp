// Parameterized layer sweep: forward/backward consistency for every
// (shape, activation, shortcut) combination used anywhere in the model.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nn/dense_layer.hpp"

namespace dp::nn {
namespace {

using LayerParam = std::tuple<int /*in*/, int /*out*/, Activation, Shortcut>;

class LayerSweep : public ::testing::TestWithParam<LayerParam> {
 protected:
  void SetUp() override {
    const auto [in, out, act, sc] = GetParam();
    layer_ = std::make_unique<DenseLayer>(static_cast<std::size_t>(in),
                                          static_cast<std::size_t>(out), act, sc);
    Rng rng(static_cast<std::uint64_t>(in * 100 + out));
    layer_->init_random(rng);
    x_.resize(static_cast<std::size_t>(in));
    g_out_.resize(static_cast<std::size_t>(out));
    Rng data_rng(99);
    for (auto& v : x_) v = data_rng.uniform(-1, 1);
    for (auto& v : g_out_) v = data_rng.uniform(-1, 1);
  }

  std::unique_ptr<DenseLayer> layer_;
  std::vector<double> x_, g_out_;
};

TEST_P(LayerSweep, BackwardMatchesFiniteDifference) {
  const std::size_t in = layer_->in_dim(), out = layer_->out_dim();
  std::vector<double> y(out), act(out), g_in(in);
  layer_->forward_row(x_.data(), y.data(), act.data());
  layer_->backward_row(g_out_.data(), act.data(), g_in.data());

  const double h = 1e-6;
  const double fd_tol = layer_->activation() == Activation::TanhTabulated ? 1e-4 : 1e-7;
  for (std::size_t p = 0; p < in; ++p) {
    auto xp = x_, xm = x_;
    xp[p] += h;
    xm[p] -= h;
    std::vector<double> yp(out), ym(out);
    layer_->forward_row(xp.data(), yp.data());
    layer_->forward_row(xm.data(), ym.data());
    double jp = 0, jm = 0;
    for (std::size_t j = 0; j < out; ++j) {
      jp += g_out_[j] * yp[j];
      jm += g_out_[j] * ym[j];
    }
    EXPECT_NEAR(g_in[p], (jp - jm) / (2 * h), fd_tol) << "p=" << p;
  }
}

TEST_P(LayerSweep, BatchMatchesRowPath) {
  const std::size_t in = layer_->in_dim(), out = layer_->out_dim();
  Matrix x(5, in);
  Rng rng(7);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  Matrix y;
  layer_->forward_batch(x, y);
  std::vector<double> row(out);
  for (std::size_t r = 0; r < 5; ++r) {
    layer_->forward_row(x.row(r), row.data());
    for (std::size_t j = 0; j < out; ++j) EXPECT_NEAR(y(r, j), row[j], 1e-13);
  }
}

TEST_P(LayerSweep, BatchBackwardMatchesRowBackward) {
  const std::size_t in = layer_->in_dim(), out = layer_->out_dim();
  Matrix x(4, in), y, acts;
  Rng rng(13);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.uniform(-1, 1);
  layer_->forward_batch_ws(x, y, acts);

  Matrix g_out(4, out), g_in;
  for (std::size_t i = 0; i < g_out.size(); ++i) g_out.data()[i] = rng.uniform(-1, 1);
  layer_->backward_batch(g_out, acts, g_in);

  std::vector<double> row_y(out), row_act(out), row_gin(in);
  for (std::size_t r = 0; r < 4; ++r) {
    layer_->forward_row(x.row(r), row_y.data(), row_act.data());
    layer_->backward_row(g_out.row(r), row_act.data(), row_gin.data());
    for (std::size_t p = 0; p < in; ++p) EXPECT_NEAR(g_in(r, p), row_gin[p], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesActivationsShortcuts, LayerSweep,
    ::testing::Values(
        LayerParam{1, 8, Activation::Tanh, Shortcut::None},       // embedding layer 0
        LayerParam{8, 16, Activation::Tanh, Shortcut::Concat},    // embedding growth
        LayerParam{16, 32, Activation::Tanh, Shortcut::Concat},   // embedding growth
        LayerParam{24, 12, Activation::Tanh, Shortcut::None},     // fitting layer 0
        LayerParam{12, 12, Activation::Tanh, Shortcut::Identity}, // fitting hidden
        LayerParam{12, 1, Activation::Linear, Shortcut::None},    // energy read-out
        LayerParam{8, 8, Activation::TanhTabulated, Shortcut::Identity},
        LayerParam{6, 12, Activation::TanhTabulated, Shortcut::Concat}),
    [](const ::testing::TestParamInfo<LayerParam>& info) {
      return "case" + std::to_string(info.index);
    });

}  // namespace
}  // namespace dp::nn
