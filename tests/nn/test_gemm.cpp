#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace dp::nn {
namespace {

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// O(mkn) reference with no blocking tricks.
std::vector<double> naive_gemm(const std::vector<double>& a, const std::vector<double>& b,
                               std::size_t m, std::size_t k, std::size_t n) {
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t p = 0; p < k; ++p) c[i * n + j] += a[i * k + p] * b[p * n + j];
  return c;
}

TEST(Gemm, MatchesNaive) {
  const std::size_t m = 13, k = 29, n = 17;
  auto a = random_vec(m * k, 1), b = random_vec(k * n, 2);
  auto want = naive_gemm(a, b, m, k, n);
  std::vector<double> c(m * n, 99.0);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-12);
}

TEST(Gemm, AccumulateAddsToExisting) {
  const std::size_t m = 4, k = 6, n = 5;
  auto a = random_vec(m * k, 3), b = random_vec(k * n, 4);
  auto want = naive_gemm(a, b, m, k, n);
  std::vector<double> c(m * n, 1.0);
  gemm_acc(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i] + 1.0, 1e-12);
}

TEST(Gemm, TransposedAMatchesNaive) {
  // C = A^T B with A stored k x m.
  const std::size_t m = 4, k = 50, n = 16;
  auto at = random_vec(k * m, 5);  // k x m
  auto b = random_vec(k * n, 6);
  std::vector<double> want(m * n, 0.0);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) want[i * n + j] += at[p * m + i] * b[p * n + j];
  std::vector<double> c(m * n);
  gemm_tn(at.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-12);
}

TEST(Gemm, TransposedBMatchesNaive) {
  const std::size_t m = 7, k = 9, n = 11;
  auto a = random_vec(m * k, 7);
  auto bt = random_vec(n * k, 8);  // n x k
  std::vector<double> want(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t p = 0; p < k; ++p) want[i * n + j] += a[i * k + p] * bt[j * k + p];
  std::vector<double> c(m * n);
  gemm_nt(a.data(), bt.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-12);
}

TEST(Affine, MatchesManual) {
  const std::size_t k = 5, n = 3;
  auto x = random_vec(k, 9), w = random_vec(k * n, 10), b = random_vec(n, 11);
  std::vector<double> y(n);
  affine(x.data(), w.data(), b.data(), y.data(), k, n);
  for (std::size_t j = 0; j < n; ++j) {
    double want = b[j];
    for (std::size_t p = 0; p < k; ++p) want += x[p] * w[p * n + j];
    EXPECT_NEAR(y[j], want, 1e-12);
  }
}

TEST(Affine, NullBiasMeansZero) {
  const std::size_t k = 4, n = 2;
  auto x = random_vec(k, 12), w = random_vec(k * n, 13);
  std::vector<double> y(n, 5.0);
  affine(x.data(), w.data(), nullptr, y.data(), k, n);
  for (std::size_t j = 0; j < n; ++j) {
    double want = 0.0;
    for (std::size_t p = 0; p < k; ++p) want += x[p] * w[p * n + j];
    EXPECT_NEAR(y[j], want, 1e-12);
  }
}

TEST(GemvT, IsTransposeOfAffine) {
  // gemv_t computes g W^T; check <affine(x), g> == <x, gemv_t(g)> (adjoint).
  const std::size_t k = 8, n = 6;
  auto x = random_vec(k, 14), w = random_vec(k * n, 15), g = random_vec(n, 16);
  std::vector<double> y(n);
  affine(x.data(), w.data(), nullptr, y.data(), k, n);
  std::vector<double> gt(k);
  gemv_t(g.data(), w.data(), gt.data(), k, n);
  double lhs = 0, rhs = 0;
  for (std::size_t j = 0; j < n; ++j) lhs += y[j] * g[j];
  for (std::size_t p = 0; p < k; ++p) rhs += x[p] * gt[p];
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST(Gemm, DegenerateSizes) {
  // 1x1 everything.
  double a = 2.0, b = 3.0, c = 0.0;
  gemm(&a, &b, &c, 1, 1, 1);
  EXPECT_DOUBLE_EQ(c, 6.0);
}

}  // namespace
}  // namespace dp::nn
