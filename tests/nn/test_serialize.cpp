#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

namespace dp::nn {
namespace {

TEST(Serialize, EmbeddingRoundTrip) {
  EmbeddingNet net({4, 8, 16});
  Rng rng(1);
  net.init_random(rng);

  std::stringstream ss;
  save(ss, net);
  EmbeddingNet loaded = load_embedding(ss);

  std::vector<double> a(16), b(16);
  for (double s : {0.0, 0.3, 1.7}) {
    net.eval(s, a.data());
    loaded.eval(s, b.data());
    for (std::size_t j = 0; j < 16; ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
  }
}

TEST(Serialize, FittingRoundTrip) {
  FittingNet net(12, {20, 20, 20});
  Rng rng(2);
  net.init_random(rng);

  std::stringstream ss;
  save(ss, net);
  FittingNet loaded = load_fitting(ss);

  FittingNet::Workspace ws;
  std::vector<double> d(12);
  for (std::size_t i = 0; i < 12; ++i) d[i] = 0.1 * static_cast<double>(i) - 0.5;
  EXPECT_DOUBLE_EQ(net.forward(d.data(), ws), loaded.forward(d.data(), ws));
}

TEST(Serialize, FileRoundTrip) {
  EmbeddingNet e({4, 8});
  FittingNet f(8, {10, 10});
  Rng rng(3);
  e.init_random(rng);
  f.init_random(rng);

  const std::string path = ::testing::TempDir() + "/dp_model_test.bin";
  save_to_file(path, e, f);

  EmbeddingNet e2;
  FittingNet f2;
  load_from_file(path, e2, f2);

  std::vector<double> a(8), b(8);
  e.eval(0.42, a.data());
  e2.eval(0.42, b.data());
  for (std::size_t j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);

  FittingNet::Workspace ws;
  std::vector<double> d(8, 0.2);
  EXPECT_DOUBLE_EQ(f.forward(d.data(), ws), f2.forward(d.data(), ws));
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss;
  ss.write("not a model at all, definitely", 30);
  EXPECT_THROW(load_embedding(ss), Error);
}

TEST(Serialize, TruncatedStreamRejected) {
  EmbeddingNet net({4, 8});
  Rng rng(4);
  net.init_random(rng);
  std::stringstream ss;
  save(ss, net);
  std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_embedding(cut), Error);
}

TEST(Serialize, MissingFileThrows) {
  EmbeddingNet e;
  FittingNet f;
  EXPECT_THROW(load_from_file("/nonexistent/path/model.bin", e, f), Error);
}

}  // namespace
}  // namespace dp::nn
