#include "nn/fitting_net.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dp::nn {
namespace {

FittingNet make_net(std::size_t in, std::vector<std::size_t> hidden, std::uint64_t seed) {
  FittingNet net(in, hidden);
  Rng rng(seed);
  net.init_random(rng);
  return net;
}

TEST(FittingNet, StructureMatchesDeePMD) {
  auto net = make_net(32, {24, 24, 24}, 1);
  ASSERT_EQ(net.layers().size(), 4u);
  EXPECT_EQ(net.layers()[0].shortcut(), Shortcut::None);      // 32 -> 24
  EXPECT_EQ(net.layers()[1].shortcut(), Shortcut::Identity);  // 24 -> 24
  EXPECT_EQ(net.layers()[2].shortcut(), Shortcut::Identity);
  EXPECT_EQ(net.layers()[3].activation(), Activation::Linear);
  EXPECT_EQ(net.layers()[3].out_dim(), 1u);
}

TEST(FittingNet, ForwardIsDeterministic) {
  auto net = make_net(8, {12, 12}, 2);
  FittingNet::Workspace ws;
  std::vector<double> d(8, 0.3);
  const double e1 = net.forward(d.data(), ws);
  const double e2 = net.forward(d.data(), ws);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(FittingNet, BackwardMatchesFiniteDifference) {
  const std::size_t in = 10;
  auto net = make_net(in, {14, 14, 14}, 3);
  Rng rng(4);
  std::vector<double> d(in);
  for (auto& v : d) v = rng.uniform(-1, 1);

  FittingNet::Workspace ws;
  net.forward(d.data(), ws);
  std::vector<double> g(in);
  net.backward(ws, g.data());

  const double h = 1e-6;
  FittingNet::Workspace ws2;
  for (std::size_t p = 0; p < in; ++p) {
    auto dp_ = d, dm = d;
    dp_[p] += h;
    dm[p] -= h;
    const double ep = net.forward(dp_.data(), ws2);
    const double em = net.forward(dm.data(), ws2);
    EXPECT_NEAR(g[p], (ep - em) / (2 * h), 1e-7) << "p=" << p;
  }
}

TEST(FittingNet, BackwardWithoutForwardThrows) {
  auto net = make_net(4, {6}, 5);
  FittingNet::Workspace ws;
  std::vector<double> g(4);
  EXPECT_THROW(net.backward(ws, g.data()), Error);
}

TEST(FittingNet, EnergyIsSmoothInDescriptor) {
  auto net = make_net(6, {10, 10}, 6);
  FittingNet::Workspace ws;
  std::vector<double> d(6, 0.2);
  const double e0 = net.forward(d.data(), ws);
  d[3] += 1e-9;
  const double e1 = net.forward(d.data(), ws);
  EXPECT_NEAR(e0, e1, 1e-6);
}

TEST(FittingNet, FlopCount) {
  auto net = make_net(16, {24, 24}, 7);
  EXPECT_DOUBLE_EQ(net.flops_per_eval(), 16.0 * 24 + 24.0 * 24 + 24.0 * 1);
}

TEST(FittingNet, TabulatedActivationCloseToExact) {
  auto net = make_net(8, {16, 16}, 8);
  FittingNet::Workspace ws;
  std::vector<double> d(8, 0.45);
  const double exact = net.forward(d.data(), ws);
  net.set_activation(Activation::TanhTabulated);
  const double tab = net.forward(d.data(), ws);
  EXPECT_NEAR(exact, tab, 1e-5);
}

}  // namespace
}  // namespace dp::nn
