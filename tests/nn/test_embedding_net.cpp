#include "nn/embedding_net.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dp::nn {
namespace {

EmbeddingNet make_net(std::vector<std::size_t> widths, std::uint64_t seed) {
  EmbeddingNet net(widths);
  Rng rng(seed);
  net.init_random(rng);
  return net;
}

TEST(EmbeddingNet, OutputDimIsLastWidth) {
  auto net = make_net({4, 8, 16}, 1);
  EXPECT_EQ(net.output_dim(), 16u);
  EXPECT_EQ(net.layers().size(), 3u);
}

TEST(EmbeddingNet, DoublingLayersUseConcatShortcut) {
  auto net = make_net({4, 8, 16}, 1);
  EXPECT_EQ(net.layers()[0].shortcut(), Shortcut::None);
  EXPECT_EQ(net.layers()[1].shortcut(), Shortcut::Concat);
  EXPECT_EQ(net.layers()[2].shortcut(), Shortcut::Concat);
}

TEST(EmbeddingNet, BatchMatchesScalarEval) {
  auto net = make_net({4, 8, 16}, 2);
  std::vector<double> s{0.0, 0.1, 0.5, 1.3, 2.0};
  Matrix g;
  net.forward_batch(s.data(), s.size(), g);
  ASSERT_EQ(g.rows(), s.size());
  ASSERT_EQ(g.cols(), 16u);
  std::vector<double> row(16);
  for (std::size_t i = 0; i < s.size(); ++i) {
    net.eval(s[i], row.data());
    for (std::size_t j = 0; j < 16; ++j) EXPECT_NEAR(g(i, j), row[j], 1e-13);
  }
}

TEST(EmbeddingNet, JetValueMatchesEval) {
  auto net = make_net({8, 16, 32}, 3);
  std::vector<double> g(32), dg(32), d2g(32), ref(32);
  net.eval_jet(0.73, g.data(), dg.data(), d2g.data());
  net.eval(0.73, ref.data());
  for (std::size_t j = 0; j < 32; ++j) EXPECT_NEAR(g[j], ref[j], 1e-14);
}

TEST(EmbeddingNet, JetDerivativesMatchFiniteDifference) {
  auto net = make_net({4, 8}, 4);
  const std::size_t M = 8;
  const double s = 0.42, h = 1e-5;
  std::vector<double> g(M), dg(M), d2g(M), yp(M), ym(M), y0(M);
  net.eval_jet(s, g.data(), dg.data(), d2g.data());
  net.eval(s, y0.data());
  net.eval(s + h, yp.data());
  net.eval(s - h, ym.data());
  for (std::size_t j = 0; j < M; ++j) {
    EXPECT_NEAR(dg[j], (yp[j] - ym[j]) / (2 * h), 1e-8);
    EXPECT_NEAR(d2g[j], (yp[j] - 2 * y0[j] + ym[j]) / (h * h), 1e-4);
  }
}

TEST(EmbeddingNet, PaperFlopCount) {
  // {d1, 2 d1, 4 d1} should count d1 + 10 d1^2 MACs per scalar (Sec 2.2).
  const std::size_t d1 = 32;
  auto net = make_net({d1, 2 * d1, 4 * d1}, 5);
  EXPECT_DOUBLE_EQ(net.flops_per_scalar(), double(d1 + 10 * d1 * d1));
}

TEST(EmbeddingNet, SmoothFunctionOfInput) {
  // The map must be continuous: small input change -> small output change.
  auto net = make_net({8, 16, 32}, 6);
  std::vector<double> a(32), b(32);
  net.eval(1.0, a.data());
  net.eval(1.0 + 1e-9, b.data());
  for (std::size_t j = 0; j < 32; ++j) EXPECT_NEAR(a[j], b[j], 1e-6);
}

TEST(EmbeddingNet, NonDoublingWidthsSupported) {
  // e.g. {10, 20, 20}: second layer concat, third plain.
  auto net = make_net({10, 20, 20}, 7);
  EXPECT_EQ(net.layers()[1].shortcut(), Shortcut::Concat);
  EXPECT_EQ(net.layers()[2].shortcut(), Shortcut::None);
  std::vector<double> g(20);
  net.eval(0.5, g.data());  // must not crash
}

}  // namespace
}  // namespace dp::nn
