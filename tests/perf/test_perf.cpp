#include <gtest/gtest.h>

#include "perf/scaling_model.hpp"

namespace dp::perf {
namespace {

TEST(Machine, PresetsMatchPaperSpecs) {
  const auto v = Machine::v100();
  EXPECT_DOUBLE_EQ(v.peak_flops, 7.0e12);
  EXPECT_DOUBLE_EQ(v.mem_bandwidth, 900e9);
  EXPECT_DOUBLE_EQ(v.power_watts, 369);
  const auto a = Machine::a64fx();
  EXPECT_DOUBLE_EQ(a.peak_flops, 3.38e12);
  EXPECT_DOUBLE_EQ(a.mem_bandwidth, 1024e9);
  EXPECT_DOUBLE_EQ(a.power_watts, 165);
  EXPECT_EQ(MachineSystem::summit().ranks_per_node, 6);
  EXPECT_EQ(MachineSystem::fugaku().ranks_per_node, 16);
}

TEST(Roofline, MemoryBoundKernelUsesBandwidth) {
  Machine m = Machine::v100();
  KernelCost c{/*flops=*/1e6, /*read=*/1e9, /*write=*/0};
  // intensity 1e-3 FLOP/B — far below the ridge: memory roof applies.
  EXPECT_NEAR(roofline_seconds(c, m), 1e9 / (900e9 * 0.94), 1e-9);
}

TEST(Roofline, ComputeBoundKernelUsesPeak) {
  Machine m = Machine::v100();
  KernelCost c{/*flops=*/1e12, /*read=*/8.0, /*write=*/0};
  EXPECT_NEAR(roofline_seconds(c, m), 1e12 / (7e12 * m.flop_efficiency), 1e-6);
}

TEST(Workload, NeighborStatisticsMatchPaper) {
  const auto water = WorkloadSpec::water();
  // ~91 real neighbors inside rc = 6 A; N_m = 138 reserved.
  EXPECT_NEAR(water.real_neighbors, 91.0, 5.0);
  EXPECT_EQ(water.config.nm(), 138);
  const auto copper = WorkloadSpec::copper();
  // ~179 in ambient FCC inside rc = 8 A; N_m = 500 reserved.
  EXPECT_NEAR(copper.real_neighbors, 179.0, 8.0);
  EXPECT_EQ(copper.config.nm(), 500);
  // Copper has the larger padding ratio (the paper's redundancy argument).
  EXPECT_GT(1.0 - copper.real_neighbors / copper.config.nm(),
            1.0 - water.real_neighbors / water.config.nm());
}

TEST(CostModel, TabulationSavesMostEmbeddingFlops) {
  // Paper Sec 3.2: the tabulated model saves 82% of the embedding FLOPs.
  const auto w = WorkloadSpec::copper();
  const auto base = per_atom_costs(w, Path::Baseline);
  const auto tab = per_atom_costs(w, Path::Tabulated);
  const double saved = 1.0 - tab.embedding.flops / (base.embedding.flops / 3.0);
  // Compare against the forward-only baseline count as the paper does.
  EXPECT_GT(saved, 0.70);
  EXPECT_LT(saved, 0.95);
}

TEST(CostModel, FusionEliminatesEmbeddingTraffic) {
  const auto w = WorkloadSpec::copper();
  const auto tab = per_atom_costs(w, Path::Tabulated);
  const auto fused = per_atom_costs(w, Path::Fused);
  EXPECT_LT(fused.embedding.bytes_total(), 0.1 * tab.embedding.bytes_total());
}

TEST(CostModel, MemoryPerAtomOrdering) {
  const auto w = WorkloadSpec::copper();
  const double b = bytes_per_atom(w, Path::Baseline);
  const double t = bytes_per_atom(w, Path::Tabulated);
  const double f = bytes_per_atom(w, Path::Fused);
  EXPECT_GT(b, t);
  EXPECT_GT(t, f);
  // Paper Sec 6.1: system size grows ~26x for copper on a 16 GB V100.
  EXPECT_GT(b / f, 15.0);
  EXPECT_LT(b / f, 45.0);
}

TEST(CostModel, BaselineCopperCapacityNearPaper) {
  // Ref [20]: ~4,600 copper atoms per V100 in the baseline.
  ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Baseline);
  const auto atoms = m.max_atoms_per_rank();
  EXPECT_GT(atoms, 2000u);
  EXPECT_LT(atoms, 9000u);
}

TEST(ScalingModel, FusedCopperCapacityNearPaperWeakScalingPoint) {
  // Paper: 122,779 copper atoms per MPI task in the Summit weak scaling.
  ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
  const auto atoms = m.max_atoms_per_rank();
  EXPECT_GT(atoms, 60000u);
  EXPECT_LT(atoms, 250000u);
}

TEST(ScalingModel, SummitFullMachineReachesBillions) {
  // Paper Fig 11 / abstract: 3.4 billion copper atoms on full Summit.
  ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
  const double atoms = static_cast<double>(m.max_atoms(4560));
  EXPECT_GT(atoms, 1.5e9);
  EXPECT_LT(atoms, 8e9);
}

TEST(ScalingModel, StrongScalingEfficiencyDecays) {
  ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
  const auto curve = m.strong_curve(13'500'000, {20, 80, 285, 1140, 4560});
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().efficiency, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].efficiency, curve[i - 1].efficiency + 1e-12);
    EXPECT_LT(curve[i].step_seconds, curve[i - 1].step_seconds);  // still speeds up
  }
  // Paper Fig 10: 35.96% at 4,560 Summit nodes, 11.2 ns/day.
  EXPECT_GT(curve.back().efficiency, 0.15);
  EXPECT_LT(curve.back().efficiency, 0.75);
  EXPECT_GT(curve.back().ns_per_day, 4.0);
  EXPECT_LT(curve.back().ns_per_day, 40.0);
}

TEST(ScalingModel, WeakScalingIsNearlyFlat) {
  ScalingModel m(MachineSystem::fugaku(), WorkloadSpec::copper(), Path::Fused);
  const auto curve = m.weak_curve(6804, {18, 144, 1152, 9936});
  for (const auto& p : curve) EXPECT_GT(p.efficiency, 0.95);
}

TEST(ScalingModel, TtsImprovesWithPath) {
  // Headline Table 1 ordering: baseline slower than the optimized code at
  // the same machine scale.
  ScalingModel base(MachineSystem::summit(), WorkloadSpec::copper(), Path::Baseline);
  ScalingModel fused(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
  const auto pb = base.point(127'000'000, 4560);
  const auto pf = fused.point(127'000'000, 4560);
  EXPECT_LT(pf.tts_s_step_atom, pb.tts_s_step_atom / 2.5);
}

TEST(ScalingModel, GhostFractionGrowsUnderStrongScaling) {
  ScalingModel m(MachineSystem::fugaku(), WorkloadSpec::copper(), Path::Fused);
  const double g_small = m.ghost_atoms_per_rank(100000) / 100000;
  const double g_large = m.ghost_atoms_per_rank(113) / 113;
  // Paper Sec 6.4.1: 113-atom sub-regions carry a 1,735-atom ghost region.
  EXPECT_GT(g_large, g_small);
  EXPECT_GT(g_large, 5.0);
}

TEST(ScalingModel, SingleDeviceTtsOrderingMatchesTable2) {
  // Table 2: A64FX is slower per atom in absolute terms, but faster once
  // normalized by peak or power.
  ScalingModel v(MachineSystem::summit(), WorkloadSpec::water(), Path::Fused);
  ScalingModel a(MachineSystem::fugaku(), WorkloadSpec::water(), Path::Fused);
  // One device each: one Summit rank = 1 V100; one Fugaku node = 16 ranks.
  const auto pv = v.point(12880, 1);            // 6 ranks, 1 node
  const auto pa = a.point(18432, 1);            // 16 ranks, 1 node
  const double tts_v100 = pv.step_seconds / 12880 * 6;   // per single V100
  const double tts_a64fx = pa.step_seconds / 18432;      // whole node = 1 A64FX
  EXPECT_GT(tts_a64fx, tts_v100);  // absolute: V100 wins
  const double norm_v = tts_v100 * Machine::v100().peak_flops;
  const double norm_a = tts_a64fx * Machine::a64fx().peak_flops;
  EXPECT_LT(norm_a, norm_v);  // normalized by peak: A64FX wins
  const double pow_v = tts_v100 * Machine::v100().power_watts;
  const double pow_a = tts_a64fx * Machine::a64fx().power_watts;
  EXPECT_LT(pow_a, pow_v);  // normalized by power: A64FX wins
}

TEST(CalibrationGuard, Table2ModelValuesPinned) {
  // Regression guard on the calibration: these are the modeled Table 2
  // values recorded in EXPERIMENTS.md; drifting them silently would
  // invalidate the documented comparisons.
  auto tts = [](const MachineSystem& sys, const WorkloadSpec& wl, std::size_t atoms) {
    ScalingModel m(sys, wl, Path::Fused);
    return m.point(atoms, 1).step_seconds / static_cast<double>(atoms) *
           sys.devices_per_node * 1e6;
  };
  EXPECT_NEAR(tts(MachineSystem::summit(), WorkloadSpec::water(), 12880), 2.76, 0.05);
  EXPECT_NEAR(tts(MachineSystem::summit(), WorkloadSpec::copper(), 6912), 4.14, 0.05);
  EXPECT_NEAR(tts(MachineSystem::fugaku(), WorkloadSpec::water(), 18432), 4.48, 0.05);
  EXPECT_NEAR(tts(MachineSystem::fugaku(), WorkloadSpec::copper(), 2592), 8.05, 0.10);
}

TEST(CalibrationGuard, HeadlineProjectionsPinned) {
  ScalingModel summit(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
  const auto p = summit.point(3'359'233'440, 4560);  // full-Summit weak point
  EXPECT_NEAR(p.pflops, 41.6, 1.0);
  EXPECT_NEAR(p.tts_s_step_atom, 7.1e-11, 0.4e-11);
  ScalingModel fugaku(MachineSystem::fugaku(), WorkloadSpec::copper(), Path::Fused);
  const auto q = fugaku.point(17'198'987'904, 157986);
  EXPECT_NEAR(q.pflops, 92.6, 2.0);
}

}  // namespace
}  // namespace dp::perf
