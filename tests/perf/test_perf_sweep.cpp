// Parameterized properties of the projection model: every (machine,
// workload, path) combination must obey the structural laws the paper's
// analysis rests on, independent of the calibration constants.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "perf/scaling_model.hpp"

namespace dp::perf {
namespace {

using SweepParam = std::tuple<int /*machine: 0 Summit, 1 Fugaku*/,
                              int /*workload: 0 water, 1 copper*/,
                              int /*path: 0 baseline, 1 tabulated, 2 fused*/>;

class PerfSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const auto [mi, wi, pi] = GetParam();
    system_ = mi == 0 ? MachineSystem::summit() : MachineSystem::fugaku();
    workload_ = wi == 0 ? WorkloadSpec::water() : WorkloadSpec::copper();
    path_ = pi == 0 ? Path::Baseline : (pi == 1 ? Path::Tabulated : Path::Fused);
    model_ = std::make_unique<ScalingModel>(system_, workload_, path_);
  }

  MachineSystem system_;
  WorkloadSpec workload_;
  Path path_ = Path::Fused;
  std::unique_ptr<ScalingModel> model_;
};

TEST_P(PerfSweep, StrongScalingIsMonotone) {
  const auto curve = model_->strong_curve(10'000'000, {20, 80, 320, 1280, 4560});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i].step_seconds, curve[i - 1].step_seconds);       // faster
    EXPECT_LE(curve[i].efficiency, curve[i - 1].efficiency + 1e-12);   // less efficient
    EXPECT_GT(curve[i].ns_per_day, curve[i - 1].ns_per_day);
  }
}

TEST_P(PerfSweep, WeakScalingStepTimeIsFlat) {
  const auto curve = model_->weak_curve(50'000, {16, 64, 256, 1024});
  for (const auto& p : curve)
    EXPECT_NEAR(p.step_seconds, curve.front().step_seconds,
                0.05 * curve.front().step_seconds);
}

TEST_P(PerfSweep, WeakScalingFlopsLinearInNodes) {
  const auto curve = model_->weak_curve(50'000, {16, 256});
  EXPECT_NEAR(curve[1].pflops / curve[0].pflops, 256.0 / 16.0, 0.9);
}

TEST_P(PerfSweep, CapacityLinearInNodes) {
  EXPECT_EQ(model_->max_atoms(100), 10 * model_->max_atoms(10));
}

TEST_P(PerfSweep, TtsPositiveAndBelowLegacyCodes) {
  // Any DP configuration beats the BP-scheme CPU codes of Table 1 (3.6e-5
  // and 1.3e-6 s/step/atom) by orders of magnitude at scale.
  const auto p = model_->point(50'000'000, 1000);
  EXPECT_GT(p.tts_s_step_atom, 0.0);
  EXPECT_LT(p.tts_s_step_atom, 1.3e-6);
}

TEST_P(PerfSweep, GhostShellExceedsSurfaceEstimate) {
  // The ghost count must exceed a one-face slab estimate and grow
  // sublinearly with the local atom count (surface-to-volume).
  const double g1 = model_->ghost_atoms_per_rank(1'000);
  const double g2 = model_->ghost_atoms_per_rank(8'000);
  EXPECT_GT(g1, 0.0);
  EXPECT_LT(g2, 8.0 * g1);  // 8x atoms -> < 8x ghosts
  EXPECT_GT(g2, g1);        // but more atoms -> more ghosts
}

// Kept outside the macro: braced initializers inside INSTANTIATE_* split
// its arguments.
std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* machines[] = {"summit", "fugaku"};
  static const char* loads[] = {"water", "copper"};
  static const char* paths[] = {"baseline", "tabulated", "fused"};
  return std::string(machines[std::get<0>(info.param)]) + "_" +
         loads[std::get<1>(info.param)] + "_" + paths[std::get<2>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PerfSweep,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1, 2)),
    sweep_name);

}  // namespace
}  // namespace dp::perf
