# Sanitizer build modes, selected with -DDP_SANITIZE=<mode>[,<mode>].
#
# Modes:
#   address    AddressSanitizer    (heap/stack/global overflow, use-after-free,
#                                   leaks via LeakSanitizer)
#   undefined  UndefinedBehaviorSanitizer (signed overflow, bad shifts, bad
#                                   casts, misaligned access, ...)
#   thread     ThreadSanitizer     (data races, lock-order inversions)
#
# `address` and `undefined` compose ("address,undefined" is the CI asan-ubsan
# job); `thread` is mutually exclusive with `address` — the runtimes cannot
# coexist in one process.
#
# The flags attach to `dp_build_flags`, the interface target every library,
# test, bench and app links, so a single cache variable re-instruments the
# whole tree. Sanitized builds keep full optimization (the stress tests rely
# on real instruction interleavings) but add frame pointers and debug info so
# reports carry usable stacks.

set(DP_SANITIZE "" CACHE STRING
    "Sanitizer mode(s): address, undefined, thread, or a comma list (empty = off)")
set_property(CACHE DP_SANITIZE PROPERTY STRINGS
             "" "address" "undefined" "thread" "address,undefined")

function(dp_apply_sanitizers target)
  if(DP_SANITIZE STREQUAL "")
    return()
  endif()

  string(REPLACE "," ";" _dp_san_list "${DP_SANITIZE}")
  set(_dp_san_joined "")
  foreach(mode IN LISTS _dp_san_list)
    if(NOT mode MATCHES "^(address|undefined|thread)$")
      message(FATAL_ERROR
              "DP_SANITIZE: unknown mode '${mode}' (address|undefined|thread)")
    endif()
    list(APPEND _dp_san_joined "${mode}")
  endforeach()

  if("thread" IN_LIST _dp_san_joined AND "address" IN_LIST _dp_san_joined)
    message(FATAL_ERROR
            "DP_SANITIZE: 'thread' and 'address' cannot be combined — their "
            "runtimes conflict; build them as separate trees")
  endif()

  string(REPLACE ";" "," _dp_san_csv "${_dp_san_joined}")
  set(_dp_san_flags -fsanitize=${_dp_san_csv} -fno-omit-frame-pointer -g)

  if("undefined" IN_LIST _dp_san_joined)
    # A UB report is a test failure, not a log line: abort instead of
    # continuing with a poisoned value.
    list(APPEND _dp_san_flags -fno-sanitize-recover=all)
  endif()

  target_compile_options(${target} INTERFACE ${_dp_san_flags})
  target_link_options(${target} INTERFACE -fsanitize=${_dp_san_csv})

  # Visible marker in configure logs (the CI matrix greps for it).
  message(STATUS "DP_SANITIZE: instrumenting all targets with ${_dp_san_csv}")
endfunction()
