#!/usr/bin/env python3
"""bench_compare — noise-aware diff of BENCH_*.json against a committed baseline.

The bench binaries (bench/neighbor_build, bench/prod_force) emit a single
JSON document per run: {"metrics": [...], "events": [...]}, one event per
configuration sweep point. This gate compares a fresh run against the
committed trajectory under bench/baselines/ with tolerances that separate
what is deterministic from what is machine noise:

  * structural fields (workspace bytes, steady-state allocation counts,
    byte ratios, sweep coordinates) are machine-independent — compared
    near-exactly; any drift is a real regression (e.g. a workspace that
    started growing per step again).
  * within-run timing *ratios* (compact/dense kernel time, thread speedup)
    cancel the machine's absolute speed — compared with a multiplicative
    tolerance, and only in the direction that means a regression.
  * absolute seconds are only compared under --strict-time (CI runners do
    not share a clock with the baseline host).
  * fields outside the rules are carried but never compared: `lanes` (the
    SIMD width the run dispatched) is machine-dependent, and a baseline
    recorded before a field existed simply skips the derived ratios that
    need it — old baselines stay valid when a bench grows new columns.

Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import argparse
import json
import math
import sys

STRICT_REL_TOL = 1e-6

# Per-event-name comparison rules. `key` identifies a sweep point across
# runs; `strict` fields must match; `higher_better` / `lower_better` are
# ratio-style fields judged with the multiplicative tolerance, failing only
# when the fresh value regresses (lower resp. higher than allowed);
# `floors` are absolute minima checked against the fresh run alone — they
# encode acceptance criteria that hold regardless of what the baseline
# host happened to measure.
RULES = {
    "build": {
        "key": ["atoms", "threads"],
        "strict": ["workspace_bytes", "steady_state_alloc_free"],
        "higher_better": ["speedup_vs_1t"],
        "derived": {},
    },
    "prod_force": {
        "key": ["sel", "threads"],
        "strict": [
            "dense_bytes",
            "compact_bytes",
            "bytes_ratio",
            "padding_fraction",
            "steady_state_alloc_free",
        ],
        "higher_better": [],
        # Within-run ratios: compact kernel time over dense kernel time.
        # Lower is better; both sides of the ratio come from the same run,
        # so the machine's absolute speed cancels.
        "derived": {
            "env_compact_over_dense": ("compact_env_seconds", "dense_env_seconds"),
            "prod_compact_over_dense": ("compact_prod_seconds", "dense_prod_seconds"),
            # Tabulation walk at the dispatched SIMD level over forced
            # scalar: same run, same slot walk, only the dispatch differs.
            # Baselines recorded before the SIMD path existed lack the
            # fields, so the ratio is skipped against them.
            "tab_vector_over_scalar": ("tab_vector_seconds", "tab_scalar_seconds"),
        },
    },
    "rebalance": {
        "key": ["ranks", "atoms"],
        # The fixed-grid imbalance and the rebalanced one ride on the fp
        # trajectory (an atom near a slab plane can land either side under a
        # different FMA contraction), so neither is compared strictly. The
        # gates are the force-parity verdict (pure arithmetic, 0/1), the
        # reduction fraction vs baseline, and an absolute floor — the
        # acceptance bar itself, independent of what the baseline achieved.
        "strict": ["force_parity_ok"],
        "higher_better": ["imbalance_reduction"],
        "floors": {"imbalance_reduction": 0.25},
        "derived": {},
    },
    # Per-transport byte accounting of one fixed 2-rank run: message count
    # and payload/wire bytes are set by the decomposition and the framing,
    # not the clock — any drift means the communication pattern changed.
    "comm_shm": {
        "key": [],
        "strict": ["messages", "bytes", "wire_bytes"],
        "higher_better": [],
        "derived": {},
    },
    "comm_tcp": {
        "key": [],
        "strict": ["messages", "bytes", "wire_bytes"],
        "higher_better": [],
        "derived": {},
    },
    "mixed": {
        "key": ["atoms"],
        # Table footprint and the byte ratios of the reduced-precision
        # tables are pure model structure: Single must hold at exactly half
        # the double bytes, Half at a quarter. Per-step coefficient traffic
        # is likewise deterministic (neighbor list x embedding width x
        # element size).
        "strict": [
            "table_bytes_double",
            "table_bytes_single",
            "table_bytes_half",
            "single_bytes_ratio",
            "half_bytes_ratio",
            "step_bytes_double",
            "step_bytes_single",
            "step_bytes_half",
        ],
        "higher_better": [],
        # Mixed-over-double time per step, both sides from the same run so
        # absolute machine speed cancels. A ratio climbing past the factor
        # means the float-lane path lost its advantage (e.g. the batched
        # kernels stopped dispatching). `lanes_sp` and the force-RMSE
        # columns are carried but never compared: the former is
        # machine-dependent, the latter varies in the last bits with the
        # dispatched level.
        "derived": {
            "mixed_single_over_double": ("single_seconds", "double_seconds"),
            "mixed_half_over_double": ("half_seconds", "double_seconds"),
        },
    },
}


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    events = {}
    for ev in doc.get("events", []):
        name = ev.get("name", "")
        if name not in RULES:
            continue
        fields = dict(ev.get("fields", [])) if isinstance(
            ev.get("fields"), list) else dict(ev.get("fields", {}))
        key = tuple(fields.get(k) for k in RULES[name]["key"])
        events[(name, key)] = fields
    return events


def rel_close(a, b, tol):
    scale = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / scale <= tol


def derived_ratio(fields, num_key, den_key):
    num = fields.get(num_key)
    den = fields.get(den_key)
    if num is None or den is None or den <= 0.0:
        return None
    return num / den


def compare(base, fresh, factor, strict_time, time_tol):
    """Returns a list of human-readable regression messages."""
    problems = []
    for (name, key), bf in sorted(base.items(), key=lambda kv: str(kv[0])):
        point = f"{name}{dict(zip(RULES[name]['key'], key))}"
        ff = fresh.get((name, key))
        if ff is None:
            problems.append(f"{point}: sweep point missing from fresh run")
            continue
        rule = RULES[name]
        for f in rule["strict"]:
            if f not in bf:
                continue
            if f not in ff:
                problems.append(f"{point}: field '{f}' missing from fresh run")
            elif not rel_close(bf[f], ff[f], STRICT_REL_TOL):
                problems.append(
                    f"{point}: {f} changed {bf[f]:g} -> {ff[f]:g} "
                    f"(machine-independent field; must match baseline)"
                )
        for f in rule["higher_better"]:
            if f in bf and f in ff and ff[f] < bf[f] / factor:
                problems.append(
                    f"{point}: {f} regressed {bf[f]:.3g} -> {ff[f]:.3g} "
                    f"(allowed down to {bf[f] / factor:.3g})"
                )
        for f, floor in rule.get("floors", {}).items():
            if f in ff and ff[f] < floor:
                problems.append(
                    f"{point}: {f} = {ff[f]:.3g} is below the absolute floor "
                    f"{floor:g} (acceptance criterion, baseline-independent)"
                )
        for dname, (num, den) in rule["derived"].items():
            bratio = derived_ratio(bf, num, den)
            fratio = derived_ratio(ff, num, den)
            if bratio is None or fratio is None:
                continue
            if fratio > bratio * factor:
                problems.append(
                    f"{point}: {dname} regressed {bratio:.3g} -> {fratio:.3g} "
                    f"(allowed up to {bratio * factor:.3g})"
                )
        if strict_time:
            for f in bf:
                if not f.endswith(("seconds", "seconds_per_build")):
                    continue
                if f in ff and not rel_close(bf[f], ff[f], time_tol):
                    problems.append(
                        f"{point}: {f} drifted {bf[f]:.3g} -> {ff[f]:.3g} "
                        f"(--strict-time tolerance {time_tol:g})"
                    )
    for (name, key) in fresh:
        if (name, key) not in base:
            problems.append(
                f"{name}{dict(zip(RULES[name]['key'], key))}: "
                f"new sweep point not in baseline (re-bless the baseline)"
            )
    return problems


def selftest():
    base = {
        ("build", (1000.0, 4.0)): {
            "workspace_bytes": 4096.0,
            "steady_state_alloc_free": 0.0,
            "speedup_vs_1t": 3.0,
        },
        ("prod_force", (160.0, 2.0)): {
            "dense_bytes": 8000.0,
            "compact_bytes": 2000.0,
            "bytes_ratio": 0.25,
            "padding_fraction": 0.5,
            "steady_state_alloc_free": 0.0,
            "dense_env_seconds": 1.0,
            "compact_env_seconds": 0.5,
            "dense_prod_seconds": 1.0,
            "compact_prod_seconds": 0.6,
        },
    }

    def clone():
        return {k: dict(v) for k, v in base.items()}

    # Identical runs pass.
    assert compare(base, clone(), 2.0, False, 0.5) == []
    # Timing noise within the factor passes.
    noisy = clone()
    noisy[("build", (1000.0, 4.0))]["speedup_vs_1t"] = 1.8
    noisy[("prod_force", (160.0, 2.0))]["compact_env_seconds"] = 0.8
    assert compare(base, noisy, 2.0, False, 0.5) == []
    # Structural drift fails even when tiny.
    drift = clone()
    drift[("build", (1000.0, 4.0))]["steady_state_alloc_free"] = 2.0
    assert any("steady_state_alloc_free" in p for p in compare(base, drift, 2.0, False, 0.5))
    # Ratio regression beyond the factor fails.
    slow = clone()
    slow[("prod_force", (160.0, 2.0))]["compact_env_seconds"] = 1.5
    assert any("env_compact_over_dense" in p for p in compare(base, slow, 2.0, False, 0.5))
    # Speedup collapse fails.
    collapse = clone()
    collapse[("build", (1000.0, 4.0))]["speedup_vs_1t"] = 1.0
    assert any("speedup_vs_1t" in p for p in compare(base, collapse, 2.0, False, 0.5))
    # Missing sweep point fails.
    missing = clone()
    del missing[("build", (1000.0, 4.0))]
    assert any("missing" in p for p in compare(base, missing, 2.0, False, 0.5))
    # Absolute seconds ignored by default, gated by --strict-time.
    slower = clone()
    slower[("prod_force", (160.0, 2.0))]["dense_env_seconds"] = 3.0
    slower[("prod_force", (160.0, 2.0))]["compact_env_seconds"] = 1.5
    assert compare(base, slower, 2.0, False, 0.5) == []
    assert any("dense_env_seconds" in p for p in compare(base, slower, 2.0, True, 0.5))
    # An old baseline (recorded before the SIMD columns existed) accepts a
    # fresh run carrying lanes + tab_* — extra fields are never compared and
    # the derived ratio is skipped when the baseline side is missing.
    widened = clone()
    widened[("prod_force", (160.0, 2.0))].update(
        {"lanes": 8.0, "tab_scalar_seconds": 1.0, "tab_vector_seconds": 0.2}
    )
    assert compare(base, widened, 2.0, False, 0.5) == []
    # And symmetrically: a new baseline against a fresh run that lacks them
    # (e.g. a bench built from an older branch) skips rather than fails.
    assert compare(widened, clone(), 2.0, False, 0.5) == []
    # When both sides carry the fields, a collapsed vector speedup fails.
    vec_base = widened
    vec_slow = {k: dict(v) for k, v in widened.items()}
    vec_slow[("prod_force", (160.0, 2.0))]["tab_vector_seconds"] = 0.9
    assert any("tab_vector_over_scalar" in p
               for p in compare(vec_base, vec_slow, 2.0, False, 0.5))
    # lanes is machine-dependent, never strict: a baseline from an AVX-512
    # host must pass on a scalar runner.
    narrow = {k: dict(v) for k, v in widened.items()}
    narrow[("prod_force", (160.0, 2.0))]["lanes"] = 1.0
    narrow[("prod_force", (160.0, 2.0))]["tab_vector_seconds"] = 1.0
    assert compare(widened, narrow, 10.0, False, 0.5) == []
    # Mixed-precision ablation events: structural byte ratios are strict,
    # the mixed/double time ratio is factor-gated, lanes_sp and force RMSE
    # are carried but never compared.
    mixed_base = {
        ("mixed", (192.0,)): {
            "table_bytes_double": 1000.0,
            "table_bytes_single": 500.0,
            "table_bytes_half": 250.0,
            "single_bytes_ratio": 0.5,
            "half_bytes_ratio": 0.25,
            "step_bytes_double": 8000.0,
            "step_bytes_single": 4000.0,
            "step_bytes_half": 2000.0,
            "double_seconds": 1.0,
            "single_seconds": 0.8,
            "half_seconds": 0.9,
            "single_force_rmse": 1e-10,
            "lanes_sp": 16.0,
        },
    }

    def mixed_clone():
        return {k: dict(v) for k, v in mixed_base.items()}

    assert compare(mixed_base, mixed_clone(), 2.0, False, 0.5) == []
    # A Single table that stopped shrinking is structural drift.
    fat = mixed_clone()
    fat[("mixed", (192.0,))]["single_bytes_ratio"] = 1.0
    assert any("single_bytes_ratio" in p for p in compare(mixed_base, fat, 2.0, False, 0.5))
    # Mixed path losing its speed advantage beyond the factor fails.
    lost = mixed_clone()
    lost[("mixed", (192.0,))]["single_seconds"] = 2.0
    assert any("mixed_single_over_double" in p
               for p in compare(mixed_base, lost, 2.0, False, 0.5))
    # A scalar runner (lanes_sp 1, slightly different RMSE, slower in
    # absolute terms but same within-run ratios) passes.
    scalar_host = mixed_clone()
    scalar_host[("mixed", (192.0,))].update(
        {"lanes_sp": 1.0, "single_force_rmse": 2e-10, "double_seconds": 5.0,
         "single_seconds": 4.5, "half_seconds": 4.8}
    )
    assert compare(mixed_base, scalar_host, 2.0, False, 0.5) == []
    # Rebalance events: the reduction fraction carries an absolute floor
    # (the acceptance criterion) on top of the baseline ratio, and the
    # force-parity verdict is strict.
    reb_base = {
        ("rebalance", (4.0, 2048.0)): {
            "imbalance_fixed": 2.0,
            "imbalance_rebalanced": 1.1,
            "imbalance_reduction": 0.45,
            "boundary_shifts": 1.0,
            "force_parity_ok": 1.0,
        },
        ("comm_shm", ()): {"messages": 133.0, "bytes": 551608.0, "wire_bytes": 172432.0},
    }

    def reb_clone():
        return {k: dict(v) for k, v in reb_base.items()}

    assert compare(reb_base, reb_clone(), 2.0, False, 0.5) == []
    # A reduction within the factor of the baseline but under the absolute
    # floor still fails: the floor is the acceptance bar, not noise margin.
    floor_miss = reb_clone()
    floor_miss[("rebalance", (4.0, 2048.0))]["imbalance_reduction"] = 0.24
    assert any("absolute floor" in p for p in compare(reb_base, floor_miss, 2.0, False, 0.5))
    # Collapse vs baseline beyond the factor fails too (even above a tiny floor).
    reb_collapse = reb_clone()
    reb_collapse[("rebalance", (4.0, 2048.0))]["imbalance_reduction"] = 0.1
    assert any("imbalance_reduction regressed" in p
               for p in compare(reb_base, reb_collapse, 2.0, False, 0.5))
    # Losing bit-level force parity is a hard failure.
    no_parity = reb_clone()
    no_parity[("rebalance", (4.0, 2048.0))]["force_parity_ok"] = 0.0
    assert any("force_parity_ok" in p for p in compare(reb_base, no_parity, 2.0, False, 0.5))
    # Transport byte accounting is deterministic: any drift is structural.
    chatty = reb_clone()
    chatty[("comm_shm", ())]["wire_bytes"] = 200000.0
    assert any("wire_bytes" in p for p in compare(reb_base, chatty, 2.0, False, 0.5))
    print("bench_compare selftest: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="committed BENCH_*.json")
    ap.add_argument("--fresh", help="freshly produced BENCH_*.json")
    ap.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="multiplicative tolerance for within-run ratio fields (default 2.0)",
    )
    ap.add_argument(
        "--strict-time",
        action="store_true",
        help="also compare absolute seconds (only meaningful on the baseline host)",
    )
    ap.add_argument(
        "--time-tolerance",
        type=float,
        default=0.5,
        help="relative tolerance for --strict-time (default 0.5)",
    )
    ap.add_argument("--selftest", action="store_true", help="run internal checks")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.baseline or not args.fresh:
        ap.error("--baseline and --fresh are required (or --selftest)")
    if not (args.factor >= 1.0) or not math.isfinite(args.factor):
        ap.error("--factor must be a finite value >= 1.0")

    base = load_events(args.baseline)
    fresh = load_events(args.fresh)
    if not base:
        print(f"bench_compare: no known events in {args.baseline}", file=sys.stderr)
        return 2
    problems = compare(base, fresh, args.factor, args.strict_time, args.time_tolerance)
    if problems:
        print(f"bench_compare: {len(problems)} regression(s) vs {args.baseline}:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"bench_compare: {len(base)} sweep point(s) match {args.baseline} "
        f"(ratio factor {args.factor:g}"
        + (", strict time" if args.strict_time else "")
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
