#!/usr/bin/env python3
"""Regression tests for tools/dplint: every rule must fire on a known-bad
fixture and stay silent on the equivalent clean code. Run directly or via
ctest (test name: dplint_selftest)."""

import importlib.util
import os
import sys
import unittest

_TOOLS = os.path.dirname(os.path.abspath(__file__))
_spec = importlib.util.spec_from_loader("dplint", loader=None)
dplint = importlib.util.module_from_spec(_spec)
with open(os.path.join(_TOOLS, "dplint"), encoding="utf-8") as fh:
    exec(compile(fh.read(), "dplint", "exec"), dplint.__dict__)


def rules(rel, source):
    return [f.rule for f in dplint.lint_file(rel, source)]


class StripTest(unittest.TestCase):
    def test_strips_comments_and_strings_preserving_lines(self):
        src = 'int a; // malloc(\n/* assert( */ const char* s = "new [] x";\n'
        out = dplint.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("malloc", out)
        self.assertNotIn("assert", out)
        self.assertNotIn("new []", out)

    def test_raw_string_literal(self):
        src = 'auto s = R"(malloc( assert( ))";\nint x;\n'
        out = dplint.strip_comments_and_strings(src)
        self.assertNotIn("malloc", out)
        self.assertIn("int x;", out)


class RuleTest(unittest.TestCase):
    def test_raw_alloc_fires(self):
        self.assertIn("raw-alloc", rules("src/md/foo.cpp", "int* p = new int[4];\n"))
        self.assertIn("raw-alloc", rules("src/md/foo.cpp", "void* p = malloc(8);\n"))
        self.assertIn("raw-alloc", rules("src/md/foo.cpp", "p = std::realloc(p, 16);\n"))
        self.assertIn("raw-alloc", rules("bench/foo.cpp", "std::free(p);\n"))

    def test_raw_alloc_allows_aligned_hpp_and_clean_code(self):
        self.assertEqual([], rules("src/common/aligned.hpp", "void* p = std::aligned_alloc(64, n);\n"))
        self.assertEqual([], rules("src/md/foo.cpp", "auto v = std::make_unique<int[]>(4);\n"))
        # Comments and identifiers containing the words don't count.
        self.assertEqual([], rules("src/md/foo.cpp", "// malloc( is banned\nint my_malloc_count(int);\n"))
        self.assertEqual([], rules("src/md/foo.cpp", "x.free();\n"))

    def test_hot_path_map_scoped_to_hot_dirs(self):
        bad = "#include <unordered_map>\nstd::unordered_map<int,int> m;\n"
        self.assertIn("hot-path-map", rules("src/fused/foo.cpp", bad))
        self.assertIn("hot-path-map", rules("src/tab/foo.hpp", bad))
        self.assertIn("hot-path-map", rules("src/md/neighbor.cpp", bad))
        self.assertNotIn("hot-path-map", rules("src/md/checkpoint.cpp", bad))
        self.assertNotIn("hot-path-map", rules("src/train/foo.cpp", bad))

    def test_bare_assert_src_only(self):
        self.assertIn("bare-assert", rules("src/md/foo.cpp", "assert(x > 0);\n"))
        self.assertIn("bare-assert", rules("src/md/foo.cpp", "#include <cassert>\n"))
        self.assertNotIn("bare-assert", rules("tests/md/foo.cpp", "assert(x > 0);\n"))
        self.assertEqual([], rules("src/md/foo.cpp", "static_assert(sizeof(int) == 4);\n"))
        self.assertEqual([], rules("src/md/foo.cpp", "DP_CHECK(x > 0);\n"))

    def test_include_hygiene(self):
        use = "void f(dp::par::Communicator& c);\n"
        self.assertIn("include-hygiene", rules("src/md/foo.hpp", use))
        ok = '#include "parallel/minimpi.hpp"\n' + use
        self.assertNotIn("include-hygiene", rules("src/md/foo.hpp", ok))
        tensor_use = "nn::Tensor t;\n"
        self.assertIn("include-hygiene", rules("src/dp/foo.cpp", tensor_use))
        tensor_ok = '#include "nn/tensor.hpp"\n' + tensor_use
        self.assertNotIn("include-hygiene", rules("src/dp/foo.cpp", tensor_ok))
        # The headers themselves are exempt.
        self.assertNotIn("include-hygiene",
                         rules("src/parallel/minimpi.hpp", "class Communicator {};\n"))

    def test_blocking_p2p_scoped_to_step_driver(self):
        self.assertIn("blocking-p2p",
                      rules("src/parallel/distributed_md.cpp", "comm.send(1, 0, p, n);\n"))
        self.assertIn("blocking-p2p",
                      rules("src/parallel/distributed_md.cpp", "comm.send_vec(1, 0, v);\n"))
        self.assertIn("blocking-p2p",
                      rules("src/parallel/distributed_md.cpp",
                            "auto v = comm.recv_vec<double>(1, 0);\n"))
        # The nonblocking API is the point of the rule — it must not fire.
        ok = ("auto r = comm.isend_vec(1, 0, v);\n"
              "auto q = comm.irecv(1, 0);\n")
        self.assertNotIn("blocking-p2p", rules("src/parallel/distributed_md.cpp", ok))
        # Other files (halo.cpp's structural exchange, collectives) are free
        # to use the blocking calls.
        self.assertNotIn("blocking-p2p",
                         rules("src/parallel/halo.cpp", "comm.send_vec(1, 0, v);\n"))

    def test_transport_syscalls_confined_to_backends(self):
        self.assertIn("transport-syscalls",
                      rules("src/md/foo.cpp",
                            "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"))
        self.assertIn("transport-syscalls",
                      rules("tests/parallel/foo.cpp",
                            "int fd = shm_open(name, O_RDWR, 0600);\n"))
        self.assertIn("transport-syscalls",
                      rules("bench/foo.cpp", "shm_unlink(name);\n"))
        # The two backend translation units own these syscalls.
        self.assertNotIn("transport-syscalls",
                         rules("src/parallel/transport_shm.cpp",
                               "int fd = shm_open(name, O_RDWR, 0600);\n"))
        self.assertNotIn("transport-syscalls",
                         rules("src/parallel/transport_tcp.cpp",
                               "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"))
        # \b guards identifiers that merely end in the name, comments are
        # stripped before matching, and connect() is deliberately not matched.
        self.assertNotIn("transport-syscalls",
                         rules("src/md/foo.cpp", "my_socket(1);\n"))
        self.assertNotIn("transport-syscalls",
                         rules("src/md/foo.cpp", "// socket(2) is banned here\n"))
        self.assertNotIn("transport-syscalls",
                         rules("src/md/foo.cpp", "connect(fd, addr, len);\n"))

    def test_neighbor_workspace(self):
        bad = ("void NeighborList::build(const Box& box) {\n"
               "  std::vector<int> scratch(n);\n"
               "}\n")
        self.assertIn("neighbor-workspace", rules("src/md/neighbor.cpp", bad))
        nested = ("void NeighborList::build_half(const Box& box) {\n"
                  "  std::vector<std::vector<int>> caches;\n"
                  "}\n")
        self.assertIn("neighbor-workspace", rules("src/md/neighbor.cpp", nested))
        # References into the persistent workspace (including lambda
        # parameters) are the sanctioned pattern.
        ok = ("void NeighborList::build_brute(const Box& box) {\n"
              "  std::vector<int>& buf = ws_.tl[t];\n"
              "  fill([&](std::size_t i, std::vector<int>& out) { out.clear(); });\n"
              "}\n")
        self.assertNotIn("neighbor-workspace", rules("src/md/neighbor.cpp", ok))
        # Non-build members and other files keep their locals.
        compact = ("NeighborList NeighborList::compact() const {\n"
                   "  std::vector<int> remap(n, -1);\n"
                   "}\n")
        self.assertNotIn("neighbor-workspace", rules("src/md/neighbor.cpp", compact))
        self.assertNotIn("neighbor-workspace",
                         rules("src/md/lattice.cpp",
                               "void f() { std::vector<int> v; }\n"))
        # A declaration without a body (header-style) must not confuse the
        # body scanner into scanning the rest of the file.
        decl = ("void NeighborList::build(const Box& box);\n"
                "void elsewhere() { std::vector<int> v; }\n")
        self.assertNotIn("neighbor-workspace", rules("src/md/neighbor.cpp", decl))

    def test_env_hot_alloc(self):
        # Per-call sizing inside the compact env build.
        bad_resize = ("void build_compact(const ModelConfig& cfg) {\n"
                      "  ws.slot_atom.resize(total);\n"
                      "}\n")
        self.assertIn("env-hot-alloc", rules("src/dp/env_mat.cpp", bad_resize))
        bad_assign = ("void build_env_mat(const ModelConfig& cfg) {\n"
                      "  env.rmat.assign(rows * 4, 0.0);\n"
                      "}\n")
        self.assertIn("env-hot-alloc", rules("src/dp/env_mat.cpp", bad_assign))
        # Container construction inside a model's per-step compute().
        bad_vec = ("md::ForceResult FusedDP::compute(const md::Box& box) {\n"
                   "  std::vector<double> g(n);\n"
                   "}\n")
        self.assertIn("env-hot-alloc", rules("src/fused/fused_model.cpp", bad_vec))
        bad_aligned = ("md::ForceResult BaselineDP::compute(const md::Box& box) {\n"
                       "  AlignedVector<double> row(m * 4);\n"
                       "}\n")
        self.assertIn("env-hot-alloc", rules("src/dp/baseline_model.cpp", bad_aligned))
        # References into the persistent workspace are the sanctioned pattern.
        ok_ref = ("md::ForceResult FusedDP::compute(const md::Box& box) {\n"
                  "  AlignedVector<double>& g = ws_.g_rmat;\n"
                  "  std::vector<dp::Vec3>& f = scratch_.forces;\n"
                  "}\n")
        self.assertNotIn("env-hot-alloc", rules("src/fused/fused_model.cpp", ok_ref))
        # Sizing belongs in the workspace helpers, which stay unrestricted.
        ok_prepare = ("void EnvMatWorkspace::prepare(std::size_t n) {\n"
                      "  counts.resize(n);\n"
                      "  std::vector<int> fresh(n);\n"
                      "}\n")
        self.assertNotIn("env-hot-alloc", rules("src/dp/env_mat.cpp", ok_prepare))
        # A call to build_compact inside build_env_mat is a call site, not a
        # body — the scanner must not leak into the enclosing function.
        ok_call = ("void build_env_mat(const ModelConfig& cfg) {\n"
                   "  build_compact(cfg, ws);\n"
                   "}\n"
                   "void helper() { std::vector<int> v(n); }\n")
        self.assertNotIn("env-hot-alloc", rules("src/dp/env_mat.cpp", ok_call))
        # Files outside the spec table keep their locals.
        self.assertNotIn("env-hot-alloc",
                         rules("src/md/lattice.cpp",
                               "void compute() { std::vector<int> v(n); }\n"))

    def test_raw_intrinsics(self):
        # Calls, types and the intrinsic headers all fire outside the wrapper.
        self.assertIn("raw-intrinsics",
                      rules("src/tab/table.cpp", "__m256d y = _mm256_loadu_pd(p);\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/common/tanh_table.cpp", "#include <immintrin.h>\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/dp/prod_force.cpp", "__mmask8 k = 0xff;\n"))
        self.assertIn("raw-intrinsics",
                      rules("bench/tanh_tabulation.cpp", "x = _mm_sfence();\n"))
        # The wrapper header is the sanctioned home for all of the above.
        ok = ("#include <immintrin.h>\n"
              "__m512d v8_loadu(const double* p) { return _mm512_loadu_pd(p); }\n")
        self.assertNotIn("raw-intrinsics", rules("src/common/simd.hpp", ok))
        # Wrapper-level code elsewhere stays clean.
        self.assertNotIn("raw-intrinsics",
                         rules("src/tab/table.cpp",
                               "simd::v4d y = simd::v4_fmadd(a, b, c);\n"))

    def test_raw_intrinsics_float_lane(self):
        # The float-lane surface fires exactly like the double one: bare
        # float vector types, _ps intrinsics, fp16 vectors and _ph/cvtph
        # intrinsics, and the wide mask type.
        self.assertIn("raw-intrinsics",
                      rules("src/tab/table_sp.cpp", "__m256 y = _mm256_loadu_ps(p);\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/fused/mixed_model.cpp", "__m512 v;\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/tab/table_sp.cpp", "x = _mm512_fmadd_ps(a, b, c);\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/tab/table_sp.cpp", "__m256h hvec;\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/tab/table_sp.cpp",
                            "auto w = _mm256_cvtph_ps(_mm_loadu_si128(p));\n"))
        self.assertIn("raw-intrinsics",
                      rules("src/fused/mixed_model.cpp", "__mmask16 k = 0xffff;\n"))
        # The float wrappers are the sanctioned spelling outside simd.hpp.
        self.assertNotIn("raw-intrinsics",
                         rules("src/tab/table_sp.cpp",
                               "simd::f16 y = simd::f16_fmadd(a, b, c);\n"))
        ok = ("#include <immintrin.h>\n"
              "__m512 f16_loadu(const float* p) { return _mm512_loadu_ps(p); }\n")
        self.assertNotIn("raw-intrinsics", rules("src/common/simd.hpp", ok))

    def test_hot_pragma_simd(self):
        # A pragma in a converted hot-loop body (outside any *_scalar
        # function) means the loop slipped off the dispatcher.
        bad = ("void rank1_update(const double* r, double* a, std::size_t m) {\n"
               "#pragma omp simd\n"
               "  for (std::size_t b = 0; b < m; ++b) a[b] += r[0];\n"
               "}\n")
        for rel in ("src/fused/fused_model.cpp", "src/fused/mixed_model.cpp",
                    "src/dp/descriptor.cpp", "src/dp/prod_force.cpp"):
            self.assertIn("hot-pragma-simd", rules(rel, bad), msg=rel)
        # Inside a *_scalar seed body the pragma is the preserved contract.
        ok = ("void rank1_update_scalar(const double* r, double* a, std::size_t m) {\n"
              "#pragma omp simd reduction(+ : acc)\n"
              "  for (std::size_t b = 0; b < m; ++b) acc += r[b];\n"
              "}\n")
        self.assertNotIn("hot-pragma-simd", rules("src/fused/fused_model.cpp", ok))
        # A *_scalar body must bound the exemption: a pragma after its
        # closing brace still fires.
        mixed_src = (ok +
                     "void other(double* a, std::size_t m) {\n"
                     "#pragma omp simd\n"
                     "  for (std::size_t b = 0; b < m; ++b) a[b] = 0;\n"
                     "}\n")
        self.assertIn("hot-pragma-simd", rules("src/dp/descriptor.cpp", mixed_src))
        # Call sites of *_scalar functions are not bodies; other pragmas and
        # other files stay out of scope.
        call_site = ("void dispatch() { rank1_update_scalar(r, a, m); }\n")
        self.assertNotIn("hot-pragma-simd", rules("src/fused/fused_model.cpp", call_site))
        other_pragma = "#pragma omp parallel for\nvoid f();\n"
        self.assertNotIn("hot-pragma-simd",
                         rules("src/fused/fused_model.cpp", other_pragma))
        self.assertNotIn("hot-pragma-simd", rules("src/tab/table.cpp", bad))

    def test_narrowing_cast(self):
        self.assertIn("narrowing-cast", rules("src/md/neighbor.cpp", "int j = (int)a;\n"))
        self.assertIn("narrowing-cast", rules("src/md/neighbor.hpp", "x = (unsigned)n;\n"))
        self.assertIn("narrowing-cast",
                      rules("src/md/neighbor.cpp", "y = (long long)(a * b);\n"))
        self.assertNotIn("narrowing-cast",
                         rules("src/md/neighbor.cpp", "auto j = static_cast<int>(a);\n"))
        self.assertNotIn("narrowing-cast",
                         rules("src/md/neighbor.cpp", "auto b = n * sizeof(int);\n"))
        self.assertNotIn("narrowing-cast", rules("src/md/neighbor.cpp", "void f(int);\n"))
        # Other files are outside the rule's scope.
        self.assertNotIn("narrowing-cast", rules("src/md/lattice.cpp", "int j = (int)a;\n"))

    def test_signal_safety(self):
        # Each class of hazard fires inside a marked body.
        for body, label in (
            ("char b[64]; snprintf(b, sizeof(b), \"%d\", sig);", "stdio"),
            ("std::string s = path;", "std::string"),
            ("std::lock_guard<std::mutex> g(mu_);", "lock"),
            ("int* p = new int[4];", "new"),
            ("free(p);", "free"),
            ("throw Error(\"boom\");", "throw"),
            ("std::cerr << sig;", "iostream"),
        ):
            src = f"DP_SIGNAL_SAFE void on_crash(int sig) noexcept {{ {body} }}\n"
            self.assertIn("signal-safety", rules("src/obs/foo.cpp", src),
                          msg=f"should fire on {label}")
        # The sanctioned vocabulary stays silent: raw fds + stack buffers.
        ok = ("DP_SIGNAL_SAFE void dump(int fd) noexcept {\n"
              "  char buf[64];\n"
              "  std::memcpy(buf, src, n);\n"
              "  ::write(fd, buf, n);\n"
              "  ::fsync(fd);\n"
              "  ::close(::open(path, 0));\n"
              "  ::raise(sig);\n"
              "}\n")
        self.assertEqual([], rules("src/obs/foo.cpp", ok))
        # A declaration has no body to scan; the macro definition line is
        # preprocessor, not a marker; unmarked functions are unrestricted.
        decl = ("#define DP_SIGNAL_SAFE\n"
                "DP_SIGNAL_SAFE void dump(int fd) const;\n"
                "void logger() { printf(\"%d\", 1); std::string s; }\n")
        self.assertNotIn("signal-safety", rules("src/obs/foo.hpp", decl))
        # A marked body followed by an unmarked allocating function: the
        # scanner must stop at the closing brace.
        bounded = ("DP_SIGNAL_SAFE void dump(int fd) noexcept { ::write(fd, b, n); }\n"
                   "void setup() { std::vector<int> v(8); }\n")
        self.assertNotIn("signal-safety", rules("src/obs/foo.cpp", bounded))

    def test_lock_annotations(self):
        # Raw primitives are banned anywhere in src/.
        self.assertIn("lock-annotations", rules("src/md/foo.hpp", "std::mutex mu_;\n"))
        self.assertIn("lock-annotations",
                      rules("src/obs/foo.cpp", "std::condition_variable cv_;\n"))
        self.assertIn("lock-annotations",
                      rules("src/md/foo.cpp", "std::lock_guard lock(mu_);\n"))
        self.assertIn("lock-annotations",
                      rules("src/md/foo.cpp", "std::unique_lock<std::mutex> lk(mu_);\n"))
        self.assertIn("lock-annotations", rules("src/md/foo.hpp", "std::shared_mutex rw_;\n"))
        # The wrapper header is the one sanctioned home of the raw types;
        # outside src/ (tests, bench) the rule does not apply.
        self.assertNotIn("lock-annotations",
                         rules("src/common/thread_annotations.hpp", "std::mutex mu_;\n"))
        self.assertNotIn("lock-annotations", rules("tests/md/foo.cpp", "std::mutex mu_;\n"))
        # A class with a dp::Mutex member must annotate what it guards.
        bad = ("class Registry {\n"
               "  Mutex mu_;\n"
               "  int count_ = 0;\n"
               "};\n")
        self.assertIn("lock-annotations", rules("src/obs/foo.hpp", bad))
        ok = ("class Registry {\n"
              "  Mutex mu_;\n"
              "  int count_ DP_GUARDED_BY(mu_) = 0;\n"
              "};\n")
        self.assertEqual([], rules("src/obs/foo.hpp", ok))
        # MutexLock locals are not Mutex members (no whitespace after the
        # type name); forward declarations have no body to scan.
        uses = ("class Walker {\n"
                " public:\n"
                "  void walk() { MutexLock lock(mu_); ++n_; }\n"
                " private:\n"
                "  Mutex mu_;\n"
                "  long n_ DP_GUARDED_BY(mu_) = 0;\n"
                "};\n"
                "class Later;\n")
        self.assertEqual([], rules("src/common/foo.hpp", uses))

    def test_signal_safety_covers_dp_wrappers(self):
        # The capability-aware wrappers are still locks: banned in
        # DP_SIGNAL_SAFE bodies exactly like the std:: primitives they wrap.
        src = ("DP_SIGNAL_SAFE void on_crash(int sig) noexcept "
               "{ MutexLock lock(g_mu); }\n")
        self.assertIn("signal-safety", rules("src/obs/foo.cpp", src))
        cv = ("DP_SIGNAL_SAFE void on_crash(int sig) noexcept "
              "{ g_cv.notify_all(); CondVar* c = &g_cv; }\n")
        self.assertIn("signal-safety", rules("src/obs/foo.cpp", cv))

    def test_sp_precision(self):
        self.assertIn("sp-precision", rules("src/tab/table_sp.hpp", "double h_;\n"))
        self.assertIn("sp-precision", rules("src/tab/table_sp.cpp", "long double x;\n"))
        # Prose mentioning double is fine; other tab files are unrestricted.
        self.assertNotIn("sp-precision",
                         rules("src/tab/table_sp.cpp", "// reduced in double by callers\nfloat x;\n"))
        self.assertNotIn("sp-precision", rules("src/tab/table.cpp", "double h_;\n"))


class TreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        root = os.path.dirname(_TOOLS)
        findings = []
        for rel in dplint.collect_files(root, []):
            with open(os.path.join(root, rel), encoding="utf-8", errors="replace") as fh:
                findings.extend(dplint.lint_file(rel.replace(os.sep, "/"), fh.read()))
        self.assertEqual([], [str(f) for f in findings])


if __name__ == "__main__":
    sys.exit(unittest.main())
