// Precision ablation — the paper's future-work direction (Sec 7) and the
// counterpart of its Table 1 mixed-precision baseline rows: the fused
// kernel in double vs mixed (single-precision embedding work, double
// reductions). Reports speed, table memory, and the accuracy cost.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "fused/mixed_model.hpp"

using namespace dpbench;

namespace {

void run_system(const char* label, Workload& w) {
  const std::size_t n = w.sys.atoms.size();
  dp::fused::FusedDP fused(w.tabulated);
  dp::fused::MixedFusedDP mixed(w.tabulated, dp::fused::MixedPrecision::Single);
  dp::fused::MixedFusedDP half(w.tabulated, dp::fused::MixedPrecision::Half);

  dp::md::Atoms atoms_d = w.sys.atoms;
  const double e_d = fused.compute(w.sys.box, atoms_d, w.nlist, w.periodic).energy;

  auto accuracy = [&](dp::md::ForceField& ff, double& e_err, double& f_rmse) {
    dp::md::Atoms atoms = w.sys.atoms;
    const double e = ff.compute(w.sys.box, atoms, w.nlist, w.periodic).energy;
    e_err = std::abs(e_d - e) / static_cast<double>(n);
    f_rmse = 0;
    for (std::size_t i = 0; i < n; ++i) f_rmse += norm2(atoms_d.force[i] - atoms.force[i]);
    f_rmse = std::sqrt(f_rmse / (3.0 * static_cast<double>(n)));
  };
  double e_m, f_m, e_h, f_h;
  accuracy(mixed, e_m, f_m);
  accuracy(half, e_h, f_h);

  const double t_d = time_force_eval(fused, w);
  const double t_m = time_force_eval(mixed, w);
  const double t_h = time_force_eval(half, w);

  std::printf("\n%s (%zu atoms)\n", label, n);
  std::printf("%-26s %14s %14s %14s\n", "", "double", "mixed-single", "mixed-half");
  print_rule(74);
  std::printf("%-26s %14.3f %14.3f %14.3f\n", "us/step/atom", t_d / n * 1e6, t_m / n * 1e6,
              t_h / n * 1e6);
  std::printf("%-26s %11.1f KB %11.1f KB %11.1f KB\n", "table memory",
              w.tabulated.total_bytes() / 1024.0, mixed.table_bytes() / 1024.0,
              half.table_bytes() / 1024.0);
  std::printf("%-26s %14s %14.2e %14.2e\n", "energy err [eV/atom]", "0", e_m, e_h);
  std::printf("%-26s %14s %14.2e %14.2e\n", "force RMSE [eV/A]", "0", f_m, f_h);
}

}  // namespace

int main() {
  std::printf("Precision ablation (paper Sec 7 future work / Table 1 mixed rows)\n");
  auto water = water_workload();
  run_system("water", *water);
  auto copper = copper_workload();
  run_system("copper", *copper);
  std::printf(
      "\nReading: the float tables halve the shipped model memory at negligible\n"
      "accuracy cost (the 1/N_m-normalized descriptor keeps per-slot gradients\n"
      "small, so float noise stays ~1e-10 eV/A here). Wall-clock is flat on this\n"
      "host because the fused working set is cache-resident — the bandwidth\n"
      "saving that made the paper's mixed-precision baseline 3x faster only\n"
      "materializes on memory-bound accelerators, which is exactly why the\n"
      "paper defers optimized-path mixed precision to future work (Sec 7).\n");
  return 0;
}
