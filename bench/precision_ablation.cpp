// Precision ablation — the paper's future-work direction (Sec 7) and the
// counterpart of its Table 1 mixed-precision baseline rows: the fused
// kernel in double vs mixed (single-precision embedding work, double
// reductions). Reports speed, table memory, and the accuracy cost, and
// emits BENCH_mixed.json for the bench-regression gate (one "mixed" event
// per system keyed by atom count; see tools/bench_compare.py).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/simd.hpp"
#include "fused/mixed_model.hpp"
#include "obs/metrics.hpp"

using namespace dpbench;

namespace {

void run_system(const char* label, Workload& w, dp::obs::MetricsRegistry& reg) {
  const std::size_t n = w.sys.atoms.size();
  dp::fused::FusedDP fused(w.tabulated);
  dp::fused::MixedFusedDP mixed(w.tabulated, dp::fused::MixedPrecision::Single);
  dp::fused::MixedFusedDP half(w.tabulated, dp::fused::MixedPrecision::Half);

  dp::md::Atoms atoms_d = w.sys.atoms;
  const double e_d = fused.compute(w.sys.box, atoms_d, w.nlist, w.periodic).energy;

  auto accuracy = [&](dp::md::ForceField& ff, double& e_err, double& f_rmse) {
    dp::md::Atoms atoms = w.sys.atoms;
    const double e = ff.compute(w.sys.box, atoms, w.nlist, w.periodic).energy;
    e_err = std::abs(e_d - e) / static_cast<double>(n);
    f_rmse = 0;
    for (std::size_t i = 0; i < n; ++i) f_rmse += norm2(atoms_d.force[i] - atoms.force[i]);
    f_rmse = std::sqrt(f_rmse / (3.0 * static_cast<double>(n)));
  };
  double e_m, f_m, e_h, f_h;
  accuracy(mixed, e_m, f_m);
  accuracy(half, e_h, f_h);

  const double t_d = time_force_eval(fused, w);
  const double t_m = time_force_eval(mixed, w);
  const double t_h = time_force_eval(half, w);

  const double bytes_d = static_cast<double>(w.tabulated.total_bytes());
  const double bytes_m = static_cast<double>(mixed.table_bytes());
  const double bytes_h = static_cast<double>(half.table_bytes());

  // Coefficient traffic per force call: every neighbor pair walks one
  // 6-coefficient channel row per embedding output, in the table's element
  // width. Structural (neighbor list and model are deterministic), so the
  // per-step byte saving of the narrow tables is gated, not just the
  // resident table size.
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) pairs += w.nlist.neighbors(i).size();
  const std::size_t m = w.tabulated.model().config().m();
  const double coeff_reads = static_cast<double>(pairs * m * 6);

  std::printf("\n%s (%zu atoms)\n", label, n);
  std::printf("%-26s %14s %14s %14s\n", "", "double", "mixed-single", "mixed-half");
  print_rule(74);
  std::printf("%-26s %14.3f %14.3f %14.3f\n", "us/step/atom", t_d / n * 1e6, t_m / n * 1e6,
              t_h / n * 1e6);
  std::printf("%-26s %11.1f KB %11.1f KB %11.1f KB\n", "table memory", bytes_d / 1024.0,
              bytes_m / 1024.0, bytes_h / 1024.0);
  std::printf("%-26s %11.1f MB %11.1f MB %11.1f MB\n", "table bytes/step",
              coeff_reads * 8 / 1048576.0, coeff_reads * 4 / 1048576.0,
              coeff_reads * 2 / 1048576.0);
  std::printf("%-26s %14s %14.2e %14.2e\n", "energy err [eV/atom]", "0", e_m, e_h);
  std::printf("%-26s %14s %14.2e %14.2e\n", "force RMSE [eV/A]", "0", f_m, f_h);

  reg.record_event("mixed", {
                                {"atoms", static_cast<double>(n)},
                                {"table_bytes_double", bytes_d},
                                {"table_bytes_single", bytes_m},
                                {"table_bytes_half", bytes_h},
                                {"single_bytes_ratio", bytes_m / bytes_d},
                                {"half_bytes_ratio", bytes_h / bytes_d},
                                {"step_bytes_double", coeff_reads * 8},
                                {"step_bytes_single", coeff_reads * 4},
                                {"step_bytes_half", coeff_reads * 2},
                                {"double_seconds", t_d},
                                {"single_seconds", t_m},
                                {"half_seconds", t_h},
                                {"single_force_rmse", f_m},
                                {"half_force_rmse", f_h},
                                {"lanes_sp", static_cast<double>(dp::simd::lanes_sp())},
                            });
}

}  // namespace

int main() {
  std::printf("Precision ablation (paper Sec 7 future work / Table 1 mixed rows)\n");
  dp::obs::MetricsRegistry reg;
  auto water = water_workload();
  run_system("water", *water, reg);
  auto copper = copper_workload();
  run_system("copper", *copper, reg);
  std::printf(
      "\nReading: the float tables halve (quarter, for half precision) both the\n"
      "shipped model memory and the coefficient bytes streamed per step, at\n"
      "negligible accuracy cost — the 1/N_m-normalized descriptor keeps\n"
      "per-slot gradients small, so float noise stays ~1e-10 eV/A here. With\n"
      "the float-lane batched kernels the narrow tables now also win\n"
      "wall-clock on wide-SIMD hosts (twice the lanes per instruction); the\n"
      "full 3x of the paper's mixed-precision baseline still needs the\n"
      "memory-bound regime of its accelerator (Sec 7).\n");
  if (reg.write_json_file("BENCH_mixed.json")) std::printf("wrote BENCH_mixed.json\n");
  return 0;
}
