// Fig 6: flat MPI vs MPI+OpenMP hybrid parallelization. On the many-core
// A64FX, flat MPI keeps 48 model/graph copies and maximizes ghost traffic;
// the hybrid scheme (each thread owns a fraction of the sub-region, one
// model copy per rank) cuts both. We sweep ranks at a fixed total worker
// count and account model memory and communication volume — the two
// quantities the paper's Sec 3.5.4 argument rests on.
#include <cstdio>
#include <memory>

#include <omp.h>

#include "bench_util.hpp"
#include "parallel/distributed_md.hpp"

using namespace dpbench;

int main() {
  std::printf("Fig 6 reproduction — flat MPI vs MPI+OpenMP hybrid\n\n");

  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  dp::core::DPModel model(cfg, 5);
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01};
  dp::tab::TabulatedDP tabulated(model, spec);

  // Table size stands in for the per-rank model/graph copy the paper counts
  // (13 MB copper graph; our table plus weights).
  const double model_mb = static_cast<double>(tabulated.total_bytes()) / 1e6 + 1.0;

  auto sys = dp::md::make_fcc(8, 8, 8, 3.634, 63.546, 0.05, 3);
  dp::md::SimulationConfig sim;
  sim.dt = 0.001;
  sim.steps = 8;
  sim.temperature = 330.0;
  sim.skin = 1.0;
  sim.rebuild_every = 4;
  sim.thermo_every = 8;

  const int total_workers = 8;
  std::printf("system: %zu atoms; %d workers split as ranks x threads\n\n", sys.atoms.size(),
              total_workers);
  std::printf("%12s %14s %14s %12s %10s %10s %8s %10s\n", "ranks x thr", "model mem",
              "comm [KB]", "ghosts", "wait [s]", "hidden [s]", "overlap", "wall [s]");
  print_rule();

  for (int ranks : {1, 2, 4, 8}) {
    const int threads = total_workers / ranks;
    omp_set_num_threads(threads);  // threads partition each rank's atoms (Fig 6 (c))
    dp::par::DistributedOptions opts;
    const auto result = dp::par::run_distributed_md(
        ranks, sys, [&] { return std::make_unique<dp::fused::FusedDP>(tabulated); }, sim,
        opts);
    std::printf("%7dx%-4d %11.1f MB %14.1f %12zu %10.4f %10.4f %7.0f%% %10.3f\n", ranks,
                threads, model_mb * ranks, result.comm.bytes / 1024.0,
                result.max_ghost_atoms, result.halo_wait_seconds,
                result.halo_hidden_seconds, 100.0 * result.halo_overlap_ratio,
                result.wall_seconds);
  }
  omp_set_num_threads(1);

  std::printf("\nExpected shape (paper): model memory scales with rank count (48 copies\n"
              "exhausted the A64FX flat-MPI; 16x3 fit 1.5x larger systems) and ghost\n"
              "traffic shrinks as ranks coarsen — the hybrid wins on both axes.\n"
              "'hidden' is compute done while ghost exchanges were in flight (the\n"
              "nonblocking isend/irecv overlap, Sec 3.5.4 latency hiding): wait that\n"
              "never lands on the critical path. overlap = hidden / (hidden + wait).\n"
              "(Wall time on this 1-core host does not resolve thread speedup.)\n");
  return 0;
}
