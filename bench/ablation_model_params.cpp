// Design-choice ablations not tied to one paper figure (DESIGN.md Sec 6):
//   (a) embedding width d1 — the paper's FLOP formulas predict baseline cost
//       ~ d1^2 but tabulated cost ~ d1 (M = 4 d1), so the tabulation payoff
//       grows with the net;
//   (b) axis_neuron M< — descriptor/fitting cost vs accuracy knob;
//   (c) neighbor-list rebuild period — the paper rebuilds every 50 steps
//       with a 2 A skin; this sweeps the cost-safety tradeoff.
#include <cstdio>

#include "bench_util.hpp"
#include "fused/se_r_model.hpp"
#include "dp/baseline_model.hpp"
#include "md/simulation.hpp"

using namespace dpbench;

namespace {

void sweep_d1() {
  std::printf("(a) embedding width d1 (copper cluster, M = 4 d1)\n");
  std::printf("%6s %18s %18s %10s\n", "d1", "baseline us/atom", "fused us/atom", "ratio");
  print_rule(58);
  for (std::size_t d1 : {8u, 16u, 32u}) {
    dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
    cfg.embed_widths = {d1, 2 * d1, 4 * d1};
    cfg.axis_neuron = 8;
    cfg.fit_widths = {64, 64, 64};
    auto block = dp::md::make_fcc(3, 3, 3, 3.634, 63.546, 0.08, 5);
    dp::md::Configuration cluster;
    cluster.box = dp::md::Box(200, 200, 200);
    cluster.atoms = block.atoms;
    for (auto& r : cluster.atoms.pos) r += dp::Vec3{80, 80, 80};
    Workload w(cfg, 9, 0.01, 1.8, std::move(cluster), 1.0, false);
    const auto n = static_cast<double>(w.sys.atoms.size());

    dp::core::BaselineDP base(w.model);
    dp::fused::FusedDP fused(w.tabulated);
    const double tb = time_force_eval(base, w);
    const double tf = time_force_eval(fused, w);
    std::printf("%6zu %18.3f %18.3f %9.2fx\n", d1, tb / n * 1e6, tf / n * 1e6, tb / tf);
  }
  std::printf("expected: the baseline grows ~d1^2, the fused path ~d1 — the speedup\n"
              "ratio widens with the net, as the paper's (1+10 d1)/56 analysis says.\n\n");
}

void sweep_axis_neuron() {
  std::printf("(b) axis neurons M< (descriptor dim = M< x M)\n");
  std::printf("%6s %14s %16s\n", "M<", "descr. dim", "fused us/atom");
  print_rule(42);
  for (std::size_t ms : {4u, 8u, 16u, 32u}) {
    dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
    cfg.embed_widths = {16, 32, 64};
    cfg.axis_neuron = ms;
    cfg.fit_widths = {64, 64, 64};
    auto block = dp::md::make_fcc(3, 3, 3, 3.634, 63.546, 0.08, 5);
    dp::md::Configuration cluster;
    cluster.box = dp::md::Box(200, 200, 200);
    cluster.atoms = block.atoms;
    for (auto& r : cluster.atoms.pos) r += dp::Vec3{80, 80, 80};
    Workload w(cfg, 9, 0.01, 1.8, std::move(cluster), 1.0, false);
    dp::fused::FusedDP fused(w.tabulated);
    const double tf = time_force_eval(fused, w);
    std::printf("%6zu %14zu %16.3f\n", ms, cfg.descriptor_dim(),
                tf / static_cast<double>(w.sys.atoms.size()) * 1e6);
  }
  std::printf("expected: cost grows with M< through the fitting net's input layer;\n"
              "the paper fixes M< = 16 for both systems.\n\n");
}

void sweep_rebuild() {
  std::printf("(c) neighbor-list rebuild period (copper MD, 2 A skin)\n");
  std::printf("%10s %16s %14s\n", "period", "us/step/atom", "drift [eV]");
  print_rule(44);
  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  dp::core::DPModel model(cfg, 3);
  dp::tab::TabulatedDP tab(model, {0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01});
  for (int period : {1, 5, 25, 50}) {
    dp::fused::FusedDP ff(tab);
    auto sys = dp::md::make_fcc(5, 5, 5, 3.634, 63.546, 0.02, 4);
    dp::md::SimulationConfig sc;
    sc.dt = 0.001;
    sc.steps = 50;
    sc.temperature = 300.0;
    sc.skin = 2.0;
    sc.rebuild_every = period;
    sc.thermo_every = 50;
    dp::md::Simulation md(sys, ff, sc);
    dp::WallTimer t;
    const auto& trace = md.run();
    const double us = t.seconds() / md.force_evaluations() /
                      static_cast<double>(sys.atoms.size()) * 1e6;
    std::printf("%10d %16.3f %14.2e\n", period, us,
                trace.back().total() - trace.front().total());
  }
  std::printf("expected: rebuilding less often amortizes the list cost with no drift\n"
              "penalty while the skin/2 criterion holds — the paper settles on 50.\n");
}

}  // namespace

void sweep_staging() {
  std::printf("\n(d) fused-kernel staging: two table walks vs row-cache (one walk)\n");
  std::printf("%14s %18s %18s\n", "system", "2-walk us/atom", "cached us/atom");
  print_rule(54);
  for (const char* which : {"water", "copper"}) {
    auto w = which[0] == 'w' ? water_workload(0.01, false) : copper_workload(0.01, false);
    dp::fused::FusedDP two_walk(w->tabulated, {.cache_rows = false});
    dp::fused::FusedDP cached(w->tabulated, {.cache_rows = true});
    const double t2 = time_force_eval(two_walk, *w);
    const double t1 = time_force_eval(cached, *w);
    const double n = static_cast<double>(w->sys.atoms.size());
    std::printf("%14s %18.3f %18.3f\n", which, t2 / n * 1e6, t1 / n * 1e6);
  }
  std::printf("expected: caching trades O(N_m x M) per-thread scratch for half the\n"
              "table walks — it wins when table lookups dominate (fine intervals,\n"
              "cold caches), and loses nothing here since the scratch stays in L2.\n");
}

void sweep_descriptor() {
  std::printf("\n(e) descriptor flavor: se_a (paper) vs radial se_r\n");
  std::printf("%8s %14s %16s\n", "kind", "descr. dim", "us/step/atom");
  print_rule(42);
  for (int kind = 0; kind < 2; ++kind) {
    dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
    cfg.embed_widths = {16, 32, 64};
    cfg.axis_neuron = 8;
    cfg.fit_widths = {64, 64, 64};
    if (kind == 1) cfg.descriptor = dp::core::DescriptorKind::SeR;
    auto block = dp::md::make_fcc(3, 3, 3, 3.634, 63.546, 0.08, 5);
    dp::md::Configuration cluster;
    cluster.box = dp::md::Box(200, 200, 200);
    cluster.atoms = block.atoms;
    for (auto& r : cluster.atoms.pos) r += dp::Vec3{80, 80, 80};
    Workload w(cfg, 9, 0.01, 1.8, std::move(cluster), 1.0, false);
    double t;
    if (kind == 0) {
      dp::fused::FusedDP ff(w.tabulated);
      t = time_force_eval(ff, w);
    } else {
      dp::fused::SeRFusedDP ff(w.tabulated);
      t = time_force_eval(ff, w);
    }
    std::printf("%8s %14zu %16.3f\n", kind == 0 ? "se_a" : "se_r", cfg.descriptor_dim(),
                t / static_cast<double>(w.sys.atoms.size()) * 1e6);
  }
  std::printf("expected: se_r skips the 4-column contraction and shrinks the fitting\n"
              "input M< x M -> M; DeePMD trades its expressiveness for this speed.\n");
}

int main() {
  std::printf("Model / protocol ablations (DESIGN.md Sec 6)\n\n");
  sweep_d1();
  sweep_axis_neuron();
  sweep_rebuild();
  sweep_staging();
  sweep_descriptor();
  return 0;
}
