// Fig 2: accuracy of the tabulated model vs the original network, for
// interval sizes 0.1 / 0.01 / 0.001 (paper: RMSE_E falls from ~2e-5 to the
// double-precision floor ~5e-15 eV/atom; RMSE_F from ~6e-5 to ~4e-13 eV/A).
//
// The stand-in networks are sharpened (weights x1.5, see bench_util.hpp) so
// their curvature — and therefore the interpolation error magnitudes —
// lands in the range of the paper's trained models. The law being
// reproduced is the monotone collapse onto the double-precision floor and
// the growth of the table with 1/interval.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dp/baseline_model.hpp"

using namespace dpbench;

namespace {

void run_system(const char* label,
                std::unique_ptr<Workload> (*make)(double),
                int n_frames) {
  std::printf("\n%s (%d test configurations)\n", label, n_frames);
  std::printf("%10s %14s %18s %18s\n", "interval", "table [MB]", "RMSE_E [eV/atom]",
              "RMSE_F [eV/A]");
  print_rule();

  for (double interval : {0.1, 0.01, 0.001}) {
    auto w = make(interval);
    dp::core::BaselineDP reference(w->model);
    dp::tab::CompressedDP compressed(w->tabulated);

    double se = 0.0, sf = 0.0;
    std::size_t n_atoms = 0;
    dp::Rng rng(1234);
    for (int frame = 0; frame < n_frames; ++frame) {
      // Thermal-like disorder: perturb each frame independently.
      dp::md::Configuration frame_sys = w->sys;
      for (auto& r : frame_sys.atoms.pos)
        r += dp::Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
                      rng.uniform(-0.05, 0.05)};
      dp::md::NeighborList nl(w->model.config().rcut, 1.0);
      nl.build(frame_sys.box, frame_sys.atoms.pos, SIZE_MAX, w->periodic);

      dp::md::Atoms ref_atoms = frame_sys.atoms;
      reference.compute(frame_sys.box, ref_atoms, nl, w->periodic);
      const auto ref_e = reference.atom_energies();

      dp::md::Atoms tab_atoms = frame_sys.atoms;
      compressed.compute(frame_sys.box, tab_atoms, nl, w->periodic);
      const auto tab_e = compressed.atom_energies();

      for (std::size_t i = 0; i < ref_atoms.size(); ++i) {
        se += (tab_e[i] - ref_e[i]) * (tab_e[i] - ref_e[i]);
        sf += norm2(tab_atoms.force[i] - ref_atoms.force[i]);
      }
      n_atoms += ref_atoms.size();
    }
    const double rmse_e = std::sqrt(se / static_cast<double>(n_atoms));
    const double rmse_f = std::sqrt(sf / (3.0 * static_cast<double>(n_atoms)));
    std::printf("%10.3f %14.2f %18.3e %18.3e\n", interval,
                static_cast<double>(w->tabulated.total_bytes()) / 1e6, rmse_e, rmse_f);
  }
}

}  // namespace

int main() {
  std::printf("Fig 2 reproduction — tabulated vs original DP model accuracy\n");
  run_system("water", [](double interval) {
    return water_workload(interval, true, /*sharpen=*/1.5);
  }, 5);
  run_system("copper", [](double interval) {
    return copper_workload(interval, true, 3, /*sharpen=*/1.5);
  }, 5);
  std::printf("\nExpected shape (paper): RMSE drops by orders of magnitude per 10x finer\n"
              "interval until the double-precision floor; table size grows ~10x per step\n"
              "(paper water: 33 MB at 0.01, 257 MB at 0.001 for its wider s-domain).\n");
  return 0;
}
