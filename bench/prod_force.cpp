// Environment-matrix layout + force-scatter benchmark: dense padded vs
// compact CSR across a slot-reservation (padding) sweep, env build and
// prod_force time vs thread count, and the steady-state allocation check.
//
// This is the memory story of the compact rewrite: at copper-like
// reservations (sel far above the ambient neighbor count) the dense layout
// is mostly the paper's "redundant zeros", and the CSR stores less than
// half the bytes while the prod scatter walks exactly the same filled
// slots. Acceptance: compact/dense bytes <= 0.5 on the padded rows,
// alloc-free = yes everywhere.
//
// Machine note: the harness host is a single CPU core, so thread counts
// above 1 oversubscribe it and speedups read ~1x; the lane-deterministic
// fold guarantees the FORCES are byte-identical at every row regardless.
#include <omp.h>

#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "nn/embedding_net.hpp"
#include "obs/metrics.hpp"
#include "tab/table.hpp"

namespace {

using dp::core::EnvMat;
using dp::core::EnvMatKernel;

struct Point {
  double env_seconds = 0.0;
  double prod_seconds = 0.0;
  std::size_t layout_bytes = 0;  ///< what this layout stores for the system
  bool alloc_free = false;
};

Point time_kernel(const dp::core::ModelConfig& cfg, const dp::md::Configuration& sys,
                  const dp::md::NeighborList& nlist, EnvMatKernel kernel, int threads) {
  omp_set_num_threads(threads);
  EnvMat env;
  dp::core::EnvMatWorkspace env_ws;
  dp::core::ProdForceWorkspace prod_ws;
  // Warm-up grows every grow-only buffer to its plateau for this frame.
  for (int i = 0; i < 3; ++i)
    dp::core::build_env_mat(cfg, sys.box, sys.atoms, nlist, env, env_ws, kernel);

  // Synthetic per-slot gradients: the scatter's cost depends only on the
  // slot walk, not on where the gradients came from.
  dp::AlignedVector<double> g_rmat(env.stored_slots() * 4);
  dp::Rng rng(99);
  for (double& v : g_rmat) v = rng.uniform(-1.0, 1.0);
  std::vector<dp::Vec3> forces(sys.atoms.size());
  dp::Mat3 virial{};
  prod_force_virial(env, g_rmat.data(), sys.box, sys.atoms, true, forces, virial, prod_ws);

  Point p;
  p.layout_bytes = env.compact() ? env.compact_bytes() : env.dense_bytes();
  const std::size_t plateau = env.storage_bytes() + env_ws.bytes() + prod_ws.bytes();
  p.env_seconds =
      dp::time_per_call([&] { dp::core::build_env_mat(cfg, sys.box, sys.atoms, nlist, env,
                                                      env_ws, kernel); },
                        /*min_seconds=*/0.08, /*max_iters=*/40, /*repeats=*/3);
  p.prod_seconds = dp::time_per_call(
      [&] {
        for (auto& f : forces) f = {0.0, 0.0, 0.0};
        prod_force_virial(env, g_rmat.data(), sys.box, sys.atoms, true, forces, virial,
                          prod_ws);
      },
      /*min_seconds=*/0.08, /*max_iters=*/40, /*repeats=*/3);
  p.alloc_free = env.storage_bytes() + env_ws.bytes() + prod_ws.bytes() == plateau;
  return p;
}

struct TabPoint {
  double scalar_seconds = 0.0;
  double vector_seconds = 0.0;
};

/// Times the blocked-layout tabulation walk the compressed/fused models run
/// per step — eval_with_deriv_blocked_batch over every filled slot run of
/// the compact env matrix — at forced-scalar vs the dispatched SIMD level.
/// Same slot walk, same table, same outputs; only the dispatch differs.
TabPoint time_tabulation(const EnvMat& env, const dp::tab::TabulatedEmbedding& table) {
  const std::size_t m = table.output_dim();
  const std::size_t n = env.n_atoms;
  dp::AlignedVector<double> g(env.stored_slots() * m);
  dp::AlignedVector<double> dg(env.stored_slots() * m);
  auto walk = [&] {
    std::size_t row = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (int ty = 0; ty < env.ntypes; ++ty) {
        const std::size_t base = env.block_begin(i, ty);
        const int cnt = env.count(i, ty);
        if (cnt <= 0) continue;
        table.eval_with_deriv_blocked_batch(env.rmat_at(base), 4,
                                            static_cast<std::size_t>(cnt), g.data() + row * m,
                                            dg.data() + row * m, m, /*streaming=*/true);
        row += static_cast<std::size_t>(cnt);
      }
    }
  };
  const dp::simd::Level native = dp::simd::active();
  TabPoint p;
  dp::simd::force(dp::simd::Level::Scalar);
  p.scalar_seconds = dp::time_per_call(walk, 0.08, 40, 3);
  dp::simd::force(native);
  p.vector_seconds = dp::time_per_call(walk, 0.08, 40, 3);
  return p;
}

}  // namespace

int main() {
  std::printf(
      "Env-matrix layout + force scatter — dense padded vs compact CSR\n"
      "(copper FCC 6x6x6, 864 atoms, rc 8 A; sel sweep varies the padding)\n");
  dp::obs::MetricsRegistry reg;
  const auto sys = dp::md::make_fcc(6, 6, 6, 3.634, 63.546, 0.08, 77);
  dp::md::NeighborList nlist(8.0, 1.0);
  nlist.build(sys.box, sys.atoms.pos);
  // One tabulated embedding at the copper output width, reused across the
  // sel sweep; only the slot-run lengths change underneath it.
  const dp::core::ModelConfig tab_cfg = dp::core::ModelConfig::copper();
  dp::nn::EmbeddingNet tab_net({8, 16, tab_cfg.m()});
  dp::Rng tab_rng(4242);
  tab_net.init_random(tab_rng);
  const dp::tab::TabulatedEmbedding tab_table(tab_net, {0.0, 2.0, 0.001});
  const double lanes = static_cast<double>(dp::simd::lanes());
  std::printf("SIMD dispatch: %s (%zu lanes)\n", dp::simd::name(dp::simd::active()),
              dp::simd::lanes());
  const int thread_counts[] = {1, 2, 4, 8};
  // 160 ~ ambient occupancy (low padding), 300 mid, 500 the paper's copper
  // reservation (~70% padding at ambient density).
  const int sel_values[] = {160, 300, 500};
  for (int sel : sel_values) {
    dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
    cfg.sel = {sel};
    EnvMat probe;
    dp::core::build_env_mat(cfg, sys.box, sys.atoms, nlist, probe);
    const TabPoint tab = time_tabulation(probe, tab_table);
    std::printf("\nsel = %d  (padding %.0f%%, filled slots %zu)\n", sel,
                100.0 * probe.padding_fraction(), probe.filled_slots());
    std::printf("  tabulation walk (M=%zu): scalar %.3f ms, %s %.3f ms  (%.2fx)\n",
                tab_table.output_dim(), 1e3 * tab.scalar_seconds,
                dp::simd::name(dp::simd::active()), 1e3 * tab.vector_seconds,
                tab.scalar_seconds / tab.vector_seconds);
    std::printf("%8s %9s %13s %13s %14s %13s %11s\n", "threads", "layout", "env ms/build",
                "prod ms/call", "layout bytes", "bytes ratio", "alloc-free");
    for (int threads : thread_counts) {
      const Point dense = time_kernel(cfg, sys, nlist, EnvMatKernel::Baseline, threads);
      const Point compact = time_kernel(cfg, sys, nlist, EnvMatKernel::Optimized, threads);
      const double ratio = static_cast<double>(compact.layout_bytes) /
                           static_cast<double>(dense.layout_bytes);
      std::printf("%8d %9s %13.3f %13.3f %14zu %13s %11s\n", threads, "dense",
                  1e3 * dense.env_seconds, 1e3 * dense.prod_seconds, dense.layout_bytes, "-",
                  dense.alloc_free ? "yes" : "NO");
      std::printf("%8d %9s %13.3f %13.3f %14zu %12.2fx %11s\n", threads, "compact",
                  1e3 * compact.env_seconds, 1e3 * compact.prod_seconds, compact.layout_bytes,
                  ratio, compact.alloc_free ? "yes" : "NO");
      reg.record_event("prod_force",
                       {{"sel", static_cast<double>(sel)},
                        {"threads", static_cast<double>(threads)},
                        {"padding_fraction", probe.padding_fraction()},
                        {"dense_env_seconds", dense.env_seconds},
                        {"compact_env_seconds", compact.env_seconds},
                        {"dense_prod_seconds", dense.prod_seconds},
                        {"compact_prod_seconds", compact.prod_seconds},
                        {"dense_bytes", static_cast<double>(dense.layout_bytes)},
                        {"compact_bytes", static_cast<double>(compact.layout_bytes)},
                        {"bytes_ratio", ratio},
                        {"lanes", lanes},
                        {"tab_scalar_seconds", tab.scalar_seconds},
                        {"tab_vector_seconds", tab.vector_seconds},
                        {"steady_state_alloc_free",
                         dense.alloc_free && compact.alloc_free ? 1.0 : 0.0}});
    }
  }
  dpbench::print_rule();
  if (reg.write_json_file("BENCH_prod_force.json")) std::printf("wrote BENCH_prod_force.json\n");
  std::printf(
      "Acceptance shape: bytes ratio <= 0.50x at sel = 500 (copper-like\n"
      "padding), alloc-free = yes in every row. Forces are byte-identical at\n"
      "every thread count (tests/dp/test_env_compact.cpp). Where the host\n"
      "dispatches a vector level (lanes > 1) the tabulation walk should beat\n"
      "forced-scalar by >= 2x (tests/tab/test_simd_parity.cpp has the\n"
      "bit-level agreement story).\n");
  return 0;
}
