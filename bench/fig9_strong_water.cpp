// Fig 9: strong scaling of the water system — 41,472,000 atoms on Summit,
// 8,294,400 on Fugaku, 20 -> 4,560 nodes. Projected through the calibrated
// roofline + ghost-communication model (dp::perf), the same methodology the
// paper itself uses for machine-scale projections.
//
// Paper anchors: parallel efficiency at 4,560 nodes = 46.99% (Summit) and
// 41.20% (Fugaku); time-to-solution 6.0 and 2.1 ns/day.
#include <cstdio>
#include <memory>
#include <vector>

#include "fused/fused_model.hpp"
#include "obs/metrics.hpp"
#include "parallel/distributed_md.hpp"
#include "perf/scaling_model.hpp"
#include "tab/tabulated_model.hpp"

using namespace dp::perf;

namespace {

void run(const MachineSystem& sys, std::size_t natoms, dp::obs::MetricsRegistry& reg) {
  ScalingModel model(sys, WorkloadSpec::water(), Path::Fused);
  const std::vector<int> nodes{20, 40, 80, 160, 285, 570, 1140, 2280, 4560};
  const auto curve = model.strong_curve(natoms, nodes);
  std::printf("\n%s — %zu water atoms\n", sys.name.c_str(), natoms);
  std::printf("%8s %14s %14s %12s %12s\n", "nodes", "s/step", "efficiency", "ns/day",
              "atoms/rank");
  for (const auto& p : curve) {
    std::printf("%8d %14.5f %13.1f%% %12.2f %12.0f\n", p.nodes, p.step_seconds,
                100.0 * p.efficiency, p.ns_per_day, p.atoms_per_rank);
    reg.record_event("projected", sys.name,
                     {{"nodes", static_cast<double>(p.nodes)},
                      {"step_seconds", p.step_seconds},
                      {"efficiency", p.efficiency},
                      {"ns_per_day", p.ns_per_day},
                      {"atoms_per_rank", p.atoms_per_rank}});
  }
}

}  // namespace

// Measured miniature: the same strong-scaling protocol executed for real on
// in-process ranks (1 core), validating the ghost-communication pattern the
// projection rests on: comm volume per step grows as ranks shrink the
// sub-regions while the physics stays identical.
void run_measured(dp::obs::MetricsRegistry& reg) {
  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  dp::core::DPModel model(cfg, 5);
  dp::tab::TabulatedDP tab(model,
                           {0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01});
  auto sys = dp::md::make_fcc(8, 8, 8, 3.634, 63.546, 0.05, 3);
  dp::md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = 8;
  sc.skin = 1.0;
  sc.rebuild_every = 4;
  sc.thermo_every = 8;
  std::printf("\nmeasured miniature (in-process ranks, %zu atoms, 8 steps):\n",
              sys.atoms.size());
  std::printf("%8s %14s %16s %14s\n", "ranks", "atoms/rank", "comm KB/step", "E drift [eV]");
  for (int ranks : {1, 2, 4, 8}) {
    const auto r = dp::par::run_distributed_md(
        ranks, sys, [&] { return std::make_unique<dp::fused::FusedDP>(tab); }, sc);
    std::printf("%8d %14zu %16.1f %14.2e\n", ranks, sys.atoms.size() / ranks,
                r.comm.bytes / 1024.0 / sc.steps,
                r.thermo.back().total() - r.thermo.front().total());
    reg.record_event("measured",
                     {{"ranks", static_cast<double>(ranks)},
                      {"atoms_per_rank",
                       static_cast<double>(sys.atoms.size() / static_cast<std::size_t>(ranks))},
                      {"comm_kb_per_step", r.comm.bytes / 1024.0 / sc.steps},
                      {"wall_seconds", r.wall_seconds},
                      {"energy_drift_ev",
                       r.thermo.back().total() - r.thermo.front().total()}});
  }
}

int main() {
  std::printf("Fig 9 reproduction — strong scaling, water (99-step protocol)\n");
  // Local registry: the emitted file holds only this figure's rows.
  dp::obs::MetricsRegistry reg;
  run(MachineSystem::summit(), 41'472'000, reg);
  run(MachineSystem::fugaku(), 8'294'400, reg);
  run_measured(reg);
  if (reg.write_json_file("BENCH_fig9.json")) std::printf("\nwrote BENCH_fig9.json\n");
  std::printf(
      "\nPaper anchors at 4,560 nodes: Summit 46.99%% efficiency / 6.0 ns/day;\n"
      "Fugaku 41.20%% / 2.1 ns/day. Expected shape: near-perfect scaling to a\n"
      "few hundred nodes, then decay as the fixed per-step cost and the ghost\n"
      "traffic dominate the shrinking sub-regions.\n");
  return 0;
}
