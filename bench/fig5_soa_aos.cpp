// Fig 5: AoS <-> SoA conversion of descrpt_a_deriv (12 components per
// neighbor). Compares the scalar strided transpose against the blocked
// 12 x 8 in-register kernel that mirrors the paper's SVE sequence.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "common/soa.hpp"

namespace {

std::vector<double> make_aos(std::size_t n) {
  dp::Rng rng(1);
  std::vector<double> v(n * dp::kDerivWidth);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

void BM_AosToSoaReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto aos = make_aos(n);
  std::vector<double> soa(aos.size());
  for (auto _ : state) {
    dp::aos_to_soa_reference(aos.data(), soa.data(), n, dp::kDerivWidth);
    benchmark::DoNotOptimize(soa.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * aos.size() * 8));
}

void BM_AosToSoaBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto aos = make_aos(n);
  std::vector<double> soa(aos.size());
  for (auto _ : state) {
    dp::aos_to_soa_deriv(aos.data(), soa.data(), n);
    benchmark::DoNotOptimize(soa.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * aos.size() * 8));
}

void BM_SoaToAosBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto aos = make_aos(n);
  std::vector<double> soa(aos.size()), back(aos.size());
  dp::aos_to_soa_deriv(aos.data(), soa.data(), n);
  for (auto _ : state) {
    dp::soa_to_aos_deriv(soa.data(), back.data(), n);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * aos.size() * 8));
}

}  // namespace

BENCHMARK(BM_AosToSoaReference)->Arg(512)->Arg(8192)->Arg(131072);
BENCHMARK(BM_AosToSoaBlocked)->Arg(512)->Arg(8192)->Arg(131072);
BENCHMARK(BM_SoaToAosBlocked)->Arg(8192);

BENCHMARK_MAIN();
