// Fig 7: step-by-step speedup of the optimized inference over the Ref [20]
// baseline (paper: water 2.3 -> 3.1 -> 3.4 -> 3.7x; copper 3.7 -> 5.9 ->
// 8.4 -> 9.7x on one V100). Reproduced on one CPU core with paper-shaped
// models; system sizes scaled down (see bench_util.hpp).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dp/baseline_model.hpp"
#include "obs/metrics.hpp"

using namespace dpbench;

namespace {

struct Step {
  std::string name;
  double seconds = 0;
  std::size_t embedding_bytes = 0;  // per force call, measured
};

/// Device-resident bytes per atom for a path: measured embedding buffers
/// plus the environment-matrix arrays every path keeps.
double bytes_per_atom(const Workload& w, std::size_t embedding_bytes) {
  const double nm = w.model.config().nm();
  const double env = nm * (16.0 * 8.0 + 4.0) + nm * 4.0 * 8.0;  // rmat+deriv+slots+g_rmat
  return env + static_cast<double>(embedding_bytes) / static_cast<double>(w.sys.atoms.size());
}

void run_system(const char* label, Workload& w, dp::obs::MetricsRegistry& reg) {
  const std::size_t n = w.sys.atoms.size();
  std::vector<Step> steps;

  {
    dp::core::BaselineDP ff(w.model, dp::core::EnvMatKernel::Baseline);
    steps.push_back({"baseline (Ref [20])", time_force_eval(ff, w), ff.embedding_bytes()});
  }
  {
    dp::tab::CompressedDP ff(w.tabulated, false, dp::core::EnvMatKernel::Baseline);
    steps.push_back({"+ tabulation of embedding net", time_force_eval(ff, w),
                     ff.embedding_bytes()});
  }
  {
    dp::fused::FusedDP ff(w.tabulated,
                          {.skip_padding = false,
                           .env_kernel = dp::core::EnvMatKernel::Baseline});
    steps.push_back({"+ kernel fusion", time_force_eval(ff, w), 0});
  }
  {
    dp::fused::FusedDP ff(w.tabulated,
                          {.skip_padding = true,
                           .env_kernel = dp::core::EnvMatKernel::Baseline});
    steps.push_back({"+ redundancy removal", time_force_eval(ff, w), 0});
  }
  {
    dp::fused::FusedDP ff(w.tabulated,
                          {.skip_padding = true,
                           .env_kernel = dp::core::EnvMatKernel::Optimized});
    steps.push_back({"+ other optimizations (env-mat)", time_force_eval(ff, w), 0});
  }

  std::printf("\n%s: %zu atoms, N_m = %d\n", label, n,
              w.model.config().nm());
  std::printf("%-34s %14s %10s %16s\n", "optimization step", "us/step/atom", "speedup",
              "embed buf [MB]");
  print_rule();
  const double base = steps.front().seconds;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const auto& s = steps[k];
    std::printf("%-34s %14.3f %9.2fx %16.1f\n", s.name.c_str(),
                s.seconds / static_cast<double>(n) * 1e6, base / s.seconds,
                static_cast<double>(s.embedding_bytes) / 1e6);
    reg.record_event(s.name, label,
                     {{"step", static_cast<double>(k)},
                      {"us_per_step_atom", s.seconds / static_cast<double>(n) * 1e6},
                      {"speedup", base / s.seconds},
                      {"embedding_mb", static_cast<double>(s.embedding_bytes) / 1e6}});
  }

  // Capacity story (paper Sec 6.1.2: water x6, copper x26 more atoms per
  // 16 GB V100): atoms that fit in 16 GB under each path's measured
  // per-atom footprint.
  const double cap_base = 16e9 / bytes_per_atom(w, steps[0].embedding_bytes);
  const double cap_fused = 16e9 / bytes_per_atom(w, 0);
  std::printf("capacity on a 16 GB device: baseline %.0fk atoms, fused %.0fk (x%.1f)\n",
              cap_base / 1e3, cap_fused / 1e3, cap_fused / cap_base);
  reg.gauge(std::string(label) + ".final_speedup").set(base / steps.back().seconds);
  reg.gauge(std::string(label) + ".capacity_ratio").set(cap_fused / cap_base);
}

}  // namespace

int main() {
  std::printf("Fig 7 reproduction — step-by-step optimization on one device\n");
  std::printf("(paper: single V100; here: single CPU core, paper-shaped models)\n");

  // Local registry (not the process-wide instance): the emitted file holds
  // only this figure's rows.
  dp::obs::MetricsRegistry reg;

  auto water = water_workload();
  run_system("water", *water, reg);

  auto copper = copper_workload();
  run_system("copper", *copper, reg);

  if (reg.write_json_file("BENCH_fig7.json"))
    std::printf("\nwrote BENCH_fig7.json\n");

  std::printf("\nExpected shape (paper): each step compounds; copper gains more from\n"
              "redundancy removal because N_m = 500 is mostly padding at ambient\n"
              "conditions, water less (N_m = 138, ~2/3 filled).\n");
  return 0;
}
