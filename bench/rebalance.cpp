// Measurement-driven slab rebalancing benchmark: the vacuum-gap workload
// (a crystal occupying half the box, the rest empty) run with fixed uniform
// slabs vs the rebalancer, plus a per-transport communication footprint of
// the same short run on every backend.
//
// Emits BENCH_rebalance.json for tools/bench_compare.py. Machine-noise
// split: the imbalance of the *fixed* grid and the force-parity verdict are
// deterministic (pure atom counts / arithmetic), so they are compared
// strictly; the rebalanced imbalance follows measured step times, so only
// the reduction fraction is gated — with an absolute floor (>= 0.25, the
// acceptance bar) rather than a baseline ratio. Message and payload counts
// per transport are deterministic; deferred-post splits and wire timing are
// not and are only reported.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_annotations.hpp"
#include "md/lj.hpp"
#include "obs/metrics.hpp"
#include "parallel/distributed_md.hpp"
#include "parallel/minimpi.hpp"
#include "parallel/transport.hpp"

namespace {

constexpr int kRanks = 4;

dp::md::Configuration vacuum_gap_system() {
  auto sys = dp::md::make_fcc(8, 8, 8, 3.7, 63.5, 0.05, 177);
  const dp::Vec3 L = sys.box.lengths();
  sys.box = dp::md::Box(2.0 * L.x, L.y, L.z);  // upper half of x is vacuum
  return sys;
}

dp::md::SimulationConfig bench_sim(int steps) {
  dp::md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = steps;
  sc.temperature = 200.0;
  sc.skin = 1.0;
  sc.rebuild_every = 2;
  sc.thermo_every = 8;
  return sc;
}

std::unique_ptr<dp::md::ForceField> make_ff() {
  return std::make_unique<dp::md::LennardJones>(0.4, 2.34, 4.5);
}

/// Runs one rank of a ProcessGroup world per std::thread — the same
/// process-shaped wiring the transport tests use, so the byte counters are
/// exactly what a real multi-process run would report.
dp::par::CommStats comm_footprint(dp::par::TransportKind kind) {
  dp::par::TransportConfig base;
  base.kind = kind;
  base.world = 2;
  if (kind == dp::par::TransportKind::Shm) {
    // pid-suffixed so concurrent bench runs on one host cannot collide in
    // /dev/shm.
    base.rendezvous = "dp_bench_rebalance_" + std::to_string(::getpid());
  } else {
    base.rendezvous = "127.0.0.1:" + std::to_string(dp::par::pick_free_tcp_port());
  }

  auto sys = dp::md::make_fcc(6, 6, 6, 3.7, 63.5, 0.05, 177);
  dp::md::SimulationConfig sc = bench_sim(8);
  dp::par::DistributedOptions opts;
  opts.grid = {2, 1, 1};

  dp::par::CommStats rank0;
  dp::Mutex mu;
  std::vector<std::thread> threads;
  for (int r = 0; r < base.world; ++r) {
    threads.emplace_back([&, r] {
      dp::par::TransportConfig cfg = base;
      cfg.rank = r;
      dp::par::ProcessGroup pg(cfg);
      dp::par::run_distributed_md_rank(pg.comm(), sys, make_ff, sc, opts);
      if (r == 0) {
        dp::MutexLock lock(mu);
        rank0 = pg.stats();
      }
    });
  }
  for (auto& t : threads) t.join();
  return rank0;
}

}  // namespace

int main() {
  std::printf("Slab rebalancing — vacuum-gap workload, %d slabs along x\n", kRanks);
  dp::obs::MetricsRegistry reg;

  auto sys = vacuum_gap_system();
  dp::md::SimulationConfig sc = bench_sim(24);
  dp::par::DistributedOptions opts;
  opts.grid = {kRanks, 1, 1};
  opts.gather_state = true;

  const auto fixed = dp::par::run_distributed_md(kRanks, sys, make_ff, sc, opts);

  opts.rebalance = true;
  opts.rebalance_every = 2;
  const auto balanced = dp::par::run_distributed_md(kRanks, sys, make_ff, sc, opts);

  const double reduction = 1.0 - balanced.load_imbalance / fixed.load_imbalance;
  double max_force_diff = 0.0;
  for (std::size_t i = 0; i < fixed.final_force.size(); ++i)
    max_force_diff = std::max(
        max_force_diff, norm(balanced.final_force[i] - fixed.final_force[i]));
  const bool parity = max_force_diff < 1e-12;

  std::printf("%24s %12s %12s\n", "", "fixed", "rebalanced");
  std::printf("%24s %12.4f %12.4f\n", "load imbalance (max/mean)",
              fixed.load_imbalance, balanced.load_imbalance);
  std::printf("%24s %12llu %12llu\n", "boundary shifts",
              static_cast<unsigned long long>(fixed.boundary_shifts),
              static_cast<unsigned long long>(balanced.boundary_shifts));
  std::printf("imbalance reduction: %.1f%% (acceptance floor 25%%)\n", 1e2 * reduction);
  std::printf("max |dF| fixed vs rebalanced: %.3g (parity %s)\n", max_force_diff,
              parity ? "yes" : "NO");

  reg.record_event("rebalance",
                   {{"ranks", static_cast<double>(kRanks)},
                    {"atoms", static_cast<double>(sys.atoms.size())},
                    {"imbalance_fixed", fixed.load_imbalance},
                    {"imbalance_rebalanced", balanced.load_imbalance},
                    {"imbalance_reduction", reduction},
                    {"boundary_shifts", static_cast<double>(balanced.boundary_shifts)},
                    {"force_parity_ok", parity ? 1.0 : 0.0}});

  std::printf("\nPer-transport footprint of one 2-rank copper run (8 steps):\n");
  std::printf("%10s %10s %14s %14s\n", "transport", "messages", "payload KB", "wire KB");
  const struct {
    const char* event;
    dp::par::TransportKind kind;
  } backends[] = {{"comm_shm", dp::par::TransportKind::Shm},
                  {"comm_tcp", dp::par::TransportKind::Tcp}};
  for (const auto& b : backends) {
    const dp::par::CommStats cs = comm_footprint(b.kind);
    std::printf("%10s %10llu %14.1f %14.1f\n", cs.transport,
                static_cast<unsigned long long>(cs.messages), cs.bytes / 1024.0,
                cs.wire_bytes / 1024.0);
    reg.record_event(b.event, {{"messages", static_cast<double>(cs.messages)},
                               {"bytes", static_cast<double>(cs.bytes)},
                               {"wire_bytes", static_cast<double>(cs.wire_bytes)}});
  }

  dpbench::print_rule();
  if (reg.write_json_file("BENCH_rebalance.json"))
    std::printf("wrote BENCH_rebalance.json\n");
  return parity && reduction >= 0.25 ? 0 : 1;
}
