// Forward-looking projection the paper's conclusion calls for: "our
// optimized DeePMD-kit code can compute larger physical systems on
// near-term and future exascale supercomputers without essential
// difficulties" — here quantified on a Frontier-like machine with the same
// calibrated model that reproduces the Summit/Fugaku numbers. Speculative
// by construction (the MI250X efficiency fractions are carried over from
// the V100 calibration, not measured).
#include <cstdio>
#include <vector>

#include "perf/scaling_model.hpp"

using namespace dp::perf;

int main() {
  std::printf("Exascale projection — copper weak scaling on a Frontier-like system\n\n");
  ScalingModel model(MachineSystem::frontier(), WorkloadSpec::copper(), Path::Fused);
  const std::size_t per_rank = model.max_atoms_per_rank();
  std::printf("memory-bound atoms per rank (GCD, 64 GB): %zu\n\n", per_rank);
  std::printf("%8s %18s %14s %12s %16s\n", "nodes", "atoms", "s/step", "PFLOPS",
              "TtS [s/step/atom]");
  for (int nodes : {37, 147, 588, 2352, 9408}) {
    const std::size_t atoms = per_rank * static_cast<std::size_t>(nodes) * 8;
    const auto p = model.point(atoms, nodes);
    std::printf("%8d %18zu %14.4f %12.1f %16.2e\n", nodes, atoms, p.step_seconds, p.pflops,
                p.tts_s_step_atom);
  }
  std::printf(
      "\nReading: the same per-atom kernel costs that reproduce the paper's 43.7\n"
      "PFLOPS on Summit project to hundreds of PFLOPS and a >10x larger maximum\n"
      "system on the full Frontier — i.e., well past the paper's 10-billion-atom\n"
      "title figure, supporting its conclusion. All Frontier numbers are\n"
      "estimates, not measurements.\n");
  return 0;
}
