// Micro-benchmarks of the hot kernels: the small GEMM shapes of the DP
// pipeline, quintic table evaluation in both layouts, and neighbor-list
// construction.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "md/lattice.hpp"
#include "md/neighbor.hpp"
#include "nn/gemm.hpp"
#include "tab/table.hpp"

namespace {

std::vector<double> rand_vec(std::size_t n, std::uint64_t seed) {
  dp::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

// The R~^T G contraction shape: (4 x N_m) * (N_m x M).
void BM_GemmTn_EnvContraction(benchmark::State& state) {
  const std::size_t nm = static_cast<std::size_t>(state.range(0)), m = 128;
  auto a = rand_vec(nm * 4, 1), b = rand_vec(nm * m, 2);
  std::vector<double> c(4 * m);
  for (auto _ : state) {
    dp::nn::gemm_tn(a.data(), b.data(), c.data(), 4, nm, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * nm * 4 * m));
}

// The fitting-net hidden-layer shape: (1 x 240) * (240 x 240).
void BM_Affine_FittingLayer(benchmark::State& state) {
  const std::size_t k = 240, n = 240;
  auto x = rand_vec(k, 3), w = rand_vec(k * n, 4), b = rand_vec(n, 5);
  std::vector<double> y(n);
  for (auto _ : state) {
    dp::nn::affine(x.data(), w.data(), b.data(), y.data(), k, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * k * n));
}

void BM_Poly5TableAoS(benchmark::State& state) {
  dp::nn::EmbeddingNet net({32, 64, 128});
  dp::Rng rng(6);
  net.init_random(rng);
  dp::tab::TabulatedEmbedding table(net, {0.0, 2.0, 0.01});
  std::vector<double> g(128), dg(128);
  double s = 0.0;
  for (auto _ : state) {
    s += 0.001;
    if (s > 1.99) s = 0.001;
    table.eval_with_deriv(s, g.data(), dg.data());
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 128));
}

void BM_Poly5TableBlocked(benchmark::State& state) {
  dp::nn::EmbeddingNet net({32, 64, 128});
  dp::Rng rng(6);
  net.init_random(rng);
  dp::tab::TabulatedEmbedding table(net, {0.0, 2.0, 0.01});
  std::vector<double> g(128), dg(128);
  double s = 0.0;
  for (auto _ : state) {
    s += 0.001;
    if (s > 1.99) s = 0.001;
    table.eval_with_deriv_blocked(s, g.data(), dg.data());
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 128));
}

// Reference network evaluation of one embedding row — what the table
// replaces (the per-row cost ratio is the paper's 82% FLOP saving).
void BM_EmbeddingNetRow(benchmark::State& state) {
  dp::nn::EmbeddingNet net({32, 64, 128});
  dp::Rng rng(6);
  net.init_random(rng);
  std::vector<double> g(128);
  double s = 0.0;
  for (auto _ : state) {
    s += 0.001;
    if (s > 1.99) s = 0.001;
    net.eval(s, g.data());
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 128));
}

void BM_NeighborListBuild(benchmark::State& state) {
  auto sys = dp::md::make_fcc(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(0)), 3.634, 63.546, 0.05, 9);
  dp::md::NeighborList nl(8.0, 2.0);
  for (auto _ : state) {
    nl.build(sys.box, sys.atoms.pos);
    benchmark::DoNotOptimize(nl.max_neighbors());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * sys.atoms.size()));
}

}  // namespace

BENCHMARK(BM_GemmTn_EnvContraction)->Arg(138)->Arg(500);
BENCHMARK(BM_Affine_FittingLayer);
BENCHMARK(BM_Poly5TableAoS);
BENCHMARK(BM_Poly5TableBlocked);
BENCHMARK(BM_EmbeddingNetRow);
BENCHMARK(BM_NeighborListBuild)->Arg(6)->Arg(10);

BENCHMARK_MAIN();
