// Kernel-time breakdown per inference path (paper Sec 2.2: "more than 90
// percent of the total time are spent on execution of the embedding net" in
// the baseline — the observation the whole optimization campaign starts
// from). Uses the ScopedTimer sections the kernels self-report.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "dp/baseline_model.hpp"

using namespace dpbench;

namespace {

void profile(const char* label, dp::md::ForceField& ff, Workload& w, int reps,
             const char* prefix) {
  auto& reg = dp::TimerRegistry::instance();
  reg.clear();
  for (int r = 0; r < reps; ++r) ff.compute(w.sys.box, w.sys.atoms, w.nlist, w.periodic);
  const double total = reg.get(std::string(prefix) + ".compute").total_seconds;
  std::printf("\n%s (total %.3f s over %d evals)\n", label, total, reps);
  std::printf("%-32s %12s %9s\n", "section", "seconds", "share");
  print_rule(56);
  for (const auto& [name, stats] : reg.sorted_by_total()) {
    if (name == std::string(prefix) + ".compute") continue;
    if (name.rfind(prefix, 0) != 0) continue;
    std::printf("%-32s %12.3f %8.1f%%\n", name.c_str(), stats.total_seconds,
                100.0 * stats.total_seconds / total);
  }
}

}  // namespace

int main() {
  std::printf("Kernel-time breakdown (paper Sec 2.2 / 3.2 profiling claims)\n");
  auto w = copper_workload();

  {
    dp::core::BaselineDP ff(w->model);
    profile("baseline path, copper", ff, *w, 2, "baseline");
  }
  {
    dp::tab::CompressedDP ff(w->tabulated);
    profile("tabulated (unfused) path, copper", ff, *w, 4, "compressed");
  }
  {
    dp::fused::FusedDP ff(w->tabulated);
    profile("fused path, copper", ff, *w, 8, "fused");
  }

  std::printf(
      "\nExpected shape (paper): the baseline spends >90%% of its time in the\n"
      "embedding net (fwd+bwd GEMM pipelines); tabulation collapses that and\n"
      "the remaining cost spreads over descriptor/fitting, env-mat and the\n"
      "force scatter — which is why the later optimizations target those.\n");
  return 0;
}
