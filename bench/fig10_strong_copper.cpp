// Fig 10: strong scaling of the copper system — 13,500,000 atoms on Summit,
// 2,177,280 on Fugaku (paper anchors at 4,560 nodes: 35.96% / 11.2 ns/day
// and 32.76% / 4.7 ns/day). Also validates the Sec 6.4.1 ghost-to-local
// ratio argument (113 local vs 1,735 ghost atoms per Fugaku rank).
#include <cstdio>
#include <vector>

#include "perf/scaling_model.hpp"

using namespace dp::perf;

namespace {

void run(const MachineSystem& sys, std::size_t natoms) {
  ScalingModel model(sys, WorkloadSpec::copper(), Path::Fused);
  const std::vector<int> nodes{20, 40, 80, 160, 285, 570, 1140, 2280, 4560};
  const auto curve = model.strong_curve(natoms, nodes);
  std::printf("\n%s — %zu copper atoms\n", sys.name.c_str(), natoms);
  std::printf("%8s %14s %14s %12s %12s %12s\n", "nodes", "s/step", "efficiency", "ns/day",
              "atoms/rank", "ghost/rank");
  for (const auto& p : curve)
    std::printf("%8d %14.5f %13.1f%% %12.2f %12.0f %12.0f\n", p.nodes, p.step_seconds,
                100.0 * p.efficiency, p.ns_per_day, p.atoms_per_rank,
                model.ghost_atoms_per_rank(p.atoms_per_rank));
}

}  // namespace

int main() {
  std::printf("Fig 10 reproduction — strong scaling, copper (99-step protocol)\n");
  run(MachineSystem::summit(), 13'500'000);
  run(MachineSystem::fugaku(), 2'177'280);

  // The Sec 6.4.1 communication-ratio check.
  ScalingModel fugaku(MachineSystem::fugaku(), WorkloadSpec::copper(), Path::Fused);
  const double local = 2'177'280.0 / (4560.0 * 16.0);
  std::printf("\nSec 6.4.1 check — Fugaku at 4,560 nodes: %.0f local atoms/rank with a\n"
              "modeled ghost region of %.0f (paper: 113 local, 1,735 ghost).\n", local,
              fugaku.ghost_atoms_per_rank(local));
  std::printf("\nPaper anchors at 4,560 nodes: Summit 35.96%% / 11.2 ns/day; Fugaku\n"
              "32.76%% / 4.7 ns/day. Copper decays faster than water: smaller system,\n"
              "larger cutoff, so the ghost share grows sooner.\n");
  return 0;
}
