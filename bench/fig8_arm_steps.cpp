// Fig 8: step-by-step optimization on the A64FX (paper: water 7.2 -> 14 ->
// 20.5x; copper 10.3 -> 31.5 -> 42.5x over the flat-MPI baseline), plus the
// MPI+OpenMP configuration sweep (48x1 / 16x3 / 4x12).
//
// CPU-specific steps reproduced here: the SVE-style blocked table layout
// (Sec 3.5.1), fusion + redundancy removal (3.5.2), and the tabulated tanh
// in the remaining (fitting) network (3.5.3). The hybrid sweep is in
// fig6_hybrid_schemes (same experiment).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dp/baseline_model.hpp"

using namespace dpbench;

namespace {

struct Step {
  std::string name;
  double seconds;
};

void run_system(const char* label, Workload& w) {
  const std::size_t n = w.sys.atoms.size();
  std::vector<Step> steps;

  {
    // Flat-MPI baseline on CPU: un-tabulated network, reference operators.
    dp::core::BaselineDP ff(w.model, dp::core::EnvMatKernel::Baseline);
    steps.push_back({"baseline (flat MPI, network)", time_force_eval(ff, w)});
  }
  {
    // Tabulation with the SVE-friendly blocked coefficient layout.
    dp::tab::CompressedDP ff(w.tabulated, /*use_blocked_layout=*/true,
                             dp::core::EnvMatKernel::Baseline);
    steps.push_back({"+ tabulation (blocked layout)", time_force_eval(ff, w)});
  }
  {
    dp::fused::FusedDP ff(w.tabulated,
                          {.skip_padding = true,
                           .blocked_table = true,
                           .env_kernel = dp::core::EnvMatKernel::Baseline});
    steps.push_back({"+ fusion + redundancy removal", time_force_eval(ff, w)});
  }
  {
    // "Other optimizations": vectorized custom operators + tabulated tanh
    // in the fitting net.
    w.model.set_activation(dp::nn::Activation::TanhTabulated);
    dp::fused::FusedDP ff(w.tabulated,
                          {.skip_padding = true,
                           .blocked_table = true,
                           .env_kernel = dp::core::EnvMatKernel::Optimized});
    steps.push_back({"+ vectorized ops + tanh table", time_force_eval(ff, w)});
    w.model.set_activation(dp::nn::Activation::Tanh);
  }

  std::printf("\n%s: %zu atoms, N_m = %d\n", label, n, w.model.config().nm());
  std::printf("%-34s %14s %10s\n", "optimization step", "us/step/atom", "speedup");
  print_rule(62);
  const double base = steps.front().seconds;
  for (const auto& s : steps)
    std::printf("%-34s %14.3f %9.2fx\n", s.name.c_str(),
                s.seconds / static_cast<double>(n) * 1e6, base / s.seconds);
}

}  // namespace

int main() {
  std::printf("Fig 8 reproduction — step-by-step optimization on a many-core CPU\n");
  std::printf("(paper: single A64FX node; here: single x86 core)\n");

  auto water = water_workload();
  run_system("water", *water);
  auto copper = copper_workload();
  run_system("copper", *copper);

  std::printf("\nExpected shape (paper): tabulation is the largest single step; fusion +\n"
              "redundancy removal compounds (copper >> water due to padding); the tanh\n"
              "table and vectorized operators add the final increment. The MPI/OpenMP\n"
              "configuration table is produced by fig6_hybrid_schemes.\n");
  return 0;
}
