// Fig 11: weak scaling from 1/256 of each machine to the full machine,
// at the per-rank sizes of the paper (Summit copper: 122,779 atoms/rank;
// Fugaku copper: 6,804). Reports the modeled FLOPS and the maximum system
// size — the paper's 3.4 / 17 billion copper atoms and 43.7 / 119 PFLOPS.
#include <cstdio>
#include <vector>

#include "perf/scaling_model.hpp"

using namespace dp::perf;

namespace {

void run(const MachineSystem& sys, const WorkloadSpec& wl, std::size_t atoms_per_rank,
         const std::vector<int>& nodes) {
  ScalingModel model(sys, wl, Path::Fused);
  std::printf("\n%s — %s, %zu atoms per rank\n", sys.name.c_str(), wl.name.c_str(),
              atoms_per_rank);
  std::printf("%8s %16s %14s %12s %16s\n", "nodes", "atoms", "s/step", "PFLOPS",
              "TtS [s/step/atom]");
  for (const auto& p : model.weak_curve(atoms_per_rank, nodes))
    std::printf("%8d %16zu %14.4f %12.2f %16.2e\n", p.nodes, p.atoms, p.step_seconds,
                p.pflops, p.tts_s_step_atom);
  std::printf("memory-capacity bound at %d nodes: %.2f billion atoms\n", nodes.back(),
              static_cast<double>(model.max_atoms(nodes.back())) / 1e9);
}

}  // namespace

int main() {
  std::printf("Fig 11 reproduction — weak scaling to the full machines\n");

  const std::vector<int> summit_nodes{18, 71, 285, 1140, 4560};
  const std::vector<int> fugaku_nodes{39, 155, 621, 2484, 9936, 39744, 157986};

  run(MachineSystem::summit(), WorkloadSpec::copper(), 122'779, summit_nodes);
  run(MachineSystem::summit(), WorkloadSpec::water(), 142'000, summit_nodes);
  run(MachineSystem::fugaku(), WorkloadSpec::copper(), 6'804, fugaku_nodes);
  run(MachineSystem::fugaku(), WorkloadSpec::water(), 9'800, fugaku_nodes);

  std::printf(
      "\nPaper anchors: copper reaches 3.4 B atoms / 43.7 PFLOPS / TtS 1.1e-10 on\n"
      "full Summit and a projected 17.3 B atoms / 119 PFLOPS / TtS 4.1e-11 on\n"
      "full Fugaku (dotted line); water reaches 3.9 B and a projected 24.9 B.\n"
      "Expected shape: flat step time (perfect weak scaling), FLOPS linear in\n"
      "nodes, capacity linear in nodes.\n");
  return 0;
}
