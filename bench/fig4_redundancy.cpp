// Fig 4: bypassing the redundant (padded) zeros. The copper model reserves
// N_m = 500 slots for high-pressure states, but ambient FCC fills ~180 —
// the fused kernel skips the rest. This harness sweeps the reserve to show
// speedup ~ 1 / (1 - padding fraction).
#include <cstdio>

#include "bench_util.hpp"

using namespace dpbench;

int main() {
  std::printf("Fig 4 reproduction — redundancy removal vs padding ratio (copper)\n\n");
  std::printf("%8s %12s %16s %16s %10s\n", "N_m", "padding", "no-skip us/atom",
              "skip us/atom", "speedup");
  print_rule();

  for (int nm : {192, 256, 384, 500}) {
    dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
    cfg.sel = {nm};
    cfg.embed_widths = {16, 32, 64};  // demo nets: this figure is about slots
    cfg.fit_widths = {64, 64, 64};
    cfg.axis_neuron = 8;

    auto block = dp::md::make_fcc(4, 4, 4, 3.634, 63.546, 0.08, 7);
    dp::md::Configuration cluster;
    cluster.box = dp::md::Box(200, 200, 200);
    cluster.atoms = block.atoms;
    for (auto& r : cluster.atoms.pos) r += dp::Vec3{80, 80, 80};

    Workload w(cfg, 40, 0.01, 1.8, std::move(cluster), 1.0, false);
    const std::size_t n = w.sys.atoms.size();

    dp::fused::FusedDP no_skip(w.tabulated, {.skip_padding = false});
    dp::fused::FusedDP skip(w.tabulated, {.skip_padding = true});
    const double t0 = time_force_eval(no_skip, w);
    const double t1 = time_force_eval(skip, w);
    std::printf("%8d %11.1f%% %16.3f %16.3f %9.2fx\n", nm,
                100.0 * skip.env().padding_fraction(), t0 / n * 1e6, t1 / n * 1e6, t0 / t1);
  }
  std::printf("\nExpected shape (paper): the skip time is flat (work ~ real neighbors)\n"
              "while the no-skip time grows with the reserve, so the speedup grows\n"
              "with the padding ratio — why copper gains more than water (Sec 6.1.3).\n");
  return 0;
}
