// Sec 3.4.3: the optimized ProdEnvMatA operator (paper: 3x on V100 from
// shared-memory staging and redundancy removal; here: scratch reuse and
// thread-parallel atoms).
#include <benchmark/benchmark.h>

#include "dp/env_mat.hpp"
#include "md/lattice.hpp"

namespace {

struct EnvFixture {
  dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
  dp::md::Configuration sys = dp::md::make_fcc(6, 6, 6, 3.634, 63.546, 0.08, 5);
  dp::md::NeighborList nlist{8.0, 1.0};
  EnvFixture() { nlist.build(sys.box, sys.atoms.pos); }
};

void BM_ProdEnvMatBaseline(benchmark::State& state) {
  EnvFixture f;
  dp::core::EnvMat env;
  for (auto _ : state) {
    dp::core::build_env_mat(f.cfg, f.sys.box, f.sys.atoms, f.nlist, env,
                            dp::core::EnvMatKernel::Baseline);
    benchmark::DoNotOptimize(env.rmat.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.sys.atoms.size()));
}

void BM_ProdEnvMatOptimized(benchmark::State& state) {
  EnvFixture f;
  dp::core::EnvMat env;
  for (auto _ : state) {
    dp::core::build_env_mat(f.cfg, f.sys.box, f.sys.atoms, f.nlist, env,
                            dp::core::EnvMatKernel::Optimized);
    benchmark::DoNotOptimize(env.rmat.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.sys.atoms.size()));
}

}  // namespace

BENCHMARK(BM_ProdEnvMatBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProdEnvMatOptimized)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
