// Sec 3.5.3 / 6.2.3: tabulated tanh vs libm tanh. The paper measures 60x+
// on A64FX with ~1e-7 error and no loss of overall model accuracy; on x86
// the libm tanh is faster so the factor is smaller, but the table still
// wins and the error bound holds.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/tanh_table.hpp"

namespace {

std::vector<double> inputs(std::size_t n) {
  dp::Rng rng(3);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-6.0, 6.0);
  return v;
}

void BM_TanhLibm(benchmark::State& state) {
  const auto x = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<double> y(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * x.size()));
}

// Runs eval_batch at the dispatched SIMD level (BM_TanhTabulated) and with
// dispatch forced to the seed scalar loop (BM_TanhTabulatedScalar); the gap
// between the two is the vector-over-scalar factor on this host.
void BM_TanhTabulated(benchmark::State& state) {
  const auto x = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<double> y(x.size());
  const auto& table = dp::default_tanh_table();
  for (auto _ : state) {
    table.eval_batch(x.data(), y.data(), x.size());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * x.size()));
}

void BM_TanhTabulatedScalar(benchmark::State& state) {
  const auto x = inputs(static_cast<std::size_t>(state.range(0)));
  std::vector<double> y(x.size());
  const auto& table = dp::default_tanh_table();
  const dp::simd::Level native = dp::simd::active();
  dp::simd::force(dp::simd::Level::Scalar);
  for (auto _ : state) {
    table.eval_batch(x.data(), y.data(), x.size());
    benchmark::DoNotOptimize(y.data());
  }
  dp::simd::force(native);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * x.size()));
}

}  // namespace

BENCHMARK(BM_TanhLibm)->Arg(4096)->Arg(65536);
BENCHMARK(BM_TanhTabulated)->Arg(4096)->Arg(65536);
BENCHMARK(BM_TanhTabulatedScalar)->Arg(4096)->Arg(65536);

int main(int argc, char** argv) {
  std::printf("tanh tabulation (paper Sec 3.5.3): max error = %.3e (paper: ~1e-7)\n",
              dp::default_tanh_table().measured_max_error());
  std::printf("SIMD dispatch: %s (%zu lanes)\n", dp::simd::name(dp::simd::active()),
              dp::simd::lanes());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
