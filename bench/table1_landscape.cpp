// Table 1: the MLMD landscape — time-to-solution [s/step/atom] of the
// baseline (Ref [20]) vs this work on Summit and Fugaku, at the paper's
// machine scales, from the calibrated projection model. Paper rows are
// printed alongside for comparison.
#include <cstdio>

#include "bench_util.hpp"
#include "bp/behler_parrinello.hpp"
#include "perf/scaling_model.hpp"

using namespace dp::perf;

namespace {

void row(const char* work, const char* system, const char* machine, double atoms,
         double tts_model, double tts_paper) {
  std::printf("%-26s %-8s %-8s %10.2e %14.2e %14.2e\n", work, system, machine, atoms,
              tts_model, tts_paper);
}

}  // namespace

int main() {
  std::printf("Table 1 reproduction — MLMD performance landscape (DP rows)\n\n");
  std::printf("%-26s %-8s %-8s %10s %14s %14s\n", "work", "system", "machine", "# atoms",
              "TtS (model)", "TtS (paper)");
  for (int i = 0; i < 84; ++i) std::putchar('-');
  std::putchar('\n');

  {
    // Baseline, 127 M copper atoms on full Summit (2020 Gordon Bell).
    ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Baseline);
    const auto p = m.point(127'000'000, 4560);
    row("Baseline [20] (double)", "Cu", "Summit", 127e6, p.tts_s_step_atom, 8.1e-10);
  }
  {
    // This work, 3.4 B copper atoms on full Summit.
    ScalingModel m(MachineSystem::summit(), WorkloadSpec::copper(), Path::Fused);
    const std::size_t atoms = m.max_atoms(4560);
    const auto p = m.point(atoms, 4560);
    row("This work (double)", "Cu", "Summit", static_cast<double>(atoms), p.tts_s_step_atom,
        1.1e-10);
    std::printf("%-26s %-8s %-8s capacity: %.2f B atoms (paper: 3.4 B)\n", "", "", "",
                static_cast<double>(atoms) / 1e9);
  }
  {
    // This work, 17 B copper atoms on full Fugaku (projected in the paper).
    ScalingModel m(MachineSystem::fugaku(), WorkloadSpec::copper(), Path::Fused);
    const std::size_t atoms = m.max_atoms(157986);
    const auto p = m.point(atoms, 157986);
    row("This work (double)", "Cu", "Fugaku", static_cast<double>(atoms), p.tts_s_step_atom,
        4.1e-11);
    std::printf("%-26s %-8s %-8s capacity: %.2f B atoms (paper projection: 17.3 B)\n", "", "",
                "", static_cast<double>(atoms) / 1e9);
  }

  // Measured in-tree BP-scheme counterpart: one CPU core, same copper-like
  // system for both potentials.
  {
    auto w = dpbench::copper_workload(0.01, false, 3);
    dp::bp::BpConfig bp_cfg;
    bp_cfg.rcut = w->model.config().rcut;
    dp::bp::BehlerParrinello bp(bp_cfg, 5);
    dp::fused::FusedDP dp_ff(w->tabulated);
    const double n = static_cast<double>(w->sys.atoms.size());
    const double t_bp = dpbench::time_force_eval(bp, *w);
    const double t_dp = dpbench::time_force_eval(dp_ff, *w);
    std::printf("\nmeasured in-tree, one CPU core, %zu-atom copper cluster:\n",
                w->sys.atoms.size());
    std::printf("  BP (8 radial G2, 24x24 net)   %10.2e s/step/atom\n", t_bp / n);
    std::printf("  DP (fused, demo nets)         %10.2e s/step/atom\n", t_dp / n);
    std::printf("  (a small radial BP is CHEAPER per atom than DP — the literature\n"
                "   TtS gap in Table 1 comes from their much larger symmetry-function\n"
                "   sets, CPU-only implementations and, above all, DP's accuracy at\n"
                "   scale on accelerators; this row keeps the comparison honest.)\n");
  }

  std::printf(
      "\n(The two BP-scheme CPU rows of the paper's Table 1 — Simple-NN at 3.6e-5\n"
      "and Singraber et al. at 1.3e-6 s/step/atom — are literature values quoted\n"
      "for context; they sit 4-6 orders of magnitude above every DP row.)\n"
      "\nExpected shape: this work beats the baseline TtS by ~7x and extends the\n"
      "largest system from 127 M to billions of atoms.\n");
  return 0;
}
