// Fig 3: data movement of the descriptor evaluation — kernel fusion removes
// the allocation and the load/store traffic of the embedding matrix G_i
// (the dashed path in the paper's figure).
#include <cstdio>

#include "bench_util.hpp"
#include "common/cost.hpp"
#include "dp/baseline_model.hpp"

using namespace dpbench;

int main() {
  std::printf("Fig 3 reproduction — embedding-matrix traffic, unfused vs fused\n\n");

  auto w = copper_workload();
  const std::size_t n = w->sys.atoms.size();

  auto& costs = dp::CostRegistry::instance();

  costs.clear();
  dp::tab::CompressedDP unfused(w->tabulated);
  unfused.compute(w->sys.box, w->sys.atoms, w->nlist, w->periodic);
  const auto tab_cost = costs.get("compressed.tabulation");
  const std::size_t unfused_buffers = unfused.embedding_bytes();

  costs.clear();
  dp::fused::FusedDP fused(w->tabulated);
  fused.compute(w->sys.box, w->sys.atoms, w->nlist, w->periodic);
  const auto fused_cost = costs.get("fused.descriptor");

  std::printf("copper, %zu atoms, N_m = %d, M = %zu\n\n", n, w->model.config().nm(),
              w->model.config().m());
  std::printf("%-34s %16s %16s\n", "", "unfused (tab.)", "fused kernel");
  print_rule();
  std::printf("%-34s %13.1f MB %13.1f MB\n", "G / dG buffers materialized",
              unfused_buffers / 1e6, 0.0);
  std::printf("%-34s %13.1f MB %13.1f MB\n", "embedding-stage bytes written",
              tab_cost.bytes_written / 1e6, fused_cost.bytes_written / 1e6);
  std::printf("%-34s %13.1f MB %13.1f MB\n", "embedding-stage bytes read",
              tab_cost.bytes_read / 1e6, fused_cost.bytes_read / 1e6);
  std::printf("%-34s %16.2f %16.2f\n", "embedding-stage GFLOP", tab_cost.flops / 1e9,
              fused_cost.flops / 1e9);

  // Wall-clock confirmation.
  const double t_unfused = time_force_eval(unfused, *w);
  const double t_fused = time_force_eval(fused, *w);
  std::printf("\nmeasured: unfused %.3f vs fused %.3f us/step/atom (%.2fx)\n",
              t_unfused / n * 1e6, t_fused / n * 1e6, t_unfused / t_fused);
  std::printf("\nExpected shape (paper): fusion eliminates the G_i global-memory round\n"
              "trip entirely; both memory footprint and time drop (Sec 3.4.1/6.1.2).\n");
  return 0;
}
