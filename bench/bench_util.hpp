// Shared workload builders for the figure/table harnesses.
//
// Machine note: the harness host is a single CPU core, so the paper's atom
// counts (12,880 / 6,912 / millions) are scaled down while every model
// parameter that shapes the result (cutoffs, N_m slot reserves, net widths)
// is kept. All timings are reported per step per atom, which is scale-free
// for this O(N) method; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fused/fused_model.hpp"
#include "md/lattice.hpp"
#include "tab/compressed_model.hpp"

namespace dpbench {

/// A model + tabulation + configuration + neighbor list bundle. Members are
/// ordered so the tabulation may reference the model; the bundle is pinned
/// behind unique_ptr.
struct Workload {
  dp::core::DPModel model;
  dp::tab::TabulatedDP tabulated;
  dp::md::Configuration sys;
  dp::md::NeighborList nlist;
  bool periodic = true;

  /// `sharpen` scales the embedding weights after init: seeded nets are
  /// smoother than trained production models, and a factor of ~1.5 puts the
  /// tabulation error magnitudes in the range the paper's Fig 2 reports.
  Workload(dp::core::ModelConfig cfg, std::uint64_t seed, double table_interval,
           double r_min, dp::md::Configuration config, double skin, bool periodic_,
           double sharpen = 1.0)
      : model(std::move(cfg), seed),
        tabulated(sharpened(model, sharpen),
                  {0.0, dp::tab::TabulatedDP::s_max(model.config(), r_min), table_interval}),
        sys(std::move(config)),
        nlist(model.config().rcut, skin),
        periodic(periodic_) {
    nlist.build(sys.box, sys.atoms.pos, SIZE_MAX, periodic);
  }
  Workload(const Workload&) = delete;

 private:
  static dp::core::DPModel& sharpened(dp::core::DPModel& m, double factor) {
    if (factor != 1.0)
      for (int t = 0; t < m.config().ntypes; ++t)
        for (auto& layer : m.embedding(t).layers())
          for (std::size_t k = 0; k < layer.weights().size(); ++k)
            layer.weights().data()[k] *= factor;
    return m;
  }
};

/// Paper-shaped water model (nets 32x64x128 / 240^3, M< = 16) on one
/// 192-atom cell; the cutoff is reduced to 5 A so the periodic cell stays
/// valid (sel scaled with the cutoff volume).
inline std::unique_ptr<Workload> water_workload(double interval = 0.01,
                                                bool paper_nets = true,
                                                double sharpen = 1.0) {
  dp::core::ModelConfig cfg = dp::core::ModelConfig::water();
  cfg.rcut = 5.0;
  cfg.sel = {30, 62};
  if (!paper_nets) {
    cfg.embed_widths = {16, 32, 64};
    cfg.fit_widths = {64, 64, 64};
    cfg.axis_neuron = 8;
  }
  return std::make_unique<Workload>(cfg, 2022, interval, 0.8, dp::md::make_water(1, 1, 1),
                                    1.0, true, sharpen);
}

/// Paper-shaped copper model (rc = 8 A, N_m = 500 — the full high-pressure
/// slot reserve) on a finite FCC block, evaluated as a cluster so the box
/// never constrains the 8 A cutoff.
inline std::unique_ptr<Workload> copper_workload(double interval = 0.01,
                                                 bool paper_nets = true, int cells = 4,
                                                 double sharpen = 1.0) {
  dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
  if (!paper_nets) {
    cfg.embed_widths = {16, 32, 64};
    cfg.fit_widths = {64, 64, 64};
    cfg.axis_neuron = 8;
  }
  auto block = dp::md::make_fcc(cells, cells, cells, 3.634, 63.546, 0.08, 77);
  // Re-home the block into a huge box: an isolated cluster.
  dp::md::Configuration cluster;
  cluster.box = dp::md::Box(200, 200, 200);
  cluster.atoms = block.atoms;
  for (auto& r : cluster.atoms.pos) r += dp::Vec3{80, 80, 80};
  return std::make_unique<Workload>(cfg, 40, interval, 1.8, std::move(cluster), 1.0, false,
                                    sharpen);
}

/// Seconds per force evaluation (one warm-up, then >= min_seconds of calls,
/// split into `repeats` batches whose median is reported — one noisy batch
/// cannot skew a figure number).
template <class FF>
double time_force_eval(FF& ff, Workload& w, double min_seconds = 0.25, int max_iters = 9,
                       int repeats = 3) {
  return dp::time_per_call([&] { ff.compute(w.sys.box, w.sys.atoms, w.nlist, w.periodic); },
                           min_seconds, max_iters, repeats);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace dpbench
