// Neighbor-list construction benchmark: build time vs thread count and atom
// count for the deterministic two-pass OpenMP build, plus the steady-state
// allocation check (the persistent workspace must stop growing after
// warm-up, so rebuilds allocate nothing).
//
// Machine note: the harness host is a single CPU core, so thread counts
// above 1 oversubscribe it and the speedup column reads ~1x or below; the
// numbers are honest measurements of this host, not projections. On a real
// multi-core node the same sweep is the acceptance check for the parallel
// rebuild (the CSR output is byte-identical at every thread count, so only
// the timing changes).
#include <omp.h>

#include <cstdio>

#include "bench_util.hpp"
#include "md/neighbor.hpp"
#include "obs/metrics.hpp"

namespace {

/// One (atoms, threads) cell of the sweep: median seconds per build on a
/// jittered FCC copper block, with the workspace byte gauge sampled before
/// and after the timed rebuilds.
struct Point {
  double seconds = 0.0;
  std::size_t workspace_bytes = 0;
  bool alloc_free = false;
};

Point time_build(const dp::md::Configuration& sys, int threads) {
  omp_set_num_threads(threads);
  dp::md::NeighborList nlist(8.0, 2.0);
  // Warm-up grows every grow-only buffer to its plateau for this frame.
  for (int i = 0; i < 3; ++i) nlist.build(sys.box, sys.atoms.pos);
  Point p;
  p.workspace_bytes = nlist.workspace_bytes();
  p.seconds = dp::time_per_call([&] { nlist.build(sys.box, sys.atoms.pos); },
                                /*min_seconds=*/0.08, /*max_iters=*/40, /*repeats=*/3);
  p.alloc_free = nlist.workspace_bytes() == p.workspace_bytes;
  return p;
}

}  // namespace

int main() {
  std::printf("Neighbor-list build — threads x atoms sweep (copper FCC, rc 8 A + 2 A skin)\n");
  dp::obs::MetricsRegistry reg;
  const int thread_counts[] = {1, 2, 4, 8};
  const int cell_counts[] = {6, 9, 12};  // 864 / 2,916 / 6,912 atoms
  for (int cells : cell_counts) {
    const auto sys = dp::md::make_fcc(cells, cells, cells, 3.634, 63.546, 0.08, 77);
    const std::size_t natoms = sys.atoms.size();
    std::printf("\n%zu atoms\n", natoms);
    std::printf("%8s %14s %10s %18s %12s\n", "threads", "ms/build", "speedup",
                "workspace bytes", "alloc-free");
    double base_seconds = 0.0;
    for (int threads : thread_counts) {
      const Point p = time_build(sys, threads);
      if (threads == 1) base_seconds = p.seconds;
      const double speedup = base_seconds / p.seconds;
      std::printf("%8d %14.3f %9.2fx %18zu %12s\n", threads, 1e3 * p.seconds, speedup,
                  p.workspace_bytes, p.alloc_free ? "yes" : "NO");
      reg.record_event("build", {{"atoms", static_cast<double>(natoms)},
                                 {"threads", static_cast<double>(threads)},
                                 {"seconds_per_build", p.seconds},
                                 {"speedup_vs_1t", speedup},
                                 {"workspace_bytes", static_cast<double>(p.workspace_bytes)},
                                 {"steady_state_alloc_free", p.alloc_free ? 1.0 : 0.0}});
    }
  }
  dpbench::print_rule();
  if (reg.write_json_file("BENCH_neighbor.json")) std::printf("wrote BENCH_neighbor.json\n");
  std::printf(
      "Acceptance shape on a multi-core node: >= 3x at 8 threads for the\n"
      "largest system, alloc-free = yes in every row. The CSR is byte-identical\n"
      "across rows of one system (tests/md/test_neighbor_parallel.cpp).\n");
  return 0;
}
