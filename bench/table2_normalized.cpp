// Table 2: single-device comparison of A64FX vs V100 — absolute TtS
// [us/step/atom], TtS x Peak, and TtS x Power (paper: V100 wins absolute;
// A64FX wins both normalized metrics).
#include <cstdio>
#include <string>

#include "perf/scaling_model.hpp"

using namespace dp::perf;

namespace {

struct Entry {
  const char* machine;
  const char* system;
  double tts_us;      // per single device
  double paper_tts;
};

double single_device_tts_us(const MachineSystem& sys, const WorkloadSpec& wl,
                            std::size_t natoms) {
  ScalingModel m(sys, wl, Path::Fused);
  const auto p = m.point(natoms, 1);
  // One node hosts ranks_per_node ranks on devices_per_node devices: the
  // per-device TtS multiplies by the devices in the node.
  return p.step_seconds / static_cast<double>(natoms) * sys.devices_per_node * 1e6;
}

}  // namespace

int main() {
  std::printf("Table 2 reproduction — normalized single-device comparison\n\n");

  const Entry entries[] = {
      {"Summit(V100)", "water", single_device_tts_us(MachineSystem::summit(),
                                                     WorkloadSpec::water(), 12880), 2.58},
      {"Summit(V100)", "copper", single_device_tts_us(MachineSystem::summit(),
                                                      WorkloadSpec::copper(), 6912), 2.87},
      {"Fugaku(A64FX)", "water", single_device_tts_us(MachineSystem::fugaku(),
                                                      WorkloadSpec::water(), 18432), 4.47},
      {"Fugaku(A64FX)", "copper", single_device_tts_us(MachineSystem::fugaku(),
                                                       WorkloadSpec::copper(), 2592), 5.78},
  };

  std::printf("%-14s %-8s %12s %12s %14s %14s\n", "machine", "system", "TtS [us]",
              "paper TtS", "TtS x Peak", "TtS x Power");
  for (int i = 0; i < 78; ++i) std::putchar('-');
  std::putchar('\n');
  for (const auto& e : entries) {
    const Machine dev =
        std::string(e.machine).find("V100") != std::string::npos ? Machine::v100()
                                                                 : Machine::a64fx();
    std::printf("%-14s %-8s %12.2f %12.2f %14.1f %14.1f\n", e.machine, e.system, e.tts_us,
                e.paper_tts, e.tts_us * dev.peak_flops / 1e12,
                e.tts_us * dev.power_watts);
  }

  std::printf(
      "\nPaper values — TtS x Peak: Summit 18.1 (water) / 20.1 (copper); Fugaku\n"
      "15.1 / 19.5. TtS x Power: Summit 952 / 1059; Fugaku 738 / 954.\n"
      "Expected shape: V100 faster absolute, A64FX ahead after normalizing by\n"
      "peak FLOPS (1.2x / 1.03x) and by power (1.3x / 1.1x).\n");
  return 0;
}
