// dpmd — command-line front end, the stand-in for DeePMD-kit's `dp` tool
// plus the LAMMPS driver script:
//
//   dpmd init --system water|copper --out model.dpm [--seed N] [--demo]
//   dpmd info --model model.dpm
//   dpmd compress --model model.dpm [--interval H] [--rmin R]
//   dpmd run --model model.dpm --system water|copper [--cells N] [--steps N]
//            [--path baseline|tabulated|fused|mixed] [--dt FS] [--temp K]
//            [--thermostat none|langevin|berendsen] [--dump traj.xyz]
//            [--thermo thermo.csv] [--interval H]
//            [--trace out.trace.json] [--metrics out.metrics.jsonl]
#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "fused/mixed_model.hpp"
#include "fused/se_r_model.hpp"
#include "md/checkpoint.hpp"
#include "md/dump.hpp"
#include "md/lammps_io.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/distributed_md.hpp"
#include "parallel/transport.hpp"
#include "perf/cost_model.hpp"
#include "tab/compressed_model.hpp"
#include "tab/model_io.hpp"
#include "train/distributed_trainer.hpp"
#include "train/trainer.hpp"

namespace {

using dp::core::DPModel;
using dp::core::ModelConfig;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  int get_int(const std::string& key, int fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) throw dp::Error("expected --option, got " + key);
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      // --key=value spelling
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      // Assign through a std::string temporary: string::operator=(const
      // char*) trips GCC 12's -Wrestrict false positive (PR105329) once
      // inlined into main, and this file builds with -Werror.
      args.options[key] = std::string(argv[++i]);
    } else {
      args.options[key] = std::string("1");  // boolean flag
    }
  }
  return args;
}

ModelConfig config_for(const std::string& system, bool demo, const std::string& descriptor) {
  ModelConfig cfg;
  if (system == "water") {
    cfg = ModelConfig::water();
    if (demo) {
      cfg.rcut = 5.0;  // fits a single 192-atom cell
      cfg.sel = {30, 62};
    }
  } else if (system == "copper") {
    cfg = ModelConfig::copper();
  } else {
    throw dp::Error("unknown --system '" + system + "' (water|copper)");
  }
  if (demo) {
    cfg.embed_widths = {16, 32, 64};
    cfg.fit_widths = {64, 64, 64};
    cfg.axis_neuron = 8;
  }
  if (descriptor == "se_r")
    cfg.descriptor = dp::core::DescriptorKind::SeR;
  else if (descriptor != "se_a")
    throw dp::Error("unknown --descriptor '" + descriptor + "' (se_a|se_r)");
  return cfg;
}

dp::md::Configuration system_for(const std::string& system, int cells) {
  if (system == "water") return dp::md::make_water(cells, cells, cells);
  return dp::md::make_fcc(6 * cells, 6 * cells, 6 * cells);
}

// ---- observability wiring (--trace / --metrics) ---------------------------

struct ObsOutputs {
  std::string trace_path;
  std::string metrics_path;
};

// ---- fatal-path plumbing (--health / --flight-recorder) -------------------
//
// DP_CHECK failures route through one handler: dp::set_fatal_hook ->
// obs::notify_fatal (stderr message + flight-recorder dump + metrics
// fsync), and only then does the check throw as before. The flush hook may
// run inside a signal handler, so the metrics path lives in a fixed buffer
// and the hook sticks to open/fsync/close.

char g_metrics_sync_path[512] = {0};

DP_SIGNAL_SAFE void fsync_metrics_hook() noexcept {
  if (g_metrics_sync_path[0] == '\0') return;
  const int fd = ::open(g_metrics_sync_path, O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void fatal_bridge(const char* msg) noexcept { dp::obs::notify_fatal(msg); }

void print_health_summary(const dp::obs::HealthReport& report) {
  std::printf("\nrun health: %s\n", dp::obs::to_string(report.worst()));
  std::printf("  %-28s %-6s %12s %12s %12s %6s\n", "watchdog", "state", "value",
              "warn", "fatal", "trips");
  for (const auto& e : report.entries) {
    std::printf("  %-28s %-6s %12.4g %12.4g %12.4g %6llu\n", e.name.c_str(),
                dp::obs::to_string(e.state), e.value, e.warn, e.fatal,
                static_cast<unsigned long long>(e.transitions));
  }
}

/// Writes the gathered final forces, indexed by global atom id, as %a hex
/// floats — the exact bit pattern, so the cross-transport parity tests can
/// diff the files for bitwise agreement.
void write_force_dump(const std::string& path, const std::vector<dp::Vec3>& force) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw dp::Error("cannot write force dump to " + path);
  for (std::size_t i = 0; i < force.size(); ++i)
    std::fprintf(f, "%zu %a %a %a\n", i, force[i].x, force[i].y, force[i].z);
  std::fclose(f);
  std::printf("force dump (%zu atoms) written to %s\n", force.size(), path.c_str());
}

/// Reads the output flags and turns on trace collection if requested (must
/// happen before the instrumented code runs — spans check the flag live).
ObsOutputs setup_observability(const Args& args) {
  ObsOutputs out{args.get("trace"), args.get("metrics")};
  if (!out.trace_path.empty()) dp::obs::TraceCollector::instance().set_enabled(true);
  return out;
}

void write_observability(const ObsOutputs& out) {
  if (!out.trace_path.empty()) {
    if (dp::obs::TraceCollector::instance().write_chrome_trace_file(out.trace_path))
      std::printf("trace written to %s (load in chrome://tracing or Perfetto)\n",
                  out.trace_path.c_str());
    else
      std::fprintf(stderr, "dpmd: could not write trace to %s\n", out.trace_path.c_str());
  }
  if (!out.metrics_path.empty()) {
    if (dp::obs::MetricsRegistry::instance().write_jsonl_file(out.metrics_path))
      std::printf("metrics written to %s\n", out.metrics_path.c_str());
    else
      std::fprintf(stderr, "dpmd: could not write metrics to %s\n",
                   out.metrics_path.c_str());
  }
}

/// End-of-run table: each step phase's share of the measured wall time.
/// With in-process ranks the phase totals accumulate across all rank
/// threads, so the budget is wall * nranks.
void print_step_breakdown(double wall_seconds, int nranks) {
  static const char* kPhases[] = {"md.force",      "md.neighbor", "md.halo",
                                  "md.integrate",  "md.thermostat", "md.sample"};
  if (wall_seconds <= 0.0) return;
  const auto snap = dp::TimerRegistry::instance().snapshot();
  const double budget = wall_seconds * std::max(nranks, 1);
  std::printf("\nstep-phase breakdown (%.3f s wall%s):\n", wall_seconds,
              nranks > 1 ? ", summed over ranks" : "");
  std::printf("  %-14s %10s %9s %7s\n", "phase", "seconds", "calls", "share");
  double covered = 0.0;
  for (const char* name : kPhases) {
    const auto it = snap.find(name);
    if (it == snap.end()) continue;
    covered += it->second.total_seconds;
    std::printf("  %-14s %10.3f %9llu %6.1f%%\n", name, it->second.total_seconds,
                static_cast<unsigned long long>(it->second.calls),
                100.0 * it->second.total_seconds / budget);
  }
  std::printf("  %-14s %10.3f %9s %6.1f%%\n", "total", covered, "",
              100.0 * covered / budget);
}

/// Measured force-kernel sections next to the analytic cost model's per-atom
/// FLOP counts (perf/cost_model) — the roofline sanity check the paper's
/// Sec 5 tables make at machine scale.
void print_cost_model_table(const std::string& path, const DPModel& model,
                            std::size_t n_atoms, double volume,
                            std::uint64_t force_evals) {
  dp::perf::Path ppath;
  if (path == "baseline")
    ppath = dp::perf::Path::Baseline;
  else if (path == "tabulated")
    ppath = dp::perf::Path::Tabulated;
  else if (path == "fused")
    ppath = dp::perf::Path::Fused;
  else
    return;  // mixed / se_r have no analytic model
  if (force_evals == 0 || n_atoms == 0) return;

  dp::perf::WorkloadSpec w;
  w.config = model.config();
  w.density = volume > 0.0 ? static_cast<double>(n_atoms) / volume : 0.1;
  constexpr double kPi = 3.14159265358979323846;
  w.real_neighbors =
      w.density * (4.0 / 3.0) * kPi * w.config.rcut * w.config.rcut * w.config.rcut;
  const auto costs = dp::perf::per_atom_costs(w, ppath);

  struct Row {
    const char* label;
    dp::KernelCost modeled;
    std::vector<std::string> sections;
  };
  std::vector<Row> rows;
  if (path == "fused") {
    rows = {{"env_mat", costs.env_mat, {"fused.env_mat"}},
            {"descriptor", costs.embedding + costs.descriptor_fit, {"fused.descriptor"}},
            {"prod_force", costs.prod_force, {"fused.prod_force"}}};
  } else if (path == "tabulated") {
    rows = {{"env_mat", costs.env_mat, {"compressed.env_mat"}},
            {"embedding", costs.embedding, {"compressed.tabulation"}},
            {"descriptor_fit", costs.descriptor_fit, {"compressed.descriptor_fit"}},
            {"prod_force", costs.prod_force, {"compressed.prod_force"}}};
  } else {
    rows = {{"env_mat", costs.env_mat, {"baseline.env_mat"}},
            {"embedding", costs.embedding,
             {"baseline.embedding_fwd", "baseline.embedding_bwd"}},
            {"descriptor_fit", costs.descriptor_fit, {"baseline.descriptor_fit"}},
            {"prod_force", costs.prod_force, {"baseline.prod_force"}}};
  }

  const auto snap = dp::TimerRegistry::instance().snapshot();
  const double per_eval_atom =
      1.0 / (static_cast<double>(force_evals) * static_cast<double>(n_atoms));
  std::printf("\nforce-kernel sections vs cost model (per atom per evaluation):\n");
  std::printf("  %-15s %12s %14s %14s\n", "stage", "measured", "modeled", "intensity");
  std::printf("  %-15s %12s %14s %14s\n", "", "[us]", "[kFLOP]", "[FLOP/B]");
  for (const auto& row : rows) {
    double seconds = 0.0;
    for (const auto& s : row.sections) {
      const auto it = snap.find(s);
      if (it != snap.end()) seconds += it->second.total_seconds;
    }
    std::printf("  %-15s %12.3f %14.2f %14.2f\n", row.label,
                seconds * per_eval_atom * 1e6, row.modeled.flops / 1e3,
                row.modeled.intensity());
  }
  const auto total = costs.total();
  std::printf("  %-15s %12s %14.2f %14.2f\n", "total", "", total.flops / 1e3,
              total.intensity());
}

int cmd_init(const Args& args) {
  const std::string system = args.get("system", "water");
  const std::string out = args.get("out", "model.dpm");
  DPModel model(config_for(system, args.has("demo"), args.get("descriptor", "se_a")),
                static_cast<std::uint64_t>(args.get_int("seed", 2022)));
  model.save(out);
  std::printf("wrote %s model to %s\n", system.c_str(), out.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  DPModel model = DPModel::load(args.get("model", "model.dpm"));
  const ModelConfig& c = model.config();
  std::printf("cutoff        %.2f A (smooth from %.2f A)\n", c.rcut, c.rcut_smth);
  std::printf("types         %d\n", c.ntypes);
  std::printf("sel           ");
  for (int s : c.sel) std::printf("%d ", s);
  std::printf(" (N_m = %d)\n", c.nm());
  std::printf("embedding     ");
  for (std::size_t w : c.embed_widths) std::printf("%zu ", w);
  std::printf(" (M = %zu)\n", c.m());
  std::printf("axis neurons  %zu (descriptor %zu)\n", c.axis_neuron, c.descriptor_dim());
  std::printf("fitting       ");
  for (std::size_t w : c.fit_widths) std::printf("%zu ", w);
  std::printf("\n");
  return 0;
}

int cmd_compress(const Args& args) {
  DPModel model = DPModel::load(args.get("model", "model.dpm"));
  const double interval = args.get_double("interval", 0.01);
  const double rmin = args.get_double("rmin", 0.8);
  dp::tab::TabulationSpec spec{
      0.0, dp::tab::TabulatedDP::s_max(model.config(), rmin), interval};
  dp::WallTimer t;
  dp::tab::TabulatedDP tab(model, spec);
  std::printf("tabulated %d embedding net(s) over s in [0, %.3f], interval %.4g\n",
              model.config().ntypes, spec.hi, interval);
  std::printf("table size %.2f MB, built in %.2f s\n",
              static_cast<double>(tab.total_bytes()) / 1e6, t.seconds());
  if (args.has("out")) {
    dp::tab::save_compressed_model(args.get("out"), tab);
    std::printf("wrote compressed bundle to %s\n", args.get("out").c_str());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const ObsOutputs obs_out = setup_observability(args);
  // Either a raw model (tables built on the fly) or a compressed bundle.
  std::unique_ptr<dp::tab::CompressedModel> bundle;
  std::unique_ptr<DPModel> owned_model;
  std::unique_ptr<dp::tab::TabulatedDP> owned_tab;
  if (args.has("compressed")) {
    bundle = std::make_unique<dp::tab::CompressedModel>(
        dp::tab::CompressedModel::load(args.get("compressed")));
  } else {
    owned_model = std::make_unique<DPModel>(DPModel::load(args.get("model", "model.dpm")));
  }
  const DPModel& model = bundle ? bundle->model() : *owned_model;
  const std::string system = args.get("system", "water");
  auto sys = args.has("data") ? dp::md::read_lammps_data(args.get("data"))
                              : system_for(system, args.get_int("cells", 1));
  if (args.has("data"))
    std::printf("loaded %zu atoms from %s\n", sys.atoms.size(), args.get("data").c_str());
  bool restarted = false;
  if (args.has("restart")) {
    const auto ck = dp::md::load_checkpoint(args.get("restart"));
    sys = ck.config;
    restarted = true;
    std::printf("restarted from %s (step %d, %zu atoms)\n", args.get("restart").c_str(),
                ck.step, sys.atoms.size());
  }
  // Inhomogeneous-load scenario: grow the box along x by FRAC without moving
  // atoms, leaving a vacuum slab at high x — the workload where fixed slabs
  // are maximally unbalanced and --rebalance has the most to recover.
  const double vacuum = args.get_double("vacuum", 0.0);
  if (vacuum > 0.0) {
    const dp::Vec3 L = sys.box.lengths();
    sys.box = dp::md::Box(L.x * (1.0 + vacuum), L.y, L.z);
    std::printf("vacuum gap: box stretched to %.2f A along x\n",
                sys.box.lengths().x);
  }

  if (!bundle) {
    const double rmin = args.get_double("rmin", system == "water" ? 0.8 : 1.8);
    dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(model.config(), rmin),
                                 args.get_double("interval", 0.01)};
    owned_tab = std::make_unique<dp::tab::TabulatedDP>(model, spec);
  }
  const dp::tab::TabulatedDP& tabulated = bundle ? bundle->tabulated() : *owned_tab;

  std::string path = args.get("path", "fused");
  if (model.config().descriptor == dp::core::DescriptorKind::SeR) path = "se_r";
  std::unique_ptr<dp::md::ForceField> ff;
  if (path == "se_r")
    ff = std::make_unique<dp::fused::SeRFusedDP>(tabulated);
  else if (path == "baseline")
    ff = std::make_unique<dp::core::BaselineDP>(model);
  else if (path == "tabulated")
    ff = std::make_unique<dp::tab::CompressedDP>(tabulated);
  else if (path == "fused")
    ff = std::make_unique<dp::fused::FusedDP>(tabulated);
  else if (path == "mixed")
    ff = std::make_unique<dp::fused::MixedFusedDP>(tabulated);
  else
    throw dp::Error("unknown --path '" + path + "'");

  dp::md::SimulationConfig sc;
  sc.steps = args.get_int("steps", 99);
  sc.dt = args.get_double("dt", system == "water" ? 0.5 : 1.0) * 1e-3;  // fs -> ps
  sc.temperature = args.get_double("temp", 330.0);
  sc.skin = args.get_double("skin", 1.0);
  sc.thermo_every = args.get_int("thermo-every", 10);

  // Run-health watchdogs + crash black box. The fatal hook routes every
  // DP_CHECK failure through obs::notify_fatal before it throws.
  const bool health_on = args.has("health");
  const bool flight_on = args.has("flight-recorder");
  std::string flight_dir = args.get("flight-recorder", ".");
  if (flight_dir == "1") flight_dir = ".";  // bare flag, no directory value
  if (health_on || flight_on) dp::set_fatal_hook(&fatal_bridge);
  if (flight_on) {
    dp::obs::install_crash_handlers();
    if (!obs_out.metrics_path.empty()) {
      std::snprintf(g_metrics_sync_path, sizeof g_metrics_sync_path, "%s",
                    obs_out.metrics_path.c_str());
      dp::obs::set_fatal_flush_hook(&fsync_metrics_hook);
    }
  }
  // Deterministic fault injection for the crash-path ctests (undocumented).
  const int inject_segv = args.get_int("inject-segv", -1);
  const int inject_fatal = args.get_int("inject-fatal", -1);

  // Transport selection: --transport/--rank/--world/--rendezvous/--timeout
  // override the DP_* environment (transport_config_from_env). Anything but
  // "threads" makes this process exactly one rank of a multi-process world.
  dp::par::TransportConfig tcfg = dp::par::transport_config_from_env();
  if (args.has("transport"))
    tcfg.kind = dp::par::parse_transport_kind(args.get("transport"));
  if (args.has("rank")) tcfg.rank = args.get_int("rank", 0);
  if (args.has("world")) tcfg.world = args.get_int("world", 1);
  if (args.has("rendezvous")) tcfg.rendezvous = args.get("rendezvous");
  if (args.has("timeout")) tcfg.timeout_seconds = args.get_double("timeout", 60.0);
  const bool multiprocess = tcfg.kind != dp::par::TransportKind::Threads;

  // Domain-decomposed run — in-process rank threads (--ranks N) or one rank
  // of a multi-process world (--transport shm|tcp). Fused path only; the
  // serial driver below additionally supports thermostats and dumps.
  if (multiprocess || args.get_int("ranks", 1) > 1) {
    sc.rebuild_every = args.get_int("rebuild-every", 10);
    dp::TimerRegistry::instance().clear();
    dp::par::DistributedOptions dopts;
    dp::obs::HealthConfig hcfg;
    if (health_on) {
      hcfg.target_temperature = sc.temperature;
      dopts.health = &hcfg;
    }
    if (flight_on) {
      dopts.flight_recorder = true;
      dopts.flight_dir = flight_dir;
      dopts.metrics_rewrite_path = obs_out.metrics_path;
    }
    dopts.rebalance = args.has("rebalance");
    dopts.rebalance_every = args.get_int("rebalance-every", dopts.rebalance_every);
    const std::string force_dump = args.get("force-dump");
    dopts.gather_state = !force_dump.empty();
    if (inject_segv >= 0 || inject_fatal >= 0) {
      dopts.on_sample = [inject_segv, inject_fatal](int rank, int step) {
        if (rank != 0) return;
        if (inject_segv >= 0 && step >= inject_segv) ::raise(SIGSEGV);
        if (inject_fatal >= 0 && step >= inject_fatal) {
          // Exercise the DP_CHECK fatal route (hook fires: message + flight
          // dump + metrics fsync), then abort: with sibling ranks parked in
          // collectives the exception could never unwind past the rank
          // thread anyway, and abort() hands control to the SIGABRT handler
          // exactly as an uncaught failure would.
          try {
            DP_CHECK_MSG(false, "injected fatal at step " << step);
          } catch (const dp::Error&) {
            std::abort();
          }
        }
      };
    }
    const auto factory = [&] { return std::make_unique<dp::fused::FusedDP>(tabulated); };
    dp::par::DistributedRunResult result;
    int ranks = 0;
    bool print_results = true;
    if (multiprocess) {
      dp::par::ProcessGroup pg(tcfg);
      ranks = pg.size();
      print_results = pg.rank() == 0;
      if (print_results)
        std::printf("%s | %zu atoms | distributed on %d %s ranks | %d steps\n",
                    system.c_str(), sys.atoms.size(), ranks,
                    tcfg.kind == dp::par::TransportKind::Shm ? "shm" : "tcp", sc.steps);
      result = dp::par::run_distributed_md_rank(pg.comm(), sys, factory, sc, dopts);
    } else {
      ranks = args.get_int("ranks", 1);
      std::printf("%s | %zu atoms | distributed on %d ranks | %d steps\n", system.c_str(),
                  sys.atoms.size(), ranks, sc.steps);
      result = dp::par::run_distributed_md(ranks, sys, factory, sc, dopts);
    }
    if (print_results) {
      std::printf("%6s %14s %10s\n", "step", "E_tot [eV]", "T [K]");
      for (const auto& s : result.thermo)
        std::printf("%6d %14.6f %10.2f\n", s.step, s.total(), s.temperature);
      std::printf(
          "comm[%s]: %.1f KB in %llu messages (%.1f KB wire); max ghosts/rank %zu; "
          "wall %.2f s\n",
          result.comm.transport, result.comm.bytes / 1024.0,
          static_cast<unsigned long long>(result.comm.messages),
          result.comm.wire_bytes / 1024.0, result.max_ghost_atoms, result.wall_seconds);
      std::printf("rebuilds %llu (early %llu); load imbalance %.4f; boundary shifts "
                  "%llu\n",
                  static_cast<unsigned long long>(result.neighbor_rebuilds),
                  static_cast<unsigned long long>(result.early_rebuilds),
                  result.load_imbalance,
                  static_cast<unsigned long long>(result.boundary_shifts));
      if (!force_dump.empty()) write_force_dump(force_dump, result.final_force);
      print_step_breakdown(result.wall_seconds, multiprocess ? 1 : ranks);
      if (health_on) print_health_summary(result.health);
    }
    write_observability(obs_out);
    return 0;
  }

  // A restart must keep the checkpointed velocities: the driver
  // re-thermalizes at sc.temperature, so stash and restore them.
  const auto restart_velocities = sys.atoms.vel;

  std::unique_ptr<dp::md::Thermostat> thermostat;
  const std::string tname = args.get("thermostat", "none");
  if (tname == "langevin")
    thermostat = std::make_unique<dp::md::LangevinThermostat>(sc.temperature, 0.1);
  else if (tname == "berendsen")
    thermostat = std::make_unique<dp::md::BerendsenThermostat>(sc.temperature, 0.1);
  else if (tname == "nose-hoover")
    thermostat = std::make_unique<dp::md::NoseHooverThermostat>(sc.temperature, 0.1);
  else if (tname != "none")
    throw dp::Error("unknown --thermostat '" + tname + "'");
  sc.thermostat = thermostat.get();

  std::unique_ptr<dp::md::BerendsenBarostat> barostat;
  if (args.has("pressure")) {
    barostat = std::make_unique<dp::md::BerendsenBarostat>(args.get_double("pressure", 0.0),
                                                           0.1, 1e-5);
    sc.barostat = barostat.get();
  }

  std::unique_ptr<dp::obs::HealthMonitor> health;
  if (health_on) {
    dp::obs::HealthConfig hcfg;
    hcfg.target_temperature = sc.temperature;
    health = std::make_unique<dp::obs::HealthMonitor>(
        hcfg, &dp::obs::MetricsRegistry::instance());
    sc.health = health.get();
  }
  std::unique_ptr<dp::obs::FlightRecorder> flight;
  if (flight_on) {
    flight = std::make_unique<dp::obs::FlightRecorder>(0);
    flight->set_output_dir(flight_dir.c_str());
    flight->register_for_crash_dump();
    sc.flight = flight.get();
  }

  // Timers from model setup must not dilute the run breakdown: everything
  // after this point is either construction (reported per force eval by the
  // cost table) or the timed run itself.
  dp::TimerRegistry::instance().clear();
  dp::CostRegistry::instance().clear();

  dp::md::Simulation md(sys, *ff, sc);
  if (restarted) md.configuration().atoms.vel = restart_velocities;

  std::unique_ptr<dp::md::XyzWriter> dump;
  if (args.has("dump")) {
    const std::vector<std::string> symbols =
        system == "water" ? std::vector<std::string>{"O", "H"}
                          : std::vector<std::string>{"Cu"};
    dump = std::make_unique<dp::md::XyzWriter>(args.get("dump"), symbols);
  }
  std::unique_ptr<dp::md::ThermoCsvWriter> thermo_csv;
  if (args.has("thermo")) thermo_csv = std::make_unique<dp::md::ThermoCsvWriter>(args.get("thermo"));

  std::printf("%s | %zu atoms | path=%s | dt=%.3g fs | %d steps | thermostat=%s\n",
              system.c_str(), md.configuration().atoms.size(), path.c_str(), sc.dt * 1e3,
              sc.steps, tname.c_str());
  std::printf("%6s %14s %10s %12s\n", "step", "E_tot [eV]", "T [K]", "P [bar]");
  md.on_thermo = [&](int step, const dp::md::ThermoSample& s) {
    std::printf("%6d %14.6f %10.2f %12.1f\n", step, s.total(), s.temperature,
                s.pressure_bar);
    if (thermo_csv) thermo_csv->write(s);
    if (dump) dump->write_frame(md.configuration().box, md.configuration().atoms,
                                "step=" + std::to_string(step));
    // With the black box armed, keep the on-disk metrics log in lockstep
    // with it (synced rewrite each sample), so a post-mortem can match
    // flightrec last_step against the logged md.steps.
    if (flight && !obs_out.metrics_path.empty())
      dp::obs::MetricsRegistry::instance().write_jsonl_file_sync(obs_out.metrics_path);
    if (inject_segv >= 0 && step >= inject_segv) ::raise(SIGSEGV);
    if (inject_fatal >= 0 && step >= inject_fatal)
      DP_CHECK_MSG(false, "injected fatal at step " << step);
  };

  dp::WallTimer t;
  md.run();
  const double wall = t.seconds();
  const double per_atom = wall / md.force_evaluations() /
                          static_cast<double>(md.configuration().atoms.size()) * 1e6;
  std::printf("done: %.3f us/step/atom\n", per_atom);
  print_step_breakdown(wall, 1);
  print_cost_model_table(path, model, md.configuration().atoms.size(),
                         md.configuration().box.volume(),
                         static_cast<std::uint64_t>(md.force_evaluations()));
  if (health) {
    health->publish_gauges(dp::obs::MetricsRegistry::instance());
    print_health_summary(health->report());
  }
  write_observability(obs_out);
  if (args.has("save-checkpoint")) {
    dp::md::save_checkpoint(args.get("save-checkpoint"), md.configuration(),
                            md.current_step());
    std::printf("checkpoint written to %s\n", args.get("save-checkpoint").c_str());
  }
  return 0;
}

int cmd_train(const Args& args) {
  const ObsOutputs obs_out = setup_observability(args);
  // Train a (tiny) model on LJ-labelled copper frames, then save it.
  const int frames = args.get_int("frames", 16);
  const int epochs = args.get_int("epochs", 10);
  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  DPModel model(cfg, static_cast<std::uint64_t>(args.get_int("seed", 2022)));
  auto data = dp::train::Dataset::lj_copper(frames, args.get_int("cells", 2), 0.12,
                                            static_cast<std::uint64_t>(args.get_int("seed", 2022)));
  dp::train::TrainConfig tc;
  tc.learning_rate = args.get_double("lr", 3e-3);
  tc.pref_f = args.get_double("pref-f", 0.0);

  if (args.get_int("ranks", 1) > 1) {
    const int ranks = args.get_int("ranks", 1);
    std::printf("data-parallel training on %d in-process ranks\n", ranks);
    const auto r = dp::train::train_distributed(ranks, model, data, tc, epochs);
    for (int e = 0; e < epochs; ++e)
      std::printf("epoch %3d: RMSE %.6f eV/atom\n", e + 1,
                  r.epoch_rmse[static_cast<std::size_t>(e)]);
    const std::string out = args.get("out", "trained.dpm");
    model.save(out);
    std::printf("wrote trained model to %s\n", out.c_str());
    write_observability(obs_out);
    return 0;
  }

  dp::train::EnergyTrainer trainer(model, tc);
  std::printf("initial RMSE %.6f eV/atom (forces %.4f eV/A)\n", trainer.evaluate(data),
              trainer.evaluate_forces(data));
  for (int e = 1; e <= epochs; ++e) {
    const double rmse = trainer.epoch(data);
    std::printf("epoch %3d: RMSE %.6f eV/atom\n", e, rmse);
  }
  std::printf("final force RMSE %.4f eV/A\n", trainer.evaluate_forces(data));
  const std::string out = args.get("out", "trained.dpm");
  model.save(out);
  std::printf("wrote trained model to %s\n", out.c_str());
  write_observability(obs_out);
  return 0;
}

int usage() {
  std::printf(
      "usage: dpmd <command> [--option value ...]\n"
      "  init      create a model file       (--system water|copper --out F [--demo])\n"
      "  info      describe a model file     (--model F)\n"
      "  compress  tabulate a model          (--model F [--interval H] [--rmin R])\n"
      "  run       molecular dynamics        (--model F | --compressed F) --system S\n"
      "            [--path baseline|tabulated|fused|mixed] [--cells N] [--steps N]\n"
      "            [--dt FS] [--temp K] [--thermostat none|langevin|berendsen|nose-hoover]\n"
      "            [--pressure BAR]\n"
      "            [--dump traj.xyz] [--thermo out.csv] [--ranks N]\n"
      "            [--transport threads|shm|tcp --rank K --world N\n"
      "             --rendezvous NAME|HOST:PORT [--timeout S]]  (or DP_TRANSPORT,\n"
      "             DP_RANK, DP_WORLD, DP_RENDEZVOUS, DP_TIMEOUT env)\n"
      "            [--rebalance [--rebalance-every K]] [--vacuum FRAC]\n"
      "            [--force-dump F]\n"
      "            [--restart ckpt] [--save-checkpoint ckpt] [--data lammps.data]\n"
      "            [--trace out.trace.json] [--metrics out.metrics.jsonl]\n"
      "            [--health] [--flight-recorder [DIR]]\n"
      "  train     fit a model to LJ labels    (--frames N --epochs N [--pref-f W] --out F\n"
      "            [--trace F] [--metrics F])\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "init") return cmd_init(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "compress") return cmd_compress(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "train") return cmd_train(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dpmd: %s\n", e.what());
    return 1;
  }
}
