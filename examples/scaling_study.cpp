// Domain-decomposed parallel MD with communication accounting — a miniature
// of the paper's Sec 6.4 scaling experiments, run on in-process ranks.
//
//   build/examples/scaling_study [max_ranks]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fused/fused_model.hpp"
#include "parallel/distributed_md.hpp"
#include "tab/tabulated_model.hpp"

int main(int argc, char** argv) {
  const int max_ranks = argc > 1 ? std::atoi(argv[1]) : 8;

  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  dp::core::DPModel model(cfg, 5);
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);

  auto system = dp::md::make_fcc(8, 8, 8, 3.634, 63.546, 0.05, 3);
  std::printf("copper-like system: %zu atoms, box %.1f A\n\n", system.atoms.size(),
              system.box.lengths().x);

  dp::md::SimulationConfig sim;
  sim.dt = 0.001;
  sim.steps = 10;
  sim.temperature = 330.0;
  sim.skin = 1.0;
  sim.rebuild_every = 5;
  sim.thermo_every = 10;

  std::printf("%6s %8s %12s %12s %14s %12s\n", "ranks", "grid", "local atoms", "ghosts",
              "comm [KB]", "drift [eV]");
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    dp::par::DistributedOptions opts;
    const auto result = dp::par::run_distributed_md(
        ranks, system, [&] { return std::make_unique<dp::fused::FusedDP>(compressed); }, sim,
        opts);
    const auto grid = dp::par::Decomp::choose_grid(system.box, ranks);
    const double drift =
        result.thermo.back().total() - result.thermo.front().total();
    std::printf("%6d %2dx%1dx%1d %12zu %12zu %14.1f %12.2e\n", ranks, grid[0], grid[1],
                grid[2], result.max_local_atoms, result.max_ghost_atoms,
                result.comm.bytes / 1024.0, drift);
  }
  std::printf("\nghost counts and traffic grow with rank count while the physics\n"
              "(energy drift) is rank-count independent — Sec 3.3's granularity point.\n");
  return 0;
}
