// The paper's copper measurement protocol (Sec 4), scaled to one core:
// FCC lattice (a = 3.634 A), 1 fs steps, velocity-Verlet at 330 K, neighbor
// list with a 2 A buffer rebuilt every 50 steps, thermo every 50 steps.
//
//   build/examples/copper_fcc [cells_per_edge] [steps]
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "fused/fused_model.hpp"
#include "md/simulation.hpp"
#include "tab/tabulated_model.hpp"

int main(int argc, char** argv) {
  const int cells = argc > 1 ? std::atoi(argv[1]) : 6;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;

  // Copper model: rc = 8 A, N_m = 500 reserved slots (the high-pressure
  // reserve whose padding the fused kernel skips). Demo-sized nets.
  dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
  cfg.embed_widths = {16, 32, 64};
  cfg.fit_widths = {64, 64, 64};
  cfg.axis_neuron = 8;
  dp::core::DPModel model(cfg, 7);
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 1.8), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);
  dp::fused::FusedDP ff(compressed);

  auto system = dp::md::make_fcc(cells, cells, cells);
  std::printf("copper FCC: %zu atoms, box %.2f A, rc = %.1f A\n", system.atoms.size(),
              system.box.lengths().x, cfg.rcut);

  dp::md::SimulationConfig sim;
  sim.dt = 0.001;  // 1 fs
  sim.steps = steps;
  sim.temperature = 330.0;
  sim.rebuild_every = 50;
  sim.thermo_every = 10;
  dp::md::Simulation md(system, ff, sim);

  std::printf("%6s %14s %10s %12s\n", "step", "E_tot [eV]", "T [K]", "P [bar]");
  md.on_thermo = [](int step, const dp::md::ThermoSample& s) {
    std::printf("%6d %14.6f %10.2f %12.1f\n", step, s.total(), s.temperature, s.pressure_bar);
  };
  dp::WallTimer timer;
  md.run();
  const double us_per_step_atom =
      timer.seconds() / md.force_evaluations() / static_cast<double>(system.atoms.size()) * 1e6;
  std::printf("time-to-solution: %.3f us/step/atom on this machine\n", us_per_step_atom);
  std::printf("redundancy skipped: %.1f%% of the %d reserved slots per atom\n",
              100.0 * ff.env().padding_fraction(), cfg.nm());
  return 0;
}
