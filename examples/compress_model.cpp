// The model-compression workflow ("dp compress"): tabulate a DP model at
// several interval sizes and report the accuracy-vs-size tradeoff the paper
// discusses in Sec 3.2 / Fig 2.
//
//   build/examples/compress_model [model_file]
//
// If a path is given, the reference model is saved there and re-loaded —
// demonstrating model serialization.
#include <cmath>
#include <cstdio>

#include "dp/baseline_model.hpp"
#include "md/lattice.hpp"
#include "tab/compressed_model.hpp"

int main(int argc, char** argv) {
  dp::core::ModelConfig cfg = dp::core::ModelConfig::water();
  cfg.embed_widths = {16, 32, 64};
  cfg.fit_widths = {64, 64, 64};
  cfg.axis_neuron = 8;
  cfg.rcut = 5.0;  // demo cutoff fitting the single water cell
  cfg.sel = {30, 62};
  dp::core::DPModel model(cfg, 11);

  if (argc > 1) {
    model.save(argv[1]);
    model = dp::core::DPModel::load(argv[1]);
    std::printf("model round-tripped through %s\n", argv[1]);
  }

  // Reference energies/forces from the uncompressed network.
  auto sys = dp::md::make_water(1, 1, 1, 99);
  dp::core::BaselineDP reference(model);
  dp::md::NeighborList nl(reference.cutoff(), 1.0);
  nl.build(sys.box, sys.atoms.pos);
  dp::md::Atoms ref_atoms = sys.atoms;
  reference.compute(sys.box, ref_atoms, nl);
  const auto ref_e = reference.atom_energies();

  std::printf("%10s %14s %16s %16s\n", "interval", "table size", "RMSE_E [eV/atom]",
              "RMSE_F [eV/A]");
  const double s_hi = dp::tab::TabulatedDP::s_max(cfg, 0.8);
  for (double interval : {0.1, 0.03, 0.01, 0.003, 0.001}) {
    dp::tab::TabulatedDP tab(model, {0.0, s_hi, interval});
    dp::tab::CompressedDP compressed(tab);
    dp::md::Atoms atoms = sys.atoms;
    compressed.compute(sys.box, atoms, nl);

    double se = 0.0, sf = 0.0;
    const auto& tab_e = compressed.atom_energies();
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      se += (tab_e[i] - ref_e[i]) * (tab_e[i] - ref_e[i]);
      sf += norm2(atoms.force[i] - ref_atoms.force[i]);
    }
    const double n = static_cast<double>(atoms.size());
    std::printf("%10.3f %11.1f KB %16.3e %16.3e\n", interval,
                tab.total_bytes() / 1024.0, std::sqrt(se / n), std::sqrt(sf / (3.0 * n)));
  }
  std::printf("\nfiner intervals converge toward the reference model at the cost of\n"
              "table size — the paper picks 0.01 as the accuracy/size sweet spot.\n");
  return 0;
}
