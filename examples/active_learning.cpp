// DP-GEN-style active learning skeleton (the concurrent-learning platform
// of Ref [40] that produced the paper's copper model): train a small
// committee of models from different seeds, run exploration MD with one of
// them, and flag the frames where the committee disagrees — those are the
// configurations a production loop would send to DFT for new labels.
//
//   build/examples/active_learning [exploration_steps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fused/fused_model.hpp"
#include "md/simulation.hpp"
#include "train/deviation.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 30;

  // 1. Shared training data; committee of 3 models from different seeds.
  auto data = dp::train::Dataset::lj_copper(12, 2, 0.12, 99);
  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;

  std::vector<std::unique_ptr<dp::core::DPModel>> models;
  std::vector<std::unique_ptr<dp::tab::TabulatedDP>> tabs;
  std::vector<std::unique_ptr<dp::fused::FusedDP>> committee;
  std::printf("training a 3-model committee on %zu LJ-labelled frames\n", data.size());
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    models.push_back(std::make_unique<dp::core::DPModel>(cfg, seed));
    dp::train::TrainConfig tc;
    tc.learning_rate = 3e-3;
    tc.seed = seed;
    dp::train::EnergyTrainer trainer(*models.back(), tc);
    double rmse = 0;
    for (int e = 0; e < 8; ++e) rmse = trainer.epoch(data);
    std::printf("  model(seed %2llu): train RMSE %.4f eV/atom\n",
                static_cast<unsigned long long>(seed), rmse);
    tabs.push_back(std::make_unique<dp::tab::TabulatedDP>(
        *models.back(),
        dp::tab::TabulationSpec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01}));
    committee.push_back(std::make_unique<dp::fused::FusedDP>(*tabs.back()));
  }
  std::vector<dp::md::ForceField*> raw;
  for (auto& ff : committee) raw.push_back(ff.get());
  dp::train::ModelDeviation deviation(raw);

  // 2. Exploration MD with the first model; screen every frame.
  auto sys = dp::md::make_fcc(4, 4, 4, 3.7, 63.546, 0.0, 5);
  dp::md::LangevinThermostat thermostat(500.0, 0.05, 6);  // drive disorder
  dp::md::SimulationConfig sc;
  sc.dt = 0.002;
  sc.steps = steps;
  sc.temperature = 500.0;
  sc.skin = 1.0;
  sc.thermo_every = steps;
  sc.thermostat = &thermostat;
  dp::md::Simulation md(sys, *committee.front(), sc);

  // DP-GEN selection window [lo, hi): below lo the committee agrees (no new
  // label needed), above hi the frame is unphysical garbage.
  const double lo = 0.05, hi = 0.50;
  std::printf("\nexploration at 500 K; candidate window max force dev in [%.2f, %.2f) eV/A\n",
              lo, hi);
  std::printf("%6s %16s %16s %12s\n", "step", "max f-dev", "mean f-dev", "verdict");
  int candidates = 0;
  for (int s = 0; s < steps; ++s) {
    md.step();
    if (s % 5 != 0) continue;
    dp::md::NeighborList nl(cfg.rcut, 1.0);
    nl.build(md.configuration().box, md.configuration().atoms.pos);
    const auto r =
        deviation.evaluate(md.configuration().box, md.configuration().atoms, nl);
    const bool pick = dp::train::ModelDeviation::is_candidate(r, lo, hi);
    candidates += pick;
    std::printf("%6d %16.4f %16.4f %12s\n", md.current_step(), r.max_force_dev,
                r.mean_force_dev, pick ? "LABEL" : (r.max_force_dev < lo ? "ok" : "skip"));
  }
  std::printf("\n%d frame(s) selected for (hypothetical) first-principles labelling —\n"
              "in DP-GEN these would be computed with DFT and folded into the next\n"
              "training iteration.\n", candidates);
  return 0;
}
