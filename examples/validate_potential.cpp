// Scientific validation of the surrogate: train a DP model on energies from
// the many-body Sutton-Chen EAM (the "ab initio" stand-in), then run MD with
// BOTH potentials from the same start and compare the resulting structure
// (radial distribution function). This is the whole point of the method the
// paper scales up: the network reproduces the reference physics at a
// fraction of the cost class.
//
//   build/examples/validate_potential [epochs] [md_steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "fused/fused_model.hpp"
#include "md/eam.hpp"
#include "md/observables.hpp"
#include "md/simulation.hpp"
#include "train/trainer.hpp"

namespace {

dp::md::Rdf run_md_and_rdf(dp::md::ForceField& ff, const dp::md::Configuration& start,
                           int steps) {
  dp::md::SimulationConfig sc;
  sc.dt = 0.002;
  sc.steps = steps;
  sc.temperature = 300.0;
  sc.skin = 1.0;
  sc.thermo_every = steps;
  sc.seed = 7;  // identical initial velocities for both runs
  dp::md::Simulation md(start, ff, sc);
  md.run();
  return dp::md::compute_rdf(md.configuration().box, md.configuration().atoms, 6.0, 120);
}

}  // namespace

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 20;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 40;

  // 1. EAM-labelled training data (the "DFT" of this repository).
  auto data = dp::train::Dataset::eam_copper(24, 2, 0.12, 7);
  auto held = data.split_holdout(6);

  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.5;
  dp::core::DPModel model(cfg, 2022);
  dp::train::TrainConfig tc;
  tc.learning_rate = 5e-3;
  tc.pref_f = 50.0;  // the full energy+force loss, as production DP training
  dp::train::EnergyTrainer trainer(model, tc);
  std::printf("training on %zu EAM-labelled frames (energy+force loss):\n", data.size());
  std::printf("  E RMSE %.4f eV/atom, F RMSE %.4f eV/A", trainer.evaluate(data),
              trainer.evaluate_forces(data));
  for (int e = 0; e < epochs; ++e) trainer.epoch(data);
  std::printf(" -> E %.4f (held-out %.4f), F %.4f\n", trainer.evaluate(data),
              trainer.evaluate(held), trainer.evaluate_forces(data));

  // 2. Same MD protocol under the reference EAM and the trained DP.
  auto start = dp::md::make_fcc(4, 4, 4, 3.61, 63.546, 0.0, 3);
  dp::md::SuttonChen::Params p;
  p.rcut = 6.0;
  p.rcut_smth = 5.0;
  dp::md::SuttonChen eam(p);
  dp::tab::TabulatedDP compressed(
      model, {0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01});
  dp::fused::FusedDP dp_ff(compressed);

  const auto rdf_eam = run_md_and_rdf(eam, start, steps);
  const auto rdf_dp = run_md_and_rdf(dp_ff, start, steps);

  // 3. Structural comparison.
  std::printf("\n%8s %12s %12s\n", "r [A]", "g_EAM(r)", "g_DP(r)");
  double l2 = 0.0;
  int n_bins = 0;
  for (std::size_t b = 0; b < rdf_eam.g.size(); b += 8) {
    std::printf("%8.2f %12.3f %12.3f\n", rdf_eam.r[b], rdf_eam.g[b], rdf_dp.g[b]);
  }
  for (std::size_t b = 0; b < rdf_eam.g.size(); ++b) {
    l2 += (rdf_eam.g[b] - rdf_dp.g[b]) * (rdf_eam.g[b] - rdf_dp.g[b]);
    ++n_bins;
  }
  std::printf("\nRDF root-mean-square difference: %.3f (first peaks at %.2f vs %.2f A)\n",
              std::sqrt(l2 / n_bins), rdf_eam.r[rdf_eam.first_peak()],
              rdf_dp.r[rdf_dp.first_peak()]);
  std::printf("Reading: with the full energy+force loss the surrogate reproduces the\n"
              "reference structure closely from a few dozen frames (energy-only\n"
              "training leaves the RDF ~7x further off — try tc.pref_f = 0). With\n"
              "thousands of DFT frames this gap is what production DP closes to\n"
              "line thickness — the accuracy the paper then scales to 10^10 atoms.\n");
  return 0;
}
