// Structural analysis on top of DP-MD: heat a copper crystal with a Langevin
// thermostat and watch the solid->disordered transition through the radial
// distribution function and the mean-square displacement — the kind of
// application campaign (melting, nucleation, phase transitions) the paper's
// introduction motivates.
//
//   build/examples/melt_analysis [hot_temperature_K]
#include <cstdio>
#include <cstdlib>

#include "fused/fused_model.hpp"
#include "md/observables.hpp"
#include "md/simulation.hpp"
#include "tab/tabulated_model.hpp"

namespace {

void report(const char* label, const dp::md::Configuration& sys, double msd) {
  const auto rdf = dp::md::compute_rdf(sys.box, sys.atoms, 6.5, 130);
  const std::size_t peak = rdf.first_peak();
  // Structural order proxy: depth of the minimum after the first peak
  // relative to the peak (deep minimum = solid shells, shallow = disorder).
  double g_min = rdf.g[peak];
  for (std::size_t b = peak; b < rdf.g.size() && rdf.r[b] < rdf.r[peak] * 1.45; ++b)
    g_min = std::min(g_min, rdf.g[b]);
  std::printf("%-18s first peak at %.2f A (g = %5.2f), following minimum g = %5.2f, "
              "MSD = %7.4f A^2\n",
              label, rdf.r[peak], rdf.g[peak], g_min, msd);
}

}  // namespace

int main(int argc, char** argv) {
  const double hot = argc > 1 ? std::atof(argv[1]) : 700.0;

  dp::core::ModelConfig cfg = dp::core::ModelConfig::copper();
  cfg.embed_widths = {16, 32, 64};
  cfg.fit_widths = {64, 64, 64};
  cfg.axis_neuron = 8;
  dp::core::DPModel model(cfg, 7);
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 1.2), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);
  dp::fused::FusedDP ff(compressed);

  auto sys = dp::md::make_fcc(6, 6, 6);
  std::printf("copper, %zu atoms; cold run at 150 K, hot run at %.0f K\n\n",
              sys.atoms.size(), hot);

  for (double temperature : {150.0, hot}) {
    dp::md::LangevinThermostat thermostat(temperature, 0.05, 11);
    dp::md::SimulationConfig sc;
    sc.dt = 0.002;
    sc.steps = 60;
    sc.temperature = temperature;
    sc.skin = 1.0;
    sc.thermo_every = 60;
    sc.thermostat = &thermostat;
    dp::md::Simulation md(sys, ff, sc);

    dp::md::MsdAccumulator msd(md.configuration().box);
    msd.reset(md.configuration().atoms.pos);
    for (int s = 0; s < sc.steps; ++s) {
      md.step();
      msd.update(md.configuration().atoms.pos);
    }
    report(temperature < 500 ? "cold (150 K):" : "hot:", md.configuration(), msd.msd());
  }

  std::printf("\nReading: heating broadens the first RDF peak, fills in the minimum\n"
              "behind it, and grows the MSD — the structural signatures an actual\n"
              "melting study would track with this library at scale. (The seeded\n"
              "stand-in potential binds weakly, so disorder sets in well below\n"
              "copper's real melting point.)\n");
  return 0;
}
