// Quickstart: run Deep Potential MD on a small water box in ~30 lines.
//
//   build/examples/quickstart [steps]
//
// Builds a DP model, compresses it (tabulation), and runs NVE molecular
// dynamics with the fully optimized (fused) inference path.
#include <cstdio>
#include <cstdlib>

#include "fused/fused_model.hpp"
#include "md/simulation.hpp"
#include "tab/tabulated_model.hpp"

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 25;

  // 1. A Deep Potential model for water (2 species). Weights are seeded —
  //    stand-ins for a trained model (see DESIGN.md).
  dp::core::ModelConfig cfg = dp::core::ModelConfig::water();
  cfg.embed_widths = {16, 32, 64};  // demo-sized nets so this runs in seconds
  cfg.fit_widths = {64, 64, 64};
  cfg.axis_neuron = 8;
  cfg.rcut = 5.0;      // demo cutoff: one 192-atom water cell is 12.4 A wide
  cfg.sel = {30, 62};
  dp::core::DPModel model(cfg, /*seed=*/2022);

  // 2. Compress it: tabulate the embedding nets with 0.01 intervals.
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.8), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);
  std::printf("compressed model: %.1f KB of tables\n", compressed.total_bytes() / 1024.0);

  // 3. The optimized force field (kernel fusion + redundancy removal).
  dp::fused::FusedDP force_field(compressed);

  // 4. A 192-atom water configuration and the MD driver.
  dp::md::Configuration water = dp::md::make_water(1, 1, 1);
  dp::md::SimulationConfig sim;
  sim.dt = 0.0005;  // 0.5 fs, the paper's water time step
  sim.steps = steps;
  sim.temperature = 330.0;
  sim.thermo_every = 5;
  sim.skin = 1.0;
  dp::md::Simulation md(water, force_field, sim);

  std::printf("%6s %14s %14s %14s %10s\n", "step", "E_pot [eV]", "E_kin [eV]",
              "E_tot [eV]", "T [K]");
  md.on_thermo = [](int step, const dp::md::ThermoSample& s) {
    std::printf("%6d %14.6f %14.6f %14.6f %10.2f\n", step, s.potential, s.kinetic, s.total(),
                s.temperature);
  };
  md.run();
  std::printf("done: %d steps, %d force evaluations, %.1f%% of neighbor slots were padding\n",
              md.current_step(), md.force_evaluations(),
              100.0 * force_field.env().padding_fraction());
  return 0;
}
