// Bulk water MD comparing all three inference paths on the same trajectory
// start: baseline network, tabulated (unfused), and fused+redundancy-skip.
// Demonstrates that the optimizations preserve the physics while changing
// the per-step cost.
//
//   build/examples/water_bulk [steps]
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "dp/baseline_model.hpp"
#include "fused/fused_model.hpp"
#include "md/simulation.hpp"
#include "tab/compressed_model.hpp"

namespace {

struct RunReport {
  double e0, drift, us_step_atom;
};

RunReport run(dp::md::ForceField& ff, const dp::md::Configuration& sys, int steps) {
  dp::md::SimulationConfig sim;
  sim.dt = 0.0005;  // 0.5 fs (paper water protocol)
  sim.steps = steps;
  sim.temperature = 330.0;
  sim.thermo_every = steps;
  sim.skin = 1.0;
  sim.seed = 42;  // identical initial velocities across paths
  dp::md::Simulation md(sys, ff, sim);
  dp::WallTimer t;
  const auto& trace = md.run();
  const double wall = t.seconds();
  return {trace.front().total(), trace.back().total() - trace.front().total(),
          wall / md.force_evaluations() / static_cast<double>(sys.atoms.size()) * 1e6};
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 15;

  dp::core::ModelConfig cfg = dp::core::ModelConfig::water();
  cfg.embed_widths = {16, 32, 64};
  cfg.fit_widths = {64, 64, 64};
  cfg.axis_neuron = 8;
  cfg.rcut = 5.0;  // demo cutoff fitting the single water cell
  cfg.sel = {30, 62};
  dp::core::DPModel model(cfg, 2022);
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.8), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);

  auto sys = dp::md::make_water(1, 1, 1);
  std::printf("bulk water: %zu atoms, %d steps of 0.5 fs\n\n", sys.atoms.size(), steps);

  dp::core::BaselineDP baseline(model);
  dp::tab::CompressedDP tabulated(compressed);
  dp::fused::FusedDP fused(compressed);

  std::printf("%-22s %14s %14s %16s\n", "path", "E(0) [eV]", "drift [eV]", "us/step/atom");
  for (auto [name, ff] : {std::pair<const char*, dp::md::ForceField*>{"baseline network",
                                                                      &baseline},
                          {"tabulated (unfused)", &tabulated},
                          {"fused + skip", &fused}}) {
    const RunReport r = run(*ff, sys, steps);
    std::printf("%-22s %14.6f %14.2e %16.3f\n", name, r.e0, r.drift, r.us_step_atom);
  }
  std::printf("\nall three paths start from the same energy (the tabulated ones differ\n"
              "by the interpolation error) and conserve it; only the cost changes.\n");
  return 0;
}
