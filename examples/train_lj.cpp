// End-to-end workflow: train a DP model on reference data, compress it, and
// run optimized MD — the DeePMD-kit lifecycle (train -> compress -> LAMMPS)
// on this library's stand-in substrate (LJ labels instead of DFT).
//
//   build/examples/train_lj [epochs]
#include <cstdio>
#include <cstdlib>

#include "fused/fused_model.hpp"
#include "md/simulation.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 15;

  // 1. Reference data: disordered copper frames labelled by the in-tree
  //    Lennard-Jones potential (the DFT stand-in).
  auto data = dp::train::Dataset::lj_copper(20, 2, 0.12, 42);
  auto held = data.split_holdout(5);
  double mean = 0, stddev = 0;
  data.energy_stats(mean, stddev);
  std::printf("dataset: %zu training + %zu held-out frames, E/atom = %.4f +- %.4f eV\n",
              data.size(), held.size(), mean, stddev);

  // 2. Train the energy model.
  dp::core::ModelConfig cfg = dp::core::ModelConfig::tiny();
  cfg.rcut = 4.0;
  dp::core::DPModel model(cfg, 2022);
  dp::train::TrainConfig tc;
  tc.learning_rate = 3e-3;
  tc.batch_size = 4;
  dp::train::EnergyTrainer trainer(model, tc);

  std::printf("\n%6s %20s %20s\n", "epoch", "train RMSE [eV/atom]", "held-out RMSE");
  std::printf("%6s %20.6f %20.6f\n", "init", trainer.evaluate(data), trainer.evaluate(held));
  for (int e = 1; e <= epochs; ++e) {
    const double train_rmse = trainer.epoch(data);
    if (e % 5 == 0 || e == epochs)
      std::printf("%6d %20.6f %20.6f\n", e, train_rmse, trainer.evaluate(held));
  }

  // 3. Compress the *trained* model (tabulation now approximates a network
  //    whose shape was set by data, not by random init).
  dp::tab::TabulationSpec spec{0.0, dp::tab::TabulatedDP::s_max(cfg, 0.9), 0.01};
  dp::tab::TabulatedDP compressed(model, spec);
  std::printf("\ncompressed trained model: %.1f KB of tables\n",
              compressed.total_bytes() / 1024.0);

  // 4. Run MD with the optimized path on the trained, compressed model.
  dp::fused::FusedDP ff(compressed);
  auto sys = dp::md::make_fcc(3, 3, 3, 3.7, 63.546, 0.0, 5);
  dp::md::SimulationConfig sc;
  sc.dt = 0.001;
  sc.steps = 30;
  sc.temperature = 200.0;
  sc.skin = 1.0;
  sc.thermo_every = 10;
  dp::md::Simulation md(sys, ff, sc);
  std::printf("\nMD with the trained+compressed model (%zu atoms):\n",
              md.configuration().atoms.size());
  md.on_thermo = [](int step, const dp::md::ThermoSample& s) {
    std::printf("%6d  E_tot = %12.6f eV   T = %7.2f K\n", step, s.total(), s.temperature);
  };
  md.run();
  return 0;
}
