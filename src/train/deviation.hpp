// Model deviation — the committee-disagreement metric of DP-GEN (the
// paper's copper model was generated with it, Ref [40]): an ensemble of
// models trained from different seeds predicts forces; the maximum standard
// deviation over atoms flags configurations that need new first-principles
// labels.
#pragma once

#include <memory>
#include <vector>

#include "md/force_field.hpp"

namespace dp::train {

struct DeviationResult {
  double max_force_dev = 0.0;   ///< max over atoms of the force std-dev [eV/A]
  double mean_force_dev = 0.0;  ///< mean over atoms
  double energy_dev = 0.0;      ///< std-dev of per-atom energy across models
};

/// Evaluates every ensemble member on the same configuration and reduces
/// the per-atom force spread. Members must share the cutoff.
class ModelDeviation {
 public:
  explicit ModelDeviation(std::vector<md::ForceField*> ensemble);

  DeviationResult evaluate(const md::Box& box, const md::Atoms& atoms,
                           const md::NeighborList& nlist, bool periodic = true) const;

  /// DP-GEN-style selection: candidate if lo <= max_force_dev < hi.
  static bool is_candidate(const DeviationResult& r, double lo, double hi) {
    return r.max_force_dev >= lo && r.max_force_dev < hi;
  }

 private:
  std::vector<md::ForceField*> ensemble_;
};

}  // namespace dp::train
