// Data-parallel training over minimpi: frames are sharded across ranks,
// per-shard gradients are allreduce-summed, and every rank applies the same
// optimizer step to its model replica — the standard synchronous
// data-parallel scheme of distributed DNN training (the other half of the
// paper's "HPC + AI" theme).
#pragma once

#include <vector>

#include "parallel/minimpi.hpp"
#include "train/trainer.hpp"

namespace dp::train {

struct DistributedTrainResult {
  std::vector<double> epoch_rmse;  ///< global per-atom energy RMSE per epoch
  par::CommStats comm;
};

/// Trains `model` in place for `epochs` full-batch passes on `nranks`
/// in-process ranks. Deterministic shard split (round-robin by index);
/// replicas stay synchronized because every rank sees the identical summed
/// gradient and runs the identical optimizer state.
DistributedTrainResult train_distributed(int nranks, core::DPModel& model,
                                         const Dataset& data, TrainConfig cfg, int epochs);

}  // namespace dp::train
