// Data-parallel training over minimpi: frames are sharded across ranks,
// per-shard gradients are allreduce-summed, and every rank applies the same
// optimizer step to its model replica — the standard synchronous
// data-parallel scheme of distributed DNN training (the other half of the
// paper's "HPC + AI" theme).
#pragma once

#include <vector>

#include "parallel/minimpi.hpp"
#include "train/trainer.hpp"

namespace dp::train {

struct DistributedTrainResult {
  std::vector<double> epoch_rmse;  ///< global per-atom energy RMSE per epoch
  par::CommStats comm;
};

/// Trains `model` in place for `epochs` full-batch passes on `nranks`
/// in-process ranks. Deterministic shard split (round-robin by index);
/// replicas stay synchronized because every rank sees the identical summed
/// gradient and runs the identical optimizer state.
DistributedTrainResult train_distributed(int nranks, core::DPModel& model,
                                         const Dataset& data, TrainConfig cfg, int epochs);

/// SPMD entry point over an already-connected communicator — the same path
/// serves in-process rank threads and one-rank-per-process worlds
/// (ProcessGroup::comm() over the shm/tcp transports). Every rank must pass
/// identical model/data/config; on return `model` holds the synchronized
/// trained replica on every rank and `epoch_rmse` is filled everywhere
/// (the loss is allreduced, so all ranks know it).
DistributedTrainResult train_distributed_rank(par::Communicator& comm,
                                              core::DPModel& model, const Dataset& data,
                                              TrainConfig cfg, int epochs);

}  // namespace dp::train
