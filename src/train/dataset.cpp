#include "train/dataset.hpp"

#include <cmath>

#include "common/error.hpp"
#include "md/eam.hpp"
#include "md/lj.hpp"

namespace dp::train {

Dataset Dataset::lj_copper(int n_frames, int cells, double jitter, std::uint64_t seed) {
  DP_CHECK(n_frames > 0);
  Dataset out;
  out.frames.reserve(static_cast<std::size_t>(n_frames));
  md::LennardJones lj(0.4, 2.34, 4.5);
  for (int f = 0; f < n_frames; ++f) {
    Frame frame;
    frame.sys = md::make_fcc(cells, cells, cells, 3.7, 63.546, jitter,
                             seed + static_cast<std::uint64_t>(f) * 7919);
    md::NeighborList nl(lj.cutoff(), 0.5);
    nl.build(frame.sys.box, frame.sys.atoms.pos);
    frame.energy = lj.compute(frame.sys.box, frame.sys.atoms, nl).energy;
    frame.forces = frame.sys.atoms.force;
    out.frames.push_back(std::move(frame));
  }
  return out;
}

Dataset Dataset::eam_copper(int n_frames, int cells, double jitter, std::uint64_t seed) {
  DP_CHECK(n_frames > 0);
  Dataset out;
  out.frames.reserve(static_cast<std::size_t>(n_frames));
  md::SuttonChen::Params p;
  p.rcut = 6.0;  // shortened so 3-cell boxes satisfy the min-image bound
  p.rcut_smth = 5.0;
  md::SuttonChen eam(p);
  for (int f = 0; f < n_frames; ++f) {
    Frame frame;
    frame.sys = md::make_fcc(cells, cells, cells, 3.61, 63.546, jitter,
                             seed + static_cast<std::uint64_t>(f) * 7919);
    md::NeighborList nl(eam.cutoff(), 0.5);
    nl.build(frame.sys.box, frame.sys.atoms.pos);
    frame.energy = eam.compute(frame.sys.box, frame.sys.atoms, nl).energy;
    frame.forces = frame.sys.atoms.force;
    out.frames.push_back(std::move(frame));
  }
  return out;
}

namespace {
double angular_three_body_energy(const md::Box& box, const md::Atoms& atoms, double rc) {
  md::NeighborList nl(rc, 0.3);
  nl.build(box, atoms.pos);
  double e = 0.0;
  std::vector<Vec3> ds;
  std::vector<double> rs;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    ds.clear();
    rs.clear();
    for (int j : nl.neighbors(i)) {
      Vec3 d = box.min_image(atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i]);
      const double r = norm(d);
      if (r < rc) {
        ds.push_back(d);
        rs.push_back(r);
      }
    }
    for (std::size_t a = 0; a < ds.size(); ++a)
      for (std::size_t b = a + 1; b < ds.size(); ++b) {
        const double h = std::pow(1.0 - rs[a] / rc, 2) * std::pow(1.0 - rs[b] / rc, 2);
        const double ct = dot(ds[a], ds[b]) / (rs[a] * rs[b]);
        // Tetrahedral-flavored minimum at cos theta = -1/3.
        e += 0.5 * h * (ct + 1.0 / 3.0) * (ct + 1.0 / 3.0);
      }
  }
  return e;
}
}  // namespace

Dataset Dataset::angular_copper(int n_frames, int cells, double jitter, std::uint64_t seed,
                                double rcut) {
  DP_CHECK(n_frames > 0);
  Dataset out;
  out.frames.reserve(static_cast<std::size_t>(n_frames));
  for (int f = 0; f < n_frames; ++f) {
    Frame frame;
    frame.sys = md::make_fcc(cells, cells, cells, 3.7, 63.546, jitter,
                             seed + static_cast<std::uint64_t>(f) * 7919);
    frame.energy = angular_three_body_energy(frame.sys.box, frame.sys.atoms, rcut);
    out.frames.push_back(std::move(frame));
  }
  return out;
}

Dataset Dataset::split_holdout(int every_k) {
  DP_CHECK(every_k >= 2);
  Dataset held;
  std::vector<Frame> kept;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i % static_cast<std::size_t>(every_k) == 0)
      held.frames.push_back(std::move(frames[i]));
    else
      kept.push_back(std::move(frames[i]));
  }
  frames = std::move(kept);
  return held;
}

void Dataset::energy_stats(double& mean_per_atom, double& stddev_per_atom) const {
  DP_CHECK(!frames.empty());
  double sum = 0, sum2 = 0;
  for (const auto& f : frames) {
    const double e = f.energy / static_cast<double>(f.sys.atoms.size());
    sum += e;
    sum2 += e * e;
  }
  const double n = static_cast<double>(frames.size());
  mean_per_atom = sum / n;
  stddev_per_atom = std::sqrt(std::max(0.0, sum2 / n - mean_per_atom * mean_per_atom));
}

}  // namespace dp::train
