#include "train/gradients.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

#include "dp/descriptor.hpp"
#include "nn/gemm.hpp"

namespace dp::train {

using core::EnvMat;
using core::ModelConfig;

void ModelGrads::init(const core::DPModel& model) {
  const int ntypes = model.config().ntypes;
  embed.resize(static_cast<std::size_t>(ntypes));
  fit.resize(static_cast<std::size_t>(ntypes));
  for (int t = 0; t < ntypes; ++t) {
    const auto& enet = model.embedding(t);
    embed[static_cast<std::size_t>(t)].resize(enet.layers().size());
    for (std::size_t l = 0; l < enet.layers().size(); ++l)
      embed[static_cast<std::size_t>(t)][l].init(enet.layers()[l]);
    const auto& fnet = model.fitting(t);
    fit[static_cast<std::size_t>(t)].resize(fnet.layers().size());
    for (std::size_t l = 0; l < fnet.layers().size(); ++l)
      fit[static_cast<std::size_t>(t)][l].init(fnet.layers()[l]);
  }
}

void ModelGrads::zero() {
  for (auto& net : embed)
    for (auto& g : net) g.zero();
  for (auto& net : fit)
    for (auto& g : net) g.zero();
}

namespace {
void add_grads(std::vector<std::vector<nn::DenseLayer::Grads>>& dst,
               const std::vector<std::vector<nn::DenseLayer::Grads>>& src,
               double factor = 1.0) {
  for (std::size_t t = 0; t < dst.size(); ++t)
    for (std::size_t l = 0; l < dst[t].size(); ++l) {
      auto& d = dst[t][l];
      const auto& s = src[t][l];
      for (std::size_t k = 0; k < d.w.size(); ++k) d.w.data()[k] += factor * s.w.data()[k];
      for (std::size_t k = 0; k < d.b.size(); ++k) d.b[k] += factor * s.b[k];
    }
}
double sq_norm(const std::vector<std::vector<nn::DenseLayer::Grads>>& nets) {
  double s = 0;
  for (const auto& net : nets)
    for (const auto& g : net) {
      for (std::size_t k = 0; k < g.w.size(); ++k) s += g.w.data()[k] * g.w.data()[k];
      for (double v : g.b) s += v * v;
    }
  return s;
}
}  // namespace

void ModelGrads::add(const ModelGrads& other) {
  add_grads(embed, other.embed);
  add_grads(fit, other.fit);
}

void ModelGrads::add_scaled(const ModelGrads& other, double factor) {
  add_grads(embed, other.embed, factor);
  add_grads(fit, other.fit, factor);
}

double ModelGrads::squared_norm() const { return sq_norm(embed) + sq_norm(fit); }

std::vector<double> ModelGrads::to_vector() const {
  std::vector<double> flat;
  auto push = [&](const std::vector<std::vector<nn::DenseLayer::Grads>>& nets) {
    for (const auto& net : nets)
      for (const auto& g : net) {
        flat.insert(flat.end(), g.w.data(), g.w.data() + g.w.size());
        flat.insert(flat.end(), g.b.begin(), g.b.end());
      }
  };
  push(embed);
  push(fit);
  return flat;
}

void ModelGrads::from_vector(const std::vector<double>& flat) {
  std::size_t pos = 0;
  auto pull = [&](std::vector<std::vector<nn::DenseLayer::Grads>>& nets) {
    for (auto& net : nets)
      for (auto& g : net) {
        DP_CHECK(pos + g.w.size() + g.b.size() <= flat.size());
        std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                  flat.begin() + static_cast<std::ptrdiff_t>(pos + g.w.size()), g.w.data());
        pos += g.w.size();
        std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                  flat.begin() + static_cast<std::ptrdiff_t>(pos + g.b.size()), g.b.begin());
        pos += g.b.size();
      }
  };
  pull(embed);
  pull(fit);
  DP_CHECK_MSG(pos == flat.size(), "flat gradient size mismatch");
}

double energy_with_gradients(const core::DPModel& model, const md::Box& box,
                             const md::Atoms& atoms, const md::NeighborList& nlist,
                             double seed, ModelGrads* grads) {
  const ModelConfig& cfg = model.config();
  EnvMat env;
  // The training path addresses slots densely (fixed sel[t]-row batches per
  // type, padded rows included) and is never on the MD hot loop, so it keeps
  // the dense Baseline layout rather than the compact CSR one.
  build_env_mat(cfg, box, atoms, nlist, env, core::EnvMatKernel::Baseline);

  const std::size_t n = env.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const double scale = 1.0 / static_cast<double>(cfg.nm());

  // Embedding forward with retained workspaces (needed for weight grads).
  std::vector<nn::Matrix> g_by_type(static_cast<std::size_t>(cfg.ntypes));
  std::vector<nn::EmbeddingNet::BatchWorkspace> ws_by_type(
      static_cast<std::size_t>(cfg.ntypes));
  AlignedVector<double> s_buf;
  for (int t = 0; t < cfg.ntypes; ++t) {
    const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
    const int off = cfg.type_offset(t);
    const std::size_t rows = n * static_cast<std::size_t>(sel_t);
    s_buf.resize(rows);
    for (std::size_t i = 0; i < n; ++i)
      for (int k = 0; k < sel_t; ++k)
        s_buf[i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k)] =
            env.rmat_row(i, off + k)[0];
    model.embedding(t).forward_batch_ws(s_buf.data(), rows, g_by_type[t], ws_by_type[t]);
  }

  std::vector<nn::Matrix> g_g_by_type(static_cast<std::size_t>(cfg.ntypes));
  if (grads != nullptr)
    for (int t = 0; t < cfg.ntypes; ++t) {
      g_g_by_type[t].resize(n * static_cast<std::size_t>(cfg.sel[static_cast<std::size_t>(t)]),
                            m);
      g_g_by_type[t].fill(0.0);
    }

  const bool se_r = cfg.descriptor == core::DescriptorKind::SeR;
  double energy = 0.0;
  AlignedVector<double> a_mat(4 * m), g_a(4 * m);
  core::AtomKernelScratch scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const int ct = atoms.type[i];
    if (se_r) {
      // D = column mean of G over ALL slots (padded rows carry g(0), which
      // keeps the descriptor smooth — see fused/se_r_model.hpp).
      scratch.d_flat.assign(m, 0.0);
      for (int t = 0; t < cfg.ntypes; ++t) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
        for (int k = 0; k < sel_t; ++k) {
          const double* row =
              g_by_type[t].row(i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k));
          for (std::size_t b = 0; b < m; ++b) scratch.d_flat[b] += row[b];
        }
      }
      for (double& v : scratch.d_flat) v *= scale;
      energy += model.fitting(ct).forward(scratch.d_flat.data(), scratch.fit_ws);
      if (grads == nullptr) continue;
      scratch.g_d.resize(m);
      model.fitting(ct).backward(scratch.fit_ws, scratch.g_d.data(),
                                 &grads->fit[static_cast<std::size_t>(ct)], seed);
      // dLoss/dG is g_D / N_m for every slot of this atom.
      for (int t = 0; t < cfg.ntypes; ++t) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
        for (int k = 0; k < sel_t; ++k) {
          double* row =
              g_g_by_type[t].row(i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k));
          for (std::size_t b = 0; b < m; ++b) row[b] = scratch.g_d[b] * scale;
        }
      }
      continue;
    }

    std::memset(a_mat.data(), 0, 4 * m * sizeof(double));
    for (int t = 0; t < cfg.ntypes; ++t) {
      const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
      const int off = cfg.type_offset(t);
      nn::gemm_tn_acc(env.rmat_row(i, off), g_by_type[t].row(i * static_cast<std::size_t>(sel_t)),
                      a_mat.data(), 4, static_cast<std::size_t>(sel_t), m);
    }
    for (double& v : a_mat) v *= scale;

    scratch.d_flat.resize(m_sub * m);
    core::descriptor_forward(a_mat.data(), m, m_sub, scratch.d_flat.data());
    energy += model.fitting(ct).forward(scratch.d_flat.data(), scratch.fit_ws);

    if (grads == nullptr) continue;

    // dLoss/dD (with the loss seed folded in) and fitting-net weight grads.
    scratch.g_d.resize(m_sub * m);
    model.fitting(ct).backward(scratch.fit_ws, scratch.g_d.data(),
                               &grads->fit[static_cast<std::size_t>(ct)], seed);
    core::descriptor_backward(a_mat.data(), scratch.g_d.data(), m, m_sub, g_a.data());
    for (double& v : g_a) v *= scale;

    // dLoss/dG rows for this atom's slots.
    for (int t = 0; t < cfg.ntypes; ++t) {
      const int sel_t = cfg.sel[static_cast<std::size_t>(t)];
      const int off = cfg.type_offset(t);
      nn::gemm(env.rmat_row(i, off), g_a.data(),
               g_g_by_type[t].row(i * static_cast<std::size_t>(sel_t)),
               static_cast<std::size_t>(sel_t), 4, m);
    }
  }

  if (grads != nullptr) {
    for (int t = 0; t < cfg.ntypes; ++t)
      model.embedding(t).backward_batch(ws_by_type[t], g_g_by_type[t], nullptr,
                                        &grads->embed[static_cast<std::size_t>(t)]);
  }
  return energy;
}

}  // namespace dp::train
