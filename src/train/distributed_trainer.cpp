#include "train/distributed_trainer.hpp"

#include <cmath>

#include "common/thread_annotations.hpp"
#include "parallel/minimpi.hpp"

namespace dp::train {

DistributedTrainResult train_distributed(int nranks, core::DPModel& model,
                                         const Dataset& data, TrainConfig cfg, int epochs) {
  DP_CHECK(nranks >= 1 && epochs >= 0 && !data.frames.empty());
  DistributedTrainResult result;
  result.epoch_rmse.resize(static_cast<std::size_t>(epochs));

  // Guards the write-back of the trained replica into the caller's model.
  // Only rank 0 takes it today; the lock keeps the discipline explicit if
  // that ever widens. (A local cannot carry DP_GUARDED_BY.)
  Mutex out_mu;
  result.comm = par::run_parallel(nranks, [&](par::Communicator& comm) {
    // Every rank trains a replica; replicas march in lockstep.
    core::DPModel replica = model;
    EnergyTrainer trainer(replica, cfg);

    ModelGrads grads, scratch;
    grads.init(replica);
    scratch.init(replica);
    const double n_frames = static_cast<double>(data.size());

    for (int epoch = 0; epoch < epochs; ++epoch) {
      grads.zero();
      double se_local = 0.0;
      for (std::size_t idx = static_cast<std::size_t>(comm.rank()); idx < data.size();
           idx += static_cast<std::size_t>(comm.size())) {
        se_local += accumulate_frame_gradients(replica, data.frames[idx], cfg,
                                               1.0 / n_frames, grads, scratch);
      }
      // Global gradient + loss: one fused allreduce over the flat view.
      std::vector<double> flat = grads.to_vector();
      flat.push_back(se_local);
      const auto total = comm.allreduce_sum(flat);
      const double se_global = total.back();
      std::vector<double> grad_global(total.begin(), total.end() - 1);
      grads.from_vector(grad_global);
      trainer.apply(grads);
      if (comm.rank() == 0)
        result.epoch_rmse[static_cast<std::size_t>(epoch)] = std::sqrt(se_global / n_frames);
    }

    if (comm.rank() == 0) {
      MutexLock lock(out_mu);
      model = replica;
    }
  });
  return result;
}

}  // namespace dp::train
