#include "train/distributed_trainer.hpp"

#include <cmath>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "parallel/minimpi.hpp"

namespace dp::train {

DistributedTrainResult train_distributed_rank(par::Communicator& comm,
                                              core::DPModel& model, const Dataset& data,
                                              TrainConfig cfg, int epochs) {
  DP_CHECK(epochs >= 0 && !data.frames.empty());
  DistributedTrainResult result;
  result.epoch_rmse.resize(static_cast<std::size_t>(epochs));

  // Every rank trains a replica; replicas march in lockstep.
  core::DPModel replica = model;
  EnergyTrainer trainer(replica, cfg);

  ModelGrads grads, scratch;
  grads.init(replica);
  scratch.init(replica);
  const double n_frames = static_cast<double>(data.size());

  for (int epoch = 0; epoch < epochs; ++epoch) {
    grads.zero();
    double se_local = 0.0;
    for (std::size_t idx = static_cast<std::size_t>(comm.rank()); idx < data.size();
         idx += static_cast<std::size_t>(comm.size())) {
      se_local += accumulate_frame_gradients(replica, data.frames[idx], cfg,
                                             1.0 / n_frames, grads, scratch);
    }
    // Global gradient + loss: one fused allreduce over the flat view.
    std::vector<double> flat = grads.to_vector();
    flat.push_back(se_local);
    const auto total = comm.allreduce_sum(flat);
    const double se_global = total.back();
    std::vector<double> grad_global(total.begin(), total.end() - 1);
    grads.from_vector(grad_global);
    trainer.apply(grads);
    result.epoch_rmse[static_cast<std::size_t>(epoch)] = std::sqrt(se_global / n_frames);
  }

  model = replica;
  result.comm = comm.stats();
  if (comm.rank() == 0) {
    // Transport-layer counters (docs/OBSERVABILITY.md "comm.*"), mirroring
    // the distributed MD driver's export.
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("comm.messages").set(static_cast<double>(result.comm.messages));
    reg.gauge("comm.bytes").set(static_cast<double>(result.comm.bytes));
    reg.gauge("comm.reductions").set(static_cast<double>(result.comm.reductions));
    reg.gauge("comm.wire_bytes").set(static_cast<double>(result.comm.wire_bytes));
  }
  return result;
}

DistributedTrainResult train_distributed(int nranks, core::DPModel& model,
                                         const Dataset& data, TrainConfig cfg, int epochs) {
  DP_CHECK(nranks >= 1);
  DistributedTrainResult result;

  // Guards the write-back of the trained replica into the caller's model.
  // Only rank 0 takes it today; the lock keeps the discipline explicit if
  // that ever widens. (A local cannot carry DP_GUARDED_BY.)
  Mutex out_mu;
  result.comm = par::run_parallel(nranks, [&](par::Communicator& comm) {
    // Private copy per rank thread: the SPMD entry writes the trained
    // replica back into its argument, which must not race across ranks.
    core::DPModel replica = model;
    auto r = train_distributed_rank(comm, replica, data, cfg, epochs);
    if (comm.rank() == 0) {
      MutexLock lock(out_mu);
      model = replica;
      result.epoch_rmse = std::move(r.epoch_rmse);
    }
  });
  return result;
}

}  // namespace dp::train
