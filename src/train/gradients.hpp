// Parameter gradients of the total energy — reverse mode through the whole
// DP pipeline (fitting net -> descriptor adjoint -> embedding nets), the
// training counterpart of the inference backward pass.
#pragma once

#include <vector>

#include "dp/dp_model.hpp"
#include "dp/env_mat.hpp"
#include "md/neighbor.hpp"
#include "nn/dense_layer.hpp"

namespace dp::train {

/// Gradient buffers mirroring a DPModel's parameters.
struct ModelGrads {
  std::vector<std::vector<nn::DenseLayer::Grads>> embed;  // [type][layer]
  std::vector<std::vector<nn::DenseLayer::Grads>> fit;    // [type][layer]

  void init(const core::DPModel& model);
  void zero();
  /// grads += other (mini-batch accumulation across threads/frames).
  void add(const ModelGrads& other);
  /// grads += factor * other.
  void add_scaled(const ModelGrads& other, double factor);
  double squared_norm() const;

  /// Flat view for collectives (data-parallel training): values in a fixed
  /// deterministic order.
  std::vector<double> to_vector() const;
  void from_vector(const std::vector<double>& flat);
};

/// Evaluates E_pred of one configuration and, when grads != nullptr,
/// accumulates seed * dE/d(parameters). `seed` is dLoss/dE supplied by the
/// loss function (two-pass usage: first call with grads = nullptr to get E,
/// then with the loss derivative).
double energy_with_gradients(const core::DPModel& model, const md::Box& box,
                             const md::Atoms& atoms, const md::NeighborList& nlist,
                             double seed = 1.0, ModelGrads* grads = nullptr);

}  // namespace dp::train
