// Training: Adam on the DeePMD-kit loss
//   L(frame) = pref_e ((E_pred - E_ref) / N)^2
//            + pref_f / (3N) sum_i |F_i_pred - F_i_ref|^2.
//
// The energy term back-propagates through the full pipeline directly. The
// force term needs d(dE/dr)/d(theta) — a second-order quantity — which is
// obtained with the directional-derivative identity
//   dL_F/dtheta = -d/dalpha [ dE/dtheta ](r + alpha * lambda) |_0,
//   lambda_i = (2 pref_f / 3N) (F_i_pred - F_i_ref),
// evaluated by central differences of the *parameter gradient* along the
// fixed field lambda (two extra gradient passes per frame; exact up to
// O(eps^2) in the probe displacement).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "train/dataset.hpp"
#include "train/gradients.hpp"

namespace dp::train {

struct TrainConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  int batch_size = 4;
  double skin = 0.5;  ///< neighbor-list skin for frame evaluation
  std::uint64_t seed = 7;
  double pref_e = 1.0;        ///< energy-loss prefactor
  double pref_f = 0.0;        ///< force-loss prefactor (0 = energy-only)
  double force_probe = 1e-4;  ///< probe displacement [A] for the force term
};

/// Accumulates one frame's loss gradient (energy term and, when
/// cfg.pref_f > 0 and the frame has force labels, the force term) into
/// `grads`, scaled by `weight` (1/batch_size or 1/n_frames). `scratch` is a
/// reusable pre-init'ed gradient buffer for the force probes. Returns the
/// squared per-atom energy error of the frame. Shared by the serial and the
/// data-parallel trainers.
double accumulate_frame_gradients(core::DPModel& model, const Frame& frame,
                                  const TrainConfig& cfg, double weight, ModelGrads& grads,
                                  ModelGrads& scratch);

class EnergyTrainer {
 public:
  EnergyTrainer(core::DPModel& model, TrainConfig cfg = {});

  /// One pass over the dataset in shuffled mini-batches; returns the epoch's
  /// per-atom energy RMSE (computed from the pre-update predictions).
  double epoch(const Dataset& data);

  /// Per-atom energy RMSE on a dataset, no updates.
  double evaluate(const Dataset& data) const;

  /// Per-component force RMSE [eV/A] on a dataset (needs force labels).
  double evaluate_forces(const Dataset& data) const;

  long steps_taken() const { return step_; }
  long epochs_done() const { return epochs_done_; }

  /// One optimizer step from externally-accumulated gradients (used by the
  /// data-parallel distributed trainer).
  void apply(const ModelGrads& grads) { apply_update(grads); }

 private:
  void apply_update(const ModelGrads& grads);

  core::DPModel& model_;
  TrainConfig cfg_;
  ModelGrads m1_, m2_;  // Adam moments
  long step_ = 0;
  long epochs_done_ = 0;
  Rng rng_;
};

}  // namespace dp::train
