#include "train/deviation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dp::train {

ModelDeviation::ModelDeviation(std::vector<md::ForceField*> ensemble)
    : ensemble_(std::move(ensemble)) {
  DP_CHECK_MSG(ensemble_.size() >= 2, "model deviation needs at least two models");
  for (auto* m : ensemble_) {
    DP_CHECK(m != nullptr);
    DP_CHECK_MSG(m->cutoff() == ensemble_.front()->cutoff(),
                 "ensemble members must share one cutoff");
  }
}

DeviationResult ModelDeviation::evaluate(const md::Box& box, const md::Atoms& atoms,
                                         const md::NeighborList& nlist,
                                         bool periodic) const {
  const std::size_t n = atoms.size();
  const std::size_t k = ensemble_.size();

  std::vector<std::vector<Vec3>> forces(k);
  std::vector<double> energies(k);
  for (std::size_t m = 0; m < k; ++m) {
    md::Atoms work = atoms;  // each member evaluates the same frozen frame
    energies[m] = ensemble_[m]->compute(box, work, nlist, periodic).energy /
                  static_cast<double>(n);
    forces[m] = work.force;
  }

  DeviationResult out;
  double mean_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 mean{};
    for (std::size_t m = 0; m < k; ++m) mean += forces[m][i];
    mean *= 1.0 / static_cast<double>(k);
    double var = 0.0;
    for (std::size_t m = 0; m < k; ++m) var += norm2(forces[m][i] - mean);
    const double dev = std::sqrt(var / static_cast<double>(k));
    out.max_force_dev = std::max(out.max_force_dev, dev);
    mean_acc += dev;
  }
  out.mean_force_dev = n > 0 ? mean_acc / static_cast<double>(n) : 0.0;

  double e_mean = 0.0;
  for (double e : energies) e_mean += e;
  e_mean /= static_cast<double>(k);
  double e_var = 0.0;
  for (double e : energies) e_var += (e - e_mean) * (e - e_mean);
  out.energy_dev = std::sqrt(e_var / static_cast<double>(k));
  return out;
}

}  // namespace dp::train
