// Training data for the energy model.
//
// DeePMD-kit trains on DFT-labelled frames; this library has no DFT, so the
// reference labels come from the in-tree Lennard-Jones potential (see
// DESIGN.md substitutions: the training machinery — not the physics of the
// labels — is what is being reproduced). Frames are thermally disordered
// lattice snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "md/lattice.hpp"

namespace dp::train {

struct Frame {
  md::Configuration sys;
  double energy = 0.0;            ///< reference total energy [eV]
  std::vector<Vec3> forces;       ///< reference forces [eV/A]
};

struct Dataset {
  std::vector<Frame> frames;

  std::size_t size() const { return frames.size(); }

  /// Disordered FCC frames labelled with Lennard-Jones energies.
  /// `jitter` controls the configurational diversity.
  static Dataset lj_copper(int n_frames, int cells = 3, double jitter = 0.15,
                           std::uint64_t seed = 1234);

  /// Disordered FCC frames labelled with the many-body Sutton-Chen EAM —
  /// the more realistic copper reference (DP models exist to capture
  /// exactly this kind of many-body PES).
  static Dataset eam_copper(int n_frames, int cells = 3, double jitter = 0.15,
                            std::uint64_t seed = 1234);

  /// Disordered FCC frames labelled with a purely ANGULAR three-body
  /// energy: sum over i, j<k of h(r_ij) h(r_ik) (cos theta_jik - c0)^2.
  /// Energy labels only (no forces). In principle radial descriptors (BP
  /// G2, se_r) cannot represent this surface while se_a can; in practice,
  /// total-energy-only supervision at unit-test scale does not resolve the
  /// difference (all models regress toward the ensemble mean), so this
  /// generator is provided as a data utility for larger studies, not as a
  /// shipped discriminating experiment.
  static Dataset angular_copper(int n_frames, int cells = 2, double jitter = 0.25,
                                std::uint64_t seed = 1234, double rcut = 4.0);

  /// Deterministic split: every k-th frame goes to the returned held-out
  /// set and is removed from this one.
  Dataset split_holdout(int every_k);

  /// Mean and variance of per-atom reference energies (for normalization
  /// and for baseline "predict the mean" comparisons).
  void energy_stats(double& mean_per_atom, double& stddev_per_atom) const;
};

}  // namespace dp::train
