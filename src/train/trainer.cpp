#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.hpp"
#include "dp/baseline_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::train {

EnergyTrainer::EnergyTrainer(core::DPModel& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), rng_(cfg.seed) {
  m1_.init(model_);
  m2_.init(model_);
}

namespace {
/// Walks (parameters, gradient, moment1, moment2) in lockstep and applies
/// one Adam step with bias correction.
void adam_layer(nn::DenseLayer& layer, const nn::DenseLayer::Grads& g,
                nn::DenseLayer::Grads& m1, nn::DenseLayer::Grads& m2,
                const TrainConfig& c, double bias1, double bias2) {
  auto update = [&](double* p, const double* gr, double* mo1, double* mo2, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      mo1[k] = c.beta1 * mo1[k] + (1.0 - c.beta1) * gr[k];
      mo2[k] = c.beta2 * mo2[k] + (1.0 - c.beta2) * gr[k] * gr[k];
      const double mhat = mo1[k] / bias1;
      const double vhat = mo2[k] / bias2;
      p[k] -= c.learning_rate * mhat / (std::sqrt(vhat) + c.epsilon);
    }
  };
  update(layer.weights().data(), g.w.data(), m1.w.data(), m2.w.data(), g.w.size());
  update(layer.bias().data(), g.b.data(), m1.b.data(), m2.b.data(), g.b.size());
}
}  // namespace

void EnergyTrainer::apply_update(const ModelGrads& grads) {
  ++step_;
  const double bias1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(step_));
  const int ntypes = model_.config().ntypes;
  for (int t = 0; t < ntypes; ++t) {
    auto& enet = model_.embedding(t);
    for (std::size_t l = 0; l < enet.layers().size(); ++l)
      adam_layer(enet.layers()[l], grads.embed[static_cast<std::size_t>(t)][l],
                 m1_.embed[static_cast<std::size_t>(t)][l],
                 m2_.embed[static_cast<std::size_t>(t)][l], cfg_, bias1, bias2);
    auto& fnet = model_.fitting(t);
    for (std::size_t l = 0; l < fnet.layers().size(); ++l)
      adam_layer(fnet.layers()[l], grads.fit[static_cast<std::size_t>(t)][l],
                 m1_.fit[static_cast<std::size_t>(t)][l],
                 m2_.fit[static_cast<std::size_t>(t)][l], cfg_, bias1, bias2);
  }
}

double accumulate_frame_gradients(core::DPModel& model, const Frame& frame,
                                  const TrainConfig& cfg, double weight, ModelGrads& grads,
                                  ModelGrads& scratch) {
  const double n_atoms = static_cast<double>(frame.sys.atoms.size());
  md::NeighborList nl(model.config().rcut, cfg.skin);
  nl.build(frame.sys.box, frame.sys.atoms.pos);

  // ---- Energy term: prediction, then gradient with the seed folded in.
  const double e_pred = energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl);
  const double delta = (e_pred - frame.energy) / n_atoms;
  const double seed = cfg.pref_e * 2.0 * delta / n_atoms * weight;
  if (cfg.pref_e > 0.0)
    energy_with_gradients(model, frame.sys.box, frame.sys.atoms, nl, seed, &grads);

  // ---- Force term: directional derivative of the parameter gradient
  // along lambda = coefficient * (F_pred - F_ref).
  if (cfg.pref_f > 0.0 && !frame.forces.empty()) {
    core::BaselineDP ff(model);
    md::Atoms atoms = frame.sys.atoms;
    ff.compute(frame.sys.box, atoms, nl);
    // lambda_i = (2 pref_f / 3N) (F_pred - F_ref); since F = -dE/dr,
    // dL_F/dtheta = -d/dalpha g_theta(r + alpha lambda)|_0.
    std::vector<Vec3> lambda(atoms.size());
    const double coeff = 2.0 * cfg.pref_f / (3.0 * n_atoms) * weight;
    double lmax = 0.0;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      lambda[i] = (atoms.force[i] - frame.forces[i]) * coeff;
      lmax = std::max(lmax, norm(lambda[i]));
    }
    if (lmax > 0.0) {
      const double eps = cfg.force_probe / lmax;
      md::Atoms shifted = frame.sys.atoms;
      auto probe = [&](double sign, double w) {
        for (std::size_t i = 0; i < shifted.pos.size(); ++i)
          shifted.pos[i] = frame.sys.atoms.pos[i] + lambda[i] * (sign * eps);
        scratch.zero();
        energy_with_gradients(model, frame.sys.box, shifted, nl, 1.0, &scratch);
        grads.add_scaled(scratch, w);
      };
      // dL_F/dtheta = -[g(+eps) - g(-eps)] / (2 eps)  (FD-verified sign).
      probe(+1.0, -1.0 / (2.0 * eps));
      probe(-1.0, +1.0 / (2.0 * eps));
    }
  }
  return delta * delta;
}

double EnergyTrainer::epoch(const Dataset& data) {
  DP_CHECK(!data.frames.empty());
  obs::TraceSpan span("train.epoch", "train");
  WallTimer epoch_timer;
  std::vector<std::size_t> order(data.frames.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.uniform_index(i)]);

  ModelGrads batch_grads, probe_grads;
  batch_grads.init(model_);
  probe_grads.init(model_);

  double se = 0.0;
  std::size_t in_batch = 0;
  batch_grads.zero();
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    se += accumulate_frame_gradients(model_, data.frames[order[idx]], cfg_,
                                     1.0 / static_cast<double>(cfg_.batch_size),
                                     batch_grads, probe_grads);
    if (++in_batch == static_cast<std::size_t>(cfg_.batch_size) ||
        idx + 1 == order.size()) {
      apply_update(batch_grads);
      batch_grads.zero();
      in_batch = 0;
    }
  }
  const double rmse = std::sqrt(se / static_cast<double>(data.frames.size()));
  ++epochs_done_;
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("train.epochs").inc();
  reg.histogram("train.epoch_seconds").observe(epoch_timer.seconds());
  reg.record_event("train.epoch", {{"epoch", static_cast<double>(epochs_done_)},
                                   {"rmse_energy", rmse},
                                   {"seconds", epoch_timer.seconds()},
                                   {"optimizer_steps", static_cast<double>(step_)}});
  return rmse;
}

double EnergyTrainer::evaluate_forces(const Dataset& data) const {
  DP_CHECK(!data.frames.empty());
  double sf = 0.0;
  std::size_t n_total = 0;
  for (const auto& frame : data.frames) {
    DP_CHECK_MSG(!frame.forces.empty(), "dataset has no force labels");
    md::NeighborList nl(model_.config().rcut, cfg_.skin);
    nl.build(frame.sys.box, frame.sys.atoms.pos);
    core::BaselineDP ff(model_);
    md::Atoms atoms = frame.sys.atoms;
    ff.compute(frame.sys.box, atoms, nl);
    for (std::size_t i = 0; i < atoms.size(); ++i)
      sf += norm2(atoms.force[i] - frame.forces[i]);
    n_total += atoms.size();
  }
  return std::sqrt(sf / (3.0 * static_cast<double>(n_total)));
}

double EnergyTrainer::evaluate(const Dataset& data) const {
  DP_CHECK(!data.frames.empty());
  double se = 0.0;
  for (const auto& frame : data.frames) {
    md::NeighborList nl(model_.config().rcut, cfg_.skin);
    nl.build(frame.sys.box, frame.sys.atoms.pos);
    const double e_pred =
        energy_with_gradients(model_, frame.sys.box, frame.sys.atoms, nl);
    const double delta =
        (e_pred - frame.energy) / static_cast<double>(frame.sys.atoms.size());
    se += delta * delta;
  }
  return std::sqrt(se / static_cast<double>(data.frames.size()));
}

}  // namespace dp::train
