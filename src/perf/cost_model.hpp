// Analytic per-atom cost model of the three inference paths.
//
// All constants trace back to the kernel structure (see the per-term
// comments in the .cpp) and to the paper's own counts: the baseline
// embedding costs N_m (d1 + 10 d1^2) MACs per atom (Sec 2.2), the tabulated
// one 56 N_m d1 (Sec 3.2), and the baseline's memory is dominated by several
// live copies of the N_m x M embedding matrix (Sec 2.2: > 95% of footprint).
#pragma once

#include "common/cost.hpp"
#include "dp/model_config.hpp"

namespace dp::perf {

enum class Path { Baseline, Tabulated, Fused };

/// A physical workload: model + the ambient-conditions neighbor statistics
/// that determine padding (the copper model reserves N_m = 500 but ambient
/// FCC fills ~180 — Sec 3.4.2's redundancy).
struct WorkloadSpec {
  dp::core::ModelConfig config;
  double real_neighbors = 100;  ///< mean filled slots per atom
  double density = 0.1;         ///< atoms per cubic Angstrom
  double dt_fs = 1.0;           ///< MD time step [fs]
  std::string name;

  /// Paper water system: rc = 6 A, N_m = 138, ~91 real neighbors at ambient
  /// density, dt = 0.5 fs.
  static WorkloadSpec water();
  /// Paper copper system: rc = 8 A, N_m = 500 (high-pressure reserve),
  /// ~179 real neighbors in ambient FCC, dt = 1.0 fs.
  static WorkloadSpec copper();
};

/// Per-atom, per-force-evaluation cost decomposition.
struct PathCosts {
  KernelCost env_mat;
  KernelCost embedding;  ///< embedding net / tabulation / fused contraction
  KernelCost descriptor_fit;
  KernelCost prod_force;
  KernelCost total() const { return env_mat + embedding + descriptor_fit + prod_force; }
};

PathCosts per_atom_costs(const WorkloadSpec& w, Path path);

/// Device-resident bytes per atom — what bounds the system size per device
/// (the paper's x26 copper capacity jump on V100, Sec 6.1.2).
double bytes_per_atom(const WorkloadSpec& w, Path path);

/// Fixed per-rank overhead: model weights / graph / buffers (Sec 3.5.4:
/// 48 graph copies exhausted the A64FX without MPI+OpenMP).
double bytes_per_rank_overhead(const WorkloadSpec& w, Path path);

}  // namespace dp::perf
