// Machine descriptions of the paper's two platforms (Sec 5) and a roofline
// execution-time model.
//
// The scaling figures are reproduced by projection: analytic per-atom kernel
// costs (FLOPs + bytes, from the same formulas the kernels self-report)
// are pushed through a roofline for the target device, plus a ghost-exchange
// communication model. This mirrors the paper's own methodology for its
// full-Fugaku projection (Fig 11, dotted line).
#pragma once

#include <string>

#include "common/cost.hpp"

namespace dp::perf {

struct Machine {
  std::string name;
  double peak_flops = 1e12;      ///< double-precision peak [FLOP/s]
  double mem_bandwidth = 1e11;   ///< device memory bandwidth [B/s]
  double flop_efficiency = 0.5;  ///< achievable fraction of peak for this workload
  double mem_efficiency = 0.9;   ///< achievable fraction of bandwidth
  double power_watts = 300;      ///< average device power (paper Sec 6.3)
  double memory_bytes = 16e9;    ///< device memory capacity

  /// NVIDIA V100 (Summit): 7 TFLOPS, 900 GB/s HBM (the paper's optimized
  /// kernel reaches 94% of it), 369 W, 16 GB.
  static Machine v100();
  /// Fujitsu A64FX (Fugaku): 3.38 TFLOPS at boost, 1024 GB/s HBM2, 165 W,
  /// 32 GB. Achievable bandwidth fraction is lower than on V100 for this
  /// gather-heavy workload (calibrated so the single-device TtS ratio
  /// matches the paper's Table 2 within ~15%).
  static Machine a64fx();
  /// AMD MI250X (Frontier): 47.9 TFLOPS FP64 vector, 3.2 TB/s, 560 W,
  /// 128 GB per module. Efficiency fractions copied from the V100
  /// calibration — a forward-looking estimate, not a fit (the paper's
  /// conclusion points at Frontier/exascale as the next target).
  static Machine mi250x();
};

/// A full system: nodes of identical devices plus the interconnect.
struct MachineSystem {
  std::string name;
  Machine device;
  int max_nodes = 1;
  int devices_per_node = 1;   ///< accelerators (or CPUs) per node
  int ranks_per_node = 1;     ///< MPI ranks per node (paper: 6 on Summit, 16 on Fugaku)
  double network_bw = 25e9;   ///< injection bandwidth per node [B/s]
  double network_latency = 1.5e-6;  ///< per message [s]
  /// Fixed per-rank per-step cost (kernel launches, graph execution, MPI
  /// stack) — what flattens strong scaling at small sub-regions. Calibrated
  /// against the paper's 4,560-node strong-scaling points.
  double per_rank_step_overhead = 2.5e-3;

  /// Summit: 4,608 nodes (4,560 usable in the paper), 6 V100 + 2 POWER9,
  /// dual-rail EDR (25 GB/s), 6 ranks/node.
  static MachineSystem summit();
  /// Fugaku: 158,976 nodes of one A64FX, TofuD (~40 GB/s injection),
  /// 16 ranks x 3 threads per node.
  static MachineSystem fugaku();
  /// Frontier: 9,408 nodes x 4 MI250X (8 GPU ranks/node), Slingshot-11
  /// (4 x 25 GB/s injection). Speculative preset for the exascale
  /// projection the paper's conclusion calls for.
  static MachineSystem frontier();
};

/// Roofline execution time: max of the compute and memory roofs.
double roofline_seconds(const KernelCost& cost, const Machine& m);

}  // namespace dp::perf
