#include "perf/machine.hpp"

#include <algorithm>

namespace dp::perf {

Machine Machine::v100() {
  Machine m;
  m.name = "V100";
  m.peak_flops = 7.0e12;
  m.mem_bandwidth = 900e9;
  m.flop_efficiency = 0.22;  // paper: 43.7 PFLOPS = 22.8% of Summit peak
  m.mem_efficiency = 0.94;  // paper Sec 6.1.3: optimized kernel hits 94%
  m.power_watts = 369;      // paper Sec 6.3
  m.memory_bytes = 16e9;
  return m;
}

Machine Machine::a64fx() {
  Machine m;
  m.name = "A64FX";
  m.peak_flops = 3.38e12;
  m.mem_bandwidth = 1024e9;
  // Calibrated so the single-node water TtS and the normalized Table 2
  // ratios match the paper (absolute TtS ratio A64FX/V100 = 1.73).
  m.flop_efficiency = 0.176;
  m.mem_efficiency = 0.50;
  m.power_watts = 165;  // paper Sec 6.3
  m.memory_bytes = 32e9;
  return m;
}

Machine Machine::mi250x() {
  Machine m;
  m.name = "MI250X";
  m.peak_flops = 47.9e12;
  m.mem_bandwidth = 3.2e12;
  m.flop_efficiency = 0.22;  // carried over from the V100 calibration
  m.mem_efficiency = 0.80;
  m.power_watts = 560;
  m.memory_bytes = 128e9;
  return m;
}

MachineSystem MachineSystem::summit() {
  MachineSystem s;
  s.name = "Summit";
  s.device = Machine::v100();
  s.max_nodes = 4560;  // the scale used in the paper
  s.devices_per_node = 6;
  s.ranks_per_node = 6;
  s.network_bw = 25e9;
  s.network_latency = 1.5e-6;
  s.per_rank_step_overhead = 2.5e-3;
  return s;
}

MachineSystem MachineSystem::fugaku() {
  MachineSystem s;
  s.name = "Fugaku";
  s.device = Machine::a64fx();
  s.max_nodes = 157986;
  s.devices_per_node = 1;
  s.ranks_per_node = 16;  // the paper's optimal 16 x 3 hybrid configuration
  s.network_bw = 40e9;
  s.network_latency = 1.0e-6;
  s.per_rank_step_overhead = 8.0e-3;  // TF graph execution per step on CPU ranks
  return s;
}

MachineSystem MachineSystem::frontier() {
  MachineSystem s;
  s.name = "Frontier";
  s.device = Machine::mi250x();
  s.max_nodes = 9408;
  s.devices_per_node = 4;
  s.ranks_per_node = 8;  // one rank per GCD
  s.network_bw = 100e9;
  s.network_latency = 1.5e-6;
  s.per_rank_step_overhead = 2.5e-3;
  return s;
}

double roofline_seconds(const KernelCost& cost, const Machine& m) {
  const double t_flops = cost.flops / (m.peak_flops * m.flop_efficiency);
  const double t_bytes = cost.bytes_total() / (m.mem_bandwidth * m.mem_efficiency);
  return std::max(t_flops, t_bytes);
}

}  // namespace dp::perf
