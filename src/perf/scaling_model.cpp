#include "perf/scaling_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dp::perf {

ScalingModel::ScalingModel(MachineSystem system, WorkloadSpec workload, Path path)
    : system_(std::move(system)), workload_(std::move(workload)), path_(path) {
  per_atom_ = per_atom_costs(workload_, path).total();
  // Each rank owns an equal slice of its node's devices (Summit: one V100
  // per rank; Fugaku: 1/16 of the A64FX per rank).
  rank_device_ = system_.device;
  const double share =
      static_cast<double>(system_.devices_per_node) / system_.ranks_per_node;
  rank_device_.peak_flops *= share;
  rank_device_.mem_bandwidth *= share;
  rank_device_.memory_bytes *= share;
}

double ScalingModel::ghost_atoms_per_rank(double atoms_per_rank) const {
  // Cubic sub-domain of the right volume; ghost shell of one cutoff width.
  const double volume = atoms_per_rank / workload_.density;
  const double w = std::cbrt(volume);
  const double h = workload_.config.rcut;
  const double shell = std::pow(w + 2.0 * h, 3) - volume;
  return shell * workload_.density;
}

ScalePoint ScalingModel::point(std::size_t natoms, int nodes) const {
  DP_CHECK(nodes >= 1);
  ScalePoint p;
  p.nodes = nodes;
  p.atoms = natoms;
  const double ranks = static_cast<double>(nodes) * system_.ranks_per_node;
  p.atoms_per_rank = static_cast<double>(natoms) / ranks;

  // Compute: local atoms + ghost-atom env-mat/prod-force work is already
  // attributed to their owners; roofline on the per-rank device slice.
  p.compute_seconds = roofline_seconds(per_atom_ * p.atoms_per_rank, rank_device_);

  // Communication per step: ghosts are refreshed (positions out, forces
  // back: 6 doubles each) through the node's injection bandwidth shared by
  // its ranks, plus the 6-stage latency.
  const double ghosts = ghost_atoms_per_rank(p.atoms_per_rank);
  const double bytes = ghosts * 6.0 * 8.0;
  const double rank_net_bw = system_.network_bw / system_.ranks_per_node;
  p.comm_seconds = bytes / rank_net_bw + 12.0 * system_.network_latency;

  p.step_seconds = p.compute_seconds + p.comm_seconds + system_.per_rank_step_overhead;
  p.tts_s_step_atom = p.step_seconds / static_cast<double>(natoms);
  p.ns_per_day = workload_.dt_fs * 1e-6 * (86400.0 / p.step_seconds);
  p.pflops = per_atom_.flops * static_cast<double>(natoms) / p.step_seconds / 1e15;
  return p;
}

std::vector<ScalePoint> ScalingModel::strong_curve(std::size_t natoms,
                                                   const std::vector<int>& nodes) const {
  std::vector<ScalePoint> out;
  out.reserve(nodes.size());
  for (int n : nodes) out.push_back(point(natoms, n));
  if (!out.empty()) {
    const double base = out.front().step_seconds * out.front().nodes;
    for (auto& p : out) p.efficiency = base / (p.step_seconds * p.nodes);
  }
  return out;
}

std::vector<ScalePoint> ScalingModel::weak_curve(std::size_t atoms_per_rank,
                                                 const std::vector<int>& nodes) const {
  std::vector<ScalePoint> out;
  out.reserve(nodes.size());
  for (int n : nodes) {
    const std::size_t natoms =
        atoms_per_rank * static_cast<std::size_t>(n) * system_.ranks_per_node;
    out.push_back(point(natoms, n));
  }
  if (!out.empty()) {
    const double base = out.front().step_seconds;
    for (auto& p : out) p.efficiency = base / p.step_seconds;
  }
  return out;
}

std::size_t ScalingModel::max_atoms_per_rank() const {
  const double capacity =
      rank_device_.memory_bytes - bytes_per_rank_overhead(workload_, path_);
  DP_CHECK_MSG(capacity > 0, "per-rank overhead exceeds device memory");
  return static_cast<std::size_t>(capacity / bytes_per_atom(workload_, path_));
}

std::size_t ScalingModel::max_atoms(int nodes) const {
  return max_atoms_per_rank() * static_cast<std::size_t>(nodes) * system_.ranks_per_node;
}

}  // namespace dp::perf
