#include "perf/cost_model.hpp"

#include <cmath>
#include <numbers>

namespace dp::perf {

namespace {
constexpr double kB = 8.0;  // bytes per double

/// Fraction of coefficient-table loads that miss cache: the table is a few
/// MB and neighboring slots hit nearby intervals, so most loads are hot.
constexpr double kTableMissRate = 0.05;

double fit_flops(const dp::core::ModelConfig& c) {
  double f = 0.0;
  std::size_t in = c.descriptor_dim();
  for (std::size_t w : c.fit_widths) {
    f += static_cast<double>(in) * static_cast<double>(w);
    in = w;
  }
  return f + static_cast<double>(in);  // final linear read-out
}

double embed_flops_per_scalar(const dp::core::ModelConfig& c) {
  double f = 0.0;
  std::size_t in = 1;
  for (std::size_t w : c.embed_widths) {
    f += static_cast<double>(in) * static_cast<double>(w);
    in = w;
  }
  return f;  // = d1 + 10 d1^2 for {d1, 2d1, 4d1} (paper Sec 2.2)
}
}  // namespace

WorkloadSpec WorkloadSpec::water() {
  WorkloadSpec w;
  w.config = dp::core::ModelConfig::water();
  w.density = 3 * 0.0334;  // atoms / A^3 at ambient density
  // mean neighbors = density * (4/3) pi rc^3
  w.real_neighbors = w.density * 4.0 / 3.0 * std::numbers::pi * std::pow(w.config.rcut, 3);
  w.dt_fs = 0.5;
  w.name = "water";
  return w;
}

WorkloadSpec WorkloadSpec::copper() {
  WorkloadSpec w;
  w.config = dp::core::ModelConfig::copper();
  w.density = 4.0 / std::pow(3.634, 3);
  w.real_neighbors = w.density * 4.0 / 3.0 * std::numbers::pi * std::pow(w.config.rcut, 3);
  w.dt_fs = 1.0;
  w.name = "copper";
  return w;
}

PathCosts per_atom_costs(const WorkloadSpec& w, Path path) {
  const auto& c = w.config;
  const double nm = c.nm();
  const double nr = w.real_neighbors;
  const double m = static_cast<double>(c.m());
  const double ms = static_cast<double>(c.axis_neuron);

  PathCosts out;

  // --- environment matrix (ProdEnvMatA) ----------------------------------
  // ~40 FLOPs per real neighbor (distance, gate, 16 row/deriv entries);
  // reads neighbor coordinates, writes the padded rmat + deriv rows.
  out.env_mat.flops = nr * 40.0;
  out.env_mat.bytes_read = nr * 4 * kB;
  out.env_mat.bytes_written = nm * 16 * kB;

  // --- embedding stage -----------------------------------------------------
  switch (path) {
    case Path::Baseline: {
      // Forward + backward GEMM pipelines over every slot (padding incl.):
      // forward = N_m (d1 + 10 d1^2) MACs, backward ~ 2x forward.
      const double fwd = nm * embed_flops_per_scalar(c);
      out.embedding.flops = 3.0 * fwd;
      // G is written once and read three times (A contraction, dE/dR~
      // assembly, backward), plus the retained layer activations (~2.5 G's
      // worth for the {d1,2d1,4d1} net) written and re-read.
      const double g_bytes = nm * m * kB;
      out.embedding.bytes_written = g_bytes * (1.0 + 2.5);
      out.embedding.bytes_read = g_bytes * (3.0 + 2.5);
      break;
    }
    case Path::Tabulated: {
      // Quintic Horner (value + derivative ~ 20 ops/channel) over every
      // slot; G and dG/ds still materialized and re-read by the GEMMs.
      out.embedding.flops = nm * 20.0 * m;
      const double g_bytes = nm * m * kB;
      out.embedding.bytes_written = 2.0 * g_bytes;  // G and dG
      out.embedding.bytes_read = 3.0 * g_bytes + nm * 6.0 * m * kB * kTableMissRate;
      break;
    }
    case Path::Fused: {
      // Two fused passes over REAL slots only: pass 1 evaluates the table
      // and contracts (poly ~10 + outer product 8 ops/channel), pass 2
      // re-evaluates with derivative (~20) and reduces (~9). G never
      // touches memory; traffic is the rmat rows + table misses.
      out.embedding.flops = nr * (18.0 + 29.0) * m;
      out.embedding.bytes_read =
          nr * 4 * kB * 2.0 + nr * 12.0 * m * kB * kTableMissRate;
      out.embedding.bytes_written = nr * 4 * kB;  // g_rmat rows
      break;
    }
  }

  // --- descriptor + fitting net (same for every path) ---------------------
  // D = A<^T A forward + adjoint (2 x 4 M< M MACs each); fitting net forward
  // plus ~2x backward.
  out.descriptor_fit.flops = 4.0 * 4.0 * ms * m + 3.0 * fit_flops(c);
  double act_bytes = 0.0;
  for (std::size_t width : c.fit_widths) act_bytes += static_cast<double>(width) * kB;
  out.descriptor_fit.bytes_written = 2.0 * act_bytes + ms * m * kB;
  out.descriptor_fit.bytes_read = 2.0 * act_bytes + 2.0 * ms * m * kB;

  // --- force / virial scatter ---------------------------------------------
  out.prod_force.flops = nr * 50.0;
  out.prod_force.bytes_read = nr * 20 * kB;
  out.prod_force.bytes_written = nr * 6 * kB;

  return out;
}

double bytes_per_atom(const WorkloadSpec& w, Path path) {
  const auto& c = w.config;
  const double nm = c.nm();
  const double m = static_cast<double>(c.m());
  // Environment matrix + derivative + slot map + neighbor list + state.
  const double env = nm * (16.0 + 0.5) * kB + 200.0;
  switch (path) {
    case Path::Baseline:
      // ~6 live N_m x M buffers (G, workspace activations, gradients,
      // TensorFlow's trade-space copies) — calibrated to the paper's 4,600
      // copper atoms per 16 GB V100.
      return env + 6.0 * nm * m * kB;
    case Path::Tabulated:
      // G + dG + gradient buffer still materialized.
      return env + 3.0 * nm * m * kB;
    case Path::Fused:
      // Only the dE/dR~ rows (N_m x 4) are materialized besides the
      // environment matrix itself.
      return env + nm * 4.0 * kB;
  }
  return env;
}

double bytes_per_rank_overhead(const WorkloadSpec& w, Path path) {
  // Model weights + runtime graph + MPI buffers. The paper quotes 13 MB for
  // the copper graph and a noticeably larger water graph; the runtime adds
  // buffers on top. The tabulated paths also ship the coefficient table.
  double overhead = 200e6;  // runtime + MPI buffers
  double weights = 0.0;
  std::size_t in = w.config.descriptor_dim();
  for (std::size_t width : w.config.fit_widths) {
    weights += static_cast<double>(in * width) * kB;
    in = width;
  }
  overhead += weights * w.config.ntypes;
  if (path != Path::Baseline) {
    // table: intervals x M x 6 coefficients (0.01 interval over s in [0,2]).
    overhead += 200.0 * static_cast<double>(w.config.m()) * 6.0 * kB * w.config.ntypes;
  }
  return overhead;
}

}  // namespace dp::perf
