// Strong/weak scaling projector (paper Sec 6.4, Figs 9-11, Table 1).
//
// Per-step time of one rank = roofline(compute over local atoms)
//                           + ghost-exchange communication.
// The ghost model is the paper's own Sec 3.3/6.4.1 argument: computation
// scales with the sub-region volume, communication with the ghost shell.
#pragma once

#include <cstddef>
#include <vector>

#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

namespace dp::perf {

struct ScalePoint {
  int nodes = 0;
  std::size_t atoms = 0;
  double atoms_per_rank = 0;
  double compute_seconds = 0;  ///< per MD step
  double comm_seconds = 0;
  double step_seconds = 0;
  double efficiency = 1.0;        ///< parallel efficiency vs the curve's base point
  double ns_per_day = 0;          ///< simulated time per wall-clock day
  double tts_s_step_atom = 0;     ///< the paper's headline metric
  double pflops = 0;              ///< achieved double-precision PFLOPS
};

class ScalingModel {
 public:
  ScalingModel(MachineSystem system, WorkloadSpec workload, Path path);

  /// One configuration: natoms spread over `nodes` nodes.
  ScalePoint point(std::size_t natoms, int nodes) const;

  /// Strong scaling: fixed total atoms, increasing node counts. Efficiency
  /// is relative to the first entry.
  std::vector<ScalePoint> strong_curve(std::size_t natoms, const std::vector<int>& nodes) const;

  /// Weak scaling: fixed atoms per rank.
  std::vector<ScalePoint> weak_curve(std::size_t atoms_per_rank,
                                     const std::vector<int>& nodes) const;

  /// Memory-capacity bound: the largest system `nodes` nodes can hold.
  std::size_t max_atoms(int nodes) const;

  /// Atoms per rank that exactly fill the per-rank memory (weak-scaling
  /// operating point of Fig 11 / Table 1).
  std::size_t max_atoms_per_rank() const;

  double ghost_atoms_per_rank(double atoms_per_rank) const;

  const MachineSystem& system() const { return system_; }
  const WorkloadSpec& workload() const { return workload_; }

 private:
  MachineSystem system_;
  WorkloadSpec workload_;
  Path path_;
  KernelCost per_atom_;
  Machine rank_device_;  ///< per-rank slice of the node's devices
};

}  // namespace dp::perf
