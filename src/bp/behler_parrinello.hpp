// Behler-Parrinello neural-network potential (radial G2 symmetry functions)
// — the OTHER MLMD scheme of the paper's Table 1 (Simple-NN, Singraber et
// al.), implemented so the comparison rows have an in-tree counterpart.
//
//   G2_k(i) = sum_j exp(-eta_k (r_ij - Rs_k)^2) * fc(r_ij),
//   fc(r)   = 1/2 (cos(pi r / rc) + 1)   for r < rc,
//   E_i     = NN_{type(i)}(G2_1..G2_K),  E = sum_i E_i,
//
// with analytic forces through the feature Jacobian. Angular (G4) functions
// are omitted — the radial set is what the cost comparison needs; adding
// G4 changes the constant, not the structure. Features are species-blind;
// each center type has its own network (as in the original BP scheme).
#pragma once

#include <vector>

#include "md/force_field.hpp"
#include "nn/fitting_net.hpp"

namespace dp::bp {

struct BpConfig {
  double rcut = 6.0;
  /// Gaussian widths and centers; one feature per (eta[k], rs[k]) pair.
  std::vector<double> eta = {4.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<double> rs = {1.5, 2.5, 3.5, 4.5, 1.5, 2.5, 3.5, 4.5};
  std::vector<std::size_t> hidden = {24, 24};
  int ntypes = 1;

  std::size_t n_features() const { return eta.size(); }
  void validate() const;
};

class BehlerParrinello final : public md::ForceField {
 public:
  explicit BehlerParrinello(BpConfig config, std::uint64_t seed = 2022);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return cfg_.rcut; }

  const BpConfig& config() const { return cfg_; }
  const std::vector<double>& atom_energies() const { return atom_energy_; }
  nn::FittingNet& net(int t) { return nets_[static_cast<std::size_t>(t)]; }

  /// Training support: E_pred plus seed * dE/d(weights) accumulated into
  /// `grads` ([type][layer], pre-init'ed) when non-null.
  double energy_with_gradients(const md::Box& box, const md::Atoms& atoms,
                               const md::NeighborList& nlist, double seed = 1.0,
                               std::vector<std::vector<nn::DenseLayer::Grads>>* grads =
                                   nullptr) const;

 private:
  BpConfig cfg_;
  std::vector<nn::FittingNet> nets_;  // per center type
  std::vector<double> atom_energy_;
};

}  // namespace dp::bp
