#include "bp/behler_parrinello.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "common/timer.hpp"

namespace dp::bp {

void BpConfig::validate() const {
  DP_CHECK(rcut > 0 && ntypes >= 1);
  DP_CHECK_MSG(eta.size() == rs.size() && !eta.empty(),
               "eta and rs must pair up into features");
  DP_CHECK(!hidden.empty());
}

BehlerParrinello::BehlerParrinello(BpConfig config, std::uint64_t seed)
    : cfg_(std::move(config)) {
  cfg_.validate();
  Rng rng(seed);
  for (int t = 0; t < cfg_.ntypes; ++t) {
    nets_.emplace_back(cfg_.n_features(), cfg_.hidden);
    nets_.back().init_random(rng);
  }
}

md::ForceResult BehlerParrinello::compute(const md::Box& box, md::Atoms& atoms,
                                          const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("bp.compute");
  const std::size_t n = nlist.n_centers();
  const std::size_t k_feat = cfg_.n_features();
  const double rc = cfg_.rcut;
  const double rc2 = rc * rc;

  atom_energy_.assign(n, 0.0);
  atoms.zero_forces();
  md::ForceResult out;

  AlignedVector<double> features(k_feat), g_d(k_feat);
  nn::FittingNet::Workspace ws;
  for (std::size_t i = 0; i < n; ++i) {
    // ---- Features --------------------------------------------------------
    for (auto& f : features) f = 0.0;
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i];
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      const double fc = 0.5 * (std::cos(std::numbers::pi * r / rc) + 1.0);
      for (std::size_t k = 0; k < k_feat; ++k) {
        const double dr = r - cfg_.rs[k];
        features[k] += std::exp(-cfg_.eta[k] * dr * dr) * fc;
      }
    }

    // ---- Energy + dE/dG --------------------------------------------------
    const int ct = atoms.type[i];
    atom_energy_[i] = nets_[static_cast<std::size_t>(ct)].forward(features.data(), ws);
    out.energy += atom_energy_[i];
    nets_[static_cast<std::size_t>(ct)].backward(ws, g_d.data());

    // ---- Forces: chain through dG/d(r_j - r_i) ---------------------------
    Vec3 fi{};
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i];
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      const double x = std::numbers::pi * r / rc;
      const double fc = 0.5 * (std::cos(x) + 1.0);
      const double dfc = -0.5 * std::numbers::pi / rc * std::sin(x);
      double dg_dr = 0.0;  // sum_k g_d[k] * dG_k/dr
      for (std::size_t k = 0; k < k_feat; ++k) {
        const double dr = r - cfg_.rs[k];
        const double gauss = std::exp(-cfg_.eta[k] * dr * dr);
        dg_dr += g_d[k] * gauss * (-2.0 * cfg_.eta[k] * dr * fc + dfc);
      }
      const Vec3 fpair = d * (dg_dr / r);  // dE_i/dd
      fi += fpair;                          // F_i = +dE/dd, F_j = -dE/dd
      atoms.force[static_cast<std::size_t>(j)] -= fpair;
      out.virial += outer(d, fpair) * (-1.0);
    }
    atoms.force[i] += fi;
  }
  return out;
}

double BehlerParrinello::energy_with_gradients(
    const md::Box& box, const md::Atoms& atoms, const md::NeighborList& nlist, double seed,
    std::vector<std::vector<nn::DenseLayer::Grads>>* grads) const {
  const std::size_t n = nlist.n_centers();
  const std::size_t k_feat = cfg_.n_features();
  const double rc = cfg_.rcut;
  const double rc2 = rc * rc;

  double energy = 0.0;
  AlignedVector<double> features(k_feat), g_d(k_feat);
  nn::FittingNet::Workspace ws;
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& f : features) f = 0.0;
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i];
      d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      const double fc = 0.5 * (std::cos(std::numbers::pi * r / rc) + 1.0);
      for (std::size_t k = 0; k < k_feat; ++k) {
        const double dr = r - cfg_.rs[k];
        features[k] += std::exp(-cfg_.eta[k] * dr * dr) * fc;
      }
    }
    const int ct = atoms.type[i];
    energy += nets_[static_cast<std::size_t>(ct)].forward(features.data(), ws);
    if (grads != nullptr)
      nets_[static_cast<std::size_t>(ct)].backward(
          ws, g_d.data(), &(*grads)[static_cast<std::size_t>(ct)], seed);
  }
  return energy;
}

}  // namespace dp::bp
