#include "bp/bp_trainer.hpp"

#include <cmath>

namespace dp::bp {

namespace {
using Grads = std::vector<std::vector<nn::DenseLayer::Grads>>;

Grads make_grads(BehlerParrinello& bp) {
  Grads g(static_cast<std::size_t>(bp.config().ntypes));
  for (int t = 0; t < bp.config().ntypes; ++t) {
    g[static_cast<std::size_t>(t)].resize(bp.net(t).layers().size());
    for (std::size_t l = 0; l < bp.net(t).layers().size(); ++l)
      g[static_cast<std::size_t>(t)][l].init(bp.net(t).layers()[l]);
  }
  return g;
}

void zero(Grads& g) {
  for (auto& net : g)
    for (auto& layer : net) layer.zero();
}
}  // namespace

double evaluate_energy(BehlerParrinello& bp, const train::Dataset& data, double skin) {
  DP_CHECK(!data.frames.empty());
  double se = 0.0;
  for (const auto& frame : data.frames) {
    md::NeighborList nl(bp.cutoff(), skin);
    nl.build(frame.sys.box, frame.sys.atoms.pos);
    const double e = bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl);
    const double delta = (e - frame.energy) / static_cast<double>(frame.sys.atoms.size());
    se += delta * delta;
  }
  return std::sqrt(se / static_cast<double>(data.size()));
}

BpTrainResult train_energy(BehlerParrinello& bp, const train::Dataset& data, int epochs,
                           double learning_rate, double skin) {
  DP_CHECK(!data.frames.empty() && epochs >= 0);
  BpTrainResult result;
  result.epoch_rmse.reserve(static_cast<std::size_t>(epochs));

  Grads grads = make_grads(bp), m1 = make_grads(bp), m2 = make_grads(bp);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  const double n_frames = static_cast<double>(data.size());

  for (int epoch = 1; epoch <= epochs; ++epoch) {
    zero(grads);
    double se = 0.0;
    for (const auto& frame : data.frames) {
      const double n_atoms = static_cast<double>(frame.sys.atoms.size());
      md::NeighborList nl(bp.cutoff(), skin);
      nl.build(frame.sys.box, frame.sys.atoms.pos);
      const double e = bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl);
      const double delta = (e - frame.energy) / n_atoms;
      se += delta * delta;
      bp.energy_with_gradients(frame.sys.box, frame.sys.atoms, nl,
                               2.0 * delta / n_atoms / n_frames, &grads);
    }
    result.epoch_rmse.push_back(std::sqrt(se / n_frames));

    // Adam step.
    const double b1 = 1.0 - std::pow(beta1, epoch);
    const double b2 = 1.0 - std::pow(beta2, epoch);
    for (int t = 0; t < bp.config().ntypes; ++t)
      for (std::size_t l = 0; l < bp.net(t).layers().size(); ++l) {
        auto& layer = bp.net(t).layers()[l];
        auto& g = grads[static_cast<std::size_t>(t)][l];
        auto& mo1 = m1[static_cast<std::size_t>(t)][l];
        auto& mo2 = m2[static_cast<std::size_t>(t)][l];
        auto update = [&](double* p, const double* gr, double* a, double* b, std::size_t nn_) {
          for (std::size_t k = 0; k < nn_; ++k) {
            a[k] = beta1 * a[k] + (1 - beta1) * gr[k];
            b[k] = beta2 * b[k] + (1 - beta2) * gr[k] * gr[k];
            p[k] -= learning_rate * (a[k] / b1) / (std::sqrt(b[k] / b2) + eps);
          }
        };
        update(layer.weights().data(), g.w.data(), mo1.w.data(), mo2.w.data(), g.w.size());
        update(layer.bias().data(), g.b.data(), mo1.b.data(), mo2.b.data(), g.b.size());
      }
  }
  return result;
}

}  // namespace dp::bp
