// Energy training for the Behler-Parrinello potential. The BP features are
// fixed functions of the positions, so training is plain regression of the
// per-type networks — far simpler than the DP case, which is exactly the
// historical appeal of the scheme (and its expressiveness ceiling).
#pragma once

#include "bp/behler_parrinello.hpp"
#include "train/dataset.hpp"

namespace dp::bp {

struct BpTrainResult {
  std::vector<double> epoch_rmse;  ///< per-atom energy RMSE per epoch
};

/// Full-batch Adam on L = mean over frames of ((E_pred - E_ref)/N)^2.
BpTrainResult train_energy(BehlerParrinello& bp, const train::Dataset& data, int epochs,
                           double learning_rate = 3e-3, double skin = 0.5);

/// Per-atom energy RMSE of the current networks on a dataset.
double evaluate_energy(BehlerParrinello& bp, const train::Dataset& data, double skin = 0.5);

}  // namespace dp::bp
