#include "common/cost.hpp"

namespace dp {

CostRegistry& CostRegistry::instance() {
  static CostRegistry reg;
  return reg;
}

void CostRegistry::add(const std::string& name, const KernelCost& cost) {
  MutexLock lock(mu_);
  costs_[name] += cost;
}

KernelCost CostRegistry::get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = costs_.find(name);
  return it == costs_.end() ? KernelCost{} : it->second;
}

KernelCost CostRegistry::total() const {
  MutexLock lock(mu_);
  KernelCost t;
  for (const auto& [_, c] : costs_) t += c;
  return t;
}

std::vector<std::pair<std::string, KernelCost>> CostRegistry::entries() const {
  MutexLock lock(mu_);
  return {costs_.begin(), costs_.end()};
}

void CostRegistry::clear() {
  MutexLock lock(mu_);
  costs_.clear();
}

}  // namespace dp
