// Clang Thread Safety annotations + capability-aware lock types.
//
// TSan (the PR 2 floor) only catches races the test suite happens to
// schedule; the capability annotations below turn an unguarded access to a
// mutex-protected field into a *compile error* under clang
// (-Wthread-safety -Wthread-safety-beta -Werror — the CI clang leg), so a
// lock-discipline violation cannot outrun the scheduler. Under GCC every
// macro expands to nothing and every wrapper is a zero-cost veneer over the
// std primitive, so the plain/ASan/UBSan/TSan builds are unchanged.
//
// Discipline (enforced by dplint's `lock-annotations` rule):
//   * concurrency code in src/ declares dp::Mutex / dp::CondVar, never raw
//     std::mutex / std::condition_variable — the raw types carry no
//     capability attribute, so clang cannot track them;
//   * every field a mutex guards carries DP_GUARDED_BY(mu), written next to
//     the happens-before argument it encodes (docs/STATIC_ANALYSIS.md maps
//     each argument to its annotations);
//   * acquisitions go through dp::MutexLock / dp::MutexUniqueLock (scoped
//     capabilities), or through functions annotated DP_ACQUIRE/DP_RELEASE;
//   * helpers called with a lock already held are annotated
//     DP_REQUIRES(mu) instead of re-locking.
//
// Note for condition-variable users: clang's analysis cannot see through a
// predicate lambda passed to wait(pred) (the lambda body is analyzed as an
// unannotated function), so waits on guarded state are written as explicit
// `while (!pred) cv.wait(lk);` loops in the annotated caller's body —
// semantically identical, and the guarded reads stay visible to the
// analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DP_THREAD_ANNOTATION(x)  // expands to nothing: GCC ignores the analysis
#endif

/// Marks a type as a trackable capability ("mutex", "role", ...).
#define DP_CAPABILITY(x) DP_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires in its constructor, releases in its
/// destructor (std::lock_guard-shaped).
#define DP_SCOPED_CAPABILITY DP_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be accessed while holding the named capability.
#define DP_GUARDED_BY(x) DP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field: the *pointee* may only be accessed while holding it.
#define DP_PT_GUARDED_BY(x) DP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (and did not hold it on entry).
#define DP_ACQUIRE(...) DP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry).
#define DP_RELEASE(...) DP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define DP_TRY_ACQUIRE(...) DP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold the capability (helper called under the lock).
#define DP_REQUIRES(...) DP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (function locks it itself).
#define DP_EXCLUDES(...) DP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Static lock-ordering declarations (deadlock detection).
#define DP_ACQUIRED_BEFORE(...) DP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DP_ACQUIRED_AFTER(...) DP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define DP_RETURN_CAPABILITY(x) DP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — use only with a written happens-before argument.
#define DP_NO_THREAD_SAFETY_ANALYSIS DP_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Runtime assertion that the capability is held (trusted by the analysis).
#define DP_ASSERT_CAPABILITY(x) DP_THREAD_ANNOTATION(assert_capability(x))

namespace dp {

/// std::mutex with the `capability` attribute, so DP_GUARDED_BY fields and
/// DP_REQUIRES functions can name it. The underlying primitive stays
/// std::mutex — TSan models it natively, which is what keeps the
/// zero-suppressions floor (docs/STATIC_ANALYSIS.md) intact.
class DP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DP_ACQUIRE() { mu_.lock(); }
  void unlock() DP_RELEASE() { mu_.unlock(); }
  bool try_lock() DP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexUniqueLock;
  std::mutex mu_;
};

/// std::lock_guard over a dp::Mutex, visible to the analysis as a scoped
/// capability: guarded fields are accessible for exactly its lifetime.
class DP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a dp::Mutex — the condvar-wait flavor of
/// MutexLock. CondVar::wait atomically releases and reacquires it, so from
/// the analysis's point of view the capability is held for the whole scope,
/// which matches what the caller may assume before and after each wait.
class DP_SCOPED_CAPABILITY MutexUniqueLock {
 public:
  explicit MutexUniqueLock(Mutex& mu) DP_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexUniqueLock() DP_RELEASE() {}  // lk_'s destructor performs the unlock

  MutexUniqueLock(const MutexUniqueLock&) = delete;
  MutexUniqueLock& operator=(const MutexUniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable paired with dp::Mutex via MutexUniqueLock.
/// Waits on guarded predicates belong in explicit while-loops at the call
/// site (see the header comment), so there is deliberately no wait(pred)
/// overload here.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexUniqueLock& lk) { cv_.wait(lk.lk_); }
  /// Timed wait for transports that must fail over to a fatal diagnostic
  /// instead of hanging (a dead peer process never notifies). Returns false
  /// on timeout; like wait(), belongs inside an explicit predicate loop.
  bool wait_for(MutexUniqueLock& lk, double seconds) {
    return cv_.wait_for(lk.lk_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dp
