// Tabulated tanh activation (paper Sec 3.5.3).
//
// The activation is approximated by per-interval second-order polynomials on
// the positive half-axis [0, x_max]; odd symmetry (tanh(-x) = -tanh(x))
// covers negative inputs and tanh(x) = 1 is used beyond x_max = 8. The paper
// reports ~1e-7 absolute error and a 60x speedup over libm tanh on A64FX
// without affecting overall model accuracy.
#pragma once

#include <cstddef>

#include "common/aligned.hpp"

namespace dp {

class TanhTable {
 public:
  /// Builds a table of `intervals` quadratic segments on [0, x_max].
  /// The default (1024 segments to 8.0) gives max error below 1e-7.
  explicit TanhTable(double x_max = 8.0, std::size_t intervals = 1024);

  /// Tabulated tanh(x) for any real x.
  double eval(double x) const {
    const double ax = x < 0.0 ? -x : x;
    if (ax >= x_max_) return x < 0.0 ? -1.0 : 1.0;
    const double u = ax * inv_h_;
    // inv_h_ = intervals / x_max is rounded, so for non-power-of-two grids
    // an ax just below x_max can land at u == intervals_ exactly — clamp to
    // the last segment instead of reading past coef_.
    std::size_t k = static_cast<std::size_t>(u);
    if (k >= intervals_) k = intervals_ - 1;
    const double t = ax - static_cast<double>(k) * h_;
    const double* c = &coef_[3 * k];
    const double y = c[0] + t * (c[1] + t * c[2]);
    return x < 0.0 ? -y : y;
  }

  /// Derivative consistent with the tabulated value: 1 - eval(x)^2.
  double deriv(double x) const {
    const double y = eval(x);
    return 1.0 - y * y;
  }

  /// Vectorizable batched evaluation: y[i] = tanh_tab(x[i]).
  void eval_batch(const double* x, double* y, std::size_t n) const;

  double x_max() const { return x_max_; }
  std::size_t intervals() const { return intervals_; }
  /// Maximum |table - std::tanh| measured on a dense probe grid.
  double measured_max_error() const;

 private:
  double x_max_;
  std::size_t intervals_;
  double h_;
  double inv_h_;
  AlignedVector<double> coef_;  // 3 coefficients per interval, local coordinate
};

/// The process-wide default table (x_max = 8, 1024 intervals).
const TanhTable& default_tanh_table();

}  // namespace dp
