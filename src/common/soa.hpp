// AoS <-> SoA conversion kernels (paper Sec 3.5.3, Fig 5).
//
// The per-neighbor derivative of the environment matrix (`descrpt_a_deriv`)
// is naturally an array of 12-component structures (4 environment-matrix
// columns x 3 Cartesian directions). The vectorized custom operators need it
// transposed into structure-of-arrays blocks whose lane width matches the
// vector register (8 doubles for 512-bit SVE). Widths 2/3/4 map to single
// ld2/ld3/ld4 instructions on SVE; the 12-wide case needs the hand-blocked
// subroutine implemented here.
#pragma once

#include <cstddef>

namespace dp {

/// Components per neighbor in descrpt_a_deriv: 4 env-matrix entries x 3 dims.
inline constexpr std::size_t kDerivWidth = 12;
/// Lanes per 512-bit vector of doubles.
inline constexpr std::size_t kSimdLanes = 8;

/// Reference (scalar, strided) transpose:  soa[c * n + i] = aos[i * w + c].
void aos_to_soa_reference(const double* aos, double* soa, std::size_t n, std::size_t width);

/// Reference inverse transpose: aos[i * w + c] = soa[c * n + i].
void soa_to_aos_reference(const double* soa, double* aos, std::size_t n, std::size_t width);

/// Blocked conversion for width == kDerivWidth. Processes kSimdLanes
/// neighbors at a time with a fully unrolled 12x8 in-register transpose
/// (the Fig 5 pattern); the tail falls back to the reference kernel.
void aos_to_soa_deriv(const double* aos, double* soa, std::size_t n);

/// Blocked inverse of aos_to_soa_deriv.
void soa_to_aos_deriv(const double* soa, double* aos, std::size_t n);

}  // namespace dp
