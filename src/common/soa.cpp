#include "common/soa.hpp"

namespace dp {

void aos_to_soa_reference(const double* aos, double* soa, std::size_t n, std::size_t width) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < width; ++c) soa[c * n + i] = aos[i * width + c];
}

void soa_to_aos_reference(const double* soa, double* aos, std::size_t n, std::size_t width) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < width; ++c) aos[i * width + c] = soa[c * n + i];
}

void aos_to_soa_deriv(const double* aos, double* soa, std::size_t n) {
  constexpr std::size_t W = kDerivWidth;
  constexpr std::size_t L = kSimdLanes;
  const std::size_t blocks = n / L;
  // One 12x8 tile per iteration: contiguous loads of 8 structures, fully
  // unrolled scatter into the 12 destination streams. The inner pair of
  // loops is compile-time sized so the compiler keeps the tile in registers
  // — the scalar analogue of the SVE ld/st sequence in the paper's Fig 5.
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* src = aos + b * L * W;
    double* dst = soa + b * L;
#pragma GCC unroll 12
    for (std::size_t c = 0; c < W; ++c)
#pragma GCC unroll 8
      for (std::size_t l = 0; l < L; ++l) dst[c * n + l] = src[l * W + c];
  }
  const std::size_t done = blocks * L;
  for (std::size_t i = done; i < n; ++i)
    for (std::size_t c = 0; c < W; ++c) soa[c * n + i] = aos[i * W + c];
}

void soa_to_aos_deriv(const double* soa, double* aos, std::size_t n) {
  constexpr std::size_t W = kDerivWidth;
  constexpr std::size_t L = kSimdLanes;
  const std::size_t blocks = n / L;
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* src = soa + b * L;
    double* dst = aos + b * L * W;
#pragma GCC unroll 12
    for (std::size_t c = 0; c < W; ++c)
#pragma GCC unroll 8
      for (std::size_t l = 0; l < L; ++l) dst[l * W + c] = src[c * n + l];
  }
  const std::size_t done = blocks * L;
  for (std::size_t i = done; i < n; ++i)
    for (std::size_t c = 0; c < W; ++c) aos[i * W + c] = soa[c * n + i];
}

}  // namespace dp
