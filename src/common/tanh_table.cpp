#include "common/tanh_table.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dp {

TanhTable::TanhTable(double x_max, std::size_t intervals)
    : x_max_(x_max), intervals_(intervals) {
  DP_CHECK(x_max > 0.0 && intervals > 0);
  h_ = x_max_ / static_cast<double>(intervals_);
  inv_h_ = 1.0 / h_;
  coef_.resize(3 * intervals_);
  // Quadratic through the endpoints and midpoint of each interval, expressed
  // in the local coordinate t = x - x0. Interpolation (rather than Taylor)
  // halves the worst-case error for the same grid.
  for (std::size_t k = 0; k < intervals_; ++k) {
    const double x0 = static_cast<double>(k) * h_;
    const double f0 = std::tanh(x0);
    const double fm = std::tanh(x0 + 0.5 * h_);
    const double f1 = std::tanh(x0 + h_);
    // f(t) = c0 + c1 t + c2 t^2 with f(0)=f0, f(h/2)=fm, f(h)=f1.
    const double c0 = f0;
    const double c2 = (f1 - 2.0 * fm + f0) * 2.0 * inv_h_ * inv_h_;
    const double c1 = (f1 - f0) * inv_h_ - c2 * h_;
    coef_[3 * k + 0] = c0;
    coef_[3 * k + 1] = c1;
    coef_[3 * k + 2] = c2;
  }
}

void TanhTable::eval_batch(const double* x, double* y, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) y[i] = eval(x[i]);
}

double TanhTable::measured_max_error() const {
  double max_err = 0.0;
  const std::size_t probes = 20011;  // prime, avoids aliasing with the grid
  for (std::size_t i = 0; i < probes; ++i) {
    const double x = -1.5 * x_max_ +
                     3.0 * x_max_ * static_cast<double>(i) / static_cast<double>(probes - 1);
    const double err = std::fabs(eval(x) - std::tanh(x));
    if (err > max_err) max_err = err;
  }
  return max_err;
}

const TanhTable& default_tanh_table() {
  static const TanhTable table;
  return table;
}

}  // namespace dp
