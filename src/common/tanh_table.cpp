#include "common/tanh_table.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace dp {

TanhTable::TanhTable(double x_max, std::size_t intervals)
    : x_max_(x_max), intervals_(intervals) {
  DP_CHECK(x_max > 0.0 && intervals > 0);
  h_ = x_max_ / static_cast<double>(intervals_);
  inv_h_ = 1.0 / h_;
  coef_.resize(3 * intervals_);
  // Quadratic through the endpoints and midpoint of each interval, expressed
  // in the local coordinate t = x - x0. Interpolation (rather than Taylor)
  // halves the worst-case error for the same grid.
  for (std::size_t k = 0; k < intervals_; ++k) {
    const double x0 = static_cast<double>(k) * h_;
    const double f0 = std::tanh(x0);
    const double fm = std::tanh(x0 + 0.5 * h_);
    const double f1 = std::tanh(x0 + h_);
    // f(t) = c0 + c1 t + c2 t^2 with f(0)=f0, f(h/2)=fm, f(h)=f1.
    const double c0 = f0;
    const double c2 = (f1 - 2.0 * fm + f0) * 2.0 * inv_h_ * inv_h_;
    const double c1 = (f1 - f0) * inv_h_ - c2 * h_;
    coef_[3 * k + 0] = c0;
    coef_[3 * k + 1] = c1;
    coef_[3 * k + 2] = c2;
  }
}

namespace {

#if DP_SIMD_X86

// Scalar remainder of the vector kernels. Annotated so std::fma compiles to
// the FMA instruction AND rounds exactly like the vector lanes' v*_fmadd —
// a tail element and a vector lane produce the same bits.
DP_TARGET_AVX2 double tanh_eval_tail(const double* coef, double x_max, double inv_h,
                                     double h, int last, double x) {
  const double ax = x < 0.0 ? -x : x;
  if (ax >= x_max) return x < 0.0 ? -1.0 : 1.0;
  int k = static_cast<int>(ax * inv_h);
  if (k > last) k = last;
  const double t = ax - static_cast<double>(k) * h;
  const double* c = coef + 3 * k;
  const double y = std::fma(t, std::fma(t, c[2], c[1]), c[0]);
  return x < 0.0 ? -y : y;
}

// Vector form of TanhTable::eval, 4 inputs at a time: |x|, saturation mask,
// clamped segment index, 3-coefficient gather, FMA quadratic, sign restore.
// The index is clamped to [0, last] (eval's upper clamp; the lower bound
// also tames the INT_MIN the truncating conversion yields for saturated
// inputs whose u overflows i32 — those lanes are blended away regardless).
DP_TARGET_AVX2 void tanh_batch_avx2(const double* coef, double x_max, double inv_h,
                                    double h, int last, const double* x, double* y,
                                    std::size_t n) {
  using namespace simd;
  const v4d vxmax = v4_set1(x_max), vinvh = v4_set1(inv_h), vh = v4_set1(h);
  const v4d vone = v4_set1(1.0), vzero = v4_set1(0.0);
  const v4i izero = i4_set1(0), ilast = i4_set1(last);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const v4d vx = v4_loadu(x + i);
    const v4d ax = v4_abs(vx);
    v4i k = v4_cvtt_i32(v4_mul(ax, vinvh));
    k = i4_min(i4_max(k, izero), ilast);
    const v4d t = v4_sub(ax, v4_mul(v4_cvt_f64(k), vh));
    const v4i k3 = i4_add(i4_add(k, k), k);
    const v4d c0 = v4_gather(coef + 0, k3);
    const v4d c1 = v4_gather(coef + 1, k3);
    const v4d c2 = v4_gather(coef + 2, k3);
    v4d vy = v4_fmadd(t, v4_fmadd(t, c2, c1), c0);
    vy = v4_blend(vy, vone, v4_cmp_ge(ax, vxmax));
    vy = v4_blend(vy, v4_neg(vy), v4_cmp_lt(vx, vzero));
    v4_storeu(y + i, vy);
  }
  for (; i < n; ++i) y[i] = tanh_eval_tail(coef, x_max, inv_h, h, last, x[i]);
}

DP_TARGET_AVX512 void tanh_batch_avx512(const double* coef, double x_max, double inv_h,
                                        double h, int last, const double* x, double* y,
                                        std::size_t n) {
  using namespace simd;
  const v8d vxmax = v8_set1(x_max), vinvh = v8_set1(inv_h), vh = v8_set1(h);
  const v8d vone = v8_set1(1.0), vzero = v8_set1(0.0);
  const v8i izero = i8_set1(0), ilast = i8_set1(last);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const v8d vx = v8_loadu(x + i);
    const v8d ax = v8_abs(vx);
    v8i k = v8_cvtt_i32(v8_mul(ax, vinvh));
    k = i8_min(i8_max(k, izero), ilast);
    const v8d t = v8_sub(ax, v8_mul(v8_cvt_f64(k), vh));
    const v8i k3 = i8_add(i8_add(k, k), k);
    const v8d c0 = v8_gather(coef + 0, k3);
    const v8d c1 = v8_gather(coef + 1, k3);
    const v8d c2 = v8_gather(coef + 2, k3);
    v8d vy = v8_fmadd(t, v8_fmadd(t, c2, c1), c0);
    vy = v8_blend(vy, vone, v8_cmp_ge(ax, vxmax));
    vy = v8_blend(vy, v8_neg(vy), v8_cmp_lt(vx, vzero));
    v8_storeu(y + i, vy);
  }
  for (; i < n; ++i) y[i] = tanh_eval_tail(coef, x_max, inv_h, h, last, x[i]);
}

#endif  // DP_SIMD_X86

}  // namespace

void TanhTable::eval_batch(const double* x, double* y, std::size_t n) const {
#if DP_SIMD_X86
  const int last = static_cast<int>(intervals_) - 1;
  switch (simd::active()) {
    case simd::Level::AVX512:
      tanh_batch_avx512(coef_.data(), x_max_, inv_h_, h_, last, x, y, n);
      return;
    case simd::Level::AVX2:
      tanh_batch_avx2(coef_.data(), x_max_, inv_h_, h_, last, x, y, n);
      return;
    case simd::Level::Scalar:
      break;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) y[i] = eval(x[i]);
}

double TanhTable::measured_max_error() const {
  double max_err = 0.0;
  const std::size_t probes = 20011;  // prime, avoids aliasing with the grid
  for (std::size_t i = 0; i < probes; ++i) {
    const double x = -1.5 * x_max_ +
                     3.0 * x_max_ * static_cast<double>(i) / static_cast<double>(probes - 1);
    const double err = std::fabs(eval(x) - std::tanh(x));
    if (err > max_err) max_err = err;
  }
  return max_err;
}

const TanhTable& default_tanh_table() {
  static const TanhTable table;
  return table;
}

}  // namespace dp
