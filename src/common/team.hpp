// In-tree fork-join thread team shared by the deterministic parallel
// kernels (neighbor build, environment-matrix build, force/virial fold).
//
// The team size follows OpenMP (`omp_get_max_threads()`, so OMP_NUM_THREADS
// and omp_set_num_threads behave exactly as they would for a `parallel`
// region), but dispatch and barriers are built on dp::Mutex / dp::CondVar
// (std primitives under capability annotations) rather than libgomp: the
// repo's sanitizer floor
// requires TSan-green with ZERO suppressions, and libgomp's futex-based
// pool handoff and barriers are invisible to TSan (the runtime is not
// instrumented), so a pooled `#pragma omp parallel` region with mid-job
// barriers reports unfixable false races on its own capture struct. Mirrors
// the minimpi move: the in-tree primitive keeps every happens-before edge
// visible. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dp {

/// Non-owning callable handed to the team: the lambda lives in the caller's
/// frame for the whole dispatch, so no std::function allocation ever happens
/// on a hot path.
struct BodyRef {
  void* ctx;
  void (*fn)(void*, int, int);
  template <class F, class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, BodyRef>>>
  explicit BodyRef(F& f)
      : ctx(&f), fn([](void* c, int t, int T) { (*static_cast<F*>(c))(t, T); }) {}
  void operator()(int t, int T) const { fn(ctx, t, T); }
};

/// Contiguous, ascending split of [0, n) for thread t of T. Contiguity in
/// thread order is load-bearing: it makes "(thread, position in chunk)"
/// order equal global index order, which is what keeps the parallel
/// counting sorts and the slab copies byte-identical to the serial path.
inline std::size_t chunk_bound(std::size_t n, int t, int T) {
  return n * static_cast<std::size_t>(t) / static_cast<std::size_t>(T);
}

/// Persistent fork-join team, one per master thread (rank threads in the
/// distributed driver each get their own — the same per-rank ownership the
/// neighbor list follows).
///
/// Happens-before: the master publishes the job (body pointer, T) under
/// `mu_` and workers read it under `mu_` — lock hand-off edge in; workers
/// bump `done_` under `mu_` and the master waits for all of them — edge
/// out. barrier() is the minimpi generation barrier. Discipline: one
/// master per team (thread_local singleton via team()), and every one of
/// the T participants of a job must execute the same sequence of barrier()
/// calls, which each caller's phase structure must guarantee.
class BuildTeam {
 public:
  ~BuildTeam() {
    {
      MutexLock lk(mu_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Runs body(t, T) on T threads; the caller executes t = 0. Returns after
  /// every worker (participant or not) has checked in.
  void run(int T, BodyRef body) {
    if (T <= 1 && workers_.empty()) {
      {
        // No workers exist yet, so no other thread can touch team state —
        // but the published width is mutex-guarded state everywhere else,
        // and the discipline is uniform: never write it unlocked.
        MutexLock lk(mu_);
        T_ = 1;
      }
      body(0, 1);
      return;
    }
    while (static_cast<int>(workers_.size()) < T - 1)
      workers_.emplace_back(&BuildTeam::worker, this, static_cast<int>(workers_.size()) + 1);
    {
      MutexLock lk(mu_);
      body_ = &body;
      T_ = T;
      done_ = 0;
      bar_count_ = 0;
      ++job_gen_;
    }
    job_cv_.notify_all();
    body(0, T);
    MutexUniqueLock lk(mu_);
    while (done_ != workers_.size()) done_cv_.wait(lk);
    body_ = nullptr;
  }

  /// Generation barrier across the T participants of the current job.
  void barrier() {
    MutexUniqueLock lk(mu_);
    const std::uint64_t gen = bar_gen_;
    if (++bar_count_ == T_) {
      bar_count_ = 0;
      ++bar_gen_;
      bar_cv_.notify_all();
    } else {
      // Explicit loop, not wait(pred): keeps the guarded generation read in
      // this annotated body where the capability analysis can see it.
      while (bar_gen_ == gen) bar_cv_.wait(lk);
    }
  }

  /// The calling thread's persistent team, created on first use and torn
  /// down at thread exit. thread_local keeps the one-master discipline by
  /// construction; sequential kernels on one master share the same team.
  static BuildTeam& team() {
    static thread_local BuildTeam instance;
    return instance;
  }

 private:
  void worker(int idx) {
    std::uint64_t seen = 0;
    for (;;) {
      const BodyRef* body = nullptr;
      int T = 0;
      {
        MutexUniqueLock lk(mu_);
        while (!stop_ && job_gen_ == seen) job_cv_.wait(lk);
        if (stop_) return;
        seen = job_gen_;
        body = body_;
        T = T_;
      }
      // Workers beyond the current T (left over from a wider earlier job)
      // skip the body but still check in, so run() can retire the job.
      if (idx < T) (*body)(idx, T);
      {
        MutexLock lk(mu_);
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  Mutex mu_;
  CondVar job_cv_, done_cv_, bar_cv_;
  std::vector<std::thread> workers_;  // master-only: grown and joined by the owner
  const BodyRef* body_ DP_GUARDED_BY(mu_) = nullptr;
  int T_ DP_GUARDED_BY(mu_) = 1;
  std::size_t done_ DP_GUARDED_BY(mu_) = 0;
  std::uint64_t job_gen_ DP_GUARDED_BY(mu_) = 0;
  std::uint64_t bar_gen_ DP_GUARDED_BY(mu_) = 0;
  int bar_count_ DP_GUARDED_BY(mu_) = 0;
  bool stop_ DP_GUARDED_BY(mu_) = false;
};

}  // namespace dp
