// Basic geometric value types shared by every module.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace dp {

/// Floating point type used for all physics. Kernels that the paper runs in
/// mixed precision are additionally templated on their scalar type.
using real_t = double;

/// A 3-component Cartesian vector.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr double dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }
  friend constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
  }
  friend double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }
  friend constexpr double norm2(const Vec3& a) { return dot(a, a); }
};

/// A row-major 3x3 matrix; used for virials and rotations.
struct Mat3 {
  std::array<double, 9> m{};  // m[3*r + c]

  constexpr double& operator()(std::size_t r, std::size_t c) { return m[3 * r + c]; }
  constexpr double operator()(std::size_t r, std::size_t c) const { return m[3 * r + c]; }

  static constexpr Mat3 identity() {
    Mat3 I;
    I(0, 0) = I(1, 1) = I(2, 2) = 1.0;
    return I;
  }

  constexpr Mat3& operator+=(const Mat3& o) {
    for (std::size_t i = 0; i < 9; ++i) m[i] += o.m[i];
    return *this;
  }
  friend constexpr Mat3 operator+(Mat3 a, const Mat3& b) { return a += b; }
  constexpr Mat3& operator*=(double s) {
    for (double& v : m) v *= s;
    return *this;
  }
  friend constexpr Mat3 operator*(Mat3 a, double s) { return a *= s; }

  friend constexpr Vec3 operator*(const Mat3& A, const Vec3& v) {
    return {A(0, 0) * v.x + A(0, 1) * v.y + A(0, 2) * v.z,
            A(1, 0) * v.x + A(1, 1) * v.y + A(1, 2) * v.z,
            A(2, 0) * v.x + A(2, 1) * v.y + A(2, 2) * v.z};
  }
  friend constexpr Mat3 operator*(const Mat3& A, const Mat3& B) {
    Mat3 C;
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c)
        C(r, c) = A(r, 0) * B(0, c) + A(r, 1) * B(1, c) + A(r, 2) * B(2, c);
    return C;
  }

  constexpr double trace() const { return m[0] + m[4] + m[8]; }
  constexpr Mat3 transposed() const {
    Mat3 T;
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) T(r, c) = (*this)(c, r);
    return T;
  }
};

/// Outer product a b^T.
constexpr Mat3 outer(const Vec3& a, const Vec3& b) {
  Mat3 M;
  M(0, 0) = a.x * b.x; M(0, 1) = a.x * b.y; M(0, 2) = a.x * b.z;
  M(1, 0) = a.y * b.x; M(1, 1) = a.y * b.y; M(1, 2) = a.y * b.z;
  M(2, 0) = a.z * b.x; M(2, 1) = a.z * b.y; M(2, 2) = a.z * b.z;
  return M;
}

/// Rotation matrix about an arbitrary (unnormalized) axis, Rodrigues form.
inline Mat3 rotation(const Vec3& axis, double angle) {
  const double n = norm(axis);
  const Vec3 u = axis * (1.0 / n);
  const double c = std::cos(angle), s = std::sin(angle);
  Mat3 R;
  R(0, 0) = c + u.x * u.x * (1 - c);
  R(0, 1) = u.x * u.y * (1 - c) - u.z * s;
  R(0, 2) = u.x * u.z * (1 - c) + u.y * s;
  R(1, 0) = u.y * u.x * (1 - c) + u.z * s;
  R(1, 1) = c + u.y * u.y * (1 - c);
  R(1, 2) = u.y * u.z * (1 - c) - u.x * s;
  R(2, 0) = u.z * u.x * (1 - c) - u.y * s;
  R(2, 1) = u.z * u.y * (1 - c) + u.x * s;
  R(2, 2) = c + u.z * u.z * (1 - c);
  return R;
}

}  // namespace dp
