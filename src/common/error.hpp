// Error handling macros: fail loudly with file/line context.
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dp {

/// Exception thrown by DP_CHECK / DP_REQUIRE failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Observer invoked with the formatted message before a DP_CHECK failure
/// throws. Long-running drivers (apps/dpmd) route this to the flight
/// recorder + metrics flush (obs::notify_fatal) so a failed invariant
/// leaves a black box even if nothing catches the exception. The hook must
/// return (DP_CHECK still throws) and must not itself throw.
using FatalHook = void (*)(const char* msg) noexcept;

namespace detail {
inline std::atomic<FatalHook>& fatal_hook() {
  static std::atomic<FatalHook> hook{nullptr};
  return hook;
}
}  // namespace detail

/// Installs the process-wide fatal observer; returns the previous one.
/// Pass nullptr to uninstall (library code and tests leave it unset, so
/// DP_CHECK remains a plain throw for them).
inline FatalHook set_fatal_hook(FatalHook hook) noexcept {
  return detail::fatal_hook().exchange(hook, std::memory_order_acq_rel);
}

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  const std::string what = os.str();
  if (const FatalHook hook = fatal_hook().load(std::memory_order_acquire)) {
    hook(what.c_str());
  }
  throw Error(what);
}
}  // namespace detail

}  // namespace dp

/// Always-on invariant check. Throws dp::Error on failure.
#define DP_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::dp::detail::throw_error(__FILE__, __LINE__, #cond, ""); \
  } while (0)

/// Always-on invariant check with a streamed message.
#define DP_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream dp_os_;                                      \
      dp_os_ << msg;                                                  \
      ::dp::detail::throw_error(__FILE__, __LINE__, #cond, dp_os_.str()); \
    }                                                                 \
  } while (0)
