// Error handling macros: fail loudly with file/line context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dp {

/// Exception thrown by DP_CHECK / DP_REQUIRE failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace dp

/// Always-on invariant check. Throws dp::Error on failure.
#define DP_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::dp::detail::throw_error(__FILE__, __LINE__, #cond, ""); \
  } while (0)

/// Always-on invariant check with a streamed message.
#define DP_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream dp_os_;                                      \
      dp_os_ << msg;                                                  \
      ::dp::detail::throw_error(__FILE__, __LINE__, #cond, dp_os_.str()); \
    }                                                                 \
  } while (0)
