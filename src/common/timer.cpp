#include "common/timer.hpp"

#include <algorithm>

namespace dp {

TimerRegistry& TimerRegistry::instance() {
  static TimerRegistry reg;
  return reg;
}

void TimerRegistry::add(const std::string& name, double seconds) {
  std::lock_guard lock(mu_);
  auto& s = sections_[name];
  s.total_seconds += seconds;
  s.calls += 1;
}

TimerStats TimerRegistry::get(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = sections_.find(name);
  return it == sections_.end() ? TimerStats{} : it->second;
}

std::vector<std::pair<std::string, TimerStats>> TimerRegistry::sorted_by_total() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, TimerStats>> out(sections_.begin(), sections_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  return out;
}

void TimerRegistry::clear() {
  std::lock_guard lock(mu_);
  sections_.clear();
}

}  // namespace dp
