#include "common/timer.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace dp {

TimerRegistry& TimerRegistry::instance() {
  static TimerRegistry reg;
  return reg;
}

TimerRegistry::Shard& TimerRegistry::local_shard() {
  // One shard per (thread, registry). The cache covers the singleton-use
  // fast path with a single pointer compare; the rare second registry (a
  // test-local instance) falls back to re-registering.
  thread_local const TimerRegistry* cached_owner = nullptr;
  thread_local std::shared_ptr<Shard> cached_shard;
  if (cached_owner != this) {
    auto shard = std::make_shared<Shard>();
    {
      MutexLock lock(shards_mu_);
      shards_.push_back(shard);
    }
    cached_owner = this;
    cached_shard = std::move(shard);
  }
  return *cached_shard;
}

void TimerRegistry::add(const std::string& name, double seconds) {
  Shard& shard = local_shard();
  MutexLock lock(shard.mu);  // uncontended except during a merge
  auto& s = shard.sections[name];
  s.total_seconds += seconds;
  s.calls += 1;
}

std::map<std::string, TimerStats> TimerRegistry::snapshot() const {
  std::map<std::string, TimerStats> merged;
  MutexLock lock(shards_mu_);
  for (const auto& shard : shards_) {
    MutexLock shard_lock(shard->mu);
    for (const auto& [name, stats] : shard->sections) {
      auto& m = merged[name];
      m.total_seconds += stats.total_seconds;
      m.calls += stats.calls;
    }
  }
  return merged;
}

TimerStats TimerRegistry::get(const std::string& name) const {
  TimerStats out;
  MutexLock lock(shards_mu_);
  for (const auto& shard : shards_) {
    MutexLock shard_lock(shard->mu);
    auto it = shard->sections.find(name);
    if (it == shard->sections.end()) continue;
    out.total_seconds += it->second.total_seconds;
    out.calls += it->second.calls;
  }
  return out;
}

std::vector<std::pair<std::string, TimerStats>> TimerRegistry::sorted_by_total() const {
  const auto merged = snapshot();
  std::vector<std::pair<std::string, TimerStats>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  return out;
}

void TimerRegistry::clear() {
  MutexLock lock(shards_mu_);
  for (const auto& shard : shards_) {
    MutexLock shard_lock(shard->mu);
    shard->sections.clear();
  }
}

ScopedTimer::ScopedTimer(std::string name, const char* trace_category)
    : name_(std::move(name)), trace_category_(trace_category) {
  if (trace_category_ != nullptr && obs::TraceCollector::enabled()) {
    tracing_ = true;
    trace_start_us_ = obs::trace_now_us();
  }
}

ScopedTimer::~ScopedTimer() {
  TimerRegistry::instance().add(name_, t_.seconds());
  if (tracing_)
    obs::TraceCollector::instance().record_complete(
        name_, trace_category_, trace_start_us_, obs::trace_now_us() - trace_start_us_);
}

}  // namespace dp
