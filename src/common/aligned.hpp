// Cache-line / vector-register aligned storage for hot kernel buffers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace dp {

/// Alignment used by all kernel buffers: one 512-bit vector register, which
/// is also a typical cache-line size.
inline constexpr std::size_t kVectorAlign = 64;

/// Minimal aligned allocator so std::vector storage is usable with aligned
/// loads and `omp simd aligned` clauses.
template <class T, std::size_t Align = kVectorAlign>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats the default rebind deduction.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    void* p = std::aligned_alloc(Align, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace dp
