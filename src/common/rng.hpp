// Deterministic, splittable pseudo-random numbers (xoshiro256++).
//
// Every stochastic choice in the library (initial velocities, synthetic
// configurations, weight initialization of the stand-in "trained" networks)
// flows through this generator so that runs are reproducible from a seed.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dp {

/// xoshiro256++ by Blackman & Vigna, seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (one value cached).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// A random unit vector, uniform on the sphere.
  Vec3 unit_vector();

  /// A statistically independent generator (jump-free split via reseeding
  /// from this stream); used to give each thread/rank its own stream.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace dp
