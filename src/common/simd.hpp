// Runtime-dispatched SIMD layer for the tabulated hot loops (paper Sec
// 3.5.3 / Fig 5: the A64FX port hand-vectorizes the quintic table walk and
// the tanh table with 512-bit SVE; on x86 the same kernels map onto AVX2 and
// AVX-512).
//
// Design:
//   * The instruction-set level is picked ONCE at startup: CPUID caps the
//     hardware level, the CMake option -DDP_SIMD_LEVEL=scalar|avx2|avx512
//     caps it at configure time, and the env var DP_SIMD=scalar|avx2|avx512
//     lowers it per run (testing / benchmarking). `active()` returns the
//     resolved level, `lanes()` its vector width in doubles.
//   * Kernels live next to their tables (tanh_table.cpp, table.cpp, ...) as
//     ordinary functions annotated DP_TARGET_AVX2 / DP_TARGET_AVX512, so the
//     whole tree still compiles with the generic (-DDP_ENABLE_NATIVE=OFF)
//     flags and the AVX paths are only ever *executed* after the CPUID
//     check. Vector values never cross a non-annotated ABI boundary (that
//     would be a -Wpsabi hazard): dispatchers pass scalars and pointers.
//   * All raw intrinsics are confined to this header (dplint rule
//     raw-intrinsics); kernels use the dp::simd wrapper ops below, which are
//     always_inline and carry the same target attribute as their callers.
//
// Numerical contract (what the parity suite pins down): at a given level the
// AoS and blocked table walks use the *same* elementwise operation sequence
// — vector lanes use hardware FMA and scalar tails use std::fma (which the
// annotated functions compile to the scalar FMA instruction) — so the two
// layouts stay bitwise identical at every level. Level::Scalar keeps the
// exact pre-SIMD expressions; AVX levels may differ from it by an ulp.
#pragma once

#include <cstddef>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#include <immintrin.h>
#define DP_SIMD_X86 1
#define DP_TARGET_AVX2 __attribute__((target("avx2,fma")))
// f16c (the vcvtph2ps half->float widener) is NOT implied by the avx2 target
// attribute, so the half-precision table kernels carry their own superset
// attribute and dispatchers additionally gate on has_f16c(). AVX-512 needs no
// extra feature: _mm512_cvtph_ps is plain AVX512F.
#define DP_TARGET_AVX2_F16C __attribute__((target("avx2,fma,f16c")))
#define DP_TARGET_AVX512 __attribute__((target("avx2,fma,avx512f,avx512dq")))
#else
#define DP_SIMD_X86 0
#define DP_TARGET_AVX2
#define DP_TARGET_AVX2_F16C
#define DP_TARGET_AVX512
#endif

namespace dp::simd {

/// Instruction-set levels, ordered so numeric comparison means capability.
enum class Level : int { Scalar = 0, AVX2 = 1, AVX512 = 2 };

/// Best level this binary may use: min(CPUID, -DDP_SIMD_LEVEL cap).
Level max_supported();

/// The level the kernels dispatch on: max_supported() lowered by DP_SIMD,
/// resolved once on first use.
Level active();

/// Test/bench hook: override the active level (clamped to max_supported()).
void force(Level lvl);

/// "scalar" / "avx2" / "avx512".
const char* name(Level lvl);

/// Vector width in doubles at `lvl` (1 / 4 / 8).
std::size_t lanes(Level lvl);

/// Vector width in doubles at active().
std::size_t lanes();

/// Vector width in floats at `lvl` (1 / 8 / 16) — the float-lane kernels
/// move twice as many channels per instruction as the double ones.
std::size_t lanes_sp(Level lvl);

/// Vector width in floats at active().
std::size_t lanes_sp();

/// CPUID: vcvtph2ps available? Gates the AVX2 half-precision table kernels
/// (see DP_TARGET_AVX2_F16C above). Always true on AVX-512 hardware.
bool has_f16c();

#if DP_SIMD_X86

#define DP_SIMD_OP inline __attribute__((always_inline))

// ---------------------------------------------------------------------------
// AVX2: 4 doubles per vector, 4 x i32 indices. Callers must be annotated
// DP_TARGET_AVX2 (or a superset) — always_inline enforces this at compile
// time.
// ---------------------------------------------------------------------------
using v4d = __m256d;
using v4i = __m128i;

DP_TARGET_AVX2 DP_SIMD_OP v4d v4_set1(double a) { return _mm256_set1_pd(a); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_load(const double* p) { return _mm256_load_pd(p); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_loadu(const double* p) { return _mm256_loadu_pd(p); }
DP_TARGET_AVX2 DP_SIMD_OP void v4_storeu(double* p, v4d a) { _mm256_storeu_pd(p, a); }
/// Non-temporal store: bypasses the cache hierarchy, for output runs far
/// larger than the LLC where a regular store's read-for-ownership doubles
/// the memory traffic. Requires a 32-byte-aligned p; stored bits are
/// identical to v4_storeu. Callers must end the run with store_fence().
DP_TARGET_AVX2 DP_SIMD_OP void v4_stream(double* p, v4d a) { _mm256_stream_pd(p, a); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_add(v4d a, v4d b) { return _mm256_add_pd(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_sub(v4d a, v4d b) { return _mm256_sub_pd(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_mul(v4d a, v4d b) { return _mm256_mul_pd(a, b); }
/// a * b + c, single rounding.
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_fmadd(v4d a, v4d b, v4d c) { return _mm256_fmadd_pd(a, b, c); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_abs(v4d a) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
}
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_neg(v4d a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_cmp_ge(v4d a, v4d b) {
  return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
}
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_cmp_lt(v4d a, v4d b) {
  return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
}
/// b where mask, else a (mask from v4_cmp_*).
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_blend(v4d a, v4d b, v4d mask) {
  return _mm256_blendv_pd(a, b, mask);
}
/// Truncating double -> i32 conversion (the vector form of (size_t)(u)).
DP_TARGET_AVX2 DP_SIMD_OP v4i v4_cvtt_i32(v4d a) { return _mm256_cvttpd_epi32(a); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_cvt_f64(v4i a) { return _mm256_cvtepi32_pd(a); }
/// p[idx[l]] per lane, 8-byte scale. The masked form with an explicit zero
/// source: the plain intrinsic's undefined destination register trips GCC's
/// -Wmaybe-uninitialized; the full mask makes it the same single gather.
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_gather(const double* p, v4i idx) {
  const v4d zero = _mm256_setzero_pd();
  return _mm256_mask_i32gather_pd(zero, p, idx, _mm256_cmp_pd(zero, zero, _CMP_EQ_OQ), 8);
}
DP_TARGET_AVX2 DP_SIMD_OP v4i i4_set1(int a) { return _mm_set1_epi32(a); }
DP_TARGET_AVX2 DP_SIMD_OP v4i i4_add(v4i a, v4i b) { return _mm_add_epi32(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v4i i4_min(v4i a, v4i b) { return _mm_min_epi32(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v4i i4_max(v4i a, v4i b) { return _mm_max_epi32(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v4d v4_zero() { return _mm256_setzero_pd(); }
/// Horizontal sum, fixed lane order: (l0+l2) + (l1+l3). One compiled
/// sequence per level so dot-product reductions are bitwise reproducible.
DP_TARGET_AVX2 DP_SIMD_OP double v4_reduce_add(v4d a) {
  __m128d lo = _mm256_castpd256_pd128(a);
  __m128d hi = _mm256_extractf128_pd(a, 1);
  __m128d s = _mm_add_pd(lo, hi);                    // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// ---------------------------------------------------------------------------
// AVX2 float lane: 8 floats per vector — the mixed-precision table walk and
// the float contraction kernels move twice the channels per instruction.
// Same discipline as the double ops: callers are DP_TARGET_AVX2 (or the
// F16C/AVX-512 supersets), values never cross a non-annotated ABI boundary.
// ---------------------------------------------------------------------------
using v8f = __m256;

DP_TARGET_AVX2 DP_SIMD_OP v8f f8_set1(float a) { return _mm256_set1_ps(a); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_zero() { return _mm256_setzero_ps(); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_load(const float* p) { return _mm256_load_ps(p); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_loadu(const float* p) { return _mm256_loadu_ps(p); }
DP_TARGET_AVX2 DP_SIMD_OP void f8_storeu(float* p, v8f a) { _mm256_storeu_ps(p, a); }
/// Non-temporal store (see v4_stream); requires a 32-byte-aligned p.
DP_TARGET_AVX2 DP_SIMD_OP void f8_stream(float* p, v8f a) { _mm256_stream_ps(p, a); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_add(v8f a, v8f b) { return _mm256_add_ps(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_sub(v8f a, v8f b) { return _mm256_sub_ps(a, b); }
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_mul(v8f a, v8f b) { return _mm256_mul_ps(a, b); }
/// a * b + c, single rounding.
DP_TARGET_AVX2 DP_SIMD_OP v8f f8_fmadd(v8f a, v8f b, v8f c) { return _mm256_fmadd_ps(a, b, c); }
/// Horizontal sum, fixed lane order: pairwise 128-bit fold then the same
/// shuffle tree every time — reproducible, like v4_reduce_add.
DP_TARGET_AVX2 DP_SIMD_OP float f8_reduce_add(v8f a) {
  __m128 lo = _mm256_castps256_ps128(a);
  __m128 hi = _mm256_extractf128_ps(a, 1);
  __m128 s = _mm_add_ps(lo, hi);                     // {l0+l4, l1+l5, l2+l6, l3+l7}
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));            // {+l2+l6, +l3+l7, ...}
  return _mm_cvtss_f32(_mm_add_ss(s, _mm_movehdup_ps(s)));
}
/// Widen 8 IEEE binary16 values (stored contiguously) to 8 floats. The
/// conversion is exact — every half is representable as a float — so the
/// half table walk matches the scalar static_cast widening bit for bit.
DP_TARGET_AVX2_F16C DP_SIMD_OP v8f f8_load_h(const void* p) {
  return _mm256_cvtph_ps(_mm_loadu_si128(static_cast<const __m128i*>(p)));
}

// ---------------------------------------------------------------------------
// AVX-512: 8 doubles per vector, 8 x i32 indices, predicate masks. Callers
// must be annotated DP_TARGET_AVX512.
// ---------------------------------------------------------------------------
using v8d = __m512d;
using v8i = __m256i;
using m8 = __mmask8;
using m16 = __mmask16;

DP_TARGET_AVX512 DP_SIMD_OP v8d v8_set1(double a) { return _mm512_set1_pd(a); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_load(const double* p) { return _mm512_load_pd(p); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_loadu(const double* p) { return _mm512_loadu_pd(p); }
DP_TARGET_AVX512 DP_SIMD_OP void v8_storeu(double* p, v8d a) { _mm512_storeu_pd(p, a); }
/// Non-temporal store (see v4_stream); requires a 64-byte-aligned p.
DP_TARGET_AVX512 DP_SIMD_OP void v8_stream(double* p, v8d a) { _mm512_stream_pd(p, a); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_add(v8d a, v8d b) { return _mm512_add_pd(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_sub(v8d a, v8d b) { return _mm512_sub_pd(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_mul(v8d a, v8d b) { return _mm512_mul_pd(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_fmadd(v8d a, v8d b, v8d c) {
  return _mm512_fmadd_pd(a, b, c);
}
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_abs(v8d a) {
  return _mm512_andnot_pd(_mm512_set1_pd(-0.0), a);
}
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_neg(v8d a) {
  return _mm512_xor_pd(a, _mm512_set1_pd(-0.0));
}
DP_TARGET_AVX512 DP_SIMD_OP m8 v8_cmp_ge(v8d a, v8d b) {
  return _mm512_cmp_pd_mask(a, b, _CMP_GE_OQ);
}
DP_TARGET_AVX512 DP_SIMD_OP m8 v8_cmp_lt(v8d a, v8d b) {
  return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
}
/// b where mask bit set, else a.
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_blend(v8d a, v8d b, m8 mask) {
  return _mm512_mask_blend_pd(mask, a, b);
}
// Masked conversion forms with zero sources, for the same GCC
// -Wmaybe-uninitialized reason as the gathers (the plain intrinsics read an
// undefined destination); the full mask converts every lane.
DP_TARGET_AVX512 DP_SIMD_OP v8i v8_cvtt_i32(v8d a) {
  return _mm512_mask_cvttpd_epi32(_mm256_setzero_si256(), static_cast<m8>(0xff), a);
}
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_cvt_f64(v8i a) {
  return _mm512_mask_cvtepi32_pd(_mm512_setzero_pd(), static_cast<m8>(0xff), a);
}
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_gather(const double* p, v8i idx) {
  // Masked form with a zero source for the same -Wmaybe-uninitialized
  // reason as v4_gather; mask 0xff gathers every lane.
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(), static_cast<m8>(0xff), idx, p, 8);
}
DP_TARGET_AVX512 DP_SIMD_OP v8i i8_set1(int a) { return _mm256_set1_epi32(a); }
DP_TARGET_AVX512 DP_SIMD_OP v8i i8_add(v8i a, v8i b) { return _mm256_add_epi32(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8i i8_min(v8i a, v8i b) { return _mm256_min_epi32(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8i i8_max(v8i a, v8i b) { return _mm256_max_epi32(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v8d v8_zero() { return _mm512_setzero_pd(); }
/// Horizontal sum, fixed lane order: 256-bit halves fold first, then the
/// v4_reduce_add tree. Hand-written (not _mm512_reduce_add_pd) because the
/// compiler expansion routes through _mm512_extractf64x4_pd's undefined merge
/// operand, which trips -Werror=maybe-uninitialized on GCC 12; the maskz
/// extract has a defined (zero) source and compiles to the same vextractf64x4.
DP_TARGET_AVX512 DP_SIMD_OP double v8_reduce_add(v8d a) {
  // Both halves via maskz extract: GCC 12 lowers _mm512_castpd512_pd256
  // through the undefined-merge extract too, so the cast is no escape hatch.
  __m256d lo = _mm512_maskz_extractf64x4_pd(static_cast<m8>(0xf), a, 0);
  __m256d hi = _mm512_maskz_extractf64x4_pd(static_cast<m8>(0xf), a, 1);
  __m256d s4 = _mm256_add_pd(lo, hi);                // {l0+l4, l1+l5, l2+l6, l3+l7}
  __m128d lo2 = _mm256_castpd256_pd128(s4);
  __m128d hi2 = _mm256_extractf128_pd(s4, 1);
  __m128d s = _mm_add_pd(lo2, hi2);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

// ---------------------------------------------------------------------------
// AVX-512 float lane: 16 floats per vector — one vector covers a whole
// 16-channel table block.
// ---------------------------------------------------------------------------
using v16f = __m512;

DP_TARGET_AVX512 DP_SIMD_OP v16f f16_set1(float a) { return _mm512_set1_ps(a); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_zero() { return _mm512_setzero_ps(); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_load(const float* p) { return _mm512_load_ps(p); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_loadu(const float* p) { return _mm512_loadu_ps(p); }
DP_TARGET_AVX512 DP_SIMD_OP void f16_storeu(float* p, v16f a) { _mm512_storeu_ps(p, a); }
/// Non-temporal store (see v4_stream); requires a 64-byte-aligned p.
DP_TARGET_AVX512 DP_SIMD_OP void f16_stream(float* p, v16f a) { _mm512_stream_ps(p, a); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_add(v16f a, v16f b) { return _mm512_add_ps(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_sub(v16f a, v16f b) { return _mm512_sub_ps(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_mul(v16f a, v16f b) { return _mm512_mul_ps(a, b); }
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_fmadd(v16f a, v16f b, v16f c) {
  return _mm512_fmadd_ps(a, b, c);
}
/// Horizontal sum, fixed lane order: 256-bit halves fold first, then the
/// f8_reduce_add tree. Hand-written for the same -Werror=maybe-uninitialized
/// reason as v8_reduce_add (maskz extract instead of the undefined-merge
/// compiler expansion; extractf32x8 is AVX512DQ, which the target includes).
DP_TARGET_AVX512 DP_SIMD_OP float f16_reduce_add(v16f a) {
  __m256 lo = _mm512_maskz_extractf32x8_ps(static_cast<m8>(0xff), a, 0);
  __m256 hi = _mm512_maskz_extractf32x8_ps(static_cast<m8>(0xff), a, 1);
  __m256 s8 = _mm256_add_ps(lo, hi);                 // {l0+l8, l1+l9, ..., l7+l15}
  __m128 lo2 = _mm256_castps256_ps128(s8);
  __m128 hi2 = _mm256_extractf128_ps(s8, 1);
  __m128 s = _mm_add_ps(lo2, hi2);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(_mm_add_ss(s, _mm_movehdup_ps(s)));
}
/// Widen 16 contiguous IEEE binary16 values to 16 floats (exact; AVX512F).
/// Maskz form with an all-ones mask: the plain _mm512_cvtph_ps expansion
/// carries an undefined merge operand that trips -Werror=maybe-uninitialized
/// on GCC 12 (same story as v8_reduce_add); vcvtph2ps emitted either way.
DP_TARGET_AVX512 DP_SIMD_OP v16f f16_load_h(const void* p) {
  return _mm512_maskz_cvtph_ps(static_cast<m16>(0xffff),
                               _mm256_loadu_si256(static_cast<const __m256i*>(p)));
}

/// Drains the write-combining buffers after a run of v4_stream/v8_stream
/// stores, so later reads (possibly from another thread, after a barrier)
/// observe them. sfence is baseline x86-64 — no target attribute needed.
inline __attribute__((always_inline)) void store_fence() { _mm_sfence(); }

#undef DP_SIMD_OP

#endif  // DP_SIMD_X86

}  // namespace dp::simd
