// Analytic FLOP / memory-traffic accounting.
//
// The paper's argument is roofline-style: the inference is memory-bound, so
// tabulation (fewer FLOPs) and fusion (less DRAM traffic for G_i) translate
// into speedups proportional to the traffic reduction. Kernels self-report
// their arithmetic and traffic here; the perf module converts the totals into
// projected times on modelled machines (V100, A64FX).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dp {

/// Arithmetic + traffic cost of one kernel invocation (or an accumulation).
struct KernelCost {
  double flops = 0.0;          ///< floating point operations
  double bytes_read = 0.0;     ///< bytes loaded from memory
  double bytes_written = 0.0;  ///< bytes stored to memory

  double bytes_total() const { return bytes_read + bytes_written; }
  /// Arithmetic intensity in FLOP/byte; 0 when no traffic was recorded.
  double intensity() const {
    const double b = bytes_total();
    return b > 0.0 ? flops / b : 0.0;
  }

  KernelCost& operator+=(const KernelCost& o) {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
  friend KernelCost operator+(KernelCost a, const KernelCost& b) { return a += b; }
  KernelCost& operator*=(double s) {
    flops *= s;
    bytes_read *= s;
    bytes_written *= s;
    return *this;
  }
  friend KernelCost operator*(KernelCost a, double s) { return a *= s; }
};

/// Thread-safe process-wide registry of per-kernel cost totals.
class CostRegistry {
 public:
  static CostRegistry& instance();

  void add(const std::string& name, const KernelCost& cost);
  KernelCost get(const std::string& name) const;
  KernelCost total() const;
  std::vector<std::pair<std::string, KernelCost>> entries() const;
  void clear();

 private:
  mutable Mutex mu_;
  std::map<std::string, KernelCost> costs_ DP_GUARDED_BY(mu_);
};

}  // namespace dp
