#include "common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dp::simd {

namespace {

// Configure-time cap: 0 scalar, 1 avx2, 2 avx512 (CMake -DDP_SIMD_LEVEL).
#ifndef DP_SIMD_LEVEL_CAP
#define DP_SIMD_LEVEL_CAP 2
#endif

int hardware_level() {
#if DP_SIMD_X86
  // FMA is part of the numerical contract (std::fma tails must be cheap),
  // so AVX2 without FMA dispatches scalar. The AVX-512 kernels use DQ for
  // the double-precision bitwise ops.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq"))
      return static_cast<int>(Level::AVX512);
    return static_cast<int>(Level::AVX2);
  }
#endif
  return static_cast<int>(Level::Scalar);
}

int clamp_to_supported(int lvl) {
  const int cap = static_cast<int>(max_supported());
  if (lvl > cap) return cap;
  if (lvl < 0) return 0;
  return lvl;
}

int resolve_default() {
  int lvl = static_cast<int>(max_supported());
  if (const char* env = std::getenv("DP_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      lvl = static_cast<int>(Level::Scalar);
    } else if (std::strcmp(env, "avx2") == 0) {
      lvl = clamp_to_supported(static_cast<int>(Level::AVX2));
    } else if (std::strcmp(env, "avx512") == 0) {
      lvl = clamp_to_supported(static_cast<int>(Level::AVX512));
    } else if (env[0] != '\0') {
      std::fprintf(stderr, "dp: ignoring unknown DP_SIMD=%s (want scalar|avx2|avx512)\n",
                   env);
    }
  }
  return lvl;
}

// -1 = unresolved. Relaxed atomic: the first-use race resolves to the same
// value on every thread; force() is a single-threaded test/bench hook.
std::atomic<int> g_active{-1};

}  // namespace

Level max_supported() {
  static const int lvl = [] {
    const int hw = hardware_level();
    return hw < DP_SIMD_LEVEL_CAP ? hw : DP_SIMD_LEVEL_CAP;
  }();
  return static_cast<Level>(lvl);
}

Level active() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_default();
    g_active.store(v, std::memory_order_relaxed);
  }
  return static_cast<Level>(v);
}

void force(Level lvl) {
  g_active.store(clamp_to_supported(static_cast<int>(lvl)), std::memory_order_relaxed);
}

const char* name(Level lvl) {
  switch (lvl) {
    case Level::AVX512:
      return "avx512";
    case Level::AVX2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::size_t lanes(Level lvl) {
  switch (lvl) {
    case Level::AVX512:
      return 8;
    case Level::AVX2:
      return 4;
    default:
      return 1;
  }
}

std::size_t lanes() { return lanes(active()); }

std::size_t lanes_sp(Level lvl) {
  switch (lvl) {
    case Level::AVX512:
      return 16;
    case Level::AVX2:
      return 8;
    default:
      return 1;
  }
}

std::size_t lanes_sp() { return lanes_sp(active()); }

bool has_f16c() {
#if DP_SIMD_X86
  static const bool v = __builtin_cpu_supports("f16c");
  return v;
#else
  return false;
#endif
}

}  // namespace dp::simd
