#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace dp {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection-free Lemire-style bounded draw is overkill here; modulo bias is
  // negligible for the small n used in tests and workloads.
  return n == 0 ? 0 : next_u64() % n;
}

double Rng::gaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box-Muller on (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double phi = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(phi);
  have_cached_ = true;
  return r * std::cos(phi);
}

Vec3 Rng::unit_vector() {
  // Marsaglia rejection in the unit disk.
  for (;;) {
    double a = uniform(-1.0, 1.0);
    double b = uniform(-1.0, 1.0);
    double s = a * a + b * b;
    if (s >= 1.0 || s == 0.0) continue;
    double f = 2.0 * std::sqrt(1.0 - s);
    return {a * f, b * f, 1.0 - 2.0 * s};
  }
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace dp
