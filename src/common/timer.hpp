// Wall-clock timing with a process-wide named-section registry.
//
// The figure harnesses (Fig 7 / Fig 8 step-by-step speedups) time whole
// inference paths; the registry lets kernels self-report so a breakdown table
// can be printed per run. The hot path (add / ScopedTimer destruction) is
// sharded per thread: each thread accumulates into its own map behind its
// own (uncontended) mutex, and readers merge the shards — no global lock is
// ever taken while kernels run.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dp {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulated statistics for one named timing section.
struct TimerStats {
  double total_seconds = 0.0;
  std::uint64_t calls = 0;
  double mean_seconds() const { return calls ? total_seconds / calls : 0.0; }
};

/// Thread-sharded registry of named sections. One global instance. add()
/// touches only the calling thread's shard; get()/sorted_by_total() merge
/// every shard on read (including shards of threads that have exited).
class TimerRegistry {
 public:
  static TimerRegistry& instance();

  void add(const std::string& name, double seconds);
  TimerStats get(const std::string& name) const;
  std::vector<std::pair<std::string, TimerStats>> sorted_by_total() const;
  /// Merged snapshot of every section.
  std::map<std::string, TimerStats> snapshot() const;
  void clear();

 private:
  struct Shard {
    Mutex mu;  ///< contended only by a concurrent merge/clear
    std::map<std::string, TimerStats> sections DP_GUARDED_BY(mu);
  };

  Shard& local_shard();

  mutable Mutex shards_mu_;  ///< protects the shard list, not the data
  std::vector<std::shared_ptr<Shard>> shards_ DP_GUARDED_BY(shards_mu_);
};

/// RAII section timer that reports into the global registry, and — when a
/// trace category is given and tracing is enabled (obs::TraceCollector) —
/// also emits a Chrome-trace span of the same name.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, const char* trace_category = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  const char* trace_category_;
  double trace_start_us_ = 0.0;  ///< valid only when tracing was on at entry
  bool tracing_ = false;
  WallTimer t_;
};

/// Runs `fn` repeatedly until at least `min_seconds` of wall time or
/// `max_iters` iterations have elapsed; returns seconds per iteration.
/// Used by the figure harnesses for stable small-kernel timings.
///
/// With `repeats > 1` the measurement is split into `repeats` independent
/// batches (each `min_seconds / repeats` long) and the median batch is
/// returned, so one noisy batch — a scheduler hiccup, a frequency ramp —
/// cannot skew a figure harness number.
template <class Fn>
double time_per_call(Fn&& fn, double min_seconds = 0.05, int max_iters = 1000,
                     int repeats = 1) {
  // Warm-up: one untimed call (page faults, lazy allocations).
  fn();
  repeats = std::max(repeats, 1);
  const double min_batch = min_seconds / repeats;
  const int iters_batch = std::max(max_iters / repeats, 1);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    int iters = 0;
    do {
      fn();
      ++iters;
    } while (t.seconds() < min_batch && iters < iters_batch);
    samples.push_back(t.seconds() / iters);
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n % 2 ? samples[n / 2] : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

}  // namespace dp
