// Wall-clock timing with a process-wide named-section registry.
//
// The figure harnesses (Fig 7 / Fig 8 step-by-step speedups) time whole
// inference paths; the registry lets kernels self-report so a breakdown table
// can be printed per run.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dp {

/// Simple monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulated statistics for one named timing section.
struct TimerStats {
  double total_seconds = 0.0;
  std::uint64_t calls = 0;
  double mean_seconds() const { return calls ? total_seconds / calls : 0.0; }
};

/// Thread-safe registry of named sections. One global instance.
class TimerRegistry {
 public:
  static TimerRegistry& instance();

  void add(const std::string& name, double seconds);
  TimerStats get(const std::string& name) const;
  std::vector<std::pair<std::string, TimerStats>> sorted_by_total() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, TimerStats> sections_;
};

/// RAII section timer that reports into the global registry.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) : name_(std::move(name)) {}
  ~ScopedTimer() { TimerRegistry::instance().add(name_, t_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  WallTimer t_;
};

/// Run `fn` repeatedly until at least `min_seconds` of wall time or
/// `max_iters` iterations have elapsed; returns seconds per iteration.
/// Used by the figure harnesses for stable small-kernel timings.
template <class Fn>
double time_per_call(Fn&& fn, double min_seconds = 0.05, int max_iters = 1000) {
  // Warm-up: one untimed call (page faults, lazy allocations).
  fn();
  WallTimer t;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (t.seconds() < min_seconds && iters < max_iters);
  return t.seconds() / iters;
}

}  // namespace dp
