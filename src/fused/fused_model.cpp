#include "fused/fused_model.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "common/cost.hpp"
#include "common/simd.hpp"
#include "common/team.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dp::fused {

using core::ModelConfig;
using tab::TabulatedEmbedding;

namespace {

// ---------------------------------------------------------------------------
// Per-level kernels for the two fused hot loops (ROADMAP item 1 remainder):
// the pass-1 rank-1 outer product A_c += rrow[c] * row (Fig 4 (c)) and the
// pass-2 per-slot gradient contraction. Level::Scalar keeps the exact
// pre-SIMD expressions (the `_scalar` kernels below are the seed bodies,
// pragma included — removing the pragma could change the autovectorized
// reduction bits under the generic build). The vector kernels use wrapper
// FMAs with std::fma tails; dot-product reductions reassociate (vector
// partials folded by v*_reduce_add, then the tail), which is covered by the
// reduction clause of the numerical contract — relative bounds, not ulps.
// Dispatch is hoisted out of the slot loop: compute() resolves the function
// pointers once per call.
// ---------------------------------------------------------------------------

/// Pass-2 per-slot contraction: g_rmat[c] = <g_a[c], row>, plus the dE/ds
/// table term <R~ g_a, drow> folded into column 0. Kept noinline so exactly
/// ONE compiled instance serves both the cached and the re-evaluated path —
/// if the compiler clones the reduction per branch (different pointer
/// provenance), the clones may contract/unroll differently and the
/// "staging is an exact rewrite" invariant breaks in the last bit.
__attribute__((noinline)) void slot_gradient_scalar(const double* rrow, const double* row,
                                                    const double* drow, const double* g_a,
                                                    std::size_t m, double* grow) {
  double acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0, acc_s = 0;
  const double r0 = rrow[0], r1 = rrow[1], r2 = rrow[2], r3 = rrow[3];
  const double* ga0 = g_a;
  const double* ga1 = g_a + m;
  const double* ga2 = g_a + 2 * m;
  const double* ga3 = g_a + 3 * m;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3, acc_s)
  for (std::size_t b = 0; b < m; ++b) {
    const double gb = row[b];
    acc0 += ga0[b] * gb;
    acc1 += ga1[b] * gb;
    acc2 += ga2[b] * gb;
    acc3 += ga3[b] * gb;
    acc_s += (r0 * ga0[b] + r1 * ga1[b] + r2 * ga2[b] + r3 * ga3[b]) * drow[b];
  }
  grow[0] = acc0 + acc_s;
  grow[1] = acc1;
  grow[2] = acc2;
  grow[3] = acc3;
}

/// Pass-1 rank-1 update: A_c += rrow[c] * row for the four env columns.
void rank1_update_scalar(const double* rrow, const double* row, std::size_t m,
                         double* a_mat) {
  for (int c = 0; c < 4; ++c) {
    const double rv = rrow[c];
    double* arow = a_mat + static_cast<std::size_t>(c) * m;
#pragma omp simd
    for (std::size_t b = 0; b < m; ++b) arow[b] += rv * row[b];
  }
}

#if DP_SIMD_X86

DP_TARGET_AVX2 void slot_gradient_avx2(const double* rrow, const double* row,
                                       const double* drow, const double* g_a, std::size_t m,
                                       double* grow) {
  using namespace simd;
  const double r0 = rrow[0], r1 = rrow[1], r2 = rrow[2], r3 = rrow[3];
  const double* ga0 = g_a;
  const double* ga1 = g_a + m;
  const double* ga2 = g_a + 2 * m;
  const double* ga3 = g_a + 3 * m;
  const v4d vr0 = v4_set1(r0), vr1 = v4_set1(r1), vr2 = v4_set1(r2), vr3 = v4_set1(r3);
  v4d v0 = v4_zero(), v1 = v4_zero(), v2 = v4_zero(), v3 = v4_zero(), vs = v4_zero();
  std::size_t b = 0;
  for (; b + 4 <= m; b += 4) {
    const v4d a0 = v4_loadu(ga0 + b), a1 = v4_loadu(ga1 + b), a2 = v4_loadu(ga2 + b),
              a3 = v4_loadu(ga3 + b);
    const v4d gb = v4_loadu(row + b);
    v0 = v4_fmadd(a0, gb, v0);
    v1 = v4_fmadd(a1, gb, v1);
    v2 = v4_fmadd(a2, gb, v2);
    v3 = v4_fmadd(a3, gb, v3);
    v4d w = v4_mul(vr0, a0);
    w = v4_fmadd(vr1, a1, w);
    w = v4_fmadd(vr2, a2, w);
    w = v4_fmadd(vr3, a3, w);
    vs = v4_fmadd(w, v4_loadu(drow + b), vs);
  }
  double acc0 = v4_reduce_add(v0), acc1 = v4_reduce_add(v1), acc2 = v4_reduce_add(v2),
         acc3 = v4_reduce_add(v3), acc_s = v4_reduce_add(vs);
  for (; b < m; ++b) {
    const double gb = row[b];
    acc0 = std::fma(ga0[b], gb, acc0);
    acc1 = std::fma(ga1[b], gb, acc1);
    acc2 = std::fma(ga2[b], gb, acc2);
    acc3 = std::fma(ga3[b], gb, acc3);
    double w = r0 * ga0[b];
    w = std::fma(r1, ga1[b], w);
    w = std::fma(r2, ga2[b], w);
    w = std::fma(r3, ga3[b], w);
    acc_s = std::fma(w, drow[b], acc_s);
  }
  grow[0] = acc0 + acc_s;
  grow[1] = acc1;
  grow[2] = acc2;
  grow[3] = acc3;
}

DP_TARGET_AVX512 void slot_gradient_avx512(const double* rrow, const double* row,
                                           const double* drow, const double* g_a,
                                           std::size_t m, double* grow) {
  using namespace simd;
  const double r0 = rrow[0], r1 = rrow[1], r2 = rrow[2], r3 = rrow[3];
  const double* ga0 = g_a;
  const double* ga1 = g_a + m;
  const double* ga2 = g_a + 2 * m;
  const double* ga3 = g_a + 3 * m;
  const v8d vr0 = v8_set1(r0), vr1 = v8_set1(r1), vr2 = v8_set1(r2), vr3 = v8_set1(r3);
  v8d v0 = v8_zero(), v1 = v8_zero(), v2 = v8_zero(), v3 = v8_zero(), vs = v8_zero();
  std::size_t b = 0;
  for (; b + 8 <= m; b += 8) {
    const v8d a0 = v8_loadu(ga0 + b), a1 = v8_loadu(ga1 + b), a2 = v8_loadu(ga2 + b),
              a3 = v8_loadu(ga3 + b);
    const v8d gb = v8_loadu(row + b);
    v0 = v8_fmadd(a0, gb, v0);
    v1 = v8_fmadd(a1, gb, v1);
    v2 = v8_fmadd(a2, gb, v2);
    v3 = v8_fmadd(a3, gb, v3);
    v8d w = v8_mul(vr0, a0);
    w = v8_fmadd(vr1, a1, w);
    w = v8_fmadd(vr2, a2, w);
    w = v8_fmadd(vr3, a3, w);
    vs = v8_fmadd(w, v8_loadu(drow + b), vs);
  }
  double acc0 = v8_reduce_add(v0), acc1 = v8_reduce_add(v1), acc2 = v8_reduce_add(v2),
         acc3 = v8_reduce_add(v3), acc_s = v8_reduce_add(vs);
  for (; b < m; ++b) {
    const double gb = row[b];
    acc0 = std::fma(ga0[b], gb, acc0);
    acc1 = std::fma(ga1[b], gb, acc1);
    acc2 = std::fma(ga2[b], gb, acc2);
    acc3 = std::fma(ga3[b], gb, acc3);
    double w = r0 * ga0[b];
    w = std::fma(r1, ga1[b], w);
    w = std::fma(r2, ga2[b], w);
    w = std::fma(r3, ga3[b], w);
    acc_s = std::fma(w, drow[b], acc_s);
  }
  grow[0] = acc0 + acc_s;
  grow[1] = acc1;
  grow[2] = acc2;
  grow[3] = acc3;
}

DP_TARGET_AVX2 void rank1_update_avx2(const double* rrow, const double* row, std::size_t m,
                                      double* a_mat) {
  using namespace simd;
  for (int c = 0; c < 4; ++c) {
    const double rv = rrow[c];
    const v4d vrv = v4_set1(rv);
    double* arow = a_mat + static_cast<std::size_t>(c) * m;
    std::size_t b = 0;
    for (; b + 4 <= m; b += 4)
      v4_storeu(arow + b, v4_fmadd(vrv, v4_loadu(row + b), v4_loadu(arow + b)));
    for (; b < m; ++b) arow[b] = std::fma(rv, row[b], arow[b]);
  }
}

DP_TARGET_AVX512 void rank1_update_avx512(const double* rrow, const double* row,
                                          std::size_t m, double* a_mat) {
  using namespace simd;
  for (int c = 0; c < 4; ++c) {
    const double rv = rrow[c];
    const v8d vrv = v8_set1(rv);
    double* arow = a_mat + static_cast<std::size_t>(c) * m;
    std::size_t b = 0;
    for (; b + 8 <= m; b += 8)
      v8_storeu(arow + b, v8_fmadd(vrv, v8_loadu(row + b), v8_loadu(arow + b)));
    for (; b < m; ++b) arow[b] = std::fma(rv, row[b], arow[b]);
  }
}

#endif  // DP_SIMD_X86

using SlotGradientFn = void (*)(const double*, const double*, const double*, const double*,
                                std::size_t, double*);
using Rank1Fn = void (*)(const double*, const double*, std::size_t, double*);

SlotGradientFn pick_slot_gradient(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return slot_gradient_avx512;
  if (lvl == simd::Level::AVX2) return slot_gradient_avx2;
#else
  (void)lvl;
#endif
  return slot_gradient_scalar;
}

Rank1Fn pick_rank1(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return rank1_update_avx512;
  if (lvl == simd::Level::AVX2) return rank1_update_avx2;
#else
  (void)lvl;
#endif
  return rank1_update_scalar;
}

}  // namespace

FusedDP::FusedDP(const tab::TabulatedDP& tabulated, FusedOptions opts)
    : tab_(tabulated), opts_(opts) {}

void FusedDP::prepare(std::size_t n) {
  const ModelConfig& cfg = tab_.model().config();
  const std::size_t m = cfg.m();
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  scratch_.resize(static_cast<std::size_t>(std::max(1, omp_get_max_threads())));
  for (ThreadScratch& sc : scratch_) {
    sc.g_row.resize(m);
    sc.dg_row.resize(m);
    sc.a_mat.resize(4 * m);
    sc.g_a.resize(4 * m);
    if (opts_.cache_rows) sc.row_cache.resize(static_cast<std::size_t>(cfg.nm()) * 2 * m);
  }
}

std::size_t FusedDP::workspace_bytes() const {
  std::size_t b = env_.storage_bytes() + env_ws_.bytes() + prod_ws_.bytes() +
                  g_rmat_.capacity() * sizeof(double) +
                  atom_energy_.capacity() * sizeof(double) +
                  scratch_.capacity() * sizeof(ThreadScratch);
  for (const ThreadScratch& sc : scratch_) b += sc.bytes();
  return b;
}

md::ForceResult FusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                 const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("fused.compute", "kernel");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  {
    ScopedTimer t("fused.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, opts_.env_kernel, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  std::size_t slots_processed = 0;
  double energy_total = 0.0;

  {
    ScopedTimer timer_desc("fused.descriptor", "kernel");
    // BuildTeam, not `#pragma omp parallel`: the zero-suppression TSan floor
    // (common/team.hpp) — libgomp's reduction write-back on the region's
    // capture frame is invisible to TSan. Partials live in ThreadScratch
    // and fold on the master in ascending thread order.
    const int team_size = static_cast<int>(scratch_.size());
    // SIMD level resolved once per compute(), outside the team (same pattern
    // as prod_force): every thread runs the same kernel instance.
    const SlotGradientFn slot_gradient = pick_slot_gradient(simd::active());
    const Rank1Fn rank1_update = pick_rank1(simd::active());
    BuildTeam& team = BuildTeam::team();
    auto body = [&](int tid, int T) {
      // Per-thread scratch: one embedding row + its derivative (the
      // "registers" of the CUDA kernel), the A accumulator, and the fitting
      // workspace — persistent members, nothing allocated per call.
      ThreadScratch& sc = scratch_[static_cast<std::size_t>(tid)];
      sc.slots_partial = 0;
      sc.energy_partial = 0.0;
      const std::size_t i_begin = chunk_bound(n, tid, T);
      const std::size_t i_end = chunk_bound(n, tid + 1, T);
      for (std::size_t i = i_begin; i < i_end; ++i) {
        std::memset(sc.a_mat.data(), 0, 4 * m * sizeof(double));

        // ---- Pass 1: fused tabulate + rank-1 contraction ----------------
        for (int ty = 0; ty < cfg.ntypes; ++ty) {
          const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
          const std::size_t base = env_.block_begin(i, ty);
          const int off = cfg.type_offset(ty);
          const int limit = (env_.compact() || opts_.skip_padding)
                                ? env_.count(i, ty)
                                : cfg.sel[static_cast<std::size_t>(ty)];
          if (opts_.cache_rows && opts_.blocked_table && limit > 0) {
            // Batched staging: the s values sit in the first column of the
            // contiguous env-matrix rows (stride 4), the cache rows are
            // value/derivative pairs (stride 2M) — one SIMD dispatch for
            // the whole slot run instead of one per slot.
            double* cache0 = sc.row_cache.data() + static_cast<std::size_t>(off) * 2 * m;
            table.eval_with_deriv_blocked_batch(env_.rmat_at(base), 4,
                                                static_cast<std::size_t>(limit), cache0,
                                                cache0 + m, 2 * m);
          }
          for (int k = 0; k < limit; ++k) {
            const double* rrow = env_.rmat_at(base + static_cast<std::size_t>(k));
            const double* row = sc.g_row.data();
            if (opts_.cache_rows) {
              // Single table walk: value + derivative staged for pass 2.
              // (Cache indexed by the dense in-atom offset in both layouts.)
              double* cache = sc.row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
              if (!opts_.blocked_table)  // blocked rows staged by the batch above
                table.eval_with_deriv(rrow[0], cache, cache + m);
              row = cache;
            } else if (opts_.blocked_table) {
              table.eval_blocked(rrow[0], sc.g_row.data());
            } else {
              table.eval(rrow[0], sc.g_row.data());
            }
            // outer-product update: A_c += rrow[c] * row (Fig 4 (c))
            rank1_update(rrow, row, m, sc.a_mat.data());
            ++sc.slots_partial;
          }
        }
        for (double& v : sc.a_mat) v *= scale;

        const double e_i = core::descriptor_fit_atom(model.fitting(atoms.type[i]),
                                                     sc.a_mat.data(), m, m_sub, scale,
                                                     sc.scratch, sc.g_a.data());
        atom_energy_[i] = e_i;
        sc.energy_partial += e_i;

        // ---- Pass 2: re-walk slots, fuse dE/dR~ and dE/ds ----------------
        for (int ty = 0; ty < cfg.ntypes; ++ty) {
          const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
          const std::size_t base = env_.block_begin(i, ty);
          const int off = cfg.type_offset(ty);
          const int limit = (env_.compact() || opts_.skip_padding)
                                ? env_.count(i, ty)
                                : cfg.sel[static_cast<std::size_t>(ty)];
          for (int k = 0; k < limit; ++k) {
            const std::size_t s = base + static_cast<std::size_t>(k);
            const double* rrow = env_.rmat_at(s);
            const double* row = sc.g_row.data();
            const double* drow = sc.dg_row.data();
            if (opts_.cache_rows) {
              const double* cache =
                  sc.row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
              row = cache;
              drow = cache + m;
            } else if (opts_.blocked_table) {
              table.eval_with_deriv_blocked(rrow[0], sc.g_row.data(), sc.dg_row.data());
            } else {
              table.eval_with_deriv(rrow[0], sc.g_row.data(), sc.dg_row.data());
            }
            slot_gradient(rrow, row, drow, sc.g_a.data(), m, g_rmat_.data() + s * 4);
          }
        }
        // Dense layout without skip_padding walked the padded tails above;
        // their g_rmat rows were written too (and are never read by the
        // scatter, which walks counts only).
      }
    };
    team.run(team_size, BodyRef(body));
    for (const ThreadScratch& sc : scratch_) {
      slots_processed += sc.slots_partial;
      energy_total += sc.energy_partial;
    }
  }

  slots_processed_ = slots_processed;
  slots_total_ = n * static_cast<std::size_t>(nm);
  {
    static obs::Counter& slots_metric =
        obs::MetricsRegistry::instance().counter("fused.slots_processed");
    static obs::Gauge& padding_metric =
        obs::MetricsRegistry::instance().gauge("fused.padding_fraction");
    static obs::Counter& bytes_saved_metric =
        obs::MetricsRegistry::instance().counter("fused.bytes_saved");
    slots_metric.inc(slots_processed);
    padding_metric.set(env_.padding_fraction());
    if (env_.compact()) {
      // Env payload saved by the CSR plus the padded g_rmat rows never
      // materialized; clamped — tiny systems can spend more on the prefix
      // than the padding they avoid.
      const std::size_t dense = env_.dense_bytes() + slots_total_ * 4 * sizeof(double);
      const std::size_t compact =
          env_.compact_bytes() + env_.stored_slots() * 4 * sizeof(double);
      if (dense > compact) bytes_saved_metric.inc(dense - compact);
    }
  }
  CostRegistry::instance().add(
      "fused.descriptor",
      {static_cast<double>(slots_processed) * 47.0 * static_cast<double>(m),
       static_cast<double>(slots_processed) * 12.0 * static_cast<double>(m) * sizeof(double),
       static_cast<double>(slots_processed) * 4.0 * sizeof(double)});

  md::ForceResult out;
  out.energy = energy_total;
  {
    ScopedTimer t("fused.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                      prod_ws_);
  }
  return out;
}

}  // namespace dp::fused
