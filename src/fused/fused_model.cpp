#include "fused/fused_model.hpp"

#include <cstring>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"
#include "obs/metrics.hpp"

namespace dp::fused {

using core::AtomKernelScratch;
using core::ModelConfig;
using tab::TabulatedEmbedding;

FusedDP::FusedDP(const tab::TabulatedDP& tabulated, FusedOptions opts)
    : tab_(tabulated), opts_(opts) {}

md::ForceResult FusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                 const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("fused.compute", "kernel");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  {
    ScopedTimer t("fused.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, opts_.env_kernel, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);

  atom_energy_.assign(n, 0.0);
  AlignedVector<double> g_rmat(n * static_cast<std::size_t>(nm) * 4, 0.0);
  std::size_t slots_processed = 0;
  double energy_total = 0.0;

  {
    ScopedTimer t("fused.descriptor", "kernel");
#pragma omp parallel reduction(+ : slots_processed, energy_total)
    {
      // Per-thread scratch: one embedding row + its derivative (the
      // "registers" of the CUDA kernel), the A accumulator, and the fitting
      // workspace. Nothing scales with N_m * M unless cache_rows staging is
      // enabled.
      AlignedVector<double> g_row(m), dg_row(m), a_mat(4 * m), g_a(4 * m);
      AlignedVector<double> row_cache;
      if (opts_.cache_rows)
        row_cache.resize(static_cast<std::size_t>(nm) * 2 * m);
      AtomKernelScratch scratch;
#pragma omp for schedule(static)
      for (std::size_t i = 0; i < n; ++i) {
        std::memset(a_mat.data(), 0, 4 * m * sizeof(double));

        // ---- Pass 1: fused tabulate + rank-1 contraction ----------------
        for (int ty = 0; ty < cfg.ntypes; ++ty) {
          const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
          const int off = cfg.type_offset(ty);
          const int limit =
              opts_.skip_padding ? env_.count(i, ty) : cfg.sel[static_cast<std::size_t>(ty)];
          for (int k = 0; k < limit; ++k) {
            const double* rrow = env_.rmat_row(i, off + k);
            const double* row = g_row.data();
            if (opts_.cache_rows) {
              // Single table walk: value + derivative staged for pass 2.
              double* cache =
                  row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
              if (opts_.blocked_table)
                table.eval_with_deriv_blocked(rrow[0], cache, cache + m);
              else
                table.eval_with_deriv(rrow[0], cache, cache + m);
              row = cache;
            } else if (opts_.blocked_table) {
              table.eval_blocked(rrow[0], g_row.data());
            } else {
              table.eval(rrow[0], g_row.data());
            }
            // outer-product update: A_c += rrow[c] * row (Fig 4 (c))
            for (int c = 0; c < 4; ++c) {
              const double rv = rrow[c];
              double* arow = a_mat.data() + static_cast<std::size_t>(c) * m;
#pragma omp simd
              for (std::size_t b = 0; b < m; ++b) arow[b] += rv * row[b];
            }
            ++slots_processed;
          }
        }
        for (double& v : a_mat) v *= scale;

        const double e_i = core::descriptor_fit_atom(model.fitting(atoms.type[i]),
                                                     a_mat.data(), m, m_sub, scale, scratch,
                                                     g_a.data());
        atom_energy_[i] = e_i;
        energy_total += e_i;

        // ---- Pass 2: re-walk slots, fuse dE/dR~ and dE/ds ----------------
        for (int ty = 0; ty < cfg.ntypes; ++ty) {
          const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
          const int off = cfg.type_offset(ty);
          const int limit =
              opts_.skip_padding ? env_.count(i, ty) : cfg.sel[static_cast<std::size_t>(ty)];
          for (int k = 0; k < limit; ++k) {
            const double* rrow = env_.rmat_row(i, off + k);
            const double* row = g_row.data();
            const double* drow = dg_row.data();
            if (opts_.cache_rows) {
              const double* cache =
                  row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
              row = cache;
              drow = cache + m;
            } else if (opts_.blocked_table) {
              table.eval_with_deriv_blocked(rrow[0], g_row.data(), dg_row.data());
            } else {
              table.eval_with_deriv(rrow[0], g_row.data(), dg_row.data());
            }
            double* grow =
                g_rmat.data() +
                (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off + k)) * 4;
            // g_rmat[c] = <g_a[c], g_row>;  dE/ds = <R~ g_a, dg_row>
            double acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0, acc_s = 0;
            const double r0 = rrow[0], r1 = rrow[1], r2 = rrow[2], r3 = rrow[3];
            const double* ga0 = g_a.data();
            const double* ga1 = g_a.data() + m;
            const double* ga2 = g_a.data() + 2 * m;
            const double* ga3 = g_a.data() + 3 * m;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3, acc_s)
            for (std::size_t b = 0; b < m; ++b) {
              const double gb = row[b];
              acc0 += ga0[b] * gb;
              acc1 += ga1[b] * gb;
              acc2 += ga2[b] * gb;
              acc3 += ga3[b] * gb;
              acc_s += (r0 * ga0[b] + r1 * ga1[b] + r2 * ga2[b] + r3 * ga3[b]) * drow[b];
            }
            grow[0] = acc0 + acc_s;
            grow[1] = acc1;
            grow[2] = acc2;
            grow[3] = acc3;
          }
        }
      }
    }
  }

  slots_processed_ = slots_processed;
  slots_total_ = n * static_cast<std::size_t>(nm);
  {
    static obs::Counter& slots_metric =
        obs::MetricsRegistry::instance().counter("fused.slots_processed");
    static obs::Gauge& padding_metric =
        obs::MetricsRegistry::instance().gauge("fused.padding_fraction");
    slots_metric.inc(slots_processed);
    padding_metric.set(env_.padding_fraction());
  }
  CostRegistry::instance().add(
      "fused.descriptor",
      {static_cast<double>(slots_processed) * 47.0 * static_cast<double>(m),
       static_cast<double>(slots_processed) * 12.0 * static_cast<double>(m) * sizeof(double),
       static_cast<double>(slots_processed) * 4.0 * sizeof(double)});

  md::ForceResult out;
  out.energy = energy_total;
  {
    ScopedTimer t("fused.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat.data(), box, atoms, periodic, atoms.force, out.virial);
  }
  return out;
}

}  // namespace dp::fused
