// Mixed-precision fused inference — the paper's stated future work ("the
// mixed-precision versions of code still has accuracy problems and will be
// our future work", Sec 7), following the split its baseline used for its
// Table 1 mixed rows:
//
//   single precision: the per-neighbor embedding work (table evaluation,
//     rank-1 contraction into A, the pass-2 gradient dots) — the 95%-of-
//     FLOPs part;
//   double precision: the descriptor, the fitting network, energies, and
//     all force/virial accumulations (the reductions where float error
//     compounds).
//
// The float stage rides the runtime SIMD dispatcher at twice the lane width
// of the double path (8 floats AVX2 / 16 floats AVX-512): one batched
// blocked table walk per slot run stages value+derivative row pairs, pass 1
// contracts them rank-1 into A_sp, pass 2 reuses the cached rows for the
// gradient dots. DP_SIMD=scalar keeps the seed float expressions bit for
// bit.
#pragma once

#include <vector>

#include "dp/descriptor.hpp"
#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/force_field.hpp"
#include "tab/table_sp.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::fused {

/// Embedding-stage storage/arithmetic width of the mixed path.
enum class MixedPrecision { Single, Half };

class MixedFusedDP final : public md::ForceField {
 public:
  explicit MixedFusedDP(const tab::TabulatedDP& tabulated,
                        MixedPrecision precision = MixedPrecision::Single);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return tab_.model().config().rcut; }
  /// The mixed path evaluates its own reduced-precision tables, so the
  /// --health extrapolation-rate watchdog must read their counters (the
  /// shared double tables in tab_ never see these lookups).
  std::uint64_t extrapolations() const override {
    std::uint64_t n = 0;
    for (const auto& t : tables_sp_) n += t.extrapolations();
    for (const auto& t : tables_hp_) n += t.extrapolations();
    return n;
  }
  std::size_t neighbor_reservation() const override {
    return static_cast<std::size_t>(tab_.model().config().nm());
  }

  const std::vector<double>& atom_energies() const { return atom_energy_; }
  /// Bytes of the reduced-precision tables (double/2 for Single, /4 for
  /// Half).
  std::size_t table_bytes() const;

 private:
  /// Batched blocked float table walk (value + derivative rows), dispatching
  /// on precision_ — the single table walk per slot that feeds both passes.
  void eval_table_batch(std::size_t idx, const float* s, std::size_t count, float* g,
                        float* dg, std::size_t out_stride) const;
  void prepare(std::size_t n);

  struct ThreadScratch {
    AlignedVector<float> s_col;       ///< staged float s values, one per slot
    AlignedVector<float> row_cache;   ///< value/deriv row pairs, stride 2M
    AlignedVector<float> a_sp, ga_sp;
    AlignedVector<double> a_mat, g_a;
    core::AtomKernelScratch scratch;
    double energy_partial = 0.0;  ///< folded by the master, ascending thread order
  };

  const tab::TabulatedDP& tab_;
  MixedPrecision precision_;
  std::vector<tab::TabulatedEmbeddingSP> tables_sp_;
  std::vector<tab::TabulatedEmbeddingHP> tables_hp_;
  core::EnvMat env_;
  core::EnvMatWorkspace env_ws_;
  core::ProdForceWorkspace prod_ws_;
  AlignedVector<double> g_rmat_;
  std::vector<ThreadScratch> scratch_;
  std::vector<double> atom_energy_;
};

}  // namespace dp::fused
