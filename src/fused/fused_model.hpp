// The fully optimized inference path (paper Sec 3.4 / 3.5).
//
// Kernel fusion: the tabulated embedding row g(s_j) is evaluated and
// immediately contracted into A = (1/N_m) R~^T G as a rank-1 update — one
// row lives in registers at a time; the embedding matrix G is never
// allocated (Fig 3's dashed lines). The backward pass re-walks the slots and
// re-evaluates the (cheap) table instead of loading a stored G.
//
// Redundancy removal: the slot loops run only over the filled part of each
// type block instead of all N_m reserved slots (Fig 4) — exact, because a
// padded slot's environment-matrix row is identically zero.
#pragma once

#include <cstddef>
#include <vector>

#include "dp/env_mat.hpp"
#include "md/force_field.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::fused {

struct FusedOptions {
  bool skip_padding = true;   ///< redundancy removal (Sec 3.4.2)
  bool blocked_table = false; ///< SVE-style table layout (Sec 3.5.1)
  core::EnvMatKernel env_kernel = core::EnvMatKernel::Optimized;  ///< ProdEnvMatA variant
  /// Cache each atom's embedding rows (value + derivative) in a per-thread
  /// buffer during pass 1 so pass 2 reads instead of re-walking the table —
  /// one table evaluation per slot instead of two, at O(N_m x M) per-thread
  /// scratch (the analog of the CUDA kernel's shared-memory staging).
  bool cache_rows = false;
};

class FusedDP final : public md::ForceField {
 public:
  explicit FusedDP(const tab::TabulatedDP& tabulated, FusedOptions opts = {});

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return tab_.model().config().rcut; }

  const std::vector<double>& atom_energies() const { return atom_energy_; }
  const core::EnvMat& env() const { return env_; }

  /// Slot statistics of the last compute() — Fig 4's redundancy story.
  std::size_t slots_processed() const { return slots_processed_; }
  std::size_t slots_total() const { return slots_total_; }

 private:
  const tab::TabulatedDP& tab_;
  FusedOptions opts_;
  core::EnvMat env_;
  std::vector<double> atom_energy_;
  std::size_t slots_processed_ = 0;
  std::size_t slots_total_ = 0;
};

}  // namespace dp::fused
