// The fully optimized inference path (paper Sec 3.4 / 3.5).
//
// Kernel fusion: the tabulated embedding row g(s_j) is evaluated and
// immediately contracted into A = (1/N_m) R~^T G as a rank-1 update — one
// row lives in registers at a time; the embedding matrix G is never
// allocated (Fig 3's dashed lines). The backward pass re-walks the slots and
// re-evaluates the (cheap) table instead of loading a stored G.
//
// Redundancy removal: with the compact CSR environment matrix (the default
// `Optimized` kernel) only filled slots are ever stored or walked — the
// padded zeros of Sec 3.4.2 don't exist in memory at all. With the dense
// `Baseline` kernel the slot loops still skip the padded tail of each type
// block when `skip_padding` is set (Fig 4) — exact, because a padded slot's
// environment-matrix row is identically zero.
#pragma once

#include <cstddef>
#include <vector>

#include "dp/descriptor.hpp"
#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/force_field.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::fused {

struct FusedOptions {
  bool skip_padding = true;   ///< redundancy removal (Sec 3.4.2), dense layout only
  bool blocked_table = false; ///< SVE-style table layout (Sec 3.5.1)
  core::EnvMatKernel env_kernel = core::EnvMatKernel::Optimized;  ///< ProdEnvMatA variant
  /// Cache each atom's embedding rows (value + derivative) in a per-thread
  /// buffer during pass 1 so pass 2 reads instead of re-walking the table —
  /// one table evaluation per slot instead of two, at O(N_m x M) per-thread
  /// scratch (the analog of the CUDA kernel's shared-memory staging).
  bool cache_rows = false;
};

class FusedDP final : public md::ForceField {
 public:
  explicit FusedDP(const tab::TabulatedDP& tabulated, FusedOptions opts = {});

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return tab_.model().config().rcut; }
  std::uint64_t extrapolations() const override { return tab_.extrapolations(); }
  std::size_t neighbor_reservation() const override {
    return static_cast<std::size_t>(tab_.model().config().nm());
  }

  const std::vector<double>& atom_energies() const { return atom_energy_; }
  const core::EnvMat& env() const { return env_; }

  /// Slot statistics of the last compute() — Fig 4's redundancy story.
  std::size_t slots_processed() const { return slots_processed_; }
  std::size_t slots_total() const { return slots_total_; }
  /// Capacity-based bytes of every persistent buffer this model owns.
  std::size_t workspace_bytes() const;

 private:
  /// Per-thread scratch, sized once by prepare() and indexed by
  /// omp_get_thread_num() inside the parallel region.
  struct ThreadScratch {
    AlignedVector<double> g_row, dg_row, a_mat, g_a, row_cache;
    core::AtomKernelScratch scratch;
    // Per-thread reduction partials, folded by the master in ascending
    // thread order after the team joins (no shared reduction frame).
    std::size_t slots_partial = 0;
    double energy_partial = 0.0;
    std::size_t bytes() const {
      return (g_row.capacity() + dg_row.capacity() + a_mat.capacity() + g_a.capacity() +
              row_cache.capacity()) *
             sizeof(double);
    }
  };
  void prepare(std::size_t n);

  const tab::TabulatedDP& tab_;
  FusedOptions opts_;
  core::EnvMat env_;
  core::EnvMatWorkspace env_ws_;
  core::ProdForceWorkspace prod_ws_;
  AlignedVector<double> g_rmat_;
  std::vector<ThreadScratch> scratch_;
  std::vector<double> atom_energy_;
  std::size_t slots_processed_ = 0;
  std::size_t slots_total_ = 0;
};

}  // namespace dp::fused
