#include "fused/se_r_model.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "common/team.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"

namespace dp::fused {

using core::ModelConfig;
using tab::TabulatedEmbedding;

SeRFusedDP::SeRFusedDP(const tab::TabulatedDP& tabulated) : tab_(tabulated) {
  const auto& cfg = tabulated.model().config();
  DP_CHECK_MSG(cfg.descriptor == core::DescriptorKind::SeR,
               "SeRFusedDP needs a model configured with DescriptorKind::SeR");
  // Cache the padding row g(0) of every table.
  const int nt = cfg.ntypes;
  const std::size_t m = cfg.m();
  for (int c = 0; c < (cfg.type_one_side ? 1 : nt); ++c)
    for (int t = 0; t < nt; ++t) {
      AlignedVector<double> g0(m);
      tabulated.table_pair(c, t).eval(0.0, g0.data());
      g_zero_.push_back(std::move(g0));
    }
}

void SeRFusedDP::prepare(std::size_t n) {
  const std::size_t m = tab_.model().config().m();
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  scratch_.resize(static_cast<std::size_t>(std::max(1, omp_get_max_threads())));
  for (ThreadScratch& sc : scratch_) {
    sc.g_row.resize(m);
    sc.dg_row.resize(m);
    sc.d_vec.resize(m);
    sc.g_d.resize(m);
  }
}

md::ForceResult SeRFusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                    const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("se_r.compute");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, core::EnvMatKernel::Optimized,
                periodic);

  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  double energy_total = 0.0;

  // BuildTeam, not `#pragma omp parallel` — zero-suppression TSan floor
  // (common/team.hpp); per-thread energy partials fold on the master.
  const int team_size = static_cast<int>(scratch_.size());
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int tid, int T) {
    ThreadScratch& sc = scratch_[static_cast<std::size_t>(tid)];
    sc.energy_partial = 0.0;
    const std::size_t i_begin = chunk_bound(n, tid, T);
    const std::size_t i_end = chunk_bound(n, tid + 1, T);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      // ---- Pass 1: D = (1/N_m) sum over ALL slots of g(s_j); real slots
      // are walked, padded ones contribute the cached g(0) analytically ----
      std::memset(sc.d_vec.data(), 0, m * sizeof(double));
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
        const std::size_t base = env_.block_begin(i, ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          table.eval(env_.rmat_at(base + static_cast<std::size_t>(k))[0], sc.g_row.data());
#pragma omp simd
          for (std::size_t b = 0; b < m; ++b) sc.d_vec[b] += sc.g_row[b];
        }
        const double n_padded =
            static_cast<double>(cfg.sel[static_cast<std::size_t>(ty)] - limit);
        const auto& g0 =
            g_zero_[cfg.type_one_side
                        ? static_cast<std::size_t>(ty)
                        : static_cast<std::size_t>(atoms.type[i]) *
                                  static_cast<std::size_t>(cfg.ntypes) +
                              static_cast<std::size_t>(ty)];
#pragma omp simd
        for (std::size_t b = 0; b < m; ++b) sc.d_vec[b] += n_padded * g0[b];
      }
      for (double& v : sc.d_vec) v *= scale;

      const int ct = atoms.type[i];
      const double e_i = model.fitting(ct).forward(sc.d_vec.data(), sc.fit_ws);
      atom_energy_[i] = e_i;
      sc.energy_partial += e_i;
      model.fitting(ct).backward(sc.fit_ws, sc.g_d.data());

      // ---- Pass 2: dE/ds_j = (1/N_m) <g_D, g'(s_j)> into column 0; the
      // directional columns are written as explicit zeros (g_rmat_ is a
      // persistent buffer that is never bulk-zeroed) ----------------------
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
        const std::size_t base = env_.block_begin(i, ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const std::size_t slot = base + static_cast<std::size_t>(k);
          table.eval_with_deriv(env_.rmat_at(slot)[0], sc.g_row.data(), sc.dg_row.data());
          double acc = 0.0;
#pragma omp simd reduction(+ : acc)
          for (std::size_t b = 0; b < m; ++b) acc += sc.g_d[b] * sc.dg_row[b];
          double* grow = g_rmat_.data() + slot * 4;
          grow[0] = acc * scale;
          grow[1] = 0.0;
          grow[2] = 0.0;
          grow[3] = 0.0;
        }
      }
    }
  };
  team.run(team_size, BodyRef(body));
  for (const ThreadScratch& sc : scratch_) energy_total += sc.energy_partial;

  md::ForceResult out;
  out.energy = energy_total;
  atoms.zero_forces();
  prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                    prod_ws_);
  return out;
}

}  // namespace dp::fused
