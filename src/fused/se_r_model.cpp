#include "fused/se_r_model.hpp"

#include <cstring>

#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"

namespace dp::fused {

using core::ModelConfig;
using tab::TabulatedEmbedding;

SeRFusedDP::SeRFusedDP(const tab::TabulatedDP& tabulated) : tab_(tabulated) {
  const auto& cfg = tabulated.model().config();
  DP_CHECK_MSG(cfg.descriptor == core::DescriptorKind::SeR,
               "SeRFusedDP needs a model configured with DescriptorKind::SeR");
  // Cache the padding row g(0) of every table.
  const int nt = cfg.ntypes;
  const std::size_t m = cfg.m();
  for (int c = 0; c < (cfg.type_one_side ? 1 : nt); ++c)
    for (int t = 0; t < nt; ++t) {
      AlignedVector<double> g0(m);
      tabulated.table_pair(c, t).eval(0.0, g0.data());
      g_zero_.push_back(std::move(g0));
    }
}

md::ForceResult SeRFusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                    const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("se_r.compute");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  build_env_mat(cfg, box, atoms, nlist, env_, core::EnvMatKernel::Optimized, periodic);

  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);

  atom_energy_.assign(n, 0.0);
  AlignedVector<double> g_rmat(n * static_cast<std::size_t>(nm) * 4, 0.0);
  double energy_total = 0.0;

#pragma omp parallel reduction(+ : energy_total)
  {
    AlignedVector<double> g_row(m), dg_row(m), d_vec(m), g_d(m);
    nn::FittingNet::Workspace fit_ws;
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      // ---- Pass 1: D = (1/N_m) sum over ALL slots of g(s_j); real slots
      // are walked, padded ones contribute the cached g(0) analytically ----
      std::memset(d_vec.data(), 0, m * sizeof(double));
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          table.eval(env_.rmat_row(i, off + k)[0], g_row.data());
#pragma omp simd
          for (std::size_t b = 0; b < m; ++b) d_vec[b] += g_row[b];
        }
        const double n_padded =
            static_cast<double>(cfg.sel[static_cast<std::size_t>(ty)] - limit);
        const auto& g0 =
            g_zero_[cfg.type_one_side
                        ? static_cast<std::size_t>(ty)
                        : static_cast<std::size_t>(atoms.type[i]) *
                                  static_cast<std::size_t>(cfg.ntypes) +
                              static_cast<std::size_t>(ty)];
#pragma omp simd
        for (std::size_t b = 0; b < m; ++b) d_vec[b] += n_padded * g0[b];
      }
      for (double& v : d_vec) v *= scale;

      const int ct = atoms.type[i];
      const double e_i = model.fitting(ct).forward(d_vec.data(), fit_ws);
      atom_energy_[i] = e_i;
      energy_total += e_i;
      model.fitting(ct).backward(fit_ws, g_d.data());

      // ---- Pass 2: dE/ds_j = (1/N_m) <g_D, g'(s_j)> into column 0 -------
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const TabulatedEmbedding& table = tab_.table_pair(atoms.type[i], ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          table.eval_with_deriv(env_.rmat_row(i, off + k)[0], g_row.data(), dg_row.data());
          double acc = 0.0;
#pragma omp simd reduction(+ : acc)
          for (std::size_t b = 0; b < m; ++b) acc += g_d[b] * dg_row[b];
          g_rmat[(i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off + k)) * 4] =
              acc * scale;
        }
      }
    }
  }

  md::ForceResult out;
  out.energy = energy_total;
  atoms.zero_forces();
  prod_force_virial(env_, g_rmat.data(), box, atoms, periodic, atoms.force, out.virial);
  return out;
}

}  // namespace dp::fused
