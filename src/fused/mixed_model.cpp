#include "fused/mixed_model.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.hpp"
#include "common/team.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"

namespace dp::fused {

using core::AtomKernelScratch;
using core::ModelConfig;

namespace {

// ---------------------------------------------------------------------------
// Per-level float kernels for the mixed path's two hot loops — the float
// twins of the fused_model.cpp kernels, at twice the lane width (8 floats
// AVX2 / 16 AVX-512). Level::Scalar keeps the exact seed loops (pragma
// included) so DP_SIMD=scalar reproduces the pre-SIMD mixed forces bit for
// bit; the vector dot reductions reassociate (vector partials + std::fma
// tail), covered by the reduction clause of the numerical contract.
// ---------------------------------------------------------------------------

/// Pass-1 rank-1 update in float: A_c += r[c] * row.
void rank1_update_sp_scalar(const float* r, const float* row, std::size_t m, float* a_sp) {
  for (int c = 0; c < 4; ++c) {
    const float rv = r[c];
    float* arow = a_sp + static_cast<std::size_t>(c) * m;
#pragma omp simd
    for (std::size_t b = 0; b < m; ++b) arow[b] += rv * row[b];
  }
}

// Pass-2 per-slot contraction at Level::Scalar stays INLINE in the compute()
// lambda (pick_slot_gradient_sp returns nullptr, same fallback shape as
// prod_force.cpp): unlike the double path — whose seed already carried a
// noinline slot_gradient_scalar — the mixed seed compiled this reduction
// inside the lambda, and extracting it re-rolls the autovectorizer's partial-
// sum lanes, breaking DP_SIMD=scalar bit identity in the last float bit.

#if DP_SIMD_X86

DP_TARGET_AVX2 void rank1_update_sp_avx2(const float* r, const float* row, std::size_t m,
                                         float* a_sp) {
  using namespace simd;
  for (int c = 0; c < 4; ++c) {
    const float rv = r[c];
    const v8f vrv = f8_set1(rv);
    float* arow = a_sp + static_cast<std::size_t>(c) * m;
    std::size_t b = 0;
    for (; b + 8 <= m; b += 8)
      f8_storeu(arow + b, f8_fmadd(vrv, f8_loadu(row + b), f8_loadu(arow + b)));
    for (; b < m; ++b) arow[b] = std::fma(rv, row[b], arow[b]);
  }
}

DP_TARGET_AVX512 void rank1_update_sp_avx512(const float* r, const float* row, std::size_t m,
                                             float* a_sp) {
  using namespace simd;
  for (int c = 0; c < 4; ++c) {
    const float rv = r[c];
    const v16f vrv = f16_set1(rv);
    float* arow = a_sp + static_cast<std::size_t>(c) * m;
    std::size_t b = 0;
    for (; b + 16 <= m; b += 16)
      f16_storeu(arow + b, f16_fmadd(vrv, f16_loadu(row + b), f16_loadu(arow + b)));
    for (; b < m; ++b) arow[b] = std::fma(rv, row[b], arow[b]);
  }
}

DP_TARGET_AVX2 void slot_gradient_sp_avx2(const float* r, const float* row,
                                          const float* drow, const float* ga_sp,
                                          std::size_t m, double* grow) {
  using namespace simd;
  const float r0 = r[0], r1 = r[1], r2 = r[2], r3 = r[3];
  const float* ga0 = ga_sp;
  const float* ga1 = ga_sp + m;
  const float* ga2 = ga_sp + 2 * m;
  const float* ga3 = ga_sp + 3 * m;
  const v8f vr0 = f8_set1(r0), vr1 = f8_set1(r1), vr2 = f8_set1(r2), vr3 = f8_set1(r3);
  v8f v0 = f8_zero(), v1 = f8_zero(), v2 = f8_zero(), v3 = f8_zero(), vs = f8_zero();
  std::size_t b = 0;
  for (; b + 8 <= m; b += 8) {
    const v8f a0 = f8_loadu(ga0 + b), a1 = f8_loadu(ga1 + b), a2 = f8_loadu(ga2 + b),
              a3 = f8_loadu(ga3 + b);
    const v8f gb = f8_loadu(row + b);
    v0 = f8_fmadd(a0, gb, v0);
    v1 = f8_fmadd(a1, gb, v1);
    v2 = f8_fmadd(a2, gb, v2);
    v3 = f8_fmadd(a3, gb, v3);
    v8f w = f8_mul(vr0, a0);
    w = f8_fmadd(vr1, a1, w);
    w = f8_fmadd(vr2, a2, w);
    w = f8_fmadd(vr3, a3, w);
    vs = f8_fmadd(w, f8_loadu(drow + b), vs);
  }
  float acc0 = f8_reduce_add(v0), acc1 = f8_reduce_add(v1), acc2 = f8_reduce_add(v2),
        acc3 = f8_reduce_add(v3), acc_s = f8_reduce_add(vs);
  for (; b < m; ++b) {
    const float gb = row[b];
    acc0 = std::fma(ga0[b], gb, acc0);
    acc1 = std::fma(ga1[b], gb, acc1);
    acc2 = std::fma(ga2[b], gb, acc2);
    acc3 = std::fma(ga3[b], gb, acc3);
    float w = r0 * ga0[b];
    w = std::fma(r1, ga1[b], w);
    w = std::fma(r2, ga2[b], w);
    w = std::fma(r3, ga3[b], w);
    acc_s = std::fma(w, drow[b], acc_s);
  }
  grow[0] = static_cast<double>(acc0) + static_cast<double>(acc_s);
  grow[1] = acc1;
  grow[2] = acc2;
  grow[3] = acc3;
}

DP_TARGET_AVX512 void slot_gradient_sp_avx512(const float* r, const float* row,
                                              const float* drow, const float* ga_sp,
                                              std::size_t m, double* grow) {
  using namespace simd;
  const float r0 = r[0], r1 = r[1], r2 = r[2], r3 = r[3];
  const float* ga0 = ga_sp;
  const float* ga1 = ga_sp + m;
  const float* ga2 = ga_sp + 2 * m;
  const float* ga3 = ga_sp + 3 * m;
  const v16f vr0 = f16_set1(r0), vr1 = f16_set1(r1), vr2 = f16_set1(r2), vr3 = f16_set1(r3);
  v16f v0 = f16_zero(), v1 = f16_zero(), v2 = f16_zero(), v3 = f16_zero(), vs = f16_zero();
  std::size_t b = 0;
  for (; b + 16 <= m; b += 16) {
    const v16f a0 = f16_loadu(ga0 + b), a1 = f16_loadu(ga1 + b), a2 = f16_loadu(ga2 + b),
               a3 = f16_loadu(ga3 + b);
    const v16f gb = f16_loadu(row + b);
    v0 = f16_fmadd(a0, gb, v0);
    v1 = f16_fmadd(a1, gb, v1);
    v2 = f16_fmadd(a2, gb, v2);
    v3 = f16_fmadd(a3, gb, v3);
    v16f w = f16_mul(vr0, a0);
    w = f16_fmadd(vr1, a1, w);
    w = f16_fmadd(vr2, a2, w);
    w = f16_fmadd(vr3, a3, w);
    vs = f16_fmadd(w, f16_loadu(drow + b), vs);
  }
  float acc0 = f16_reduce_add(v0), acc1 = f16_reduce_add(v1), acc2 = f16_reduce_add(v2),
        acc3 = f16_reduce_add(v3), acc_s = f16_reduce_add(vs);
  for (; b < m; ++b) {
    const float gb = row[b];
    acc0 = std::fma(ga0[b], gb, acc0);
    acc1 = std::fma(ga1[b], gb, acc1);
    acc2 = std::fma(ga2[b], gb, acc2);
    acc3 = std::fma(ga3[b], gb, acc3);
    float w = r0 * ga0[b];
    w = std::fma(r1, ga1[b], w);
    w = std::fma(r2, ga2[b], w);
    w = std::fma(r3, ga3[b], w);
    acc_s = std::fma(w, drow[b], acc_s);
  }
  grow[0] = static_cast<double>(acc0) + static_cast<double>(acc_s);
  grow[1] = acc1;
  grow[2] = acc2;
  grow[3] = acc3;
}

#endif  // DP_SIMD_X86

using Rank1SPFn = void (*)(const float*, const float*, std::size_t, float*);
using SlotGradientSPFn = void (*)(const float*, const float*, const float*, const float*,
                                  std::size_t, double*);

Rank1SPFn pick_rank1_sp(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return rank1_update_sp_avx512;
  if (lvl == simd::Level::AVX2) return rank1_update_sp_avx2;
#else
  (void)lvl;
#endif
  return rank1_update_sp_scalar;
}

/// nullptr at Level::Scalar — the caller's inline seed loop is the fallback.
SlotGradientSPFn pick_slot_gradient_sp(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return slot_gradient_sp_avx512;
  if (lvl == simd::Level::AVX2) return slot_gradient_sp_avx2;
#else
  (void)lvl;
#endif
  return nullptr;
}

}  // namespace

MixedFusedDP::MixedFusedDP(const tab::TabulatedDP& tabulated, MixedPrecision precision)
    : tab_(tabulated), precision_(precision) {
  const auto& model = tabulated.model();
  const int nt = model.config().ntypes;
  auto each_table = [&](auto&& fn) {
    if (model.config().type_one_side) {
      for (int t = 0; t < nt; ++t) fn(tabulated.table(t));
    } else {
      for (int c = 0; c < nt; ++c)
        for (int t = 0; t < nt; ++t) fn(tabulated.table_pair(c, t));
    }
  };
  if (precision_ == MixedPrecision::Single)
    each_table([&](const tab::TabulatedEmbedding& t) { tables_sp_.emplace_back(t); });
  else
    each_table([&](const tab::TabulatedEmbedding& t) { tables_hp_.emplace_back(t); });
}

std::size_t MixedFusedDP::table_bytes() const {
  std::size_t b = 0;
  for (const auto& t : tables_sp_) b += t.bytes();
  for (const auto& t : tables_hp_) b += t.bytes();
  return b;
}

void MixedFusedDP::eval_table_batch(std::size_t idx, const float* s, std::size_t count,
                                    float* g, float* dg, std::size_t out_stride) const {
  if (precision_ == MixedPrecision::Single)
    tables_sp_[idx].eval_with_deriv_blocked_batch(s, 1, count, g, dg, out_stride);
  else
    tables_hp_[idx].eval_with_deriv_blocked_batch(s, 1, count, g, dg, out_stride);
}

void MixedFusedDP::prepare(std::size_t n) {
  const ModelConfig& cfg = tab_.model().config();
  const std::size_t m = cfg.m();
  const std::size_t nm = static_cast<std::size_t>(cfg.nm());
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  scratch_.resize(static_cast<std::size_t>(std::max(1, omp_get_max_threads())));
  for (ThreadScratch& sc : scratch_) {
    sc.s_col.resize(nm);
    sc.row_cache.resize(nm * 2 * m);
    sc.a_sp.resize(4 * m);
    sc.ga_sp.resize(4 * m);
    sc.a_mat.resize(4 * m);
    sc.g_a.resize(4 * m);
  }
}

md::ForceResult MixedFusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                      const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("mixed.compute");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, core::EnvMatKernel::Optimized,
                periodic);

  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  double energy_total = 0.0;

  // BuildTeam, not `#pragma omp parallel` — zero-suppression TSan floor
  // (common/team.hpp); per-thread energy partials fold on the master.
  const int team_size = static_cast<int>(scratch_.size());
  // SIMD level resolved once per compute(), outside the team (same pattern
  // as the double fused path): every thread runs the same kernel instances.
  const Rank1SPFn rank1_update = pick_rank1_sp(simd::active());
  const SlotGradientSPFn slot_gradient = pick_slot_gradient_sp(simd::active());
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int tid, int T) {
    ThreadScratch& sc = scratch_[static_cast<std::size_t>(tid)];
    sc.energy_partial = 0.0;
    const std::size_t i_begin = chunk_bound(n, tid, T);
    const std::size_t i_end = chunk_bound(n, tid + 1, T);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::memset(sc.a_sp.data(), 0, 4 * m * sizeof(float));

      // ---- Pass 1 in single precision: one batched blocked table walk per
      // slot run (value + derivative rows cached for pass 2), then the
      // rank-1 contraction over the cached value rows. -------------------
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t table = model.pair_index(atoms.type[i], ty);
        const std::size_t base = env_.block_begin(i, ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        if (limit > 0) {
          // Stage the float s column (the env rows are contiguous stride-4
          // doubles; the cast is the seed path's cast, slot for slot).
          const double* rbase = env_.rmat_at(base);
          for (int k = 0; k < limit; ++k)
            sc.s_col[static_cast<std::size_t>(k)] = static_cast<float>(rbase[4 * k]);
          float* cache0 = sc.row_cache.data() + static_cast<std::size_t>(off) * 2 * m;
          eval_table_batch(table, sc.s_col.data(), static_cast<std::size_t>(limit), cache0,
                           cache0 + m, 2 * m);
        }
        for (int k = 0; k < limit; ++k) {
          const double* rrow = env_.rmat_at(base + static_cast<std::size_t>(k));
          const float r[4] = {static_cast<float>(rrow[0]), static_cast<float>(rrow[1]),
                              static_cast<float>(rrow[2]), static_cast<float>(rrow[3])};
          const float* row =
              sc.row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
          rank1_update(r, row, m, sc.a_sp.data());
        }
      }
      // ---- Descriptor + fitting in double -------------------------------
      for (std::size_t k = 0; k < 4 * m; ++k)
        sc.a_mat[k] = static_cast<double>(sc.a_sp[k]) * scale;
      const double e_i =
          core::descriptor_fit_atom(model.fitting(atoms.type[i]), sc.a_mat.data(), m, m_sub,
                                    scale, sc.scratch, sc.g_a.data());
      atom_energy_[i] = e_i;
      sc.energy_partial += e_i;

      // ---- Pass 2 in single precision, accumulated into double: reuse the
      // cached value/derivative rows — no second table walk. --------------
      for (std::size_t k = 0; k < 4 * m; ++k) sc.ga_sp[k] = static_cast<float>(sc.g_a[k]);
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t base = env_.block_begin(i, ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const std::size_t s = base + static_cast<std::size_t>(k);
          const double* rrow = env_.rmat_at(s);
          const float r[4] = {static_cast<float>(rrow[0]), static_cast<float>(rrow[1]),
                              static_cast<float>(rrow[2]), static_cast<float>(rrow[3])};
          const float* row =
              sc.row_cache.data() + static_cast<std::size_t>(off + k) * 2 * m;
          if (slot_gradient != nullptr) {
            slot_gradient(r, row, row + m, sc.ga_sp.data(), m, g_rmat_.data() + s * 4);
          } else {
            // Seed arithmetic, written as the explicit serial fma chain the
            // seed's `omp simd reduction` loop actually compiled to under
            // -march=native -ffp-contract (the vectorizer declined it; only
            // the contraction fired). Spelling the fmas out pins that bit
            // pattern at the source level — a float reduction with explicit
            // std::fma cannot be re-vectorized without reassociation, which
            // -O2 strict FP forbids — so DP_SIMD=scalar stays byte-identical
            // however the surrounding lambda evolves.
            const float* drow = row + m;
            double* grow = g_rmat_.data() + s * 4;
            float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0, acc_s = 0;
            const float r0 = r[0], r1 = r[1], r2 = r[2], r3 = r[3];
            const float* ga0 = sc.ga_sp.data();
            const float* ga1 = sc.ga_sp.data() + m;
            const float* ga2 = sc.ga_sp.data() + 2 * m;
            const float* ga3 = sc.ga_sp.data() + 3 * m;
            for (std::size_t b = 0; b < m; ++b) {
              const float gb = row[b];
              acc0 = std::fma(ga0[b], gb, acc0);
              acc1 = std::fma(ga1[b], gb, acc1);
              acc2 = std::fma(ga2[b], gb, acc2);
              acc3 = std::fma(ga3[b], gb, acc3);
              // fma(r0,ga0, r1*ga1): the seed contraction pre-rounds the
              // r1*ga1 product, not r0*ga0 — the asymmetry matters bitwise.
              float w = std::fma(r0, ga0[b], r1 * ga1[b]);
              w = std::fma(r2, ga2[b], w);
              w = std::fma(r3, ga3[b], w);
              acc_s = std::fma(w, drow[b], acc_s);
            }
            grow[0] = static_cast<double>(acc0) + static_cast<double>(acc_s);
            grow[1] = acc1;
            grow[2] = acc2;
            grow[3] = acc3;
          }
        }
      }
    }
  };
  team.run(team_size, BodyRef(body));
  for (const ThreadScratch& sc : scratch_) energy_total += sc.energy_partial;

  md::ForceResult out;
  out.energy = energy_total;
  atoms.zero_forces();
  prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                    prod_ws_);
  return out;
}

}  // namespace dp::fused
