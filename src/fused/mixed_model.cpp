#include "fused/mixed_model.hpp"

#include <cstring>

#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"

namespace dp::fused {

using core::AtomKernelScratch;
using core::ModelConfig;

MixedFusedDP::MixedFusedDP(const tab::TabulatedDP& tabulated, MixedPrecision precision)
    : tab_(tabulated), precision_(precision) {
  const auto& model = tabulated.model();
  const int nt = model.config().ntypes;
  auto each_table = [&](auto&& fn) {
    if (model.config().type_one_side) {
      for (int t = 0; t < nt; ++t) fn(tabulated.table(t));
    } else {
      for (int c = 0; c < nt; ++c)
        for (int t = 0; t < nt; ++t) fn(tabulated.table_pair(c, t));
    }
  };
  if (precision_ == MixedPrecision::Single)
    each_table([&](const tab::TabulatedEmbedding& t) { tables_sp_.emplace_back(t); });
  else
    each_table([&](const tab::TabulatedEmbedding& t) { tables_hp_.emplace_back(t); });
}

std::size_t MixedFusedDP::table_bytes() const {
  std::size_t b = 0;
  for (const auto& t : tables_sp_) b += t.bytes();
  for (const auto& t : tables_hp_) b += t.bytes();
  return b;
}

void MixedFusedDP::eval_table(std::size_t idx, float s, float* g) const {
  if (precision_ == MixedPrecision::Single)
    tables_sp_[idx].eval(s, g);
  else
    tables_hp_[idx].eval(s, g);
}

void MixedFusedDP::eval_table_deriv(std::size_t idx, float s, float* g, float* dg) const {
  if (precision_ == MixedPrecision::Single)
    tables_sp_[idx].eval_with_deriv(s, g, dg);
  else
    tables_hp_[idx].eval_with_deriv(s, g, dg);
}

md::ForceResult MixedFusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                      const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("mixed.compute");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  build_env_mat(cfg, box, atoms, nlist, env_, core::EnvMatKernel::Optimized, periodic);

  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);

  atom_energy_.assign(n, 0.0);
  AlignedVector<double> g_rmat(n * static_cast<std::size_t>(nm) * 4, 0.0);
  double energy_total = 0.0;

#pragma omp parallel reduction(+ : energy_total)
  {
    AlignedVector<float> g_row(m), dg_row(m), a_sp(4 * m), ga_sp(4 * m);
    AlignedVector<double> a_mat(4 * m), g_a(4 * m);
    AtomKernelScratch scratch;
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(a_sp.data(), 0, 4 * m * sizeof(float));

      // ---- Pass 1 in single precision ----------------------------------
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t table = model.pair_index(atoms.type[i], ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const double* rrow = env_.rmat_row(i, off + k);
          eval_table(table, static_cast<float>(rrow[0]), g_row.data());
          const float r[4] = {static_cast<float>(rrow[0]), static_cast<float>(rrow[1]),
                              static_cast<float>(rrow[2]), static_cast<float>(rrow[3])};
          for (int c = 0; c < 4; ++c) {
            const float rv = r[c];
            float* arow = a_sp.data() + static_cast<std::size_t>(c) * m;
#pragma omp simd
            for (std::size_t b = 0; b < m; ++b) arow[b] += rv * g_row[b];
          }
        }
      }
      // ---- Descriptor + fitting in double -------------------------------
      for (std::size_t k = 0; k < 4 * m; ++k)
        a_mat[k] = static_cast<double>(a_sp[k]) * scale;
      const double e_i = core::descriptor_fit_atom(model.fitting(atoms.type[i]), a_mat.data(),
                                                   m, m_sub, scale, scratch, g_a.data());
      atom_energy_[i] = e_i;
      energy_total += e_i;

      // ---- Pass 2 in single precision, accumulated into double ----------
      for (std::size_t k = 0; k < 4 * m; ++k) ga_sp[k] = static_cast<float>(g_a[k]);
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t table = model.pair_index(atoms.type[i], ty);
        const int off = cfg.type_offset(ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const double* rrow = env_.rmat_row(i, off + k);
          eval_table_deriv(table, static_cast<float>(rrow[0]), g_row.data(), dg_row.data());
          double* grow =
              g_rmat.data() +
              (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off + k)) * 4;
          float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0, acc_s = 0;
          const float r0 = static_cast<float>(rrow[0]), r1 = static_cast<float>(rrow[1]),
                      r2 = static_cast<float>(rrow[2]), r3 = static_cast<float>(rrow[3]);
          const float* ga0 = ga_sp.data();
          const float* ga1 = ga_sp.data() + m;
          const float* ga2 = ga_sp.data() + 2 * m;
          const float* ga3 = ga_sp.data() + 3 * m;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3, acc_s)
          for (std::size_t b = 0; b < m; ++b) {
            const float gb = g_row[b];
            acc0 += ga0[b] * gb;
            acc1 += ga1[b] * gb;
            acc2 += ga2[b] * gb;
            acc3 += ga3[b] * gb;
            acc_s += (r0 * ga0[b] + r1 * ga1[b] + r2 * ga2[b] + r3 * ga3[b]) * dg_row[b];
          }
          grow[0] = static_cast<double>(acc0) + static_cast<double>(acc_s);
          grow[1] = acc1;
          grow[2] = acc2;
          grow[3] = acc3;
        }
      }
    }
  }

  md::ForceResult out;
  out.energy = energy_total;
  atoms.zero_forces();
  prod_force_virial(env_, g_rmat.data(), box, atoms, periodic, atoms.force, out.virial);
  return out;
}

}  // namespace dp::fused
