#include "fused/mixed_model.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "common/team.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"

namespace dp::fused {

using core::AtomKernelScratch;
using core::ModelConfig;

MixedFusedDP::MixedFusedDP(const tab::TabulatedDP& tabulated, MixedPrecision precision)
    : tab_(tabulated), precision_(precision) {
  const auto& model = tabulated.model();
  const int nt = model.config().ntypes;
  auto each_table = [&](auto&& fn) {
    if (model.config().type_one_side) {
      for (int t = 0; t < nt; ++t) fn(tabulated.table(t));
    } else {
      for (int c = 0; c < nt; ++c)
        for (int t = 0; t < nt; ++t) fn(tabulated.table_pair(c, t));
    }
  };
  if (precision_ == MixedPrecision::Single)
    each_table([&](const tab::TabulatedEmbedding& t) { tables_sp_.emplace_back(t); });
  else
    each_table([&](const tab::TabulatedEmbedding& t) { tables_hp_.emplace_back(t); });
}

std::size_t MixedFusedDP::table_bytes() const {
  std::size_t b = 0;
  for (const auto& t : tables_sp_) b += t.bytes();
  for (const auto& t : tables_hp_) b += t.bytes();
  return b;
}

void MixedFusedDP::eval_table(std::size_t idx, float s, float* g) const {
  if (precision_ == MixedPrecision::Single)
    tables_sp_[idx].eval(s, g);
  else
    tables_hp_[idx].eval(s, g);
}

void MixedFusedDP::eval_table_deriv(std::size_t idx, float s, float* g, float* dg) const {
  if (precision_ == MixedPrecision::Single)
    tables_sp_[idx].eval_with_deriv(s, g, dg);
  else
    tables_hp_[idx].eval_with_deriv(s, g, dg);
}

void MixedFusedDP::prepare(std::size_t n) {
  const std::size_t m = tab_.model().config().m();
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  scratch_.resize(static_cast<std::size_t>(std::max(1, omp_get_max_threads())));
  for (ThreadScratch& sc : scratch_) {
    sc.g_row.resize(m);
    sc.dg_row.resize(m);
    sc.a_sp.resize(4 * m);
    sc.ga_sp.resize(4 * m);
    sc.a_mat.resize(4 * m);
    sc.g_a.resize(4 * m);
  }
}

md::ForceResult MixedFusedDP::compute(const md::Box& box, md::Atoms& atoms,
                                      const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("mixed.compute");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, core::EnvMatKernel::Optimized,
                periodic);

  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  double energy_total = 0.0;

  // BuildTeam, not `#pragma omp parallel` — zero-suppression TSan floor
  // (common/team.hpp); per-thread energy partials fold on the master.
  const int team_size = static_cast<int>(scratch_.size());
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int tid, int T) {
    ThreadScratch& sc = scratch_[static_cast<std::size_t>(tid)];
    sc.energy_partial = 0.0;
    const std::size_t i_begin = chunk_bound(n, tid, T);
    const std::size_t i_end = chunk_bound(n, tid + 1, T);
    for (std::size_t i = i_begin; i < i_end; ++i) {
      std::memset(sc.a_sp.data(), 0, 4 * m * sizeof(float));

      // ---- Pass 1 in single precision ----------------------------------
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t table = model.pair_index(atoms.type[i], ty);
        const std::size_t base = env_.block_begin(i, ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const double* rrow = env_.rmat_at(base + static_cast<std::size_t>(k));
          eval_table(table, static_cast<float>(rrow[0]), sc.g_row.data());
          const float r[4] = {static_cast<float>(rrow[0]), static_cast<float>(rrow[1]),
                              static_cast<float>(rrow[2]), static_cast<float>(rrow[3])};
          for (int c = 0; c < 4; ++c) {
            const float rv = r[c];
            float* arow = sc.a_sp.data() + static_cast<std::size_t>(c) * m;
#pragma omp simd
            for (std::size_t b = 0; b < m; ++b) arow[b] += rv * sc.g_row[b];
          }
        }
      }
      // ---- Descriptor + fitting in double -------------------------------
      for (std::size_t k = 0; k < 4 * m; ++k)
        sc.a_mat[k] = static_cast<double>(sc.a_sp[k]) * scale;
      const double e_i =
          core::descriptor_fit_atom(model.fitting(atoms.type[i]), sc.a_mat.data(), m, m_sub,
                                    scale, sc.scratch, sc.g_a.data());
      atom_energy_[i] = e_i;
      sc.energy_partial += e_i;

      // ---- Pass 2 in single precision, accumulated into double ----------
      for (std::size_t k = 0; k < 4 * m; ++k) sc.ga_sp[k] = static_cast<float>(sc.g_a[k]);
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t table = model.pair_index(atoms.type[i], ty);
        const std::size_t base = env_.block_begin(i, ty);
        const int limit = env_.count(i, ty);
        for (int k = 0; k < limit; ++k) {
          const std::size_t s = base + static_cast<std::size_t>(k);
          const double* rrow = env_.rmat_at(s);
          eval_table_deriv(table, static_cast<float>(rrow[0]), sc.g_row.data(),
                           sc.dg_row.data());
          double* grow = g_rmat_.data() + s * 4;
          float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0, acc_s = 0;
          const float r0 = static_cast<float>(rrow[0]), r1 = static_cast<float>(rrow[1]),
                      r2 = static_cast<float>(rrow[2]), r3 = static_cast<float>(rrow[3]);
          const float* ga0 = sc.ga_sp.data();
          const float* ga1 = sc.ga_sp.data() + m;
          const float* ga2 = sc.ga_sp.data() + 2 * m;
          const float* ga3 = sc.ga_sp.data() + 3 * m;
#pragma omp simd reduction(+ : acc0, acc1, acc2, acc3, acc_s)
          for (std::size_t b = 0; b < m; ++b) {
            const float gb = sc.g_row[b];
            acc0 += ga0[b] * gb;
            acc1 += ga1[b] * gb;
            acc2 += ga2[b] * gb;
            acc3 += ga3[b] * gb;
            acc_s += (r0 * ga0[b] + r1 * ga1[b] + r2 * ga2[b] + r3 * ga3[b]) * sc.dg_row[b];
          }
          grow[0] = static_cast<double>(acc0) + static_cast<double>(acc_s);
          grow[1] = acc1;
          grow[2] = acc2;
          grow[3] = acc3;
        }
      }
    }
  };
  team.run(team_size, BodyRef(body));
  for (const ThreadScratch& sc : scratch_) energy_total += sc.energy_partial;

  md::ForceResult out;
  out.energy = energy_total;
  atoms.zero_forces();
  prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                    prod_ws_);
  return out;
}

}  // namespace dp::fused
