// Fused inference for the radial se_r descriptor.
//
// D_i[b] = (1/N_m) sum_j g_b(s(r_ij)) — only the gated inverse distance
// enters, so the descriptor is rotation-invariant trivially and the whole
// directional machinery (the 4-column environment matrix contraction)
// disappears. Roughly 4x less embedding-stage arithmetic than se_a at equal
// widths, at the cost of a far less expressive representation; DeePMD ships
// both, and so does this library. Uses the same quintic tables, environment
// matrices and force scatter as the se_a paths.
//
// Padding note: se_r lacks se_a's zero-row protection — a padded slot
// contributes g(0), not 0, and that is what makes the descriptor SMOOTH: as
// a neighbor leaves the cutoff its s decays to 0 and its row continuously
// becomes the padding value. The kernel therefore adds n_padded * g(0)
// analytically (g(0) cached per table) instead of walking padded slots —
// redundancy removal stays exact AND the energy stays continuous.
#pragma once

#include <vector>

#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/force_field.hpp"
#include "nn/fitting_net.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::fused {

class SeRFusedDP final : public md::ForceField {
 public:
  /// The model must be configured with DescriptorKind::SeR (the fitting-net
  /// input is M, not M< x M).
  explicit SeRFusedDP(const tab::TabulatedDP& tabulated);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return tab_.model().config().rcut; }
  std::uint64_t extrapolations() const override { return tab_.extrapolations(); }
  std::size_t neighbor_reservation() const override {
    return static_cast<std::size_t>(tab_.model().config().nm());
  }

  const std::vector<double>& atom_energies() const { return atom_energy_; }

 private:
  void prepare(std::size_t n);

  struct ThreadScratch {
    AlignedVector<double> g_row, dg_row, d_vec, g_d;
    nn::FittingNet::Workspace fit_ws;
    double energy_partial = 0.0;  ///< folded by the master, ascending thread order
  };

  const tab::TabulatedDP& tab_;
  std::vector<AlignedVector<double>> g_zero_;  ///< g(0) per embedding table
  core::EnvMat env_;
  core::EnvMatWorkspace env_ws_;
  core::ProdForceWorkspace prod_ws_;
  AlignedVector<double> g_rmat_;
  std::vector<ThreadScratch> scratch_;
  std::vector<double> atom_energy_;
};

}  // namespace dp::fused
