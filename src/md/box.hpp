// Orthorhombic periodic simulation box.
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace dp::md {

class Box {
 public:
  Box() = default;
  explicit Box(Vec3 lengths) : l_(lengths) {
    DP_CHECK_MSG(l_.x > 0 && l_.y > 0 && l_.z > 0, "box lengths must be positive");
    inv_ = {1.0 / l_.x, 1.0 / l_.y, 1.0 / l_.z};
  }
  Box(double lx, double ly, double lz) : Box(Vec3{lx, ly, lz}) {}

  const Vec3& lengths() const { return l_; }
  double volume() const { return l_.x * l_.y * l_.z; }

  /// Map a position into [0, L) in every dimension.
  Vec3 wrap(Vec3 r) const {
    for (int d = 0; d < 3; ++d) {
      double& c = r[d];
      c -= std::floor(c * inv_[d]) * l_[d];
      if (c >= l_[d]) c = 0.0;  // guard the r == L rounding edge
    }
    return r;
  }

  /// Minimum-image convention for a displacement vector.
  Vec3 min_image(Vec3 d) const {
    for (int k = 0; k < 3; ++k) {
      double& c = d[k];
      c -= std::round(c * inv_[k]) * l_[k];
    }
    return d;
  }

  /// True if a cutoff sphere fits: rc < L/2 in every dimension (required for
  /// the minimum-image convention to see each neighbor at most once).
  bool accommodates_cutoff(double rc) const {
    return 2.0 * rc < l_.x && 2.0 * rc < l_.y && 2.0 * rc < l_.z;
  }

 private:
  Vec3 l_{1, 1, 1};
  Vec3 inv_{1, 1, 1};
};

}  // namespace dp::md
