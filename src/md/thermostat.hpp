// Thermostats for NVT sampling. The paper's measurement protocol is NVE
// (velocity-Verlet only), but production MLMD campaigns — the applications
// the paper motivates (phase diagrams, nucleation) — run NVT; both are
// provided.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "md/atoms.hpp"

namespace dp::md {

class Thermostat {
 public:
  virtual ~Thermostat() = default;
  /// Adjust velocities after the force update of a step of length dt [ps].
  virtual void apply(Atoms& atoms, double dt) = 0;
};

/// Langevin dynamics: velocity friction + matched Gaussian noise
/// (fluctuation-dissipation). `damping` is the relaxation time [ps].
class LangevinThermostat final : public Thermostat {
 public:
  LangevinThermostat(double temperature, double damping, std::uint64_t seed = 7);
  void apply(Atoms& atoms, double dt) override;
  double temperature() const { return t_target_; }

 private:
  double t_target_;
  double damping_;
  Rng rng_;
};

/// Berendsen weak-coupling rescaling: drives T toward the target with time
/// constant tau. Cheap and stable, not canonical — standard equilibration
/// tool.
class BerendsenThermostat final : public Thermostat {
 public:
  BerendsenThermostat(double temperature, double tau);
  void apply(Atoms& atoms, double dt) override;

 private:
  double t_target_;
  double tau_;
};

/// Nose-Hoover thermostat (single chain): the standard canonical-ensemble
/// coupling for production NVT. The thermostat variable xi evolves with the
/// instantaneous kinetic energy and rescales velocities each step.
class NoseHooverThermostat final : public Thermostat {
 public:
  /// `tau` is the coupling period [ps] (sets the thermostat mass).
  NoseHooverThermostat(double temperature, double tau);
  void apply(Atoms& atoms, double dt) override;
  double xi() const { return xi_; }

 private:
  double t_target_;
  double tau_;
  double xi_ = 0.0;  ///< thermostat friction variable [1/ps]
};

/// Berendsen barostat: isotropic box/coordinate rescaling toward a target
/// pressure. Applied by the Simulation driver (it must rescale the box);
/// exposed as a separate interface because it changes the volume.
class BerendsenBarostat {
 public:
  /// target pressure [bar]; tau [ps]; compressibility [1/bar]
  /// (4.6e-5 1/bar is liquid water; metals are ~1e-6).
  BerendsenBarostat(double pressure_bar, double tau, double compressibility = 4.6e-5);

  /// Returns the linear box-scaling factor for this step.
  double scale_factor(double current_pressure_bar, double dt) const;

 private:
  double p_target_;
  double tau_;
  double kappa_;
};

}  // namespace dp::md
