#include "md/neighbor.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/team.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::md {

namespace {

// The fork-join team, BodyRef, and chunk_bound moved to common/team.hpp so
// the environment-matrix build and the force/virial fold share the same
// TSan-visible primitive (see the header and docs/STATIC_ANALYSIS.md for
// the happens-before argument).

struct CellGrid {
  int nx, ny, nz;
  double cx, cy, cz;  // cell sizes
  int index_of(const Vec3& r) const {
    int ix = std::min(static_cast<int>(r.x / cx), nx - 1);
    int iy = std::min(static_cast<int>(r.y / cy), ny - 1);
    int iz = std::min(static_cast<int>(r.z / cz), nz - 1);
    ix = std::max(ix, 0);
    iy = std::max(iy, 0);
    iz = std::max(iz, 0);
    return (ix * ny + iy) * nz + iz;
  }
};

/// Deterministic parallel CSR construction: per-center counts + per-thread
/// caches -> exclusive scan -> disjoint slab copies.
///
/// Happens-before argument (see docs/STATIC_ANALYSIS.md): the walk phase
/// writes disjoint `offsets` slots and thread-private caches; a barrier
/// orders every count before the thread-0 scan; a second barrier orders
/// the scan (and the `list.resize`) before every slab copy; slab copies
/// target disjoint [offsets[begin], offsets[end]) ranges by construction.
/// BuildTeam::run's check-in orders all writes before any reader of the
/// list. No atomics are needed — every cross-thread edge is a BuildTeam
/// barrier or the job hand-off, all mutex-based and TSan-visible.
///
/// `walk(i, out)` appends center i's neighbors to `out` in the same order
/// a serial loop would produce; the concatenation in center order is then
/// independent of the thread count, so the output CSR is byte-identical
/// at any OMP_NUM_THREADS.
template <class Walk>
void fill_csr_parallel(std::size_t n_centers, std::vector<int>& offsets,
                       std::vector<int>& list, NeighborWorkspace& ws, Walk&& walk) {
  offsets.assign(n_centers + 1, 0);
  const int team_size = std::max(1, omp_get_max_threads());
  if (ws.tl.size() < static_cast<std::size_t>(team_size))
    ws.tl.resize(static_cast<std::size_t>(team_size));
  bool overflow = false;
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    std::vector<int>& buf = ws.tl[static_cast<std::size_t>(t)];
    buf.clear();
    const std::size_t begin = chunk_bound(n_centers, t, T);
    const std::size_t end = chunk_bound(n_centers, t + 1, T);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t before = buf.size();
      walk(i, buf);
      // Per-center counts fit an int (a center has < n_atoms <= INT_MAX
      // neighbors); the *sum* is checked below before the scan commits.
      offsets[i + 1] = static_cast<int>(buf.size() - before);
    }
    team.barrier();
    if (t == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < n_centers; ++i)
        total += static_cast<std::size_t>(offsets[i + 1]);
      if (total > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
        overflow = true;  // checked after the job; slab copies are skipped
      } else {
        for (std::size_t i = 0; i < n_centers; ++i) offsets[i + 1] += offsets[i];
        list.resize(total);
      }
    }
    team.barrier();  // scan + resize visible to every slab copy below
    if (!overflow && begin < end && !buf.empty())
      std::memcpy(list.data() + offsets[begin], buf.data(), buf.size() * sizeof(int));
  };
  team.run(team_size, BodyRef(body));
  DP_CHECK_MSG(!overflow,
               "neighbor list exceeds 2^31 slots — the int CSR cannot index it; "
               "shard the system across ranks or widen the index type");
}

/// Two-pass parallel counting sort of atoms into cells. Pass 1 fills
/// per-thread histograms over contiguous index chunks; a single-threaded
/// scan converts them to per-(cell, thread) cursors; pass 2 scatters.
/// Within a cell, slots are ordered by (thread, index-in-chunk) which — by
/// chunk contiguity — is global index order: byte-identical to the serial
/// cursor fill at any thread count. Same barrier-only happens-before
/// structure as fill_csr_parallel.
void bin_atoms_parallel(const Box& box, const std::vector<Vec3>& pos, const CellGrid& grid,
                        int ncells, bool periodic, NeighborWorkspace& ws) {
  const std::size_t n_pos = pos.size();
  ws.atom_cell.resize(n_pos);
  ws.cell_atoms.resize(n_pos);
  ws.cell_start.resize(static_cast<std::size_t>(ncells) + 1);
  const int team_size = std::max(1, omp_get_max_threads());
  ws.hist.assign(static_cast<std::size_t>(team_size) * static_cast<std::size_t>(ncells), 0);
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    int* h = ws.hist.data() + static_cast<std::size_t>(t) * static_cast<std::size_t>(ncells);
    const std::size_t begin = chunk_bound(n_pos, t, T);
    const std::size_t end = chunk_bound(n_pos, t + 1, T);
    for (std::size_t a = begin; a < end; ++a) {
      // Non-periodic ghost positions may lie outside the box; index_of's
      // clamp handles the fringe since the ghost shell is thinner than one
      // cell (cells >= cutoff >= ghost shell).
      const Vec3 r = periodic ? box.wrap(pos[a]) : pos[a];
      const int c = grid.index_of(r);
      ws.atom_cell[a] = c;
      ++h[c];
    }
    team.barrier();
    if (t == 0) {
      int run = 0;  // n_pos <= INT_MAX is checked by build()
      for (int c = 0; c < ncells; ++c) {
        ws.cell_start[static_cast<std::size_t>(c)] = run;
        for (int tt = 0; tt < T; ++tt) {
          int& slot = ws.hist[static_cast<std::size_t>(tt) * static_cast<std::size_t>(ncells) +
                              static_cast<std::size_t>(c)];
          const int count = slot;
          slot = run;  // becomes thread tt's scatter cursor for cell c
          run += count;
        }
      }
      ws.cell_start[static_cast<std::size_t>(ncells)] = run;
    }
    team.barrier();  // cursors visible to every scatter below
    for (std::size_t a = begin; a < end; ++a)
      ws.cell_atoms[static_cast<std::size_t>(h[ws.atom_cell[a]]++)] = static_cast<int>(a);
  };
  team.run(team_size, BodyRef(body));
}

struct NeighborMetrics {
  obs::Counter& builds = obs::MetricsRegistry::instance().counter("neighbor.builds");
  obs::Histogram& build_seconds =
      obs::MetricsRegistry::instance().histogram("neighbor.build_seconds");
  obs::Histogram& bin_seconds =
      obs::MetricsRegistry::instance().histogram("neighbor.bin_seconds");
  obs::Histogram& walk_seconds =
      obs::MetricsRegistry::instance().histogram("neighbor.walk_seconds");
  obs::Gauge& workspace_bytes =
      obs::MetricsRegistry::instance().gauge("neighbor.workspace_bytes");
  static NeighborMetrics& get() {
    static NeighborMetrics m;
    return m;
  }
};
}  // namespace

std::size_t NeighborWorkspace::bytes() const {
  std::size_t b = (atom_cell.capacity() + cell_start.capacity() + cell_atoms.capacity() +
                   hist.capacity() + half_offsets.capacity() + half_list.capacity()) *
                  sizeof(int);
  b += tl.capacity() * sizeof(std::vector<int>);
  for (const auto& v : tl) b += v.capacity() * sizeof(int);
  return b;
}

std::size_t NeighborList::workspace_bytes() const {
  return ws_.bytes() + (offsets_.capacity() + list_.capacity()) * sizeof(int) +
         pos_at_build_.capacity() * sizeof(Vec3);
}

void NeighborList::build_half(const Box& box, const std::vector<Vec3>& pos, bool periodic) {
  // Build the full list, then keep each pair on its lower-index atom: the
  // extra pass is cheap next to the distance tests and reuses the same
  // (well-tested) cell machinery. The filter itself runs through the
  // count-then-fill scheme, writing into workspace scratch that is then
  // swapped with the CSR (swap exchanges capacities, so both buffers reach
  // their steady size after one warm-up cycle and stay allocation-free).
  build(box, pos, SIZE_MAX, periodic);
  const std::size_t n = n_centers();
  fill_csr_parallel(n, ws_.half_offsets, ws_.half_list, ws_,
                    [&](std::size_t i, std::vector<int>& out) {
                      for (int idx = offsets_[i]; idx < offsets_[i + 1]; ++idx) {
                        const int j = list_[static_cast<std::size_t>(idx)];
                        if (static_cast<std::size_t>(j) > i) out.push_back(j);
                      }
                    });
  offsets_.swap(ws_.half_offsets);
  list_.swap(ws_.half_list);
  half_ = true;
  NeighborMetrics::get().workspace_bytes.set(static_cast<double>(workspace_bytes()));
}

void NeighborList::build(const Box& box, const std::vector<Vec3>& pos, std::size_t n_centers,
                         bool periodic) {
  // Rebuild count + duration feed the observability layer (the paper's step
  // profiles break neighbor maintenance out as its own bar); recorded via
  // RAII so the brute-force early-exit below is covered too.
  struct BuildRecord {
    WallTimer t;
    ~BuildRecord() {
      NeighborMetrics& m = NeighborMetrics::get();
      m.builds.inc();
      m.build_seconds.observe(t.seconds());
    }
  } build_record;
  obs::TraceSpan span("neighbor.build", "neighbor");
  half_ = false;
  if (n_centers == SIZE_MAX) n_centers = pos.size();
  DP_CHECK(n_centers <= pos.size());
  DP_CHECK_MSG(pos.size() <= static_cast<std::size_t>(std::numeric_limits<int>::max()),
               "atom count exceeds the int neighbor-index range");
  periodic_ = periodic;
  n_atoms_at_build_ = pos.size();
  pos_at_build_.assign(pos.begin(), pos.begin() + static_cast<std::ptrdiff_t>(n_centers));

  const double cut = build_cutoff();
  const Vec3 L = box.lengths();
  const int nx = std::max(1, static_cast<int>(L.x / cut));
  const int ny = std::max(1, static_cast<int>(L.y / cut));
  const int nz = std::max(1, static_cast<int>(L.z / cut));

  // The 27-stencil walk needs >= 3 cells per periodic dimension to avoid
  // visiting the same cell twice; small boxes use the quadratic fallback.
  if ((periodic && (nx < 3 || ny < 3 || nz < 3)) || (!periodic && (nx * ny * nz < 8))) {
    build_brute(box, pos, n_centers, periodic);
    return;
  }

  CellGrid grid{nx, ny, nz, L.x / nx, L.y / ny, L.z / nz};
  const int ncells = nx * ny * nz;

  NeighborMetrics& metrics = NeighborMetrics::get();
  {
    WallTimer bin_timer;
    bin_atoms_parallel(box, pos, grid, ncells, periodic, ws_);
    metrics.bin_seconds.observe(bin_timer.seconds());
  }

  const double cut2 = cut * cut;
  WallTimer walk_timer;
  fill_csr_parallel(
      n_centers, offsets_, list_, ws_, [&](std::size_t i, std::vector<int>& out) {
        const Vec3 ri = pos[i];
        const int ci = ws_.atom_cell[i];
        const int ix = ci / (ny * nz), iy = (ci / nz) % ny, iz = ci % nz;
        for (int dx = -1; dx <= 1; ++dx)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dz = -1; dz <= 1; ++dz) {
              int jx = ix + dx, jy = iy + dy, jz = iz + dz;
              if (periodic) {
                jx = (jx + nx) % nx;
                jy = (jy + ny) % ny;
                jz = (jz + nz) % nz;
              } else if (jx < 0 || jy < 0 || jz < 0 || jx >= nx || jy >= ny || jz >= nz) {
                continue;
              }
              const auto cj = static_cast<std::size_t>((jx * ny + jy) * nz + jz);
              for (int s = ws_.cell_start[cj]; s < ws_.cell_start[cj + 1]; ++s) {
                const int j = ws_.cell_atoms[static_cast<std::size_t>(s)];
                if (static_cast<std::size_t>(j) == i) continue;
                Vec3 d = pos[static_cast<std::size_t>(j)] - ri;
                if (periodic) d = box.min_image(d);
                if (norm2(d) < cut2) out.push_back(j);
              }
            }
      });
  metrics.walk_seconds.observe(walk_timer.seconds());
  metrics.workspace_bytes.set(static_cast<double>(workspace_bytes()));
}

void NeighborList::build_brute(const Box& box, const std::vector<Vec3>& pos,
                               std::size_t n_centers, bool periodic) {
  const double cut2 = build_cutoff() * build_cutoff();
  const std::size_t n_pos = pos.size();
  NeighborMetrics& metrics = NeighborMetrics::get();
  WallTimer walk_timer;
  fill_csr_parallel(n_centers, offsets_, list_, ws_,
                    [&](std::size_t i, std::vector<int>& out) {
                      for (std::size_t j = 0; j < n_pos; ++j) {
                        if (j == i) continue;
                        Vec3 d = pos[j] - pos[i];
                        if (periodic) d = box.min_image(d);
                        if (norm2(d) < cut2) out.push_back(static_cast<int>(j));
                      }
                    });
  metrics.walk_seconds.observe(walk_timer.seconds());
  metrics.workspace_bytes.set(static_cast<double>(workspace_bytes()));
}

std::size_t NeighborList::max_neighbors() const {
  std::size_t m = 0;
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    m = std::max(m, static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]));
  return m;
}

double NeighborList::mean_neighbors() const {
  const std::size_t n = n_centers();
  return n == 0 ? 0.0 : static_cast<double>(list_.size()) / static_cast<double>(n);
}

bool NeighborList::needs_rebuild(const Box& box, const std::vector<Vec3>& pos,
                                 std::size_t n_check) const {
  // Staleness guard: any change in the total atom count (locals + ghosts)
  // invalidates the list outright. Only center positions are retained, so
  // the displacement scan covers at most the build's center prefix — the
  // only part this predicate ever consulted.
  if (pos.size() != n_atoms_at_build_) return true;
  const std::size_t n = std::min(n_check, pos_at_build_.size());
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 d = pos[i] - pos_at_build_[i];
    if (periodic_) d = box.min_image(d);
    if (norm2(d) > limit2) return true;
  }
  return false;
}

NeighborList NeighborList::prefix(std::size_t k) const {
  DP_CHECK_MSG(!half_, "prefix() needs a full list");
  NeighborList out(rc_, skin_);
  out.periodic_ = periodic_;
  if (offsets_.empty()) {  // never built; only the empty prefix exists
    DP_CHECK(k == 0);
    out.offsets_ = {0};
    return out;
  }
  DP_CHECK(k < offsets_.size());
  out.offsets_.assign(offsets_.begin(), offsets_.begin() + static_cast<std::ptrdiff_t>(k + 1));
  out.list_.assign(list_.begin(), list_.begin() + offsets_[k]);
  out.pos_at_build_.assign(pos_at_build_.begin(),
                           pos_at_build_.begin() + static_cast<std::ptrdiff_t>(k));
  out.n_atoms_at_build_ = n_atoms_at_build_;
  return out;
}

NeighborList NeighborList::compact(std::size_t begin, std::size_t end,
                                   std::vector<int>& atom_index) const {
  DP_CHECK_MSG(!half_, "compact() needs a full list");
  DP_CHECK(begin <= end && end < offsets_.size());
  NeighborList out(rc_, skin_);
  out.periodic_ = periodic_;
  atom_index.clear();
  // Dense remap table (this file is a hot path: no hash maps). Centers claim
  // the first slots so the compact system's center prefix is [0, end-begin).
  std::vector<int> remap(n_atoms_at_build_, -1);
  for (std::size_t i = begin; i < end; ++i) {
    remap[i] = static_cast<int>(atom_index.size());
    atom_index.push_back(static_cast<int>(i));
  }
  out.offsets_.assign(end - begin + 1, 0);
  out.list_.reserve(static_cast<std::size_t>(offsets_[end] - offsets_[begin]));
  for (std::size_t i = begin; i < end; ++i) {
    for (int idx = offsets_[i]; idx < offsets_[i + 1]; ++idx) {
      const auto j = static_cast<std::size_t>(list_[static_cast<std::size_t>(idx)]);
      if (remap[j] < 0) {
        remap[j] = static_cast<int>(atom_index.size());
        atom_index.push_back(static_cast<int>(j));
      }
      out.list_.push_back(remap[j]);
    }
    out.offsets_[i - begin + 1] = static_cast<int>(out.list_.size());
  }
  // Compact centers are the first end-begin slots; only their positions are
  // retained (ghost slots are never consulted by needs_rebuild).
  out.pos_at_build_.assign(pos_at_build_.begin() + static_cast<std::ptrdiff_t>(begin),
                           pos_at_build_.begin() + static_cast<std::ptrdiff_t>(end));
  out.n_atoms_at_build_ = atom_index.size();
  return out;
}

std::vector<std::vector<int>> brute_force_neighbors(const Box& box,
                                                    const std::vector<Vec3>& pos, double cutoff,
                                                    std::size_t n_centers, bool periodic) {
  if (n_centers == SIZE_MAX) n_centers = pos.size();
  const double cut2 = cutoff * cutoff;
  std::vector<std::vector<int>> out(n_centers);
  for (std::size_t i = 0; i < n_centers; ++i)
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (j == i) continue;
      Vec3 d = pos[j] - pos[i];
      if (periodic) d = box.min_image(d);
      if (norm2(d) < cut2) out[i].push_back(static_cast<int>(j));
    }
  return out;
}

}  // namespace dp::md
