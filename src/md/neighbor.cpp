#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::md {

namespace {
struct CellGrid {
  int nx, ny, nz;
  double cx, cy, cz;  // cell sizes
  int index_of(const Vec3& r) const {
    int ix = std::min(static_cast<int>(r.x / cx), nx - 1);
    int iy = std::min(static_cast<int>(r.y / cy), ny - 1);
    int iz = std::min(static_cast<int>(r.z / cz), nz - 1);
    ix = std::max(ix, 0);
    iy = std::max(iy, 0);
    iz = std::max(iz, 0);
    return (ix * ny + iy) * nz + iz;
  }
};
}  // namespace

void NeighborList::build_half(const Box& box, const std::vector<Vec3>& pos, bool periodic) {
  // Build the full list, then keep each pair on its lower-index atom: the
  // extra pass is cheap next to the distance tests and reuses the same
  // (well-tested) cell machinery.
  build(box, pos, SIZE_MAX, periodic);
  std::vector<int> half_list;
  std::vector<int> half_offsets(offsets_.size(), 0);
  half_list.reserve(list_.size() / 2);
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    for (int idx = offsets_[i]; idx < offsets_[i + 1]; ++idx) {
      const int j = list_[static_cast<std::size_t>(idx)];
      if (static_cast<std::size_t>(j) > i) half_list.push_back(j);
    }
    half_offsets[i + 1] = static_cast<int>(half_list.size());
  }
  list_ = std::move(half_list);
  offsets_ = std::move(half_offsets);
  half_ = true;
}

void NeighborList::build(const Box& box, const std::vector<Vec3>& pos, std::size_t n_centers,
                         bool periodic) {
  // Rebuild count + duration feed the observability layer (the paper's step
  // profiles break neighbor maintenance out as its own bar); recorded via
  // RAII so the brute-force early-exit below is covered too.
  struct BuildRecord {
    WallTimer t;
    ~BuildRecord() {
      static obs::Counter& builds = obs::MetricsRegistry::instance().counter("neighbor.builds");
      static obs::Histogram& seconds =
          obs::MetricsRegistry::instance().histogram("neighbor.build_seconds");
      builds.inc();
      seconds.observe(t.seconds());
    }
  } build_record;
  obs::TraceSpan span("neighbor.build", "neighbor");
  half_ = false;
  if (n_centers == SIZE_MAX) n_centers = pos.size();
  DP_CHECK(n_centers <= pos.size());
  periodic_ = periodic;
  pos_at_build_ = pos;

  const double cut = build_cutoff();
  const Vec3 L = box.lengths();
  const int nx = std::max(1, static_cast<int>(L.x / cut));
  const int ny = std::max(1, static_cast<int>(L.y / cut));
  const int nz = std::max(1, static_cast<int>(L.z / cut));

  // The 27-stencil walk needs >= 3 cells per periodic dimension to avoid
  // visiting the same cell twice; small boxes use the quadratic fallback.
  if ((periodic && (nx < 3 || ny < 3 || nz < 3)) || (!periodic && (nx * ny * nz < 8))) {
    build_brute(box, pos, n_centers, periodic);
    return;
  }

  CellGrid grid{nx, ny, nz, L.x / nx, L.y / ny, L.z / nz};
  const int ncells = nx * ny * nz;

  // Bucket every atom (ghosts included) into cells. Non-periodic ghost
  // positions may lie outside the box; clamp handles the fringe since the
  // ghost shell is thinner than one cell (cells >= cutoff >= ghost shell).
  std::vector<int> cell_count(ncells, 0);
  std::vector<int> atom_cell(pos.size());
  for (std::size_t a = 0; a < pos.size(); ++a) {
    const Vec3 r = periodic ? box.wrap(pos[a]) : pos[a];
    atom_cell[a] = grid.index_of(r);
    ++cell_count[atom_cell[a]];
  }
  std::vector<int> cell_start(ncells + 1, 0);
  for (int c = 0; c < ncells; ++c) cell_start[c + 1] = cell_start[c] + cell_count[c];
  std::vector<int> cell_atoms(pos.size());
  {
    std::vector<int> cursor(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t a = 0; a < pos.size(); ++a) cell_atoms[cursor[atom_cell[a]]++] = a;
  }

  const double cut2 = cut * cut;
  offsets_.assign(n_centers + 1, 0);
  list_.clear();
  list_.reserve(n_centers * 64);

  for (std::size_t i = 0; i < n_centers; ++i) {
    const Vec3 ri = pos[i];
    const int ci = atom_cell[i];
    const int ix = ci / (ny * nz), iy = (ci / nz) % ny, iz = ci % nz;
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          int jx = ix + dx, jy = iy + dy, jz = iz + dz;
          if (periodic) {
            jx = (jx + nx) % nx;
            jy = (jy + ny) % ny;
            jz = (jz + nz) % nz;
          } else if (jx < 0 || jy < 0 || jz < 0 || jx >= nx || jy >= ny || jz >= nz) {
            continue;
          }
          const int cj = (jx * ny + jy) * nz + jz;
          for (int s = cell_start[cj]; s < cell_start[cj + 1]; ++s) {
            const int j = cell_atoms[s];
            if (static_cast<std::size_t>(j) == i) continue;
            Vec3 d = pos[j] - ri;
            if (periodic) d = box.min_image(d);
            if (norm2(d) < cut2) list_.push_back(j);
          }
        }
    offsets_[i + 1] = static_cast<int>(list_.size());
  }
}

void NeighborList::build_brute(const Box& box, const std::vector<Vec3>& pos,
                               std::size_t n_centers, bool periodic) {
  const double cut2 = build_cutoff() * build_cutoff();
  offsets_.assign(n_centers + 1, 0);
  list_.clear();
  for (std::size_t i = 0; i < n_centers; ++i) {
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (j == i) continue;
      Vec3 d = pos[j] - pos[i];
      if (periodic) d = box.min_image(d);
      if (norm2(d) < cut2) list_.push_back(static_cast<int>(j));
    }
    offsets_[i + 1] = static_cast<int>(list_.size());
  }
}

std::size_t NeighborList::max_neighbors() const {
  std::size_t m = 0;
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    m = std::max(m, static_cast<std::size_t>(offsets_[i + 1] - offsets_[i]));
  return m;
}

double NeighborList::mean_neighbors() const {
  const std::size_t n = n_centers();
  return n == 0 ? 0.0 : static_cast<double>(list_.size()) / static_cast<double>(n);
}

bool NeighborList::needs_rebuild(const Box& box, const std::vector<Vec3>& pos,
                                 std::size_t n_check) const {
  if (pos.size() != pos_at_build_.size()) return true;
  const std::size_t n = std::min(n_check, pos.size());
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 d = pos[i] - pos_at_build_[i];
    if (periodic_) d = box.min_image(d);
    if (norm2(d) > limit2) return true;
  }
  return false;
}

NeighborList NeighborList::prefix(std::size_t k) const {
  DP_CHECK_MSG(!half_, "prefix() needs a full list");
  NeighborList out(rc_, skin_);
  out.periodic_ = periodic_;
  if (offsets_.empty()) {  // never built; only the empty prefix exists
    DP_CHECK(k == 0);
    out.offsets_ = {0};
    return out;
  }
  DP_CHECK(k < offsets_.size());
  out.offsets_.assign(offsets_.begin(), offsets_.begin() + static_cast<std::ptrdiff_t>(k + 1));
  out.list_.assign(list_.begin(), list_.begin() + offsets_[k]);
  out.pos_at_build_ = pos_at_build_;
  return out;
}

NeighborList NeighborList::compact(std::size_t begin, std::size_t end,
                                   std::vector<int>& atom_index) const {
  DP_CHECK_MSG(!half_, "compact() needs a full list");
  DP_CHECK(begin <= end && end < offsets_.size());
  NeighborList out(rc_, skin_);
  out.periodic_ = periodic_;
  atom_index.clear();
  // Dense remap table (this file is a hot path: no hash maps). Centers claim
  // the first slots so the compact system's center prefix is [0, end-begin).
  std::vector<int> remap(pos_at_build_.size(), -1);
  for (std::size_t i = begin; i < end; ++i) {
    remap[i] = static_cast<int>(atom_index.size());
    atom_index.push_back(static_cast<int>(i));
  }
  out.offsets_.assign(end - begin + 1, 0);
  out.list_.reserve(static_cast<std::size_t>(offsets_[end] - offsets_[begin]));
  for (std::size_t i = begin; i < end; ++i) {
    for (int idx = offsets_[i]; idx < offsets_[i + 1]; ++idx) {
      const auto j = static_cast<std::size_t>(list_[static_cast<std::size_t>(idx)]);
      if (remap[j] < 0) {
        remap[j] = static_cast<int>(atom_index.size());
        atom_index.push_back(static_cast<int>(j));
      }
      out.list_.push_back(remap[j]);
    }
    out.offsets_[i - begin + 1] = static_cast<int>(out.list_.size());
  }
  out.pos_at_build_.reserve(atom_index.size());
  for (int a : atom_index)
    out.pos_at_build_.push_back(pos_at_build_[static_cast<std::size_t>(a)]);
  return out;
}

std::vector<std::vector<int>> brute_force_neighbors(const Box& box,
                                                    const std::vector<Vec3>& pos, double cutoff,
                                                    std::size_t n_centers, bool periodic) {
  if (n_centers == SIZE_MAX) n_centers = pos.size();
  const double cut2 = cutoff * cutoff;
  std::vector<std::vector<int>> out(n_centers);
  for (std::size_t i = 0; i < n_centers; ++i)
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (j == i) continue;
      Vec3 d = pos[j] - pos[i];
      if (periodic) d = box.min_image(d);
      if (norm2(d) < cut2) out[i].push_back(static_cast<int>(j));
    }
  return out;
}

}  // namespace dp::md
