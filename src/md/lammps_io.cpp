#include "md/lammps_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace dp::md {

void write_lammps_data(const std::string& path, const Configuration& cfg,
                       const std::string& comment) {
  std::ofstream os(path);
  DP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  const Vec3 L = cfg.box.lengths();
  os << "# " << comment << '\n' << '\n';
  os << cfg.atoms.size() << " atoms\n";
  os << cfg.atoms.ntypes() << " atom types\n" << '\n';
  os << std::setprecision(12);
  os << 0.0 << ' ' << L.x << " xlo xhi\n";
  os << 0.0 << ' ' << L.y << " ylo yhi\n";
  os << 0.0 << ' ' << L.z << " zlo zhi\n" << '\n';
  os << "Masses\n" << '\n';
  for (int t = 0; t < cfg.atoms.ntypes(); ++t)
    os << (t + 1) << ' ' << cfg.atoms.mass_by_type[static_cast<std::size_t>(t)] << '\n';
  os << '\n' << "Atoms # atomic\n" << '\n';
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i)
    os << (i + 1) << ' ' << (cfg.atoms.type[i] + 1) << ' ' << cfg.atoms.pos[i].x << ' '
       << cfg.atoms.pos[i].y << ' ' << cfg.atoms.pos[i].z << '\n';
  os << '\n' << "Velocities\n" << '\n';
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i)
    os << (i + 1) << ' ' << cfg.atoms.vel[i].x << ' ' << cfg.atoms.vel[i].y << ' '
       << cfg.atoms.vel[i].z << '\n';
}

namespace {
/// Strips a trailing comment and surrounding whitespace.
std::string clean(const std::string& line) {
  std::string s = line.substr(0, line.find('#'));
  const auto a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}
}  // namespace

Configuration read_lammps_data(const std::string& path) {
  std::ifstream is(path);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path);

  Configuration cfg;
  std::size_t n_atoms = 0;
  int n_types = 0;
  double xlo = 0, xhi = 0, ylo = 0, yhi = 0, zlo = 0, zhi = 0;

  std::string line;
  std::getline(is, line);  // title line (free text)
  enum class Section { Header, Masses, Atoms, Velocities } section = Section::Header;

  while (std::getline(is, line)) {
    const std::string s = clean(line);
    if (s.empty()) continue;
    if (s == "Masses") {
      section = Section::Masses;
      continue;
    }
    if (s.rfind("Atoms", 0) == 0) {
      DP_CHECK_MSG(n_atoms > 0 && n_types > 0, "Atoms section before header counts");
      cfg.atoms.resize(n_atoms);
      section = Section::Atoms;
      continue;
    }
    if (s == "Velocities") {
      section = Section::Velocities;
      continue;
    }

    std::istringstream row(s);
    switch (section) {
      case Section::Header: {
        if (s.find("atoms") != std::string::npos && s.find("types") == std::string::npos) {
          row >> n_atoms;
        } else if (s.find("atom types") != std::string::npos) {
          row >> n_types;
          cfg.atoms.mass_by_type.assign(static_cast<std::size_t>(n_types), 1.0);
        } else if (s.find("xlo") != std::string::npos) {
          row >> xlo >> xhi;
        } else if (s.find("ylo") != std::string::npos) {
          row >> ylo >> yhi;
        } else if (s.find("zlo") != std::string::npos) {
          row >> zlo >> zhi;
        }
        break;
      }
      case Section::Masses: {
        int t;
        double m;
        row >> t >> m;
        DP_CHECK_MSG(!row.fail() && t >= 1 && t <= n_types, "bad Masses line: " << s);
        cfg.atoms.mass_by_type[static_cast<std::size_t>(t - 1)] = m;
        break;
      }
      case Section::Atoms: {
        std::size_t id;
        int t;
        Vec3 r;
        row >> id >> t >> r.x >> r.y >> r.z;
        DP_CHECK_MSG(!row.fail() && id >= 1 && id <= n_atoms && t >= 1 && t <= n_types,
                     "bad Atoms line: " << s);
        cfg.atoms.pos[id - 1] = r;
        cfg.atoms.type[id - 1] = t - 1;
        break;
      }
      case Section::Velocities: {
        std::size_t id;
        Vec3 v;
        row >> id >> v.x >> v.y >> v.z;
        DP_CHECK_MSG(!row.fail() && id >= 1 && id <= n_atoms, "bad Velocities line: " << s);
        cfg.atoms.vel[id - 1] = v;
        break;
      }
    }
  }
  DP_CHECK_MSG(n_atoms > 0, "no atoms in " << path);
  DP_CHECK_MSG(xhi > xlo && yhi > ylo && zhi > zlo, "bad box bounds in " << path);
  cfg.box = Box(xhi - xlo, yhi - ylo, zhi - zlo);
  if (xlo != 0 || ylo != 0 || zlo != 0) {
    const Vec3 shift{-xlo, -ylo, -zlo};
    for (auto& r : cfg.atoms.pos) r = cfg.box.wrap(r + shift);
  }
  cfg.atoms.validate();
  return cfg;
}

}  // namespace dp::md
