// Configuration generators for the paper's two physical systems (Sec 4):
//   * copper: perfect FCC lattice, lattice constant 3.634 A, 1 type;
//   * water: a well-equilibrated 192-atom cell replicated periodically. We
//     synthesize the base cell (64 molecules at ambient density with random
//     orientations + thermal disorder) since the original cell file is not
//     available; what the experiments need is the density and the O/H
//     neighbor statistics, both of which this reproduces.
#pragma once

#include <cstdint>

#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::md {

struct Configuration {
  Box box;
  Atoms atoms;
};

/// FCC lattice, nx x ny x nz conventional cells (4 atoms each).
/// `jitter` displaces every atom by a uniform random amount in [-j, j] per
/// axis — a perfect lattice has zero net force by symmetry, which makes force
/// tests degenerate, so tests pass a small jitter.
Configuration make_fcc(int nx, int ny, int nz, double lattice_const = 3.634,
                       double mass = 63.546, double jitter = 0.0,
                       std::uint64_t seed = 12345);

/// Water-like system: nx x ny x nz replicas of a 64-molecule (192-atom)
/// cubic cell at ambient density (~0.0334 molecules/A^3). Types: 0 = O,
/// 1 = H. Molecules are rigid OH2 geometries with random orientation and a
/// positional jitter standing in for thermal equilibration.
Configuration make_water(int nx, int ny, int nz, std::uint64_t seed = 67890);

/// The paper's copper weak-scaling block: roughly `natoms` atoms as a cube.
Configuration make_fcc_with_atom_count(std::size_t natoms, double lattice_const = 3.634,
                                       double jitter = 0.0, std::uint64_t seed = 12345);

}  // namespace dp::md
