// Unit system: LAMMPS "metal" units, which is what DeePMD-kit/LAMMPS runs use.
//   length  Angstrom        energy  eV
//   time    picosecond      mass    g/mol (amu)
//   temperature Kelvin      pressure bar (derived)
#pragma once

namespace dp::md {

/// Boltzmann constant [eV/K].
inline constexpr double kBoltzmann = 8.617333262e-5;

/// Acceleration conversion: (eV/Angstrom) / amu -> Angstrom/ps^2.
inline constexpr double kForceToAccel = 9648.5332;

/// Kinetic energy conversion: amu * (Angstrom/ps)^2 -> eV.
inline constexpr double kMv2ToEv = 1.0364269e-4;

/// Pressure conversion: eV/Angstrom^3 -> bar.
inline constexpr double kEvPerA3ToBar = 1.6021766e6;

/// Atomic masses [g/mol] for the paper's systems.
inline constexpr double kMassCu = 63.546;
inline constexpr double kMassO = 15.9994;
inline constexpr double kMassH = 1.00794;

}  // namespace dp::md
