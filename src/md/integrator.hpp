// Velocity-Verlet integration and Maxwell-Boltzmann velocity initialization
// (paper Sec 4: temperature set to 330 K via random initial velocities).
#pragma once

#include <cstdint>

#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::md {

/// Draw velocities from the Maxwell-Boltzmann distribution at temperature T,
/// remove the center-of-mass drift, and rescale to hit T exactly.
void init_velocities(Atoms& atoms, double temperature, std::uint64_t seed = 2022);

/// First Verlet half-kick + drift:  v += (dt/2) a;  r += dt v.
/// Positions are wrapped back into the box when `wrap` is set.
void verlet_first_half(Atoms& atoms, const Box& box, double dt, bool wrap = true);

/// Second half-kick with the fresh forces: v += (dt/2) a.
void verlet_second_half(Atoms& atoms, double dt);

/// Kinetic energy [eV].
double kinetic_energy(const Atoms& atoms);

/// Instantaneous temperature [K] of n atoms (3n - 3 COM-free dof).
double temperature(const Atoms& atoms);

}  // namespace dp::md
