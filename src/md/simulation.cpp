#include "md/simulation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::md {

namespace {
// Hot-path metric handles, resolved once (the registry keeps objects alive
// for the life of the process; clear() only resets values).
struct StepMetrics {
  obs::Counter& steps = obs::MetricsRegistry::instance().counter("md.steps");
  obs::Counter& rebuilds = obs::MetricsRegistry::instance().counter("md.neighbor_rebuilds");
  obs::Counter& force_evals = obs::MetricsRegistry::instance().counter("md.force_evals");
  obs::Histogram& step_seconds =
      obs::MetricsRegistry::instance().histogram("md.step_seconds");
  static StepMetrics& get() {
    static StepMetrics m;
    return m;
  }
};
}  // namespace

Simulation::Simulation(Configuration cfg, ForceField& ff, SimulationConfig sim)
    : cfg_(std::move(cfg)), ff_(ff), sim_(sim), nlist_(ff.cutoff(), sim.skin) {
  cfg_.atoms.validate();
  // Minimum image must be unambiguous out to the neighbor build cutoff.
  DP_CHECK_MSG(cfg_.box.accommodates_cutoff(ff_.cutoff() + sim_.skin),
               "box too small for cutoff " << ff_.cutoff() << " + skin " << sim_.skin);
  init_velocities(cfg_.atoms, sim_.temperature, sim_.seed);
  nlist_.build(cfg_.box, cfg_.atoms.pos);
  compute_forces();
}

void Simulation::compute_forces() {
  last_force_ = ff_.compute(cfg_.box, cfg_.atoms, nlist_);
  ++force_evals_;
  StepMetrics::get().force_evals.inc();
}

ThermoSample Simulation::sample() const {
  ThermoSample s;
  s.step = step_;
  s.kinetic = kinetic_energy(cfg_.atoms);
  s.potential = last_force_.energy;
  s.temperature = temperature(cfg_.atoms);
  const double n = static_cast<double>(cfg_.atoms.size());
  const double v = cfg_.box.volume();
  s.pressure_bar =
      (n * kBoltzmann * s.temperature + last_force_.virial.trace() / 3.0) / v * kEvPerA3ToBar;
  return s;
}

void Simulation::step() {
  StepMetrics& metrics = StepMetrics::get();
  obs::TraceSpan step_span("md.step", "md");
  WallTimer step_timer;
  double neighbor_seconds = 0.0, force_seconds = 0.0;
  {
    ScopedTimer t("md.integrate", "md");
    verlet_first_half(cfg_.atoms, cfg_.box, sim_.dt);
  }
  ++steps_since_rebuild_;
  {
    // The section covers the skin/2 displacement check too: at scale that
    // scan is part of the neighbor-maintenance cost.
    ScopedTimer t("md.neighbor", "md");
    WallTimer phase;
    if (steps_since_rebuild_ >= sim_.rebuild_every ||
        nlist_.needs_rebuild(cfg_.box, cfg_.atoms.pos)) {
      nlist_.build(cfg_.box, cfg_.atoms.pos);
      steps_since_rebuild_ = 0;
      metrics.rebuilds.inc();
      ++rebuilds_;
    }
    neighbor_seconds = phase.seconds();
  }
  {
    ScopedTimer t("md.force", "md");
    WallTimer phase;
    compute_forces();
    force_seconds = phase.seconds();
  }
  {
    ScopedTimer t("md.integrate", "md");
    verlet_second_half(cfg_.atoms, sim_.dt);
  }
  if (sim_.thermostat != nullptr) {
    ScopedTimer t("md.thermostat", "md");
    sim_.thermostat->apply(cfg_.atoms, sim_.dt);
  }
  if (sim_.barostat != nullptr) {
    // Isotropic rescale of box + coordinates toward the target pressure;
    // the neighbor list is invalidated by the deformation.
    double mu;
    {
      ScopedTimer t("md.thermostat", "md");
      mu = sim_.barostat->scale_factor(sample().pressure_bar, sim_.dt);
      if (mu != 1.0) {
        cfg_.box = Box(cfg_.box.lengths() * mu);
        for (auto& r : cfg_.atoms.pos) r *= mu;
      }
    }
    if (mu != 1.0) {
      {
        ScopedTimer t("md.neighbor", "md");
        nlist_.build(cfg_.box, cfg_.atoms.pos);
        steps_since_rebuild_ = 0;
        metrics.rebuilds.inc();
        ++rebuilds_;
      }
      ScopedTimer t("md.force", "md");
      compute_forces();
    }
  }
  ++step_;
  metrics.steps.inc();
  const double step_seconds = step_timer.seconds();
  metrics.step_seconds.observe(step_seconds);
  if (sim_.health != nullptr) {
    // Cheap per-step signals; energetics arrive via observe_sample().
    obs::StepSignals sig;
    sig.step = step_;
    sig.n_atoms = static_cast<double>(cfg_.atoms.size());
    const std::size_t reservation = ff_.neighbor_reservation();
    if (reservation > 0)
      sig.neighbor_occupancy = static_cast<double>(nlist_.max_neighbors()) /
                               static_cast<double>(reservation);
    sig.extrapolations = static_cast<double>(ff_.extrapolations());
    sim_.health->observe_step(sig);
  }
  if (sim_.flight != nullptr) {
    obs::FlightRecord r;
    r.step = step_;
    r.step_seconds = step_seconds;
    r.force_seconds = force_seconds;
    r.neighbor_seconds = neighbor_seconds;
    r.comm_seconds = 0.0;
    r.health_bits = sim_.health != nullptr ? sim_.health->state_bits() : 0;
    r.rebuilds = rebuilds_;
    r.extrapolations = ff_.extrapolations();
    sim_.flight->record(r);
  }
}

void Simulation::observe_sample(const ThermoSample& s) {
  obs::StepSignals sig;
  sig.step = step_;
  sig.n_atoms = static_cast<double>(cfg_.atoms.size());
  sig.total_energy = s.total();
  sig.temperature = s.temperature;
  double f2 = 0.0;
  for (const auto& f : cfg_.atoms.force) f2 = std::max(f2, norm2(f));
  sig.max_force = std::sqrt(f2);
  sim_.health->observe_step(sig);
}

const std::vector<ThermoSample>& Simulation::run() {
  trace_.clear();
  auto record = [&] {
    ScopedTimer t("md.sample", "md");
    ThermoSample s = sample();
    trace_.push_back(s);
    if (sim_.health != nullptr) observe_sample(s);
    if (on_thermo) on_thermo(step_, s);
  };
  record();
  for (int i = 0; i < sim_.steps; ++i) {
    step();
    if (step_ % sim_.thermo_every == 0 || step_ == sim_.steps) record();
  }
  return trace_;
}

}  // namespace dp::md
