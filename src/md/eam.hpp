// Sutton-Chen embedded-atom potential — a many-body metal reference.
//
//   E = eps * [ 1/2 sum_{i != j} (a/r_ij)^n  -  c * sum_i sqrt(rho_i) ],
//   rho_i = sum_j (a/r_ij)^m
//
// Serves two purposes: a second, many-body verification target for the MD
// substrate (LJ is pairwise), and more realistic training labels for the
// copper workflows (the sqrt-embedding gives the many-body character DP
// models are built to capture). Both the pair term and the density are
// multiplied by a C2 polynomial gate so energy and forces vanish smoothly
// at the cutoff.
#pragma once

#include "md/force_field.hpp"

namespace dp::md {

class SuttonChen final : public ForceField {
 public:
  struct Params {
    double epsilon = 1.2382e-2;  ///< energy scale [eV] (Cu)
    double a = 3.61;             ///< lattice parameter scale [A] (Cu)
    double c = 39.432;           ///< embedding strength (Cu)
    int n = 9;                   ///< pair exponent (Cu)
    int m = 6;                   ///< density exponent (Cu)
    double rcut = 7.0;           ///< cutoff [A]
    double rcut_smth = 6.0;      ///< gate onset [A]
  };

  SuttonChen() : SuttonChen(Params{}) {}
  explicit SuttonChen(Params params);

  /// Many-body: ghost densities would need an extra halo pass, so this
  /// potential requires full (serial/periodic) neighbor coverage:
  /// nlist.n_centers() == atoms.size().
  ForceResult compute(const Box& box, Atoms& atoms, const NeighborList& nlist,
                      bool periodic = true) override;
  double cutoff() const override { return p_.rcut; }

  const Params& params() const { return p_; }
  /// Density of atom i from the last compute().
  const std::vector<double>& densities() const { return rho_; }

 private:
  /// gate w(r) and derivative: 1 below rcut_smth, C2 decay to 0 at rcut.
  void gate(double r, double& w, double& dw) const;

  Params p_;
  std::vector<double> rho_;
};

}  // namespace dp::md
