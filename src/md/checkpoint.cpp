#include "md/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace dp::md {

namespace {
constexpr std::uint32_t kMagic = 0x44504d43;  // "DPMC"
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated checkpoint");
  return v;
}
}  // namespace

void save_checkpoint(const std::string& path, const Configuration& cfg, int step) {
  std::ofstream os(path, std::ios::binary);
  DP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<std::int32_t>(os, step);
  const Vec3 L = cfg.box.lengths();
  write_pod(os, L.x);
  write_pod(os, L.y);
  write_pod(os, L.z);
  write_pod<std::uint64_t>(os, cfg.atoms.mass_by_type.size());
  for (double m : cfg.atoms.mass_by_type) write_pod(os, m);
  write_pod<std::uint64_t>(os, cfg.atoms.size());
  for (std::size_t i = 0; i < cfg.atoms.size(); ++i) {
    write_pod<std::int32_t>(os, cfg.atoms.type[i]);
    write_pod(os, cfg.atoms.pos[i]);
    write_pod(os, cfg.atoms.vel[i]);
  }
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path);
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kMagic, "not a checkpoint file: " << path);
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion, "unsupported checkpoint version");
  Checkpoint out;
  out.step = read_pod<std::int32_t>(is);
  const double lx = read_pod<double>(is);
  const double ly = read_pod<double>(is);
  const double lz = read_pod<double>(is);
  out.config.box = Box(lx, ly, lz);
  out.config.atoms.mass_by_type.resize(read_pod<std::uint64_t>(is));
  for (double& m : out.config.atoms.mass_by_type) m = read_pod<double>(is);
  const auto n = read_pod<std::uint64_t>(is);
  out.config.atoms.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.config.atoms.type[i] = read_pod<std::int32_t>(is);
    out.config.atoms.pos[i] = read_pod<Vec3>(is);
    out.config.atoms.vel[i] = read_pod<Vec3>(is);
  }
  out.config.atoms.validate();
  return out;
}

}  // namespace dp::md
