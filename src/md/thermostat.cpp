#include "md/thermostat.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "md/integrator.hpp"
#include "md/units.hpp"

namespace dp::md {

LangevinThermostat::LangevinThermostat(double temperature, double damping, std::uint64_t seed)
    : t_target_(temperature), damping_(damping), rng_(seed) {
  DP_CHECK(temperature >= 0.0 && damping > 0.0);
}

void LangevinThermostat::apply(Atoms& atoms, double dt) {
  // BBK-style velocity update: v <- c v + sqrt((1 - c^2) kT / m) xi,
  // c = exp(-dt / tau). Exact for the Ornstein-Uhlenbeck part.
  const double c = std::exp(-dt / damping_);
  const double noise = std::sqrt(1.0 - c * c);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const double sigma =
        std::sqrt(kBoltzmann * t_target_ / (atoms.mass(i) * kMv2ToEv));
    Vec3& v = atoms.vel[i];
    v = v * c + Vec3{rng_.gaussian(), rng_.gaussian(), rng_.gaussian()} * (noise * sigma);
  }
}

BerendsenThermostat::BerendsenThermostat(double temperature, double tau)
    : t_target_(temperature), tau_(tau) {
  DP_CHECK(temperature >= 0.0 && tau > 0.0);
}

void BerendsenThermostat::apply(Atoms& atoms, double dt) {
  const double t_now = temperature(atoms);
  if (t_now <= 0.0) return;
  const double lambda = std::sqrt(1.0 + dt / tau_ * (t_target_ / t_now - 1.0));
  for (auto& v : atoms.vel) v *= lambda;
}

NoseHooverThermostat::NoseHooverThermostat(double temperature, double tau)
    : t_target_(temperature), tau_(tau) {
  DP_CHECK(temperature > 0.0 && tau > 0.0);
}

void NoseHooverThermostat::apply(Atoms& atoms, double dt) {
  // Half-step friction update, velocity scaling, half-step update again —
  // the standard operator splitting for a single Nose-Hoover chain.
  const double t_now = temperature(atoms);
  const double q = tau_ * tau_;  // thermostat "mass" in reduced form
  xi_ += 0.5 * dt / q * (t_now / t_target_ - 1.0);
  const double s = std::exp(-xi_ * dt);
  for (auto& v : atoms.vel) v *= s;
  const double t_after = temperature(atoms);
  xi_ += 0.5 * dt / q * (t_after / t_target_ - 1.0);
}

BerendsenBarostat::BerendsenBarostat(double pressure_bar, double tau, double compressibility)
    : p_target_(pressure_bar), tau_(tau), kappa_(compressibility) {
  DP_CHECK(tau > 0.0 && compressibility > 0.0);
}

double BerendsenBarostat::scale_factor(double current_pressure_bar, double dt) const {
  // mu = [1 - dt/tau * kappa * (P_target - P)]^(1/3), clamped to keep one
  // step from deforming the box more than ~1%.
  const double mu3 = 1.0 - dt / tau_ * kappa_ * (p_target_ - current_pressure_bar);
  const double mu = std::cbrt(std::clamp(mu3, 0.97, 1.03));
  return mu;
}

}  // namespace dp::md
