#include "md/eam.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dp::md {

SuttonChen::SuttonChen(Params params) : p_(params) {
  DP_CHECK(p_.epsilon > 0 && p_.a > 0 && p_.c > 0);
  DP_CHECK(p_.n > p_.m && p_.m > 0);
  DP_CHECK(p_.rcut > p_.rcut_smth && p_.rcut_smth > 0);
}

void SuttonChen::gate(double r, double& w, double& dw) const {
  if (r < p_.rcut_smth) {
    w = 1.0;
    dw = 0.0;
    return;
  }
  if (r >= p_.rcut) {
    w = 0.0;
    dw = 0.0;
    return;
  }
  const double span = p_.rcut - p_.rcut_smth;
  const double x = (r - p_.rcut_smth) / span;
  const double x2 = x * x;
  // Clamp at 0: cancellation noise near x = 1 can land a hair below zero,
  // and the sqrt embedding turns any negative density into NaN.
  w = std::max(0.0, 1.0 + x2 * x * (-10.0 + x * (15.0 - 6.0 * x)));
  dw = x2 * (-30.0 + x * (60.0 - 30.0 * x)) / span;
}

ForceResult SuttonChen::compute(const Box& box, Atoms& atoms, const NeighborList& nlist,
                                bool periodic) {
  DP_CHECK_MSG(nlist.n_centers() == atoms.size(),
               "SuttonChen needs densities for every atom (no ghost-only atoms)");
  const std::size_t n = atoms.size();
  const double rc2 = p_.rcut * p_.rcut;

  // ---- Pass 1: densities ---------------------------------------------
  rho_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i];
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      double w, dw;
      gate(r, w, dw);
      acc += std::pow(p_.a / r, p_.m) * w;
    }
    rho_[i] = std::max(acc, 0.0);
  }

  // ---- Pass 2: energy + forces ----------------------------------------
  ForceResult out;
  atoms.zero_forces();
  double e_pair = 0.0, e_embed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    e_embed -= p_.c * std::sqrt(rho_[i]);
    // dF/drho = -c / (2 sqrt(rho)); guard isolated atoms (rho = 0).
    const double f_prime = rho_[i] > 0.0 ? -p_.c / (2.0 * std::sqrt(rho_[i])) : 0.0;
    Vec3 fi{};
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - atoms.pos[i];
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;
      const double r = std::sqrt(r2);
      double w, dw;
      gate(r, w, dw);
      const double pair = std::pow(p_.a / r, p_.n);
      const double dens = std::pow(p_.a / r, p_.m);
      e_pair += 0.5 * pair * w;
      // d(pair * w)/dr and d(dens * w)/dr
      const double dpair = -p_.n / r * pair * w + pair * dw;
      const double ddens = -p_.m / r * dens * w + dens * dw;
      // dE/dd for this ordered pair: 1/2 phi' + F'(rho_i) * rho'.
      const double g = p_.epsilon * (0.5 * dpair + f_prime * ddens);
      const Vec3 fpair = d * (g / r);  // dE/dd
      fi += fpair;                     // F_i = +dE/dd, F_j = -dE/dd
      atoms.force[static_cast<std::size_t>(j)] -= fpair;
      out.virial += outer(d, fpair) * (-1.0);
    }
    atoms.force[i] += fi;
  }
  out.energy = p_.epsilon * e_pair + p_.epsilon * e_embed;
  return out;
}

}  // namespace dp::md
