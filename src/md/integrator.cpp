#include "md/integrator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "md/units.hpp"

namespace dp::md {

void init_velocities(Atoms& atoms, double temperature_k, std::uint64_t seed) {
  DP_CHECK(temperature_k >= 0.0);
  const std::size_t n = atoms.size();
  if (n == 0) return;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double std_v = std::sqrt(kBoltzmann * temperature_k / (atoms.mass(i) * kMv2ToEv));
    atoms.vel[i] = {rng.gaussian(0.0, std_v), rng.gaussian(0.0, std_v),
                    rng.gaussian(0.0, std_v)};
  }
  // Remove center-of-mass momentum.
  Vec3 p{};
  double mtot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p += atoms.vel[i] * atoms.mass(i);
    mtot += atoms.mass(i);
  }
  const Vec3 v_com = p * (1.0 / mtot);
  for (auto& v : atoms.vel) v -= v_com;
  // Rescale so the instantaneous temperature is exactly the target.
  if (n > 1 && temperature_k > 0.0) {
    const double t_now = temperature(atoms);
    if (t_now > 0.0) {
      const double s = std::sqrt(temperature_k / t_now);
      for (auto& v : atoms.vel) v *= s;
    }
  }
}

void verlet_first_half(Atoms& atoms, const Box& box, double dt, bool wrap) {
  const std::size_t n = atoms.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 0.5 * dt * kForceToAccel / atoms.mass(i);
    atoms.vel[i] += atoms.force[i] * s;
    atoms.pos[i] += atoms.vel[i] * dt;
    if (wrap) atoms.pos[i] = box.wrap(atoms.pos[i]);
  }
}

void verlet_second_half(Atoms& atoms, double dt) {
  const std::size_t n = atoms.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double s = 0.5 * dt * kForceToAccel / atoms.mass(i);
    atoms.vel[i] += atoms.force[i] * s;
  }
}

double kinetic_energy(const Atoms& atoms) {
  double ke = 0.0;
  for (std::size_t i = 0; i < atoms.size(); ++i)
    ke += 0.5 * atoms.mass(i) * norm2(atoms.vel[i]);
  return ke * kMv2ToEv;
}

double temperature(const Atoms& atoms) {
  const std::size_t n = atoms.size();
  if (n < 2) return 0.0;
  const double dof = 3.0 * static_cast<double>(n) - 3.0;
  return 2.0 * kinetic_energy(atoms) / (dof * kBoltzmann);
}

}  // namespace dp::md
