#include "md/lj.hpp"

#include <cmath>

namespace dp::md {

LennardJones::LennardJones(double epsilon, double sigma, double cutoff)
    : eps_(epsilon), sigma_(sigma), rc_(cutoff) {
  const double sr6 = std::pow(sigma_ / rc_, 6);
  shift_ = 4.0 * eps_ * (sr6 * sr6 - sr6);
}

double LennardJones::pair_energy(double r) const {
  const double sr6 = std::pow(sigma_ / r, 6);
  return 4.0 * eps_ * (sr6 * sr6 - sr6);
}

double LennardJones::pair_force(double r) const {
  const double sr6 = std::pow(sigma_ / r, 6);
  return 24.0 * eps_ * (2.0 * sr6 * sr6 - sr6) / r;
}

ForceResult LennardJones::compute(const Box& box, Atoms& atoms, const NeighborList& nlist,
                                  bool periodic) {
  ForceResult out;
  atoms.zero_forces();
  const double rc2 = rc_ * rc_;
  const std::size_t n = nlist.n_centers();
  // With a half list each pair is visited once: full weight plus Newton's
  // third-law reaction on j. With a full list: half weight per visit.
  const bool half = nlist.is_half();
  const double pair_w = half ? 1.0 : 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 ri = atoms.pos[i];
    Vec3 fi{};
    for (int j : nlist.neighbors(i)) {
      Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
      if (periodic) d = box.min_image(d);
      const double r2 = norm2(d);
      if (r2 >= rc2) continue;  // list carries a skin; cut here
      const double inv_r2 = 1.0 / r2;
      const double sr6 = std::pow(sigma_ * sigma_ * inv_r2, 3);
      out.energy += pair_w * (4.0 * eps_ * (sr6 * sr6 - sr6) - shift_);
      // dU/dr / r  (negative gradient gives force on i along -d)
      const double f_over_r = 24.0 * eps_ * (2.0 * sr6 * sr6 - sr6) * inv_r2;
      const Vec3 fij = d * (-f_over_r);  // force on i from j
      fi += fij;
      if (half) atoms.force[static_cast<std::size_t>(j)] -= fij;
      // virial: -w * r_ij (x) f_ij per visit
      out.virial += outer(d, fij) * (-pair_w);
    }
    atoms.force[i] += fi;
  }
  return out;
}

}  // namespace dp::md
