// Cell-list based Verlet neighbor list (full lists, as the DP model needs
// every neighbor of every atom).
//
// Follows the paper's protocol (Sec 4): lists are built with a skin ("2 A
// buffer region") on top of the model cutoff and rebuilt every
// `rebuild_every` steps; the skin/2 displacement criterion is checked so a
// too-fast atom can never silently escape the list.
//
// Construction is thread-parallel (team size follows OMP_NUM_THREADS /
// omp_set_num_threads, but dispatch uses an in-tree mutex/condvar fork-join
// team so every synchronization edge is sanitizer-visible — see
// docs/STATIC_ANALYSIS.md) and deterministic: binning is a two-pass
// counting sort with per-thread histograms, the stencil walk is a
// count-then-fill scheme (per-center counts -> exclusive scan -> each
// thread copies its cached neighbors into its disjoint slab of `list_`),
// so the output CSR is byte-identical to the single-thread build at any
// thread count. All scratch lives in a persistent, grow-only
// NeighborWorkspace owned by the list: after warm-up, rebuilds allocate
// nothing (enforced by the `neighbor-workspace` dplint rule and measured
// through the `neighbor.workspace_bytes` gauge).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "md/box.hpp"

namespace dp::md {

/// Persistent scratch for NeighborList::build* — grow-only, reused across
/// rebuilds so steady-state construction performs zero allocations. One
/// workspace per list instance; a NeighborList (and thus its workspace) is
/// owned by exactly one thread at a time (see docs/STATIC_ANALYSIS.md).
struct NeighborWorkspace {
  std::vector<int> atom_cell;   ///< cell index of every atom (ghosts incl.)
  std::vector<int> cell_start;  ///< CSR over cells: ncells + 1
  std::vector<int> cell_atoms;  ///< atoms sorted by cell, stable by index
  std::vector<int> hist;        ///< per-thread cell histograms (T * ncells)
  std::vector<std::vector<int>> tl;  ///< per-thread neighbor caches
  std::vector<int> half_offsets;     ///< build_half filter output scratch
  std::vector<int> half_list;

  /// Bytes currently reserved (capacities, not sizes).
  std::size_t bytes() const;
};

class NeighborList {
 public:
  /// cutoff = model cutoff + skin.
  NeighborList(double cutoff, double skin = 2.0) : rc_(cutoff), skin_(skin) {}

  /// Builds full lists for the first `n_centers` atoms (default: all) against
  /// every atom in `pos` (which may include ghost atoms after the centers).
  /// `periodic` selects minimum-image distances (serial runs) or plain
  /// Cartesian differences (domain-decomposed runs with explicit ghosts).
  void build(const Box& box, const std::vector<Vec3>& pos, std::size_t n_centers = SIZE_MAX,
             bool periodic = true);

  /// Half lists: each pair appears once, on the lower-index atom. Pairwise
  /// potentials exploit Newton's third law with these (half the pair
  /// visits); the DP descriptor needs full lists and must not use this.
  void build_half(const Box& box, const std::vector<Vec3>& pos, bool periodic = true);

  bool is_half() const { return half_; }

  std::size_t n_centers() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  std::span<const int> neighbors(std::size_t i) const {
    return {list_.data() + offsets_[i], static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  /// Longest list over all centers (the "real N_m" of the current frame).
  std::size_t max_neighbors() const;
  /// Mean list length.
  double mean_neighbors() const;

  /// True once some of the first `n_check` atoms (default: all) moved more
  /// than skin/2 since the last build(). Distributed ranks check only their
  /// local atoms: every atom is local on exactly one rank, so the
  /// OR-allreduce of the per-rank answers covers ghosts too. Only center
  /// positions are retained from the build (ghosts are never consulted), so
  /// `n_check` is clamped to the build's center count.
  bool needs_rebuild(const Box& box, const std::vector<Vec3>& pos,
                     std::size_t n_check = SIZE_MAX) const;

  /// Copy of this list restricted to the first `k` centers, sharing the
  /// original atom numbering. With atoms ordered interior-first, prefix(n_i)
  /// is the interior work list: none of its neighbor indices reach ghosts,
  /// so it can be evaluated before the halo refresh completes.
  NeighborList prefix(std::size_t k) const;

  /// Compacted sub-list for centers [begin, end): centers come first
  /// (renumbered 0 .. end-begin-1), every atom their lists reference follows
  /// in first-encounter order, and `atom_index` maps each compact slot back
  /// to the original index. Evaluating a force field on the compacted
  /// system and folding the forces back through `atom_index` reproduces the
  /// full evaluation's contribution of these centers exactly.
  NeighborList compact(std::size_t begin, std::size_t end,
                       std::vector<int>& atom_index) const;

  double cutoff() const { return rc_; }
  double skin() const { return skin_; }
  double build_cutoff() const { return rc_ + skin_; }

  /// Bytes of persistent storage (workspace + CSR + retained positions),
  /// by capacity. Constant across rebuilds once warm = zero steady-state
  /// allocations; also published as the `neighbor.workspace_bytes` gauge.
  std::size_t workspace_bytes() const;

 private:
  void build_brute(const Box& box, const std::vector<Vec3>& pos, std::size_t n_centers,
                   bool periodic);

  double rc_;
  double skin_;
  bool half_ = false;
  std::vector<int> offsets_;  // CSR: n_centers + 1
  std::vector<int> list_;
  // Center positions at build time (the prefix needs_rebuild consults) plus
  // the full atom count, which stands in for the old whole-vector copy in
  // the staleness guard. Ghost positions are never stored: they are not
  // checked, and at scale they are a large fraction of `pos`.
  std::vector<Vec3> pos_at_build_;
  std::size_t n_atoms_at_build_ = 0;
  bool periodic_ = true;
  NeighborWorkspace ws_;
};

/// O(N^2) reference used by tests and tiny systems.
std::vector<std::vector<int>> brute_force_neighbors(const Box& box,
                                                    const std::vector<Vec3>& pos, double cutoff,
                                                    std::size_t n_centers = SIZE_MAX,
                                                    bool periodic = true);

}  // namespace dp::md
