// Interface every potential implements (LJ reference, the DP model paths).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"
#include "md/neighbor.hpp"

namespace dp::md {

/// Result of one energy/force evaluation.
struct ForceResult {
  double energy = 0.0;  ///< total potential energy [eV]
  Mat3 virial{};        ///< virial tensor  sum_pairs r (x) f  [eV]
};

class ForceField {
 public:
  virtual ~ForceField() = default;

  /// Computes forces for the first `nlist.n_centers()` atoms into
  /// atoms.force (overwritten) and returns total energy + virial.
  /// Positions beyond the centers are ghosts (parallel runs) and receive
  /// force contributions too when `nlocal < pos.size()`.
  virtual ForceResult compute(const Box& box, Atoms& atoms, const NeighborList& nlist,
                              bool periodic = true) = 0;

  /// Cutoff radius the neighbor list must cover.
  virtual double cutoff() const = 0;

  /// Cumulative out-of-domain model evaluations (tabulated paths count
  /// table extrapolations; analytic potentials have none). Telemetry for
  /// the health.extrapolation_rate watchdog.
  virtual std::uint64_t extrapolations() const { return 0; }

  /// Neighbor-slot reservation per atom (the model's N_m), or 0 when the
  /// potential has no fixed reservation. Feeds the neighbor-occupancy
  /// watchdog (longest list / reservation).
  virtual std::size_t neighbor_reservation() const { return 0; }
};

}  // namespace dp::md
