// Structural and dynamical observables — the analysis layer a production MD
// campaign runs on top of the engine (the paper's motivating applications:
// phase transitions, nucleation, radiation damage all read these).
#pragma once

#include <vector>

#include "md/atoms.hpp"
#include "md/box.hpp"

namespace dp::md {

/// Radial distribution function g(r).
struct Rdf {
  double r_max = 0;
  double dr = 0;
  std::vector<double> r;  ///< bin centers
  std::vector<double> g;  ///< g(r)

  /// Index of the first maximum (the nearest-neighbor peak).
  std::size_t first_peak() const;
};

/// Computes g(r) between species `type_a` and `type_b` (-1 = all atoms).
/// r_max must respect the minimum-image bound (r_max < L/2).
Rdf compute_rdf(const Box& box, const Atoms& atoms, double r_max, int bins,
                int type_a = -1, int type_b = -1);

/// Mean-square displacement with periodic unwrapping: call update() every
/// sampled step; displacements are accumulated through minimum-image hops,
/// so trajectories may wrap the box arbitrarily often.
class MsdAccumulator {
 public:
  explicit MsdAccumulator(const Box& box) : box_(box) {}

  /// Sets/resets the reference configuration.
  void reset(const std::vector<Vec3>& positions);

  /// Accounts the motion since the previous update (or reset).
  void update(const std::vector<Vec3>& positions);

  /// <|r(t) - r(0)|^2> over all tracked atoms [A^2].
  double msd() const;

 private:
  Box box_;
  std::vector<Vec3> previous_;
  std::vector<Vec3> displacement_;
};

/// Normalized velocity autocorrelation C(t) = <v(t).v(0)> / <v(0).v(0)>.
class VelocityAutocorrelation {
 public:
  void reset(const std::vector<Vec3>& velocities);
  double correlate(const std::vector<Vec3>& velocities) const;

 private:
  std::vector<Vec3> v0_;
  double norm_ = 0.0;
};

}  // namespace dp::md
