// Serial MD driver implementing the paper's measurement protocol (Sec 4):
// velocity-Verlet, 99 MD steps = 100 force evaluations, neighbor list with a
// 2 A skin rebuilt every 50 steps, thermodynamic data sampled every 50 steps.
#pragma once

#include <functional>
#include <vector>

#include "md/force_field.hpp"
#include "md/integrator.hpp"
#include "md/lattice.hpp"
#include "md/thermostat.hpp"
#include "md/units.hpp"

namespace dp::obs {
class HealthMonitor;
class FlightRecorder;
}  // namespace dp::obs

namespace dp::md {

struct SimulationConfig {
  double dt = 0.001;           ///< time step [ps] (copper 1 fs, water 0.5 fs)
  int steps = 99;              ///< MD steps
  double temperature = 330.0;  ///< initial temperature [K]
  double skin = 2.0;           ///< neighbor-list buffer [A]
  int rebuild_every = 50;      ///< neighbor rebuild period [steps]
  int thermo_every = 50;       ///< thermo sampling period [steps]
  std::uint64_t seed = 2022;
  Thermostat* thermostat = nullptr;        ///< optional NVT coupling (not owned)
  BerendsenBarostat* barostat = nullptr;   ///< optional NPT coupling (not owned)
  /// Optional run-health watchdogs (not owned). Cheap signals (neighbor
  /// occupancy, extrapolation rate) are fed every step; energetics
  /// (drift, temperature, max force) at each thermo sample.
  obs::HealthMonitor* health = nullptr;
  /// Optional black box (not owned): one FlightRecord per step.
  obs::FlightRecorder* flight = nullptr;
};

struct ThermoSample {
  int step = 0;
  double kinetic = 0.0;    ///< [eV]
  double potential = 0.0;  ///< [eV]
  double temperature = 0.0;  ///< [K]
  double pressure_bar = 0.0;
  double total() const { return kinetic + potential; }
};

class Simulation {
 public:
  Simulation(Configuration cfg, ForceField& ff, SimulationConfig sim = {});

  /// Runs cfg.steps MD steps; returns the thermo trace (always includes
  /// step 0 and the final step).
  const std::vector<ThermoSample>& run();

  /// Advance exactly one step (used by tests probing conservation).
  void step();

  const Configuration& configuration() const { return cfg_; }
  Configuration& configuration() { return cfg_; }
  const std::vector<ThermoSample>& thermo_trace() const { return trace_; }
  int current_step() const { return step_; }
  /// Number of force evaluations so far (steps + the initial one).
  int force_evaluations() const { return force_evals_; }
  /// The driver's neighbor list (tests and benches probe its steady-state
  /// workspace footprint through this).
  const NeighborList& neighbor_list() const { return nlist_; }

  /// Optional per-step observer (step index, sample of the current state).
  std::function<void(int, const ThermoSample&)> on_thermo;

 private:
  ThermoSample sample() const;
  void compute_forces();
  /// Feeds the energetics watchdogs from a thermo sample (max-force scan
  /// is O(N), so it runs at sample cadence, not every step).
  void observe_sample(const ThermoSample& s);

  Configuration cfg_;
  ForceField& ff_;
  SimulationConfig sim_;
  NeighborList nlist_;
  ForceResult last_force_;
  std::vector<ThermoSample> trace_;
  int step_ = 0;
  int force_evals_ = 0;
  int steps_since_rebuild_ = 0;
  std::uint32_t rebuilds_ = 0;
};

}  // namespace dp::md
