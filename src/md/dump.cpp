#include "md/dump.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace dp::md {

XyzWriter::XyzWriter(const std::string& path, std::vector<std::string> symbols)
    : os_(path), symbols_(std::move(symbols)) {
  DP_CHECK_MSG(os_.is_open(), "cannot open " << path << " for writing");
  DP_CHECK(!symbols_.empty());
}

void XyzWriter::write_frame(const Box& box, const Atoms& atoms, const std::string& comment) {
  const Vec3 L = box.lengths();
  os_ << std::setprecision(12);
  os_ << atoms.size() << '\n';
  os_ << "Lattice=\"" << L.x << " 0 0 0 " << L.y << " 0 0 0 " << L.z
      << "\" Properties=species:S:1:pos:R:3";
  if (!comment.empty()) os_ << ' ' << comment;
  os_ << '\n';
  os_ << std::setprecision(12);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const auto t = static_cast<std::size_t>(atoms.type[i]);
    DP_CHECK_MSG(t < symbols_.size(), "atom type without element symbol");
    os_ << symbols_[t] << ' ' << atoms.pos[i].x << ' ' << atoms.pos[i].y << ' '
        << atoms.pos[i].z << '\n';
  }
  os_.flush();
  ++frames_;
}

std::vector<XyzFrame> read_xyz(const std::string& path) {
  std::ifstream is(path);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path);
  std::vector<XyzFrame> frames;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::size_t n = std::stoul(line);
    DP_CHECK_MSG(std::getline(is, line), "truncated XYZ: missing comment line");
    XyzFrame frame;
    // Parse Lattice="ax 0 0 0 by 0 0 0 cz" if present; default unit box.
    double lx = 1, ly = 1, lz = 1;
    const auto pos = line.find("Lattice=\"");
    if (pos != std::string::npos) {
      std::istringstream cell(line.substr(pos + 9));
      double m[9];
      for (double& v : m) cell >> v;
      lx = m[0];
      ly = m[4];
      lz = m[8];
    }
    frame.box = Box(lx, ly, lz);
    frame.pos.reserve(n);
    frame.symbols.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      DP_CHECK_MSG(std::getline(is, line), "truncated XYZ: missing atom line");
      std::istringstream row(line);
      std::string sym;
      Vec3 r;
      row >> sym >> r.x >> r.y >> r.z;
      DP_CHECK_MSG(!row.fail(), "malformed XYZ atom line: " << line);
      frame.symbols.push_back(sym);
      frame.pos.push_back(r);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

ThermoCsvWriter::ThermoCsvWriter(const std::string& path) : os_(path) {
  DP_CHECK_MSG(os_.is_open(), "cannot open " << path << " for writing");
  os_ << "step,potential_ev,kinetic_ev,total_ev,temperature_k,pressure_bar\n";
}

void ThermoCsvWriter::write(const ThermoSample& s) {
  os_ << s.step << ',' << std::setprecision(12) << s.potential << ',' << s.kinetic << ','
      << s.total() << ',' << s.temperature << ',' << s.pressure_bar << '\n';
  os_.flush();
}

}  // namespace dp::md
