#include "md/observables.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dp::md {

std::size_t Rdf::first_peak() const {
  // First local maximum above the noise floor.
  for (std::size_t i = 1; i + 1 < g.size(); ++i)
    if (g[i] > 0.5 && g[i] >= g[i - 1] && g[i] > g[i + 1]) return i;
  return 0;
}

Rdf compute_rdf(const Box& box, const Atoms& atoms, double r_max, int bins, int type_a,
                int type_b) {
  DP_CHECK(bins > 0 && r_max > 0);
  DP_CHECK_MSG(box.accommodates_cutoff(r_max), "rdf r_max must be below half the box");
  Rdf out;
  out.r_max = r_max;
  out.dr = r_max / bins;
  out.r.resize(static_cast<std::size_t>(bins));
  out.g.assign(static_cast<std::size_t>(bins), 0.0);
  for (int b = 0; b < bins; ++b) out.r[static_cast<std::size_t>(b)] = (b + 0.5) * out.dr;

  std::size_t n_a = 0, n_b = 0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (type_a < 0 || atoms.type[i] == type_a) ++n_a;
    if (type_b < 0 || atoms.type[i] == type_b) ++n_b;
  }
  DP_CHECK_MSG(n_a > 0 && n_b > 0, "no atoms of the requested species");

  const double r_max2 = r_max * r_max;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (type_a >= 0 && atoms.type[i] != type_a) continue;
    for (std::size_t j = 0; j < atoms.size(); ++j) {
      if (j == i) continue;
      if (type_b >= 0 && atoms.type[j] != type_b) continue;
      const Vec3 d = box.min_image(atoms.pos[j] - atoms.pos[i]);
      const double r2 = norm2(d);
      if (r2 >= r_max2) continue;
      const auto bin = static_cast<std::size_t>(std::sqrt(r2) / out.dr);
      out.g[std::min(bin, out.g.size() - 1)] += 1.0;
    }
  }

  // Normalize by the ideal-gas shell count: rho_b * 4 pi r^2 dr per A atom.
  const double rho_b = static_cast<double>(n_b) / box.volume();
  for (int b = 0; b < bins; ++b) {
    const double r_lo = b * out.dr, r_hi = (b + 1) * out.dr;
    const double shell =
        4.0 / 3.0 * std::numbers::pi * (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    out.g[static_cast<std::size_t>(b)] /=
        static_cast<double>(n_a) * rho_b * shell;
  }
  return out;
}

void MsdAccumulator::reset(const std::vector<Vec3>& positions) {
  previous_ = positions;
  displacement_.assign(positions.size(), Vec3{});
}

void MsdAccumulator::update(const std::vector<Vec3>& positions) {
  DP_CHECK_MSG(positions.size() == previous_.size(), "atom count changed under MSD");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    // Per-interval hop via minimum image: valid while atoms move less than
    // half a box length between updates.
    displacement_[i] += box_.min_image(positions[i] - previous_[i]);
    previous_[i] = positions[i];
  }
}

double MsdAccumulator::msd() const {
  if (displacement_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& d : displacement_) s += norm2(d);
  return s / static_cast<double>(displacement_.size());
}

void VelocityAutocorrelation::reset(const std::vector<Vec3>& velocities) {
  v0_ = velocities;
  norm_ = 0.0;
  for (const auto& v : v0_) norm_ += norm2(v);
}

double VelocityAutocorrelation::correlate(const std::vector<Vec3>& velocities) const {
  DP_CHECK_MSG(velocities.size() == v0_.size(), "atom count changed under VACF");
  if (norm_ <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < velocities.size(); ++i) s += dot(velocities[i], v0_[i]);
  return s / norm_;
}

}  // namespace dp::md
