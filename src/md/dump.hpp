// Trajectory and thermodynamics output — the pieces a production MD run
// needs around the force engine: extended-XYZ frames (readable by OVITO /
// ASE) and a CSV thermo log (paper Sec 4: thermodynamic data recorded every
// 50 steps).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "md/atoms.hpp"
#include "md/box.hpp"
#include "md/simulation.hpp"

namespace dp::md {

/// Writes extended-XYZ frames: a Lattice= header plus one
/// "symbol x y z" line per atom.
class XyzWriter {
 public:
  /// `symbols`: one element symbol per atom type.
  XyzWriter(const std::string& path, std::vector<std::string> symbols);

  void write_frame(const Box& box, const Atoms& atoms, const std::string& comment = "");
  int frames_written() const { return frames_; }

 private:
  std::ofstream os_;
  std::vector<std::string> symbols_;
  int frames_ = 0;
};

/// A single parsed XYZ frame.
struct XyzFrame {
  Box box;
  std::vector<Vec3> pos;
  std::vector<std::string> symbols;
};

/// Reads every frame of an (extended) XYZ file.
std::vector<XyzFrame> read_xyz(const std::string& path);

/// Appends thermo samples as CSV rows (step, E_pot, E_kin, E_tot, T, P).
class ThermoCsvWriter {
 public:
  explicit ThermoCsvWriter(const std::string& path);
  void write(const ThermoSample& sample);

 private:
  std::ofstream os_;
};

}  // namespace dp::md
