// Binary MD restart files: box + species + positions + velocities, enough
// to continue a trajectory exactly (forces are recomputed on load).
#pragma once

#include <string>

#include "md/lattice.hpp"

namespace dp::md {

/// Writes a restart file (includes the step counter for bookkeeping).
void save_checkpoint(const std::string& path, const Configuration& cfg, int step = 0);

struct Checkpoint {
  Configuration config;
  int step = 0;
};

Checkpoint load_checkpoint(const std::string& path);

}  // namespace dp::md
