#include "md/lattice.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "md/units.hpp"

namespace dp::md {

Configuration make_fcc(int nx, int ny, int nz, double lattice_const, double mass,
                       double jitter, std::uint64_t seed) {
  DP_CHECK(nx > 0 && ny > 0 && nz > 0);
  Configuration cfg;
  cfg.box = Box(nx * lattice_const, ny * lattice_const, nz * lattice_const);
  cfg.atoms.mass_by_type = {mass};
  const Vec3 basis[4] = {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  Rng rng(seed);
  cfg.atoms.pos.reserve(static_cast<std::size_t>(4) * nx * ny * nz);
  for (int ix = 0; ix < nx; ++ix)
    for (int iy = 0; iy < ny; ++iy)
      for (int iz = 0; iz < nz; ++iz)
        for (const Vec3& b : basis) {
          Vec3 r{(ix + b.x) * lattice_const, (iy + b.y) * lattice_const,
                 (iz + b.z) * lattice_const};
          if (jitter > 0.0)
            r += Vec3{rng.uniform(-jitter, jitter), rng.uniform(-jitter, jitter),
                      rng.uniform(-jitter, jitter)};
          cfg.atoms.add(cfg.box.wrap(r), 0);
        }
  return cfg;
}

Configuration make_water(int nx, int ny, int nz, std::uint64_t seed) {
  DP_CHECK(nx > 0 && ny > 0 && nz > 0);
  // 64 molecules in a cubic base cell at ambient density: 0.0334 mol/A^3
  // -> cell edge (64 / 0.0334)^(1/3).
  constexpr int kMolPerEdge = 4;
  constexpr double kDensity = 0.0334;  // molecules per A^3
  const double cell_edge = std::cbrt(64.0 / kDensity);
  const double spacing = cell_edge / kMolPerEdge;

  Configuration cfg;
  cfg.box = Box(nx * cell_edge, ny * cell_edge, nz * cell_edge);
  cfg.atoms.mass_by_type = {kMassO, kMassH};

  // Rigid water geometry: O-H = 0.9572 A, H-O-H = 104.52 degrees.
  constexpr double kOH = 0.9572;
  constexpr double kHalfAngle = 104.52 / 2.0 * 3.14159265358979323846 / 180.0;
  const Vec3 h1_local{kOH * std::sin(kHalfAngle), 0.0, kOH * std::cos(kHalfAngle)};
  const Vec3 h2_local{-kOH * std::sin(kHalfAngle), 0.0, kOH * std::cos(kHalfAngle)};

  Rng rng(seed);
  const std::size_t nmol =
      static_cast<std::size_t>(64) * static_cast<std::size_t>(nx) * ny * nz;
  cfg.atoms.pos.reserve(3 * nmol);

  for (int cx = 0; cx < nx; ++cx)
    for (int cy = 0; cy < ny; ++cy)
      for (int cz = 0; cz < nz; ++cz)
        for (int mx = 0; mx < kMolPerEdge; ++mx)
          for (int my = 0; my < kMolPerEdge; ++my)
            for (int mz = 0; mz < kMolPerEdge; ++mz) {
              Vec3 o{(cx * kMolPerEdge + mx + 0.5) * spacing,
                     (cy * kMolPerEdge + my + 0.5) * spacing,
                     (cz * kMolPerEdge + mz + 0.5) * spacing};
              // Thermal-disorder stand-in: +-0.25 A positional jitter.
              o += Vec3{rng.uniform(-0.25, 0.25), rng.uniform(-0.25, 0.25),
                        rng.uniform(-0.25, 0.25)};
              // Random rigid orientation via a random axis + angle.
              const Mat3 R = rotation(rng.unit_vector(), rng.uniform(0.0, 6.2831853));
              cfg.atoms.add(cfg.box.wrap(o), 0);
              cfg.atoms.add(cfg.box.wrap(o + R * h1_local), 1);
              cfg.atoms.add(cfg.box.wrap(o + R * h2_local), 1);
            }
  return cfg;
}

Configuration make_fcc_with_atom_count(std::size_t natoms, double lattice_const,
                                       double jitter, std::uint64_t seed) {
  // Smallest cube of conventional cells holding at least natoms; then the
  // caller gets exactly 4*n^3 atoms (the paper also rounds to lattice blocks).
  int n = 1;
  while (static_cast<std::size_t>(4) * n * n * n < natoms) ++n;
  return make_fcc(n, n, n, lattice_const, kMassCu, jitter, seed);
}

}  // namespace dp::md
