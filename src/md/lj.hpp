// Shifted Lennard-Jones 12-6 potential.
//
// Not part of the DP model — this is the reference potential used to verify
// the MD substrate (integrator, neighbor list, thermo, domain decomposition)
// independently of the neural-network machinery.
#pragma once

#include "md/force_field.hpp"

namespace dp::md {

class LennardJones final : public ForceField {
 public:
  /// epsilon [eV], sigma [A], cutoff [A]. Energy is shifted so U(rc) = 0.
  LennardJones(double epsilon, double sigma, double cutoff);

  ForceResult compute(const Box& box, Atoms& atoms, const NeighborList& nlist,
                      bool periodic = true) override;
  double cutoff() const override { return rc_; }

  /// Pair energy at distance r (unshifted), for tests.
  double pair_energy(double r) const;
  /// Pair force magnitude (positive = repulsive), for tests.
  double pair_force(double r) const;

 private:
  double eps_, sigma_, rc_, shift_;
};

}  // namespace dp::md
