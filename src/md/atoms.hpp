// Structure-of-arrays atom storage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace dp::md {

struct Atoms {
  std::vector<Vec3> pos;
  std::vector<Vec3> vel;
  std::vector<Vec3> force;
  std::vector<int> type;          ///< species index in [0, ntypes)
  std::vector<double> mass_by_type;

  std::size_t size() const { return pos.size(); }
  int ntypes() const { return static_cast<int>(mass_by_type.size()); }

  void resize(std::size_t n) {
    pos.resize(n);
    vel.resize(n);
    force.resize(n);
    type.resize(n, 0);
  }

  void add(const Vec3& r, int t) {
    pos.push_back(r);
    vel.push_back({});
    force.push_back({});
    type.push_back(t);
  }

  double mass(std::size_t i) const { return mass_by_type[static_cast<std::size_t>(type[i])]; }

  void zero_forces() {
    for (auto& f : force) f = {};
  }

  void validate() const {
    DP_CHECK(vel.size() == pos.size());
    DP_CHECK(force.size() == pos.size());
    DP_CHECK(type.size() == pos.size());
    for (int t : type) DP_CHECK_MSG(t >= 0 && t < ntypes(), "atom type out of range");
  }
};

}  // namespace dp::md
