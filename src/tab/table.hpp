// Tabulated embedding net (paper Sec 3.2 / 3.5.1).
//
// The whole map g : R -> R^M is replaced by M quintic Hermite splines on a
// uniform grid over the physical range of s(r). Building the table samples
// the reference network's value, first and second derivative at the nodes
// (forward-mode jets), so the spline is C2 and its derivative — used for
// forces — is the exact gradient of the tabulated energy.
//
// Two coefficient layouts are kept:
//   * AoS: the 6 coefficients of one (interval, channel) stored contiguously;
//   * blocked: per interval, channels grouped in lanes-of-16 with the 6
//     coefficient streams transposed (the A64FX layout of Sec 3.5.1 that
//     feeds 512-bit SVE loads; on x86 it vectorizes the same way).
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>

#include "common/aligned.hpp"
#include "nn/embedding_net.hpp"

namespace dp::tab {

/// A relaxed atomic counter that copies by value, so classes holding one as
/// telemetry keep their implicit copy/move operations. Copying snapshots the
/// count; it is not an atomic transfer (copies happen single-threaded, at
/// model build/load time).
///
/// Capability note (docs/STATIC_ANALYSIS.md): this is the one piece of
/// cross-thread table state — the rest of a table is immutable after build,
/// which is what lets one model copy be shared per rank with no lock and no
/// DP_GUARDED_BY. Readers of value() accept a relaxed snapshot; the joins
/// at the end of a run supply the final happens-before.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  void bump() noexcept { v_.fetch_add(1, std::memory_order_relaxed); }
  std::size_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> v_{0};
};

struct TabulationSpec {
  double lo = 0.0;        ///< lower bound of the tabulated domain of s
  double hi = 1.0;        ///< upper bound
  double interval = 0.01; ///< node spacing (the paper sweeps 0.1/0.01/0.001)
};

class TabulatedEmbedding {
 public:
  TabulatedEmbedding() = default;
  TabulatedEmbedding(const nn::EmbeddingNet& net, const TabulationSpec& spec);

  std::size_t output_dim() const { return m_; }
  std::size_t n_intervals() const { return n_; }
  double interval() const { return h_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Table size in bytes (AoS copy only — what a deployment would ship).
  std::size_t bytes() const { return coef_.size() * sizeof(double); }

  /// g[0..M): tabulated g(s). s outside [lo, hi] extrapolates with the edge
  /// segment (smoothly) and is counted in extrapolations().
  void eval(double s, double* g) const;

  /// Value and d/ds together (one table walk — the fused kernels want both).
  void eval_with_deriv(double s, double* g, double* dg) const;

  /// Same results from the blocked (SVE-style) layout.
  void eval_blocked(double s, double* g) const;
  void eval_with_deriv_blocked(double s, double* g, double* dg) const;

  /// Batched blocked walk over `count` inputs: s values at s[k * s_stride]
  /// (stride 4 walks the first column of contiguous env-matrix rows), g/dg
  /// rows at g + k * out_stride resp. dg + k * out_stride. Identical results
  /// to `count` eval_with_deriv_blocked calls — the batch resolves the SIMD
  /// dispatch once and keeps the coefficient streams hot.
  ///
  /// `streaming` hints that the aggregate output run (across this and the
  /// surrounding calls) streams far past the last-level cache: the vector
  /// levels then use non-temporal stores, halving the write traffic. Bits
  /// stored are identical; the hint is ignored at Level::Scalar or when an
  /// output row is not 64-byte aligned. Leave it off when the rows are
  /// consumed while still cache-hot (e.g. a per-atom staging buffer).
  void eval_with_deriv_blocked_batch(const double* s, std::size_t s_stride,
                                     std::size_t count, double* g, double* dg,
                                     std::size_t out_stride, bool streaming = false) const;

  std::size_t extrapolations() const { return extrapolations_.value(); }

  /// Raw AoS coefficients [(interval * M + channel) * 6 + k] — consumed by
  /// the single-precision table and by serialization.
  const AlignedVector<double>& coefficients() const { return coef_; }

  /// Binary (de)serialization — the shipped artifact of "dp compress".
  void save(std::ostream& os) const;
  static TabulatedEmbedding load(std::istream& is);

 private:
  /// Locates the segment and local coordinate for s.
  std::size_t locate(double s, double& t) const;
  /// Rebuilds the blocked (SVE-style) layout from the AoS coefficients.
  void rebuild_blocked();

  std::size_t m_ = 0;       // channels
  std::size_t m_pad_ = 0;   // channels padded to a multiple of kLane
  std::size_t n_ = 0;       // intervals
  double lo_ = 0, hi_ = 1, h_ = 1, inv_h_ = 1;
  AlignedVector<double> coef_;          // AoS: [(i * m + ch) * 6 + k]
  AlignedVector<double> coef_blocked_;  // [(i * nblk + b) * 6 + k][lane]
  // Atomic (relaxed): one table is evaluated concurrently by every rank and
  // OpenMP thread, and locate() bumps this from a const context. The bump
  // sits only on the rare out-of-range branches, so the in-range hot path
  // pays nothing; the count is telemetry read after the run.
  mutable RelaxedCounter extrapolations_;

 public:
  /// Lane width of the blocked layout: 16 structures per transpose group
  /// (two 512-bit vectors of doubles), as chosen in the paper for the dual
  /// FP pipelines of A64FX.
  static constexpr std::size_t kLane = 16;
};

}  // namespace dp::tab
