// A DP model with every embedding net tabulated — the artifact produced by
// the paper's model-compression step ("dp compress").
#pragma once

#include <vector>

#include "dp/dp_model.hpp"
#include "tab/table.hpp"

namespace dp::tab {

class TabulatedDP {
 public:
  TabulatedDP(const core::DPModel& model, const TabulationSpec& spec);

  /// Adopts pre-built (deserialized) tables instead of sampling the nets.
  TabulatedDP(const core::DPModel& model, const TabulationSpec& spec,
              std::vector<TabulatedEmbedding> tables);

  const core::DPModel& model() const { return model_; }
  const TabulationSpec& spec() const { return spec_; }
  /// Table for neighbor type t (one-side mode only).
  const TabulatedEmbedding& table(int t) const {
    DP_CHECK_MSG(model_.config().type_one_side, "pair-mode: use table_pair()");
    return tables_[static_cast<std::size_t>(t)];
  }
  /// Table for a (center, neighbor) type pair; works in both modes.
  const TabulatedEmbedding& table_pair(int center, int neighbor) const {
    return tables_[model_.pair_index(center, neighbor)];
  }
  /// Total shipped table size — the paper's interval-vs-model-size tradeoff.
  std::size_t total_bytes() const;

  /// Total out-of-domain evaluations across all tables — the raw signal
  /// behind the health.extrapolation_rate watchdog.
  std::size_t extrapolations() const {
    std::size_t n = 0;
    for (const auto& t : tables_) n += t.extrapolations();
    return n;
  }

  /// Upper bound of the physical s(r) domain: s is monotone decreasing in r,
  /// so the maximum is attained at the closest physically possible approach
  /// r_min.
  static double s_max(const core::ModelConfig& cfg, double r_min);

 private:
  const core::DPModel& model_;
  TabulationSpec spec_;
  std::vector<TabulatedEmbedding> tables_;
};

}  // namespace dp::tab
