#include "tab/table_sp.hpp"

#include <cmath>
#include <cstdint>

#include "common/simd.hpp"

namespace dp::tab {

namespace {

constexpr std::size_t kL = TabulatedEmbedding::kLane;

// ---------------------------------------------------------------------------
// Per-level float kernels for one blocked table walk — the float analog of
// table.cpp, at twice the lane count (8 floats AVX2 / 16 floats AVX-512, so
// one AVX-512 vector covers a whole 16-channel block). Level::Scalar keeps
// the exact seed Horner expressions of eval_with_deriv(); the vector levels
// share one FMA sequence with the AoS fma variants and the scalar tails, so
// AoS == blocked bitwise at any fixed level (test_simd_parity_sp pins this).
// The half-precision kernels widen coefficients in registers (vcvtph2ps /
// __extendhfsf2 — both exact, every binary16 is representable as a float)
// and then run the identical float sequence.
// ---------------------------------------------------------------------------

void blocked_deriv_scalar_sp(const float* base, float t, std::size_t m, std::size_t nblk,
                             float* g, float* dg) {
  for (std::size_t b = 0; b < nblk; ++b) {
    const float* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    const std::size_t lanes = (ch0 + kL <= m) ? kL : (m - ch0);
#pragma omp simd
    for (std::size_t l = 0; l < lanes; ++l) {
      const float c1 = c[1 * kL + l], c2 = c[2 * kL + l], c3 = c[3 * kL + l],
                  c4 = c[4 * kL + l], c5 = c[5 * kL + l];
      g[ch0 + l] = c[0 * kL + l] + t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
      dg[ch0 + l] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
    }
  }
}

void blocked_deriv_scalar_hp(const TabulatedEmbeddingHP::half_t* base, float t,
                             std::size_t m, std::size_t nblk, float* g, float* dg) {
  for (std::size_t b = 0; b < nblk; ++b) {
    const TabulatedEmbeddingHP::half_t* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    const std::size_t lanes = (ch0 + kL <= m) ? kL : (m - ch0);
    for (std::size_t l = 0; l < lanes; ++l) {
      const float c1 = static_cast<float>(c[1 * kL + l]),
                  c2 = static_cast<float>(c[2 * kL + l]),
                  c3 = static_cast<float>(c[3 * kL + l]),
                  c4 = static_cast<float>(c[4 * kL + l]),
                  c5 = static_cast<float>(c[5 * kL + l]);
      g[ch0 + l] = static_cast<float>(c[0 * kL + l]) +
                   t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
      dg[ch0 + l] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
    }
  }
}

#if DP_SIMD_X86

// AoS walk at the vector levels: scalar std::fma per channel (compiled to
// the FMA instruction under the target attribute) — the exact rounding
// sequence of the vector lanes below, so AoS == blocked bitwise. One
// AVX2-annotated body serves both AVX levels (the math is elementwise).
DP_TARGET_AVX2 void aos_value_fma_sp(const float* base, float t, std::size_t m, float* g) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c[5], c[4]), c[3]), c[2]), c[1]),
        c[0]);
  }
}

DP_TARGET_AVX2 void aos_deriv_fma_sp(const float* base, float t, std::size_t m, float* g,
                                     float* dg) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c[5], c[4]), c[3]), c[2]), c[1]),
        c[0]);
    dg[ch] = std::fma(
        t,
        std::fma(t, std::fma(t, std::fma(t, 5.0f * c[5], 4.0f * c[4]), 3.0f * c[3]),
                 2.0f * c[2]),
        c[1]);
  }
}

DP_TARGET_AVX2 void aos_value_fma_hp(const TabulatedEmbeddingHP::half_t* base, float t,
                                     std::size_t m, float* g) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const TabulatedEmbeddingHP::half_t* c = base + ch * 6;
    const float c0 = static_cast<float>(c[0]), c1 = static_cast<float>(c[1]),
                c2 = static_cast<float>(c[2]), c3 = static_cast<float>(c[3]),
                c4 = static_cast<float>(c[4]), c5 = static_cast<float>(c[5]);
    g[ch] = std::fma(t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
                     c0);
  }
}

DP_TARGET_AVX2 void aos_deriv_fma_hp(const TabulatedEmbeddingHP::half_t* base, float t,
                                     std::size_t m, float* g, float* dg) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const TabulatedEmbeddingHP::half_t* c = base + ch * 6;
    const float c0 = static_cast<float>(c[0]), c1 = static_cast<float>(c[1]),
                c2 = static_cast<float>(c[2]), c3 = static_cast<float>(c[3]),
                c4 = static_cast<float>(c[4]), c5 = static_cast<float>(c[5]);
    g[ch] = std::fma(t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
                     c0);
    dg[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, 5.0f * c5, 4.0f * c4), 3.0f * c3), 2.0f * c2),
        c1);
  }
}

// Blocked walk, AVX2: two 8-float vectors per 16-channel block; the six
// coefficient streams are contiguous (and 32-byte aligned) in the blocked
// layout, so every load is a plain vector load.
template <bool NT>
DP_TARGET_AVX2 void blocked_deriv_avx2_sp(const float* base, float t, std::size_t m,
                                          std::size_t nblk, float* g, float* dg) {
  using namespace simd;
  const v8f vt = f8_set1(t);
  const v8f two = f8_set1(2.0f), three = f8_set1(3.0f), four = f8_set1(4.0f),
            five = f8_set1(5.0f);
  for (std::size_t b = 0; b < nblk; ++b) {
    const float* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 8) {
        const float* cq = c + q;
        const v8f c1 = f8_load(cq + 1 * kL), c2 = f8_load(cq + 2 * kL),
                  c3 = f8_load(cq + 3 * kL), c4 = f8_load(cq + 4 * kL),
                  c5 = f8_load(cq + 5 * kL);
        v8f y = f8_fmadd(vt, c5, c4);
        y = f8_fmadd(vt, y, c3);
        y = f8_fmadd(vt, y, c2);
        y = f8_fmadd(vt, y, c1);
        y = f8_fmadd(vt, y, f8_load(cq + 0 * kL));
        v8f d = f8_fmadd(vt, f8_mul(five, c5), f8_mul(four, c4));
        d = f8_fmadd(vt, d, f8_mul(three, c3));
        d = f8_fmadd(vt, d, f8_mul(two, c2));
        d = f8_fmadd(vt, d, c1);
        if constexpr (NT) {
          f8_stream(g + ch0 + q, y);
          f8_stream(dg + ch0 + q, d);
        } else {
          f8_storeu(g + ch0 + q, y);
          f8_storeu(dg + ch0 + q, d);
        }
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const float* cl = c + l;
        const float c1 = cl[1 * kL], c2 = cl[2 * kL], c3 = cl[3 * kL], c4 = cl[4 * kL],
                    c5 = cl[5 * kL];
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            cl[0 * kL]);
        dg[ch0 + l] = std::fma(
            t,
            std::fma(t, std::fma(t, std::fma(t, 5.0f * c5, 4.0f * c4), 3.0f * c3), 2.0f * c2),
            c1);
      }
    }
  }
}

// Blocked walk, AVX-512: one 16-float vector covers the whole block.
template <bool NT>
DP_TARGET_AVX512 void blocked_deriv_avx512_sp(const float* base, float t, std::size_t m,
                                              std::size_t nblk, float* g, float* dg) {
  using namespace simd;
  const v16f vt = f16_set1(t);
  const v16f two = f16_set1(2.0f), three = f16_set1(3.0f), four = f16_set1(4.0f),
             five = f16_set1(5.0f);
  for (std::size_t b = 0; b < nblk; ++b) {
    const float* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      const v16f c1 = f16_load(c + 1 * kL), c2 = f16_load(c + 2 * kL),
                 c3 = f16_load(c + 3 * kL), c4 = f16_load(c + 4 * kL),
                 c5 = f16_load(c + 5 * kL);
      v16f y = f16_fmadd(vt, c5, c4);
      y = f16_fmadd(vt, y, c3);
      y = f16_fmadd(vt, y, c2);
      y = f16_fmadd(vt, y, c1);
      y = f16_fmadd(vt, y, f16_load(c + 0 * kL));
      v16f d = f16_fmadd(vt, f16_mul(five, c5), f16_mul(four, c4));
      d = f16_fmadd(vt, d, f16_mul(three, c3));
      d = f16_fmadd(vt, d, f16_mul(two, c2));
      d = f16_fmadd(vt, d, c1);
      if constexpr (NT) {
        f16_stream(g + ch0, y);
        f16_stream(dg + ch0, d);
      } else {
        f16_storeu(g + ch0, y);
        f16_storeu(dg + ch0, d);
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const float* cl = c + l;
        const float c1 = cl[1 * kL], c2 = cl[2 * kL], c3 = cl[3 * kL], c4 = cl[4 * kL],
                    c5 = cl[5 * kL];
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            cl[0 * kL]);
        dg[ch0 + l] = std::fma(
            t,
            std::fma(t, std::fma(t, std::fma(t, 5.0f * c5, 4.0f * c4), 3.0f * c3), 2.0f * c2),
            c1);
      }
    }
  }
}

// Half blocked walk, AVX2: needs F16C for the in-register widen (vcvtph2ps
// is not implied by the avx2 target attribute) — the dispatcher downgrades
// the half table to scalar on AVX2 hardware without F16C.
template <bool NT>
DP_TARGET_AVX2_F16C void blocked_deriv_avx2_hp(const TabulatedEmbeddingHP::half_t* base,
                                               float t, std::size_t m, std::size_t nblk,
                                               float* g, float* dg) {
  using namespace simd;
  const v8f vt = f8_set1(t);
  const v8f two = f8_set1(2.0f), three = f8_set1(3.0f), four = f8_set1(4.0f),
            five = f8_set1(5.0f);
  for (std::size_t b = 0; b < nblk; ++b) {
    const TabulatedEmbeddingHP::half_t* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 8) {
        const TabulatedEmbeddingHP::half_t* cq = c + q;
        const v8f c1 = f8_load_h(cq + 1 * kL), c2 = f8_load_h(cq + 2 * kL),
                  c3 = f8_load_h(cq + 3 * kL), c4 = f8_load_h(cq + 4 * kL),
                  c5 = f8_load_h(cq + 5 * kL);
        v8f y = f8_fmadd(vt, c5, c4);
        y = f8_fmadd(vt, y, c3);
        y = f8_fmadd(vt, y, c2);
        y = f8_fmadd(vt, y, c1);
        y = f8_fmadd(vt, y, f8_load_h(cq + 0 * kL));
        v8f d = f8_fmadd(vt, f8_mul(five, c5), f8_mul(four, c4));
        d = f8_fmadd(vt, d, f8_mul(three, c3));
        d = f8_fmadd(vt, d, f8_mul(two, c2));
        d = f8_fmadd(vt, d, c1);
        if constexpr (NT) {
          f8_stream(g + ch0 + q, y);
          f8_stream(dg + ch0 + q, d);
        } else {
          f8_storeu(g + ch0 + q, y);
          f8_storeu(dg + ch0 + q, d);
        }
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const TabulatedEmbeddingHP::half_t* cl = c + l;
        const float c1 = static_cast<float>(cl[1 * kL]), c2 = static_cast<float>(cl[2 * kL]),
                    c3 = static_cast<float>(cl[3 * kL]), c4 = static_cast<float>(cl[4 * kL]),
                    c5 = static_cast<float>(cl[5 * kL]);
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            static_cast<float>(cl[0 * kL]));
        dg[ch0 + l] = std::fma(
            t,
            std::fma(t, std::fma(t, std::fma(t, 5.0f * c5, 4.0f * c4), 3.0f * c3), 2.0f * c2),
            c1);
      }
    }
  }
}

// Half blocked walk, AVX-512: vcvtph2ps is plain AVX512F, no extra gate.
template <bool NT>
DP_TARGET_AVX512 void blocked_deriv_avx512_hp(const TabulatedEmbeddingHP::half_t* base,
                                              float t, std::size_t m, std::size_t nblk,
                                              float* g, float* dg) {
  using namespace simd;
  const v16f vt = f16_set1(t);
  const v16f two = f16_set1(2.0f), three = f16_set1(3.0f), four = f16_set1(4.0f),
             five = f16_set1(5.0f);
  for (std::size_t b = 0; b < nblk; ++b) {
    const TabulatedEmbeddingHP::half_t* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      const v16f c1 = f16_load_h(c + 1 * kL), c2 = f16_load_h(c + 2 * kL),
                 c3 = f16_load_h(c + 3 * kL), c4 = f16_load_h(c + 4 * kL),
                 c5 = f16_load_h(c + 5 * kL);
      v16f y = f16_fmadd(vt, c5, c4);
      y = f16_fmadd(vt, y, c3);
      y = f16_fmadd(vt, y, c2);
      y = f16_fmadd(vt, y, c1);
      y = f16_fmadd(vt, y, f16_load_h(c + 0 * kL));
      v16f d = f16_fmadd(vt, f16_mul(five, c5), f16_mul(four, c4));
      d = f16_fmadd(vt, d, f16_mul(three, c3));
      d = f16_fmadd(vt, d, f16_mul(two, c2));
      d = f16_fmadd(vt, d, c1);
      if constexpr (NT) {
        f16_stream(g + ch0, y);
        f16_stream(dg + ch0, d);
      } else {
        f16_storeu(g + ch0, y);
        f16_storeu(dg + ch0, d);
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const TabulatedEmbeddingHP::half_t* cl = c + l;
        const float c1 = static_cast<float>(cl[1 * kL]), c2 = static_cast<float>(cl[2 * kL]),
                    c3 = static_cast<float>(cl[3 * kL]), c4 = static_cast<float>(cl[4 * kL]),
                    c5 = static_cast<float>(cl[5 * kL]);
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            static_cast<float>(cl[0 * kL]));
        dg[ch0 + l] = std::fma(
            t,
            std::fma(t, std::fma(t, std::fma(t, 5.0f * c5, 4.0f * c4), 3.0f * c3), 2.0f * c2),
            c1);
      }
    }
  }
}

#endif  // DP_SIMD_X86

using BlockedDerivSPFn = void (*)(const float*, float, std::size_t, std::size_t, float*,
                                  float*);
using BlockedDerivHPFn = void (*)(const TabulatedEmbeddingHP::half_t*, float, std::size_t,
                                  std::size_t, float*, float*);

BlockedDerivSPFn pick_blocked_deriv_sp(simd::Level lvl, bool nt) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512)
    return nt ? blocked_deriv_avx512_sp<true> : blocked_deriv_avx512_sp<false>;
  if (lvl == simd::Level::AVX2)
    return nt ? blocked_deriv_avx2_sp<true> : blocked_deriv_avx2_sp<false>;
#else
  (void)lvl;
  (void)nt;
#endif
  return blocked_deriv_scalar_sp;
}

// The half table's effective level: AVX2 without F16C has no in-register
// widen, so the half walk dispatches scalar there (AoS and blocked then both
// run the seed expressions — the layouts stay bitwise identical).
simd::Level hp_effective(simd::Level lvl) {
  if (lvl == simd::Level::AVX2 && !simd::has_f16c()) return simd::Level::Scalar;
  return lvl;
}

BlockedDerivHPFn pick_blocked_deriv_hp(simd::Level lvl, bool nt) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512)
    return nt ? blocked_deriv_avx512_hp<true> : blocked_deriv_avx512_hp<false>;
  if (lvl == simd::Level::AVX2)
    return nt ? blocked_deriv_avx2_hp<true> : blocked_deriv_avx2_hp<false>;
#else
  (void)lvl;
  (void)nt;
#endif
  return blocked_deriv_scalar_hp;
}

}  // namespace

TabulatedEmbeddingSP::TabulatedEmbeddingSP(const TabulatedEmbedding& ref)
    : m_(ref.output_dim()),
      m_pad_((ref.output_dim() + kL - 1) / kL * kL),
      n_(ref.n_intervals()),
      lo_(static_cast<float>(ref.lo())),
      hi_(static_cast<float>(ref.hi())),
      h_(static_cast<float>(ref.interval())),
      inv_h_(1.0f / static_cast<float>(ref.interval())) {
  const auto& src = ref.coefficients();
  coef_.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) coef_[i] = static_cast<float>(src[i]);
  rebuild_blocked();
}

void TabulatedEmbeddingSP::rebuild_blocked() {
  // Same per-16 transpose as TabulatedEmbedding::rebuild_blocked(), on the
  // already-truncated float coefficients (no re-rounding).
  coef_blocked_.assign(n_ * m_pad_ * 6, 0.0f);
  const std::size_t nblk = m_pad_ / kL;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const std::size_t b = ch / kL, l = ch % kL;
      const float* src = coef_.data() + (i * m_ + ch) * 6;
      float* blk = coef_blocked_.data() + ((i * nblk + b) * 6) * kL;
      for (std::size_t k = 0; k < 6; ++k) blk[k * kL + l] = src[k];
    }
}

void TabulatedEmbeddingSP::eval(float s, float* g) const {
  float t;
  const std::size_t i = locate(s, t);
  const float* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (simd::active() != simd::Level::Scalar) {
    aos_value_fma_sp(base, t, m_, g);
    return;
  }
#endif
#pragma omp simd
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
  }
}

void TabulatedEmbeddingSP::eval_with_deriv(float s, float* g, float* dg) const {
  float t;
  const std::size_t i = locate(s, t);
  const float* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (simd::active() != simd::Level::Scalar) {
    aos_deriv_fma_sp(base, t, m_, g, dg);
    return;
  }
#endif
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
    dg[ch] = c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
  }
}

void TabulatedEmbeddingSP::eval_with_deriv_blocked_batch(const float* s, std::size_t s_stride,
                                                         std::size_t count, float* g,
                                                         float* dg, std::size_t out_stride,
                                                         bool streaming) const {
  // One dispatch for the whole run; locate() per element keeps the
  // extrapolation telemetry identical to per-slot eval_with_deriv calls.
  bool nt = false;
#if DP_SIMD_X86
  nt = streaming && simd::active() != simd::Level::Scalar &&
       ((reinterpret_cast<std::uintptr_t>(g) | reinterpret_cast<std::uintptr_t>(dg) |
         (out_stride * sizeof(float))) %
            64 ==
        0);
#else
  (void)streaming;
#endif
  const BlockedDerivSPFn fn = pick_blocked_deriv_sp(simd::active(), nt);
  const std::size_t nblk = m_pad_ / kL;
  for (std::size_t k = 0; k < count; ++k) {
    float t;
    const std::size_t i = locate(s[k * s_stride], t);
    fn(coef_blocked_.data() + i * nblk * 6 * kL, t, m_, nblk, g + k * out_stride,
       dg + k * out_stride);
  }
#if DP_SIMD_X86
  if (nt) simd::store_fence();
#endif
}

TabulatedEmbeddingHP::TabulatedEmbeddingHP(const TabulatedEmbedding& ref)
    : m_(ref.output_dim()),
      m_pad_((ref.output_dim() + kL - 1) / kL * kL),
      n_(ref.n_intervals()),
      lo_(static_cast<float>(ref.lo())),
      hi_(static_cast<float>(ref.hi())),
      h_(static_cast<float>(ref.interval())),
      inv_h_(1.0f / static_cast<float>(ref.interval())) {
  const auto& src = ref.coefficients();
  coef_.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    coef_[i] = static_cast<half_t>(static_cast<float>(src[i]));
  rebuild_blocked();
}

void TabulatedEmbeddingHP::rebuild_blocked() {
  coef_blocked_.assign(n_ * m_pad_ * 6, static_cast<half_t>(0.0f));
  const std::size_t nblk = m_pad_ / kL;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const std::size_t b = ch / kL, l = ch % kL;
      const half_t* src = coef_.data() + (i * m_ + ch) * 6;
      half_t* blk = coef_blocked_.data() + ((i * nblk + b) * 6) * kL;
      for (std::size_t k = 0; k < 6; ++k) blk[k * kL + l] = src[k];
    }
}

void TabulatedEmbeddingHP::eval(float s, float* g) const {
  float t;
  const std::size_t i = locate(s, t);
  const half_t* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (hp_effective(simd::active()) != simd::Level::Scalar) {
    aos_value_fma_hp(base, t, m_, g);
    return;
  }
#endif
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const half_t* c = base + ch * 6;
    const float c0 = static_cast<float>(c[0]), c1 = static_cast<float>(c[1]),
                c2 = static_cast<float>(c[2]), c3 = static_cast<float>(c[3]),
                c4 = static_cast<float>(c[4]), c5 = static_cast<float>(c[5]);
    g[ch] = c0 + t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
  }
}

void TabulatedEmbeddingHP::eval_with_deriv(float s, float* g, float* dg) const {
  float t;
  const std::size_t i = locate(s, t);
  const half_t* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (hp_effective(simd::active()) != simd::Level::Scalar) {
    aos_deriv_fma_hp(base, t, m_, g, dg);
    return;
  }
#endif
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const half_t* c = base + ch * 6;
    const float c1 = static_cast<float>(c[1]), c2 = static_cast<float>(c[2]),
                c3 = static_cast<float>(c[3]), c4 = static_cast<float>(c[4]),
                c5 = static_cast<float>(c[5]);
    g[ch] = static_cast<float>(c[0]) +
            t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
    dg[ch] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
  }
}

void TabulatedEmbeddingHP::eval_with_deriv_blocked_batch(const float* s, std::size_t s_stride,
                                                         std::size_t count, float* g,
                                                         float* dg, std::size_t out_stride,
                                                         bool streaming) const {
  const simd::Level lvl = hp_effective(simd::active());
  bool nt = false;
#if DP_SIMD_X86
  nt = streaming && lvl != simd::Level::Scalar &&
       ((reinterpret_cast<std::uintptr_t>(g) | reinterpret_cast<std::uintptr_t>(dg) |
         (out_stride * sizeof(float))) %
            64 ==
        0);
#else
  (void)streaming;
#endif
  const BlockedDerivHPFn fn = pick_blocked_deriv_hp(lvl, nt);
  const std::size_t nblk = m_pad_ / kL;
  for (std::size_t k = 0; k < count; ++k) {
    float t;
    const std::size_t i = locate(s[k * s_stride], t);
    fn(coef_blocked_.data() + i * nblk * 6 * kL, t, m_, nblk, g + k * out_stride,
       dg + k * out_stride);
  }
#if DP_SIMD_X86
  if (nt) simd::store_fence();
#endif
}

}  // namespace dp::tab
