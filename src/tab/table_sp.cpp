#include "tab/table_sp.hpp"

namespace dp::tab {

TabulatedEmbeddingSP::TabulatedEmbeddingSP(const TabulatedEmbedding& ref)
    : m_(ref.output_dim()),
      n_(ref.n_intervals()),
      lo_(static_cast<float>(ref.lo())),
      hi_(static_cast<float>(ref.hi())),
      h_(static_cast<float>(ref.interval())),
      inv_h_(1.0f / static_cast<float>(ref.interval())) {
  const auto& src = ref.coefficients();
  coef_.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) coef_[i] = static_cast<float>(src[i]);
}

void TabulatedEmbeddingSP::eval(float s, float* g) const {
  float t;
  const std::size_t i = locate(s, t);
  const float* base = coef_.data() + i * m_ * 6;
#pragma omp simd
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
  }
}

void TabulatedEmbeddingSP::eval_with_deriv(float s, float* g, float* dg) const {
  float t;
  const std::size_t i = locate(s, t);
  const float* base = coef_.data() + i * m_ * 6;
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const float* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
    dg[ch] = c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
  }
}

TabulatedEmbeddingHP::TabulatedEmbeddingHP(const TabulatedEmbedding& ref)
    : m_(ref.output_dim()),
      n_(ref.n_intervals()),
      lo_(static_cast<float>(ref.lo())),
      hi_(static_cast<float>(ref.hi())),
      h_(static_cast<float>(ref.interval())),
      inv_h_(1.0f / static_cast<float>(ref.interval())) {
  const auto& src = ref.coefficients();
  coef_.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i)
    coef_[i] = static_cast<half_t>(static_cast<float>(src[i]));
}

void TabulatedEmbeddingHP::eval(float s, float* g) const {
  float t;
  const std::size_t i = locate(s, t);
  const half_t* base = coef_.data() + i * m_ * 6;
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const half_t* c = base + ch * 6;
    const float c0 = static_cast<float>(c[0]), c1 = static_cast<float>(c[1]),
                c2 = static_cast<float>(c[2]), c3 = static_cast<float>(c[3]),
                c4 = static_cast<float>(c[4]), c5 = static_cast<float>(c[5]);
    g[ch] = c0 + t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
  }
}

void TabulatedEmbeddingHP::eval_with_deriv(float s, float* g, float* dg) const {
  float t;
  const std::size_t i = locate(s, t);
  const half_t* base = coef_.data() + i * m_ * 6;
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const half_t* c = base + ch * 6;
    const float c1 = static_cast<float>(c[1]), c2 = static_cast<float>(c[2]),
                c3 = static_cast<float>(c[3]), c4 = static_cast<float>(c[4]),
                c5 = static_cast<float>(c[5]);
    g[ch] = static_cast<float>(c[0]) +
            t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
    dg[ch] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
  }
}

}  // namespace dp::tab
