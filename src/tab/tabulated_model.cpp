#include "tab/tabulated_model.hpp"

#include "common/error.hpp"
#include "dp/switch_fn.hpp"

namespace dp::tab {

TabulatedDP::TabulatedDP(const core::DPModel& model, const TabulationSpec& spec)
    : model_(model), spec_(spec) {
  tables_.reserve(model.n_embedding_nets());
  const int nt = model.config().ntypes;
  if (model.config().type_one_side) {
    for (int t = 0; t < nt; ++t) tables_.emplace_back(model.embedding(t), spec);
  } else {
    for (int c = 0; c < nt; ++c)
      for (int t = 0; t < nt; ++t)
        tables_.emplace_back(model.embedding_pair(c, t), spec);
  }
}

TabulatedDP::TabulatedDP(const core::DPModel& model, const TabulationSpec& spec,
                         std::vector<TabulatedEmbedding> tables)
    : model_(model), spec_(spec), tables_(std::move(tables)) {
  DP_CHECK_MSG(tables_.size() == model.n_embedding_nets(),
               "one table per embedding net required");
  for (const auto& t : tables_)
    DP_CHECK_MSG(t.output_dim() == model.config().m(), "table/model width mismatch");
}

std::size_t TabulatedDP::total_bytes() const {
  std::size_t b = 0;
  for (const auto& t : tables_) b += t.bytes();
  return b;
}

double TabulatedDP::s_max(const core::ModelConfig& cfg, double r_min) {
  return core::switch_fn(r_min, cfg.rcut_smth, cfg.rcut).s;
}

}  // namespace dp::tab
