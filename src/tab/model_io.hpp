// The compressed-model bundle: model weights + the quintic tables in one
// file, the deployable artifact of "dp compress" (the paper quotes its size
// — 33 MB for water at interval 0.01 — as the tradeoff against accuracy).
#pragma once

#include <memory>
#include <string>

#include "tab/tabulated_model.hpp"

namespace dp::tab {

/// Writes model + spec + per-type tables.
void save_compressed_model(const std::string& path, const TabulatedDP& tabulated);

/// A loaded bundle owning both the model and its tables. The tables are the
/// stored ones (bit-identical to what was saved), not re-sampled.
class CompressedModel {
 public:
  static CompressedModel load(const std::string& path);

  const core::DPModel& model() const { return *model_; }
  const TabulatedDP& tabulated() const { return *tabulated_; }

 private:
  CompressedModel() = default;
  std::unique_ptr<core::DPModel> model_;
  std::unique_ptr<TabulatedDP> tabulated_;
};

}  // namespace dp::tab
