#include "tab/poly5.hpp"

#include "common/error.hpp"

namespace dp::tab {

Poly5 fit_quintic(double h, double f0, double d0, double s0, double f1, double d1,
                  double s1) {
  DP_CHECK(h > 0.0);
  Poly5 c;
  c[0] = f0;
  c[1] = d0;
  c[2] = 0.5 * s0;
  // Residuals at t = h after the left-node Taylor part.
  const double A = f1 - (c[0] + h * (c[1] + h * c[2]));
  const double B = d1 - (c[1] + 2.0 * c[2] * h);
  const double C = s1 - 2.0 * c[2];
  const double h2 = h * h, h3 = h2 * h;
  c[3] = (20.0 * A - 8.0 * B * h + C * h2) / (2.0 * h3);
  c[4] = (-30.0 * A + 14.0 * B * h - 2.0 * C * h2) / (2.0 * h3 * h);
  c[5] = (12.0 * A - 6.0 * B * h + C * h2) / (2.0 * h3 * h2);
  return c;
}

}  // namespace dp::tab
