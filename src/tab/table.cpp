#include "tab/table.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "tab/poly5.hpp"

namespace dp::tab {

TabulatedEmbedding::TabulatedEmbedding(const nn::EmbeddingNet& net,
                                       const TabulationSpec& spec) {
  DP_CHECK(spec.hi > spec.lo && spec.interval > 0.0);
  m_ = net.output_dim();
  m_pad_ = (m_ + kLane - 1) / kLane * kLane;
  lo_ = spec.lo;
  hi_ = spec.hi;
  n_ = static_cast<std::size_t>(std::ceil((hi_ - lo_) / spec.interval - 1e-12));
  DP_CHECK(n_ >= 1);
  h_ = (hi_ - lo_) / static_cast<double>(n_);
  inv_h_ = 1.0 / h_;

  coef_.assign(n_ * m_ * 6, 0.0);

  // Jets of the reference network at all n_+1 nodes.
  AlignedVector<double> g0(m_), d0(m_), s0(m_), g1(m_), d1(m_), s1(m_);
  net.eval_jet(lo_, g0.data(), d0.data(), s0.data());
  for (std::size_t i = 0; i < n_; ++i) {
    const double x1 = lo_ + h_ * static_cast<double>(i + 1);
    net.eval_jet(x1, g1.data(), d1.data(), s1.data());
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const Poly5 c = fit_quintic(h_, g0[ch], d0[ch], s0[ch], g1[ch], d1[ch], s1[ch]);
      double* dst = coef_.data() + (i * m_ + ch) * 6;
      for (int k = 0; k < 6; ++k) dst[k] = c[k];
    }
    std::swap(g0, g1);
    std::swap(d0, d1);
    std::swap(s0, s1);
  }
  rebuild_blocked();
}

void TabulatedEmbedding::rebuild_blocked() {
  // Blocked layout: the k-th coefficient of channel ch lands in stream k of
  // block ch/16 at lane ch%16 — the per-16 transpose of Sec 3.5.1.
  coef_blocked_.assign(n_ * m_pad_ * 6, 0.0);
  const std::size_t nblk = m_pad_ / kLane;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const std::size_t b = ch / kLane, l = ch % kLane;
      const double* src = coef_.data() + (i * m_ + ch) * 6;
      double* blk = coef_blocked_.data() + ((i * nblk + b) * 6) * kLane;
      for (std::size_t k = 0; k < 6; ++k) blk[k * kLane + l] = src[k];
    }
}

std::size_t TabulatedEmbedding::locate(double s, double& t) const {
  double u = (s - lo_) * inv_h_;
  std::size_t i;
  if (u < 0.0) {
    i = 0;
    extrapolations_.bump();
  } else if (u >= static_cast<double>(n_)) {
    i = n_ - 1;
    if (s > hi_) extrapolations_.bump();
  } else {
    i = static_cast<std::size_t>(u);
  }
  t = s - (lo_ + h_ * static_cast<double>(i));
  return i;
}

void TabulatedEmbedding::eval(double s, double* g) const {
  double t;
  const std::size_t i = locate(s, t);
  const double* base = coef_.data() + i * m_ * 6;
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
  }
}

void TabulatedEmbedding::eval_with_deriv(double s, double* g, double* dg) const {
  double t;
  const std::size_t i = locate(s, t);
  const double* base = coef_.data() + i * m_ * 6;
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
    dg[ch] = c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
  }
}

void TabulatedEmbedding::eval_blocked(double s, double* g) const {
  double t;
  const std::size_t i = locate(s, t);
  const std::size_t nblk = m_pad_ / kLane;
  const double* base = coef_blocked_.data() + i * nblk * 6 * kLane;
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kLane;
    const std::size_t ch0 = b * kLane;
    const std::size_t lanes = (ch0 + kLane <= m_) ? kLane : (m_ - ch0);
#pragma omp simd
    for (std::size_t l = 0; l < lanes; ++l) {
      g[ch0 + l] =
          c[0 * kLane + l] +
          t * (c[1 * kLane + l] +
               t * (c[2 * kLane + l] +
                    t * (c[3 * kLane + l] + t * (c[4 * kLane + l] + t * c[5 * kLane + l]))));
    }
  }
}

void TabulatedEmbedding::eval_with_deriv_blocked(double s, double* g, double* dg) const {
  double t;
  const std::size_t i = locate(s, t);
  const std::size_t nblk = m_pad_ / kLane;
  const double* base = coef_blocked_.data() + i * nblk * 6 * kLane;
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kLane;
    const std::size_t ch0 = b * kLane;
    const std::size_t lanes = (ch0 + kLane <= m_) ? kLane : (m_ - ch0);
#pragma omp simd
    for (std::size_t l = 0; l < lanes; ++l) {
      const double c1 = c[1 * kLane + l], c2 = c[2 * kLane + l], c3 = c[3 * kLane + l],
                   c4 = c[4 * kLane + l], c5 = c[5 * kLane + l];
      g[ch0 + l] = c[0 * kLane + l] + t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
      dg[ch0 + l] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
    }
  }
}

namespace {
template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated table stream");
  return v;
}
constexpr std::uint32_t kTableMagic = 0x44505442;  // "DPTB"
}  // namespace

void TabulatedEmbedding::save(std::ostream& os) const {
  write_pod(os, kTableMagic);
  write_pod<std::uint64_t>(os, m_);
  write_pod<std::uint64_t>(os, n_);
  write_pod(os, lo_);
  write_pod(os, hi_);
  os.write(reinterpret_cast<const char*>(coef_.data()),
           static_cast<std::streamsize>(coef_.size() * sizeof(double)));
}

TabulatedEmbedding TabulatedEmbedding::load(std::istream& is) {
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kTableMagic, "bad table magic");
  TabulatedEmbedding t;
  t.m_ = read_pod<std::uint64_t>(is);
  t.n_ = read_pod<std::uint64_t>(is);
  t.lo_ = read_pod<double>(is);
  t.hi_ = read_pod<double>(is);
  DP_CHECK(t.m_ > 0 && t.n_ > 0 && t.hi_ > t.lo_);
  t.m_pad_ = (t.m_ + kLane - 1) / kLane * kLane;
  t.h_ = (t.hi_ - t.lo_) / static_cast<double>(t.n_);
  t.inv_h_ = 1.0 / t.h_;
  t.coef_.resize(t.n_ * t.m_ * 6);
  is.read(reinterpret_cast<char*>(t.coef_.data()),
          static_cast<std::streamsize>(t.coef_.size() * sizeof(double)));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated table stream");
  t.rebuild_blocked();
  return t;
}

}  // namespace dp::tab