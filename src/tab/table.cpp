#include "tab/table.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "tab/poly5.hpp"

namespace dp::tab {

namespace {

constexpr std::size_t kL = TabulatedEmbedding::kLane;

// ---------------------------------------------------------------------------
// Per-level kernels for one table walk (interval already located, local
// coordinate t in hand). The Level::Scalar kernels keep the exact pre-SIMD
// expressions; the AVX kernels share one elementwise FMA Horner sequence
// between the AoS walk, the blocked walk and the scalar tails, so the two
// layouts stay bitwise identical at any fixed level (the parity suite and
// the Blocked*Identical seed tests both pin this down).
// ---------------------------------------------------------------------------

void blocked_value_scalar(const double* base, double t, std::size_t m, std::size_t nblk,
                          double* g) {
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    const std::size_t lanes = (ch0 + kL <= m) ? kL : (m - ch0);
#pragma omp simd
    for (std::size_t l = 0; l < lanes; ++l) {
      g[ch0 + l] =
          c[0 * kL + l] +
          t * (c[1 * kL + l] +
               t * (c[2 * kL + l] +
                    t * (c[3 * kL + l] + t * (c[4 * kL + l] + t * c[5 * kL + l]))));
    }
  }
}

void blocked_deriv_scalar(const double* base, double t, std::size_t m, std::size_t nblk,
                          double* g, double* dg) {
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    const std::size_t lanes = (ch0 + kL <= m) ? kL : (m - ch0);
#pragma omp simd
    for (std::size_t l = 0; l < lanes; ++l) {
      const double c1 = c[1 * kL + l], c2 = c[2 * kL + l], c3 = c[3 * kL + l],
                   c4 = c[4 * kL + l], c5 = c[5 * kL + l];
      g[ch0 + l] = c[0 * kL + l] + t * (c1 + t * (c2 + t * (c3 + t * (c4 + t * c5))));
      dg[ch0 + l] = c1 + t * (2 * c2 + t * (3 * c3 + t * (4 * c4 + t * 5 * c5)));
    }
  }
}

#if DP_SIMD_X86

// AoS walk at the AVX levels: scalar std::fma per channel, which the target
// attribute compiles to the FMA instruction — the exact rounding sequence of
// the vector lanes below, so AoS == blocked bitwise. One AVX2-annotated body
// serves both AVX levels (the math is elementwise either way).
DP_TARGET_AVX2 void aos_value_fma(const double* base, double t, std::size_t m, double* g) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c[5], c[4]), c[3]), c[2]), c[1]),
        c[0]);
  }
}

DP_TARGET_AVX2 void aos_deriv_fma(const double* base, double t, std::size_t m, double* g,
                                  double* dg) {
  for (std::size_t ch = 0; ch < m; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c[5], c[4]), c[3]), c[2]), c[1]),
        c[0]);
    dg[ch] = std::fma(
        t, std::fma(t, std::fma(t, std::fma(t, 5.0 * c[5], 4.0 * c[4]), 3.0 * c[3]),
                    2.0 * c[2]),
        c[1]);
  }
}

// Blocked walk, AVX2: four 4-lane vectors per 16-channel block; the six
// coefficient streams are contiguous (and 32-byte aligned) in the blocked
// layout, so every load is a plain vector load — the Fig 5 memory pattern.
DP_TARGET_AVX2 void blocked_value_avx2(const double* base, double t, std::size_t m,
                                       std::size_t nblk, double* g) {
  using namespace simd;
  const v4d vt = v4_set1(t);
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 4) {
        const double* cq = c + q;
        v4d y = v4_fmadd(vt, v4_load(cq + 5 * kL), v4_load(cq + 4 * kL));
        y = v4_fmadd(vt, y, v4_load(cq + 3 * kL));
        y = v4_fmadd(vt, y, v4_load(cq + 2 * kL));
        y = v4_fmadd(vt, y, v4_load(cq + 1 * kL));
        y = v4_fmadd(vt, y, v4_load(cq + 0 * kL));
        v4_storeu(g + ch0 + q, y);
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const double* cl = c + l;
        g[ch0 + l] = std::fma(
            t,
            std::fma(t,
                     std::fma(t, std::fma(t, std::fma(t, cl[5 * kL], cl[4 * kL]), cl[3 * kL]),
                              cl[2 * kL]),
                     cl[1 * kL]),
            cl[0 * kL]);
      }
    }
  }
}

// NT=true swaps the vector stores for non-temporal ones (same bits, no
// read-for-ownership) — picked by the batch entry point for output runs that
// stream far past the cache; the caller fences after the run.
template <bool NT>
DP_TARGET_AVX2 void blocked_deriv_avx2(const double* base, double t, std::size_t m,
                                       std::size_t nblk, double* g, double* dg) {
  using namespace simd;
  const v4d vt = v4_set1(t);
  const v4d two = v4_set1(2.0), three = v4_set1(3.0), four = v4_set1(4.0),
            five = v4_set1(5.0);
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 4) {
        const double* cq = c + q;
        const v4d c1 = v4_load(cq + 1 * kL), c2 = v4_load(cq + 2 * kL),
                  c3 = v4_load(cq + 3 * kL), c4 = v4_load(cq + 4 * kL),
                  c5 = v4_load(cq + 5 * kL);
        v4d y = v4_fmadd(vt, c5, c4);
        y = v4_fmadd(vt, y, c3);
        y = v4_fmadd(vt, y, c2);
        y = v4_fmadd(vt, y, c1);
        y = v4_fmadd(vt, y, v4_load(cq + 0 * kL));
        v4d d = v4_fmadd(vt, v4_mul(five, c5), v4_mul(four, c4));
        d = v4_fmadd(vt, d, v4_mul(three, c3));
        d = v4_fmadd(vt, d, v4_mul(two, c2));
        d = v4_fmadd(vt, d, c1);
        if constexpr (NT) {
          v4_stream(g + ch0 + q, y);
          v4_stream(dg + ch0 + q, d);
        } else {
          v4_storeu(g + ch0 + q, y);
          v4_storeu(dg + ch0 + q, d);
        }
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const double* cl = c + l;
        const double c1 = cl[1 * kL], c2 = cl[2 * kL], c3 = cl[3 * kL], c4 = cl[4 * kL],
                     c5 = cl[5 * kL];
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            cl[0 * kL]);
        dg[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, 5.0 * c5, 4.0 * c4), 3.0 * c3), 2.0 * c2),
            c1);
      }
    }
  }
}

// Blocked walk, AVX-512: one 16-channel block is exactly two 8-lane vectors
// per coefficient stream — the paper's dual-SVE-pipeline shape.
DP_TARGET_AVX512 void blocked_value_avx512(const double* base, double t, std::size_t m,
                                           std::size_t nblk, double* g) {
  using namespace simd;
  const v8d vt = v8_set1(t);
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 8) {
        const double* cq = c + q;
        v8d y = v8_fmadd(vt, v8_load(cq + 5 * kL), v8_load(cq + 4 * kL));
        y = v8_fmadd(vt, y, v8_load(cq + 3 * kL));
        y = v8_fmadd(vt, y, v8_load(cq + 2 * kL));
        y = v8_fmadd(vt, y, v8_load(cq + 1 * kL));
        y = v8_fmadd(vt, y, v8_load(cq + 0 * kL));
        v8_storeu(g + ch0 + q, y);
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const double* cl = c + l;
        g[ch0 + l] = std::fma(
            t,
            std::fma(t,
                     std::fma(t, std::fma(t, std::fma(t, cl[5 * kL], cl[4 * kL]), cl[3 * kL]),
                              cl[2 * kL]),
                     cl[1 * kL]),
            cl[0 * kL]);
      }
    }
  }
}

template <bool NT>
DP_TARGET_AVX512 void blocked_deriv_avx512(const double* base, double t, std::size_t m,
                                           std::size_t nblk, double* g, double* dg) {
  using namespace simd;
  const v8d vt = v8_set1(t);
  const v8d two = v8_set1(2.0), three = v8_set1(3.0), four = v8_set1(4.0),
            five = v8_set1(5.0);
  for (std::size_t b = 0; b < nblk; ++b) {
    const double* c = base + b * 6 * kL;
    const std::size_t ch0 = b * kL;
    if (ch0 + kL <= m) {
      for (std::size_t q = 0; q < kL; q += 8) {
        const double* cq = c + q;
        const v8d c1 = v8_load(cq + 1 * kL), c2 = v8_load(cq + 2 * kL),
                  c3 = v8_load(cq + 3 * kL), c4 = v8_load(cq + 4 * kL),
                  c5 = v8_load(cq + 5 * kL);
        v8d y = v8_fmadd(vt, c5, c4);
        y = v8_fmadd(vt, y, c3);
        y = v8_fmadd(vt, y, c2);
        y = v8_fmadd(vt, y, c1);
        y = v8_fmadd(vt, y, v8_load(cq + 0 * kL));
        v8d d = v8_fmadd(vt, v8_mul(five, c5), v8_mul(four, c4));
        d = v8_fmadd(vt, d, v8_mul(three, c3));
        d = v8_fmadd(vt, d, v8_mul(two, c2));
        d = v8_fmadd(vt, d, c1);
        if constexpr (NT) {
          v8_stream(g + ch0 + q, y);
          v8_stream(dg + ch0 + q, d);
        } else {
          v8_storeu(g + ch0 + q, y);
          v8_storeu(dg + ch0 + q, d);
        }
      }
    } else {
      for (std::size_t l = 0; l < m - ch0; ++l) {
        const double* cl = c + l;
        const double c1 = cl[1 * kL], c2 = cl[2 * kL], c3 = cl[3 * kL], c4 = cl[4 * kL],
                     c5 = cl[5 * kL];
        g[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, std::fma(t, c5, c4), c3), c2), c1),
            cl[0 * kL]);
        dg[ch0 + l] = std::fma(
            t, std::fma(t, std::fma(t, std::fma(t, 5.0 * c5, 4.0 * c4), 3.0 * c3), 2.0 * c2),
            c1);
      }
    }
  }
}

#endif  // DP_SIMD_X86

using BlockedValueFn = void (*)(const double*, double, std::size_t, std::size_t, double*);
using BlockedDerivFn = void (*)(const double*, double, std::size_t, std::size_t, double*,
                                double*);

BlockedValueFn pick_blocked_value(simd::Level lvl) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return blocked_value_avx512;
  if (lvl == simd::Level::AVX2) return blocked_value_avx2;
#else
  (void)lvl;
#endif
  return blocked_value_scalar;
}

// `nt` selects the non-temporal store variant at the vector levels; the
// scalar kernel keeps the seed stores (Level::Scalar is the seed path).
BlockedDerivFn pick_blocked_deriv(simd::Level lvl, bool nt) {
#if DP_SIMD_X86
  if (lvl == simd::Level::AVX512) return nt ? blocked_deriv_avx512<true> : blocked_deriv_avx512<false>;
  if (lvl == simd::Level::AVX2) return nt ? blocked_deriv_avx2<true> : blocked_deriv_avx2<false>;
#else
  (void)lvl;
  (void)nt;
#endif
  return blocked_deriv_scalar;
}

}  // namespace

TabulatedEmbedding::TabulatedEmbedding(const nn::EmbeddingNet& net,
                                       const TabulationSpec& spec) {
  DP_CHECK(spec.hi > spec.lo && spec.interval > 0.0);
  m_ = net.output_dim();
  m_pad_ = (m_ + kLane - 1) / kLane * kLane;
  lo_ = spec.lo;
  hi_ = spec.hi;
  n_ = static_cast<std::size_t>(std::ceil((hi_ - lo_) / spec.interval - 1e-12));
  DP_CHECK(n_ >= 1);
  h_ = (hi_ - lo_) / static_cast<double>(n_);
  inv_h_ = 1.0 / h_;

  coef_.assign(n_ * m_ * 6, 0.0);

  // Jets of the reference network at all n_+1 nodes.
  AlignedVector<double> g0(m_), d0(m_), s0(m_), g1(m_), d1(m_), s1(m_);
  net.eval_jet(lo_, g0.data(), d0.data(), s0.data());
  for (std::size_t i = 0; i < n_; ++i) {
    const double x1 = lo_ + h_ * static_cast<double>(i + 1);
    net.eval_jet(x1, g1.data(), d1.data(), s1.data());
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const Poly5 c = fit_quintic(h_, g0[ch], d0[ch], s0[ch], g1[ch], d1[ch], s1[ch]);
      double* dst = coef_.data() + (i * m_ + ch) * 6;
      for (int k = 0; k < 6; ++k) dst[k] = c[k];
    }
    std::swap(g0, g1);
    std::swap(d0, d1);
    std::swap(s0, s1);
  }
  rebuild_blocked();
}

void TabulatedEmbedding::rebuild_blocked() {
  // Blocked layout: the k-th coefficient of channel ch lands in stream k of
  // block ch/16 at lane ch%16 — the per-16 transpose of Sec 3.5.1.
  coef_blocked_.assign(n_ * m_pad_ * 6, 0.0);
  const std::size_t nblk = m_pad_ / kLane;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t ch = 0; ch < m_; ++ch) {
      const std::size_t b = ch / kLane, l = ch % kLane;
      const double* src = coef_.data() + (i * m_ + ch) * 6;
      double* blk = coef_blocked_.data() + ((i * nblk + b) * 6) * kLane;
      for (std::size_t k = 0; k < 6; ++k) blk[k * kLane + l] = src[k];
    }
}

std::size_t TabulatedEmbedding::locate(double s, double& t) const {
  double u = (s - lo_) * inv_h_;
  std::size_t i;
  if (u < 0.0) {
    i = 0;
    extrapolations_.bump();
  } else if (u >= static_cast<double>(n_)) {
    i = n_ - 1;
    if (s > hi_) extrapolations_.bump();
  } else {
    i = static_cast<std::size_t>(u);
  }
  t = s - (lo_ + h_ * static_cast<double>(i));
  return i;
}

void TabulatedEmbedding::eval(double s, double* g) const {
  double t;
  const std::size_t i = locate(s, t);
  const double* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (simd::active() != simd::Level::Scalar) {
    aos_value_fma(base, t, m_, g);
    return;
  }
#endif
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
  }
}

void TabulatedEmbedding::eval_with_deriv(double s, double* g, double* dg) const {
  double t;
  const std::size_t i = locate(s, t);
  const double* base = coef_.data() + i * m_ * 6;
#if DP_SIMD_X86
  if (simd::active() != simd::Level::Scalar) {
    aos_deriv_fma(base, t, m_, g, dg);
    return;
  }
#endif
  for (std::size_t ch = 0; ch < m_; ++ch) {
    const double* c = base + ch * 6;
    g[ch] = c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
    dg[ch] = c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
  }
}

void TabulatedEmbedding::eval_blocked(double s, double* g) const {
  double t;
  const std::size_t i = locate(s, t);
  const std::size_t nblk = m_pad_ / kLane;
  const double* base = coef_blocked_.data() + i * nblk * 6 * kLane;
  pick_blocked_value(simd::active())(base, t, m_, nblk, g);
}

void TabulatedEmbedding::eval_with_deriv_blocked(double s, double* g, double* dg) const {
  double t;
  const std::size_t i = locate(s, t);
  const std::size_t nblk = m_pad_ / kLane;
  const double* base = coef_blocked_.data() + i * nblk * 6 * kLane;
  pick_blocked_deriv(simd::active(), /*nt=*/false)(base, t, m_, nblk, g, dg);
}

void TabulatedEmbedding::eval_with_deriv_blocked_batch(const double* s, std::size_t s_stride,
                                                       std::size_t count, double* g,
                                                       double* dg, std::size_t out_stride,
                                                       bool streaming) const {
  // One dispatch for the whole run of slots; locate() per element keeps the
  // extrapolation telemetry exactly as the per-slot entry point would.
  //
  // The streaming hint swaps the vector stores for non-temporal ones — for
  // output runs far past the LLC the regular store's read-for-ownership
  // doubles the write traffic and becomes the bottleneck. Only honored when
  // every output row is 64-byte aligned (the stream intrinsics require it);
  // the stored bits are identical either way, so the parity suite covers
  // both variants with one oracle.
  bool nt = false;
#if DP_SIMD_X86
  nt = streaming && simd::active() != simd::Level::Scalar &&
       ((reinterpret_cast<std::uintptr_t>(g) | reinterpret_cast<std::uintptr_t>(dg) |
         (out_stride * sizeof(double))) %
            64 ==
        0);
#else
  (void)streaming;
#endif
  const BlockedDerivFn fn = pick_blocked_deriv(simd::active(), nt);
  const std::size_t nblk = m_pad_ / kLane;
  for (std::size_t k = 0; k < count; ++k) {
    double t;
    const std::size_t i = locate(s[k * s_stride], t);
    fn(coef_blocked_.data() + i * nblk * 6 * kLane, t, m_, nblk, g + k * out_stride,
       dg + k * out_stride);
  }
#if DP_SIMD_X86
  if (nt) simd::store_fence();
#endif
}

namespace {
template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated table stream");
  return v;
}
constexpr std::uint32_t kTableMagic = 0x44505442;  // "DPTB"
}  // namespace

void TabulatedEmbedding::save(std::ostream& os) const {
  write_pod(os, kTableMagic);
  write_pod<std::uint64_t>(os, m_);
  write_pod<std::uint64_t>(os, n_);
  write_pod(os, lo_);
  write_pod(os, hi_);
  os.write(reinterpret_cast<const char*>(coef_.data()),
           static_cast<std::streamsize>(coef_.size() * sizeof(double)));
}

TabulatedEmbedding TabulatedEmbedding::load(std::istream& is) {
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kTableMagic, "bad table magic");
  TabulatedEmbedding t;
  t.m_ = read_pod<std::uint64_t>(is);
  t.n_ = read_pod<std::uint64_t>(is);
  t.lo_ = read_pod<double>(is);
  t.hi_ = read_pod<double>(is);
  DP_CHECK(t.m_ > 0 && t.n_ > 0 && t.hi_ > t.lo_);
  t.m_pad_ = (t.m_ + kLane - 1) / kLane * kLane;
  t.h_ = (t.hi_ - t.lo_) / static_cast<double>(t.n_);
  t.inv_h_ = 1.0 / t.h_;
  t.coef_.resize(t.n_ * t.m_ * 6);
  is.read(reinterpret_cast<char*>(t.coef_.data()),
          static_cast<std::streamsize>(t.coef_.size() * sizeof(double)));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated table stream");
  t.rebuild_blocked();
  return t;
}

}  // namespace dp::tab