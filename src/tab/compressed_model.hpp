// The "tabulation only" inference path — the first optimization step of
// Fig 7 / Fig 8.
//
// The embedding net's GEMM pipeline is replaced by the quintic table, but the
// dataflow is otherwise the baseline's: the embedding matrix G (and now its
// derivative dG/ds) are still fully materialized over all N_m slots and
// contracted with GEMMs. Kernel fusion and redundancy removal come later
// (src/fused) — keeping the steps separate is what lets the benches reproduce
// the paper's step-by-step speedup decomposition.
#pragma once

#include <vector>

#include "dp/descriptor.hpp"
#include "dp/env_mat.hpp"
#include "dp/prod_force.hpp"
#include "md/force_field.hpp"
#include "nn/tensor.hpp"
#include "tab/tabulated_model.hpp"

namespace dp::tab {

class CompressedDP final : public md::ForceField {
 public:
  /// `use_blocked_layout` selects the SVE-style transposed coefficient table
  /// (Sec 3.5.1) instead of the AoS layout — results are identical.
  /// `env_kernel` picks the ProdEnvMatA implementation (the Fig 7/8 "other
  /// optimizations" step toggles it).
  explicit CompressedDP(const TabulatedDP& tabulated, bool use_blocked_layout = false,
                        core::EnvMatKernel env_kernel = core::EnvMatKernel::Optimized);

  md::ForceResult compute(const md::Box& box, md::Atoms& atoms, const md::NeighborList& nlist,
                          bool periodic = true) override;
  double cutoff() const override { return tab_.model().config().rcut; }
  std::uint64_t extrapolations() const override { return tab_.extrapolations(); }
  std::size_t neighbor_reservation() const override {
    return static_cast<std::size_t>(tab_.model().config().nm());
  }

  const std::vector<double>& atom_energies() const { return atom_energy_; }
  const core::EnvMat& env() const { return env_; }
  std::size_t embedding_bytes() const { return embedding_bytes_; }

 private:
  void prepare(std::size_t n);
  /// First G/dG row of atom i within type t's batch.
  std::size_t row_of(int t, std::size_t i) const {
    return row_off_[static_cast<std::size_t>(t) * (env_.n_atoms + 1) + i];
  }
  /// Rows atom i contributes for type t (all reserved slots when dense,
  /// filled slots when compact).
  int rows_of(std::size_t i, int t) const {
    return env_.compact() ? env_.count(i, t)
                          : tab_.model().config().sel[static_cast<std::size_t>(t)];
  }

  const TabulatedDP& tab_;
  bool blocked_;
  core::EnvMatKernel env_kernel_;
  core::EnvMat env_;
  core::EnvMatWorkspace env_ws_;
  core::ProdForceWorkspace prod_ws_;
  AlignedVector<double> g_rmat_;
  std::vector<nn::Matrix> g_by_type_, dg_by_type_;
  AlignedVector<double> a_mat_, g_a_, g_g_;
  core::AtomKernelScratch scratch_;
  std::vector<std::size_t> row_off_;  ///< ntypes * (n + 1) per-type row prefix
  std::vector<double> atom_energy_;
  std::size_t embedding_bytes_ = 0;
};

}  // namespace dp::tab
