#include "tab/model_io.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace dp::tab {

namespace {
constexpr std::uint32_t kBundleMagic = 0x44504332;  // "DPC2"

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DP_CHECK_MSG(static_cast<bool>(is), "truncated compressed-model file");
  return v;
}
}  // namespace

void save_compressed_model(const std::string& path, const TabulatedDP& tabulated) {
  std::ofstream os(path, std::ios::binary);
  DP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_pod(os, kBundleMagic);
  const auto& spec = tabulated.spec();
  write_pod(os, spec.lo);
  write_pod(os, spec.hi);
  write_pod(os, spec.interval);
  tabulated.model().save(os);
  const auto n_tables = static_cast<std::int32_t>(tabulated.model().n_embedding_nets());
  write_pod<std::int32_t>(os, n_tables);
  const int nt = tabulated.model().config().ntypes;
  if (tabulated.model().config().type_one_side) {
    for (int t = 0; t < nt; ++t) tabulated.table(t).save(os);
  } else {
    for (int c = 0; c < nt; ++c)
      for (int t = 0; t < nt; ++t) tabulated.table_pair(c, t).save(os);
  }
}

CompressedModel CompressedModel::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DP_CHECK_MSG(is.is_open(), "cannot open " << path);
  DP_CHECK_MSG(read_pod<std::uint32_t>(is) == kBundleMagic,
               "not a compressed-model bundle: " << path);
  TabulationSpec spec;
  spec.lo = read_pod<double>(is);
  spec.hi = read_pod<double>(is);
  spec.interval = read_pod<double>(is);

  CompressedModel out;
  out.model_ = std::make_unique<core::DPModel>(core::DPModel::load(is));
  const auto n_tables = read_pod<std::int32_t>(is);
  DP_CHECK(static_cast<std::size_t>(n_tables) == out.model_->n_embedding_nets());
  std::vector<TabulatedEmbedding> tables;
  tables.reserve(static_cast<std::size_t>(n_tables));
  for (int t = 0; t < n_tables; ++t) tables.push_back(TabulatedEmbedding::load(is));
  out.tabulated_ = std::make_unique<TabulatedDP>(*out.model_, spec, std::move(tables));
  return out;
}

}  // namespace dp::tab
