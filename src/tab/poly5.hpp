// Quintic Hermite segments (paper Sec 3.2).
//
// On each interval the embedding net is replaced by a fifth-order polynomial
// whose value, first and second derivative match the network at both nodes —
// six conditions, six coefficients, so each segment is uniquely determined
// and the piecewise function is globally C2.
#pragma once

#include <array>

namespace dp::tab {

/// Coefficients of  f(t) = sum_k c[k] t^k  in the local coordinate
/// t = x - x0, t in [0, h].
using Poly5 = std::array<double, 6>;

/// Fits the unique quintic with f(0)=f0, f'(0)=d0, f''(0)=s0 and
/// f(h)=f1, f'(h)=d1, f''(h)=s1.
Poly5 fit_quintic(double h, double f0, double d0, double s0, double f1, double d1, double s1);

/// Horner evaluation.
inline double eval_poly5(const Poly5& c, double t) {
  return c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
}

/// First derivative.
inline double eval_poly5_deriv(const Poly5& c, double t) {
  return c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
}

/// Second derivative.
inline double eval_poly5_deriv2(const Poly5& c, double t) {
  return 2 * c[2] + t * (6 * c[3] + t * (12 * c[4] + t * 20 * c[5]));
}

}  // namespace dp::tab
