#include "tab/compressed_model.hpp"

#include <algorithm>
#include <cstring>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"

namespace dp::tab {

using core::EnvMat;
using core::ModelConfig;

CompressedDP::CompressedDP(const TabulatedDP& tabulated, bool use_blocked_layout,
                           core::EnvMatKernel env_kernel)
    : tab_(tabulated), blocked_(use_blocked_layout), env_kernel_(env_kernel) {}

void CompressedDP::prepare(std::size_t n) {
  const ModelConfig& cfg = tab_.model().config();
  const std::size_t m = cfg.m();
  const std::size_t nt = static_cast<std::size_t>(cfg.ntypes);
  atom_energy_.resize(n);
  g_rmat_.resize(env_.stored_slots() * 4);
  g_by_type_.resize(nt);
  dg_by_type_.resize(nt);
  row_off_.resize(nt * (n + 1));
  int max_sel = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    std::size_t run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      row_off_[t * (n + 1) + i] = run;
      run += static_cast<std::size_t>(rows_of(i, static_cast<int>(t)));
    }
    row_off_[t * (n + 1) + n] = run;
    g_by_type_[t].resize(run, m);
    dg_by_type_[t].resize(run, m);
    max_sel = std::max(max_sel, cfg.sel[t]);
  }
  a_mat_.resize(4 * m);
  g_a_.resize(4 * m);
  g_g_.resize(static_cast<std::size_t>(max_sel) * m);
}

md::ForceResult CompressedDP::compute(const md::Box& box, md::Atoms& atoms,
                                      const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("compressed.compute", "kernel");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  {
    ScopedTimer t("compressed.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, env_ws_, env_kernel_, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);
  prepare(n);

  // ---- Tabulated embedding: G and dG/ds materialized over every stored
  // slot (the dense layout keeps its padded rows — redundancy removal is a
  // later optimization step; the compact layout has none to keep) ----------
  embedding_bytes_ = 0;
  std::size_t rows_tabulated = 0;
  {
    ScopedTimer t("compressed.tabulation", "kernel");
    for (int ty = 0; ty < cfg.ntypes; ++ty) {
      const TabulatedEmbedding& table = tab_.table(ty);
      const std::size_t rows = row_of(ty, n);
      nn::Matrix& g = g_by_type_[static_cast<std::size_t>(ty)];
      nn::Matrix& dg = dg_by_type_[static_cast<std::size_t>(ty)];
      // The G/dG matrices for one type are written front to back across the
      // whole frame before anything reads them; once that run is bigger
      // than any cache the vector kernels should stream past it with
      // non-temporal stores instead of paying read-for-ownership per line.
      const bool streaming = 2 * rows * m * sizeof(double) > std::size_t{8} << 20;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t base = env_.block_begin(i, ty);
        const std::size_t r0 = row_of(ty, i);
        const int cnt = rows_of(i, ty);
        if (cnt <= 0) continue;
        if (blocked_) {
          // Batched walk over the atom's whole slot run: s values stride 4
          // through the env-matrix rows, output rows stride M through the
          // G / dG matrices — one SIMD dispatch per (atom, type) block.
          table.eval_with_deriv_blocked_batch(env_.rmat_at(base), 4,
                                              static_cast<std::size_t>(cnt), g.row(r0),
                                              dg.row(r0), m, streaming);
        } else {
          for (int k = 0; k < cnt; ++k) {
            const double s = env_.rmat_at(base + static_cast<std::size_t>(k))[0];
            const std::size_t row = r0 + static_cast<std::size_t>(k);
            table.eval_with_deriv(s, g.row(row), dg.row(row));
          }
        }
      }
      rows_tabulated += rows;
      embedding_bytes_ += (g.size() + dg.size()) * sizeof(double);
      CostRegistry::instance().add(
          "compressed.tabulation",
          {static_cast<double>(rows) * 14.0 * static_cast<double>(m),
           static_cast<double>(rows) * 6.0 * static_cast<double>(m) * sizeof(double),
           2.0 * static_cast<double>(rows) * static_cast<double>(m) * sizeof(double)});
    }
  }
  {
    static obs::Counter& rows_metric =
        obs::MetricsRegistry::instance().counter("compressed.rows_tabulated");
    rows_metric.inc(rows_tabulated);
  }

  // ---- Per-atom descriptor + fit + backward (same dataflow as baseline) --
  md::ForceResult out;
  {
    ScopedTimer t("compressed.descriptor_fit", "kernel");
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(a_mat_.data(), 0, 4 * m * sizeof(double));
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t krows = static_cast<std::size_t>(rows_of(i, ty));
        if (krows == 0) continue;
        nn::gemm_tn_acc(env_.rmat_at(env_.block_begin(i, ty)),
                        g_by_type_[static_cast<std::size_t>(ty)].row(row_of(ty, i)),
                        a_mat_.data(), 4, krows, m);
      }
      for (double& v : a_mat_) v *= scale;

      atom_energy_[i] = core::descriptor_fit_atom(model.fitting(atoms.type[i]), a_mat_.data(),
                                                  m, m_sub, scale, scratch_, g_a_.data());
      out.energy += atom_energy_[i];

      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const std::size_t krows = static_cast<std::size_t>(rows_of(i, ty));
        if (krows == 0) continue;
        const std::size_t base = env_.block_begin(i, ty);
        const std::size_t r0 = row_of(ty, i);
        // g_rmat_block (rows x 4) = G_block * g_a^T
        nn::gemm_nt(g_by_type_[static_cast<std::size_t>(ty)].row(r0), g_a_.data(),
                    g_rmat_.data() + base * 4, krows, m, 4);
        // dE/dG_block = R~_block * g_a, then dE/ds = <dE/dG, dG/ds> per row.
        nn::gemm(env_.rmat_at(base), g_a_.data(), g_g_.data(), krows, 4, m);
        for (std::size_t k = 0; k < krows; ++k) {
          const double* gg = g_g_.data() + k * m;
          const double* dg = dg_by_type_[static_cast<std::size_t>(ty)].row(r0 + k);
          double acc = 0.0;
#pragma omp simd reduction(+ : acc)
          for (std::size_t b = 0; b < m; ++b) acc += gg[b] * dg[b];
          g_rmat_[(base + k) * 4] += acc;
        }
      }
    }
  }

  {
    ScopedTimer t("compressed.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat_.data(), box, atoms, periodic, atoms.force, out.virial,
                      prod_ws_);
  }
  return out;
}

}  // namespace dp::tab
