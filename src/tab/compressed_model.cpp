#include "tab/compressed_model.hpp"

#include <cstring>

#include "common/cost.hpp"
#include "common/timer.hpp"
#include "dp/descriptor.hpp"
#include "dp/prod_force.hpp"
#include "nn/gemm.hpp"
#include "nn/tensor.hpp"
#include "obs/metrics.hpp"

namespace dp::tab {

using core::AtomKernelScratch;
using core::EnvMat;
using core::ModelConfig;

CompressedDP::CompressedDP(const TabulatedDP& tabulated, bool use_blocked_layout,
                           core::EnvMatKernel env_kernel)
    : tab_(tabulated), blocked_(use_blocked_layout), env_kernel_(env_kernel) {}

md::ForceResult CompressedDP::compute(const md::Box& box, md::Atoms& atoms,
                                      const md::NeighborList& nlist, bool periodic) {
  ScopedTimer timer("compressed.compute", "kernel");
  const core::DPModel& model = tab_.model();
  const ModelConfig& cfg = model.config();
  {
    ScopedTimer t("compressed.env_mat", "kernel");
    build_env_mat(cfg, box, atoms, nlist, env_, env_kernel_, periodic);
  }
  const std::size_t n = env_.n_atoms;
  const std::size_t m = cfg.m();
  const std::size_t m_sub = cfg.axis_neuron;
  const int nm = cfg.nm();
  const double scale = 1.0 / static_cast<double>(nm);

  // ---- Tabulated embedding: G and dG/ds materialized over every slot
  // (padding included — no redundancy removal yet at this step) ------------
  std::vector<nn::Matrix> g_by_type(static_cast<std::size_t>(cfg.ntypes));
  std::vector<nn::Matrix> dg_by_type(static_cast<std::size_t>(cfg.ntypes));
  embedding_bytes_ = 0;
  std::size_t rows_tabulated = 0;
  {
    ScopedTimer t("compressed.tabulation", "kernel");
    for (int ty = 0; ty < cfg.ntypes; ++ty) {
      const TabulatedEmbedding& table = tab_.table(ty);
      const int sel_t = cfg.sel[static_cast<std::size_t>(ty)];
      const int off = cfg.type_offset(ty);
      const std::size_t rows = n * static_cast<std::size_t>(sel_t);
      nn::Matrix& g = g_by_type[static_cast<std::size_t>(ty)];
      nn::Matrix& dg = dg_by_type[static_cast<std::size_t>(ty)];
      g.resize(rows, m);
      dg.resize(rows, m);
      for (std::size_t i = 0; i < n; ++i)
        for (int k = 0; k < sel_t; ++k) {
          const double s = env_.rmat_row(i, off + k)[0];
          const std::size_t row = i * static_cast<std::size_t>(sel_t) + static_cast<std::size_t>(k);
          if (blocked_)
            table.eval_with_deriv_blocked(s, g.row(row), dg.row(row));
          else
            table.eval_with_deriv(s, g.row(row), dg.row(row));
        }
      rows_tabulated += rows;
      embedding_bytes_ += (g.size() + dg.size()) * sizeof(double);
      CostRegistry::instance().add(
          "compressed.tabulation",
          {static_cast<double>(rows) * 14.0 * static_cast<double>(m),
           static_cast<double>(rows) * 6.0 * static_cast<double>(m) * sizeof(double),
           2.0 * static_cast<double>(rows) * static_cast<double>(m) * sizeof(double)});
    }
  }
  {
    static obs::Counter& rows_metric =
        obs::MetricsRegistry::instance().counter("compressed.rows_tabulated");
    rows_metric.inc(rows_tabulated);
  }

  // ---- Per-atom descriptor + fit + backward (same dataflow as baseline) --
  atom_energy_.assign(n, 0.0);
  AlignedVector<double> g_rmat(n * static_cast<std::size_t>(nm) * 4, 0.0);
  md::ForceResult out;
  {
    ScopedTimer t("compressed.descriptor_fit", "kernel");
    AlignedVector<double> a_mat(4 * m), g_a(4 * m);
    AlignedVector<double> g_g;  // dE/dG rows of one atom's block
    AtomKernelScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
      std::memset(a_mat.data(), 0, 4 * m * sizeof(double));
      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(ty)];
        const int off = cfg.type_offset(ty);
        nn::gemm_tn_acc(env_.rmat_row(i, off),
                        g_by_type[static_cast<std::size_t>(ty)].row(
                            i * static_cast<std::size_t>(sel_t)),
                        a_mat.data(), 4, static_cast<std::size_t>(sel_t), m);
      }
      for (double& v : a_mat) v *= scale;

      atom_energy_[i] = core::descriptor_fit_atom(model.fitting(atoms.type[i]), a_mat.data(),
                                                  m, m_sub, scale, scratch, g_a.data());
      out.energy += atom_energy_[i];

      for (int ty = 0; ty < cfg.ntypes; ++ty) {
        const int sel_t = cfg.sel[static_cast<std::size_t>(ty)];
        const int off = cfg.type_offset(ty);
        const std::size_t row0 = i * static_cast<std::size_t>(sel_t);
        // g_rmat_block (sel x 4) = G_block * g_a^T
        nn::gemm_nt(g_by_type[static_cast<std::size_t>(ty)].row(row0), g_a.data(),
                    g_rmat.data() +
                        (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off)) * 4,
                    static_cast<std::size_t>(sel_t), m, 4);
        // dE/dG_block = R~_block * g_a, then dE/ds = <dE/dG, dG/ds> per row.
        g_g.resize(static_cast<std::size_t>(sel_t) * m);
        nn::gemm(env_.rmat_row(i, off), g_a.data(), g_g.data(),
                 static_cast<std::size_t>(sel_t), 4, m);
        for (int k = 0; k < sel_t; ++k) {
          const double* gg = g_g.data() + static_cast<std::size_t>(k) * m;
          const double* dg = dg_by_type[static_cast<std::size_t>(ty)].row(
              row0 + static_cast<std::size_t>(k));
          double acc = 0.0;
#pragma omp simd reduction(+ : acc)
          for (std::size_t b = 0; b < m; ++b) acc += gg[b] * dg[b];
          g_rmat[(i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(off + k)) * 4] +=
              acc;
        }
      }
    }
  }

  {
    ScopedTimer t("compressed.prod_force", "kernel");
    atoms.zero_forces();
    prod_force_virial(env_, g_rmat.data(), box, atoms, periodic, atoms.force, out.virial);
  }
  return out;
}

}  // namespace dp::tab
