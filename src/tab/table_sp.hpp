// Single-precision coefficient table — the storage half of the paper's
// mixed-precision variants (Table 1 lists mixed-single / mixed-half rows for
// the baseline; making the *optimized* code mixed-precision is the paper's
// stated future work, explored here).
//
// Coefficients are truncated to float; evaluation runs in float and is
// reduced in double by the callers. Table memory halves.
#pragma once

#include "common/aligned.hpp"
#include "tab/table.hpp"

namespace dp::tab {

class TabulatedEmbeddingSP {
 public:
  TabulatedEmbeddingSP() = default;
  explicit TabulatedEmbeddingSP(const TabulatedEmbedding& ref);

  std::size_t output_dim() const { return m_; }
  std::size_t bytes() const { return coef_.size() * sizeof(float); }
  float interval() const { return h_; }

  /// g[0..M) in float.
  void eval(float s, float* g) const;
  void eval_with_deriv(float s, float* g, float* dg) const;

  /// Out-of-range evaluations, mirroring TabulatedEmbedding::extrapolations()
  /// so the --health extrapolation-rate watchdog sees the mixed path too.
  std::size_t extrapolations() const { return extrapolations_.value(); }

 private:
  std::size_t locate(float s, float& t) const {
    float u = (s - lo_) * inv_h_;
    std::size_t i;
    if (u < 0.0f) {
      i = 0;
      extrapolations_.bump();
    } else if (u >= static_cast<float>(n_)) {
      i = n_ - 1;
      if (s > hi_) extrapolations_.bump();
    } else {
      i = static_cast<std::size_t>(u);
    }
    t = s - (lo_ + h_ * static_cast<float>(i));
    return i;
  }

  std::size_t m_ = 0, n_ = 0;
  float lo_ = 0, hi_ = 1, h_ = 1, inv_h_ = 1;
  AlignedVector<float> coef_;  // [(i * m + ch) * 6 + k]
  mutable RelaxedCounter extrapolations_;  // relaxed; see table.hpp
};

/// Half-precision (IEEE fp16) coefficient storage — the analog of the
/// paper's mixed-half arithmetic (Table 1). Coefficients are stored as
/// _Float16 and widened to float for evaluation: another 2x memory saving
/// over the single-precision table, at a visible accuracy cost (the paper:
/// "the mixed-precision versions of code still has accuracy problems").
class TabulatedEmbeddingHP {
 public:
  using half_t = _Float16;

  TabulatedEmbeddingHP() = default;
  explicit TabulatedEmbeddingHP(const TabulatedEmbedding& ref);

  std::size_t output_dim() const { return m_; }
  std::size_t bytes() const { return coef_.size() * sizeof(half_t); }

  void eval(float s, float* g) const;
  void eval_with_deriv(float s, float* g, float* dg) const;

  /// Mirrors TabulatedEmbedding::extrapolations() for the --health watchdog.
  std::size_t extrapolations() const { return extrapolations_.value(); }

 private:
  std::size_t locate(float s, float& t) const {
    float u = (s - lo_) * inv_h_;
    std::size_t i;
    if (u < 0.0f) {
      i = 0;
      extrapolations_.bump();
    } else if (u >= static_cast<float>(n_)) {
      i = n_ - 1;
      if (s > hi_) extrapolations_.bump();
    } else {
      i = static_cast<std::size_t>(u);
    }
    t = s - (lo_ + h_ * static_cast<float>(i));
    return i;
  }

  std::size_t m_ = 0, n_ = 0;
  float lo_ = 0, hi_ = 1, h_ = 1, inv_h_ = 1;
  AlignedVector<half_t> coef_;
  mutable RelaxedCounter extrapolations_;  // relaxed; see table.hpp
};

}  // namespace dp::tab
