// Single-precision coefficient table — the storage half of the paper's
// mixed-precision variants (Table 1 lists mixed-single / mixed-half rows for
// the baseline; making the *optimized* code mixed-precision is the paper's
// stated future work, explored here).
//
// Coefficients are truncated to float; evaluation runs in float and is
// reduced in double by the callers. Table memory halves.
#pragma once

#include "common/aligned.hpp"
#include "tab/table.hpp"

namespace dp::tab {

class TabulatedEmbeddingSP {
 public:
  TabulatedEmbeddingSP() = default;
  explicit TabulatedEmbeddingSP(const TabulatedEmbedding& ref);

  std::size_t output_dim() const { return m_; }
  std::size_t bytes() const { return coef_.size() * sizeof(float); }
  float interval() const { return h_; }

  /// g[0..M) in float.
  void eval(float s, float* g) const;
  void eval_with_deriv(float s, float* g, float* dg) const;

  /// Batched blocked walk over `count` float inputs at s[k * s_stride];
  /// g/dg rows at g + k * out_stride. The float analog of
  /// TabulatedEmbedding::eval_with_deriv_blocked_batch: one SIMD dispatch
  /// for the run, 16-float vectors at AVX-512 (a whole kLane block per
  /// instruction), identical results to `count` eval_with_deriv calls at
  /// Level::Scalar and within the per-level ulp contract otherwise.
  /// `streaming` as in the double table (non-temporal stores, same bits,
  /// honored only when every output row is 64-byte aligned).
  void eval_with_deriv_blocked_batch(const float* s, std::size_t s_stride,
                                     std::size_t count, float* g, float* dg,
                                     std::size_t out_stride, bool streaming = false) const;

  /// Out-of-range evaluations, mirroring TabulatedEmbedding::extrapolations()
  /// so the --health extrapolation-rate watchdog sees the mixed path too.
  std::size_t extrapolations() const { return extrapolations_.value(); }

 private:
  /// Rebuilds the blocked (SVE-style) float layout from the AoS copy.
  void rebuild_blocked();
  std::size_t locate(float s, float& t) const {
    float u = (s - lo_) * inv_h_;
    std::size_t i;
    if (u < 0.0f) {
      i = 0;
      extrapolations_.bump();
    } else if (u >= static_cast<float>(n_)) {
      i = n_ - 1;
      if (s > hi_) extrapolations_.bump();
    } else {
      i = static_cast<std::size_t>(u);
    }
    t = s - (lo_ + h_ * static_cast<float>(i));
    return i;
  }

  std::size_t m_ = 0, m_pad_ = 0, n_ = 0;
  float lo_ = 0, hi_ = 1, h_ = 1, inv_h_ = 1;
  AlignedVector<float> coef_;          // AoS: [(i * m + ch) * 6 + k]
  AlignedVector<float> coef_blocked_;  // [(i * nblk + b) * 6 + k][lane]
  mutable RelaxedCounter extrapolations_;  // relaxed; see table.hpp
};

/// Half-precision (IEEE fp16) coefficient storage — the analog of the
/// paper's mixed-half arithmetic (Table 1). Coefficients are stored as
/// _Float16 and widened to float for evaluation: another 2x memory saving
/// over the single-precision table, at a visible accuracy cost (the paper:
/// "the mixed-precision versions of code still has accuracy problems").
class TabulatedEmbeddingHP {
 public:
  using half_t = _Float16;

  TabulatedEmbeddingHP() = default;
  explicit TabulatedEmbeddingHP(const TabulatedEmbedding& ref);

  std::size_t output_dim() const { return m_; }
  std::size_t bytes() const { return coef_.size() * sizeof(half_t); }

  void eval(float s, float* g) const;
  void eval_with_deriv(float s, float* g, float* dg) const;

  /// Batched blocked walk (see TabulatedEmbeddingSP): coefficients are
  /// widened half -> float in registers (vcvtph2ps at the vector levels,
  /// exact either way), so the AVX2 variant additionally needs F16C — when
  /// the CPU lacks it the half table dispatches scalar at AVX2.
  void eval_with_deriv_blocked_batch(const float* s, std::size_t s_stride,
                                     std::size_t count, float* g, float* dg,
                                     std::size_t out_stride, bool streaming = false) const;

  /// Mirrors TabulatedEmbedding::extrapolations() for the --health watchdog.
  std::size_t extrapolations() const { return extrapolations_.value(); }

 private:
  /// Rebuilds the blocked (SVE-style) half layout from the AoS copy.
  void rebuild_blocked();
  std::size_t locate(float s, float& t) const {
    float u = (s - lo_) * inv_h_;
    std::size_t i;
    if (u < 0.0f) {
      i = 0;
      extrapolations_.bump();
    } else if (u >= static_cast<float>(n_)) {
      i = n_ - 1;
      if (s > hi_) extrapolations_.bump();
    } else {
      i = static_cast<std::size_t>(u);
    }
    t = s - (lo_ + h_ * static_cast<float>(i));
    return i;
  }

  std::size_t m_ = 0, m_pad_ = 0, n_ = 0;
  float lo_ = 0, hi_ = 1, h_ = 1, inv_h_ = 1;
  AlignedVector<half_t> coef_;          // AoS: [(i * m + ch) * 6 + k]
  AlignedVector<half_t> coef_blocked_;  // [(i * nblk + b) * 6 + k][lane]
  mutable RelaxedCounter extrapolations_;  // relaxed; see table.hpp
};

}  // namespace dp::tab
