// The smooth radial gate of the DP descriptor (paper Eq. 1):
//   s(r) = w(r) / r, with w decaying C2-smoothly from 1 to 0 on
//   [rcut_smth, rcut]:
//     w(r) = 1                          r <  rcut_smth
//     w(r) = 1 - 10 x^3 + 15 x^4 - 6 x^5,  x = (r - rs)/(rc - rs)
//     w(r) = 0                          r >= rcut
#pragma once

namespace dp::core {

struct SwitchValue {
  double s = 0.0;       ///< s(r)
  double ds_dr = 0.0;   ///< ds/dr
};

inline SwitchValue switch_fn(double r, double rcut_smth, double rcut) {
  SwitchValue out;
  if (r >= rcut || r <= 0.0) return out;
  const double inv_r = 1.0 / r;
  if (r < rcut_smth) {
    out.s = inv_r;
    out.ds_dr = -inv_r * inv_r;
    return out;
  }
  const double span = rcut - rcut_smth;
  const double x = (r - rcut_smth) / span;
  const double x2 = x * x;
  const double w = 1.0 + x2 * x * (-10.0 + x * (15.0 - 6.0 * x));
  const double dw_dx = x2 * (-30.0 + x * (60.0 - 30.0 * x));
  out.s = w * inv_r;
  out.ds_dr = dw_dx / span * inv_r - w * inv_r * inv_r;
  return out;
}

}  // namespace dp::core
