#include "dp/descriptor.hpp"

#include <cmath>
#include <cstring>

#include "common/simd.hpp"

namespace dp::core {

namespace {

// ---------------------------------------------------------------------------
// Per-level kernels for the D = A<^T A contraction and its adjoint — the
// last descriptor loops that leaned on `#pragma omp simd` (ROADMAP item 1
// remainder). Level::Scalar keeps the exact seed bodies (pragma included);
// the vector kernels use wrapper FMAs with std::fma tails. The term-2 dot
// product reassociates (vector partials + tail), covered by the reduction
// clause of the numerical contract.
// ---------------------------------------------------------------------------

void descriptor_forward_scalar(const double* a_mat, std::size_t m, std::size_t m_sub,
                               double* d_flat) {
  for (std::size_t a = 0; a < m_sub; ++a) {
    double* drow = d_flat + a * m;
    std::memset(drow, 0, m * sizeof(double));
    for (std::size_t c = 0; c < 4; ++c) {
      const double av = a_mat[c * m + a];
      const double* arow = a_mat + c * m;
#pragma omp simd
      for (std::size_t b = 0; b < m; ++b) drow[b] += av * arow[b];
    }
  }
}

void descriptor_backward_scalar(const double* a_mat, const double* g_d, std::size_t m,
                                std::size_t m_sub, double* g_a) {
  std::memset(g_a, 0, 4 * m * sizeof(double));
  for (std::size_t c = 0; c < 4; ++c) {
    const double* arow = a_mat + c * m;
    double* grow = g_a + c * m;
    for (std::size_t a = 0; a < m_sub; ++a) {
      const double av = arow[a];
      const double* gd_row = g_d + a * m;
      // term 1: g_A[c][q] += g_d[a][q] * A[c][a] for all q
#pragma omp simd
      for (std::size_t q = 0; q < m; ++q) grow[q] += gd_row[q] * av;
      // term 2: g_A[c][a] += sum_b g_d[a][b] * A[c][b]
      double acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (std::size_t b = 0; b < m; ++b) acc += gd_row[b] * arow[b];
      grow[a] += acc;
    }
  }
}

#if DP_SIMD_X86

// Forward: the four broadcast-times-row updates are fused into one sweep per
// output row (no memset, no read-modify-write round trips through d_flat).
DP_TARGET_AVX2 void descriptor_forward_avx2(const double* a_mat, std::size_t m,
                                            std::size_t m_sub, double* d_flat) {
  using namespace simd;
  const double* a0 = a_mat;
  const double* a1 = a_mat + m;
  const double* a2 = a_mat + 2 * m;
  const double* a3 = a_mat + 3 * m;
  for (std::size_t a = 0; a < m_sub; ++a) {
    double* drow = d_flat + a * m;
    const double av0 = a0[a], av1 = a1[a], av2 = a2[a], av3 = a3[a];
    const v4d v0 = v4_set1(av0), v1 = v4_set1(av1), v2 = v4_set1(av2), v3 = v4_set1(av3);
    std::size_t b = 0;
    for (; b + 4 <= m; b += 4) {
      v4d y = v4_mul(v0, v4_loadu(a0 + b));
      y = v4_fmadd(v1, v4_loadu(a1 + b), y);
      y = v4_fmadd(v2, v4_loadu(a2 + b), y);
      y = v4_fmadd(v3, v4_loadu(a3 + b), y);
      v4_storeu(drow + b, y);
    }
    for (; b < m; ++b) {
      double y = av0 * a0[b];
      y = std::fma(av1, a1[b], y);
      y = std::fma(av2, a2[b], y);
      y = std::fma(av3, a3[b], y);
      drow[b] = y;
    }
  }
}

DP_TARGET_AVX512 void descriptor_forward_avx512(const double* a_mat, std::size_t m,
                                                std::size_t m_sub, double* d_flat) {
  using namespace simd;
  const double* a0 = a_mat;
  const double* a1 = a_mat + m;
  const double* a2 = a_mat + 2 * m;
  const double* a3 = a_mat + 3 * m;
  for (std::size_t a = 0; a < m_sub; ++a) {
    double* drow = d_flat + a * m;
    const double av0 = a0[a], av1 = a1[a], av2 = a2[a], av3 = a3[a];
    const v8d v0 = v8_set1(av0), v1 = v8_set1(av1), v2 = v8_set1(av2), v3 = v8_set1(av3);
    std::size_t b = 0;
    for (; b + 8 <= m; b += 8) {
      v8d y = v8_mul(v0, v8_loadu(a0 + b));
      y = v8_fmadd(v1, v8_loadu(a1 + b), y);
      y = v8_fmadd(v2, v8_loadu(a2 + b), y);
      y = v8_fmadd(v3, v8_loadu(a3 + b), y);
      v8_storeu(drow + b, y);
    }
    for (; b < m; ++b) {
      double y = av0 * a0[b];
      y = std::fma(av1, a1[b], y);
      y = std::fma(av2, a2[b], y);
      y = std::fma(av3, a3[b], y);
      drow[b] = y;
    }
  }
}

// Backward: term 1 (axpy into grow) and term 2 (dot of the same streams)
// share one fused sweep per (c, a), so gd_row and arow are read once.
DP_TARGET_AVX2 void descriptor_backward_avx2(const double* a_mat, const double* g_d,
                                             std::size_t m, std::size_t m_sub, double* g_a) {
  using namespace simd;
  std::memset(g_a, 0, 4 * m * sizeof(double));
  for (std::size_t c = 0; c < 4; ++c) {
    const double* arow = a_mat + c * m;
    double* grow = g_a + c * m;
    for (std::size_t a = 0; a < m_sub; ++a) {
      const double av = arow[a];
      const double* gd_row = g_d + a * m;
      const v4d vav = v4_set1(av);
      v4d vacc = v4_zero();
      std::size_t b = 0;
      for (; b + 4 <= m; b += 4) {
        const v4d gd = v4_loadu(gd_row + b);
        v4_storeu(grow + b, v4_fmadd(gd, vav, v4_loadu(grow + b)));
        vacc = v4_fmadd(gd, v4_loadu(arow + b), vacc);
      }
      double acc = v4_reduce_add(vacc);
      for (; b < m; ++b) {
        grow[b] = std::fma(gd_row[b], av, grow[b]);
        acc = std::fma(gd_row[b], arow[b], acc);
      }
      grow[a] += acc;
    }
  }
}

DP_TARGET_AVX512 void descriptor_backward_avx512(const double* a_mat, const double* g_d,
                                                 std::size_t m, std::size_t m_sub,
                                                 double* g_a) {
  using namespace simd;
  std::memset(g_a, 0, 4 * m * sizeof(double));
  for (std::size_t c = 0; c < 4; ++c) {
    const double* arow = a_mat + c * m;
    double* grow = g_a + c * m;
    for (std::size_t a = 0; a < m_sub; ++a) {
      const double av = arow[a];
      const double* gd_row = g_d + a * m;
      const v8d vav = v8_set1(av);
      v8d vacc = v8_zero();
      std::size_t b = 0;
      for (; b + 8 <= m; b += 8) {
        const v8d gd = v8_loadu(gd_row + b);
        v8_storeu(grow + b, v8_fmadd(gd, vav, v8_loadu(grow + b)));
        vacc = v8_fmadd(gd, v8_loadu(arow + b), vacc);
      }
      double acc = v8_reduce_add(vacc);
      for (; b < m; ++b) {
        grow[b] = std::fma(gd_row[b], av, grow[b]);
        acc = std::fma(gd_row[b], arow[b], acc);
      }
      grow[a] += acc;
    }
  }
}

#endif  // DP_SIMD_X86

}  // namespace

void descriptor_forward(const double* a_mat, std::size_t m, std::size_t m_sub,
                        double* d_flat) {
  // D = A<^T A, contraction over the 4 rows.
#if DP_SIMD_X86
  const simd::Level lvl = simd::active();
  if (lvl == simd::Level::AVX512) return descriptor_forward_avx512(a_mat, m, m_sub, d_flat);
  if (lvl == simd::Level::AVX2) return descriptor_forward_avx2(a_mat, m, m_sub, d_flat);
#endif
  descriptor_forward_scalar(a_mat, m, m_sub, d_flat);
}

void descriptor_backward(const double* a_mat, const double* g_d, std::size_t m,
                         std::size_t m_sub, double* g_a) {
#if DP_SIMD_X86
  const simd::Level lvl = simd::active();
  if (lvl == simd::Level::AVX512)
    return descriptor_backward_avx512(a_mat, g_d, m, m_sub, g_a);
  if (lvl == simd::Level::AVX2) return descriptor_backward_avx2(a_mat, g_d, m, m_sub, g_a);
#endif
  descriptor_backward_scalar(a_mat, g_d, m, m_sub, g_a);
}

double descriptor_fit_atom(const nn::FittingNet& fit, const double* a_mat, std::size_t m,
                           std::size_t m_sub, double scale, AtomKernelScratch& scratch,
                           double* g_a) {
  scratch.d_flat.resize(m_sub * m);
  scratch.g_d.resize(m_sub * m);
  descriptor_forward(a_mat, m, m_sub, scratch.d_flat.data());
  const double energy = fit.forward(scratch.d_flat.data(), scratch.fit_ws);
  fit.backward(scratch.fit_ws, scratch.g_d.data());
  descriptor_backward(a_mat, scratch.g_d.data(), m, m_sub, g_a);
  for (std::size_t k = 0; k < 4 * m; ++k) g_a[k] *= scale;
  return energy;
}

}  // namespace dp::core
