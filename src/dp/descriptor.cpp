#include "dp/descriptor.hpp"

#include <cstring>

namespace dp::core {

void descriptor_forward(const double* a_mat, std::size_t m, std::size_t m_sub,
                        double* d_flat) {
  // D = A<^T A, contraction over the 4 rows.
  for (std::size_t a = 0; a < m_sub; ++a) {
    double* drow = d_flat + a * m;
    std::memset(drow, 0, m * sizeof(double));
    for (std::size_t c = 0; c < 4; ++c) {
      const double av = a_mat[c * m + a];
      const double* arow = a_mat + c * m;
#pragma omp simd
      for (std::size_t b = 0; b < m; ++b) drow[b] += av * arow[b];
    }
  }
}

void descriptor_backward(const double* a_mat, const double* g_d, std::size_t m,
                         std::size_t m_sub, double* g_a) {
  std::memset(g_a, 0, 4 * m * sizeof(double));
  for (std::size_t c = 0; c < 4; ++c) {
    const double* arow = a_mat + c * m;
    double* grow = g_a + c * m;
    for (std::size_t a = 0; a < m_sub; ++a) {
      const double av = arow[a];
      const double* gd_row = g_d + a * m;
      // term 1: g_A[c][q] += g_d[a][q] * A[c][a] for all q
#pragma omp simd
      for (std::size_t q = 0; q < m; ++q) grow[q] += gd_row[q] * av;
      // term 2: g_A[c][a] += sum_b g_d[a][b] * A[c][b]
      double acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (std::size_t b = 0; b < m; ++b) acc += gd_row[b] * arow[b];
      grow[a] += acc;
    }
  }
}

double descriptor_fit_atom(const nn::FittingNet& fit, const double* a_mat, std::size_t m,
                           std::size_t m_sub, double scale, AtomKernelScratch& scratch,
                           double* g_a) {
  scratch.d_flat.resize(m_sub * m);
  scratch.g_d.resize(m_sub * m);
  descriptor_forward(a_mat, m, m_sub, scratch.d_flat.data());
  const double energy = fit.forward(scratch.d_flat.data(), scratch.fit_ws);
  fit.backward(scratch.fit_ws, scratch.g_d.data());
  descriptor_backward(a_mat, scratch.g_d.data(), m, m_sub, g_a);
  for (std::size_t k = 0; k < 4 * m; ++k) g_a[k] *= scale;
  return energy;
}

}  // namespace dp::core
