// Environment-matrix construction — the ProdEnvMatA customized operator
// (paper Sec 3.4.2 / 3.4.3 / 3.5.3).
//
// For every local atom i the operator emits:
//   * rmat  (4 doubles per slot):  rows  s(r) * (1, x/r, y/r, z/r)  (paper
//     Eq. 1), grouped by neighbor type and distance-sorted inside each block;
//   * deriv (12 doubles per slot):  d(rmat row)/d(r_j - r_i)  —
//     `descrpt_a_deriv`, the AoS the SVE conversion kernels operate on;
//   * slot_atom: which atom occupies each slot.
//
// Two kernels, two layouts:
//   * `Baseline` materializes the paper's original DENSE layout — every atom
//     reserves N_m = sum(sel[t]) slots, real neighbors fill a prefix of each
//     type block and the rest is zero padding (the "redundant zeros" of
//     Sec 3.4.2, ~60-80% of the array for copper's sel = 500).
//   * `Optimized` materializes the COMPACT CSR layout: a prefix sum over the
//     real per-(atom, type) neighbor counts assigns each block a contiguous
//     slot range, so rmat/deriv/slot_atom store only filled slots and no
//     zeroing traffic is ever issued. It also carries the minimum-image
//     displacement per slot (`diff`), so the force/virial scatter never
//     recomputes it. The build is thread-parallel and byte-identical at any
//     thread count (count -> scan -> disjoint slab copies, the same
//     discipline as the neighbor-list CSR build).
//
// Both layouts are walked through the same accessors: global slot indices
// from `block_begin(i, t)`, payload via `rmat_at` / `deriv_at` / `atom_of`.
// For a dense matrix `block_begin` degenerates to i * nm + type_off[t], so
// layout-aware consumers need no branches in their inner loops.
#pragma once

#include <cstddef>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "dp/model_config.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"
#include "md/neighbor.hpp"

namespace dp::core {

enum class EnvMatLayout { Dense, Compact };

struct EnvMat {
  EnvMatLayout layout = EnvMatLayout::Dense;
  std::size_t n_atoms = 0;
  int nm = 0;
  int ntypes = 1;
  AlignedVector<double> rmat;   ///< 4 per stored slot (dense: n * nm slots)
  AlignedVector<double> deriv;  ///< 12 per stored slot
  AlignedVector<double> diff;   ///< compact only: 3 per slot, d = r_j - r_i
  std::vector<int> slot_atom;   ///< per stored slot; -1 = padding (dense only)
  std::vector<int> count_by_type;        ///< n * ntypes: filled slots per block
  std::vector<std::size_t> block_start;  ///< compact: n * ntypes + 1 slot prefix
  std::vector<int> type_off;  ///< ntypes + 1: dense slot offset of each block
  std::size_t overflow = 0;   ///< neighbors dropped because a block was full

  bool compact() const { return layout == EnvMatLayout::Compact; }

  /// Global index of the first slot of atom i's type-t block. Valid in both
  /// layouts; slots of the block are contiguous from here (`count(i, t)` of
  /// them are real; dense blocks continue with padding up to sel[t]).
  std::size_t block_begin(std::size_t i, int t) const {
    return compact() ? block_start[i * static_cast<std::size_t>(ntypes) +
                                   static_cast<std::size_t>(t)]
                     : i * static_cast<std::size_t>(nm) +
                           static_cast<std::size_t>(type_off[static_cast<std::size_t>(t)]);
  }
  const double* rmat_at(std::size_t slot) const { return rmat.data() + slot * 4; }
  const double* deriv_at(std::size_t slot) const { return deriv.data() + slot * 12; }
  /// Minimum-image displacement r_j - r_i carried through the build.
  /// Compact layout only.
  const double* diff_at(std::size_t slot) const { return diff.data() + slot * 3; }
  int atom_of(std::size_t slot) const { return slot_atom[slot]; }
  /// Number of stored slots == rows of the matching g_rmat gradient buffer.
  std::size_t stored_slots() const {
    return compact() ? block_start.back() : n_atoms * static_cast<std::size_t>(nm);
  }

  // Legacy dense-layout accessors (slot is an offset within atom i's nm
  // reserved slots). Only meaningful when !compact().
  const double* rmat_row(std::size_t i, int slot) const {
    return rmat.data() + (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)) * 4;
  }
  const double* deriv_row(std::size_t i, int slot) const {
    return deriv.data() +
           (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)) * 12;
  }
  int atom_at(std::size_t i, int slot) const {
    return slot_atom[i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)];
  }

  int count(std::size_t i, int t) const {
    return count_by_type[i * static_cast<std::size_t>(ntypes) + static_cast<std::size_t>(t)];
  }
  /// Slot offset of type t's block within an atom's nm reserved slots
  /// (mirrors ModelConfig::type_offset so consumers of a built EnvMat need
  /// no config handle to walk the type blocks). Dense addressing only.
  int type_offset(int t) const { return type_off[static_cast<std::size_t>(t)]; }
  /// Real (non-padding) slots across all atoms, valid in both layouts.
  std::size_t filled_slots() const;
  /// Fraction of reserved slots that are padding — the paper's "redundant
  /// zeros". Relative to the dense reservation in both layouts.
  double padding_fraction() const;

  /// Footprint the DENSE layout occupies (or would occupy) for this system:
  /// slot payload plus per-block counts. Published as `env_mat.dense_bytes`.
  std::size_t dense_bytes() const;
  /// Footprint of the COMPACT layout for this system: filled-slot payload
  /// (incl. diff) plus counts and the block prefix. `env_mat.compact_bytes`.
  std::size_t compact_bytes() const;
  /// Capacity-based bytes actually held by this object (grow-only buffers).
  std::size_t storage_bytes() const;

  // Sizing helpers, out of line so build_env_mat's body issues no direct
  // assign/resize (tools/dplint `env-hot-alloc` keeps it that way). All are
  // grow-only in steady state: resize never shrinks capacity, and only
  // reset_dense pays zero-fill traffic (deliberately — that IS the dense
  // baseline being measured).
  void reset_dense(std::size_t n, const ModelConfig& cfg);
  void reset_compact_header(std::size_t n, const ModelConfig& cfg);
  void grow_compact_slots(std::size_t total);
};

/// One neighbor candidate of the compact build: squared distance, index and
/// minimum-image displacement, ordered the way slots are (distance, then
/// index, inside each type block).
struct EnvCandidate {
  double r2;
  int atom;
  Vec3 d;
  bool operator<(const EnvCandidate& o) const {
    return r2 != o.r2 ? r2 < o.r2 : atom < o.atom;
  }
};

/// Persistent scratch of the compact parallel build: per-thread slabs stage
/// each thread's contiguous atom chunk before one memcpy into the global
/// arrays. Grow-only, so steady-state builds allocate nothing (the same
/// discipline as md::NeighborWorkspace).
struct EnvMatWorkspace {
  struct Slab {
    std::vector<EnvCandidate> cand;    ///< per-atom candidate gather
    AlignedVector<double> rmat;        ///< staged slots: 4 per slot
    AlignedVector<double> deriv;       ///< 12 per slot
    AlignedVector<double> diff;        ///< 3 per slot
    std::vector<int> atom;             ///< 1 per slot
    std::vector<int> counts;           ///< ntypes: per-type quota scratch
    std::vector<int> cursor;           ///< ntypes: per-type write cursor
    std::size_t n_slots = 0;           ///< slots staged by the current build
    std::size_t overflow = 0;          ///< drops counted by the current build
    void ensure(std::size_t slot_cap, int ntypes);
    std::size_t bytes() const;
  };
  std::vector<Slab> tl;
  void ensure_threads(int team_size);
  std::size_t bytes() const;
};

enum class EnvMatKernel { Baseline, Optimized };

/// Footprint of the most recent build on the CALLING thread. The registry
/// gauges (`env_mat.dense_bytes` / `env_mat.compact_bytes`) are global
/// last-writer-wins; distributed rank threads read these instead, so each
/// rank aggregates its OWN env footprint into the allreduce.
struct EnvMatThreadStats {
  std::size_t dense_bytes = 0;
  std::size_t compact_bytes = 0;
};
const EnvMatThreadStats& env_mat_thread_stats();

/// Builds the environment matrices of the first nlist.n_centers() atoms.
/// `Baseline` emits the dense padded layout, `Optimized` the compact CSR
/// layout; ws is only touched by the compact build.
void build_env_mat(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                   const md::NeighborList& nlist, EnvMat& out, EnvMatWorkspace& ws,
                   EnvMatKernel kernel = EnvMatKernel::Optimized, bool periodic = true);

/// Convenience overload with a per-thread persistent workspace — callers
/// that own no EnvMatWorkspace (tests, benches, the training path) stay
/// allocation-free in steady state too.
inline void build_env_mat(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                          const md::NeighborList& nlist, EnvMat& out,
                          EnvMatKernel kernel = EnvMatKernel::Optimized, bool periodic = true) {
  static thread_local EnvMatWorkspace ws;
  build_env_mat(cfg, box, atoms, nlist, out, ws, kernel, periodic);
}

}  // namespace dp::core
