// Environment-matrix construction — the ProdEnvMatA customized operator
// (paper Sec 3.4.3 / 3.5.3).
//
// For every local atom i the operator emits:
//   * rmat  (N_m x 4):  rows  s(r) * (1, x/r, y/r, z/r)  (paper Eq. 1),
//     grouped by neighbor type (sel[t] slots per type, distance-sorted inside
//     each block) and zero-padded up to the reserved slot count;
//   * deriv (N_m x 4 x 3):  d(rmat row)/d(r_j - r_i)  — `descrpt_a_deriv`,
//     the 12-component AoS the SVE conversion kernels operate on;
//   * slot_atom: which atom occupies each slot (-1 for padding).
//
// Two builders produce bit-identical output: `Baseline` is the plain
// reference; `Optimized` is the restructured operator the paper reports as
// 3x faster on V100 (single distance evaluation per candidate, insertion
// into fixed slot arrays, OpenMP over atoms).
#pragma once

#include <cstddef>
#include <vector>

#include "common/aligned.hpp"
#include "dp/model_config.hpp"
#include "md/atoms.hpp"
#include "md/box.hpp"
#include "md/neighbor.hpp"

namespace dp::core {

struct EnvMat {
  std::size_t n_atoms = 0;
  int nm = 0;
  int ntypes = 1;
  AlignedVector<double> rmat;      ///< n_atoms * nm * 4
  AlignedVector<double> deriv;     ///< n_atoms * nm * 12
  std::vector<int> slot_atom;      ///< n_atoms * nm; -1 = padded slot
  std::vector<int> count_by_type;  ///< n_atoms * ntypes: filled slots per block
  std::vector<int> type_off;       ///< ntypes + 1: slot offset of each type block
  std::size_t overflow = 0;        ///< neighbors dropped because a block was full

  const double* rmat_row(std::size_t i, int slot) const {
    return rmat.data() + (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)) * 4;
  }
  const double* deriv_row(std::size_t i, int slot) const {
    return deriv.data() +
           (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)) * 12;
  }
  int atom_at(std::size_t i, int slot) const {
    return slot_atom[i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)];
  }
  int count(std::size_t i, int t) const {
    return count_by_type[i * static_cast<std::size_t>(ntypes) + static_cast<std::size_t>(t)];
  }
  /// Slot offset of type t's block within an atom's nm reserved slots
  /// (mirrors ModelConfig::type_offset so consumers of a built EnvMat need
  /// no config handle to walk the type blocks).
  int type_offset(int t) const { return type_off[static_cast<std::size_t>(t)]; }
  /// Fraction of slots that are padding — the paper's "redundant zeros".
  double padding_fraction() const;
};

enum class EnvMatKernel { Baseline, Optimized };

/// Builds the environment matrices of the first nlist.n_centers() atoms.
void build_env_mat(const ModelConfig& cfg, const md::Box& box, const md::Atoms& atoms,
                   const md::NeighborList& nlist, EnvMat& out,
                   EnvMatKernel kernel = EnvMatKernel::Optimized, bool periodic = true);

}  // namespace dp::core
