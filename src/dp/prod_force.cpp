#include "dp/prod_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd.hpp"
#include "common/team.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace dp::core {

namespace {
/// f_l = sum_c g_rmat[c] * deriv[c][l] — the pair gradient dE/d(r_j - r_i).
inline Vec3 slot_pair_gradient(const double* g_row, const double* d_row) {
  Vec3 f{};
  for (int c = 0; c < 4; ++c) {
    const double g = g_row[c];
    f.x += g * d_row[3 * c + 0];
    f.y += g * d_row[3 * c + 1];
    f.z += g * d_row[3 * c + 2];
  }
  return f;
}

/// Slots walked per batched pair-gradient call; the f buffer lives on the
/// stack so the scatter loop stays allocation-free.
constexpr int kSlotChunk = 64;

#if DP_SIMD_X86
/// Batched form of slot_pair_gradient over a run of contiguous slots: the
/// g_rmat rows (stride 4) and deriv rows (stride 12) are walked in one
/// annotated loop, so the compiler fuses and vectorizes the 4x3 dots over
/// the slot run instead of calling out per slot. Results are per-slot
/// independent — the deterministic lane fold is unaffected.
DP_TARGET_AVX2 void slot_pair_gradients_fma(const double* g_rows, const double* d_rows,
                                            int cnt, double* f) {
  for (int k = 0; k < cnt; ++k) {
    const double* g = g_rows + 4 * k;
    const double* d = d_rows + 12 * k;
    double fx = 0.0, fy = 0.0, fz = 0.0;
    for (int c = 0; c < 4; ++c) {
      fx = std::fma(g[c], d[3 * c + 0], fx);
      fy = std::fma(g[c], d[3 * c + 1], fy);
      fz = std::fma(g[c], d[3 * c + 2], fz);
    }
    f[3 * k + 0] = fx;
    f[3 * k + 1] = fy;
    f[3 * k + 2] = fz;
  }
}
#endif
}  // namespace

void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial, ProdForceWorkspace& ws) {
  WallTimer timer;
  const std::size_t n = env.n_atoms;
  const std::size_t n_total = forces.size();
  ws.lane_force.resize(static_cast<std::size_t>(kProdForceLanes) * n_total * 3);

  const int team_size = std::max(1, omp_get_max_threads());
  // SIMD level resolved once per call, outside the team region: every lane
  // walks its slots with the same kernel regardless of thread count.
  [[maybe_unused]] const bool batch_fma = simd::active() != simd::Level::Scalar;
  BuildTeam& team = BuildTeam::team();
  auto body = [&](int t, int T) {
    // ---- Phase 1: each thread runs a contiguous range of LANES. A lane
    // walks a fixed contiguous range of centers (chunked by kProdForceLanes,
    // not by T): the center's own force is written directly (lanes partition
    // centers, so those writes are disjoint), neighbor scatters land in the
    // lane-private buffer, and the lane's virial accumulates separately.
    const int lane_begin = static_cast<int>(chunk_bound(kProdForceLanes, t, T));
    const int lane_end = static_cast<int>(chunk_bound(kProdForceLanes, t + 1, T));
    for (int lane = lane_begin; lane < lane_end; ++lane) {
      double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
      std::memset(buf, 0, n_total * 3 * sizeof(double));
      Mat3 w{};
      const std::size_t begin = chunk_bound(n, lane, kProdForceLanes);
      const std::size_t end = chunk_bound(n, lane + 1, kProdForceLanes);
      for (std::size_t i = begin; i < end; ++i) {
        const Vec3 ri = atoms.pos[i];
        Vec3 fi{};
        for (int ty = 0; ty < env.ntypes; ++ty) {
          const std::size_t s0 = env.block_begin(i, ty);
          const int cnt = env.count(i, ty);
          for (int k0 = 0; k0 < cnt; k0 += kSlotChunk) {
            const int nk = std::min(kSlotChunk, cnt - k0);
            const std::size_t sb = s0 + static_cast<std::size_t>(k0);
            double fbuf[3 * kSlotChunk];
#if DP_SIMD_X86
            if (batch_fma) {
              slot_pair_gradients_fma(g_rmat + sb * 4, env.deriv_at(sb), nk, fbuf);
            } else
#endif
            {
              for (int k = 0; k < nk; ++k) {
                const std::size_t s = sb + static_cast<std::size_t>(k);
                const Vec3 fk = slot_pair_gradient(g_rmat + s * 4, env.deriv_at(s));
                fbuf[3 * k + 0] = fk.x;
                fbuf[3 * k + 1] = fk.y;
                fbuf[3 * k + 2] = fk.z;
              }
            }
            for (int k = 0; k < nk; ++k) {
              const std::size_t s = sb + static_cast<std::size_t>(k);
              const std::size_t j = static_cast<std::size_t>(env.atom_of(s));
              const Vec3 f{fbuf[3 * k + 0], fbuf[3 * k + 1], fbuf[3 * k + 2]};
              // E depends on d = r_j - r_i:  F_i = +dE/dd, F_j = -dE/dd.
              fi += f;
              buf[j * 3 + 0] -= f.x;
              buf[j * 3 + 1] -= f.y;
              buf[j * 3 + 2] -= f.z;
              Vec3 d;
              if (env.compact()) {
                // Displacement carried through the CSR — no second min_image.
                const double* dd = env.diff_at(s);
                d = {dd[0], dd[1], dd[2]};
              } else {
                d = atoms.pos[j] - ri;
                if (periodic) d = box.min_image(d);
              }
              // W += r_ij (x) f_ij with r_ij = r_i - r_j = -d, f_ij = +f on i.
              w += outer(d, f) * (-1.0);
            }
          }
        }
        forces[i] += fi;
      }
      ws.lane_virial[static_cast<std::size_t>(lane)] = w;
    }
    team.barrier();  // every lane buffer complete before any fold reads it
    // ---- Phase 2: threads partition ATOMS; each atom's force folds the 16
    // lane buffers in ascending lane order — an order independent of T.
    const std::size_t a_begin = chunk_bound(n_total, t, T);
    const std::size_t a_end = chunk_bound(n_total, t + 1, T);
    for (std::size_t a = a_begin; a < a_end; ++a) {
      double fx = 0.0, fy = 0.0, fz = 0.0;
      for (int lane = 0; lane < kProdForceLanes; ++lane) {
        const double* buf = ws.lane_force.data() + static_cast<std::size_t>(lane) * n_total * 3;
        fx += buf[a * 3 + 0];
        fy += buf[a * 3 + 1];
        fz += buf[a * 3 + 2];
      }
      forces[a] += Vec3{fx, fy, fz};
    }
  };
  team.run(team_size, BodyRef(body));

  // Lane virials fold on the master, again in ascending lane order.
  for (int lane = 0; lane < kProdForceLanes; ++lane)
    virial += ws.lane_virial[static_cast<std::size_t>(lane)];

  static obs::Histogram& seconds =
      obs::MetricsRegistry::instance().histogram("prod_force.seconds");
  seconds.observe(timer.seconds());
}

}  // namespace dp::core
