#include "dp/prod_force.hpp"

namespace dp::core {

namespace {
/// f_l = sum_c g_rmat[c] * deriv[c][l] — the pair gradient dE/d(r_j - r_i).
inline Vec3 slot_pair_gradient(const double* g_row, const double* d_row) {
  Vec3 f{};
  for (int c = 0; c < 4; ++c) {
    const double g = g_row[c];
    f.x += g * d_row[3 * c + 0];
    f.y += g * d_row[3 * c + 1];
    f.z += g * d_row[3 * c + 2];
  }
  return f;
}
}  // namespace

void prod_force_virial(const EnvMat& env, const double* g_rmat, const md::Box& box,
                       const md::Atoms& atoms, bool periodic, std::vector<Vec3>& forces,
                       Mat3& virial) {
  const int nm = env.nm;
  for (std::size_t i = 0; i < env.n_atoms; ++i) {
    const Vec3 ri = atoms.pos[i];
    Vec3 fi{};
    // Walk only the filled prefix of each type block (count_by_type), not
    // the padded tail — a padded slot's gradient row is identically zero.
    for (int t = 0; t < env.ntypes; ++t) {
      const int base = env.type_offset(t);
      const int cnt = env.count(i, t);
      for (int k = 0; k < cnt; ++k) {
        const int slot = base + k;
        const int j = env.atom_at(i, slot);
        const Vec3 f = slot_pair_gradient(
            g_rmat + (i * static_cast<std::size_t>(nm) + static_cast<std::size_t>(slot)) * 4,
            env.deriv_row(i, slot));
        // E depends on d = r_j - r_i:  F_i = +dE/dd, F_j = -dE/dd.
        fi += f;
        forces[static_cast<std::size_t>(j)] -= f;
        Vec3 d = atoms.pos[static_cast<std::size_t>(j)] - ri;
        if (periodic) d = box.min_image(d);
        // W += r_ij (x) f_ij with r_ij = r_i - r_j = -d and f_ij = +f on i.
        virial += outer(d, f) * (-1.0);
      }
    }
    forces[i] += fi;
  }
}

}  // namespace dp::core
